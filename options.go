package mdhf

import (
	"time"

	"repro/internal/alloc"
	"repro/internal/cost"
	"repro/internal/simpad"
	"repro/internal/storage"
)

// Option configures a Warehouse at Open time.
type Option func(*options)

// options is the resolved option set of one Warehouse.
type options struct {
	workers      int // raw: <1 means one per CPU
	onDisk       bool
	dir          string
	disks        int
	scheme       alloc.Scheme
	staggered    bool
	compress     bool
	ioDelay      time.Duration
	ioDelaySet   bool
	cluster      int
	params       cost.Params
	simCfg       simpad.Config
	autoCompact  int
	poolBytes    int64
	resultCache  int
	faultPlan    *storage.FaultPlan
	retry        *storage.RetryPolicy
	admitLimit   int
	deadline     time.Duration
	nodes        int
	nodeScheme   alloc.Scheme
	nodeAddrs    []string
	hedge        time.Duration
	sharedWindow time.Duration
}

func defaultOptions() options {
	return options{
		staggered: true,
		cluster:   1,
		params:    cost.DefaultParams(),
		simCfg:    simpad.DefaultConfig(),
	}
}

// WithWorkers sets the size of the warehouse's shared worker pool — the
// goroutines all concurrent query executions are multiplexed onto, and
// the fan-out of Advise and ExplainAll. Values below 1 (the default)
// mean one worker per available CPU.
func WithWorkers(n int) Option {
	return func(o *options) { o.workers = n }
}

// WithOnDisk selects the on-disk backend: the fact table and the
// surviving bitmap fragments are written as paged files in dir and
// queries run with real prefetch-granule I/O. An empty dir means a
// temporary directory owned (and removed on Close) by the warehouse.
func WithOnDisk(dir string) Option {
	return func(o *options) {
		o.onDisk = true
		o.dir = dir
	}
}

// WithDisks declusters the on-disk backend over d virtual disks with the
// given fact placement scheme (RoundRobin or GapRoundRobin), each disk a
// serialized I/O queue shared by every in-flight query. Implies the
// on-disk backend. Bitmap fragments are staggered onto the disks
// following each fact fragment's (Figure 2) unless WithColocatedBitmaps
// is also given. The same placement drives Explain's per-disk queue
// response model.
func WithDisks(d int, scheme AllocScheme) Option {
	return func(o *options) {
		o.onDisk = true
		o.disks = d
		o.scheme = scheme
	}
}

// WithColocatedBitmaps places each fragment's bitmap fragments on the
// fragment's own disk instead of staggering them onto the following
// disks.
func WithColocatedBitmaps() Option {
	return func(o *options) { o.staggered = false }
}

// WithCompression stores every bitmap WAH-compressed and executes
// queries on the compressed words directly (the Section 3.2 space
// reduction plus the run-skipping fast path), on both the in-memory and
// the on-disk backend.
func WithCompression() Option {
	return func(o *options) { o.compress = true }
}

// WithIODelay adds a simulated per-access disk latency to every physical
// read (the Table 4 seek + settle + controller model), making disk
// queueing observable on the on-disk backend; it also becomes the access
// time of Explain's queue response model — including an explicit zero,
// which models ideal disks. Implies the on-disk backend.
func WithIODelay(d time.Duration) Option {
	return func(o *options) {
		o.onDisk = true
		o.ioDelay = d
		o.ioDelaySet = true
	}
}

// WithClustering groups n consecutive fragments into one allocation
// granule sharing a disk (Section 6.3); it applies to the declustered
// placement, the queue response model, and simulated plans. Values
// below 2 mean no clustering.
func WithClustering(n int) Option {
	return func(o *options) {
		if n < 1 {
			n = 1
		}
		o.cluster = n
	}
}

// WithAutoCompaction triggers a background compaction whenever the live
// (not yet compacted) delta rows reach the threshold. Compaction runs on
// its own goroutine and never blocks Append or query admission; queries
// in flight during a compaction keep their pinned epoch. Zero (the
// default) disables automatic compaction — call Warehouse.Compact
// explicitly instead.
func WithAutoCompaction(rows int) Option {
	return func(o *options) {
		if rows < 0 {
			rows = 0
		}
		o.autoCompact = rows
	}
}

// WithBufferPool gives the warehouse a shared granule/page buffer pool
// of the given byte budget: on-disk fact prefetch granules and bitmap
// payload reads are served from memory on repeat access, with strict
// sharded-LRU eviction, pages pinned while a fragment worker aggregates
// from them, and entries keyed by serving epoch so a compaction's swap
// invalidates the retired epoch wholesale. Results are byte-identical
// with and without the pool; the effect is visible in Stats.IO
// (PoolHits/PoolMisses), DiskStats and ServingStats.Cache.Pool, and
// predicted by Explain.Cache. Values below 1 disable the pool. The pool
// only applies to on-disk backends (the in-memory engine reads no
// pages).
func WithBufferPool(bytes int64) Option {
	return func(o *options) {
		if bytes < 1 {
			bytes = 0
		}
		o.poolBytes = bytes
	}
}

// WithResultCache gives the warehouse a query-result cache of the given
// entry capacity: Execute serves repeated queries from memory while the
// serving state they were computed under still holds. Invalidation is
// fragment-granular — an Append evicts only the entries whose
// confinement region contains a touched fragment, and a compaction
// (result-neutral by construction) re-keys entries instead of flushing
// them. Identical concurrent executions collapse onto one computation
// (singleflight). Results are byte-identical to uncached execution;
// Stats.CacheHit/Shared and ServingStats.Cache report the effect.
// Values below 1 disable the cache.
func WithResultCache(entries int) Option {
	return func(o *options) {
		if entries < 1 {
			entries = 0
		}
		o.resultCache = entries
	}
}

// WithFaultPlan installs a deterministic, seedable fault plan on the
// warehouse's disk set: transient read errors, latency spikes, corrupt
// pages and sticky disk failures are injected at the configured rates,
// and every physical read runs under the retry policy with per-page
// CRC32C verification and per-disk circuit breaking. Implies the
// on-disk backend (a single-disk set when WithDisks was not given).
// With retries on, query results under a transient/corrupt plan are
// byte-identical to the fault-free run; ServingStats and DiskStats
// report Retries/BreakerTrips/ChecksumFailures/InjectedFaults.
func WithFaultPlan(plan FaultPlan) Option {
	return func(o *options) {
		o.onDisk = true
		o.faultPlan = &plan
	}
}

// WithRetryPolicy overrides the physical-read retry policy (attempts,
// backoff, circuit-breaker threshold and cooldown). Zero fields keep
// their defaults (see DefaultRetryPolicy). Implies the on-disk backend.
func WithRetryPolicy(p RetryPolicy) Option {
	return func(o *options) {
		o.onDisk = true
		o.retry = &p
	}
}

// WithAdmissionLimit bounds the number of concurrently admitted query
// executions: executions beyond the limit are shed immediately with
// ErrOverloaded instead of queueing unboundedly — the warehouse stays
// responsive for the admitted load. Zero (the default) means unbounded.
func WithAdmissionLimit(n int) Option {
	return func(o *options) { o.admitLimit = n }
}

// WithQueryDeadline enforces a per-query deadline on every Execute: the
// execution's context is bounded to d, so a query stuck behind failing
// disks or a deep queue fails with context.DeadlineExceeded instead of
// hanging its caller. Zero (the default) means no deadline; an explicit
// deadline on the caller's own context always applies too (whichever
// expires first wins).
func WithQueryDeadline(d time.Duration) Option {
	return func(o *options) {
		if d < 0 {
			d = 0
		}
		o.deadline = d
	}
}

// WithNodes shards the warehouse over n serving nodes (OpenCluster
// only): the cluster-level placement assigns every fragment to exactly
// one node by the given scheme — the same round-robin / gap-round-robin
// math that declusters fragments over disks, applied one level up —
// and queries scatter to the owning nodes and gather their partials.
// Each node gets its own worker pool, admission limit and (WithDisks)
// disk set; Explain's response model becomes the two-tier node×disk
// queue model.
func WithNodes(n int, scheme AllocScheme) Option {
	return func(o *options) {
		o.nodes = n
		o.nodeScheme = scheme
	}
}

// WithNodeAddrs serves the cluster over HTTP (OpenCluster only): node k
// is the server at addrs[k] (see NewNodeHandler and cmd/mdhfnode), the
// scheme of WithNodes still decides fragment ownership, and sub-queries
// travel as gob-encoded partials with per-node retry/backoff, circuit
// breaking and (WithHedgedRequests) straggler hedging. Without it the
// cluster runs in-process over locally built nodes.
func WithNodeAddrs(addrs ...string) Option {
	return func(o *options) { o.nodeAddrs = addrs }
}

// WithHedgedRequests launches a duplicate sub-query against any node
// that has not answered within d; the first answer wins (OpenCluster
// only). Reads are idempotent so hedging never changes results for a
// fixed serving state, but a hedge pair racing a concurrent Append may
// observe different epochs — leave hedging off when byte-stable replay
// matters.
func WithHedgedRequests(d time.Duration) Option {
	return func(o *options) {
		if d < 0 {
			d = 0
		}
		o.hedge = d
	}
}

// WithSharedScans enables shared multi-query scans: executions admitted
// within window of each other against the same serving state (same
// epoch and delta high-water mark) coalesce into one batch whose
// fragment union is scanned once — a single bitmap selection + granule
// read stream per fragment feeds every batched query's predicate and
// aggregation slots. Results and per-query logical I/O statistics stay
// byte-identical to solo execution; the physical savings show up in
// Stats.SharedScan and ServingStats.Shared. The window is the latency a
// leading query donates waiting for batch-mates (O(100µs)–O(1ms) keeps
// it well under one physical disk access); solo queries pay exactly one
// window. Where the result cache collapses *identical* concurrent
// queries, shared scans coalesce merely *overlapping* ones — the two
// compose. OpenCluster passes the window to every node, batching each
// shard's sub-requests. Values ≤ 0 disable sharing.
func WithSharedScans(window time.Duration) Option {
	return func(o *options) {
		if window < 0 {
			window = 0
		}
		o.sharedWindow = window
	}
}

// WithCostParams overrides the analytical cost model's prefetch
// parameters (default: the paper's 8 fact / 5 bitmap pages). The fact
// prefetch granule also drives the on-disk executor's granule reads.
func WithCostParams(p CostParams) Option {
	return func(o *options) { o.params = p }
}

// WithSimConfig overrides the SIMPAD parameter set used by Simulate and
// by Explain's physical plan (default: the paper's Table 4 settings).
func WithSimConfig(cfg SimConfig) Option {
	return func(o *options) { o.simCfg = cfg }
}
