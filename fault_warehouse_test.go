package mdhf

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"
)

// fastFaultRetry keeps backoff negligible so fault tests run fast.
func fastFaultRetry() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:      6,
		BaseBackoff:      time.Microsecond,
		MaxBackoff:       10 * time.Microsecond,
		BreakerThreshold: 4,
		BreakerCooldown:  20 * time.Millisecond,
	}
}

// TestWarehouseFaultEquivalence is the ISSUE's acceptance matrix: under a
// seeded 2% transient + 2% corrupt-page + latency-spike plan, every query
// class returns results byte-identical to a fault-free warehouse over the
// same table, on single-disk and declustered backends, materialized and
// compressed.
func TestWarehouseFaultEquivalence(t *testing.T) {
	ctx := context.Background()
	star := TinySchema()
	tab := MustGenerateData(star, 8)
	cfg := Config{Star: star, Fragmentation: "time::month, product::group", Table: tab}
	plan := FaultPlan{
		Seed:             42,
		ReadErrorRate:    0.02,
		CorruptRate:      0.02,
		LatencySpikeRate: 0.01,
		LatencySpike:     50 * time.Microsecond,
	}
	backends := []struct {
		name string
		opts []Option
	}{
		{"on-disk", []Option{WithOnDisk("")}},
		{"on-disk/compressed", []Option{WithOnDisk(""), WithCompression()}},
		{"declustered", []Option{WithDisks(4, RoundRobin)}},
		{"declustered/compressed", []Option{WithDisks(8, GapRoundRobin), WithCompression()}},
	}
	var injected, retries int64
	for _, bk := range backends {
		t.Run(bk.name, func(t *testing.T) {
			oracle, err := Open(ctx, cfg, bk.opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer oracle.Close()
			faulty, err := Open(ctx, cfg, append([]Option{
				WithFaultPlan(plan), WithRetryPolicy(fastFaultRetry()),
			}, bk.opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			defer faulty.Close()
			for _, text := range ingestQueries {
				q, err := ParseQuery(star, text)
				if err != nil {
					t.Fatal(err)
				}
				want, _, err := oracle.Query(q).Execute(ctx)
				if err != nil {
					t.Fatal(err)
				}
				got, _, err := faulty.Query(q).Execute(ctx)
				if err != nil {
					t.Fatalf("%q under faults: %v", text, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%q: result under faults %+v != fault-free %+v", text, got, want)
				}
			}
			st := faulty.ServingStats()
			injected += st.Faults.InjectedFaults
			retries += st.Faults.Retries
		})
	}
	// With a seeded plan over hundreds of physical reads the run must
	// actually have exercised the retry path, not merely avoided faults.
	if injected == 0 || retries == 0 {
		t.Fatalf("fault plan never fired: injected=%d retries=%d", injected, retries)
	}
}

// TestWarehouseDiskFailureFailsFast permanently fails one disk of a
// declustered warehouse: queries touching it must fail promptly with a
// typed *FaultError (no hang, no panic), healthy serving resumes after
// the disk is revived, and results match the pre-failure run.
func TestWarehouseDiskFailureFailsFast(t *testing.T) {
	ctx := context.Background()
	star := TinySchema()
	cfg := Config{Star: star, Fragmentation: "time::month, product::group", Table: MustGenerateData(star, 8)}
	w, err := Open(ctx, cfg, WithDisks(4, RoundRobin), WithRetryPolicy(fastFaultRetry()))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	q, err := ParseQuery(star, "") // full scan touches every disk
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := w.Query(q).Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}

	w.DiskSet().FailDisk(1)
	start := time.Now()
	_, _, err = w.Query(q).Execute(ctx)
	elapsed := time.Since(start)
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("query on failed disk returned %v, want *FaultError", err)
	}
	if fe.Kind != FaultDiskFailed || fe.Disk != 1 {
		t.Fatalf("fault = kind %s disk %d, want disk-failed on disk 1", fe.Kind, fe.Disk)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("failed-disk query took %v, want fail-fast", elapsed)
	}

	w.DiskSet().ReviveDisk(1)
	got, _, err := w.Query(q).Execute(ctx)
	if err != nil {
		t.Fatalf("query after revive: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("result after revive %+v != pre-failure %+v", got, want)
	}
}

// TestWarehouseLoadShedding bounds admission at one in-flight query and
// verifies a concurrent execution is refused with ErrOverloaded while the
// slot is held, with the shed counted in ServingStats.
func TestWarehouseLoadShedding(t *testing.T) {
	ctx := context.Background()
	star := TinySchema()
	cfg := Config{Star: star, Fragmentation: "time::month, product::group", Table: MustGenerateData(star, 8)}
	w, err := Open(ctx, cfg, WithOnDisk(""), WithAdmissionLimit(1))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	q, err := ParseQuery(star, "")
	if err != nil {
		t.Fatal(err)
	}
	// Warm build (fast), then make every physical access slow so the held
	// admission slot stays occupied while the second query arrives.
	if _, _, err := w.Query(q).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	w.SetIODelay(50 * time.Millisecond)

	done := make(chan error, 1)
	go func() {
		_, _, err := w.Query(q).Execute(ctx)
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for w.ServingStats().InFlight < 1 {
		if time.Now().After(deadline) {
			t.Fatal("first query never entered execution")
		}
		time.Sleep(100 * time.Microsecond)
	}
	_, _, err = w.Query(q).Execute(ctx)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second query returned %v, want ErrOverloaded", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("admitted query failed: %v", err)
	}
	st := w.ServingStats()
	if st.Shed < 1 || st.AdmitLimit != 1 {
		t.Fatalf("serving stats = shed %d limit %d, want >=1 shed at limit 1", st.Shed, st.AdmitLimit)
	}
}

// TestWarehouseQueryDeadline bounds every execution with a per-query
// deadline: a scan stuck behind slow disks fails with DeadlineExceeded
// instead of hanging its caller.
func TestWarehouseQueryDeadline(t *testing.T) {
	ctx := context.Background()
	star := TinySchema()
	cfg := Config{Star: star, Fragmentation: "time::month, product::group", Table: MustGenerateData(star, 8)}
	w, err := Open(ctx, cfg, WithOnDisk(""), WithQueryDeadline(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	q, err := ParseQuery(star, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.Query(q).Execute(ctx); err != nil {
		t.Fatal(err) // warm build finishes well inside the deadline
	}
	w.SetIODelay(50 * time.Millisecond)
	_, _, err = w.Query(q).Execute(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("slow query returned %v, want DeadlineExceeded", err)
	}
}

// TestWarehouseCancelMidScan is the ctx-cancellation regression: on a
// deliberately slow disk, cancelling the context shortly after Execute
// starts must abort the scan with ctx.Err() instead of finishing it.
func TestWarehouseCancelMidScan(t *testing.T) {
	star := TinySchema()
	cfg := Config{Star: star, Fragmentation: "time::month, product::group", Table: MustGenerateData(star, 8)}
	w, err := Open(context.Background(), cfg, WithOnDisk(""))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	q, err := ParseQuery(star, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.Query(q).Execute(context.Background()); err != nil {
		t.Fatal(err)
	}
	w.SetIODelay(100 * time.Millisecond)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := w.Query(q).Execute(ctx)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	start := time.Now()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled query returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled query did not return")
	}
	if lag := time.Since(start); lag > 5*time.Second {
		t.Fatalf("query returned %v after cancel, want prompt abort", lag)
	}
}

// TestWarehouseJournalCrashRecovery kills a warehouse without Close after
// several acked Appends and reopens the same directory: the journal
// replay must reconstruct every acked row, and every query must answer
// byte-identically to both the pre-crash warehouse and a fresh oracle
// built over base+appended rows.
func TestWarehouseJournalCrashRecovery(t *testing.T) {
	ctx := context.Background()
	star := TinySchema()
	full := MustGenerateData(star, 8)
	n := full.N()
	base := prefixTable(full, n/2)
	extra := splitRows(full, n/2, n)
	dir := t.TempDir()
	cfg := Config{Star: star, Fragmentation: "time::month, product::group", Table: base}

	w1, err := Open(ctx, cfg, WithOnDisk(dir))
	if err != nil {
		t.Fatal(err)
	}
	// Several batches so tail coalescing produces replace-flagged journal
	// records alongside plain appends.
	per := (len(extra) + 2) / 3
	for lo := 0; lo < len(extra); lo += per {
		hi := lo + per
		if hi > len(extra) {
			hi = len(extra)
		}
		if err := w1.Append(ctx, extra[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	preCrash := map[string]Result{}
	for _, text := range ingestQueries {
		q, err := ParseQuery(star, text)
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := w1.Query(q).Execute(ctx)
		if err != nil {
			t.Fatal(err)
		}
		preCrash[text] = res
	}
	// "Crash": w1 is abandoned without Close — only what the journal
	// durably holds may survive.

	w2, err := Open(ctx, cfg, WithOnDisk(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	oracle, err := Open(ctx, Config{Star: star, Fragmentation: "time::month, product::group",
		Table: withRows(base, extra)})
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()
	for _, text := range ingestQueries {
		q, err := ParseQuery(star, text)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := w2.Query(q).Execute(ctx)
		if err != nil {
			t.Fatalf("%q after recovery: %v", text, err)
		}
		if !reflect.DeepEqual(got, preCrash[text]) {
			t.Errorf("%q: recovered %+v != pre-crash %+v", text, got, preCrash[text])
		}
		want, _, err := oracle.Query(q).Execute(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%q: recovered %+v != oracle %+v", text, got, want)
		}
	}
	if st := w2.ServingStats(); st.DeltaRows != int64(len(extra)) {
		t.Fatalf("recovered delta rows = %d, want %d", st.DeltaRows, len(extra))
	}
	// Ingestion continues seamlessly on the recovered journal.
	again := splitRows(full, 0, n/8)
	if err := w2.Append(ctx, again); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	if st := w2.ServingStats(); st.DeltaRows != int64(len(extra)+len(again)) {
		t.Fatalf("delta rows after post-recovery append = %d, want %d", st.DeltaRows, len(extra)+len(again))
	}
}

// TestExplainModelsDegradedDisks: under a fault plan the analytical
// response estimate must grow by the expected-retries factor relative to
// the fault-free model.
func TestExplainModelsDegradedDisks(t *testing.T) {
	ctx := context.Background()
	star := TinySchema()
	cfg := Config{Star: star, Fragmentation: "time::month, product::group", Table: MustGenerateData(star, 8)}
	clean, err := Open(ctx, cfg, WithDisks(4, RoundRobin))
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()
	degraded, err := Open(ctx, cfg, WithDisks(4, RoundRobin),
		WithFaultPlan(FaultPlan{Seed: 1, ReadErrorRate: 0.25, CorruptRate: 0.25}))
	if err != nil {
		t.Fatal(err)
	}
	defer degraded.Close()
	q, err := ParseQuery(star, "time::quarter=1")
	if err != nil {
		t.Fatal(err)
	}
	base, err := clean.Query(q).Explain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := degraded.Query(q).Explain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Response.Response <= base.Response.Response {
		t.Fatalf("degraded response %v not above fault-free %v",
			slow.Response.Response, base.Response.Response)
	}
	// 50% combined fault rate doubles expected attempts: the bottleneck
	// queue should scale by ~2x.
	if got, want := slow.Response.BottleneckIOs, 2*base.Response.BottleneckIOs; got < 0.99*want || got > 1.01*want {
		t.Fatalf("degraded bottleneck IOs = %v, want ~%v", got, want)
	}
}
