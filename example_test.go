package mdhf_test

import (
	"context"
	"fmt"
	"log"

	mdhf "repro"
)

// ExampleOpen is the package quick start: open a Warehouse over a
// reduced-scale APB-1, explain a query analytically, then execute it on
// the real declustered backend.
func ExampleOpen() {
	ctx := context.Background()
	w, err := mdhf.Open(ctx, mdhf.Config{
		Star:          mdhf.APB1Scaled(60),
		Fragmentation: "time::month, product::group",
		Seed:          42,
	}, mdhf.WithDisks(8, mdhf.RoundRobin))
	if err != nil {
		log.Fatal(err)
	}
	defer w.Close()

	q, err := w.QueryText("customer::store=7")
	if err != nil {
		log.Fatal(err)
	}
	ex, err := q.Explain(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("class %v, %v: %d fragments, %d bitmaps/fragment\n",
		ex.Class, ex.Cost.Class, ex.Cost.Fragments, ex.Cost.BitmapsPerFragment)

	agg, st, err := q.Execute(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d rows on the %v backend (%d fact pages in %d I/Os)\n",
		agg.Count, st.Backend, st.IO.FactPages, st.IO.FactIOs)
	// Output:
	// class unsupported, IOC2-nosupp: 192 fragments, 5 bitmaps/fragment
	// 7174 rows on the declustered backend (960 fact pages in 192 I/Os)
}

// ExampleEstimateCost analyses a query under a fragmentation with the
// paper's analytical I/O cost model — no data needed, full APB-1 scale.
func ExampleEstimateCost() {
	star := mdhf.APB1()
	spec, err := mdhf.ParseFragmentation(star, "time::month, product::group")
	if err != nil {
		log.Fatal(err)
	}
	idx := mdhf.APB1Indexes(star)
	q, err := mdhf.ParseQuery(star, "customer::store=7")
	if err != nil {
		log.Fatal(err)
	}
	c := mdhf.EstimateCost(spec, idx, q, mdhf.DefaultCostParams())
	fmt.Printf("%d fragments, %.0f MB I/O\n", c.Fragments, c.TotalMB())
	// Output:
	// 11520 fragments, 27337 MB I/O
}

// ExampleWarehouse_Query shows Explain's disk-queue response model at
// full scale: the warehouse is opened for analysis only (no fact data is
// ever generated), modelling 101 declustered disks.
func ExampleWarehouse_Query() {
	ctx := context.Background()
	w, err := mdhf.Open(ctx, mdhf.Config{
		Star:          mdhf.APB1(),
		Fragmentation: "time::month, product::group",
	}, mdhf.WithDisks(101, mdhf.RoundRobin))
	if err != nil {
		log.Fatal(err)
	}
	defer w.Close()

	q, err := w.QueryText("product::code=11")
	if err != nil {
		log.Fatal(err)
	}
	ex, err := q.Explain(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("class %v: %d fragments over %d disks, imbalance %.2f\n",
		ex.Class, ex.Cost.Fragments, ex.Response.DisksUsed, ex.Response.Imbalance)
	// Output:
	// class Q2: 24 fragments over 44 disks, imbalance 1.83
}

// ExampleWarehouse_Advise applies the Section 4.7 allocation guidelines:
// an advisory-only warehouse (no fragmentation, no data) ranks the
// admissible fragmentations for a query mix.
func ExampleWarehouse_Advise() {
	ctx := context.Background()
	w, err := mdhf.Open(ctx, mdhf.Config{Star: mdhf.APB1()})
	if err != nil {
		log.Fatal(err)
	}
	defer w.Close()

	star := w.Star()
	gen := mdhf.NewQueryGenerator(star, 1)
	var mix []mdhf.WeightedQuery
	for _, qt := range []mdhf.QueryType{mdhf.OneMonthOneGroup, mdhf.OneStore} {
		q, err := gen.Next(qt)
		if err != nil {
			log.Fatal(err)
		}
		mix = append(mix, mdhf.WeightedQuery{Name: qt.Name, Query: q, Weight: 0.5})
	}
	th := mdhf.Thresholds{
		MinBitmapFragPages: 1,
		MaxFragments:       mdhf.MaxFragments(star, 1),
		MinFragments:       100,
	}
	ranked := w.Advise(mix, th)
	fmt.Printf("best of %d admissible: %s\n", len(ranked), ranked[0].Spec)
	// Output:
	// best of 64 admissible: {product::family, customer::retailer, time::year}
}

// ExamplePreparedQuery_Execute_groupBy runs a grouped roll-up — the
// workload MDHF fragments are aligned for: grouping by the
// fragmentation attribute month costs zero per-row work (one constant
// group key per fragment), and the group rows come back in
// deterministic member order on every backend.
func ExamplePreparedQuery_Execute_groupBy() {
	ctx := context.Background()
	w, err := mdhf.Open(ctx, mdhf.Config{
		Star:          mdhf.APB1Scaled(60),
		Fragmentation: "time::month, product::group",
		Seed:          42,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer w.Close()

	q, err := w.QueryText("time::quarter=1 group by time::month")
	if err != nil {
		log.Fatal(err)
	}
	res, _, err := q.Execute(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Groups {
		fmt.Printf("month %d: %d rows, units sold %d\n", row.Members[0], row.Agg.Count, row.Agg.UnitsSold)
	}
	fmt.Printf("total: %d rows (= sum of the groups)\n", res.Count)
	// Output:
	// month 3: 14541 rows, units sold 730613
	// month 4: 14356 rows, units sold 727413
	// month 5: 14514 rows, units sold 729147
	// total: 43411 rows (= sum of the groups)
}
