package mdhf

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/alloc"
	"repro/internal/cost"
	"repro/internal/data"
	"repro/internal/dimtable"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/frag"
	"repro/internal/schema"
	"repro/internal/simpad"
	"repro/internal/storage"
)

// ErrClosed is returned by operations on a closed Warehouse.
var ErrClosed = errors.New("mdhf: warehouse is closed")

// Config describes what a Warehouse serves: the star schema, the MDHF
// fragmentation, and the bitmap index configuration. How it serves —
// backend, worker pool, disks, compression — is set by Options.
type Config struct {
	// Star is the star schema (required unless Table is given, in which
	// case it defaults to the table's schema).
	Star *Star
	// Fragmentation is the MDHF fragmentation in the paper's notation,
	// e.g. "time::month, product::group". It may be left empty for an
	// advisory-only warehouse (Advise works; Query does not).
	Fragmentation string
	// Indexes assigns a bitmap index kind to each dimension; nil means
	// the paper's APB-1 configuration (encoded product/customer, simple
	// channel/time).
	Indexes IndexConfig
	// Seed drives deterministic data generation and simulation (0 = 1).
	Seed int64
	// Table optionally supplies pre-generated fact data, e.g. to share
	// one table between warehouses; nil means GenerateData(Star, Seed)
	// on first execution.
	Table *FactTable
}

// backend is one built execution backend: the in-memory engine or the
// on-disk store/bitmaps/executor bundle, plus the rows it was built
// from (the base the next compaction merges deltas into). Backends are
// reference-counted: the serving snapshot holds one reference, every
// pinned execution holds another, and when a compaction swap retires a
// backend its files close and its epoch directory is removed as soon as
// the last pinned query finishes — the old epoch stays readable until
// then.
type backend struct {
	engine *engine.Engine
	be     *storage.Backend
	table  *data.Table // the rows this backend serves as its base
	dir    string      // the backend's own epoch directory ("" in-memory)
	own    bool        // remove dir when retired
	epoch  int64       // the serving epoch (keys the buffer pool's entries)

	refs    atomic.Int64
	retired atomic.Bool
}

// snapshot is what a query pins at admission: one epoch's backend plus
// the immutable delta set sealed so far. Appends and compactions replace
// the warehouse's current snapshot copy-on-write, so a pinned snapshot
// keeps serving unchanged results for the execution's whole lifetime.
type snapshot struct {
	epoch  int64
	b      *backend
	deltas *frag.DeltaSet
}

// Warehouse is the serving façade of this library: one handle that owns
// a fragmented warehouse — schema, fragmentation, bitmap indices, and an
// execution backend — plus the serving layer that admits many concurrent
// queries onto one shared worker pool and one disk set. Open assembles
// it; Query hands out per-query objects whose Explain and Execute run
// the analytical models and the real backend respectively.
//
// The warehouse is epoch-versioned: Append routes incoming fact rows
// into sealed, fragment-aligned delta segments that queries merge with
// the base backend, and a background compactor (see Compact and
// WithAutoCompaction) folds sealed deltas into a rebuilt backend at the
// next epoch. Every admitted execution pins a snapshot — one epoch's
// backend plus the delta set sealed at admission — so compaction never
// blocks admission and never changes an in-flight query's result; the
// old epoch's files stay readable until its last pinned query finishes.
//
// The backend (and the fact data behind it) is built lazily on first
// Execute, so a Warehouse opened only to Explain, Advise or Simulate —
// including over the full-scale APB-1 schema, whose 1.9 billion rows
// cannot be materialised — never generates data.
//
// All methods are safe for concurrent use; Execute calls from any number
// of goroutines multiplex onto the shared pool with per-query admission
// accounting (see ServingStats) and return results bit-for-bit identical
// to executing each query alone.
type Warehouse struct {
	star *schema.Star
	spec *frag.Spec // nil for advisory-only warehouses
	icfg frag.IndexConfig
	seed int64
	opt  options

	sched *exec.Scheduler

	// pool is the shared granule/page buffer pool (nil without
	// WithBufferPool); rcache the query-result cache (nil without
	// WithResultCache). The pool has its own internal locking; rcache is
	// guarded by mu like the serving snapshot it is keyed against.
	pool   *storage.BufPool
	rcache *resCache

	mu     sync.Mutex // guards closed, cur, delay, bgErr, rcache contents
	closed bool
	wg     sync.WaitGroup // in-flight executions, waited on by Close
	cur    snapshot
	bgErr  error // background cleanup/compaction errors, returned by Close

	curDelay    time.Duration // last SetIODelay, re-applied to new epochs
	curDelaySet bool

	appendMu   sync.Mutex // serialises Append and the compaction swap
	compacting bool       // guarded by appendMu
	seq        uint64     // guarded by appendMu: warehouse-wide seal sequence

	compactMu sync.Mutex // serialises compaction runs

	ix        *frag.DeltaIndex
	dlog      *storage.DeltaLog
	compactor *storage.Compactor
	rootDir   string // warehouse root holding epoch dirs + delta journal
	ownRoot   bool

	appends       atomic.Int64
	appendedRows  atomic.Int64
	compactions   atomic.Int64
	compactedRows atomic.Int64

	// shared is the admission batcher of WithSharedScans (nil when
	// disabled); the atomics are its warehouse-wide accounting.
	shared               *exec.Batcher[sharedKey, sharedItem, sharedOut]
	sharedBatches        atomic.Int64
	sharedBatchedQueries atomic.Int64
	sharedSoloWindows    atomic.Int64
	sharedFragments      atomic.Int64
	sharedPhysSaved      atomic.Int64
	sharedFallbacks      atomic.Int64

	// Observed query mix (ServingStats.QueryMix, AdviseObserved).
	mixMu      sync.Mutex
	mixTotal   int64
	mixDropped int64
	mixByClass map[QueryClass]int64
	mix        map[string]*observedQuery

	dataOnce sync.Once
	dataErr  error
	table    *data.Table

	buildOnce sync.Once
	buildErr  error

	catOnce sync.Once
	catalog *dimtable.Catalog
}

// Open assembles a Warehouse from the configuration and options. It
// validates the schema, fragmentation and index configuration and starts
// the shared worker pool; the execution backend itself is built on first
// Execute. The caller must Close the returned handle.
func Open(ctx context.Context, cfg Config, opts ...Option) (*Warehouse, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	opt := defaultOptions()
	for _, o := range opts {
		o(&opt)
	}
	star := cfg.Star
	if star == nil && cfg.Table != nil {
		star = cfg.Table.Star
	}
	if star == nil {
		return nil, fmt.Errorf("mdhf: Config.Star is required")
	}
	if cfg.Table != nil && cfg.Table.Star != star {
		return nil, fmt.Errorf("mdhf: Config.Table was generated for a different schema")
	}
	var spec *frag.Spec
	if cfg.Fragmentation != "" {
		var err error
		spec, err = frag.Parse(star, cfg.Fragmentation)
		if err != nil {
			return nil, err
		}
	}
	icfg := cfg.Indexes
	if icfg == nil {
		icfg = frag.APB1Indexes(star)
	}
	if len(icfg) != len(star.Dims) {
		return nil, fmt.Errorf("mdhf: index config has %d entries for %d dimensions", len(icfg), len(star.Dims))
	}
	if opt.faultPlan != nil && opt.disks == 0 {
		// Fault injection, retry accounting and circuit breaking live on
		// the per-disk queues, so a fault plan needs a disk set even when
		// declustering was not asked for: a single-disk set routes every
		// physical read through one faultable queue while keeping the
		// executor's non-sharded dispatch.
		opt.disks = 1
	}
	if opt.disks != 0 {
		p := alloc.Placement{Disks: opt.disks, Scheme: opt.scheme, Staggered: opt.staggered, Cluster: opt.cluster}
		if err := p.Validate(); err != nil {
			return nil, err
		}
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	w := &Warehouse{
		star:        star,
		spec:        spec,
		icfg:        icfg,
		seed:        seed,
		opt:         opt,
		sched:       exec.NewScheduler(opt.workers),
		table:       cfg.Table,
		curDelay:    opt.ioDelay,
		curDelaySet: opt.ioDelay > 0,
	}
	if opt.admitLimit > 0 {
		w.sched.SetLimit(opt.admitLimit)
	}
	if opt.poolBytes > 0 && opt.onDisk {
		w.pool = storage.NewBufPool(opt.poolBytes)
	}
	if opt.resultCache > 0 {
		w.rcache = newResCache(opt.resultCache)
	}
	if opt.sharedWindow > 0 {
		w.shared = exec.NewBatcher[sharedKey, sharedItem, sharedOut](opt.sharedWindow)
	}
	return w, nil
}

// Star returns the schema the warehouse serves.
func (w *Warehouse) Star() *Star { return w.star }

// Fragmentation returns the MDHF fragmentation (nil for advisory-only
// warehouses opened without one).
func (w *Warehouse) Fragmentation() *Fragmentation { return w.spec }

// Indexes returns the bitmap index configuration.
func (w *Warehouse) Indexes() IndexConfig { return w.icfg }

// Workers returns the size of the shared worker pool.
func (w *Warehouse) Workers() int { return w.sched.Workers() }

// ServingStats is the warehouse-wide serving snapshot: the admission
// scheduler's accounting plus the epoch/ingestion counters of the
// append path.
type ServingStats struct {
	SchedStats
	// Epoch is the current serving epoch (incremented by each compaction).
	Epoch int64
	// DeltaSegments and DeltaRows describe the live (not yet compacted)
	// delta set queries currently merge with the base backend.
	DeltaSegments int
	DeltaRows     int64
	// Appends and AppendedRows count Append calls and rows admitted since
	// Open.
	Appends      int64
	AppendedRows int64
	// Compactions and CompactedRows count completed compactions and the
	// delta rows they folded into the base.
	Compactions   int64
	CompactedRows int64
	// Cache snapshots the caching layer: result-cache hit/miss/shared and
	// invalidation counters plus the buffer pool's counters. Zero when
	// neither WithBufferPool nor WithResultCache was given.
	Cache CacheStats
	// Faults aggregates the fault-tolerance counters over the current
	// epoch's disk set (see DiskStats for the per-disk breakdown). Zero
	// without a disk set; Shed (load-shedding) lives in SchedStats.
	Faults FaultStats
	// Shared is the shared-scan batching accounting (WithSharedScans):
	// batches formed, physical reads saved, solo fallbacks. Zero when
	// sharing is disabled.
	Shared SharedServingStats
	// QueryMix is the observed query mix over every successful Execute —
	// per-class counts and the most-executed queries with their fragment
	// regions. AdviseObserved feeds it back into the advisor.
	QueryMix QueryMixStats
}

// FaultStats is the warehouse-wide fault-tolerance accounting: the sum of
// every disk's injected faults, retried reads, checksum failures and
// circuit-breaker trips since the epoch's disk set was installed.
type FaultStats struct {
	// InjectedFaults counts faults the active FaultPlan injected.
	InjectedFaults int64
	// Retries counts re-read attempts after failed or corrupt reads.
	Retries int64
	// ChecksumFailures counts pages whose CRC32C did not match.
	ChecksumFailures int64
	// BreakerTrips counts circuit-breaker openings across all disks.
	BreakerTrips int64
}

// ServingStats snapshots the admission scheduler's accounting — queries
// admitted and done, in-flight and peak concurrency, fragment tasks run
// — together with the epoch and ingestion counters.
func (w *Warehouse) ServingStats() ServingStats {
	st := ServingStats{
		SchedStats:    w.sched.Stats(),
		Appends:       w.appends.Load(),
		AppendedRows:  w.appendedRows.Load(),
		Compactions:   w.compactions.Load(),
		CompactedRows: w.compactedRows.Load(),
		Shared:        w.sharedServingStats(),
		QueryMix:      w.queryMixStats(),
	}
	w.mu.Lock()
	st.Epoch = w.cur.epoch
	st.DeltaSegments = w.cur.deltas.Segments()
	st.DeltaRows = w.cur.deltas.Rows()
	if c := w.rcache; c != nil {
		st.Cache.Hits = c.hits
		st.Cache.Misses = c.misses
		st.Cache.Shared = c.shared
		st.Cache.Invalidations = c.invalidations
		st.Cache.Rekeys = c.rekeys
		st.Cache.Entries = len(c.entries)
		st.Cache.Capacity = c.cap
	}
	w.mu.Unlock()
	if w.pool != nil {
		st.Cache.Pool = w.pool.Stats()
	}
	for _, d := range w.DiskStats() {
		st.Faults.InjectedFaults += d.InjectedFaults
		st.Faults.Retries += d.Retries
		st.Faults.ChecksumFailures += d.ChecksumFailures
		st.Faults.BreakerTrips += d.BreakerTrips
	}
	return st
}

// Catalog returns the denormalized dimension tables with B+-tree
// indices, built on first use; its ParseQuery resolves name-level
// predicates like "time.month = 'MONTH-0003'".
func (w *Warehouse) Catalog() *DimCatalog {
	w.catOnce.Do(func() { w.catalog = dimtable.BuildCatalog(w.star) })
	return w.catalog
}

// Table returns the warehouse's fact table, generating it on first use.
// It is the base table of epoch 0; appended rows are not reflected.
func (w *Warehouse) Table(ctx context.Context) (*FactTable, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := w.ensureData(); err != nil {
		return nil, err
	}
	return w.table, nil
}

// DiskSet returns the declustered backend's current disk set (nil unless
// opened WithDisks and already built). Compaction replaces it together
// with the backend: the returned set keeps serving queries pinned to its
// epoch but receives no new ones after the swap.
func (w *Warehouse) DiskSet() *DiskSet {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.cur.b == nil || w.cur.b.be == nil {
		return nil
	}
	return w.cur.b.be.Disks
}

// DiskStats snapshots the per-disk access counters of the declustered
// backend (nil otherwise). The counters are warehouse-wide: they
// accumulate over every query served since the last ResetDiskStats (or
// the last compaction, which installs a fresh disk set).
func (w *Warehouse) DiskStats() []DiskStats {
	ds := w.DiskSet()
	if ds == nil {
		return nil
	}
	return ds.Stats()
}

// ResetDiskStats zeroes the per-disk access counters.
func (w *Warehouse) ResetDiskStats() {
	if ds := w.DiskSet(); ds != nil {
		ds.ResetStats()
	}
}

// SetIODelay adjusts the simulated per-access disk latency of a built
// on-disk backend at run time (all disks of a declustered set). The
// delay survives compaction: each new epoch's backend inherits it. It is
// a no-op before the backend is built and on in-memory backends — use
// WithIODelay to configure the delay up front.
func (w *Warehouse) SetIODelay(d time.Duration) {
	w.mu.Lock()
	w.curDelay, w.curDelaySet = d, true
	b := w.cur.b
	w.mu.Unlock()
	if b != nil && b.be != nil {
		applyIODelay(b.be, d)
	}
}

// applyIODelay sets the simulated access latency on a built backend.
func applyIODelay(be *storage.Backend, d time.Duration) {
	if be.Disks != nil {
		be.Disks.SetIODelay(d)
		return
	}
	be.Store.SetIODelay(d)
	be.Bitmaps.SetIODelay(d)
}

// Query prepares a star query against the warehouse. The returned object
// is cheap, stateless and safe to Execute concurrently with any number
// of other queries.
func (w *Warehouse) Query(q Query) *PreparedQuery {
	return &PreparedQuery{w: w, q: q}
}

// QueryText parses and prepares a query in either notation: member
// indices ("customer::store=7, time::month=3") or, when the text quotes
// names or references attributes as dim.level, the dimension-table form
// resolved through the B+-tree catalog ("customer.store = 'STORE-0007'").
// Both notations accept a trailing GROUP BY clause naming hierarchy
// levels ("... group by time::month, product::family" respectively
// "... group by time.month").
func (w *Warehouse) QueryText(text string) (*PreparedQuery, error) {
	var q frag.Query
	var err error
	if strings.Contains(text, "'") || (!strings.Contains(text, "::") && strings.Contains(text, ".")) {
		q, err = w.Catalog().ParseQuery(text)
	} else {
		q, err = frag.ParseQuery(w.star, text)
	}
	if err != nil {
		return nil, err
	}
	return w.Query(q), nil
}

// Advise ranks the admissible fragmentations of the warehouse's schema
// by total analytical I/O work over the query mix (the Section 4.7
// guidelines), analysing candidates on the warehouse's configured worker
// count. It needs no fact data and works on advisory-only warehouses.
func (w *Warehouse) Advise(mix []WeightedQuery, th Thresholds) []Ranked {
	return cost.AdviseParallel(w.star, w.icfg, mix, th, w.opt.params, w.opt.workers)
}

// Simulate runs the queries through the SIMPAD discrete-event simulator
// under the warehouse's SimConfig (Table 4 defaults, see WithSimConfig),
// with the simulated fragments placed by the warehouse's scheme,
// staggering and clustering over SimConfig.Disks disks. It needs no fact
// data: the simulator models the full-scale physical design.
func (w *Warehouse) Simulate(ctx context.Context, qs ...Query) ([]SimResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if w.spec == nil {
		return nil, fmt.Errorf("mdhf: warehouse opened without a fragmentation")
	}
	cfg := w.opt.simCfg
	pl := alloc.Placement{Disks: cfg.Disks, Scheme: w.opt.scheme, Staggered: w.opt.staggered, Cluster: w.opt.cluster}
	sys, err := simpad.NewSystem(cfg, w.icfg, pl, w.seed)
	if err != nil {
		return nil, err
	}
	plans := make([]*simpad.Plan, len(qs))
	for i, q := range qs {
		if err := q.Validate(w.star); err != nil {
			return nil, err
		}
		plan := simpad.NewPlan(w.spec, w.icfg, q, cfg)
		if w.opt.cluster > 1 {
			plan = plan.Clustered(w.opt.cluster)
		}
		plans[i] = plan
	}
	return sys.Run(plans), nil
}

// Close drains in-flight executions, appends and compaction, stops the
// background compactor and the shared worker pool, closes the backend
// and delta-journal files and removes the warehouse's own temporary
// directory (if it created one). Operations submitted after Close fail
// with ErrClosed. It returns any errors deferred from background
// cleanup (retired-epoch removal, journal resets) alongside its own.
func (w *Warehouse) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	// Queries, Appends and any in-flight compaction all hold wg.
	w.wg.Wait()
	if w.compactor != nil {
		// A pending trigger still fires, but its run bails out on ErrClosed.
		w.compactor.Close()
	}
	w.sched.Close()
	w.mu.Lock()
	cur := w.cur
	w.cur = snapshot{}
	w.mu.Unlock()
	if cur.b != nil {
		w.retire(cur.b) // refs are drained, so cleanup runs synchronously
	}
	var err error
	if w.dlog != nil {
		err = errors.Join(err, w.dlog.Close())
	}
	if w.ownRoot && w.rootDir != "" {
		err = errors.Join(err, os.RemoveAll(w.rootDir))
	}
	w.mu.Lock()
	err = errors.Join(err, w.bgErr)
	w.bgErr = nil
	w.mu.Unlock()
	return err
}

// begin registers one in-flight execution; the returned release must be
// called when it finishes.
func (w *Warehouse) begin() (func(), error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil, ErrClosed
	}
	w.wg.Add(1)
	return w.wg.Done, nil
}

// pin acquires the current snapshot for one execution, taking a
// reference on its backend. Admission is never blocked by appends or
// compaction: pin only takes the (briefly held) state mutex. The caller
// must already hold an in-flight registration (begin) and must unpin
// the snapshot's backend when done.
func (w *Warehouse) pin() (snapshot, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.cur.b == nil {
		return snapshot{}, fmt.Errorf("mdhf: backend not built")
	}
	w.cur.b.refs.Add(1)
	return w.cur, nil
}

// unpin releases one reference; the last release of a retired backend
// cleans it up (closes files, removes its epoch directory).
func (w *Warehouse) unpin(b *backend) {
	if b.refs.Add(-1) == 0 && b.retired.Load() {
		w.cleanupBackend(b)
	}
}

// retire marks the backend dead and drops the serving reference the
// snapshot held since the build.
func (w *Warehouse) retire(b *backend) {
	b.retired.Store(true)
	w.unpin(b)
}

// cleanupBackend closes a retired backend's files and removes its epoch
// directory, deferring any errors to Close.
func (w *Warehouse) cleanupBackend(b *backend) {
	var err error
	if b.be != nil {
		if w.pool != nil {
			// The retired epoch's last pinned query is done: its pooled
			// pages can never hit again (new lookups key the new epoch), so
			// drop them eagerly instead of letting them age out of the LRU.
			w.pool.InvalidateEpoch(b.epoch)
		}
		err = errors.Join(err, b.be.Close())
	}
	if b.own && b.dir != "" {
		err = errors.Join(err, os.RemoveAll(b.dir))
	}
	if err != nil {
		w.mu.Lock()
		w.bgErr = errors.Join(w.bgErr, err)
		w.mu.Unlock()
	}
}

// ensureData generates the fact table once (unless Config.Table supplied
// it).
func (w *Warehouse) ensureData() error {
	w.dataOnce.Do(func() {
		if w.table != nil {
			return
		}
		w.table, w.dataErr = data.Generate(w.star, w.seed)
	})
	return w.dataErr
}

// ensureBackend builds the execution backend once, on first Execute.
func (w *Warehouse) ensureBackend(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	w.buildOnce.Do(func() { w.buildErr = w.build() })
	return w.buildErr
}

// build assembles the epoch-0 backend, the delta index, the delta
// journal (on-disk backends) and the background compactor. On failure
// everything built so far — including an owned temporary directory — is
// cleaned up immediately, so a warehouse whose lazy first-Execute build
// failed partway leaves nothing behind even if Close is never called.
func (w *Warehouse) build() error {
	if w.spec == nil {
		return fmt.Errorf("mdhf: warehouse opened without a fragmentation")
	}
	if err := w.ensureData(); err != nil {
		return err
	}
	ix, err := frag.NewDeltaIndex(w.spec, w.icfg)
	if err != nil {
		return err
	}
	b, err := w.buildBackendFrom(w.table, 0)
	if err != nil {
		w.removeOwnedRoot()
		return err
	}
	var recovered *frag.DeltaSet
	if w.opt.onDisk {
		dlog, recs, err := storage.OpenDeltaLog(w.rootDir, w.star)
		if err != nil {
			w.cleanupBackend(b)
			w.removeOwnedRoot()
			return err
		}
		if b.be.Disks != nil {
			dlog.Attach(b.be.Disks, b.be.Placement)
		}
		w.dlog = dlog
		// Crash recovery: every acked Append wrote its segment to the
		// journal before publishing, so replaying the journal's intact
		// prefix through the delta index reconstructs exactly the delta
		// set (and seal sequence) the warehouse served before the crash.
		for _, rec := range recs {
			sb := ix.NewSegment(rec.Frag)
			leaves := make([]int32, len(rec.Leaves))
			for i := 0; i < rec.Rows(); i++ {
				for d := range rec.Leaves {
					leaves[d] = rec.Leaves[d][i]
				}
				sb.Add(leaves, rec.Units[i], rec.Dollars[i], rec.Costs[i])
			}
			seg := sb.Seal(rec.Seq)
			if rec.Replace {
				recovered = recovered.WithTailReplaced(seg)
			} else {
				recovered = recovered.With(seg)
			}
			if rec.Seq > w.seq {
				w.seq = rec.Seq
			}
		}
	}
	w.ix = ix
	w.compactor = storage.NewCompactor(w.compactOnce)
	w.mu.Lock()
	w.cur = snapshot{epoch: 0, b: b, deltas: recovered}
	d, set := w.curDelay, w.curDelaySet
	w.mu.Unlock()
	if set && b.be != nil {
		applyIODelay(b.be, d)
	}
	return nil
}

// removeOwnedRoot deletes the warehouse's own temporary root after a
// failed build and forgets it, so neither Close nor a later cleanup
// touches a half-built directory.
func (w *Warehouse) removeOwnedRoot() {
	if w.ownRoot && w.rootDir != "" {
		os.RemoveAll(w.rootDir)
		w.rootDir, w.ownRoot = "", false
	}
}

// buildBackendFrom builds one epoch's backend from the given base rows:
// the in-memory engine, or an on-disk Backend in its own epoch
// subdirectory of the warehouse root. On error no partial state leaks —
// files built before the failure are closed and the epoch directory
// removed (the root itself is handled by the caller).
func (w *Warehouse) buildBackendFrom(t *data.Table, epoch int64) (*backend, error) {
	b := &backend{table: t, epoch: epoch}
	b.refs.Store(1) // the serving snapshot's reference
	if !w.opt.onDisk {
		var err error
		if w.opt.compress {
			b.engine, err = engine.BuildCompressed(t, w.spec, w.icfg)
		} else {
			b.engine, err = engine.Build(t, w.spec, w.icfg)
		}
		if err != nil {
			return nil, err
		}
		return b, nil
	}
	if w.rootDir == "" {
		dir := w.opt.dir
		if dir == "" {
			var err error
			dir, err = os.MkdirTemp("", "mdhf-warehouse-*")
			if err != nil {
				return nil, err
			}
			w.ownRoot = true
		}
		w.rootDir = dir
	}
	epochDir := filepath.Join(w.rootDir, fmt.Sprintf("epoch-%03d", epoch))
	cfg := storage.BackendConfig{
		Compress:     w.opt.compress,
		PrefetchFact: w.opt.params.FactPrefetch,
		Sched:        w.sched,
		Pool:         w.pool,
		PoolEpoch:    epoch,
	}
	if w.opt.disks > 0 {
		cfg.Placement = alloc.Placement{Disks: w.opt.disks, Scheme: w.opt.scheme, Staggered: w.opt.staggered, Cluster: w.opt.cluster}
	}
	be, err := storage.BuildBackend(epochDir, t, w.spec, w.icfg, cfg)
	if err != nil {
		os.RemoveAll(epochDir)
		return nil, err
	}
	// Install the fault plan and retry policy only after the backend is
	// fully built: build-time reads stay fault-free, and every epoch a
	// compaction rebuilds inherits the same plan on its fresh disk set.
	if be.Disks != nil {
		if w.opt.retry != nil {
			be.Disks.SetRetryPolicy(*w.opt.retry)
		}
		if w.opt.faultPlan != nil {
			be.Disks.SetFaultPlan(w.opt.faultPlan)
		}
	}
	b.be, b.dir, b.own = be, epochDir, true
	return b, nil
}

// modelPlacement is the placement assumed by Explain's queue response
// model: the configured declustering, or one disk.
func (w *Warehouse) modelPlacement() alloc.Placement {
	if w.opt.disks > 0 {
		return alloc.Placement{Disks: w.opt.disks, Scheme: w.opt.scheme, Staggered: w.opt.staggered, Cluster: w.opt.cluster}
	}
	return alloc.Placement{Disks: 1, Scheme: w.opt.scheme, Staggered: w.opt.staggered, Cluster: w.opt.cluster}
}

// modelAccessTime is the per-access latency assumed by Explain's queue
// response model: the configured I/O delay (an explicit zero models
// ideal disks), or the paper's Table 4 seek + settle time when
// WithIODelay was never given.
func (w *Warehouse) modelAccessTime() time.Duration {
	if w.opt.ioDelaySet {
		return w.opt.ioDelay
	}
	return 12 * time.Millisecond
}
