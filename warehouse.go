package mdhf

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/alloc"
	"repro/internal/cost"
	"repro/internal/data"
	"repro/internal/dimtable"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/frag"
	"repro/internal/schema"
	"repro/internal/simpad"
	"repro/internal/storage"
)

// ErrClosed is returned by operations on a closed Warehouse.
var ErrClosed = errors.New("mdhf: warehouse is closed")

// Config describes what a Warehouse serves: the star schema, the MDHF
// fragmentation, and the bitmap index configuration. How it serves —
// backend, worker pool, disks, compression — is set by Options.
type Config struct {
	// Star is the star schema (required unless Table is given, in which
	// case it defaults to the table's schema).
	Star *Star
	// Fragmentation is the MDHF fragmentation in the paper's notation,
	// e.g. "time::month, product::group". It may be left empty for an
	// advisory-only warehouse (Advise works; Query does not).
	Fragmentation string
	// Indexes assigns a bitmap index kind to each dimension; nil means
	// the paper's APB-1 configuration (encoded product/customer, simple
	// channel/time).
	Indexes IndexConfig
	// Seed drives deterministic data generation and simulation (0 = 1).
	Seed int64
	// Table optionally supplies pre-generated fact data, e.g. to share
	// one table between warehouses; nil means GenerateData(Star, Seed)
	// on first execution.
	Table *FactTable
}

// Warehouse is the serving façade of this library: one handle that owns
// a fragmented warehouse — schema, fragmentation, bitmap indices, and an
// execution backend — plus the serving layer that admits many concurrent
// queries onto one shared worker pool and one disk set. Open assembles
// it; Query hands out per-query objects whose Explain and Execute run
// the analytical models and the real backend respectively.
//
// The backend (and the fact data behind it) is built lazily on first
// Execute, so a Warehouse opened only to Explain, Advise or Simulate —
// including over the full-scale APB-1 schema, whose 1.9 billion rows
// cannot be materialised — never generates data.
//
// All methods are safe for concurrent use; Execute calls from any number
// of goroutines multiplex onto the shared pool with per-query admission
// accounting (see ServingStats) and return results bit-for-bit identical
// to executing each query alone.
type Warehouse struct {
	star *schema.Star
	spec *frag.Spec // nil for advisory-only warehouses
	icfg frag.IndexConfig
	seed int64
	opt  options

	sched *exec.Scheduler

	mu     sync.Mutex // guards closed + inflight bookkeeping
	closed bool
	wg     sync.WaitGroup // in-flight executions, waited on by Close

	dataOnce sync.Once
	dataErr  error
	table    *data.Table

	buildOnce sync.Once
	buildErr  error
	engine    *engine.Engine
	store     *storage.Store
	bitmaps   *storage.BitmapFile
	sexec     *storage.Executor
	diskset   *storage.DiskSet
	placement alloc.Placement
	dir       string
	ownDir    bool

	catOnce sync.Once
	catalog *dimtable.Catalog
}

// Open assembles a Warehouse from the configuration and options. It
// validates the schema, fragmentation and index configuration and starts
// the shared worker pool; the execution backend itself is built on first
// Execute. The caller must Close the returned handle.
func Open(ctx context.Context, cfg Config, opts ...Option) (*Warehouse, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	opt := defaultOptions()
	for _, o := range opts {
		o(&opt)
	}
	star := cfg.Star
	if star == nil && cfg.Table != nil {
		star = cfg.Table.Star
	}
	if star == nil {
		return nil, fmt.Errorf("mdhf: Config.Star is required")
	}
	if cfg.Table != nil && cfg.Table.Star != star {
		return nil, fmt.Errorf("mdhf: Config.Table was generated for a different schema")
	}
	var spec *frag.Spec
	if cfg.Fragmentation != "" {
		var err error
		spec, err = frag.Parse(star, cfg.Fragmentation)
		if err != nil {
			return nil, err
		}
	}
	icfg := cfg.Indexes
	if icfg == nil {
		icfg = frag.APB1Indexes(star)
	}
	if len(icfg) != len(star.Dims) {
		return nil, fmt.Errorf("mdhf: index config has %d entries for %d dimensions", len(icfg), len(star.Dims))
	}
	if opt.disks != 0 {
		p := alloc.Placement{Disks: opt.disks, Scheme: opt.scheme, Staggered: opt.staggered, Cluster: opt.cluster}
		if err := p.Validate(); err != nil {
			return nil, err
		}
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	w := &Warehouse{
		star:  star,
		spec:  spec,
		icfg:  icfg,
		seed:  seed,
		opt:   opt,
		sched: exec.NewScheduler(opt.workers),
		table: cfg.Table,
	}
	return w, nil
}

// Star returns the schema the warehouse serves.
func (w *Warehouse) Star() *Star { return w.star }

// Fragmentation returns the MDHF fragmentation (nil for advisory-only
// warehouses opened without one).
func (w *Warehouse) Fragmentation() *Fragmentation { return w.spec }

// Indexes returns the bitmap index configuration.
func (w *Warehouse) Indexes() IndexConfig { return w.icfg }

// Workers returns the size of the shared worker pool.
func (w *Warehouse) Workers() int { return w.sched.Workers() }

// ServingStats snapshots the admission scheduler's accounting: queries
// admitted and done, in-flight and peak concurrency, fragment tasks run.
func (w *Warehouse) ServingStats() SchedStats { return w.sched.Stats() }

// Catalog returns the denormalized dimension tables with B+-tree
// indices, built on first use; its ParseQuery resolves name-level
// predicates like "time.month = 'MONTH-0003'".
func (w *Warehouse) Catalog() *DimCatalog {
	w.catOnce.Do(func() { w.catalog = dimtable.BuildCatalog(w.star) })
	return w.catalog
}

// Table returns the warehouse's fact table, generating it on first use.
func (w *Warehouse) Table(ctx context.Context) (*FactTable, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := w.ensureData(); err != nil {
		return nil, err
	}
	return w.table, nil
}

// DiskSet returns the declustered backend's disk set (nil unless opened
// WithDisks and already built).
func (w *Warehouse) DiskSet() *DiskSet {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.diskset
}

// DiskStats snapshots the per-disk access counters of the declustered
// backend (nil otherwise). The counters are warehouse-wide: they
// accumulate over every query served since the last ResetDiskStats.
func (w *Warehouse) DiskStats() []DiskStats {
	ds := w.DiskSet()
	if ds == nil {
		return nil
	}
	return ds.Stats()
}

// ResetDiskStats zeroes the per-disk access counters.
func (w *Warehouse) ResetDiskStats() {
	if ds := w.DiskSet(); ds != nil {
		ds.ResetStats()
	}
}

// SetIODelay adjusts the simulated per-access disk latency of a built
// on-disk backend at run time (all disks of a declustered set). It is a
// no-op before the backend is built and on in-memory backends — use
// WithIODelay to configure the delay up front.
func (w *Warehouse) SetIODelay(d time.Duration) {
	w.mu.Lock()
	ds, store, bf := w.diskset, w.store, w.bitmaps
	w.mu.Unlock()
	switch {
	case ds != nil:
		ds.SetIODelay(d)
	case store != nil:
		store.SetIODelay(d)
		if bf != nil {
			bf.SetIODelay(d)
		}
	}
}

// Query prepares a star query against the warehouse. The returned object
// is cheap, stateless and safe to Execute concurrently with any number
// of other queries.
func (w *Warehouse) Query(q Query) *PreparedQuery {
	return &PreparedQuery{w: w, q: q}
}

// QueryText parses and prepares a query in either notation: member
// indices ("customer::store=7, time::month=3") or, when the text quotes
// names or references attributes as dim.level, the dimension-table form
// resolved through the B+-tree catalog ("customer.store = 'STORE-0007'").
// Both notations accept a trailing GROUP BY clause naming hierarchy
// levels ("... group by time::month, product::family" respectively
// "... group by time.month").
func (w *Warehouse) QueryText(text string) (*PreparedQuery, error) {
	var q frag.Query
	var err error
	if strings.Contains(text, "'") || (!strings.Contains(text, "::") && strings.Contains(text, ".")) {
		q, err = w.Catalog().ParseQuery(text)
	} else {
		q, err = frag.ParseQuery(w.star, text)
	}
	if err != nil {
		return nil, err
	}
	return w.Query(q), nil
}

// Advise ranks the admissible fragmentations of the warehouse's schema
// by total analytical I/O work over the query mix (the Section 4.7
// guidelines), analysing candidates on the warehouse's configured worker
// count. It needs no fact data and works on advisory-only warehouses.
func (w *Warehouse) Advise(mix []WeightedQuery, th Thresholds) []Ranked {
	return cost.AdviseParallel(w.star, w.icfg, mix, th, w.opt.params, w.opt.workers)
}

// Simulate runs the queries through the SIMPAD discrete-event simulator
// under the warehouse's SimConfig (Table 4 defaults, see WithSimConfig),
// with the simulated fragments placed by the warehouse's scheme,
// staggering and clustering over SimConfig.Disks disks. It needs no fact
// data: the simulator models the full-scale physical design.
func (w *Warehouse) Simulate(ctx context.Context, qs ...Query) ([]SimResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if w.spec == nil {
		return nil, fmt.Errorf("mdhf: warehouse opened without a fragmentation")
	}
	cfg := w.opt.simCfg
	pl := alloc.Placement{Disks: cfg.Disks, Scheme: w.opt.scheme, Staggered: w.opt.staggered, Cluster: w.opt.cluster}
	sys, err := simpad.NewSystem(cfg, w.icfg, pl, w.seed)
	if err != nil {
		return nil, err
	}
	plans := make([]*simpad.Plan, len(qs))
	for i, q := range qs {
		if err := q.Validate(w.star); err != nil {
			return nil, err
		}
		plan := simpad.NewPlan(w.spec, w.icfg, q, cfg)
		if w.opt.cluster > 1 {
			plan = plan.Clustered(w.opt.cluster)
		}
		plans[i] = plan
	}
	return sys.Run(plans), nil
}

// Close waits for in-flight executions to finish, stops the shared
// worker pool, closes the backend files and removes the warehouse's own
// temporary directory (if it created one). Queries submitted after Close
// fail with ErrClosed.
func (w *Warehouse) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	w.wg.Wait()
	w.sched.Close()
	var err error
	if w.store != nil {
		err = errors.Join(err, w.store.Close())
	}
	if w.bitmaps != nil {
		err = errors.Join(err, w.bitmaps.Close())
	}
	if w.ownDir && w.dir != "" {
		err = errors.Join(err, os.RemoveAll(w.dir))
	}
	return err
}

// begin registers one in-flight execution; the returned release must be
// called when it finishes.
func (w *Warehouse) begin() (func(), error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil, ErrClosed
	}
	w.wg.Add(1)
	return w.wg.Done, nil
}

// ensureData generates the fact table once (unless Config.Table supplied
// it).
func (w *Warehouse) ensureData() error {
	w.dataOnce.Do(func() {
		if w.table != nil {
			return
		}
		w.table, w.dataErr = data.Generate(w.star, w.seed)
	})
	return w.dataErr
}

// ensureBackend builds the execution backend once, on first Execute.
func (w *Warehouse) ensureBackend(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	w.buildOnce.Do(func() { w.buildErr = w.build() })
	return w.buildErr
}

// build assembles the configured backend: the in-memory engine
// (optionally compressed), or the on-disk store + bitmap file +
// executor, optionally declustered over a DiskSet. The executor is
// attached to the warehouse's admission scheduler so every query shares
// one pool.
func (w *Warehouse) build() error {
	if w.spec == nil {
		return fmt.Errorf("mdhf: warehouse opened without a fragmentation")
	}
	if err := w.ensureData(); err != nil {
		return err
	}
	if !w.opt.onDisk {
		var err error
		if w.opt.compress {
			w.engine, err = engine.BuildCompressed(w.table, w.spec, w.icfg)
		} else {
			w.engine, err = engine.Build(w.table, w.spec, w.icfg)
		}
		return err
	}
	dir := w.opt.dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "mdhf-warehouse-*")
		if err != nil {
			return err
		}
		w.ownDir = true
	}
	w.dir = dir
	store, err := storage.Build(dir, w.table, w.spec)
	if err != nil {
		return err
	}
	var bf *storage.BitmapFile
	if w.opt.compress {
		bf, err = storage.BuildCompressedBitmaps(dir, store, w.icfg)
	} else {
		bf, err = storage.BuildBitmaps(dir, store, w.icfg)
	}
	if err != nil {
		store.Close()
		return err
	}
	var ds *storage.DiskSet
	var pl alloc.Placement
	if w.opt.disks > 0 {
		pl = alloc.Placement{Disks: w.opt.disks, Scheme: w.opt.scheme, Staggered: w.opt.staggered, Cluster: w.opt.cluster}
		if ds, err = storage.Decluster(store, bf, pl); err != nil {
			store.Close()
			bf.Close()
			return err
		}
	}
	ex := storage.NewExecutor(store, bf)
	ex.PrefetchFact = w.opt.params.FactPrefetch
	ex.Sched = w.sched
	// Publish under the mutex: DiskSet/DiskStats/SetIODelay may be called
	// concurrently with this first-Execute build. (The Execute path itself
	// is ordered by the build sync.Once, and Close by the in-flight
	// WaitGroup.)
	w.mu.Lock()
	w.store, w.bitmaps = store, bf
	w.diskset, w.placement = ds, pl
	w.sexec = ex
	w.mu.Unlock()
	if w.opt.ioDelay > 0 {
		w.SetIODelay(w.opt.ioDelay)
	}
	return nil
}

// modelPlacement is the placement assumed by Explain's queue response
// model: the configured declustering, or one disk.
func (w *Warehouse) modelPlacement() alloc.Placement {
	if w.opt.disks > 0 {
		return alloc.Placement{Disks: w.opt.disks, Scheme: w.opt.scheme, Staggered: w.opt.staggered, Cluster: w.opt.cluster}
	}
	return alloc.Placement{Disks: 1, Scheme: w.opt.scheme, Staggered: w.opt.staggered, Cluster: w.opt.cluster}
}

// modelAccessTime is the per-access latency assumed by Explain's queue
// response model: the configured I/O delay (an explicit zero models
// ideal disks), or the paper's Table 4 seek + settle time when
// WithIODelay was never given.
func (w *Warehouse) modelAccessTime() time.Duration {
	if w.opt.ioDelaySet {
		return w.opt.ioDelay
	}
	return 12 * time.Millisecond
}
