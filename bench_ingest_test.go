package mdhf

// BenchmarkAppendWhileServing establishes the ingestion trajectory of the
// epoch-versioned warehouse: sustained append throughput while 4 query
// streams keep serving and background compaction bounds the live delta
// set, then the per-query cost of folding a fixed delta load against the
// same query after compaction folded it back into the base. The measured
// numbers are written to BENCH_ingest.json (the first entry of the
// machine-readable perf history the ROADMAP asks for) so successive PRs
// can compare like with like.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"
)

// ingestBenchReport is the schema of BENCH_ingest.json.
type ingestBenchReport struct {
	Benchmark        string  `json:"benchmark"`
	BaseRows         int     `json:"base_rows"`
	BatchRows        int     `json:"batch_rows"`
	ServingStreams   int     `json:"serving_streams"`
	CompactThreshold int     `json:"auto_compact_rows"`
	AppendRowsPerSec float64 `json:"append_rows_per_sec"`
	Compactions      int64   `json:"compactions_during_append"`
	DeltaRowsFolded  int64   `json:"delta_rows_folded"`
	QueryDeltaNsOp   float64 `json:"query_with_deltas_ns_op"`
	QueryCompactNsOp float64 `json:"query_compacted_ns_op"`
	DeltaOverheadPct float64 `json:"delta_overhead_pct"`
}

func BenchmarkAppendWhileServing(b *testing.B) {
	ctx := context.Background()
	star := APB1Scaled(60)
	tab, err := GenerateData(star, 3)
	if err != nil {
		b.Fatal(err)
	}
	const batchRows = 512
	const streams = 4
	const compactAt = 16384
	w, err := Open(ctx, Config{
		Star:          star,
		Fragmentation: "time::month, product::group",
		Table:         tab,
	}, WithWorkers(8), WithDisks(4, RoundRobin), WithAutoCompaction(compactAt))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
	})

	q, err := NewQueryGenerator(star, 7).Next(OneMonthOneGroup)
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := w.Query(q).Execute(ctx); err != nil {
		b.Fatal(err)
	}

	rng := rand.New(rand.NewSource(11))
	batch := func() []FactRow {
		rows := make([]FactRow, batchRows)
		for r := range rows {
			leaves := make([]int32, len(star.Dims))
			for d := range leaves {
				leaves[d] = int32(rng.Intn(star.Dims[d].LeafCard()))
			}
			rows[r] = FactRow{Leaves: leaves, UnitsSold: 1, DollarSales: 2, Cost: 1}
		}
		return rows
	}

	report := ingestBenchReport{
		Benchmark:        "BenchmarkAppendWhileServing",
		BaseRows:         tab.N(),
		BatchRows:        batchRows,
		ServingStreams:   streams,
		CompactThreshold: compactAt,
	}

	// Phase 1: sustained appends racing a fixed set of live query streams,
	// with background compaction keeping the live delta set bounded — the
	// steady-state ingest regime.
	b.Run("append", func(b *testing.B) {
		stop := make(chan struct{})
		errc := make(chan error, streams)
		var wg sync.WaitGroup
		for s := 0; s < streams; s++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if _, _, err := w.Query(q).Execute(ctx); err != nil {
						errc <- err
						return
					}
				}
			}()
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := w.Append(ctx, batch()); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		close(stop)
		wg.Wait()
		select {
		case err := <-errc:
			b.Fatal(err)
		default:
		}
		rps := float64(b.N*batchRows) / b.Elapsed().Seconds()
		b.ReportMetric(rps, "rows/sec")
		report.AppendRowsPerSec = rps
		report.Compactions = w.ServingStats().Compactions
	})

	// Phase 2: per-query cost with a fixed, known delta load live — the
	// read-side price of ingestion. Drain whatever phase 1 left behind,
	// then append a load below the auto-compaction threshold.
	if err := w.Compact(ctx); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < compactAt/2/batchRows; i++ {
		if err := w.Append(ctx, batch()); err != nil {
			b.Fatal(err)
		}
	}
	report.DeltaRowsFolded = w.ServingStats().DeltaRows
	b.Run("query/with-deltas", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := w.Query(q).Execute(ctx); err != nil {
				b.Fatal(err)
			}
		}
		report.QueryDeltaNsOp = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})

	// Phase 3: the same query after compaction rebuilt the backend.
	if err := w.Compact(ctx); err != nil {
		b.Fatal(err)
	}
	b.Run("query/compacted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := w.Query(q).Execute(ctx); err != nil {
				b.Fatal(err)
			}
		}
		report.QueryCompactNsOp = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})

	if report.QueryCompactNsOp > 0 {
		report.DeltaOverheadPct = 100 * (report.QueryDeltaNsOp - report.QueryCompactNsOp) / report.QueryCompactNsOp
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_ingest.json", append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	fmt.Printf("BENCH_ingest.json: append %.0f rows/sec (%d compactions), delta overhead %+.1f%% over %d live rows\n",
		report.AppendRowsPerSec, report.Compactions, report.DeltaOverheadPct, report.DeltaRowsFolded)
}
