package mdhf

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/kernel"
	"repro/internal/simpad"
)

// SchedStats is the admission scheduler's accounting snapshot (see
// Warehouse.ServingStats).
type SchedStats = exec.SchedStats

// BackendKind identifies the execution backend serving a query.
type BackendKind int

const (
	// InMemoryBackend is the goroutine-parallel engine over generated
	// fact data.
	InMemoryBackend BackendKind = iota
	// OnDiskBackend is the paged fact store + bitmap file executor with
	// real prefetch-granule I/O.
	OnDiskBackend
	// DeclusteredBackend is the on-disk executor over a DiskSet of
	// per-disk serialized I/O queues.
	DeclusteredBackend
	// ClusterBackend is the multi-node scatter/gather coordinator over
	// node shards (see OpenCluster).
	ClusterBackend
)

func (k BackendKind) String() string {
	switch k {
	case InMemoryBackend:
		return "in-memory"
	case OnDiskBackend:
		return "on-disk"
	case DeclusteredBackend:
		return "declustered"
	case ClusterBackend:
		return "cluster"
	default:
		return fmt.Sprintf("backend(%d)", int(k))
	}
}

// Stats is the unified per-execution report of a Warehouse query: the
// engine work counters, the physical I/O counters and the per-disk
// accesses, merged into one struct regardless of backend. Fields not
// applicable to the serving backend are zero.
type Stats struct {
	// Backend identifies which executor served the query.
	Backend BackendKind
	// Compressed reports the WAH fast path.
	Compressed bool
	// Workers is the size of the shared pool the execution was admitted
	// to.
	Workers int
	// Wall is the end-to-end execution time as served (including
	// admission queueing behind concurrent queries).
	Wall time.Duration
	// Epoch is the warehouse epoch the execution pinned at admission; the
	// whole query was served from that epoch's backend plus the delta
	// segments sealed by then, regardless of concurrent compactions.
	Epoch int64
	// DeltaRows is the number of appended (not yet compacted) rows folded
	// into the result, on any backend.
	DeltaRows int64
	// CacheHit reports that the result was served from the warehouse's
	// result cache (WithResultCache) without touching the backend; Shared
	// reports that it was obtained by joining an identical concurrent
	// execution (singleflight). Either way the result is byte-identical to
	// an uncached execution and the I/O counters below are zero.
	CacheHit bool
	Shared   bool
	// SharedScan reports the shared-scan batching effect on this
	// execution (WithSharedScans): the batch it ran in, the fragments it
	// co-scanned with batch-mates, and the physical reads it consumed
	// from their reads instead of issuing itself. The logical I/O
	// counters in Engine and IO are unaffected by sharing — they describe
	// the query's own work, byte-identical to solo execution.
	SharedScan SharedScanStats

	// Engine holds the in-memory engine's work counters
	// (fragments/rows/bitmaps).
	Engine EngineStats
	// IO holds the on-disk executor's physical I/O counters.
	IO StorageIOStats
	// Disks snapshots the declustered backend's per-disk access counters
	// at completion. The counters are warehouse-wide (shared by all
	// in-flight queries); per-query attribution lives in IO.
	Disks []DiskStats
	// Cluster reports a scattered execution's fan-out — nodes used,
	// transport retries, hedges — on the ClusterBackend (nil otherwise);
	// Engine, IO and DeltaRows above then aggregate the per-node partial
	// stats.
	Cluster *ClusterExecStats
}

// Delta-read cost types (see Explain.Delta).
type (
	// DeltaCost is the estimated extra work of reading the appended (not
	// yet compacted) delta segments on top of the base-fragment cost.
	DeltaCost = cost.DeltaCost
	// DeltaState summarises the live delta set the estimate is over.
	DeltaState = cost.DeltaState
)

// Explain is the analytical view of one query under the warehouse's
// physical design, unifying the I/O cost model, the per-disk queue
// response model and the SIMPAD physical plan behind one call.
type Explain struct {
	// Class is the paper's Q1-Q4 confinement classification (Section 4.4).
	Class QueryClass
	// Cost is the analytical I/O estimate of EstimateCost (Section 4.5);
	// Cost.Class is the I/O overhead class.
	Cost QueryCost
	// Response is the per-disk queue response estimate of
	// EstimateResponse under the warehouse's placement (one disk when not
	// declustered) and access time (WithIODelay, else the Table 4
	// default).
	Response ResponseEstimate
	// Plan is the SIMPAD physical execution plan under the warehouse's
	// SimConfig.
	Plan *SimPlan
	// Delta is the estimated delta-read overhead given the live delta
	// set at Explain time: confinement applies to delta segments exactly
	// as to base fragments, so only the relevant fraction is visited.
	// Zero before anything is appended (or after compaction caught up).
	Delta DeltaCost
	// Cache predicts how the configured buffer pool serves the query's
	// working set (zero value when the warehouse has no pool): the
	// confinement-derived bytes the query touches, the expected steady-
	// state hit rate, and the physical I/O the pool absorbs.
	Cache CacheCost
	// Shared predicts the shared-scan coalescing effect (zero unless the
	// warehouse was opened WithSharedScans): the expected fraction of the
	// query's physical reads it still pays when batched with the observed
	// query mix (this query alone before anything ran) at the observed
	// peak concurrency.
	Shared SharedCost
}

// PreparedQuery is a star query bound to a Warehouse: a cheap, stateless
// handle whose Explain runs the analytical models (no fact data needed)
// and whose Execute runs the real backend through the shared admission
// scheduler. Any number of PreparedQueries may Execute concurrently.
type PreparedQuery struct {
	w *Warehouse
	q Query
}

// Query returns the underlying star query.
func (p *PreparedQuery) Query() Query { return p.q }

// Class returns the paper's Q1-Q4 confinement classification of the
// query under the warehouse's fragmentation (Unsupported on an
// advisory-only warehouse opened without one).
func (p *PreparedQuery) Class() QueryClass {
	if p.w.spec == nil {
		return Unsupported
	}
	return p.w.spec.Classify(p.q)
}

// Explain estimates the query without executing it: the analytical I/O
// cost (Section 4.5), the modelled response under the warehouse's disk
// placement (Section 4.6's queue model), and the SIMPAD physical plan.
// It needs no fact data, so it works before the backend is built — and
// at schema scales that could never be materialised.
func (p *PreparedQuery) Explain(ctx context.Context) (Explain, error) {
	w := p.w
	if err := ctx.Err(); err != nil {
		return Explain{}, err
	}
	if w.spec == nil {
		return Explain{}, fmt.Errorf("mdhf: warehouse opened without a fragmentation")
	}
	if err := p.q.Validate(w.star); err != nil {
		return Explain{}, err
	}
	ex := Explain{Class: w.spec.Classify(p.q)}
	ex.Cost = cost.Estimate(w.spec, w.icfg, p.q, w.opt.params)
	// The response model is left worker-unbounded (only the disks limit
	// parallelism): bounding it by the serving pool would make the
	// analytical estimate vary with the host's core count. Callers
	// wanting the worker-limited critical path can call EstimateResponse
	// with an explicit DiskParams.Workers.
	dp := cost.DiskParams{
		Placement:  w.modelPlacement(),
		AccessTime: w.modelAccessTime(),
	}
	if plan := w.opt.faultPlan; plan != nil {
		// Degraded-disk response: under a fault plan every read costs
		// RetryFactor(p) expected attempts, so each disk's queue deepens by
		// that factor (a permanently failed disk fails queries instead of
		// slowing them, so it is not modelled here).
		f := cost.RetryFactor(plan.ReadErrorRate + plan.CorruptRate)
		if f > 1 {
			dp.Degraded = make(map[int]float64, dp.Placement.Disks)
			for k := 0; k < dp.Placement.Disks; k++ {
				dp.Degraded[k] = f
			}
		}
	}
	ex.Response = cost.EstimateResponse(w.spec, w.icfg, p.q, w.opt.params, dp)
	plan := simpad.NewPlan(w.spec, w.icfg, p.q, w.opt.simCfg)
	if w.opt.cluster > 1 {
		plan = plan.Clustered(w.opt.cluster)
	}
	ex.Plan = plan
	w.mu.Lock()
	set := w.cur.deltas
	w.mu.Unlock()
	if set.Rows() > 0 {
		ex.Delta = cost.EstimateDelta(w.spec, p.q, cost.DeltaState{
			Fragments: set.Fragments(),
			Segments:  set.Segments(),
			Rows:      set.Rows(),
		})
	}
	if w.pool != nil {
		ex.Cache = cost.EstimateCache(ex.Cost, w.pool.Budget())
	}
	if w.opt.sharedWindow > 0 {
		// Predict coalescing against the mix the warehouse actually
		// serves; before anything ran, a self-mix (worst case: full
		// overlap only with itself).
		mix := w.ObservedMix()
		if len(mix) == 0 {
			mix = []WeightedQuery{{Query: p.q, Weight: 1}}
		}
		k := 2
		if pk := int(w.sched.Stats().PeakInFlight); pk > k {
			k = pk
		}
		ex.Shared = cost.EstimateShared(w.spec, p.q, mix, k)
	}
	return ex, nil
}

// Execute runs the query on the warehouse's backend and returns the
// result — the grand-total aggregate plus, when the query has a GROUP BY,
// the per-group rows in deterministic order — together with unified
// statistics. The execution is admitted to the shared worker pool, so any
// number of concurrent Execute calls multiplex onto the same workers and
// disks; results are bit-for-bit identical to executing the query alone.
//
// Grouped roll-ups are the workload MDHF was designed for: when every
// GROUP BY level is at or above the fragmentation level of its dimension
// (Explain reports Cost.GroupAligned), each fragment belongs to exactly
// one group and grouping adds no per-row work and no extra I/O.
func (p *PreparedQuery) Execute(ctx context.Context) (Result, Stats, error) {
	w := p.w
	release, err := w.begin()
	if err != nil {
		return Result{}, Stats{}, err
	}
	defer release()
	if d := w.opt.deadline; d > 0 {
		// Per-query deadline (WithQueryDeadline): bound this execution so a
		// query stuck behind failing disks fails with DeadlineExceeded
		// instead of hanging its caller. A tighter caller deadline wins.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	if err := w.ensureBackend(ctx); err != nil {
		return Result{}, Stats{}, err
	}
	var res Result
	var st Stats
	if w.rcache != nil {
		res, st, err = p.executeCached(ctx)
	} else {
		// Pin the serving snapshot: this epoch's backend plus the delta
		// segments sealed so far. Concurrent appends and compactions replace
		// the warehouse's snapshot copy-on-write, so this execution's view —
		// and result — is frozen at admission.
		var snap snapshot
		snap, err = w.pin()
		if err != nil {
			return Result{}, Stats{}, err
		}
		defer w.unpin(snap.b)
		res, st, err = p.executeOn(ctx, snap)
	}
	if err == nil {
		w.recordObserved(p.q)
	}
	return res, st, err
}

// errBackendNotBuilt matches pin's failure for the cached admission path.
func errBackendNotBuilt() error { return fmt.Errorf("mdhf: backend not built") }

// baseStats fills the execution-independent Stats fields for a snapshot —
// the backend identity a cache-served result still reports.
func (w *Warehouse) baseStats(snap snapshot) Stats {
	st := Stats{
		Compressed: w.opt.compress,
		Workers:    w.sched.Workers(),
		Epoch:      snap.epoch,
	}
	switch {
	case snap.b.engine != nil:
		st.Backend = InMemoryBackend
	case snap.b.be.Disks != nil:
		st.Backend = DeclusteredBackend
	default:
		st.Backend = OnDiskBackend
	}
	return st
}

// executeOn runs the query against an already-pinned snapshot — the
// shared tail of the plain and cached Execute paths. The caller owns the
// pin and the in-flight registration. With shared scans on, the
// execution first tries the admission batcher (so even a result-cache
// miss leader coalesces with merely-overlapping concurrent queries); a
// batch-wide failure falls back to solo execution here.
func (p *PreparedQuery) executeOn(ctx context.Context, snap snapshot) (Result, Stats, error) {
	if p.w.shared != nil {
		res, st, handled, err := p.executeSharedOn(ctx, snap)
		if handled {
			return res, st, err
		}
	}
	return p.executeSoloOn(ctx, snap)
}

// executeSoloOn is the direct single-query execution path.
func (p *PreparedQuery) executeSoloOn(ctx context.Context, snap snapshot) (Result, Stats, error) {
	w := p.w
	st := w.baseStats(snap)
	deltas := kernel.Deltas{Ix: w.ix, Set: snap.deltas}
	start := time.Now()
	if snap.b.engine != nil {
		res, est, err := snap.b.engine.ExecuteGroupedDeltas(ctx, w.sched, p.q, deltas)
		if err != nil {
			return Result{}, Stats{}, err
		}
		st.Engine = est
		st.DeltaRows = est.DeltaRows
		st.Wall = time.Since(start)
		return res, st, nil
	}
	res, io, err := snap.b.be.Exec.ExecuteGroupedDeltas(ctx, p.q, deltas)
	if err != nil {
		return Result{}, Stats{}, err
	}
	st.IO = io
	st.DeltaRows = io.DeltaRows
	if snap.b.be.Disks != nil {
		st.Disks = snap.b.be.Disks.Stats()
	}
	st.Wall = time.Since(start)
	return res, st, nil
}

// ExplainAll estimates every query, fanning the analyses out over the
// warehouse's shared worker pool; results return in argument order.
func (w *Warehouse) ExplainAll(ctx context.Context, qs []Query) ([]Explain, error) {
	release, err := w.begin()
	if err != nil {
		return nil, err
	}
	defer release()
	return exec.MapOn(ctx, w.sched, len(qs),
		func() struct{} { return struct{}{} },
		func(_ struct{}, i int) (Explain, error) {
			return w.Query(qs[i]).Explain(ctx)
		})
}
