package mdhf

import (
	"context"
	"time"

	"repro/internal/frag"
	"repro/internal/kernel"
)

// resCache is the warehouse's query-result cache (level 2 of the caching
// stack; level 1 is the storage buffer pool). Entries are keyed by the
// canonical query text (frag.Format round-trips exactly, so distinct
// texts are distinct queries) and validated against the serving state the
// result was computed for — (epoch, DeltaSet.MaxSeq). The cache maintains
// one invariant: every cached entry and every non-poisoned pending
// computation is keyed at the warehouse's *current* state. Appends and
// compactions uphold it in the same critical section that publishes the
// new state:
//
//   - Append evicts exactly the entries whose confinement region contains
//     a touched fragment (a query result depends only on its relevant
//     fragments' rows, so everything else is re-keyed to the new MaxSeq
//     and keeps hitting) and poisons intersecting pending computations —
//     their result is delivered to waiting followers, never stored.
//   - Compaction is result-neutral (the rebuilt backend serves
//     byte-identical results), so the epoch swap re-keys everything.
//
// Lookup pins the snapshot and consults the cache under the same state
// mutex, so a hit is always consistent with the pinned state and a
// computed result is stored atomically with respect to invalidations.
//
// Identical concurrent executions collapse onto one computation
// (singleflight): the first becomes the leader, later ones wait for its
// result while holding their own snapshot pin — if the leader fails (its
// own cancellation, say), each follower falls back to computing on its
// own pinned snapshot.
//
// All fields are guarded by Warehouse.mu.
type resCache struct {
	cap     int
	entries map[string]*resEntry
	head    *resEntry // most recently used
	tail    *resEntry
	pending map[string]*resPending

	hits          int64
	misses        int64
	shared        int64
	invalidations int64
	rekeys        int64
}

// resEntry is one cached query result.
type resEntry struct {
	text   string
	epoch  int64
	maxSeq uint64
	region frag.Region // the query's confinement, for append invalidation

	res       Result // deep-copied; copied again on every hit
	deltaRows int64

	prev, next *resEntry
}

// resPending is one in-flight computation identical executions collapse
// onto.
type resPending struct {
	text   string
	epoch  int64
	maxSeq uint64
	region frag.Region

	done      chan struct{} // closed by the leader when res/err are set
	res       Result
	deltaRows int64
	err       error

	// poisoned marks the computation's snapshot invalidated by an append
	// that touched its region: the result still reaches followers (it is
	// correct for the snapshot they pinned) but is never stored.
	poisoned bool
}

func newResCache(capacity int) *resCache {
	return &resCache{
		cap:     capacity,
		entries: make(map[string]*resEntry, capacity),
		pending: make(map[string]*resPending),
	}
}

// CacheStats is the warehouse-wide caching snapshot surfaced in
// ServingStats.Cache.
type CacheStats struct {
	// Hits/Misses count result-cache lookups at Execute admission.
	Hits, Misses int64
	// Shared counts executions served by joining an identical in-flight
	// computation (singleflight followers).
	Shared int64
	// Invalidations counts entries evicted (and in-flight computations
	// poisoned) by appends touching their fragments.
	Invalidations int64
	// Rekeys counts entries revalidated in place: untouched by an append,
	// or carried across a result-neutral compaction.
	Rekeys int64
	// Entries/Capacity describe the result cache's occupancy.
	Entries, Capacity int
	// Pool is the buffer pool's counter snapshot (zero without a pool).
	Pool PoolStats
}

// copyResult deep-copies a result so cache residents never alias caller-
// visible slices (Row.Members is mutable).
func copyResult(r Result) Result {
	out := r
	if r.Groups != nil {
		out.Groups = make([]kernel.Row, len(r.Groups))
		for i, g := range r.Groups {
			out.Groups[i] = g
			if g.Members != nil {
				out.Groups[i].Members = append([]int(nil), g.Members...)
			}
		}
	}
	return out
}

// get returns the entry valid for the given serving state, refreshing its
// recency (Warehouse.mu held).
func (c *resCache) get(text string, epoch int64, maxSeq uint64) *resEntry {
	e := c.entries[text]
	if e == nil || e.epoch != epoch || e.maxSeq != maxSeq {
		return nil
	}
	c.moveToFront(e)
	return e
}

// put stores a computed result under the pending computation's (possibly
// re-keyed) state, evicting the least recently used entry when at
// capacity (Warehouse.mu held).
func (c *resCache) put(text string, epoch int64, maxSeq uint64, region frag.Region, res Result, deltaRows int64) {
	if c.cap < 1 {
		return
	}
	if old := c.entries[text]; old != nil {
		c.remove(old)
	}
	for len(c.entries) >= c.cap {
		c.remove(c.tail)
	}
	e := &resEntry{text: text, epoch: epoch, maxSeq: maxSeq, region: region, res: res, deltaRows: deltaRows}
	c.entries[text] = e
	c.pushFront(e)
}

// invalidate applies one append's effect: entries and pending
// computations whose region contains a touched fragment are evicted
// respectively poisoned; everything else is re-keyed to the new MaxSeq
// (the appended rows cannot change their results). Called in the same
// critical section that publishes the new delta set (Warehouse.mu held).
func (c *resCache) invalidate(spec *frag.Spec, touched []int64, newSeq uint64) {
	coords := make([][]int, len(touched))
	for i, id := range touched {
		coords[i] = spec.Coord(id)
	}
	for e := c.head; e != nil; {
		next := e.next
		if regionTouches(e.region, coords) {
			c.remove(e)
			c.invalidations++
		} else {
			e.maxSeq = newSeq
			c.rekeys++
		}
		e = next
	}
	for _, pd := range c.pending {
		if pd.poisoned {
			continue
		}
		if regionTouches(pd.region, coords) {
			pd.poisoned = true
			c.invalidations++
		} else {
			pd.maxSeq = newSeq
		}
	}
}

// rekeyAll carries every entry and non-poisoned pending computation
// across a result-neutral compaction to the new epoch's state. Called in
// the same critical section as the snapshot swap (Warehouse.mu held).
func (c *resCache) rekeyAll(epoch int64, maxSeq uint64) {
	for e := c.head; e != nil; e = e.next {
		e.epoch, e.maxSeq = epoch, maxSeq
		c.rekeys++
	}
	for _, pd := range c.pending {
		if pd.poisoned {
			continue
		}
		pd.epoch, pd.maxSeq = epoch, maxSeq
	}
}

// regionTouches reports whether any touched fragment coordinate falls
// inside the region (per-attribute half-open member ranges).
func regionTouches(r frag.Region, coords [][]int) bool {
	for _, coord := range coords {
		inside := true
		for i := range coord {
			if coord[i] < r.Lo[i] || coord[i] >= r.Hi[i] {
				inside = false
				break
			}
		}
		if inside {
			return true
		}
	}
	return false
}

func (c *resCache) remove(e *resEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
	delete(c.entries, e.text)
}

func (c *resCache) pushFront(e *resEntry) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *resCache) moveToFront(e *resEntry) {
	if c.head == e {
		return
	}
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
}

// executeCached is Execute's result-cache path: pin + lookup + pending
// registration happen in one state-mutex critical section, so the lookup
// key always matches the pinned snapshot and a computed result can never
// be stored after an invalidation it should have observed. begin() is
// already held by the caller.
func (p *PreparedQuery) executeCached(ctx context.Context) (Result, Stats, error) {
	w := p.w
	start := time.Now()
	text := frag.Format(w.star, p.q)

	w.mu.Lock()
	if w.cur.b == nil {
		w.mu.Unlock()
		return Result{}, Stats{}, errBackendNotBuilt()
	}
	w.cur.b.refs.Add(1)
	snap := w.cur
	seq := snap.deltas.MaxSeq()
	c := w.rcache
	if e := c.get(text, snap.epoch, seq); e != nil {
		c.hits++
		res := copyResult(e.res)
		deltaRows := e.deltaRows
		w.mu.Unlock()
		w.unpin(snap.b)
		st := w.baseStats(snap)
		st.CacheHit = true
		st.DeltaRows = deltaRows
		st.Wall = time.Since(start)
		return res, st, nil
	}
	c.misses++
	if pd := c.pending[text]; pd != nil && pd.epoch == snap.epoch && pd.maxSeq == seq && !pd.poisoned {
		w.mu.Unlock()
		defer w.unpin(snap.b)
		select {
		case <-ctx.Done():
			return Result{}, Stats{}, ctx.Err()
		case <-pd.done:
		}
		if pd.err == nil {
			w.mu.Lock()
			c.shared++
			w.mu.Unlock()
			st := w.baseStats(snap)
			st.Shared = true
			st.DeltaRows = pd.deltaRows
			st.Wall = time.Since(start)
			return copyResult(pd.res), st, nil
		}
		// The leader failed — possibly its own cancellation, which must not
		// fail this execution. Compute on our own pinned snapshot.
		res, st, err := p.executeOn(ctx, snap)
		st.Wall = time.Since(start)
		return res, st, err
	}
	if c.pending[text] != nil {
		// A pending computation exists for a different state (poisoned or
		// from an older snapshot): compute solo, without collapsing.
		w.mu.Unlock()
		defer w.unpin(snap.b)
		res, st, err := p.executeOn(ctx, snap)
		st.Wall = time.Since(start)
		return res, st, err
	}
	pd := &resPending{
		text: text, epoch: snap.epoch, maxSeq: seq,
		region: w.spec.Relevant(p.q),
		done:   make(chan struct{}),
	}
	c.pending[text] = pd
	w.mu.Unlock()

	defer w.unpin(snap.b)
	res, st, err := p.executeOn(ctx, snap)
	w.mu.Lock()
	if c.pending[pd.text] == pd {
		delete(c.pending, pd.text)
	}
	if err == nil {
		shared := copyResult(res)
		pd.res, pd.deltaRows = shared, st.DeltaRows
		if !pd.poisoned {
			// pd's state was re-keyed alongside every invalidation that left
			// the result valid, so storing under it is sound.
			c.put(pd.text, pd.epoch, pd.maxSeq, pd.region, shared, st.DeltaRows)
		}
	}
	pd.err = err
	w.mu.Unlock()
	close(pd.done)
	st.Wall = time.Since(start)
	return res, st, err
}
