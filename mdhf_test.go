package mdhf

import "testing"

// TestPublicAPIQuickstart exercises the documented quick-start path.
func TestPublicAPIQuickstart(t *testing.T) {
	star := APB1()
	spec, err := ParseFragmentation(star, "time::month, product::group")
	if err != nil {
		t.Fatal(err)
	}
	idx := APB1Indexes(star)
	q, err := ParseQuery(star, "customer::store=7")
	if err != nil {
		t.Fatal(err)
	}
	c := EstimateCost(spec, idx, q, DefaultCostParams())
	if c.Fragments != 11_520 {
		t.Fatalf("fragments = %d", c.Fragments)
	}
	if spec.IOClassOf(q) != IOC2NoSupp {
		t.Fatalf("IOClass = %v", spec.IOClassOf(q))
	}
}

func TestPublicAPIEngineRoundTrip(t *testing.T) {
	star := TinySchema()
	tab, err := GenerateData(star, 5)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := ParseFragmentation(star, "time::month, product::group")
	if err != nil {
		t.Fatal(err)
	}
	icfg := make(IndexConfig, len(star.Dims))
	for i := range icfg {
		icfg[i] = IndexSpec{Kind: EncodedIndex}
	}
	eng, err := BuildEngine(tab, spec, icfg)
	if err != nil {
		t.Fatal(err)
	}
	gen := NewQueryGenerator(star, 9)
	for _, qt := range []QueryType{OneMonth, OneStore, OneCodeOneQuarter} {
		q, err := gen.Next(qt)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := eng.Execute(q, 4)
		if err != nil {
			t.Fatal(err)
		}
		if want := ScanAggregate(tab, q); got != want {
			t.Fatalf("%s: %+v != %+v", qt.Name, got, want)
		}
	}
}

func TestPublicAPISimulation(t *testing.T) {
	star := APB1()
	spec, _ := ParseFragmentation(star, "time::month, product::group")
	icfg := APB1Indexes(star)
	cfg := DefaultSimConfig()
	placement := Placement{Disks: cfg.Disks, Scheme: RoundRobin, Staggered: true}
	sys, err := NewSimSystem(cfg, icfg, placement, 1)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := ParseQuery(star, "time::month=3, product::group=5")
	rs := sys.Run([]*SimPlan{NewSimPlan(spec, icfg, q, cfg)})
	if rs[0].ResponseTime <= 0 || rs[0].Subqueries != 1 {
		t.Fatalf("result = %+v", rs[0])
	}
}

func TestPublicAPIAdvisor(t *testing.T) {
	star := APB1()
	icfg := APB1Indexes(star)
	gen := NewQueryGenerator(star, 2)
	q1, _ := gen.Next(OneMonthOneGroup)
	q2, _ := gen.Next(OneStore)
	mix := []WeightedQuery{
		{Name: "1MONTH1GROUP", Query: q1, Weight: 0.7},
		{Name: "1STORE", Query: q2, Weight: 0.3},
	}
	th := Thresholds{MinBitmapFragPages: 1, MaxFragments: MaxFragments(star, 1)}
	ranked := Advise(star, icfg, mix, th, DefaultCostParams())
	if len(ranked) == 0 {
		t.Fatal("no candidates")
	}
	if ranked[0].Work <= 0 {
		t.Fatal("zero work for best candidate")
	}
}

func TestPublicAPIAllocationAnalysis(t *testing.T) {
	star := APB1()
	spec, _ := ParseFragmentation(star, "time::month, product::group")
	q, _ := ParseQuery(star, "product::code=77")
	// The Section 4.6 gcd pathology via the public API.
	if got := DisksUsed(spec, q, Placement{Disks: 100, Scheme: RoundRobin}); got != 5 {
		t.Fatalf("disks used = %d, want 5", got)
	}
	if got := DisksUsed(spec, q, Placement{Disks: 101, Scheme: RoundRobin}); got != 24 {
		t.Fatalf("prime disks used = %d, want 24", got)
	}
}
