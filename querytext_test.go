package mdhf

// Round-trip and fuzz coverage for QueryText in both notations — the
// member-index form ("customer::store=7 group by time::month") and the
// catalog name form ("customer.store = 'STORE-0007' group by time.month")
// — including GROUP BY clauses and malformed inputs, which must error,
// never panic.

import (
	"context"
	"reflect"
	"testing"
)

func queryTextWarehouse(t testing.TB) *Warehouse {
	t.Helper()
	w, err := Open(context.Background(), Config{
		Star:          TinySchema(),
		Fragmentation: "time::month, product::group",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

// TestQueryTextRoundTrip parses valid queries in both notations, formats
// them back, reparses, and requires exact equality.
func TestQueryTextRoundTrip(t *testing.T) {
	w := queryTextWarehouse(t)
	texts := []string{
		"customer::store=3",
		"customer::store=3, time::month=2",
		"time::month=1 group by product::group",
		"group by time::month",
		"group by time::quarter, product::code",
		"product::code=5, time::quarter=1 group by time::month, customer::retailer",
		"customer.store = 'STORE-0003'",
		"customer.store = 'STORE-0003', time.month = 'MONTH-0002' group by product.group",
		"group by time.month, product.code",
	}
	for _, text := range texts {
		pq, err := w.QueryText(text)
		if err != nil {
			t.Fatalf("%q: %v", text, err)
		}
		q := pq.Query()
		// Round-trip through the index notation.
		idx := FormatQuery(w.Star(), q)
		pq2, err := w.QueryText(idx)
		if err != nil {
			t.Fatalf("reparse %q (from %q): %v", idx, text, err)
		}
		if !reflect.DeepEqual(q, pq2.Query()) {
			t.Fatalf("%q: index round-trip diverged: %+v vs %+v", text, q, pq2.Query())
		}
		// Round-trip through the catalog name notation.
		named := w.Catalog().FormatQuery(q)
		pq3, err := w.QueryText(named)
		if err != nil {
			t.Fatalf("reparse %q (from %q): %v", named, text, err)
		}
		if !reflect.DeepEqual(q, pq3.Query()) {
			t.Fatalf("%q: catalog round-trip diverged: %+v vs %+v", text, q, pq3.Query())
		}
	}
}

// TestQueryTextMalformed feeds malformed inputs in both notations; every
// one must return an error without panicking.
func TestQueryTextMalformed(t *testing.T) {
	w := queryTextWarehouse(t)
	bad := []string{
		"nonsense",
		"customer::store",
		"customer::store=",
		"customer::store=xx",
		"customer::store=-1",
		"customer::store=99999",
		"nope::store=1",
		"customer::nope=1",
		"customer::store=1, customer::retailer=0", // duplicate dimension
		"customer::store=1 group by",
		"customer::store=1 group by nope::level",
		"customer::store=1 group by customer::nope",
		"customer::store=1 group by time::month, time::month", // duplicate level
		"customer::store=1 group by ,",
		"group by",
		"customer.store = 'NOPE-0000'",
		"customer.store = STORE-0003'",
		"customer.nope = 'STORE-0003'",
		"customer.store = 'STORE-0003' group by nope.level",
		"customer.store = 'STORE-0003' group by time.month, time.month",
		"time.month group by time.month",
	}
	for _, text := range bad {
		if _, err := w.QueryText(text); err == nil {
			t.Errorf("QueryText(%q) accepted", text)
		}
	}
}

// FuzzQueryText throws arbitrary text at both parsers: parsing must never
// panic, and anything that parses must survive a format → reparse
// round-trip in both notations.
func FuzzQueryText(f *testing.F) {
	for _, seed := range []string{
		"customer::store=3",
		"time::month=1 group by product::group",
		"group by time::quarter, product::code",
		"customer.store = 'STORE-0003' group by time.month",
		"GROUP BY time::month",
		"a::b=c group by ::",
		"=,=,group by,::",
		"time::month=1 group by time::month group by time::month",
		"'",
		". = ' '",
	} {
		f.Add(seed)
	}
	w := queryTextWarehouse(f)
	f.Fuzz(func(t *testing.T, text string) {
		pq, err := w.QueryText(text)
		if err != nil {
			return
		}
		q := pq.Query()
		idx := FormatQuery(w.Star(), q)
		pq2, err := w.QueryText(idx)
		if err != nil {
			t.Fatalf("format %q of accepted %q failed to reparse: %v", idx, text, err)
		}
		if !reflect.DeepEqual(q, pq2.Query()) {
			t.Fatalf("round-trip diverged for %q: %+v vs %+v", text, q, pq2.Query())
		}
		named := w.Catalog().FormatQuery(q)
		pq3, err := w.QueryText(named)
		if err != nil {
			t.Fatalf("catalog format %q of accepted %q failed to reparse: %v", named, text, err)
		}
		if !reflect.DeepEqual(q, pq3.Query()) {
			t.Fatalf("catalog round-trip diverged for %q: %+v vs %+v", text, q, pq3.Query())
		}
	})
}
