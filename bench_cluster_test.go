package mdhf

// BenchmarkClusterServing measures multi-node scatter/gather scaling in
// the disk-latency regime: on-disk nodes with one simulated disk each
// (200µs per access), 16 concurrent query streams over the cache
// benchmark's skewed 80%-hot-quarter mix, at 1, 2, 4 and 8 in-process
// nodes. Throughput (q/s) and p95 latency per node count are written to
// BENCH_cluster.json; every result is cross-checked against the
// single-node warehouse oracle.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"
)

// clusterBenchPoint is one node-count measurement in BENCH_cluster.json.
type clusterBenchPoint struct {
	Nodes   int     `json:"nodes"`
	QPS     float64 `json:"qps"`
	P95Us   int64   `json:"p95_us"`
	Retries int64   `json:"retries"`
}

// clusterBenchReport is the schema of BENCH_cluster.json.
type clusterBenchReport struct {
	Benchmark   string              `json:"benchmark"`
	BaseRows    int                 `json:"base_rows"`
	IODelayUs   int64               `json:"io_delay_us"`
	Streams     int                 `json:"streams"`
	Execs       int                 `json:"execs"`
	HotFraction float64             `json:"hot_fraction"`
	Points      []clusterBenchPoint `json:"points"`
	Speedup8x   float64             `json:"speedup_8x_vs_1"`
}

func BenchmarkClusterServing(b *testing.B) {
	ctx := context.Background()
	star := APB1Scaled(60)
	tab, err := GenerateData(star, 2)
	if err != nil {
		b.Fatal(err)
	}
	const (
		ioDelay = 200 * time.Microsecond
		streams = 16
		execs   = 192
		hotFrac = 0.8
		seed    = 31
	)
	wl := newCacheBenchWorkload(b, star)
	seqn := wl.sequence(seed, execs, hotFrac)

	// Oracle results from the in-memory single warehouse, computed once.
	oracle, err := Open(ctx, Config{Star: star, Fragmentation: "time::month, product::group", Table: tab})
	if err != nil {
		b.Fatal(err)
	}
	want := make([]Result, len(seqn))
	for i, q := range seqn {
		if want[i], _, err = oracle.Query(q).Execute(ctx); err != nil {
			b.Fatal(err)
		}
	}
	oracle.Close()

	report := clusterBenchReport{
		Benchmark:   "BenchmarkClusterServing",
		BaseRows:    tab.N(),
		IODelayUs:   ioDelay.Microseconds(),
		Streams:     streams,
		Execs:       execs,
		HotFraction: hotFrac,
	}

	for _, nodes := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			c, err := OpenCluster(ctx,
				Config{Star: star, Fragmentation: "time::month, product::group", Table: tab},
				WithNodes(nodes, GapRoundRobin),
				WithOnDisk(b.TempDir()), WithIODelay(ioDelay), WithWorkers(8))
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			warm, err := c.QueryText("")
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := warm.Execute(ctx); err != nil { // build outside timing
				b.Fatal(err)
			}

			var best clusterBenchPoint
			b.ResetTimer()
			for it := 0; it < b.N; it++ {
				lat := make([]time.Duration, len(seqn))
				var wg sync.WaitGroup
				var firstErr error
				var mu sync.Mutex
				next := make(chan int)
				start := time.Now()
				for s := 0; s < streams; s++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for i := range next {
							t0 := time.Now()
							got, _, err := c.Query(seqn[i]).Execute(ctx)
							lat[i] = time.Since(t0)
							mu.Lock()
							if err != nil && firstErr == nil {
								firstErr = err
							}
							if err == nil && !reflect.DeepEqual(got, want[i]) {
								firstErr = fmt.Errorf("query %d diverged from the oracle", i)
							}
							mu.Unlock()
						}
					}()
				}
				for i := range seqn {
					next <- i
				}
				close(next)
				wg.Wait()
				wall := time.Since(start)
				if firstErr != nil {
					b.Fatal(firstErr)
				}
				sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
				point := clusterBenchPoint{
					Nodes: nodes,
					QPS:   float64(len(seqn)) / wall.Seconds(),
					P95Us: lat[len(lat)*95/100].Microseconds(),
				}
				if point.QPS > best.QPS {
					best = point
				}
			}
			b.StopTimer()
			st, err := c.ServingStats(ctx)
			if err != nil {
				b.Fatal(err)
			}
			for _, cs := range st.Client {
				best.Retries += cs.Retries
			}
			b.ReportMetric(best.QPS, "q/s")
			b.ReportMetric(float64(best.P95Us), "p95-µs")
			report.Points = append(report.Points, best)
		})
	}

	if len(report.Points) == 4 && report.Points[0].QPS > 0 {
		report.Speedup8x = report.Points[3].QPS / report.Points[0].QPS
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_cluster.json", append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	fmt.Printf("BENCH_cluster.json: %d-row shardset, %dµs disks, %d streams; ", report.BaseRows, report.IODelayUs, report.Streams)
	for _, p := range report.Points {
		fmt.Printf("n=%d %.0f q/s p95 %dµs; ", p.Nodes, p.QPS, p.P95Us)
	}
	fmt.Printf("8-node speedup %.2fx\n", report.Speedup8x)
}
