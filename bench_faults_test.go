package mdhf

// BenchmarkFaultTolerance prices the fault-tolerance stack on the
// serving workload the cache benchmark established (warm buffer pool,
// skewed hot-quarter mix): it measures the checksum+retry machinery's
// overhead against the same warehouse with verification disabled
// (asserted <= 5%), then the throughput and equivalence of the same mix
// under a seeded 2% transient-fault + corrupt-page plan. The measured
// numbers are written to BENCH_faults.json.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"testing"
	"time"
)

// faultBenchReport is the schema of BENCH_faults.json.
type faultBenchReport struct {
	Benchmark    string  `json:"benchmark"`
	BaseRows     int     `json:"base_rows"`
	IODelayUs    int64   `json:"io_delay_us"`
	PoolBytes    int64   `json:"pool_bytes"`
	ExecsPerPass int     `json:"execs_per_pass"`
	HotFraction  float64 `json:"hot_fraction"`

	VerifyOffQPS        float64 `json:"verify_off_qps"`
	VerifyOnQPS         float64 `json:"verify_on_qps"`
	ChecksumOverheadPct float64 `json:"checksum_retry_overhead_pct"`

	FaultReadErrorRate float64 `json:"fault_read_error_rate"`
	FaultCorruptRate   float64 `json:"fault_corrupt_rate"`
	FaultedQPS         float64 `json:"faulted_qps"`
	FaultedSlowdownPct float64 `json:"faulted_slowdown_pct"`
	InjectedFaults     int64   `json:"injected_faults"`
	Retries            int64   `json:"retries"`
	ChecksumFailures   int64   `json:"checksum_failures"`
}

func BenchmarkFaultTolerance(b *testing.B) {
	ctx := context.Background()
	star := APB1Scaled(60)
	tab, err := GenerateData(star, 2)
	if err != nil {
		b.Fatal(err)
	}
	const (
		ioDelay   = 100 * time.Microsecond
		poolBytes = 64 << 20
		execs     = 120
		hotFrac   = 0.8
		seed      = 23
		errRate   = 0.02
		corRate   = 0.02
	)
	wl := newCacheBenchWorkload(b, star)
	seqn := wl.sequence(seed, execs, hotFrac)
	baseOpts := []Option{WithWorkers(8), WithDisks(4, RoundRobin), WithIODelay(ioDelay),
		WithBufferPool(poolBytes)}
	cfg := Config{Star: star, Fragmentation: "time::month, product::group", Table: tab}

	open := func(extra ...Option) *Warehouse {
		w, err := Open(ctx, cfg, append(append([]Option{}, baseOpts...), extra...)...)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() {
			if err := w.Close(); err != nil {
				b.Fatal(err)
			}
		})
		if _, _, err := w.Query(seqn[0]).Execute(ctx); err != nil { // build outside timing
			b.Fatal(err)
		}
		return w
	}
	pass := func(w *Warehouse, want []Result) (float64, []Result) {
		recording := want == nil
		start := time.Now()
		for i, q := range seqn {
			res, _, err := w.Query(q).Execute(ctx)
			if err != nil {
				b.Fatal(err)
			}
			if recording {
				want = append(want, res)
			} else if !reflect.DeepEqual(res, want[i]) {
				b.Fatalf("execution %d diverged from the verify-off baseline", i)
			}
		}
		return float64(execs) / time.Since(start).Seconds(), want
	}
	// bestOf damps scheduler noise: the fastest of three warm passes.
	bestOf := func(w *Warehouse, want []Result) (float64, []Result) {
		var best float64
		for i := 0; i < 3; i++ {
			qps, got := pass(w, want)
			want = got
			if qps > best {
				best = qps
			}
		}
		return best, want
	}

	report := faultBenchReport{
		Benchmark: "BenchmarkFaultTolerance", BaseRows: tab.N(),
		IODelayUs: ioDelay.Microseconds(), PoolBytes: poolBytes,
		ExecsPerPass: execs, HotFraction: hotFrac,
		FaultReadErrorRate: errRate, FaultCorruptRate: corRate,
	}
	var baseline []Result

	b.Run("overhead", func(b *testing.B) {
		w := open()
		for i := 0; i < b.N; i++ {
			pass(w, nil) // warm the pool outside timing
			SetChecksumVerification(false)
			report.VerifyOffQPS, baseline = bestOf(w, nil)
			SetChecksumVerification(true)
			report.VerifyOnQPS, _ = bestOf(w, baseline)
		}
		report.ChecksumOverheadPct = 100 * (1 - report.VerifyOnQPS/report.VerifyOffQPS)
		b.ReportMetric(report.VerifyOnQPS, "q/s")
		b.ReportMetric(report.ChecksumOverheadPct, "%overhead")
		if report.ChecksumOverheadPct > 5 {
			b.Fatalf("checksum+retry overhead %.1f%% (verify-on %.0f q/s vs off %.0f q/s), want <= 5%%",
				report.ChecksumOverheadPct, report.VerifyOnQPS, report.VerifyOffQPS)
		}
	})

	b.Run("faulted", func(b *testing.B) {
		w := open(WithFaultPlan(FaultPlan{Seed: 42, ReadErrorRate: errRate, CorruptRate: corRate}),
			WithRetryPolicy(fastFaultRetry()))
		for i := 0; i < b.N; i++ {
			pass(w, baseline) // warm + equivalence
			report.FaultedQPS, _ = bestOf(w, baseline)
		}
		if report.VerifyOnQPS > 0 {
			report.FaultedSlowdownPct = 100 * (1 - report.FaultedQPS/report.VerifyOnQPS)
		}
		st := w.ServingStats()
		report.InjectedFaults = st.Faults.InjectedFaults
		report.Retries = st.Faults.Retries
		report.ChecksumFailures = st.Faults.ChecksumFailures
		b.ReportMetric(report.FaultedQPS, "q/s")
		if report.InjectedFaults == 0 {
			b.Fatal("fault plan injected nothing — the faulted pass measured a healthy disk set")
		}
	})

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_faults.json", append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	fmt.Printf("BENCH_faults.json: verify-off %.0f q/s, verify-on %.0f q/s (%.1f%% overhead); 2%%+2%% faults %.0f q/s (%.1f%% slower, %d injected, %d retries)\n",
		report.VerifyOffQPS, report.VerifyOnQPS, report.ChecksumOverheadPct,
		report.FaultedQPS, report.FaultedSlowdownPct, report.InjectedFaults, report.Retries)
}
