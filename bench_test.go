package mdhf

// Benchmark harness regenerating every table and figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`). Each benchmark
// reports the reproduced quantities as custom metrics so that
// bench_output.txt doubles as the measured record for EXPERIMENTS.md.
//
// Figure benchmarks run the full-scale APB-1 simulation and take tens of
// seconds per iteration; use -bench=Table for the fast subset.

import (
	"testing"

	"repro/internal/experiments"
)

// BenchmarkTable1Encoding regenerates Table 1: the hierarchical encoding of
// the PRODUCT dimension (15 bits, dddllfffggcoooo).
func BenchmarkTable1Encoding(b *testing.B) {
	var bits int
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Table1()
		bits = 0
		for _, r := range rows {
			bits += r.Bits
		}
	}
	b.ReportMetric(float64(bits), "total-bits")
}

// BenchmarkTable2FragmentationOptions regenerates Table 2: counting the 167
// fragmentation options under bitmap fragment size constraints.
func BenchmarkTable2FragmentationOptions(b *testing.B) {
	var exact int
	for i := 0; i < b.N; i++ {
		cells := experiments.Table2()
		exact = 0
		for _, c := range cells {
			if c.Count == c.Paper {
				exact++
			}
		}
	}
	b.ReportMetric(float64(exact), "cells-matching-paper")
}

// BenchmarkTable3IOCharacteristics regenerates Table 3: 1STORE I/O under
// Fopt vs Fnosupp.
func BenchmarkTable3IOCharacteristics(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		cols := experiments.Table3()
		ratio = cols[1].Cost.TotalMB() / cols[0].Cost.TotalMB()
	}
	b.ReportMetric(ratio, "nosupp/opt-IO-ratio")
}

// BenchmarkTable6FragmentationParameters regenerates Table 6.
func BenchmarkTable6FragmentationParameters(b *testing.B) {
	var frags int64
	for i := 0; i < b.N; i++ {
		rows := experiments.Table6()
		frags = rows[2].Fragments
	}
	b.ReportMetric(float64(frags), "FMonthCode-fragments")
}

// BenchmarkFigure3StoreSpeedup regenerates Figure 3: the disk-bound 1STORE
// speed-up experiment at full APB-1 scale (15 simulation runs).
func BenchmarkFigure3StoreSpeedup(b *testing.B) {
	var fig experiments.Figure
	for i := 0; i < b.N; i++ {
		fig = experiments.Figure3(experiments.Options{Seed: 1})
	}
	// Report the p = d/5 curve: response times at d=20 and d=100 and the
	// speed-up between them (paper: ~600s -> ~120s, slightly superlinear).
	for _, s := range fig.Series {
		if s.Label == "p = d/5" {
			b.ReportMetric(s.Points[0].ResponseTime, "s-at-d20")
			b.ReportMetric(s.Points[len(s.Points)-1].ResponseTime, "s-at-d100")
			b.ReportMetric(s.Points[len(s.Points)-1].Speedup, "speedup-d100")
		}
	}
}

// BenchmarkFigure4MonthSpeedup regenerates Figure 4: the CPU-bound 1MONTH
// speed-up experiment (20 simulation runs, incl. the t=5 fix).
func BenchmarkFigure4MonthSpeedup(b *testing.B) {
	var fig experiments.Figure
	for i := 0; i < b.N; i++ {
		fig = experiments.Figure4(experiments.Options{Seed: 1})
	}
	for _, s := range fig.Series {
		last := s.Points[len(s.Points)-1]
		switch s.Label {
		case "d = 20 (t=4)":
			b.ReportMetric(s.Points[0].ResponseTime, "s-at-p1")
		case "d = 100 (t=4)":
			b.ReportMetric(last.ResponseTime, "s-at-p50-t4")
		case "d = 100 (t=5)":
			b.ReportMetric(last.ResponseTime, "s-at-p50-t5")
		}
	}
}

// BenchmarkFigure5ParallelBitmapIO regenerates Figure 5: parallel vs
// non-parallel bitmap I/O for 1STORE over t = 1..13.
func BenchmarkFigure5ParallelBitmapIO(b *testing.B) {
	var fig experiments.Figure
	for i := 0; i < b.N; i++ {
		fig = experiments.Figure5(experiments.Options{Seed: 1})
	}
	var par1, seq1 float64
	for _, s := range fig.Series {
		for _, pt := range s.Points {
			if pt.X == 1 {
				if s.Label == "parallel I/O" {
					par1 = pt.ResponseTime
				} else {
					seq1 = pt.ResponseTime
				}
			}
		}
	}
	if seq1 > 0 {
		b.ReportMetric((1-par1/seq1)*100, "pct-improvement-at-t1")
	}
}

// BenchmarkFigure6StoreByFragmentation regenerates the 1STORE panel of
// Figure 6 (group/class/code fragmentations; the code one runs 345,600
// subqueries per query).
func BenchmarkFigure6StoreByFragmentation(b *testing.B) {
	var fig experiments.Figure
	for i := 0; i < b.N; i++ {
		fig = experiments.Figure6Store(experiments.Options{Seed: 1})
	}
	for _, s := range fig.Series {
		last := s.Points[len(s.Points)-1]
		switch s.Label {
		case "product group fragmentation":
			b.ReportMetric(last.ResponseTime, "s-group-dop160")
		case "product code fragmentation":
			b.ReportMetric(last.ResponseTime, "s-code-dop160")
		}
	}
}

// BenchmarkFigure6CodeQuarterByFragmentation regenerates the 1CODE1QUARTER
// panel of Figure 6.
func BenchmarkFigure6CodeQuarterByFragmentation(b *testing.B) {
	var fig experiments.Figure
	for i := 0; i < b.N; i++ {
		fig = experiments.Figure6CodeQuarter(experiments.Options{Seed: 1})
	}
	for _, s := range fig.Series {
		best := s.Points[len(s.Points)-1].ResponseTime
		switch s.Label {
		case "product group fragmentation":
			b.ReportMetric(best, "s-group-dop5")
		case "product code fragmentation":
			b.ReportMetric(best, "s-code-dop5")
		}
	}
}
