package mdhf

import (
	"repro/internal/alloc"
	"repro/internal/bitmap"
	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/schema"
	"repro/internal/simpad"
	"repro/internal/workload"
)

// Experiment harness: the tables and figures of the paper's evaluation,
// exported so the cmds (and any reproduction script) need only this
// package.
type (
	// Figure is one reproduced figure: named series of (x, response,
	// speedup) points.
	Figure = experiments.Figure
	// FigureSeries is one series of a Figure.
	FigureSeries = experiments.Series
	// FigurePoint is one data point of a series.
	FigurePoint = experiments.Point
	// FigureOptions configures a figure reproduction (repetitions, seed,
	// parallel simulation workers).
	FigureOptions = experiments.Options
	// DiskCurveOptions configures the measured disk-scaling experiment.
	DiskCurveOptions = experiments.DiskCurveOptions
	// Table1Row is one row of Table 1 (hierarchical encoding).
	Table1Row = experiments.Table1Row
	// Table2Cell is one cell of Table 2 (fragmentation options).
	Table2Cell = experiments.Table2Cell
	// Table3Col is one column of Table 3 (I/O characteristics of 1STORE).
	Table3Col = experiments.Table3Col
	// Table6Row is one row of Table 6 (fragmentation parameters).
	Table6Row = experiments.Table6Row
	// BitmapInventory counts the bitmaps of Sections 3.2 and 4.2.
	BitmapInventory = experiments.BitmapInventory
)

// Figure3 reproduces the 1STORE speed-up over disks.
func Figure3(opt FigureOptions) Figure { return experiments.Figure3(opt) }

// Figure4 reproduces the 1MONTH speed-up over processors.
func Figure4(opt FigureOptions) Figure { return experiments.Figure4(opt) }

// Figure5 reproduces parallel vs non-parallel bitmap I/O.
func Figure5(opt FigureOptions) Figure { return experiments.Figure5(opt) }

// Figure6Store reproduces the 1STORE panel of the fragmentation
// comparison.
func Figure6Store(opt FigureOptions) Figure { return experiments.Figure6Store(opt) }

// Figure6CodeQuarter reproduces the 1CODE1QUARTER panel of the
// fragmentation comparison.
func Figure6CodeQuarter(opt FigureOptions) Figure { return experiments.Figure6CodeQuarter(opt) }

// DiskScalingCurve measures 1STORE speed-up over declustered disk counts
// on the real on-disk executor, next to the per-disk queue model.
func DiskScalingCurve(o DiskCurveOptions) (Figure, error) { return experiments.DiskScalingCurve(o) }

// Table1 returns the hierarchy representation of the encoded PRODUCT
// index plus a sample bit pattern.
func Table1() ([]Table1Row, string) { return experiments.Table1() }

// Table2 returns the number of fragmentation options under size
// constraints.
func Table2() []Table2Cell { return experiments.Table2() }

// Table3 returns the I/O characteristics of query 1STORE under the two
// paper fragmentations.
func Table3() [2]Table3Col { return experiments.Table3() }

// Table6 returns the fragmentation parameters of experiment 3.
func Table6() []Table6Row { return experiments.Table6() }

// Bitmaps returns the bitmap inventory of Sections 3.2 and 4.2.
func Bitmaps() BitmapInventory { return experiments.Bitmaps() }

// QueryTypeByName resolves a paper query type by its name (e.g.
// "1STORE", "1MONTH1GROUP").
func QueryTypeByName(name string) (QueryType, error) { return workload.ByName(name) }

// AllQueryTypes lists the paper's query types.
func AllQueryTypes() []QueryType { return workload.All() }

// MeanResponseTime averages the response times of simulated executions.
func MeanResponseTime(rs []SimResult) float64 { return simpad.MeanResponseTime(rs) }

// NextPrime returns the smallest prime >= n — the paper's counter-measure
// against gcd clustering of round-robin allocation.
func NextPrime(n int) int { return alloc.NextPrime(n) }

// Canonical APB-1 dimension and level names (Figure 1), for use with
// Star.Dim, Star.DimIndex and Dimension.LevelIndex.
const (
	DimProduct  = schema.DimProduct
	DimCustomer = schema.DimCustomer
	DimChannel  = schema.DimChannel
	DimTime     = schema.DimTime

	LvlGroup   = schema.LvlGroup
	LvlClass   = schema.LvlClass
	LvlCode    = schema.LvlCode
	LvlStore   = schema.LvlStore
	LvlMonth   = schema.LvlMonth
	LvlQuarter = schema.LvlQuarter
)

// Bitmap join indices (Section 3.2): the building blocks behind the
// engines, exported for direct experimentation (see examples/bitmaps).
type (
	// Bitset is an uncompressed bitmap.
	Bitset = bitmap.Bitset
	// BitmapLayout is the hierarchical encoding layout of one dimension
	// (Table 1).
	BitmapLayout = bitmap.Layout
	// EncodedBitmapIndex is an encoded (hierarchical) bitmap join index.
	EncodedBitmapIndex = bitmap.EncodedIndex
	// SimpleBitmapIndex is a one-bitmap-per-member join index.
	SimpleBitmapIndex = bitmap.SimpleIndex
)

// NewBitmapLayout derives the hierarchical encoding of a dimension;
// padBits optionally widens each level's field (nil = minimal widths).
func NewBitmapLayout(dim *Dimension, padBits []int) *BitmapLayout {
	return bitmap.NewLayout(dim, padBits)
}

// NewEncodedBitmapIndex builds an encoded bitmap join index over leaf
// member values.
func NewEncodedBitmapIndex(layout *BitmapLayout, values []int32) *EncodedBitmapIndex {
	return bitmap.NewEncodedIndex(layout, values)
}

// NewSimpleBitmapIndex builds a simple bitmap join index over leaf
// member values.
func NewSimpleBitmapIndex(card int, values []int32) *SimpleBitmapIndex {
	return bitmap.NewSimpleIndex(card, values)
}

// MustGenerateData is GenerateData panicking on error, for examples and
// tests.
func MustGenerateData(star *Star, seed int64) *FactTable {
	return data.MustGenerate(star, seed)
}
