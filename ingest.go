package mdhf

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/alloc"
	"repro/internal/frag"
	"repro/internal/kernel"
)

// FactRow is one incoming fact: the leaf member per dimension (in schema
// dimension order) plus the three APB-1 measures.
type FactRow struct {
	Leaves      []int32
	UnitsSold   int64
	DollarSales int64
	Cost        int64
}

// coalesceRows bounds tail-segment coalescing: a fragment's most recent
// delta segment is extended in place (never rewritten — see
// frag.ExtendSegment) while it holds fewer rows than this, so steady
// trickle appends don't shatter a fragment into thousands of tiny
// segments. Larger tails seal and a fresh segment starts.
const coalesceRows = 4096

// Append admits a batch of fact rows into the warehouse: each row is
// routed to its placement-mapped fragment, sealed into a fragment-
// aligned delta segment carrying its own WAH bitmap fragments, journaled
// to the delta log (on-disk backends — through the segment's disk queue
// when declustered), and published atomically to subsequent queries.
// Queries already admitted keep their pinned snapshot and do not see the
// new rows; queries admitted after Append returns aggregate base + delta
// with results byte-identical to a warehouse built from the union of the
// rows. Appends serialise with each other and with compaction's swap
// phase, but never wait for a compaction rebuild and never block query
// admission.
//
// When WithAutoCompaction is configured and the live delta rows reach
// the threshold, a background compaction is triggered (never awaited).
func (w *Warehouse) Append(ctx context.Context, rows []FactRow) error {
	if len(rows) == 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	release, err := w.begin()
	if err != nil {
		return err
	}
	defer release()
	if err := w.ensureBackend(ctx); err != nil {
		return err
	}
	for ri := range rows {
		r := &rows[ri]
		if len(r.Leaves) != len(w.star.Dims) {
			return fmt.Errorf("mdhf: append row %d has %d leaves for %d dimensions", ri, len(r.Leaves), len(w.star.Dims))
		}
		for d, leaf := range r.Leaves {
			if leaf < 0 || int(leaf) >= w.star.Dims[d].LeafCard() {
				return fmt.Errorf("mdhf: append row %d: %s leaf %d out of range [0,%d)", ri, w.star.Dims[d].Name, leaf, w.star.Dims[d].LeafCard())
			}
		}
	}

	w.appendMu.Lock()
	defer w.appendMu.Unlock()

	// Partition the batch by fragment, preserving arrival order within
	// each fragment (the order delta rows are served and compacted in).
	byFrag := make(map[int64][]int)
	var order []int64
	buf := make([]int, len(w.star.Dims))
	for ri := range rows {
		for d, leaf := range rows[ri].Leaves {
			buf[d] = int(leaf)
		}
		id := w.spec.ID(w.spec.CoordOf(buf))
		if _, ok := byFrag[id]; !ok {
			order = append(order, id)
		}
		byFrag[id] = append(byFrag[id], ri)
	}

	w.mu.Lock()
	set := w.cur.deltas
	w.mu.Unlock()
	for _, id := range order {
		var sb *frag.SegmentBuilder
		replace := false
		// Coalesce into the fragment's small tail segment — except while a
		// compaction is in flight: segments at or below the compaction
		// boundary must stay frozen so the epoch swap can drop exactly them.
		if tail := set.Tail(id); tail != nil && !w.compacting && tail.Rows() < coalesceRows {
			sb = w.ix.ExtendSegment(tail)
			replace = true
		} else {
			sb = w.ix.NewSegment(id)
		}
		for _, ri := range byFrag[id] {
			r := &rows[ri]
			sb.Add(r.Leaves, r.UnitsSold, r.DollarSales, r.Cost)
		}
		w.seq++
		seg := sb.Seal(w.seq)
		if w.dlog != nil {
			if err := w.dlog.AppendSegment(seg, replace); err != nil {
				return err
			}
		}
		if replace {
			set = set.WithTailReplaced(seg)
		} else {
			set = set.With(seg)
		}
	}

	w.mu.Lock()
	w.cur.deltas = set
	if w.rcache != nil {
		// Fragment-granular invalidation, atomic with the publish: only
		// result-cache entries whose confinement region contains a touched
		// fragment are evicted (and intersecting in-flight computations
		// poisoned); everything else is re-keyed to the new MaxSeq and
		// keeps serving.
		w.rcache.invalidate(w.spec, order, set.MaxSeq())
	}
	w.mu.Unlock()
	w.appends.Add(1)
	w.appendedRows.Add(int64(len(rows)))
	if n := w.opt.autoCompact; n > 0 && set.Rows() >= int64(n) {
		w.compactor.Trigger()
	}
	return nil
}

// Epoch returns the current serving epoch: 0 until the first compaction,
// incremented by each completed one.
func (w *Warehouse) Epoch() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.cur.epoch
}

// Compact synchronously folds the sealed delta segments into a rebuilt
// backend at the next epoch. It is a no-op when nothing was appended.
// The rebuild runs without holding the append or admission locks:
// queries keep being admitted (pinning the old epoch) and appends keep
// landing (segments sealed after the compaction boundary stay live
// across the swap); only the final snapshot swap takes the locks,
// briefly. The previous epoch's files are removed once its last pinned
// query finishes.
func (w *Warehouse) Compact(ctx context.Context) error {
	release, err := w.begin()
	if err != nil {
		return err
	}
	defer release()
	if err := w.ensureBackend(ctx); err != nil {
		return err
	}
	return w.compact(ctx)
}

// compactOnce is the background compactor's run function: a synchronous
// Compact whose errors are deferred to Close.
func (w *Warehouse) compactOnce() {
	release, err := w.begin()
	if err != nil {
		return // closing: nothing left to compact into
	}
	defer release()
	if err := w.compact(context.Background()); err != nil {
		w.mu.Lock()
		w.bgErr = errors.Join(w.bgErr, err)
		w.mu.Unlock()
	}
}

// compact is the three-phase epoch roll-over. Phase 1 (append lock,
// briefly): freeze the boundary — the highest sealed sequence — and flag
// the compaction so appends stop extending frozen tails. Phase 2 (no
// locks): merge the base rows with every delta row at or below the
// boundary and build a fresh backend at the next epoch. Phase 3 (append
// + state lock, briefly): swap the serving snapshot to the new backend
// with only the post-boundary segments, reset the delta journal to
// those, and retire the old backend (removed when its last pinned query
// finishes).
func (w *Warehouse) compact(ctx context.Context) error {
	w.compactMu.Lock()
	defer w.compactMu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}

	// Phase 1: freeze the boundary.
	w.appendMu.Lock()
	w.mu.Lock()
	snap := w.cur
	if snap.deltas.Rows() == 0 {
		w.mu.Unlock()
		w.appendMu.Unlock()
		return nil
	}
	snap.b.refs.Add(1) // keep the base backend alive while rebuilding from it
	w.mu.Unlock()
	boundary := snap.deltas.MaxSeq()
	w.compacting = true
	w.appendMu.Unlock()
	defer w.unpin(snap.b)
	clearCompacting := func() {
		w.appendMu.Lock()
		w.compacting = false
		w.appendMu.Unlock()
	}

	// Phase 2: rebuild, lock-free.
	merged := kernel.MergedTable(snap.b.table, snap.deltas)
	nb, err := w.buildBackendFrom(merged, snap.epoch+1)
	if err != nil {
		clearCompacting()
		return err
	}
	w.mu.Lock()
	d, set := w.curDelay, w.curDelaySet
	w.mu.Unlock()
	if set && nb.be != nil {
		applyIODelay(nb.be, d)
	}

	// Phase 3: swap.
	w.appendMu.Lock()
	w.mu.Lock()
	old := w.cur
	w.cur = snapshot{epoch: snap.epoch + 1, b: nb, deltas: old.deltas.After(boundary)}
	live := w.cur.deltas
	if w.rcache != nil {
		// Compaction is result-neutral (the rebuilt backend serves
		// byte-identical results), so re-key every entry to the new epoch
		// instead of flushing the cache.
		w.rcache.rekeyAll(w.cur.epoch, live.MaxSeq())
	}
	w.mu.Unlock()
	w.compacting = false
	var resetErr error
	if w.dlog != nil {
		var liveSegs []*frag.DeltaSegment
		live.ForEachSegment(func(seg *frag.DeltaSegment) { liveSegs = append(liveSegs, seg) })
		resetErr = w.dlog.Reset(liveSegs)
		if nb.be != nil && nb.be.Disks != nil {
			w.dlog.Attach(nb.be.Disks, nb.be.Placement)
		} else {
			w.dlog.Attach(nil, alloc.Placement{})
		}
	}
	w.appendMu.Unlock()
	w.retire(old.b)
	w.compactions.Add(1)
	w.compactedRows.Add(snap.deltas.Rows())
	return resetErr
}
