package mdhf

// Grouped roll-up equivalence and property tests: every backend — the
// in-memory engine, its compressed fast path, the on-disk executor and
// the declustered executor — must produce byte-identical grouped results
// (deterministic group order) at every worker and disk count, all checked
// against the brute-force ScanGroupedAggregate oracle, with the roll-up
// invariants on top: summing all groups equals the ungrouped aggregate,
// and grouping at a finer hierarchy level re-aggregated to a coarser one
// equals grouping at the coarser level directly. Run under -race in CI.

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// groupedBackends is the backend × disks matrix of the acceptance
// criteria; workers vary per test.
func groupedBackends() []struct {
	name string
	opts []Option
} {
	return []struct {
		name string
		opts []Option
	}{
		{"in-memory", nil},
		{"in-memory/compressed", []Option{WithCompression()}},
		{"on-disk", []Option{WithOnDisk("")}},
		{"on-disk/compressed", []Option{WithOnDisk(""), WithCompression()}},
		{"declustered/1", []Option{WithDisks(1, RoundRobin)}},
		{"declustered/8", []Option{WithDisks(8, RoundRobin)}},
		{"declustered/8/gap/compressed", []Option{WithDisks(8, GapRoundRobin), WithCompression()}},
	}
}

// groupedQueries returns named queries covering the aligned fast path
// (GroupBy at/above the fragmentation levels), the per-row fallback
// (finer levels and non-fragmentation dimensions), mixed cases, and a
// selection-free roll-up, under "time::month, product::group" on Tiny.
func groupedQueries(t testing.TB, star *Star) map[string]Query {
	t.Helper()
	parse := func(text string) Query {
		q, err := ParseQuery(star, text)
		if err != nil {
			t.Fatalf("%s: %v", text, err)
		}
		return q
	}
	return map[string]Query{
		"rollup-aligned-month":      parse("group by time::month"),
		"rollup-aligned-2d":         parse("group by time::quarter, product::group"),
		"q1-aligned":                parse("time::month=1 group by product::group"),
		"q3-aligned":                parse("time::quarter=1 group by time::month"),
		"q2-perrow-code":            parse("product::code=3 group by product::code"),
		"perrow-store":              parse("time::month=2 group by customer::store"),
		"perrow-mixed":              parse("group by time::month, customer::retailer"),
		"perrow-finer-class":        parse("customer::store=2 group by product::class"),
		"unsupported-grouped":       parse("customer::store=1 group by time::quarter"),
		"empty-selection-ungrouped": parse("group by product::code, time::month"),
	}
}

// TestGroupedBackendsMatchOracle executes every grouped query on every
// backend at workers {1,4} and compares the full Result — total, group
// membership and group order — against the scan oracle byte for byte.
func TestGroupedBackendsMatchOracle(t *testing.T) {
	ctx := context.Background()
	star := TinySchema()
	tab := MustGenerateData(star, 8)
	queries := groupedQueries(t, star)

	oracle := map[string]Result{}
	for name, q := range queries {
		res, err := ScanGroupedAggregate(tab, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Groups) == 0 {
			t.Fatalf("%s: oracle produced no groups (bad test query)", name)
		}
		oracle[name] = res
	}

	for _, bk := range groupedBackends() {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", bk.name, workers), func(t *testing.T) {
				w, err := Open(ctx, Config{
					Star:          star,
					Fragmentation: "time::month, product::group",
					Table:         tab,
				}, append([]Option{WithWorkers(workers)}, bk.opts...)...)
				if err != nil {
					t.Fatal(err)
				}
				defer w.Close()
				for name, q := range queries {
					res, _, err := w.Query(q).Execute(ctx)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					want := oracle[name]
					if res.Aggregate != want.Aggregate {
						t.Fatalf("%s: total %+v, oracle %+v", name, res.Aggregate, want.Aggregate)
					}
					if !reflect.DeepEqual(res.Groups, want.Groups) {
						t.Fatalf("%s: groups diverge from oracle\ngot  %v\nwant %v", name, res.Groups, want.Groups)
					}
					var sum Aggregate
					for _, row := range res.Groups {
						if row.Agg.Count == 0 {
							t.Fatalf("%s: empty group %v emitted", name, row.Members)
						}
						sum.Add(row.Agg)
					}
					if sum != res.Aggregate {
						t.Fatalf("%s: group sum %+v != total %+v", name, sum, res.Aggregate)
					}
				}
			})
		}
	}
}

// reaggregate rolls a single-level grouped result up to a coarser level
// of the same dimension (fan = FanOutBetween(coarse, fine)).
func reaggregate(rows []GroupRow, fan int) []GroupRow {
	m := map[int]Aggregate{}
	for _, r := range rows {
		cur := m[r.Members[0]/fan]
		cur.Add(r.Agg)
		m[r.Members[0]/fan] = cur
	}
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]GroupRow, len(keys))
	for i, k := range keys {
		out[i] = GroupRow{Members: []int{k}, Agg: m[k]}
	}
	return out
}

// TestGroupedRollupInvariant checks, on every backend at workers {1,4},
// that grouping at a finer hierarchy level and re-aggregating equals
// grouping at the coarser level directly — on both an aligned pair
// (month → quarter) and a per-row fallback pair (code → group) — and
// that the ungrouped Execute total equals the sum of every grouping's
// rows.
func TestGroupedRollupInvariant(t *testing.T) {
	ctx := context.Background()
	star := TinySchema()
	tab := MustGenerateData(star, 8)
	pd := star.DimIndex("product")
	td := star.DimIndex("time")
	fanCode := star.Dims[pd].FanOutBetween(star.Dims[pd].LevelIndex("group"), star.Dims[pd].LevelIndex("code"))
	fanMonth := star.Dims[td].FanOutBetween(star.Dims[td].LevelIndex("quarter"), star.Dims[td].LevelIndex("month"))

	pairs := []struct {
		name         string
		fine, coarse string
		fan          int
	}{
		{"aligned-month-to-quarter", "time::month=1 group by time::month", "time::month=1 group by time::quarter", fanMonth},
		{"perrow-code-to-group", "time::quarter=0 group by product::code", "time::quarter=0 group by product::group", fanCode},
	}

	for _, bk := range groupedBackends() {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", bk.name, workers), func(t *testing.T) {
				w, err := Open(ctx, Config{
					Star:          star,
					Fragmentation: "time::month, product::group",
					Table:         tab,
				}, append([]Option{WithWorkers(workers)}, bk.opts...)...)
				if err != nil {
					t.Fatal(err)
				}
				defer w.Close()
				run := func(text string) Result {
					q, err := w.QueryText(text)
					if err != nil {
						t.Fatal(err)
					}
					res, _, err := q.Execute(ctx)
					if err != nil {
						t.Fatalf("%s: %v", text, err)
					}
					return res
				}
				for _, pair := range pairs {
					fine := run(pair.fine)
					coarse := run(pair.coarse)
					if got := reaggregate(fine.Groups, pair.fan); !reflect.DeepEqual(got, coarse.Groups) {
						t.Fatalf("%s: re-aggregated fine grouping diverges\ngot  %v\nwant %v", pair.name, got, coarse.Groups)
					}
					if fine.Aggregate != coarse.Aggregate {
						t.Fatalf("%s: totals diverge across grouping levels: %+v vs %+v", pair.name, fine.Aggregate, coarse.Aggregate)
					}
					// Grouping must not change the grand total.
					sel := pair.fine[:strings.Index(pair.fine, " group by")]
					if ungrouped := run(sel); ungrouped.Aggregate != fine.Aggregate {
						t.Fatalf("%s: grouped total %+v != ungrouped %+v", pair.name, fine.Aggregate, ungrouped.Aggregate)
					}
				}
			})
		}
	}
}
