package mdhf

// BenchmarkConcurrentServing establishes the serving-throughput
// trajectory of the Warehouse: N in-flight query streams (1/4/16/64)
// hammer one declustered warehouse whose admission scheduler multiplexes
// them onto 16 shared workers and 8 per-disk I/O queues with a simulated
// per-access delay. A single stream leaves most disks idle — the paper's
// Q1/Q2 classes confine each query to a handful of fragments, hence a
// handful of disks — so throughput (queries/sec) climbs as concurrent
// streams fill the idle queues. Every result is asserted byte-identical
// to the serially-obtained baseline while the benchmark runs.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func BenchmarkConcurrentServing(b *testing.B) {
	ctx := context.Background()
	star := APB1Scaled(60)
	tab, err := GenerateData(star, 3)
	if err != nil {
		b.Fatal(err)
	}
	w, err := Open(ctx, Config{
		Star:          star,
		Fragmentation: "time::month, product::group",
		Table:         tab,
	}, WithWorkers(16), WithDisks(8, RoundRobin))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
	})

	// A served mix: confined Q1/Q2 lookups and month roll-ups with
	// varying parameters, so concurrent queries land on different
	// fragments and disks.
	gen := NewQueryGenerator(star, 7)
	var qs []Query
	for round := 0; round < 4; round++ {
		for _, qt := range []QueryType{OneMonthOneGroup, OneCodeOneMonth, OneCodeOneQuarter, OneMonth} {
			q, err := gen.Next(qt)
			if err != nil {
				b.Fatal(err)
			}
			qs = append(qs, q)
		}
	}

	// Serial baseline results (no delay): the byte-identity reference.
	want := make([]Aggregate, len(qs))
	for i, q := range qs {
		res, _, err := w.Query(q).Execute(ctx)
		if err != nil {
			b.Fatal(err)
		}
		want[i] = res.Aggregate
	}

	w.SetIODelay(200 * time.Microsecond)
	b.Cleanup(func() { w.SetIODelay(0) })

	const perStream = 8
	for _, streams := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("streams=%d", streams), func(b *testing.B) {
			for it := 0; it < b.N; it++ {
				var wg sync.WaitGroup
				errc := make(chan error, streams)
				for s := 0; s < streams; s++ {
					wg.Add(1)
					go func(s int) {
						defer wg.Done()
						for k := 0; k < perStream; k++ {
							idx := (s*perStream + k) % len(qs)
							agg, _, err := w.Query(qs[idx]).Execute(ctx)
							if err != nil {
								errc <- err
								return
							}
							if agg.Aggregate != want[idx] {
								errc <- fmt.Errorf("query %d diverged under %d streams: got %+v want %+v",
									idx, streams, agg, want[idx])
								return
							}
						}
					}(s)
				}
				wg.Wait()
				select {
				case err := <-errc:
					b.Fatal(err)
				default:
				}
			}
			qps := float64(b.N*streams*perStream) / b.Elapsed().Seconds()
			b.ReportMetric(qps, "queries/sec")
		})
	}
}
