package mdhf

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

// sharedScanQueries is a mixed Q1-Q4 workload — grouped and ungrouped,
// aligned and per-row grouping, overlapping confinement regions — under
// "time::month, product::group" on Tiny.
func sharedScanQueries(t testing.TB, star *Star) []Query {
	t.Helper()
	texts := []string{
		"time::month=1",
		"time::quarter=1 group by time::month",
		"product::code=3 group by product::code",
		"time::month=2, product::group=1",
		"group by time::quarter, product::group",
		"customer::store=2 group by customer::store",
		"time::month=1 group by product::group",
		"time::quarter=0",
	}
	qs := make([]Query, len(texts))
	for i, text := range texts {
		q, err := ParseQuery(star, text)
		if err != nil {
			t.Fatalf("%s: %v", text, err)
		}
		qs[i] = q
	}
	return qs
}

// runSharedRound fires K concurrent executions of qs (round-robin) at
// the warehouse through one start barrier, checking every result and
// every logical stat against the solo oracle.
func runSharedRound(t *testing.T, ctx context.Context, w *Warehouse, qs []Query, want []Result, wantSt []Stats, k int) {
	t.Helper()
	runSharedRoundOpt(t, ctx, w, qs, want, wantSt, k, true)
}

// runSharedRoundOpt is runSharedRound with stat checking optional: a
// round racing a compaction still gets byte-identical results from its
// pinned snapshot, but its I/O counters legitimately differ (delta rows
// are served from memory until the swap).
func runSharedRoundOpt(t *testing.T, ctx context.Context, w *Warehouse, qs []Query, want []Result, wantSt []Stats, k int, checkStats bool) {
	t.Helper()
	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, k)
	for g := 0; g < k; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			qi := g % len(qs)
			res, st, err := w.Query(qs[qi]).Execute(ctx)
			if err != nil {
				errs[g] = err
				return
			}
			if !reflect.DeepEqual(res, want[qi]) {
				errs[g] = fmt.Errorf("query %d: shared result diverged from solo:\n got %+v\nwant %+v", qi, res, want[qi])
				return
			}
			if !checkStats {
				return
			}
			// Sharing must not disturb the per-query logical counters.
			if st.Engine != wantSt[qi].Engine {
				errs[g] = fmt.Errorf("query %d: engine stats diverged: got %+v want %+v", qi, st.Engine, wantSt[qi].Engine)
				return
			}
			if st.IO != wantSt[qi].IO {
				errs[g] = fmt.Errorf("query %d: IO stats diverged: got %+v want %+v", qi, st.IO, wantSt[qi].IO)
				return
			}
			if st.DeltaRows != wantSt[qi].DeltaRows {
				errs[g] = fmt.Errorf("query %d: delta rows %d, want %d", qi, st.DeltaRows, wantSt[qi].DeltaRows)
			}
		}(g)
	}
	close(start)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// soloOracle executes every query alone on the oracle warehouse and
// returns the expected results and stats.
func soloOracle(t *testing.T, ctx context.Context, w *Warehouse, qs []Query) ([]Result, []Stats) {
	t.Helper()
	want := make([]Result, len(qs))
	wantSt := make([]Stats, len(qs))
	for i, q := range qs {
		res, st, err := w.Query(q).Execute(ctx)
		if err != nil {
			t.Fatalf("oracle query %d: %v", i, err)
		}
		want[i], wantSt[i] = res, st
	}
	return want, wantSt
}

// TestSharedScanEquivalence is the shared-scan guarantee across the
// backend matrix: K concurrent mixed Q1-Q4 queries batched into shared
// scans return results and logical statistics byte-identical to solo
// execution, while the physical work strictly decreases on overlap.
func TestSharedScanEquivalence(t *testing.T) {
	ctx := context.Background()
	star := TinySchema()
	tab := MustGenerateData(star, 8)
	qs := sharedScanQueries(t, star)
	cfg := Config{Star: star, Fragmentation: "time::month, product::group", Table: tab}

	cases := []struct {
		name   string
		opts   []Option
		onDisk bool
	}{
		{"in-memory", nil, false},
		{"in-memory/compressed", []Option{WithCompression()}, false},
		{"on-disk", []Option{WithOnDisk("")}, true},
		{"on-disk/compressed", []Option{WithOnDisk(""), WithCompression()}, true},
		{"declustered/8", []Option{WithDisks(8, RoundRobin)}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			oracle, err := Open(ctx, cfg, append([]Option{WithWorkers(4)}, tc.opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			defer oracle.Close()
			shared, err := Open(ctx, cfg,
				append([]Option{WithWorkers(4), WithSharedScans(2 * time.Millisecond)}, tc.opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			defer shared.Close()

			want, wantSt := soloOracle(t, ctx, oracle, qs)
			for _, k := range []int{2, 8, 32} {
				runSharedRound(t, ctx, shared, qs, want, wantSt, k)
			}

			st := shared.ServingStats()
			if st.Shared.Batches == 0 {
				t.Fatalf("no multi-query batches formed: %+v", st.Shared)
			}
			if tc.onDisk {
				if st.Shared.PhysReadsSaved == 0 {
					t.Fatalf("no physical reads saved on an on-disk backend: %+v", st.Shared)
				}
			} else if st.Shared.FragmentsShared == 0 {
				t.Fatalf("no fragments co-scanned: %+v", st.Shared)
			}
			if st.QueryMix.Total == 0 || len(st.QueryMix.Queries) == 0 {
				t.Fatalf("query mix not recorded: %+v", st.QueryMix)
			}
		})
	}
}

// TestSharedScanPhysicalReadsDecrease runs the identical concurrent
// workload with sharing off and on over the same declustered placement
// and asserts the shared run touched the disks strictly less.
func TestSharedScanPhysicalReadsDecrease(t *testing.T) {
	ctx := context.Background()
	star := TinySchema()
	tab := MustGenerateData(star, 8)
	qs := sharedScanQueries(t, star)
	cfg := Config{Star: star, Fragmentation: "time::month, product::group", Table: tab}

	run := func(opts ...Option) int64 {
		w, err := Open(ctx, cfg, append([]Option{WithWorkers(4), WithDisks(8, RoundRobin)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		want, wantSt := soloOracle(t, ctx, w, qs)
		w.ResetDiskStats()
		runSharedRound(t, ctx, w, qs, want, wantSt, 16)
		var ios int64
		for _, d := range w.DiskStats() {
			ios += d.IOs
		}
		return ios
	}
	off := run()
	on := run(WithSharedScans(2 * time.Millisecond))
	if on >= off {
		t.Fatalf("shared scans did not reduce physical disk reads: %d with sharing, %d without", on, off)
	}
}

// TestSharedScanEquivalenceUnderChurn batches queries while the
// warehouse ingests: appends land between rounds (the oracle gets the
// same rows, so expectations track the delta set) and a compaction —
// result-neutral by construction — overlaps the last concurrent round.
func TestSharedScanEquivalenceUnderChurn(t *testing.T) {
	ctx := context.Background()
	star := TinySchema()
	tab := MustGenerateData(star, 8)
	qs := sharedScanQueries(t, star)
	cfg := Config{Star: star, Fragmentation: "time::month, product::group", Table: tab}

	oracle, err := Open(ctx, cfg, WithWorkers(4), WithOnDisk(""))
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()
	shared, err := Open(ctx, cfg, WithWorkers(4), WithOnDisk(""), WithSharedScans(2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer shared.Close()

	rows := splitRows(MustGenerateData(star, 3), 0, 30)
	for round := 0; round < 3; round++ {
		batch := rows[round*10 : (round+1)*10]
		if err := oracle.Append(ctx, batch); err != nil {
			t.Fatal(err)
		}
		if err := shared.Append(ctx, batch); err != nil {
			t.Fatal(err)
		}
		want, wantSt := soloOracle(t, ctx, oracle, qs)
		runSharedRound(t, ctx, shared, qs, want, wantSt, 8)
	}

	// Mid-run compaction: result-neutral, so the round racing it keeps
	// matching the oracle compacted at the same delta boundary.
	if err := oracle.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	want, wantSt := soloOracle(t, ctx, oracle, qs)
	var wg sync.WaitGroup
	wg.Add(1)
	compErr := error(nil)
	go func() {
		defer wg.Done()
		compErr = shared.Compact(ctx)
	}()
	runSharedRoundOpt(t, ctx, shared, qs, want, wantSt, 8, false)
	wg.Wait()
	if compErr != nil {
		t.Fatal(compErr)
	}
	runSharedRound(t, ctx, shared, qs, want, wantSt, 8)
}

// TestSharedScanClusterEquivalence runs the concurrent workload against
// an in-process cluster whose nodes batch sub-requests, checking every
// result against a sharing-free cluster over the same shards.
func TestSharedScanClusterEquivalence(t *testing.T) {
	ctx := context.Background()
	star := TinySchema()
	tab := MustGenerateData(star, 8)
	qs := sharedScanQueries(t, star)
	cfg := Config{Star: star, Fragmentation: "time::month, product::group", Table: tab}

	oracle, err := OpenCluster(ctx, cfg, WithNodes(3, RoundRobin))
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()
	shared, err := OpenCluster(ctx, cfg, WithNodes(3, RoundRobin), WithSharedScans(2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer shared.Close()

	want := make([]Result, len(qs))
	for i, q := range qs {
		res, _, err := oracle.Query(q).Execute(ctx)
		if err != nil {
			t.Fatalf("oracle query %d: %v", i, err)
		}
		want[i] = res
	}

	const k = 12
	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, k)
	var batchedMax int64
	var mu sync.Mutex
	for g := 0; g < k; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			qi := g % len(qs)
			res, st, err := shared.Query(qs[qi]).Execute(ctx)
			if err != nil {
				errs[g] = err
				return
			}
			if !reflect.DeepEqual(res, want[qi]) {
				errs[g] = fmt.Errorf("query %d: cluster shared result diverged:\n got %+v\nwant %+v", qi, res, want[qi])
				return
			}
			mu.Lock()
			if int64(st.SharedScan.Batched) > batchedMax {
				batchedMax = int64(st.SharedScan.Batched)
			}
			mu.Unlock()
		}(g)
	}
	close(start)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if batchedMax < 2 {
		t.Fatalf("no node-side batch formed under %d concurrent cluster queries", k)
	}
}
