package mdhf

// BenchmarkServingTraffic is the shared-scan serving harness: a traffic
// generator over the Warehouse facade driving a skewed APB-1 mix — most
// queries confine to the current ("hot") quarter, a flash-crowd slice
// hammers one store with an unconfined scan, the rest roam cold months —
// against a declustered disk-latency backend, with shared scans off and
// on. The closed-loop model runs 16/64/256 streams issuing queries
// back-to-back; the open-loop model fires Poisson arrivals at a fixed
// offered rate regardless of completions. Every result is checked
// byte-for-byte against the in-memory solo oracle while the clock runs,
// and throughput plus p50/p95/p99 latency per point are written to
// BENCH_serving.json.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"
)

// trafficPoint is one (model, streams, sharing) measurement in
// BENCH_serving.json.
type trafficPoint struct {
	Model   string  `json:"model"` // "closed" or "open"
	Streams int     `json:"streams"`
	Shared  bool    `json:"shared"`
	QPS     float64 `json:"qps"`
	P50Us   int64   `json:"p50_us"`
	P95Us   int64   `json:"p95_us"`
	P99Us   int64   `json:"p99_us"`
	// Batches and PhysReadsSaved are the warehouse's shared-scan counters
	// accumulated during this point (zero with sharing off).
	Batches        int64 `json:"batches"`
	PhysReadsSaved int64 `json:"phys_reads_saved"`
}

// trafficReport is the schema of BENCH_serving.json.
type trafficReport struct {
	Benchmark     string         `json:"benchmark"`
	BaseRows      int            `json:"base_rows"`
	Disks         int            `json:"disks"`
	IODelayUs     int64          `json:"io_delay_us"`
	WindowUs      int64          `json:"window_us"`
	Execs         int            `json:"execs"`
	HotFraction   float64        `json:"hot_fraction"`
	FlashFraction float64        `json:"flash_fraction"`
	OpenRateQPS   float64        `json:"open_arrival_qps"`
	OpenBurst     int            `json:"open_burst"`
	Points        []trafficPoint `json:"points"`
	// SharedSpeedup64 is the closed-loop shared-on/shared-off throughput
	// ratio at 64 streams — the headline shared-scan number.
	SharedSpeedup64 float64 `json:"shared_speedup_closed_64"`
}

// trafficMix is the skewed serving mix: hot-quarter confinements, a
// flash-crowd store scan, and a cold tail.
type trafficMix struct {
	hot, flash, cold []Query
}

func newTrafficMix(b *testing.B, star *Star) trafficMix {
	parse := func(text string) Query {
		q, err := ParseQuery(star, text)
		if err != nil {
			b.Fatal(err)
		}
		return q
	}
	base := newCacheBenchWorkload(b, star)
	m := trafficMix{hot: base.hot, cold: base.cold}
	// The flash crowd converges on one store: an unconfined (Q3/Q4) scan
	// every fragment must serve — the worst case solo, and the best case
	// shared, since every concurrent copy overlaps completely.
	m.flash = append(m.flash,
		parse("customer::store=0"),
		parse("customer::store=0 group by product::group"))
	return m
}

// sequence deals a deterministic arrival order: hotFrac of the picks
// from the hot set, flashFrac from the flash-crowd pair, the rest cold.
func (m trafficMix) sequence(seed int64, n int, hotFrac, flashFrac float64) []Query {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Query, n)
	for i := range out {
		switch u := rng.Float64(); {
		case u < hotFrac:
			out[i] = m.hot[rng.Intn(len(m.hot))]
		case u < hotFrac+flashFrac:
			out[i] = m.flash[rng.Intn(len(m.flash))]
		default:
			out[i] = m.cold[rng.Intn(len(m.cold))]
		}
	}
	return out
}

// latPercentiles returns the p50/p95/p99 of the latencies in µs.
func latPercentiles(lat []time.Duration) (p50, p95, p99 int64) {
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)*50/100].Microseconds(),
		s[len(s)*95/100].Microseconds(),
		s[len(s)*99/100].Microseconds()
}

// runClosedTraffic drives the sequence through the warehouse with
// `streams` closed-loop workers (each issues the next query as soon as
// its previous one completes), checking every result against the oracle
// inside the timed region. It returns the per-query latencies and the
// wall time of the whole run.
func runClosedTraffic(b *testing.B, ctx context.Context, w *Warehouse, seqn []Query, want []Result, streams int) ([]time.Duration, time.Duration) {
	b.Helper()
	lat := make([]time.Duration, len(seqn))
	next := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	start := time.Now()
	for s := 0; s < streams; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				t0 := time.Now()
				got, _, err := w.Query(seqn[i]).Execute(ctx)
				lat[i] = time.Since(t0)
				if err == nil && !reflect.DeepEqual(got, want[i]) {
					err = fmt.Errorf("query %d diverged from the solo oracle", i)
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := range seqn {
		next <- i
	}
	close(next)
	wg.Wait()
	wall := time.Since(start)
	if firstErr != nil {
		b.Fatal(firstErr)
	}
	return lat, wall
}

// runOpenTraffic fires the sequence as an open arrival process: query i
// is launched at its pre-dealt arrival instant whether or not earlier
// queries finished, so latency includes any queueing the backend builds
// up under the offered rate. Results are oracle-checked in the timed
// region; returns per-query sojourn latencies and the wall time.
func runOpenTraffic(b *testing.B, ctx context.Context, w *Warehouse, seqn []Query, want []Result, arrivals []time.Duration) ([]time.Duration, time.Duration) {
	b.Helper()
	lat := make([]time.Duration, len(seqn))
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	start := time.Now()
	for i := range seqn {
		if d := arrivals[i] - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t0 := time.Now()
			got, _, err := w.Query(seqn[i]).Execute(ctx)
			lat[i] = time.Since(t0)
			if err == nil && !reflect.DeepEqual(got, want[i]) {
				err = fmt.Errorf("query %d diverged from the solo oracle", i)
			}
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	if firstErr != nil {
		b.Fatal(firstErr)
	}
	return lat, wall
}

func BenchmarkServingTraffic(b *testing.B) {
	ctx := context.Background()
	star := APB1Scaled(60)
	tab, err := GenerateData(star, 2)
	if err != nil {
		b.Fatal(err)
	}
	const (
		disks     = 4
		ioDelay   = 200 * time.Microsecond
		window    = 1 * time.Millisecond
		execs     = 256
		openExecs = 160
		openBurst = 16
		hotFrac   = 0.70
		flashFrac = 0.15
		seed      = 47
	)
	mix := newTrafficMix(b, star)
	seqn := mix.sequence(seed, execs, hotFrac, flashFrac)
	cfg := Config{Star: star, Fragmentation: "time::month, product::group", Table: tab}

	// Solo oracle results from an in-memory warehouse, computed once.
	oracle, err := Open(ctx, cfg)
	if err != nil {
		b.Fatal(err)
	}
	want := make([]Result, len(seqn))
	for i, q := range seqn {
		if want[i], _, err = oracle.Query(q).Execute(ctx); err != nil {
			b.Fatal(err)
		}
	}
	oracle.Close()

	open := func(b *testing.B, shared bool) *Warehouse {
		opts := []Option{WithDisks(disks, RoundRobin), WithIODelay(ioDelay), WithWorkers(8)}
		if shared {
			opts = append(opts, WithSharedScans(window))
		}
		w, err := Open(ctx, cfg, opts...)
		if err != nil {
			b.Fatal(err)
		}
		warm, err := w.QueryText("")
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := warm.Execute(ctx); err != nil { // build outside timing
			b.Fatal(err)
		}
		return w
	}

	report := trafficReport{
		Benchmark:     "BenchmarkServingTraffic",
		BaseRows:      tab.N(),
		Disks:         disks,
		IODelayUs:     ioDelay.Microseconds(),
		WindowUs:      window.Microseconds(),
		Execs:         execs,
		HotFraction:   hotFrac,
		FlashFraction: flashFrac,
	}

	measure := func(b *testing.B, w *Warehouse, run func() ([]time.Duration, time.Duration), model string, streams int, shared bool) trafficPoint {
		b.Helper()
		var best trafficPoint
		before := w.ServingStats().Shared
		b.ResetTimer()
		for it := 0; it < b.N; it++ {
			lat, wall := run()
			p := trafficPoint{Model: model, Streams: streams, Shared: shared,
				QPS: float64(len(lat)) / wall.Seconds()}
			p.P50Us, p.P95Us, p.P99Us = latPercentiles(lat)
			if p.QPS > best.QPS {
				best = p
			}
		}
		b.StopTimer()
		after := w.ServingStats().Shared
		best.Batches = after.Batches - before.Batches
		best.PhysReadsSaved = after.PhysReadsSaved - before.PhysReadsSaved
		b.ReportMetric(best.QPS, "q/s")
		b.ReportMetric(float64(best.P95Us), "p95-µs")
		return best
	}

	// Closed loop: streams issue back-to-back, shared off vs on.
	qps64 := map[bool]float64{}
	for _, streams := range []int{16, 64, 256} {
		for _, shared := range []bool{false, true} {
			streams, shared := streams, shared
			b.Run(fmt.Sprintf("closed/streams=%d/shared=%v", streams, shared), func(b *testing.B) {
				w := open(b, shared)
				defer w.Close()
				point := measure(b, w, func() ([]time.Duration, time.Duration) {
					return runClosedTraffic(b, ctx, w, seqn, want, streams)
				}, "closed", streams, shared)
				report.Points = append(report.Points, point)
				if streams == 64 {
					qps64[shared] = point.QPS
				}
			})
		}
	}
	if qps64[false] > 0 {
		report.SharedSpeedup64 = qps64[true] / qps64[false]
	}

	// Open loop: bursty Poisson arrivals at a fixed offered rate well
	// above the sharing-off capacity. Bursts model the flash crowd — a
	// crowd of queries arriving together, independent of completions — so
	// the baseline's queue explodes while the batching window coalesces
	// each burst on arrival.
	rate := qps64[false] * 4
	if rate <= 0 {
		rate = 100
	}
	report.OpenRateQPS = rate
	report.OpenBurst = openBurst
	arrivals := make([]time.Duration, openExecs)
	rng := rand.New(rand.NewSource(seed + 1))
	at := time.Duration(0)
	for i := range arrivals {
		if i%openBurst == 0 {
			// Exponential gaps between bursts; the burst's queries arrive
			// back-to-back at the burst instant.
			at += time.Duration(rng.ExpFloat64() * float64(openBurst) * float64(time.Second) / rate)
		}
		arrivals[i] = at
	}
	for _, shared := range []bool{false, true} {
		shared := shared
		b.Run(fmt.Sprintf("open/shared=%v", shared), func(b *testing.B) {
			w := open(b, shared)
			defer w.Close()
			point := measure(b, w, func() ([]time.Duration, time.Duration) {
				return runOpenTraffic(b, ctx, w, seqn[:openExecs], want[:openExecs], arrivals)
			}, "open", 0, shared)
			report.Points = append(report.Points, point)
		})
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_serving.json", append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	fmt.Printf("BENCH_serving.json: %d rows, %d disks at %dµs, %d execs; ",
		report.BaseRows, report.Disks, report.IODelayUs, report.Execs)
	for _, p := range report.Points {
		if p.Model == "closed" {
			fmt.Printf("closed/%d %s %.0f q/s p95 %dµs; ", p.Streams, onOff(p.Shared), p.QPS, p.P95Us)
		} else {
			fmt.Printf("open %s p99 %dµs; ", onOff(p.Shared), p.P99Us)
		}
	}
	fmt.Printf("64-stream shared speedup %.2fx\n", report.SharedSpeedup64)
}

func onOff(v bool) string {
	if v {
		return "shared"
	}
	return "solo"
}
