package mdhf

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"
)

// warehouseQueries returns one query per paper class plus an unsupported
// one, deterministic for the schema.
func warehouseQueries(t testing.TB, star *Star) map[string]Query {
	t.Helper()
	gen := NewQueryGenerator(star, 7)
	out := map[string]Query{}
	for _, qt := range []QueryType{OneMonthOneGroup, OneMonth, OneCodeOneQuarter, OneCodeOneMonth, OneStore} {
		q, err := gen.Next(qt)
		if err != nil {
			t.Fatal(err)
		}
		out[qt.Name] = q
	}
	return out
}

// TestWarehouseBackendsMatchScan opens every backend combination over the
// same data and checks each result against the naive scan oracle, plus
// the unified Stats fields of each backend.
func TestWarehouseBackendsMatchScan(t *testing.T) {
	ctx := context.Background()
	star := TinySchema()
	tab := MustGenerateData(star, 8)
	queries := warehouseQueries(t, star)

	cases := []struct {
		name string
		opts []Option
		kind BackendKind
	}{
		{"in-memory", nil, InMemoryBackend},
		{"in-memory/compressed", []Option{WithCompression()}, InMemoryBackend},
		{"on-disk", []Option{WithOnDisk("")}, OnDiskBackend},
		{"on-disk/compressed", []Option{WithOnDisk(""), WithCompression()}, OnDiskBackend},
		{"declustered", []Option{WithDisks(4, RoundRobin)}, DeclusteredBackend},
		{"declustered/gap/compressed", []Option{WithDisks(3, GapRoundRobin), WithCompression()}, DeclusteredBackend},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w, err := Open(ctx, Config{
				Star:          star,
				Fragmentation: "time::month, product::group",
				Table:         tab,
			}, append([]Option{WithWorkers(4)}, tc.opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			defer w.Close()
			for qname, q := range queries {
				agg, st, err := w.Query(q).Execute(ctx)
				if err != nil {
					t.Fatalf("%s: %v", qname, err)
				}
				if want := ScanAggregate(tab, q); agg.Aggregate != want {
					t.Fatalf("%s: got %+v, want %+v", qname, agg, want)
				}
				if st.Backend != tc.kind {
					t.Fatalf("%s: backend %s, want %s", qname, st.Backend, tc.kind)
				}
				if st.Workers != 4 {
					t.Fatalf("%s: workers %d, want 4", qname, st.Workers)
				}
				switch tc.kind {
				case InMemoryBackend:
					if st.Engine.FragmentsProcessed == 0 {
						t.Fatalf("%s: no engine work recorded", qname)
					}
				default:
					if st.IO.FactPages == 0 {
						t.Fatalf("%s: no physical I/O recorded", qname)
					}
				}
				if tc.kind == DeclusteredBackend && len(st.Disks) == 0 {
					t.Fatalf("%s: no per-disk stats on declustered backend", qname)
				}
			}
			if st := w.ServingStats(); st.QueriesAdmitted == 0 || st.InFlight != 0 {
				t.Fatalf("serving stats: %+v", st)
			}
		})
	}
}

// TestWarehouseConcurrentMatchesSerial is the serving guarantee: M
// goroutines hammering the declustered backend get results byte-identical
// to one-at-a-time execution, and the per-query IOStats match too.
func TestWarehouseConcurrentMatchesSerial(t *testing.T) {
	ctx := context.Background()
	star := TinySchema()
	tab := MustGenerateData(star, 8)
	queries := warehouseQueries(t, star)

	w, err := Open(ctx, Config{
		Star:          star,
		Fragmentation: "time::month, product::group",
		Table:         tab,
	}, WithWorkers(4), WithDisks(4, RoundRobin))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	type result struct {
		agg Aggregate
		io  StorageIOStats
	}
	want := map[string]result{}
	for qname, q := range queries {
		agg, st, err := w.Query(q).Execute(ctx)
		if err != nil {
			t.Fatalf("serial %s: %v", qname, err)
		}
		want[qname] = result{agg: agg.Aggregate, io: st.IO}
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errc := make(chan error, goroutines*len(queries))
	for g := 0; g < goroutines; g++ {
		for qname, q := range queries {
			wg.Add(1)
			go func(qname string, q Query) {
				defer wg.Done()
				for rep := 0; rep < 3; rep++ {
					agg, st, err := w.Query(q).Execute(ctx)
					if err != nil {
						errc <- fmt.Errorf("%s: %v", qname, err)
						return
					}
					if agg.Aggregate != want[qname].agg || st.IO != want[qname].io {
						errc <- fmt.Errorf("%s: concurrent result diverged: got %+v/%+v want %+v/%+v",
							qname, agg, st.IO, want[qname].agg, want[qname].io)
						return
					}
				}
			}(qname, q)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	st := w.ServingStats()
	if st.InFlight != 0 {
		t.Fatalf("in-flight %d after drain", st.InFlight)
	}
	if st.PeakInFlight < 2 {
		t.Fatalf("peak in-flight %d: hammering never overlapped", st.PeakInFlight)
	}
}

// TestWarehouseExplain checks Explain unifies the three analytical views
// and needs no fact data, even at full APB-1 scale.
func TestWarehouseExplain(t *testing.T) {
	ctx := context.Background()
	star := APB1()
	w, err := Open(ctx, Config{Star: star, Fragmentation: "time::month, product::group"},
		WithDisks(100, RoundRobin), WithIODelay(12*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	p, err := w.QueryText("product::code=11")
	if err != nil {
		t.Fatal(err)
	}
	ex, err := p.Explain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	spec := w.Fragmentation()
	wantCost := EstimateCost(spec, w.Indexes(), p.Query(), DefaultCostParams())
	if ex.Cost != wantCost {
		t.Fatalf("Explain cost %+v != EstimateCost %+v", ex.Cost, wantCost)
	}
	if ex.Class != spec.Classify(p.Query()) {
		t.Fatalf("class %v", ex.Class)
	}
	if ex.Response.Response <= 0 || ex.Response.DisksUsed == 0 {
		t.Fatalf("response model missing: %+v", ex.Response)
	}
	if ex.Plan == nil {
		t.Fatal("no physical plan")
	}

	// ExplainAll returns in argument order.
	qs := []Query{p.Query()}
	for _, text := range []string{"customer::store=7", "time::month=3"} {
		q, err := ParseQuery(star, text)
		if err != nil {
			t.Fatal(err)
		}
		qs = append(qs, q)
	}
	all, err := w.ExplainAll(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(qs) {
		t.Fatalf("got %d explains", len(all))
	}
	if all[0].Cost != wantCost {
		t.Fatal("ExplainAll order mismatch")
	}
}

// TestWarehouseAdvisory covers the advisory-only mode: no fragmentation,
// Advise works (and matches the legacy entry point), execution reports a
// clear error.
func TestWarehouseAdvisory(t *testing.T) {
	ctx := context.Background()
	star := TinySchema()
	w, err := Open(ctx, Config{Star: star}, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	gen := NewQueryGenerator(star, 1)
	var mix []WeightedQuery
	for _, qt := range []QueryType{OneMonth, OneStore} {
		q, err := gen.Next(qt)
		if err != nil {
			t.Fatal(err)
		}
		mix = append(mix, WeightedQuery{Name: qt.Name, Query: q, Weight: 0.5})
	}
	th := Thresholds{MinBitmapFragPages: 0, MaxFragments: MaxFragments(star, 1)}
	got := w.Advise(mix, th)
	want := Advise(star, w.Indexes(), mix, th, DefaultCostParams())
	if len(got) == 0 || len(got) != len(want) {
		t.Fatalf("advise: %d candidates, legacy %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Spec.String() != want[i].Spec.String() || got[i].Work != want[i].Work {
			t.Fatalf("rank %d: %s (%.0f) != %s (%.0f)", i,
				got[i].Spec, got[i].Work, want[i].Spec, want[i].Work)
		}
	}

	q := mix[0].Query
	if _, _, err := w.Query(q).Execute(ctx); err == nil {
		t.Fatal("Execute without fragmentation succeeded")
	}
	if _, err := w.Query(q).Explain(ctx); err == nil {
		t.Fatal("Explain without fragmentation succeeded")
	}
}

// TestWarehouseSimulate runs queries through the SIMPAD backend.
func TestWarehouseSimulate(t *testing.T) {
	ctx := context.Background()
	cfg := DefaultSimConfig()
	cfg.Disks, cfg.Nodes, cfg.TasksPerNode = 20, 4, 5
	w, err := Open(ctx, Config{Star: APB1(), Fragmentation: "time::month, product::group"},
		WithSimConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	q, err := ParseQuery(w.Star(), "time::month=3")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := w.Simulate(ctx, q, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].ResponseTime <= 0 {
		t.Fatalf("simulate: %+v", rs)
	}
	if MeanResponseTime(rs) <= 0 {
		t.Fatal("mean response")
	}
}

// TestWarehouseClose checks the lifecycle: Execute after Close fails with
// ErrClosed, Close is idempotent, and an owned temporary directory is
// removed.
func TestWarehouseClose(t *testing.T) {
	ctx := context.Background()
	star := TinySchema()
	w, err := Open(ctx, Config{
		Star:          star,
		Fragmentation: "time::month",
		Table:         MustGenerateData(star, 8),
	}, WithOnDisk(""))
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery(star, "time::month=1")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.Query(q).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	dir := w.rootDir
	if dir == "" {
		t.Fatal("no backend dir recorded")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal("second Close:", err)
	}
	if _, _, err := w.Query(q).Execute(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("Execute after Close: %v", err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("owned dir %s not removed: %v", dir, err)
	}
}

// TestWarehouseQueryText accepts both query notations.
func TestWarehouseQueryText(t *testing.T) {
	ctx := context.Background()
	star := TinySchema()
	w, err := Open(ctx, Config{
		Star:          star,
		Fragmentation: "time::month, product::group",
		Table:         MustGenerateData(star, 8),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	byIdx, err := w.QueryText("customer::store=3")
	if err != nil {
		t.Fatal(err)
	}
	byName, err := w.QueryText("customer.store = 'STORE-0003'")
	if err != nil {
		t.Fatal(err)
	}
	a1, _, err := byIdx.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	a2, _, err := byName.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if a1.Aggregate != a2.Aggregate {
		t.Fatalf("notations diverge: %+v vs %+v", a1, a2)
	}
}

// TestWarehouseConfigErrors covers Open-time validation.
func TestWarehouseConfigErrors(t *testing.T) {
	ctx := context.Background()
	if _, err := Open(ctx, Config{}); err == nil {
		t.Fatal("Open without star succeeded")
	}
	if _, err := Open(ctx, Config{Star: TinySchema(), Fragmentation: "bogus::level"}); err == nil {
		t.Fatal("Open with bad fragmentation succeeded")
	}
	if _, err := Open(ctx, Config{Star: TinySchema()}, WithDisks(-1, RoundRobin)); err == nil {
		t.Fatal("Open with negative disks succeeded")
	}
	// TinySchema returns a fresh *Star each call, so this table belongs
	// to a different schema instance than Config.Star.
	if _, err := Open(ctx, Config{Star: TinySchema(), Table: MustGenerateData(TinySchema(), 1)}); err == nil {
		t.Fatal("Open with mismatched table succeeded")
	}
	// Star inferred from Table.
	w, err := Open(ctx, Config{Table: MustGenerateData(TinySchema(), 8), Fragmentation: "time::month"})
	if err != nil {
		t.Fatal(err)
	}
	if w.Star() == nil {
		t.Fatal("star not inferred from table")
	}
	w.Close()
}

// TestWarehouseReviewRegressions pins the fixes from this PR's review:
// ExplainAll respects the closed state instead of panicking, Class is
// graceful on advisory-only warehouses, Explain's model honours an
// explicit zero access time and stays host-independent, and the live
// disk accessors are safe concurrently with the first-Execute build.
func TestWarehouseReviewRegressions(t *testing.T) {
	ctx := context.Background()
	star := TinySchema()

	t.Run("explainall-after-close", func(t *testing.T) {
		w, err := Open(ctx, Config{Star: star, Fragmentation: "time::month"})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		q, err := ParseQuery(star, "time::month=1")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.ExplainAll(ctx, []Query{q}); !errors.Is(err, ErrClosed) {
			t.Fatalf("ExplainAll after Close: %v, want ErrClosed", err)
		}
	})

	t.Run("class-advisory", func(t *testing.T) {
		w, err := Open(ctx, Config{Star: star})
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		q, err := ParseQuery(star, "time::month=1")
		if err != nil {
			t.Fatal(err)
		}
		if got := w.Query(q).Class(); got != Unsupported {
			t.Fatalf("Class on advisory warehouse = %v, want Unsupported", got)
		}
	})

	t.Run("explicit-zero-access-time", func(t *testing.T) {
		w, err := Open(ctx, Config{Star: star, Fragmentation: "time::month"},
			WithDisks(4, RoundRobin), WithIODelay(0))
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		q, err := ParseQuery(star, "customer::store=1")
		if err != nil {
			t.Fatal(err)
		}
		ex, err := w.Query(q).Explain(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if ex.Response.Response != 0 {
			t.Fatalf("explicit zero access time modelled %v, want 0", ex.Response.Response)
		}
	})

	t.Run("accessors-race-first-execute", func(t *testing.T) {
		w, err := Open(ctx, Config{
			Star:          star,
			Fragmentation: "time::month",
			Table:         MustGenerateData(star, 8),
		}, WithDisks(2, RoundRobin), WithWorkers(2))
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		q, err := ParseQuery(star, "time::month=1")
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		execErr := make(chan error, 1)
		go func() {
			defer wg.Done()
			_, _, err := w.Query(q).Execute(ctx) // triggers the lazy build
			execErr <- err
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				w.SetIODelay(0)
				w.DiskStats()
				w.ResetDiskStats()
			}
		}()
		wg.Wait()
		if err := <-execErr; err != nil {
			t.Fatal(err)
		}
	})
}
