package frag

import (
	"testing"

	"repro/internal/schema"
)

func TestMaxBitmapsAPB1(t *testing.T) {
	s := schema.APB1()
	cfg := APB1Indexes(s)
	// Section 3.2: maximum of 76 bitmaps.
	if got := MaxBitmaps(s, cfg); got != 76 {
		t.Fatalf("MaxBitmaps = %d, want 76", got)
	}
}

func TestSurvivingBitmapsFMonthGroup(t *testing.T) {
	s := schema.APB1()
	cfg := APB1Indexes(s)
	spec := MustParse(s, "time::month, product::group")
	// Section 4.2: "for FMonthGroup at most 32 bitmaps are thus to be
	// maintained" — all 34 TIME bitmaps and the 10 product prefix bits go.
	if got := spec.SurvivingBitmaps(cfg); got != 32 {
		t.Fatalf("SurvivingBitmaps = %d, want 32", got)
	}
}

func TestSurvivingBitmapsOtherSpecs(t *testing.T) {
	s := schema.APB1()
	cfg := APB1Indexes(s)
	cases := []struct {
		text string
		want int
	}{
		// customer::store eliminates the whole 12-bit customer index:
		// 76 - 12 = 64.
		{"customer::store", 64},
		// channel::channel eliminates the 15 channel bitmaps: 61.
		{"channel::channel", 61},
		// time::quarter eliminates quarter+year simple bitmaps (8+2), keeps
		// the 24 month bitmaps: 76 - 10 = 66.
		{"time::quarter", 66},
		// product::code eliminates the full product index: 61.
		{"product::code", 61},
		// All four at the leaves: everything eliminated.
		{"time::month, product::code, customer::store, channel::channel", 0},
	}
	for _, c := range cases {
		spec := MustParse(s, c.text)
		if got := spec.SurvivingBitmaps(cfg); got != c.want {
			t.Errorf("%s: surviving = %d, want %d", c.text, got, c.want)
		}
	}
}

func TestBitmapsReadForPred(t *testing.T) {
	s := schema.APB1()
	cfg := APB1Indexes(s)
	spec := MustParse(s, "time::month, product::group")
	p := s.DimIndex(schema.DimProduct)
	c := s.DimIndex(schema.DimCustomer)
	tm := s.DimIndex(schema.DimTime)
	prod := s.Dim(schema.DimProduct)
	code := prod.LevelIndex(schema.LvlCode)
	class := prod.LevelIndex(schema.LvlClass)
	group := prod.LevelIndex(schema.LvlGroup)
	store := s.Dim(schema.DimCustomer).LevelIndex(schema.LvlStore)
	month := s.Dim(schema.DimTime).LevelIndex(schema.LvlMonth)

	cases := []struct {
		name string
		pred Pred
		want int
	}{
		// 1STORE reads the full 12-bit customer index per fragment
		// (Section 6.2: "12 bitmap fragments for each fact table fragment").
		{"store", Pred{c, store, 0}, 12},
		// A code selection inside a group-fragment reads only the 5 suffix
		// bits (class + code fields).
		{"code", Pred{p, code, 0}, 5},
		// A class selection reads just the 1 class bit beyond the group.
		{"class", Pred{p, class, 0}, 1},
		// Fragmentation attributes need no bitmaps.
		{"group", Pred{p, group, 0}, 0},
		{"month", Pred{tm, month, 0}, 0},
	}
	for _, tc := range cases {
		if got := spec.BitmapsReadForPred(cfg, tc.pred); got != tc.want {
			t.Errorf("%s: bitmaps read = %d, want %d", tc.name, got, tc.want)
		}
	}
	q := Query{Preds: []Pred{{c, store, 0}, {p, code, 0}}}
	if got := spec.BitmapsReadForQuery(cfg, q); got != 17 {
		t.Errorf("query bitmaps read = %d, want 17", got)
	}
}

func TestBitmapsReadUnfragmentedEncoded(t *testing.T) {
	s := schema.APB1()
	cfg := APB1Indexes(s)
	// Fragment only on time; product predicates use the full prefix.
	spec := MustParse(s, "time::month")
	p := s.DimIndex(schema.DimProduct)
	prod := s.Dim(schema.DimProduct)
	group := prod.LevelIndex(schema.LvlGroup)
	code := prod.LevelIndex(schema.LvlCode)
	if got := spec.BitmapsReadForPred(cfg, Pred{p, group, 0}); got != 10 {
		t.Errorf("group prefix read = %d, want 10 (Table 1)", got)
	}
	if got := spec.BitmapsReadForPred(cfg, Pred{p, code, 0}); got != 15 {
		t.Errorf("code prefix read = %d, want 15", got)
	}
}

func TestEnumerateCounts(t *testing.T) {
	s := schema.APB1()
	specs := Enumerate(s)
	// Table 2 "any" column: 12 + 47 + 72 + 36 = 167 options.
	byDims := map[int]int{}
	for _, sp := range specs {
		byDims[sp.Dimensionality()]++
	}
	want := map[int]int{1: 12, 2: 47, 3: 72, 4: 36}
	for d, w := range want {
		if byDims[d] != w {
			t.Errorf("%d-dimensional options = %d, want %d", d, byDims[d], w)
		}
	}
	if len(specs) != 167 {
		t.Errorf("total options = %d, want 167", len(specs))
	}
}

func TestThresholdsFilter(t *testing.T) {
	s := schema.APB1()
	cfg := APB1Indexes(s)
	specs := Enumerate(s)

	// Threshold (i): minimal bitmap fragment size of 1 page. The paper's
	// Table 2 reports 72; our exact arithmetic yields 74 (the paper's table
	// is internally inconsistent with its own nmax formula — see
	// EXPERIMENTS.md T2).
	t1 := Thresholds{MinBitmapFragPages: 1}
	if got := len(t1.Filter(specs, cfg)); got != 74 {
		t.Errorf("options with >=1 page bitmap fragments = %d, want 74", got)
	}

	// MaxFragments and MaxBitmaps thresholds compose.
	t2 := Thresholds{MaxFragments: 20_000, MaxBitmaps: 40}
	for _, sp := range t2.Filter(specs, cfg) {
		if sp.NumFragments() > 20_000 {
			t.Errorf("%s exceeds MaxFragments", sp)
		}
		if sp.SurvivingBitmaps(cfg) > 40 {
			t.Errorf("%s exceeds MaxBitmaps", sp)
		}
	}

	// MinFragments: at least one fragment per disk (d=100).
	t3 := Thresholds{MinFragments: 100}
	for _, sp := range t3.Filter(specs, cfg) {
		if sp.NumFragments() < 100 {
			t.Errorf("%s below MinFragments", sp)
		}
	}
}

func TestIOClassOf(t *testing.T) {
	s := schema.APB1()
	spec := MustParse(s, "time::month, product::group")
	p := s.DimIndex(schema.DimProduct)
	c := s.DimIndex(schema.DimCustomer)
	tm := s.DimIndex(schema.DimTime)
	prod := s.Dim(schema.DimProduct)
	timeD := s.Dim(schema.DimTime)
	group := prod.LevelIndex(schema.LvlGroup)
	family := prod.LevelIndex(schema.LvlFamily)
	code := prod.LevelIndex(schema.LvlCode)
	month := timeD.LevelIndex(schema.LvlMonth)
	quarter := timeD.LevelIndex(schema.LvlQuarter)
	store := s.Dim(schema.DimCustomer).LevelIndex(schema.LvlStore)

	cases := []struct {
		name string
		q    Query
		want IOClass
	}{
		{"1MONTH1GROUP", Query{Preds: []Pred{{tm, month, 0}, {p, group, 0}}}, IOC1Opt},
		{"1MONTH", Query{Preds: []Pred{{tm, month, 0}}}, IOC1},
		{"1GROUP1QUARTER", Query{Preds: []Pred{{p, group, 0}, {tm, quarter, 0}}}, IOC1},
		{"1FAMILY1MONTH", Query{Preds: []Pred{{p, family, 0}, {tm, month, 0}}}, IOC1},
		{"1CODE1QUARTER", Query{Preds: []Pred{{p, code, 0}, {tm, quarter, 0}}}, IOC2},
		{"1CODE", Query{Preds: []Pred{{p, code, 0}}}, IOC2},
		{"1GROUP1STORE", Query{Preds: []Pred{{p, group, 0}, {c, store, 0}}}, IOC2},
		{"1STORE", Query{Preds: []Pred{{c, store, 0}}}, IOC2NoSupp},
		{"empty", Query{}, IOC2NoSupp},
	}
	for _, tc := range cases {
		if got := spec.IOClassOf(tc.q); got != tc.want {
			t.Errorf("%s: IOClass = %v, want %v", tc.name, got, tc.want)
		}
	}
	// Fopt for 1STORE: IOC1-opt (Section 4.5).
	fopt := MustParse(s, "customer::store")
	if got := fopt.IOClassOf(Query{Preds: []Pred{{c, store, 0}}}); got != IOC1Opt {
		t.Errorf("Fopt 1STORE: IOClass = %v, want IOC1-opt", got)
	}
}

func TestIOClassStringAndQueryClassString(t *testing.T) {
	for c, want := range map[IOClass]string{
		IOC1Opt: "IOC1-opt", IOC1: "IOC1", IOC2: "IOC2", IOC2NoSupp: "IOC2-nosupp",
	} {
		if c.String() != want {
			t.Errorf("IOClass(%d).String() = %q", c, c.String())
		}
	}
	for c, want := range map[QueryClass]string{
		Q1: "Q1", Q2: "Q2", Q3: "Q3", Q4: "Q4", Unsupported: "unsupported",
	} {
		if c.String() != want {
			t.Errorf("QueryClass(%d).String() = %q", c, c.String())
		}
	}
}
