package frag

import (
	"fmt"
	"strings"

	"repro/internal/schema"
)

// Pred is a point predicate on one hierarchy level of one dimension:
// "dimension Dim at level Level equals member Member" (e.g. month = 5).
// The paper's star queries are conjunctions of such predicates.
type Pred struct {
	Dim    int
	Level  int
	Member int
}

// LevelRef names one hierarchy level of one dimension — a GROUP BY item.
type LevelRef struct {
	Dim   int
	Level int
}

// Query is a star query: a conjunction of point predicates on distinct
// dimensions (the selection), optionally grouped by one or more hierarchy
// levels. Aggregation is over the measures of all matching fact rows; with
// GroupBy set, a per-group aggregate is produced for every member tuple of
// the GroupBy levels that receives at least one row, alongside the grand
// total.
//
// GROUP BY is the workload MDHF fragments were designed for: when every
// GroupBy level is at or above the fragmentation level of its dimension,
// each fragment belongs to exactly one group and grouping costs zero
// per-row work (see internal/kernel.Grouper).
type Query struct {
	Preds   []Pred
	GroupBy []LevelRef
}

// SplitGroupBy separates a query text's selection from a trailing GROUP
// BY clause (case-insensitive), reporting whether the clause is present.
// Shared by every notation's parser. The scan is byte-wise (EqualFold on
// the ASCII keyword), so arbitrary — even invalid-UTF-8 — input never
// shifts the split offsets; it skips quoted member-name literals and
// requires the keyword to stand at token boundaries, so a name that
// happens to contain the phrase never splits the query.
func SplitGroupBy(text string) (sel, gb string, found bool) {
	const kw = "group by"
	var quote byte
	for i := 0; i < len(text); i++ {
		c := text[i]
		if quote != 0 {
			if c == quote {
				quote = 0
			}
			continue
		}
		if c == '\'' || c == '"' {
			quote = c
			continue
		}
		if i+len(kw) > len(text) || !strings.EqualFold(text[i:i+len(kw)], kw) {
			continue
		}
		boundedLeft := i == 0 || text[i-1] == ' ' || text[i-1] == '\t' || text[i-1] == ','
		end := i + len(kw)
		boundedRight := end == len(text) || text[end] == ' ' || text[end] == '\t'
		if boundedLeft && boundedRight {
			return text[:i], text[end:], true
		}
	}
	return text, "", false
}

// parseLevelRef resolves "dim::level" against the schema.
func parseLevelRef(star *schema.Star, part string) (LevelRef, error) {
	dl := strings.SplitN(part, "::", 2)
	if len(dl) != 2 {
		return LevelRef{}, fmt.Errorf("frag: malformed attribute %q (want dim::level)", part)
	}
	di := star.DimIndex(strings.TrimSpace(dl[0]))
	if di < 0 {
		return LevelRef{}, fmt.Errorf("frag: unknown dimension %q", dl[0])
	}
	li := star.Dims[di].LevelIndex(strings.TrimSpace(dl[1]))
	if li < 0 {
		return LevelRef{}, fmt.Errorf("frag: unknown level %q", dl[1])
	}
	return LevelRef{Dim: di, Level: li}, nil
}

// ParseQuery builds a query from "dim::level=member, ..." notation with an
// optional trailing "group by dim::level, ..." clause, e.g.
// "customer::store=7 group by time::month, product::family".
func ParseQuery(star *schema.Star, text string) (Query, error) {
	var q Query
	sel, gb, hasGB := SplitGroupBy(text)
	for _, part := range strings.Split(sel, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := strings.SplitN(part, "=", 2)
		if len(eq) != 2 {
			return Query{}, fmt.Errorf("frag: malformed predicate %q", part)
		}
		ref, err := parseLevelRef(star, eq[0])
		if err != nil {
			return Query{}, err
		}
		var m int
		if _, err := fmt.Sscanf(strings.TrimSpace(eq[1]), "%d", &m); err != nil {
			return Query{}, fmt.Errorf("frag: bad member in %q: %v", part, err)
		}
		if m < 0 || m >= star.Dims[ref.Dim].Levels[ref.Level].Card {
			return Query{}, fmt.Errorf("frag: member %d out of domain of %s", m, strings.TrimSpace(eq[0]))
		}
		q.Preds = append(q.Preds, Pred{Dim: ref.Dim, Level: ref.Level, Member: m})
	}
	if hasGB {
		if strings.TrimSpace(gb) == "" {
			return Query{}, fmt.Errorf("frag: empty GROUP BY clause")
		}
		for _, part := range strings.Split(gb, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				return Query{}, fmt.Errorf("frag: empty GROUP BY item")
			}
			ref, err := parseLevelRef(star, part)
			if err != nil {
				return Query{}, err
			}
			q.GroupBy = append(q.GroupBy, ref)
		}
	}
	return q, q.Validate(star)
}

// Format renders the query in the ParseQuery notation; Format then
// ParseQuery round-trips exactly.
func Format(star *schema.Star, q Query) string {
	var b strings.Builder
	for i, p := range q.Preds {
		if i > 0 {
			b.WriteString(", ")
		}
		d := &star.Dims[p.Dim]
		fmt.Fprintf(&b, "%s::%s=%d", d.Name, d.Levels[p.Level].Name, p.Member)
	}
	if len(q.GroupBy) > 0 {
		b.WriteString(" group by ")
		for i, ref := range q.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			d := &star.Dims[ref.Dim]
			fmt.Fprintf(&b, "%s::%s", d.Name, d.Levels[ref.Level].Name)
		}
	}
	return b.String()
}

// Validate checks that predicates are in-range and on distinct dimensions
// and that GroupBy levels are in-range, distinct, and span a group space
// small enough to key (< 2^62 member combinations).
func (q Query) Validate(star *schema.Star) error {
	seen := make(map[int]bool, len(q.Preds))
	for _, p := range q.Preds {
		if p.Dim < 0 || p.Dim >= len(star.Dims) {
			return fmt.Errorf("frag: predicate dimension %d out of range", p.Dim)
		}
		d := &star.Dims[p.Dim]
		if p.Level < 0 || p.Level >= d.Depth() {
			return fmt.Errorf("frag: predicate level %d out of range for %s", p.Level, d.Name)
		}
		if p.Member < 0 || p.Member >= d.Levels[p.Level].Card {
			return fmt.Errorf("frag: predicate member %d out of domain of %s.%s", p.Member, d.Name, d.Levels[p.Level].Name)
		}
		if seen[p.Dim] {
			return fmt.Errorf("frag: dimension %s referenced twice in query", d.Name)
		}
		seen[p.Dim] = true
	}
	space := int64(1)
	seenGB := make(map[LevelRef]bool, len(q.GroupBy))
	for _, ref := range q.GroupBy {
		if ref.Dim < 0 || ref.Dim >= len(star.Dims) {
			return fmt.Errorf("frag: GroupBy dimension %d out of range", ref.Dim)
		}
		d := &star.Dims[ref.Dim]
		if ref.Level < 0 || ref.Level >= d.Depth() {
			return fmt.Errorf("frag: GroupBy level %d out of range for %s", ref.Level, d.Name)
		}
		if seenGB[ref] {
			return fmt.Errorf("frag: GroupBy level %s.%s listed twice", d.Name, d.Levels[ref.Level].Name)
		}
		seenGB[ref] = true
		card := int64(d.Levels[ref.Level].Card)
		if space > (1<<62)/card {
			return fmt.Errorf("frag: GroupBy space exceeds 2^62 groups")
		}
		space *= card
	}
	return nil
}

// PredOnDim returns the predicate on dimension d, if any.
func (q Query) PredOnDim(d int) (Pred, bool) {
	for _, p := range q.Preds {
		if p.Dim == d {
			return p, true
		}
	}
	return Pred{}, false
}

// Selectivity returns the fraction of all fact rows matching the query
// under the uniformity assumption of the paper.
func (q Query) Selectivity(star *schema.Star) float64 {
	sel := 1.0
	for _, p := range q.Preds {
		sel /= float64(star.Dims[p.Dim].Levels[p.Level].Card)
	}
	return sel
}

// Hits returns the expected number of matching fact rows.
func (q Query) Hits(star *schema.Star) float64 {
	return q.Selectivity(star) * float64(star.N())
}

// QueryClass is the paper's classification of star queries with respect to
// a fragmentation (Section 4.2).
type QueryClass int

const (
	// Unsupported: the query references no fragmentation dimension; it
	// cannot be confined to a fragment subset.
	Unsupported QueryClass = iota
	// Q1: predicates on fragmentation attributes themselves.
	Q1
	// Q2: predicates on lower-level (finer) attributes of fragmentation
	// dimensions.
	Q2
	// Q3: predicates on higher-level (coarser) attributes of fragmentation
	// dimensions.
	Q3
	// Q4: mixed — at least one finer and one coarser predicate across the
	// fragmentation dimensions.
	Q4
)

func (c QueryClass) String() string {
	switch c {
	case Q1:
		return "Q1"
	case Q2:
		return "Q2"
	case Q3:
		return "Q3"
	case Q4:
		return "Q4"
	default:
		return "unsupported"
	}
}

// Classify assigns the query to Q1-Q4 or Unsupported per Section 4.2,
// looking only at predicates on fragmentation dimensions.
func (s *Spec) Classify(q Query) QueryClass {
	finer, coarser, equal := false, false, false
	for _, p := range q.Preds {
		ai := s.byDim[p.Dim]
		if ai == -1 {
			continue
		}
		fl := s.attrs[ai].Level
		switch {
		case p.Level == fl:
			equal = true
		case p.Level > fl: // finer (deeper in the hierarchy)
			finer = true
		default:
			coarser = true
		}
	}
	switch {
	case !finer && !coarser && !equal:
		return Unsupported
	case finer && coarser:
		return Q4
	case finer:
		return Q2
	case coarser:
		return Q3
	default:
		return Q1
	}
}

// NeedsBitmap reports whether evaluating predicate p requires bitmap access
// under this fragmentation (Section 4.3, step 2): yes iff p's dimension is
// not a fragmentation dimension, or p is at a strictly finer level than the
// fragmentation attribute.
func (s *Spec) NeedsBitmap(p Pred) bool {
	ai := s.byDim[p.Dim]
	if ai == -1 {
		return true
	}
	return p.Level > s.attrs[ai].Level
}

// BitmapPreds returns the query predicates that require bitmap access.
func (s *Spec) BitmapPreds(q Query) []Pred {
	var out []Pred
	for _, p := range q.Preds {
		if s.NeedsBitmap(p) {
			out = append(out, p)
		}
	}
	return out
}

// GroupAligned reports whether every GroupBy level of the query is at or
// above the fragmentation level of its dimension — the fast path on which
// the group key is constant per fragment (internal/kernel.Grouper). A
// query without GroupBy is trivially aligned.
func (s *Spec) GroupAligned(q Query) bool {
	for _, ref := range q.GroupBy {
		ai := s.byDim[ref.Dim]
		if ai == -1 || ref.Level > s.attrs[ai].Level {
			return false
		}
	}
	return true
}

// Region describes the relevant fragments of a query as one member range
// per fragmentation attribute (allocation order). Ranges are half-open.
type Region struct {
	Lo, Hi []int // per attribute: members [Lo[i], Hi[i]) are relevant
}

// Count returns the number of fragments in the region.
func (r Region) Count() int64 {
	n := int64(1)
	for i := range r.Lo {
		n *= int64(r.Hi[i] - r.Lo[i])
	}
	return n
}

// Relevant computes the fragments a query must process (Section 4.2): for
// each fragmentation attribute, a predicate at the same level selects one
// member; a finer predicate selects its single ancestor; a coarser
// predicate selects the descendant range; no predicate on the dimension
// selects the full domain.
func (s *Spec) Relevant(q Query) Region {
	r := Region{Lo: make([]int, len(s.attrs)), Hi: make([]int, len(s.attrs))}
	for i, a := range s.attrs {
		d := &s.star.Dims[a.Dim]
		p, ok := q.PredOnDim(a.Dim)
		switch {
		case !ok:
			r.Lo[i], r.Hi[i] = 0, s.radix[i]
		case p.Level >= a.Level:
			v := d.Ancestor(p.Level, p.Member, a.Level)
			r.Lo[i], r.Hi[i] = v, v+1
		default:
			r.Lo[i], r.Hi[i] = d.DescendantRange(p.Level, p.Member, a.Level)
		}
	}
	return r
}

// RelevantCount returns the number of fragments the query is confined to.
func (s *Spec) RelevantCount(q Query) int64 {
	return s.Relevant(q).Count()
}

// ForEachFragment calls fn with every relevant fragment id, in allocation
// order, stopping early if fn returns false. Use RelevantCount first if the
// region may be huge.
func (s *Spec) ForEachFragment(q Query, fn func(id int64, coord []int) bool) {
	r := s.Relevant(q)
	coord := make([]int, len(s.attrs))
	copy(coord, r.Lo)
	for {
		if !fn(s.ID(coord), coord) {
			return
		}
		i := len(coord) - 1
		for ; i >= 0; i-- {
			coord[i]++
			if coord[i] < r.Hi[i] {
				break
			}
			coord[i] = r.Lo[i]
		}
		if i < 0 {
			return
		}
	}
}

// FragmentIDs materialises the relevant fragment ids (allocation order).
func (s *Spec) FragmentIDs(q Query) []int64 {
	n := s.RelevantCount(q)
	ids := make([]int64, 0, n)
	s.ForEachFragment(q, func(id int64, _ []int) bool {
		ids = append(ids, id)
		return true
	})
	return ids
}

// FragmentSelectivity returns the fraction of rows within one relevant
// fragment that match the query (uniformity assumption). Predicates at or
// above the fragmentation level contribute nothing (all fragment rows
// match); finer predicates and predicates on non-fragmentation dimensions
// reduce it.
func (s *Spec) FragmentSelectivity(q Query) float64 {
	sel := 1.0
	for _, p := range q.Preds {
		d := &s.star.Dims[p.Dim]
		ai := s.byDim[p.Dim]
		if ai == -1 {
			sel /= float64(d.Levels[p.Level].Card)
			continue
		}
		fl := s.attrs[ai].Level
		if p.Level > fl {
			// Within a fragment, the fragmentation attribute is fixed; the
			// finer predicate selects 1 of the fan-out many descendants.
			sel /= float64(d.FanOutBetween(fl, p.Level))
		}
	}
	return sel
}
