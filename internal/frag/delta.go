package frag

// Delta fragments: the append side of the epoch-versioned warehouse. A
// fragment's data becomes base + []delta — the base is whatever the
// backend built at the last compaction, and each delta is a sealed,
// immutable, fragment-aligned row buffer carrying its own WAH bitmap
// fragments, built incrementally (bitmap.Builder) as rows arrive so a
// segment extension never rewrites the compressed words it already has.
// The surviving-bitmap enumeration is exactly the one the on-disk
// bitmap file stores (Survivors), so predicate evaluation over a delta
// segment is the same verbatim/complemented WAH intersection the
// compressed executor path runs — just against in-memory words instead
// of page reads.

import (
	"fmt"
	"sort"

	"repro/internal/bitmap"
	"repro/internal/schema"
)

// BitmapRef identifies one surviving bitmap of a fragmentation, in the
// fixed enumeration order of Survivors (Section 4.2): for encoded
// dimensions, the non-eliminated bit positions; for simple dimensions,
// one bitmap per member of each non-eliminated level.
type BitmapRef struct {
	Dim int
	// Bit is the bit index within the dimension's encoding layout
	// (encoded dimensions only).
	Bit int
	// Level and Member identify a simple bitmap (simple dimensions only).
	Level  int
	Member int
	// Simple distinguishes the two variants.
	Simple bool
}

// Survivors enumerates the surviving bitmaps of a fragmentation under an
// index configuration, in a deterministic order, together with the
// per-dimension encoding layouts and the number of eliminated leading
// bits per encoded dimension. Both the on-disk bitmap file and the
// delta index derive their bitmap enumeration from this one function,
// so base and delta agree bit-for-bit on what is stored.
func Survivors(spec *Spec, icfg IndexConfig) ([]BitmapRef, []*bitmap.Layout, []int) {
	star := spec.star
	var descs []BitmapRef
	layouts := make([]*bitmap.Layout, len(star.Dims))
	skip := make([]int, len(star.Dims))
	for d := range star.Dims {
		dim := &star.Dims[d]
		fl := -1
		if ai := spec.AttrOfDim(d); ai != -1 {
			fl = spec.attrs[ai].Level
		}
		switch icfg[d].Kind {
		case EncodedIndex:
			layouts[d] = bitmap.NewLayout(dim, icfg[d].PadBits)
			if fl >= 0 {
				skip[d] = layouts[d].PrefixBits(fl)
			}
			for b := skip[d]; b < layouts[d].TotalBits(); b++ {
				descs = append(descs, BitmapRef{Dim: d, Bit: b})
			}
		default:
			for l := fl + 1; l < dim.Depth(); l++ {
				for m := 0; m < dim.Levels[l].Card; m++ {
					descs = append(descs, BitmapRef{Dim: d, Level: l, Member: m, Simple: true})
				}
			}
		}
	}
	return descs, layouts, skip
}

// DeltaIndex holds the per-warehouse state shared by every delta
// segment: the surviving-bitmap enumeration and the encoding layouts.
// It is immutable after construction and safe for concurrent use.
type DeltaIndex struct {
	star    *schema.Star
	spec    *Spec
	icfg    IndexConfig
	descs   []BitmapRef
	layouts []*bitmap.Layout
	skip    []int
	pos     map[BitmapRef]int
}

// NewDeltaIndex builds the delta index of a fragmentation.
func NewDeltaIndex(spec *Spec, icfg IndexConfig) (*DeltaIndex, error) {
	star := spec.star
	if len(icfg) != len(star.Dims) {
		return nil, fmt.Errorf("frag: index config has %d entries for %d dimensions", len(icfg), len(star.Dims))
	}
	descs, layouts, skip := Survivors(spec, icfg)
	ix := &DeltaIndex{
		star:    star,
		spec:    spec,
		icfg:    icfg,
		descs:   descs,
		layouts: layouts,
		skip:    skip,
		pos:     make(map[BitmapRef]int, len(descs)),
	}
	for i, d := range descs {
		ix.pos[d] = i
	}
	return ix, nil
}

// NumBitmaps returns the number of surviving bitmaps per fragment.
func (ix *DeltaIndex) NumBitmaps() int { return len(ix.descs) }

// bitOf computes one row's bit in the desc's bitmap from its leaf member.
func (ix *DeltaIndex) bitOf(desc BitmapRef, leaf int32) bool {
	dim := &ix.star.Dims[desc.Dim]
	if desc.Simple {
		return dim.Ancestor(dim.Leaf(), int(leaf), desc.Level) == desc.Member
	}
	l := ix.layouts[desc.Dim]
	return l.Encode(int(leaf))>>uint(l.TotalBits()-1-desc.Bit)&1 == 1
}

// DeltaSegment is one sealed, immutable batch of appended fact rows, all
// belonging to one fragment: the leaf members per dimension, the three
// measures, and one compressed bitmap per surviving desc — the delta
// counterpart of a fact fragment plus its bitmap fragments. Segments
// are ordered by Seq, the warehouse-wide seal sequence number.
type DeltaSegment struct {
	frag    int64
	seq     uint64
	rows    int
	dims    [][]int32
	units   []int64
	dollars []int64
	costs   []int64
	bms     []*bitmap.Compressed
}

// Frag returns the fragment id the segment belongs to.
func (s *DeltaSegment) Frag() int64 { return s.frag }

// Seq returns the warehouse-wide seal sequence number.
func (s *DeltaSegment) Seq() uint64 { return s.seq }

// Rows returns the number of rows in the segment.
func (s *DeltaSegment) Rows() int { return s.rows }

// Leaves returns the leaf members of dimension d, one per row. The
// returned slice is shared — callers must not modify it.
func (s *DeltaSegment) Leaves(d int) []int32 { return s.dims[d] }

// Units returns the UnitsSold measure column (read-only).
func (s *DeltaSegment) Units() []int64 { return s.units }

// Dollars returns the DollarSales measure column (read-only).
func (s *DeltaSegment) Dollars() []int64 { return s.dollars }

// Costs returns the Cost measure column (read-only).
func (s *DeltaSegment) Costs() []int64 { return s.costs }

// Bitmap returns the i-th surviving bitmap of the segment.
func (s *DeltaSegment) Bitmap(i int) *bitmap.Compressed { return s.bms[i] }

// Bytes returns the approximate in-memory size of the segment: the
// column data plus the compressed bitmap words.
func (s *DeltaSegment) Bytes() int {
	b := s.rows * (4*len(s.dims) + 3*8)
	for _, c := range s.bms {
		b += c.Bytes()
	}
	return b
}

// SegmentBuilder accumulates rows into one fragment's next delta
// segment. Not safe for concurrent use; Seal freezes the content into
// an immutable DeltaSegment and the builder must then be discarded.
type SegmentBuilder struct {
	ix      *DeltaIndex
	frag    int64
	rows    int
	dims    [][]int32
	units   []int64
	dollars []int64
	costs   []int64
	bbs     []*bitmap.Builder
}

// NewSegment starts an empty segment builder for the fragment.
func (ix *DeltaIndex) NewSegment(fragID int64) *SegmentBuilder {
	sb := &SegmentBuilder{
		ix:   ix,
		frag: fragID,
		dims: make([][]int32, len(ix.star.Dims)),
		bbs:  make([]*bitmap.Builder, len(ix.descs)),
	}
	for i := range sb.bbs {
		sb.bbs[i] = bitmap.NewBuilder()
	}
	return sb
}

// ExtendSegment starts a builder whose content equals the sealed
// segment, ready to append more rows — the coalescing path that keeps a
// fragment's tail segment from shattering into many tiny ones. The
// sealed segment is not modified and may keep serving reads; its
// compressed bitmaps are resumed in place (bitmap.NewBuilderFrom), not
// re-encoded.
func (ix *DeltaIndex) ExtendSegment(seg *DeltaSegment) *SegmentBuilder {
	sb := &SegmentBuilder{
		ix:      ix,
		frag:    seg.frag,
		rows:    seg.rows,
		dims:    make([][]int32, len(seg.dims)),
		units:   append([]int64(nil), seg.units...),
		dollars: append([]int64(nil), seg.dollars...),
		costs:   append([]int64(nil), seg.costs...),
		bbs:     make([]*bitmap.Builder, len(seg.bms)),
	}
	for d := range seg.dims {
		sb.dims[d] = append([]int32(nil), seg.dims[d]...)
	}
	for i, c := range seg.bms {
		sb.bbs[i] = bitmap.NewBuilderFrom(c)
	}
	return sb
}

// Frag returns the fragment the builder appends to.
func (sb *SegmentBuilder) Frag() int64 { return sb.frag }

// Rows returns the number of rows accumulated so far.
func (sb *SegmentBuilder) Rows() int { return sb.rows }

// Add appends one fact row given its leaf member per dimension. The
// caller is responsible for routing the row to the right fragment
// (spec.ID(spec.CoordOf(...)) == sb.Frag()).
func (sb *SegmentBuilder) Add(leaves []int32, units, dollars, cost int64) {
	for d := range sb.dims {
		sb.dims[d] = append(sb.dims[d], leaves[d])
	}
	sb.units = append(sb.units, units)
	sb.dollars = append(sb.dollars, dollars)
	sb.costs = append(sb.costs, cost)
	for i, desc := range sb.ix.descs {
		sb.bbs[i].Append(sb.ix.bitOf(desc, leaves[desc.Dim]))
	}
	sb.rows++
}

// Seal freezes the builder into an immutable segment with the given
// warehouse-wide sequence number.
func (sb *SegmentBuilder) Seal(seq uint64) *DeltaSegment {
	seg := &DeltaSegment{
		frag:    sb.frag,
		seq:     seq,
		rows:    sb.rows,
		dims:    sb.dims,
		units:   sb.units,
		dollars: sb.dollars,
		costs:   sb.costs,
		bms:     make([]*bitmap.Compressed, len(sb.bbs)),
	}
	for i, bb := range sb.bbs {
		seg.bms[i] = bb.Finish()
	}
	return seg
}

// DeltaSet is an immutable snapshot of every fragment's delta segments.
// Mutation is copy-on-write (With / WithTailReplaced / After return new
// sets), so a query that pinned a set at admission keeps reading it
// unaffected by concurrent appends and compactions. A nil *DeltaSet is
// the valid empty set.
type DeltaSet struct {
	segs   map[int64][]*DeltaSegment
	rows   int64
	nsegs  int
	maxSeq uint64
}

// Rows returns the total delta rows across all fragments.
func (s *DeltaSet) Rows() int64 {
	if s == nil {
		return 0
	}
	return s.rows
}

// Segments returns the total number of segments.
func (s *DeltaSet) Segments() int {
	if s == nil {
		return 0
	}
	return s.nsegs
}

// Fragments returns the number of fragments holding at least one segment.
func (s *DeltaSet) Fragments() int {
	if s == nil {
		return 0
	}
	return len(s.segs)
}

// MaxSeq returns the highest seal sequence number in the set — the
// compaction boundary.
func (s *DeltaSet) MaxSeq() uint64 {
	if s == nil {
		return 0
	}
	return s.maxSeq
}

// Of returns the fragment's segments in seal order (read-only).
func (s *DeltaSet) Of(frag int64) []*DeltaSegment {
	if s == nil {
		return nil
	}
	return s.segs[frag]
}

// Tail returns the fragment's most recently sealed segment, or nil.
func (s *DeltaSet) Tail(frag int64) *DeltaSegment {
	if s == nil {
		return nil
	}
	segs := s.segs[frag]
	if len(segs) == 0 {
		return nil
	}
	return segs[len(segs)-1]
}

// clone shallow-copies the set with room for one more segment list.
func (s *DeltaSet) clone() *DeltaSet {
	out := &DeltaSet{segs: make(map[int64][]*DeltaSegment, s.Fragments()+1)}
	if s != nil {
		for f, segs := range s.segs {
			out.segs[f] = segs
		}
		out.rows, out.nsegs, out.maxSeq = s.rows, s.nsegs, s.maxSeq
	}
	return out
}

// With returns a new set with seg appended to its fragment's list. seg's
// Seq must exceed MaxSeq.
func (s *DeltaSet) With(seg *DeltaSegment) *DeltaSet {
	out := s.clone()
	prev := out.segs[seg.frag]
	// Copy the per-fragment slice so the old set's view never aliases a
	// growing array.
	out.segs[seg.frag] = append(append(make([]*DeltaSegment, 0, len(prev)+1), prev...), seg)
	out.rows += int64(seg.rows)
	out.nsegs++
	if seg.seq > out.maxSeq {
		out.maxSeq = seg.seq
	}
	return out
}

// WithTailReplaced returns a new set whose fragment tail segment is
// replaced by seg (the sealed extension of the old tail). The fragment
// must have at least one segment.
func (s *DeltaSet) WithTailReplaced(seg *DeltaSegment) *DeltaSet {
	out := s.clone()
	prev := out.segs[seg.frag]
	if len(prev) == 0 {
		panic("frag: WithTailReplaced on fragment without segments")
	}
	old := prev[len(prev)-1]
	nl := append(make([]*DeltaSegment, 0, len(prev)), prev[:len(prev)-1]...)
	out.segs[seg.frag] = append(nl, seg)
	out.rows += int64(seg.rows - old.rows)
	if seg.seq > out.maxSeq {
		out.maxSeq = seg.seq
	}
	return out
}

// After returns the subset of segments sealed strictly after seq — the
// appends that raced past a compaction's boundary and stay live across
// the epoch swap.
func (s *DeltaSet) After(seq uint64) *DeltaSet {
	if s == nil {
		return nil
	}
	out := &DeltaSet{segs: make(map[int64][]*DeltaSegment)}
	for f, segs := range s.segs {
		i := sort.Search(len(segs), func(i int) bool { return segs[i].seq > seq })
		if i == len(segs) {
			continue
		}
		keep := segs[i:]
		out.segs[f] = keep
		out.nsegs += len(keep)
		for _, seg := range keep {
			out.rows += int64(seg.rows)
			if seg.seq > out.maxSeq {
				out.maxSeq = seg.seq
			}
		}
	}
	if out.nsegs == 0 {
		return nil
	}
	return out
}

// ForEachSegment calls fn with every segment, fragments in ascending id
// order and segments in seal order within a fragment — the
// deterministic iteration compaction rebuilds from.
func (s *DeltaSet) ForEachSegment(fn func(seg *DeltaSegment)) {
	if s == nil {
		return
	}
	frags := make([]int64, 0, len(s.segs))
	for f := range s.segs {
		frags = append(frags, f)
	}
	sort.Slice(frags, func(i, j int) bool { return frags[i] < frags[j] })
	for _, f := range frags {
		for _, seg := range s.segs[f] {
			fn(seg)
		}
	}
}

// DeltaScratch is the reusable buffer set of delta predicate selection,
// one per worker (see the executor scratch it mirrors).
type DeltaScratch struct {
	pos, neg   []*bitmap.Compressed
	cres, ctmp *bitmap.Compressed
}

// NewDeltaScratch returns an empty scratch.
func NewDeltaScratch() *DeltaScratch {
	return &DeltaScratch{cres: &bitmap.Compressed{}, ctmp: &bitmap.Compressed{}}
}

// Select evaluates the query's bitmap predicates within one delta
// segment: the segment's compressed bitmaps are split into verbatim and
// complemented operands exactly like the executor's compressed fast
// path, intersected with one run-skipping AndAll, and complements
// folded in via AndNot. It returns the compressed hit bitmap — valid
// until the next Select on the same scratch — or all=true when no
// predicate needs bitmap access (IOC1: every row matches by fragment
// confinement).
func (ix *DeltaIndex) Select(seg *DeltaSegment, q Query, sc *DeltaScratch) (res *bitmap.Compressed, all bool, err error) {
	pos, neg := sc.pos[:0], sc.neg[:0]
	defer func() { sc.pos, sc.neg = pos, neg }()
	anyBitmap := false
	for _, p := range q.Preds {
		if !ix.spec.NeedsBitmap(p) {
			continue
		}
		anyBitmap = true
		if ix.icfg[p.Dim].Kind == SimpleIndexes {
			di, ok := ix.pos[BitmapRef{Dim: p.Dim, Level: p.Level, Member: p.Member, Simple: true}]
			if !ok {
				return nil, false, fmt.Errorf("frag: delta bitmap %d.%d=%d not stored", p.Dim, p.Level, p.Member)
			}
			pos = append(pos, seg.bms[di])
			continue
		}
		layout := ix.layouts[p.Dim]
		skip := ix.skip[p.Dim]
		hi := layout.PrefixBits(p.Level)
		if hi <= skip {
			dim := &ix.star.Dims[p.Dim]
			return nil, false, fmt.Errorf("frag: predicate on %s.%s needs no bitmaps", dim.Name, dim.Levels[p.Level].Name)
		}
		pattern := layout.EncodePrefix(p.Level, p.Member)
		for b := skip; b < hi; b++ {
			di, ok := ix.pos[BitmapRef{Dim: p.Dim, Bit: b}]
			if !ok {
				return nil, false, fmt.Errorf("frag: delta bitmap bit %d of dim %d not stored", b, p.Dim)
			}
			if pattern>>uint(hi-1-b)&1 == 1 {
				pos = append(pos, seg.bms[di])
			} else {
				neg = append(neg, seg.bms[di])
			}
		}
	}
	if !anyBitmap {
		return nil, true, nil
	}
	if len(pos) > 0 {
		res = bitmap.AndAllInto(sc.cres, pos...)
	} else {
		res = bitmap.CompressedOnesInto(sc.cres, seg.rows)
	}
	sc.cres = res
	for _, n := range neg {
		res = bitmap.AndNotInto(sc.ctmp, res, n)
		sc.cres, sc.ctmp = res, sc.cres
	}
	return res, false, nil
}
