package frag

// IOClass is the paper's I/O overhead classification of a query under a
// given fragmentation (Section 4.5).
type IOClass int

const (
	// IOC1Opt: the query references exactly the fragmentation dimensions at
	// the fragmentation levels (or coarser on none) — one fragment, all rows
	// relevant, no bitmap access.
	IOC1Opt IOClass = iota
	// IOC1: clustered hits, no bitmap access. Query types Q1 and Q3
	// restricted to fragmentation dimensions.
	IOC1
	// IOC2: spread hits with bitmap I/O (query types Q2 and Q4, or
	// additional predicates on non-fragmentation dimensions).
	IOC2
	// IOC2NoSupp: worst case — the query references no fragmentation
	// dimension at all; every fragment and every referenced bitmap must be
	// processed.
	IOC2NoSupp
)

func (c IOClass) String() string {
	switch c {
	case IOC1Opt:
		return "IOC1-opt"
	case IOC1:
		return "IOC1"
	case IOC2:
		return "IOC2"
	default:
		return "IOC2-nosupp"
	}
}

// IOClassOf assigns the query to an I/O class per Section 4.5:
//
//	Q ∈ IOC1      iff Dim(Q) ⊆ Dim(F) and ∀q∈Q: hier(q) at or above hier(f_q)
//	Q ∈ IOC1-opt  iff Dim(Q) = Dim(F) and ∀q∈Q: hier(q) = hier(f_q)
//	Q ∈ IOC2-nosupp iff Dim(Q) ∩ Dim(F) = ∅
//	IOC2 otherwise.
func (s *Spec) IOClassOf(q Query) IOClass {
	if len(q.Preds) == 0 {
		// A selection-free full aggregation touches everything; treat it as
		// unsupported.
		return IOC2NoSupp
	}
	touchesFrag := false
	allAtOrAbove := true
	allExact := len(q.Preds) == len(s.attrs)
	for _, p := range q.Preds {
		ai := s.byDim[p.Dim]
		if ai == -1 {
			allAtOrAbove = false
			allExact = false
			continue
		}
		touchesFrag = true
		fl := s.attrs[ai].Level
		if p.Level > fl {
			allAtOrAbove = false
		}
		if p.Level != fl {
			allExact = false
		}
	}
	switch {
	case !touchesFrag:
		return IOC2NoSupp
	case allAtOrAbove && allExact:
		return IOC1Opt
	case allAtOrAbove:
		return IOC1
	default:
		return IOC2
	}
}
