package frag

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/schema"
)

func fMonthGroup(t testing.TB) (*schema.Star, *Spec) {
	s := schema.APB1()
	spec, err := Parse(s, "time::month, product::group")
	if err != nil {
		t.Fatal(err)
	}
	return s, spec
}

func TestFMonthGroupFragmentCount(t *testing.T) {
	_, spec := fMonthGroup(t)
	// Section 4.1: 24 * 480 = 11,520 fragments.
	if got := spec.NumFragments(); got != 11_520 {
		t.Fatalf("NumFragments = %d, want 11520", got)
	}
	if got := spec.String(); got != "{time::month, product::group}" {
		t.Fatalf("String = %q", got)
	}
}

func TestFinestAndCoarsestFragmentations(t *testing.T) {
	s := schema.APB1()
	// Section 4.4: finest option {time::month, product::code,
	// customer::store, channel::channel} yields ~7.5 billion fragments.
	finest := MustParse(s, "time::month, product::code, customer::store, channel::channel")
	if got := finest.NumFragments(); got != 7_464_960_000 {
		t.Fatalf("finest = %d, want 7,464,960,000", got)
	}
	// {time::quarter, product::group, customer::retailer, channel::channel}
	// = 8*480*120*15 ≈ 9 million minus: 6,912,000. The paper says "about 9
	// million"; the exact value depends on the unstated retailer cardinality.
	coarse := MustParse(s, "time::quarter, product::group, customer::retailer, channel::channel")
	n := coarse.NumFragments()
	if n < 5_000_000 || n > 12_000_000 {
		t.Fatalf("four-dim fragments = %d, want on the order of 9 million", n)
	}
}

func TestSpecValidation(t *testing.T) {
	s := schema.APB1()
	if _, err := New(s, nil); err == nil {
		t.Error("empty fragmentation accepted")
	}
	if _, err := New(s, []Attr{{Dim: 9, Level: 0}}); err == nil {
		t.Error("bad dim accepted")
	}
	if _, err := New(s, []Attr{{Dim: 0, Level: 9}}); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := New(s, []Attr{{Dim: 0, Level: 0}, {Dim: 0, Level: 1}}); err == nil {
		t.Error("duplicate dim accepted")
	}
	for _, text := range []string{"nope::month", "time::nope", "time", ""} {
		if _, err := Parse(s, text); err == nil {
			t.Errorf("Parse(%q) accepted", text)
		}
	}
}

func TestCoordIDRoundTrip(t *testing.T) {
	_, spec := fMonthGroup(t)
	f := func(id uint32) bool {
		i := int64(id) % spec.NumFragments()
		return spec.ID(spec.Coord(i)) == i
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCoordOfFactRow(t *testing.T) {
	s, spec := fMonthGroup(t)
	// Fact row: product code 14399 (group 479), store 0, channel 3, month 17.
	leaf := make([]int, len(s.Dims))
	leaf[s.DimIndex(schema.DimProduct)] = 14399
	leaf[s.DimIndex(schema.DimCustomer)] = 0
	leaf[s.DimIndex(schema.DimChannel)] = 3
	leaf[s.DimIndex(schema.DimTime)] = 17
	coord := spec.CoordOf(leaf)
	if coord[0] != 17 || coord[1] != 479 {
		t.Fatalf("coord = %v, want [17 479]", coord)
	}
	if id := spec.ID(coord); id != 17*480+479 {
		t.Fatalf("id = %d, want %d", id, 17*480+479)
	}
}

func TestIDPanicsOutOfRange(t *testing.T) {
	_, spec := fMonthGroup(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	spec.ID([]int{24, 0})
}

func TestFragmentSizes(t *testing.T) {
	_, spec := fMonthGroup(t)
	// 1,866,240,000 / 11,520 = 162,000 rows; 810 pages at 200/page.
	if got := spec.FragmentRows(); got != 162_000 {
		t.Fatalf("FragmentRows = %g, want 162000", got)
	}
	if got := spec.FragmentPages(); got != 810 {
		t.Fatalf("FragmentPages = %g, want 810", got)
	}
	// Table 6: bitmap fragment size 4.9 pages for FMonthGroup.
	bf := spec.BitmapFragmentPages()
	if bf < 4.85 || bf < 4.9 && bf > 5.0 {
		t.Fatalf("BitmapFragmentPages = %g, want ~4.9", bf)
	}
}

func TestTable6FragmentationParameters(t *testing.T) {
	s := schema.APB1()
	cases := []struct {
		text       string
		fragments  int64
		bfLo, bfHi float64
	}{
		{"time::month, product::group", 11_520, 4.85, 5.0},  // 4.9 pages
		{"time::month, product::class", 23_040, 2.4, 2.55},  // 2.5 pages
		{"time::month, product::code", 345_600, 0.15, 0.17}, // 0.16 pages
	}
	for _, c := range cases {
		spec := MustParse(s, c.text)
		if got := spec.NumFragments(); got != c.fragments {
			t.Errorf("%s: fragments = %d, want %d", c.text, got, c.fragments)
		}
		if bf := spec.BitmapFragmentPages(); bf < c.bfLo || bf > c.bfHi {
			t.Errorf("%s: bitmap fragment = %g pages, want [%g,%g]", c.text, bf, c.bfLo, c.bfHi)
		}
	}
}

func TestMaxFragmentsThreshold(t *testing.T) {
	s := schema.APB1()
	// Section 4.4: PrefetchGran = 4, PgSize = 4K → nmax = 14,238.
	if got := MaxFragments(s, 4); got != 14_238 {
		t.Fatalf("MaxFragments = %d, want 14238", got)
	}
	if got := MaxFragments(s, 1); got != 56_953 {
		t.Fatalf("MaxFragments(1) = %d, want 56953", got)
	}
}

func TestRelevantFragments(t *testing.T) {
	s, spec := fMonthGroup(t)
	p := s.DimIndex(schema.DimProduct)
	c := s.DimIndex(schema.DimCustomer)
	tm := s.DimIndex(schema.DimTime)
	prod := s.Dim(schema.DimProduct)
	timeD := s.Dim(schema.DimTime)

	month := timeD.LevelIndex(schema.LvlMonth)
	quarter := timeD.LevelIndex(schema.LvlQuarter)
	group := prod.LevelIndex(schema.LvlGroup)
	code := prod.LevelIndex(schema.LvlCode)
	store := s.Dim(schema.DimCustomer).LevelIndex(schema.LvlStore)

	cases := []struct {
		name  string
		q     Query
		count int64
		class QueryClass
	}{
		// Q1: 1MONTH1GROUP → exactly 1 fragment.
		{"1MONTH1GROUP", Query{Preds: []Pred{{tm, month, 3}, {p, group, 7}}}, 1, Q1},
		// Q1 subset: 1GROUP over all months → 24 fragments.
		{"1GROUP", Query{Preds: []Pred{{p, group, 7}}}, 24, Q1},
		// Q2: 1CODE1MONTH → 1 fragment.
		{"1CODE1MONTH", Query{Preds: []Pred{{p, code, 77}, {tm, month, 3}}}, 1, Q2},
		// Q2: 1CODE → 24 fragments.
		{"1CODE", Query{Preds: []Pred{{p, code, 77}}}, 24, Q2},
		// Q3: 1GROUP1QUARTER → 3 fragments.
		{"1GROUP1QUARTER", Query{Preds: []Pred{{p, group, 7}, {tm, quarter, 2}}}, 3, Q3},
		// Q3: 1QUARTER over all groups → 480*3 = 1440 fragments.
		{"1QUARTER", Query{Preds: []Pred{{tm, quarter, 2}}}, 1440, Q3},
		// Q4: 1CODE1QUARTER → 3 fragments.
		{"1CODE1QUARTER", Query{Preds: []Pred{{p, code, 77}, {tm, quarter, 2}}}, 3, Q4},
		// Unsupported: 1STORE → all 11,520 fragments.
		{"1STORE", Query{Preds: []Pred{{c, store, 5}}}, 11_520, Unsupported},
		// Q1 + extra non-frag attribute: 1GROUP1STORE → 24 fragments.
		{"1GROUP1STORE", Query{Preds: []Pred{{p, group, 7}, {c, store, 5}}}, 24, Q1},
	}
	for _, tc := range cases {
		if err := tc.q.Validate(s); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := spec.RelevantCount(tc.q); got != tc.count {
			t.Errorf("%s: relevant = %d, want %d", tc.name, got, tc.count)
		}
		if got := spec.Classify(tc.q); got != tc.class {
			t.Errorf("%s: class = %v, want %v", tc.name, got, tc.class)
		}
		if got := int64(len(spec.FragmentIDs(tc.q))); got != tc.count {
			t.Errorf("%s: len(FragmentIDs) = %d, want %d", tc.name, got, tc.count)
		}
	}
}

func TestQuarterEighthOfFragments(t *testing.T) {
	// Section 4.2 (Q3): one QUARTER over all GROUPs processes 480*3
	// fragments — one eighth of all fragments.
	s, spec := fMonthGroup(t)
	tm := s.DimIndex(schema.DimTime)
	quarter := s.Dim(schema.DimTime).LevelIndex(schema.LvlQuarter)
	q := Query{Preds: []Pred{{tm, quarter, 0}}}
	if got, want := spec.RelevantCount(q), spec.NumFragments()/8; got != want {
		t.Fatalf("relevant = %d, want %d", got, want)
	}
}

func TestNeedsBitmap(t *testing.T) {
	s, spec := fMonthGroup(t)
	p := s.DimIndex(schema.DimProduct)
	c := s.DimIndex(schema.DimCustomer)
	tm := s.DimIndex(schema.DimTime)
	prod := s.Dim(schema.DimProduct)

	group := prod.LevelIndex(schema.LvlGroup)
	family := prod.LevelIndex(schema.LvlFamily)
	code := prod.LevelIndex(schema.LvlCode)
	month := s.Dim(schema.DimTime).LevelIndex(schema.LvlMonth)
	year := s.Dim(schema.DimTime).LevelIndex(schema.LvlYear)
	store := s.Dim(schema.DimCustomer).LevelIndex(schema.LvlStore)

	cases := []struct {
		p    Pred
		want bool
	}{
		{Pred{p, group, 0}, false},  // fragmentation attribute itself
		{Pred{p, family, 0}, false}, // coarser level of frag dimension
		{Pred{p, code, 0}, true},    // finer level of frag dimension
		{Pred{tm, month, 0}, false},
		{Pred{tm, year, 0}, false},
		{Pred{c, store, 0}, true}, // non-fragmentation dimension
	}
	for i, tc := range cases {
		if got := spec.NeedsBitmap(tc.p); got != tc.want {
			t.Errorf("case %d: NeedsBitmap = %v, want %v", i, got, tc.want)
		}
	}
}

func TestFragmentSelectivity(t *testing.T) {
	s, spec := fMonthGroup(t)
	p := s.DimIndex(schema.DimProduct)
	c := s.DimIndex(schema.DimCustomer)
	code := s.Dim(schema.DimProduct).LevelIndex(schema.LvlCode)
	group := s.Dim(schema.DimProduct).LevelIndex(schema.LvlGroup)
	store := s.Dim(schema.DimCustomer).LevelIndex(schema.LvlStore)

	// Section 6.3: "Within a product group, the selectivity is 1/30 for a
	// certain product."
	if got := spec.FragmentSelectivity(Query{Preds: []Pred{{p, code, 0}}}); got != 1.0/30 {
		t.Errorf("code-in-fragment selectivity = %g, want 1/30", got)
	}
	// 1STORE: 1/1440 within each fragment.
	if got := spec.FragmentSelectivity(Query{Preds: []Pred{{c, store, 0}}}); got != 1.0/1440 {
		t.Errorf("store-in-fragment selectivity = %g, want 1/1440", got)
	}
	// Fragmentation attribute itself: all fragment rows relevant.
	if got := spec.FragmentSelectivity(Query{Preds: []Pred{{p, group, 0}}}); got != 1 {
		t.Errorf("group-in-fragment selectivity = %g, want 1", got)
	}
}

func TestQueryHitsAndSelectivity(t *testing.T) {
	s, _ := fMonthGroup(t)
	c := s.DimIndex(schema.DimCustomer)
	store := s.Dim(schema.DimCustomer).LevelIndex(schema.LvlStore)
	q := Query{Preds: []Pred{{c, store, 5}}}
	// 1STORE hits = N/1440 = 1,296,000.
	if got := q.Hits(s); got != 1_296_000 {
		t.Fatalf("hits = %g, want 1,296,000", got)
	}
}

func TestForEachFragmentOrderAndEarlyStop(t *testing.T) {
	s, spec := fMonthGroup(t)
	p := s.DimIndex(schema.DimProduct)
	tm := s.DimIndex(schema.DimTime)
	code := s.Dim(schema.DimProduct).LevelIndex(schema.LvlCode)
	quarter := s.Dim(schema.DimTime).LevelIndex(schema.LvlQuarter)

	// 1CODE1QUARTER: 3 fragments, one per month of the quarter, spaced 480
	// apart in allocation order (Section 4.6's gcd discussion).
	q := Query{Preds: []Pred{{p, code, 30}, {tm, quarter, 1}}}
	ids := spec.FragmentIDs(q)
	if len(ids) != 3 {
		t.Fatalf("ids = %v", ids)
	}
	g := 30 / 30 // code 30 belongs to group 1
	for i, id := range ids {
		want := int64((3+i)*480 + g)
		if id != want {
			t.Fatalf("ids[%d] = %d, want %d", i, id, want)
		}
	}
	// Early stop after first fragment.
	n := 0
	spec.ForEachFragment(q, func(int64, []int) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestRelevantConsistentWithRowMembership(t *testing.T) {
	// Property: for a random query and a random fact row, the row matches
	// the query only if the row's fragment is in the relevant set.
	s := schema.Tiny()
	spec := MustParse(s, "time::month, product::group")
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 2000; iter++ {
		// Random query: each dimension independently gets a predicate.
		var q Query
		for di := range s.Dims {
			if rng.Intn(2) == 0 {
				continue
			}
			li := rng.Intn(s.Dims[di].Depth())
			q.Preds = append(q.Preds, Pred{di, li, rng.Intn(s.Dims[di].Levels[li].Card)})
		}
		if len(q.Preds) == 0 {
			continue
		}
		// Random fact row.
		leaf := make([]int, len(s.Dims))
		for di := range s.Dims {
			leaf[di] = rng.Intn(s.Dims[di].LeafCard())
		}
		matches := true
		for _, p := range q.Preds {
			d := &s.Dims[p.Dim]
			if d.Ancestor(d.Leaf(), leaf[p.Dim], p.Level) != p.Member {
				matches = false
			}
		}
		if !matches {
			continue
		}
		id := spec.ID(spec.CoordOf(leaf))
		found := false
		spec.ForEachFragment(q, func(fid int64, _ []int) bool {
			if fid == id {
				found = true
				return false
			}
			return true
		})
		if !found {
			t.Fatalf("iter %d: matching row's fragment %d not in relevant set (query %v)", iter, id, q)
		}
	}
}

func TestQueryValidate(t *testing.T) {
	s := schema.APB1()
	bad := []Query{
		{Preds: []Pred{{Dim: -1, Level: 0, Member: 0}}},
		{Preds: []Pred{{Dim: 0, Level: 99, Member: 0}}},
		{Preds: []Pred{{Dim: 0, Level: 0, Member: 99}}},
		{Preds: []Pred{{Dim: 0, Level: 0, Member: 0}, {Dim: 0, Level: 1, Member: 0}}},
		{GroupBy: []LevelRef{{Dim: -1, Level: 0}}},
		{GroupBy: []LevelRef{{Dim: 0, Level: 99}}},
		{GroupBy: []LevelRef{{Dim: 0, Level: 0}, {Dim: 0, Level: 0}}},
	}
	for i, q := range bad {
		if err := q.Validate(s); err == nil {
			t.Errorf("bad query %d accepted", i)
		}
	}
	if _, err := ParseQuery(s, "customer::store=5"); err != nil {
		t.Errorf("ParseQuery: %v", err)
	}
	for _, text := range []string{"x::y=0", "customer::store", "customer::store=xx", "customer::nope=0", "customer::store=99999"} {
		if _, err := ParseQuery(s, text); err == nil {
			t.Errorf("ParseQuery(%q) accepted", text)
		}
	}
}
