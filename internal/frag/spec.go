// Package frag implements MDHF, the multi-dimensional hierarchical
// fragmentation of star schema fact tables proposed by Stöhr/Märtens/Rahm
// (VLDB 2000, Section 4): point fragmentations on one attribute per
// dimension, query-to-fragment confinement exploiting dimension hierarchies
// (query types Q1-Q4), bitmap elimination, and the fragmentation thresholds
// of Section 4.4.
package frag

import (
	"fmt"
	"strings"

	"repro/internal/schema"
)

// Attr identifies a fragmentation attribute: one hierarchy level of one
// dimension, both as indices into the star schema.
type Attr struct {
	Dim   int
	Level int
}

// Spec is a multi-dimensional (point) fragmentation F = {d1::l1, ..., dm::lm}.
// Each fact fragment holds all rows sharing one member value per
// fragmentation attribute. The declared attribute order defines the
// allocation order of fragments (Figure 2): the last attribute varies
// fastest.
type Spec struct {
	star  *schema.Star
	attrs []Attr
	radix []int // cardinality of each fragmentation attribute
	// byDim[d] is the index into attrs of dimension d's attribute, or -1.
	byDim []int
}

// New builds and validates a fragmentation spec. At most one attribute per
// dimension is allowed; at least one attribute is required.
func New(star *schema.Star, attrs []Attr) (*Spec, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("frag: empty fragmentation")
	}
	s := &Spec{star: star, attrs: attrs, byDim: make([]int, len(star.Dims))}
	for i := range s.byDim {
		s.byDim[i] = -1
	}
	for i, a := range attrs {
		if a.Dim < 0 || a.Dim >= len(star.Dims) {
			return nil, fmt.Errorf("frag: attribute %d references dimension %d of %d", i, a.Dim, len(star.Dims))
		}
		d := &star.Dims[a.Dim]
		if a.Level < 0 || a.Level >= d.Depth() {
			return nil, fmt.Errorf("frag: attribute %d references level %d of dimension %s (depth %d)", i, a.Level, d.Name, d.Depth())
		}
		if s.byDim[a.Dim] != -1 {
			return nil, fmt.Errorf("frag: dimension %s referenced twice", d.Name)
		}
		s.byDim[a.Dim] = i
		s.radix = append(s.radix, d.Levels[a.Level].Card)
	}
	return s, nil
}

// MustNew is New, panicking on error. For tests and literals.
func MustNew(star *schema.Star, attrs []Attr) *Spec {
	s, err := New(star, attrs)
	if err != nil {
		panic(err)
	}
	return s
}

// Parse builds a spec from the paper's notation, e.g.
// "time::month, product::group" (FMonthGroup).
func Parse(star *schema.Star, text string) (*Spec, error) {
	var attrs []Attr
	for _, part := range strings.Split(text, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		dl := strings.SplitN(part, "::", 2)
		if len(dl) != 2 {
			return nil, fmt.Errorf("frag: malformed attribute %q (want dim::level)", part)
		}
		di := star.DimIndex(strings.TrimSpace(dl[0]))
		if di < 0 {
			return nil, fmt.Errorf("frag: unknown dimension %q", dl[0])
		}
		li := star.Dims[di].LevelIndex(strings.TrimSpace(dl[1]))
		if li < 0 {
			return nil, fmt.Errorf("frag: unknown level %q of dimension %s", dl[1], star.Dims[di].Name)
		}
		attrs = append(attrs, Attr{Dim: di, Level: li})
	}
	return New(star, attrs)
}

// MustParse is Parse, panicking on error.
func MustParse(star *schema.Star, text string) *Spec {
	s, err := Parse(star, text)
	if err != nil {
		panic(err)
	}
	return s
}

// Star returns the schema the spec fragments.
func (s *Spec) Star() *schema.Star { return s.star }

// Attrs returns the fragmentation attributes in allocation order.
func (s *Spec) Attrs() []Attr { return s.attrs }

// Dimensionality returns the number of fragmentation dimensions m.
func (s *Spec) Dimensionality() int { return len(s.attrs) }

// AttrOfDim returns the index (within Attrs) of the fragmentation attribute
// on dimension d, or -1 if d is not a fragmentation dimension.
func (s *Spec) AttrOfDim(d int) int { return s.byDim[d] }

// HasDim reports whether dimension d is a fragmentation dimension.
func (s *Spec) HasDim(d int) bool { return s.byDim[d] != -1 }

// NumFragments returns n, the total number of fact fragments: the product
// of the fragmentation attributes' cardinalities.
func (s *Spec) NumFragments() int64 {
	n := int64(1)
	for _, r := range s.radix {
		n *= int64(r)
	}
	return n
}

// String renders the spec in the paper's notation.
func (s *Spec) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, a := range s.attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		d := &s.star.Dims[a.Dim]
		fmt.Fprintf(&b, "%s::%s", d.Name, d.Levels[a.Level].Name)
	}
	b.WriteByte('}')
	return b.String()
}

// CoordOf returns the fragment coordinate (one member per fragmentation
// attribute) of a fact row, given the row's leaf member per dimension.
func (s *Spec) CoordOf(leafMembers []int) []int {
	coord := make([]int, len(s.attrs))
	for i, a := range s.attrs {
		d := &s.star.Dims[a.Dim]
		coord[i] = d.Ancestor(d.Leaf(), leafMembers[a.Dim], a.Level)
	}
	return coord
}

// ID maps a fragment coordinate to its dense fragment id in allocation
// order (mixed radix, last attribute fastest).
func (s *Spec) ID(coord []int) int64 {
	var id int64
	for i, c := range coord {
		if c < 0 || c >= s.radix[i] {
			panic(fmt.Sprintf("frag: coordinate %d out of range 0..%d", c, s.radix[i]-1))
		}
		id = id*int64(s.radix[i]) + int64(c)
	}
	return id
}

// Coord maps a fragment id back to its coordinate.
func (s *Spec) Coord(id int64) []int {
	coord := make([]int, len(s.radix))
	for i := len(s.radix) - 1; i >= 0; i-- {
		coord[i] = int(id % int64(s.radix[i]))
		id /= int64(s.radix[i])
	}
	return coord
}

// FragmentRows returns the expected number of fact rows per fragment
// (uniform distribution, as assumed throughout the paper).
func (s *Spec) FragmentRows() float64 {
	return float64(s.star.N()) / float64(s.NumFragments())
}

// FragmentPages returns the expected number of fact pages per fragment.
func (s *Spec) FragmentPages() float64 {
	return s.FragmentRows() / float64(s.star.FactTuplesPerPage())
}

// BitmapFragmentPages returns the size of one bitmap fragment in pages
// (possibly fractional; Section 4.4). A bitmap stores 1 bit per fact tuple,
// so a fact fragment is 8*TupleSize times larger than its bitmap fragment.
func (s *Spec) BitmapFragmentPages() float64 {
	return s.FragmentRows() / 8 / float64(s.star.PageSize)
}

// MaxFragments returns the paper's nmax threshold (Section 4.4): the largest
// fragment count for which a bitmap fragment still spans at least
// prefetchGran pages: nmax = N / (8 * PgSize * PrefetchGran).
func MaxFragments(star *schema.Star, prefetchGran int) int64 {
	return star.N() / (8 * int64(star.PageSize) * int64(prefetchGran))
}
