package frag

import (
	"math/rand"
	"testing"

	"repro/internal/bitmap"
	"repro/internal/schema"
)

func tinyDelta(t testing.TB) (*schema.Star, *Spec, *DeltaIndex) {
	t.Helper()
	star := schema.Tiny()
	spec := MustParse(star, "time::month, product::group")
	ix, err := NewDeltaIndex(spec, APB1Indexes(star))
	if err != nil {
		t.Fatal(err)
	}
	return star, spec, ix
}

// randomLeavesFor returns a random row routed to the given fragment
// coordinate: leaf members drawn uniformly, then the fragmentation
// dimensions constrained to descendants of the coordinate's members.
func randomLeavesFor(rng *rand.Rand, star *schema.Star, spec *Spec, frag int64) []int32 {
	coord := spec.Coord(frag)
	leaves := make([]int32, len(star.Dims))
	for d := range star.Dims {
		dim := &star.Dims[d]
		lo, hi := 0, dim.LeafCard()
		if ai := spec.AttrOfDim(d); ai != -1 {
			lo, hi = dim.DescendantRange(spec.Attrs()[ai].Level, coord[ai], dim.Leaf())
		}
		leaves[d] = int32(lo + rng.Intn(hi-lo))
	}
	return leaves
}

func buildSegment(rng *rand.Rand, star *schema.Star, spec *Spec, ix *DeltaIndex, frag int64, rows int, seq uint64) *DeltaSegment {
	sb := ix.NewSegment(frag)
	for i := 0; i < rows; i++ {
		sb.Add(randomLeavesFor(rng, star, spec, frag), int64(rng.Intn(100)), int64(rng.Intn(1000)), int64(rng.Intn(500)))
	}
	return sb.Seal(seq)
}

// TestSegmentBitmapsMatchBatchEncoding checks that the incrementally
// built segment bitmaps equal the batch Compress encoding of the same
// bit pattern — the property the base/delta equivalence rests on.
func TestSegmentBitmapsMatchBatchEncoding(t *testing.T) {
	star, spec, ix := tinyDelta(t)
	rng := rand.New(rand.NewSource(11))
	for frag := int64(0); frag < spec.NumFragments(); frag += 3 {
		rows := 1 + rng.Intn(200)
		sb := ix.NewSegment(frag)
		var leavesOf [][]int32
		for i := 0; i < rows; i++ {
			l := randomLeavesFor(rng, star, spec, frag)
			leavesOf = append(leavesOf, l)
			sb.Add(l, 1, 2, 3)
		}
		seg := sb.Seal(1)
		for bi, desc := range ix.descs {
			want := bitmap.New(rows)
			for i, l := range leavesOf {
				if ix.bitOf(desc, l[desc.Dim]) {
					want.Set(i)
				}
			}
			wc := bitmap.Compress(want)
			got := seg.Bitmap(bi)
			if got.Len() != wc.Len() || len(got.Words()) != len(wc.Words()) {
				t.Fatalf("frag %d desc %d: encoding shape differs", frag, bi)
			}
			for wi := range wc.Words() {
				if got.Words()[wi] != wc.Words()[wi] {
					t.Fatalf("frag %d desc %d word %d: got %#x want %#x", frag, bi, wi, got.Words()[wi], wc.Words()[wi])
				}
			}
		}
	}
}

// TestSelectMatchesScan checks delta predicate selection against a
// direct per-row scan with the schema's Ancestor arithmetic.
func TestSelectMatchesScan(t *testing.T) {
	star, spec, ix := tinyDelta(t)
	rng := rand.New(rand.NewSource(12))
	sc := NewDeltaScratch()
	valid := 0
	for trial := 0; valid < 200 && trial < 5000; trial++ {
		frag := rng.Int63n(spec.NumFragments())
		// Random query: up to one predicate per dimension.
		var q Query
		for d := range star.Dims {
			if rng.Intn(2) == 0 {
				continue
			}
			dim := &star.Dims[d]
			lvl := rng.Intn(dim.Depth())
			q.Preds = append(q.Preds, Pred{Dim: d, Level: lvl, Member: rng.Intn(dim.Levels[lvl].Card)})
		}
		// Select assumes fragment confinement, exactly like the executor:
		// only fragments in FragmentIDs(q) are ever selected against.
		relevant := false
		for _, id := range spec.FragmentIDs(q) {
			if id == frag {
				relevant = true
				break
			}
		}
		if !relevant {
			continue
		}
		valid++
		seg := buildSegment(rng, star, spec, ix, frag, 1+rng.Intn(150), 1)
		res, all, err := ix.Select(seg, q, sc)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]bool, seg.Rows())
		for i := range want {
			want[i] = true
			for _, p := range q.Preds {
				if !spec.NeedsBitmap(p) {
					continue // confinement: no bitmap, no per-row test
				}
				dim := &star.Dims[p.Dim]
				if dim.Ancestor(dim.Leaf(), int(seg.Leaves(p.Dim)[i]), p.Level) != p.Member {
					want[i] = false
					break
				}
			}
		}
		got := make([]bool, seg.Rows())
		if all {
			for i := range got {
				got[i] = true
			}
		} else {
			res.ForEach(func(i int) { got[i] = true })
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d row %d: got %v want %v (query %+v)", trial, i, got[i], want[i], q)
			}
		}
	}
}

// TestExtendSegmentEquivalence checks that sealing an extension of a
// sealed segment yields the same content and bitmap encodings as one
// continuous build — and leaves the original segment untouched.
func TestExtendSegmentEquivalence(t *testing.T) {
	star, spec, ix := tinyDelta(t)
	rng := rand.New(rand.NewSource(13))
	frag := int64(5)
	var rows [][]int32
	for i := 0; i < 137; i++ {
		rows = append(rows, randomLeavesFor(rng, star, spec, frag))
	}
	oneShot := ix.NewSegment(frag)
	for i, l := range rows {
		oneShot.Add(l, int64(i), int64(2*i), int64(3*i))
	}
	want := oneShot.Seal(9)

	for _, split := range []int{0, 1, 50, 136, 137} {
		if split == 0 {
			continue // ExtendSegment needs a sealed prefix
		}
		sb := ix.NewSegment(frag)
		for i := 0; i < split; i++ {
			sb.Add(rows[i], int64(i), int64(2*i), int64(3*i))
		}
		first := sb.Seal(1)
		firstRows := first.Rows()
		firstWords := append([]uint64(nil), first.Bitmap(0).Words()...)
		ext := ix.ExtendSegment(first)
		for i := split; i < len(rows); i++ {
			ext.Add(rows[i], int64(i), int64(2*i), int64(3*i))
		}
		got := ext.Seal(9)
		if got.Rows() != want.Rows() {
			t.Fatalf("split %d: rows %d want %d", split, got.Rows(), want.Rows())
		}
		for bi := range ix.descs {
			gw, ww := got.Bitmap(bi).Words(), want.Bitmap(bi).Words()
			if len(gw) != len(ww) {
				t.Fatalf("split %d desc %d: %d words want %d", split, bi, len(gw), len(ww))
			}
			for wi := range ww {
				if gw[wi] != ww[wi] {
					t.Fatalf("split %d desc %d word %d differs", split, bi, wi)
				}
			}
		}
		for i := range rows {
			if got.Units()[i] != int64(i) || got.Dollars()[i] != int64(2*i) || got.Costs()[i] != int64(3*i) {
				t.Fatalf("split %d row %d: measures differ", split, i)
			}
		}
		// The sealed prefix must be unchanged.
		if first.Rows() != firstRows || len(first.Bitmap(0).Words()) != len(firstWords) {
			t.Fatalf("split %d: extension mutated the sealed segment", split)
		}
	}
}

// TestDeltaSetCopyOnWrite checks snapshot isolation of With,
// WithTailReplaced and After.
func TestDeltaSetCopyOnWrite(t *testing.T) {
	star, spec, ix := tinyDelta(t)
	rng := rand.New(rand.NewSource(14))
	var s *DeltaSet
	if s.Rows() != 0 || s.Segments() != 0 || s.MaxSeq() != 0 || s.Of(0) != nil || s.Tail(0) != nil {
		t.Fatal("nil set is not empty")
	}
	segA := buildSegment(rng, star, spec, ix, 3, 10, 1)
	segB := buildSegment(rng, star, spec, ix, 3, 5, 2)
	segC := buildSegment(rng, star, spec, ix, 7, 4, 3)
	s1 := s.With(segA)
	s2 := s1.With(segB).With(segC)
	if s1.Rows() != 10 || s1.Segments() != 1 || s1.MaxSeq() != 1 {
		t.Fatalf("s1 = %d rows %d segs", s1.Rows(), s1.Segments())
	}
	if s2.Rows() != 19 || s2.Segments() != 3 || s2.MaxSeq() != 3 || s2.Fragments() != 2 {
		t.Fatalf("s2 = %d rows %d segs %d frags", s2.Rows(), s2.Segments(), s2.Fragments())
	}
	if len(s1.Of(3)) != 1 {
		t.Fatal("s1 sees s2's appends")
	}
	// Replace fragment 3's tail with an extension.
	ext := ix.ExtendSegment(segB)
	ext.Add(randomLeavesFor(rng, star, spec, 3), 1, 1, 1)
	segB2 := ext.Seal(4)
	s3 := s2.WithTailReplaced(segB2)
	if s3.Rows() != 20 || s3.Segments() != 3 {
		t.Fatalf("s3 = %d rows %d segs", s3.Rows(), s3.Segments())
	}
	if s2.Tail(3) != segB || s3.Tail(3) != segB2 {
		t.Fatal("tail replacement leaked across snapshots")
	}
	// After(2): only segC (seq 3) and segB2 (seq 4) survive.
	s4 := s3.After(2)
	if s4.Segments() != 2 || s4.Rows() != int64(segC.Rows()+segB2.Rows()) || s4.MaxSeq() != 4 {
		t.Fatalf("After(2): %d segs %d rows maxSeq %d", s4.Segments(), s4.Rows(), s4.MaxSeq())
	}
	if s3.After(4) != nil {
		t.Fatal("After(maxSeq) should be nil")
	}
	// Deterministic iteration order: ascending fragment, then seal order.
	var order []uint64
	s3.ForEachSegment(func(seg *DeltaSegment) { order = append(order, seg.Seq()) })
	wantOrder := []uint64{1, 4, 3}
	for i := range wantOrder {
		if order[i] != wantOrder[i] {
			t.Fatalf("iteration order %v, want %v", order, wantOrder)
		}
	}
}
