package frag

import "repro/internal/schema"

// Enumerate returns every possible point fragmentation of the star schema:
// each non-empty subset of dimensions with one hierarchy level chosen per
// selected dimension. For the APB-1 schema this yields the 167 options of
// Table 2 (12 one-, 47 two-, 72 three- and 36 four-dimensional).
func Enumerate(star *schema.Star) []*Spec {
	var out []*Spec
	var attrs []Attr
	var rec func(dim int)
	rec = func(dim int) {
		if dim == len(star.Dims) {
			if len(attrs) > 0 {
				out = append(out, MustNew(star, append([]Attr(nil), attrs...)))
			}
			return
		}
		// Skip this dimension.
		rec(dim + 1)
		// Or fragment on one of its levels.
		for li := 0; li < star.Dims[dim].Depth(); li++ {
			attrs = append(attrs, Attr{Dim: dim, Level: li})
			rec(dim + 1)
			attrs = attrs[:len(attrs)-1]
		}
	}
	rec(0)
	return out
}

// Thresholds are the administrator limits of Section 4.7's first guideline.
type Thresholds struct {
	// MinBitmapFragPages is the minimal bitmap fragment size in pages
	// (threshold i). Zero disables the check.
	MinBitmapFragPages float64
	// MaxFragments is the maximal number of fragments to administer
	// (threshold ii). Zero disables the check.
	MaxFragments int64
	// MaxBitmaps is the maximal number of bitmaps to materialise
	// (threshold iii). Zero disables the check.
	MaxBitmaps int
	// MinFragments optionally requires at least this many fragments (the
	// paper: "there should be at least 1 fragment per fact table disk").
	MinFragments int64
}

// Admissible reports whether the spec passes all enabled thresholds given
// the index configuration (cfg may be nil if MaxBitmaps is zero).
func (t Thresholds) Admissible(s *Spec, cfg IndexConfig) bool {
	if t.MinBitmapFragPages > 0 && s.BitmapFragmentPages() < t.MinBitmapFragPages {
		return false
	}
	if t.MaxFragments > 0 && s.NumFragments() > t.MaxFragments {
		return false
	}
	if t.MinFragments > 0 && s.NumFragments() < t.MinFragments {
		return false
	}
	if t.MaxBitmaps > 0 && s.SurvivingBitmaps(cfg) > t.MaxBitmaps {
		return false
	}
	return true
}

// Filter returns the subset of specs passing the thresholds.
func (t Thresholds) Filter(specs []*Spec, cfg IndexConfig) []*Spec {
	var out []*Spec
	for _, s := range specs {
		if t.Admissible(s, cfg) {
			out = append(out, s)
		}
	}
	return out
}
