package frag

import (
	"repro/internal/bitmap"
	"repro/internal/schema"
)

// IndexKind selects the bitmap index implementation for one dimension.
type IndexKind int

const (
	// SimpleIndexes: one simple bitmap index per hierarchy level (one
	// bitmap per member) — the paper's choice for TIME and CHANNEL.
	SimpleIndexes IndexKind = iota
	// EncodedIndex: one hierarchically encoded bitmap join index for the
	// whole dimension — the paper's choice for PRODUCT and CUSTOMER.
	EncodedIndex
)

// IndexSpec configures the bitmap index of one dimension.
type IndexSpec struct {
	Kind IndexKind
	// PadBits optionally widens the encoded bit fields per level (only for
	// EncodedIndex); see bitmap.NewLayout.
	PadBits []int
}

// IndexConfig assigns an IndexSpec to every dimension of a star schema, in
// dimension order.
type IndexConfig []IndexSpec

// APB1Indexes returns the paper's index configuration for the APB-1 schema:
// encoded indices on PRODUCT (15 bits) and CUSTOMER (12 bits), simple
// indices on CHANNEL and TIME — 76 bitmaps in total (Section 3.2).
func APB1Indexes(star *schema.Star) IndexConfig {
	cfg := make(IndexConfig, len(star.Dims))
	for i := range star.Dims {
		switch star.Dims[i].Name {
		case schema.DimProduct, schema.DimCustomer:
			cfg[i] = IndexSpec{Kind: EncodedIndex}
		default:
			cfg[i] = IndexSpec{Kind: SimpleIndexes}
		}
	}
	return cfg
}

// bitsOfDim returns the total number of bitmaps index cfg materialises for
// dimension d with no fragmentation.
func bitsOfDim(d *schema.Dimension, spec IndexSpec) int {
	switch spec.Kind {
	case EncodedIndex:
		return bitmap.NewLayout(d, spec.PadBits).TotalBits()
	default:
		total := 0
		for _, l := range d.Levels {
			total += l.Card
		}
		return total
	}
}

// survivingOfDim returns how many bitmaps remain for dimension d when the
// fragmentation fixes level fragLevel (Section 4.2): bitmaps for the
// fragmentation attribute and all coarser levels carry no information
// within a fragment and are eliminated. fragLevel == -1 means the dimension
// is not fragmented (all bitmaps survive).
func survivingOfDim(d *schema.Dimension, spec IndexSpec, fragLevel int) int {
	if fragLevel < 0 {
		return bitsOfDim(d, spec)
	}
	switch spec.Kind {
	case EncodedIndex:
		return bitmap.NewLayout(d, spec.PadBits).SuffixBits(fragLevel)
	default:
		total := 0
		for li := fragLevel + 1; li < d.Depth(); li++ {
			total += d.Levels[li].Card
		}
		return total
	}
}

// MaxBitmaps returns the number of bitmaps the index configuration
// materialises without any fragmentation (76 for APB-1).
func MaxBitmaps(star *schema.Star, cfg IndexConfig) int {
	total := 0
	for i := range star.Dims {
		total += bitsOfDim(&star.Dims[i], cfg[i])
	}
	return total
}

// SurvivingBitmaps returns the number of bitmaps that still must be
// materialised under fragmentation s (32 for FMonthGroup on APB-1).
func (s *Spec) SurvivingBitmaps(cfg IndexConfig) int {
	total := 0
	for di := range s.star.Dims {
		fl := -1
		if ai := s.byDim[di]; ai != -1 {
			fl = s.attrs[ai].Level
		}
		total += survivingOfDim(&s.star.Dims[di], cfg[di], fl)
	}
	return total
}

// BitmapsReadForPred returns how many bitmap fragments per fact fragment a
// predicate evaluation reads under this fragmentation, given the index
// configuration. Predicates that need no bitmap (Section 4.2) read zero.
// For encoded indices only the non-eliminated prefix portion is read; for
// simple indices exactly one bitmap.
func (s *Spec) BitmapsReadForPred(cfg IndexConfig, p Pred) int {
	if !s.NeedsBitmap(p) {
		return 0
	}
	d := &s.star.Dims[p.Dim]
	spec := cfg[p.Dim]
	switch spec.Kind {
	case EncodedIndex:
		layout := bitmap.NewLayout(d, spec.PadBits)
		fragLevel := -1
		if ai := s.byDim[p.Dim]; ai != -1 {
			fragLevel = s.attrs[ai].Level
		}
		if fragLevel < 0 {
			return layout.PrefixBits(p.Level)
		}
		// Within a fragment the prefix above fragLevel is constant; only the
		// bits between fragLevel (exclusive) and p.Level (inclusive) are read.
		return layout.PrefixBits(p.Level) - layout.PrefixBits(fragLevel)
	default:
		return 1
	}
}

// BitmapsReadForQuery sums BitmapsReadForPred over the query.
func (s *Spec) BitmapsReadForQuery(cfg IndexConfig, q Query) int {
	total := 0
	for _, p := range q.Preds {
		total += s.BitmapsReadForPred(cfg, p)
	}
	return total
}
