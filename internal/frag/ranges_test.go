package frag

import (
	"math/rand"
	"testing"

	"repro/internal/schema"
)

// monthGroupRanges fragments time::month into 6 ranges of 4 months and
// product::group into 48 ranges of 10 groups.
func monthGroupRanges(t testing.TB) (*schema.Star, *RangeSpec) {
	t.Helper()
	s := schema.APB1()
	tm := s.DimIndex(schema.DimTime)
	pd := s.DimIndex(schema.DimProduct)
	month := s.Dims[tm].LevelIndex(schema.LvlMonth)
	group := s.Dims[pd].LevelIndex(schema.LvlGroup)
	spec, err := NewRange(s, []RangeAttr{
		UniformRanges(s, tm, month, 6),
		UniformRanges(s, pd, group, 48),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, spec
}

func TestRangeSpecBasics(t *testing.T) {
	_, spec := monthGroupRanges(t)
	if got := spec.NumFragments(); got != 6*48 {
		t.Fatalf("NumFragments = %d, want 288", got)
	}
	if got := spec.String(); got != "{time::month/6, product::group/48}" {
		t.Fatalf("String = %q", got)
	}
}

func TestRangeSpecValidation(t *testing.T) {
	s := schema.APB1()
	if _, err := NewRange(s, nil); err == nil {
		t.Error("empty accepted")
	}
	if _, err := NewRange(s, []RangeAttr{{Dim: 9, Level: 0}}); err == nil {
		t.Error("bad dim accepted")
	}
	if _, err := NewRange(s, []RangeAttr{{Dim: 0, Level: 9}}); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := NewRange(s, []RangeAttr{{Dim: 0, Level: 0}, {Dim: 0, Level: 1}}); err == nil {
		t.Error("dup dim accepted")
	}
	// Non-increasing bounds.
	if _, err := NewRange(s, []RangeAttr{{Dim: 0, Level: 3, Bounds: []int{10, 10}}}); err == nil {
		t.Error("non-increasing bounds accepted")
	}
	if _, err := NewRange(s, []RangeAttr{{Dim: 0, Level: 3, Bounds: []int{480}}}); err == nil {
		t.Error("out-of-domain bound accepted")
	}
}

func TestUniformRangesCoverDomain(t *testing.T) {
	s := schema.APB1()
	pd := s.DimIndex(schema.DimProduct)
	group := s.Dims[pd].LevelIndex(schema.LvlGroup)
	for _, n := range []int{1, 2, 7, 48, 480, 1000} {
		a := UniformRanges(s, pd, group, n)
		card := 480
		// Every member maps to exactly one range, spans tile the domain.
		prevHi := 0
		for r := 0; r < a.numRanges(); r++ {
			lo, hi := a.rangeSpan(r, card)
			if lo != prevHi || hi <= lo {
				t.Fatalf("n=%d: range %d = [%d,%d), prev hi %d", n, r, lo, hi, prevHi)
			}
			prevHi = hi
			for m := lo; m < hi; m++ {
				if a.rangeOf(m) != r {
					t.Fatalf("n=%d: member %d in range %d, want %d", n, m, a.rangeOf(m), r)
				}
			}
		}
		if prevHi != card {
			t.Fatalf("n=%d: ranges end at %d, want %d", n, prevHi, card)
		}
	}
}

func TestRangeRelevantConfinement(t *testing.T) {
	s, spec := monthGroupRanges(t)
	pd := s.DimIndex(schema.DimProduct)
	tm := s.DimIndex(schema.DimTime)
	cd := s.DimIndex(schema.DimCustomer)
	month := s.Dims[tm].LevelIndex(schema.LvlMonth)
	quarter := s.Dims[tm].LevelIndex(schema.LvlQuarter)
	year := s.Dims[tm].LevelIndex(schema.LvlYear)
	group := s.Dims[pd].LevelIndex(schema.LvlGroup)
	code := s.Dims[pd].LevelIndex(schema.LvlCode)
	store := s.Dims[cd].LevelIndex(schema.LvlStore)

	cases := []struct {
		name  string
		q     Query
		count int64
	}{
		// One month + one group -> exactly 1 fragment.
		{"1MONTH1GROUP", Query{Preds: []Pred{{tm, month, 3}, {pd, group, 7}}}, 1},
		// One code -> its group's range, all 6 month ranges.
		{"1CODE", Query{Preds: []Pred{{pd, code, 77}}}, 6},
		// One quarter = 3 months: month ranges are 4 months wide, so a
		// quarter spans 1 or 2 ranges; quarter 0 = months 0-2 -> range 0.
		{"1QUARTER0", Query{Preds: []Pred{{tm, quarter, 0}}}, 48},
		// Quarter 1 = months 3-5 -> ranges 0 and 1 -> 2*48.
		{"1QUARTER1", Query{Preds: []Pred{{tm, quarter, 1}}}, 96},
		// One year = 12 months = exactly 3 ranges.
		{"1YEAR", Query{Preds: []Pred{{tm, year, 0}}}, 3 * 48},
		// Unsupported dimension -> everything.
		{"1STORE", Query{Preds: []Pred{{cd, store, 5}}}, 288},
	}
	for _, tc := range cases {
		if got := spec.RelevantCount(tc.q); got != tc.count {
			t.Errorf("%s: relevant = %d, want %d", tc.name, got, tc.count)
		}
	}
}

func TestRangeNeedsBitmap(t *testing.T) {
	s, spec := monthGroupRanges(t)
	pd := s.DimIndex(schema.DimProduct)
	tm := s.DimIndex(schema.DimTime)
	cd := s.DimIndex(schema.DimCustomer)
	month := s.Dims[tm].LevelIndex(schema.LvlMonth)
	quarter := s.Dims[tm].LevelIndex(schema.LvlQuarter)
	year := s.Dims[tm].LevelIndex(schema.LvlYear)
	group := s.Dims[pd].LevelIndex(schema.LvlGroup)
	code := s.Dims[pd].LevelIndex(schema.LvlCode)
	store := s.Dims[cd].LevelIndex(schema.LvlStore)

	cases := []struct {
		name string
		p    Pred
		want bool
	}{
		// Month ranges are 4 wide: a single month is a strict subset.
		{"month", Pred{tm, month, 3}, true},
		// A quarter (3 months) never aligns with 4-month ranges.
		{"quarter", Pred{tm, quarter, 1}, true},
		// A year (12 months) aligns with exactly 3 ranges of 4.
		{"year", Pred{tm, year, 0}, false},
		// Group ranges are 10 wide: single group needs bitmaps.
		{"group", Pred{pd, group, 7}, true},
		// Codes are finer still.
		{"code", Pred{pd, code, 7}, true},
		// Non-fragmentation dimension.
		{"store", Pred{cd, store, 7}, true},
	}
	for _, tc := range cases {
		if got := spec.NeedsBitmap(tc.p); got != tc.want {
			t.Errorf("%s: NeedsBitmap = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestRangeRowMembershipConsistent(t *testing.T) {
	// Property: a row matching the query lies in a relevant fragment.
	s := schema.Tiny()
	tm := s.DimIndex(schema.DimTime)
	pd := s.DimIndex(schema.DimProduct)
	spec := MustNewRange(s, []RangeAttr{
		UniformRanges(s, tm, s.Dims[tm].LevelIndex(schema.LvlMonth), 2),
		UniformRanges(s, pd, s.Dims[pd].LevelIndex(schema.LvlClass), 3),
	})
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 2000; iter++ {
		var q Query
		for di := range s.Dims {
			if rng.Intn(2) == 0 {
				continue
			}
			li := rng.Intn(s.Dims[di].Depth())
			q.Preds = append(q.Preds, Pred{di, li, rng.Intn(s.Dims[di].Levels[li].Card)})
		}
		if len(q.Preds) == 0 {
			continue
		}
		leaf := make([]int, len(s.Dims))
		for di := range s.Dims {
			leaf[di] = rng.Intn(s.Dims[di].LeafCard())
		}
		matches := true
		for _, p := range q.Preds {
			d := &s.Dims[p.Dim]
			if d.Ancestor(d.Leaf(), leaf[p.Dim], p.Level) != p.Member {
				matches = false
			}
		}
		if !matches {
			continue
		}
		coord := spec.CoordOf(leaf)
		region := spec.Relevant(q)
		for i := range coord {
			if coord[i] < region.Lo[i] || coord[i] >= region.Hi[i] {
				t.Fatalf("iter %d: matching row coord %v outside region %v", iter, coord, region)
			}
		}
	}
}

func TestRangeFragmentRows(t *testing.T) {
	s, spec := monthGroupRanges(t)
	// All fragments equal-sized here: N / 288.
	want := float64(s.N()) / 288
	rows := spec.FragmentRows([]int{0, 0})
	if rows != want {
		t.Fatalf("FragmentRows = %g, want %g", rows, want)
	}
}

func TestRangePointEquivalence(t *testing.T) {
	s := schema.APB1()
	tm := s.DimIndex(schema.DimTime)
	pd := s.DimIndex(schema.DimProduct)
	month := s.Dims[tm].LevelIndex(schema.LvlMonth)
	group := s.Dims[pd].LevelIndex(schema.LvlGroup)
	rs := MustNewRange(s, []RangeAttr{
		UniformRanges(s, tm, month, 24),
		UniformRanges(s, pd, group, 480),
	})
	point := rs.Point()
	if point == nil {
		t.Fatal("single-member ranges not recognised as point fragmentation")
	}
	if point.NumFragments() != rs.NumFragments() {
		t.Fatalf("fragment counts differ: %d vs %d", point.NumFragments(), rs.NumFragments())
	}
	// Relevant counts agree for a sample of queries.
	g := Query{Preds: []Pred{{pd, group, 42}}}
	if rs.RelevantCount(g) != point.RelevantCount(g) {
		t.Fatalf("relevant differ: %d vs %d", rs.RelevantCount(g), point.RelevantCount(g))
	}
	// Non-point spec yields nil.
	_, coarse := monthGroupRanges(t)
	if coarse.Point() != nil {
		t.Fatal("coarse ranges claimed point equivalence")
	}
	// ID round trip sanity.
	if id := rs.ID([]int{3, 42}); id != 3*480+42 {
		t.Fatalf("ID = %d", id)
	}
}

func TestRangeIDPanics(t *testing.T) {
	_, spec := monthGroupRanges(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	spec.ID([]int{6, 0})
}
