package frag

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/schema"
)

// RangeAttr is one fragmentation attribute of a general (non-point) MDHF
// fragmentation: a hierarchy level plus a partitioning of its member
// domain into contiguous ranges (Section 4.1: "for each fragmentation
// attribute a range partitioning can be specified consisting of disjoint
// value ranges; the union must cover the whole domain").
type RangeAttr struct {
	Dim   int
	Level int
	// Bounds are the exclusive upper bounds of each range except the last:
	// range r covers members [Bounds[r-1], Bounds[r]) with Bounds[-1] = 0
	// and an implicit final bound at the level's cardinality. Must be
	// strictly increasing and within (0, card).
	Bounds []int
}

// numRanges returns the number of ranges of the attribute.
func (a RangeAttr) numRanges() int { return len(a.Bounds) + 1 }

// rangeOf returns the range index containing member m.
func (a RangeAttr) rangeOf(m int) int {
	return sort.SearchInts(a.Bounds, m+1)
}

// rangeSpan returns the half-open member interval of range r given the
// level cardinality.
func (a RangeAttr) rangeSpan(r, card int) (lo, hi int) {
	lo = 0
	if r > 0 {
		lo = a.Bounds[r-1]
	}
	hi = card
	if r < len(a.Bounds) {
		hi = a.Bounds[r]
	}
	return lo, hi
}

// RangeSpec is a general multi-dimensional hierarchical range
// fragmentation. A fragment holds all fact rows whose member at each
// fragmentation attribute falls into one particular range. A point
// fragmentation is the special case of one-member ranges (use Spec for
// that; it is simpler and cheaper).
type RangeSpec struct {
	star  *schema.Star
	attrs []RangeAttr
	radix []int // ranges per attribute
	byDim []int
}

// NewRange builds and validates a range fragmentation.
func NewRange(star *schema.Star, attrs []RangeAttr) (*RangeSpec, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("frag: empty fragmentation")
	}
	s := &RangeSpec{star: star, attrs: attrs, byDim: make([]int, len(star.Dims))}
	for i := range s.byDim {
		s.byDim[i] = -1
	}
	for i, a := range attrs {
		if a.Dim < 0 || a.Dim >= len(star.Dims) {
			return nil, fmt.Errorf("frag: attribute %d references dimension %d of %d", i, a.Dim, len(star.Dims))
		}
		d := &star.Dims[a.Dim]
		if a.Level < 0 || a.Level >= d.Depth() {
			return nil, fmt.Errorf("frag: attribute %d references level %d of %s", i, a.Level, d.Name)
		}
		if s.byDim[a.Dim] != -1 {
			return nil, fmt.Errorf("frag: dimension %s referenced twice", d.Name)
		}
		card := d.Levels[a.Level].Card
		prev := 0
		for _, b := range a.Bounds {
			if b <= prev || b >= card {
				return nil, fmt.Errorf("frag: bounds of %s::%s must be strictly increasing within (0,%d)", d.Name, d.Levels[a.Level].Name, card)
			}
			prev = b
		}
		s.byDim[a.Dim] = i
		s.radix = append(s.radix, a.numRanges())
	}
	return s, nil
}

// MustNewRange is NewRange, panicking on error.
func MustNewRange(star *schema.Star, attrs []RangeAttr) *RangeSpec {
	s, err := NewRange(star, attrs)
	if err != nil {
		panic(err)
	}
	return s
}

// UniformRanges builds a RangeAttr splitting the level's domain into n
// near-equal contiguous ranges.
func UniformRanges(star *schema.Star, dim, level, n int) RangeAttr {
	card := star.Dims[dim].Levels[level].Card
	if n < 1 {
		n = 1
	}
	if n > card {
		n = card
	}
	a := RangeAttr{Dim: dim, Level: level}
	for r := 1; r < n; r++ {
		a.Bounds = append(a.Bounds, r*card/n)
	}
	return a
}

// Star returns the fragmented schema.
func (s *RangeSpec) Star() *schema.Star { return s.star }

// NumFragments returns the total number of fragments.
func (s *RangeSpec) NumFragments() int64 {
	n := int64(1)
	for _, r := range s.radix {
		n *= int64(r)
	}
	return n
}

// String renders the spec with its range counts.
func (s *RangeSpec) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, a := range s.attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		d := &s.star.Dims[a.Dim]
		fmt.Fprintf(&b, "%s::%s/%d", d.Name, d.Levels[a.Level].Name, a.numRanges())
	}
	b.WriteByte('}')
	return b.String()
}

// CoordOf returns the fragment coordinate of a fact row given its leaf
// members.
func (s *RangeSpec) CoordOf(leafMembers []int) []int {
	coord := make([]int, len(s.attrs))
	for i, a := range s.attrs {
		d := &s.star.Dims[a.Dim]
		m := d.Ancestor(d.Leaf(), leafMembers[a.Dim], a.Level)
		coord[i] = a.rangeOf(m)
	}
	return coord
}

// ID maps a coordinate to a dense fragment id (mixed radix).
func (s *RangeSpec) ID(coord []int) int64 {
	var id int64
	for i, c := range coord {
		if c < 0 || c >= s.radix[i] {
			panic(fmt.Sprintf("frag: range coordinate %d out of 0..%d", c, s.radix[i]-1))
		}
		id = id*int64(s.radix[i]) + int64(c)
	}
	return id
}

// Relevant computes the per-attribute range intervals a query is confined
// to, generalising the point-fragmentation logic of Section 4.2: a
// predicate at or below the fragmentation level pins a single range (the
// one containing its ancestor); a coarser predicate covers the ranges
// intersecting its descendant span; an absent dimension covers all ranges.
func (s *RangeSpec) Relevant(q Query) Region {
	r := Region{Lo: make([]int, len(s.attrs)), Hi: make([]int, len(s.attrs))}
	for i, a := range s.attrs {
		d := &s.star.Dims[a.Dim]
		p, ok := q.PredOnDim(a.Dim)
		switch {
		case !ok:
			r.Lo[i], r.Hi[i] = 0, s.radix[i]
		case p.Level >= a.Level:
			m := d.Ancestor(p.Level, p.Member, a.Level)
			rr := a.rangeOf(m)
			r.Lo[i], r.Hi[i] = rr, rr+1
		default:
			lo, hi := d.DescendantRange(p.Level, p.Member, a.Level)
			r.Lo[i] = a.rangeOf(lo)
			r.Hi[i] = a.rangeOf(hi-1) + 1
		}
	}
	return r
}

// RelevantCount returns the number of fragments the query touches.
func (s *RangeSpec) RelevantCount(q Query) int64 {
	return s.Relevant(q).Count()
}

// FragmentRows returns the expected rows of fragment coord under
// uniformity: proportional to the product of its range widths.
func (s *RangeSpec) FragmentRows(coord []int) float64 {
	frac := 1.0
	for i, a := range s.attrs {
		card := s.star.Dims[a.Dim].Levels[a.Level].Card
		lo, hi := a.rangeSpan(coord[i], card)
		frac *= float64(hi-lo) / float64(card)
	}
	return frac * float64(s.star.N())
}

// NeedsBitmap reports whether evaluating p requires bitmap access. Unlike
// point fragmentations, a predicate at the fragmentation level still needs
// a bitmap when its range spans more than one member (only part of the
// fragment's rows match).
func (s *RangeSpec) NeedsBitmap(p Pred) bool {
	ai := s.byDim[p.Dim]
	if ai == -1 {
		return true
	}
	a := s.attrs[ai]
	if p.Level > a.Level {
		return true
	}
	if p.Level < a.Level {
		// Coarser predicate: bitmaps are unnecessary only if its descendant
		// span aligns exactly with range boundaries.
		d := &s.star.Dims[p.Dim]
		lo, hi := d.DescendantRange(p.Level, p.Member, a.Level)
		card := d.Levels[a.Level].Card
		rLo, _ := a.rangeSpan(a.rangeOf(lo), card)
		_, rHi := a.rangeSpan(a.rangeOf(hi-1), card)
		return rLo != lo || rHi != hi
	}
	// Same level: exact only for single-member ranges.
	card := s.star.Dims[p.Dim].Levels[a.Level].Card
	lo, hi := a.rangeSpan(a.rangeOf(p.Member), card)
	return hi-lo > 1
}

// Point returns the equivalent point Spec when every attribute uses
// single-member ranges, or nil otherwise.
func (s *RangeSpec) Point() *Spec {
	attrs := make([]Attr, len(s.attrs))
	for i, a := range s.attrs {
		card := s.star.Dims[a.Dim].Levels[a.Level].Card
		if a.numRanges() != card {
			return nil
		}
		attrs[i] = Attr{Dim: a.Dim, Level: a.Level}
	}
	return MustNew(s.star, attrs)
}
