package des

import (
	"math"
	"testing"
)

func TestScheduleOrdering(t *testing.T) {
	s := NewSim()
	var order []int
	s.Schedule(3, func() { order = append(order, 3) })
	s.Schedule(1, func() { order = append(order, 1) })
	s.Schedule(2, func() { order = append(order, 2) })
	end := s.Run()
	if end != 3 {
		t.Fatalf("end = %v", end)
	}
	for i, v := range []int{1, 2, 3} {
		if order[i] != v {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := NewSim()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5, func() { order = append(order, i) })
	}
	s.Run()
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("ties not FIFO: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := NewSim()
	var hits []Time
	s.Schedule(1, func() {
		hits = append(hits, s.Now())
		s.Schedule(1, func() {
			hits = append(hits, s.Now())
		})
	})
	s.Run()
	if len(hits) != 2 || hits[0] != 1 || hits[1] != 2 {
		t.Fatalf("hits = %v", hits)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	s := NewSim()
	fired := false
	s.Schedule(5, func() {
		s.Schedule(-3, func() { fired = true })
	})
	s.Run()
	if !fired || s.Now() != 5 {
		t.Fatalf("fired=%v now=%v", fired, s.Now())
	}
}

func TestRunUntil(t *testing.T) {
	s := NewSim()
	count := 0
	for i := 1; i <= 10; i++ {
		s.Schedule(Time(i), func() { count++ })
	}
	s.RunUntil(5)
	if count != 5 || s.Now() != 5 {
		t.Fatalf("count=%d now=%v", count, s.Now())
	}
	s.Run()
	if count != 10 {
		t.Fatalf("count=%d after Run", count)
	}
}

func TestResourceSingleServerFCFS(t *testing.T) {
	s := NewSim()
	r := NewResource(s, "disk", 1)
	var done []Time
	for i := 0; i < 3; i++ {
		r.Use(2, func() { done = append(done, s.Now()) })
	}
	s.Run()
	want := []Time{2, 4, 6}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("done = %v, want %v", done, want)
		}
	}
	if r.Served() != 3 {
		t.Fatalf("served = %d", r.Served())
	}
}

func TestResourceMultiServer(t *testing.T) {
	s := NewSim()
	r := NewResource(s, "cpu", 2)
	var done []Time
	for i := 0; i < 4; i++ {
		r.Use(3, func() { done = append(done, s.Now()) })
	}
	s.Run()
	// Two at a time: finish at 3, 3, 6, 6.
	want := []Time{3, 3, 6, 6}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("done = %v, want %v", done, want)
		}
	}
}

func TestResourceUtilization(t *testing.T) {
	s := NewSim()
	r := NewResource(s, "disk", 1)
	r.Use(4, nil)
	s.Schedule(8, func() {}) // extend horizon to 8
	s.Run()
	if u := r.Utilization(); math.Abs(u-0.5) > 1e-9 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
}

func TestResourceQueueStats(t *testing.T) {
	s := NewSim()
	r := NewResource(s, "disk", 1)
	for i := 0; i < 3; i++ {
		r.Use(1, nil)
	}
	if r.Busy() != 1 || r.QueueLen() != 2 {
		t.Fatalf("busy=%d queue=%d", r.Busy(), r.QueueLen())
	}
	s.Run()
	if r.MaxQueue() != 2 {
		t.Fatalf("maxQueue = %d", r.MaxQueue())
	}
	// Queue area: 2 waiting during [0,1), 1 during [1,2), 0 during [2,3):
	// mean over 3s = (2+1)/3 = 1.
	if mq := r.MeanQueue(); math.Abs(mq-1.0) > 1e-9 {
		t.Fatalf("meanQueue = %v, want 1", mq)
	}
}

func TestUseFuncStateDependentDuration(t *testing.T) {
	// Service time decided at grant time: the second request sees state
	// changed by the first.
	s := NewSim()
	r := NewResource(s, "disk", 1)
	pos := 0.0
	var done []Time
	service := func(target float64) func() Time {
		return func() Time {
			d := Time(math.Abs(target-pos)) + 1
			pos = target
			return d
		}
	}
	r.UseFunc(service(10), func() { done = append(done, s.Now()) }) // 10+1
	r.UseFunc(service(12), func() { done = append(done, s.Now()) }) // 2+1
	s.Run()
	if len(done) != 2 || done[0] != 11 || done[1] != 14 {
		t.Fatalf("done = %v, want [11 14]", done)
	}
}

func TestResourcePanicsOnZeroServers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewResource(NewSim(), "x", 0)
}

func TestEventsRunCounter(t *testing.T) {
	s := NewSim()
	for i := 0; i < 5; i++ {
		s.Schedule(Time(i), func() {})
	}
	s.Run()
	if s.EventsRun() != 5 {
		t.Fatalf("EventsRun = %d", s.EventsRun())
	}
}

// A deterministic mini "closed queueing network": two stations, fixed
// service times; checks global balance of completions.
func TestClosedNetworkDeterministic(t *testing.T) {
	s := NewSim()
	a := NewResource(s, "a", 1)
	b := NewResource(s, "b", 2)
	completed := 0
	var cycle func(remaining int)
	cycle = func(remaining int) {
		if remaining == 0 {
			completed++
			return
		}
		a.Use(1, func() {
			b.Use(2, func() {
				cycle(remaining - 1)
			})
		})
	}
	for job := 0; job < 3; job++ {
		cycle(4)
	}
	s.Run()
	if completed != 3 {
		t.Fatalf("completed = %d", completed)
	}
	if a.Served() != 12 || b.Served() != 12 {
		t.Fatalf("served a=%d b=%d", a.Served(), b.Served())
	}
}
