// Package des is a small discrete-event simulation kernel: an event
// calendar plus FCFS multi-server resources with utilisation statistics.
// It replaces the proprietary CSIM library the paper's SIMPAD simulator was
// built on (Section 5). Simulated processes are modelled as callback
// chains, which keeps runs deterministic and fast (no goroutine scheduling
// is involved).
package des

import "container/heap"

// Time is simulated time in seconds.
type Time float64

// event is one calendar entry. seq breaks ties FIFO so that simultaneous
// events fire in schedule order, keeping runs deterministic.
type event struct {
	at  Time
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Sim is one simulation run.
type Sim struct {
	now    Time
	seq    int64
	events eventHeap
	nRun   int64
}

// NewSim returns an empty simulation at time zero.
func NewSim() *Sim { return &Sim{} }

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// EventsRun returns the number of events executed so far.
func (s *Sim) EventsRun() int64 { return s.nRun }

// Schedule runs fn after the given delay of simulated time. A negative
// delay is treated as zero.
func (s *Sim) Schedule(delay Time, fn func()) {
	if delay < 0 {
		delay = 0
	}
	s.seq++
	heap.Push(&s.events, event{at: s.now + delay, seq: s.seq, fn: fn})
}

// Run executes events until the calendar is empty and returns the final
// simulated time.
func (s *Sim) Run() Time {
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(event)
		s.now = e.at
		s.nRun++
		e.fn()
	}
	return s.now
}

// RunUntil executes events with timestamps <= t, then stops. Remaining
// events stay scheduled.
func (s *Sim) RunUntil(t Time) {
	for len(s.events) > 0 && s.events[0].at <= t {
		e := heap.Pop(&s.events).(event)
		s.now = e.at
		s.nRun++
		e.fn()
	}
	if s.now < t {
		s.now = t
	}
}

// Resource is a FCFS multi-server queueing station (CSIM "facility").
// Requests are granted in arrival order as servers free up.
type Resource struct {
	sim     *Sim
	Name    string
	servers int

	busy  int
	queue []request

	// statistics
	lastChange Time
	busyArea   float64 // integral of busy servers over time
	queueArea  float64 // integral of queue length over time
	served     int64
	maxQueue   int
}

type request struct {
	durFn func() Time
	done  func()
}

// NewResource creates a resource with the given number of identical
// servers.
func NewResource(sim *Sim, name string, servers int) *Resource {
	if servers <= 0 {
		panic("des: resource needs at least one server")
	}
	return &Resource{sim: sim, Name: name, servers: servers}
}

// Use requests one server, holds it for d, releases it and then calls done
// (which may be nil).
func (r *Resource) Use(d Time, done func()) {
	r.UseFunc(func() Time { return d }, done)
}

// UseFunc is Use with the service time computed at grant time — needed for
// state-dependent service times such as disk seeks that depend on the
// current head position when service starts.
func (r *Resource) UseFunc(durFn func() Time, done func()) {
	r.accumulate()
	if r.busy < r.servers {
		r.busy++
		r.start(request{durFn: durFn, done: done})
		return
	}
	r.queue = append(r.queue, request{durFn: durFn, done: done})
	if len(r.queue) > r.maxQueue {
		r.maxQueue = len(r.queue)
	}
}

func (r *Resource) start(req request) {
	d := req.durFn()
	r.sim.Schedule(d, func() {
		r.accumulate()
		r.served++
		if len(r.queue) > 0 {
			next := r.queue[0]
			r.queue = r.queue[1:]
			r.start(next)
		} else {
			r.busy--
		}
		if req.done != nil {
			req.done()
		}
	})
}

func (r *Resource) accumulate() {
	dt := float64(r.sim.now - r.lastChange)
	r.busyArea += dt * float64(r.busy)
	r.queueArea += dt * float64(len(r.queue))
	r.lastChange = r.sim.now
}

// Served returns the number of completed services.
func (r *Resource) Served() int64 { return r.served }

// Busy returns the number of currently busy servers.
func (r *Resource) Busy() int { return r.busy }

// QueueLen returns the current queue length.
func (r *Resource) QueueLen() int { return len(r.queue) }

// MaxQueue returns the maximal observed queue length.
func (r *Resource) MaxQueue() int { return r.maxQueue }

// Utilization returns the mean fraction of busy servers over [0, now].
func (r *Resource) Utilization() float64 {
	r.accumulate()
	t := float64(r.sim.now)
	if t == 0 {
		return 0
	}
	return r.busyArea / t / float64(r.servers)
}

// MeanQueue returns the time-averaged queue length over [0, now].
func (r *Resource) MeanQueue() float64 {
	r.accumulate()
	t := float64(r.sim.now)
	if t == 0 {
		return 0
	}
	return r.queueArea / t
}
