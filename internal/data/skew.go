package data

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/schema"
)

// SkewConfig controls Zipf-skewed data generation — the data skew study
// the paper defers to future work (Section 7). Theta[d] is the Zipf
// exponent for dimension d's leaf members: 0 = uniform, 1 ≈ classic Zipf.
// Popular members appear in disproportionately many fact rows, producing
// the skewed fragment sizes a load balancing study needs.
type SkewConfig struct {
	Theta []float64
}

// UniformSkew returns a no-skew configuration for the schema.
func UniformSkew(star *schema.Star) SkewConfig {
	return SkewConfig{Theta: make([]float64, len(star.Dims))}
}

// zipfSampler draws members 0..card-1 with P(m) ∝ 1/(m+1)^theta via the
// inverse-CDF method over a precomputed cumulative table. Member ranks are
// shuffled so that popularity is not correlated with hierarchy order.
type zipfSampler struct {
	cum  []float64
	perm []int
}

func newZipfSampler(card int, theta float64, rng *rand.Rand) *zipfSampler {
	s := &zipfSampler{cum: make([]float64, card), perm: rng.Perm(card)}
	total := 0.0
	for i := 0; i < card; i++ {
		total += 1 / math.Pow(float64(i+1), theta)
		s.cum[i] = total
	}
	for i := range s.cum {
		s.cum[i] /= total
	}
	return s
}

func (s *zipfSampler) sample(rng *rand.Rand) int {
	u := rng.Float64()
	lo, hi := 0, len(s.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return s.perm[lo]
}

// GenerateSkewed builds a fact table of exactly star.N() distinct
// combinations whose per-dimension member frequencies follow the given
// Zipf exponents. With all-zero exponents it degenerates to a uniform
// (though differently permuted) sample.
func GenerateSkewed(star *schema.Star, seed int64, skew SkewConfig) (*Table, error) {
	if err := star.Validate(); err != nil {
		return nil, err
	}
	if len(skew.Theta) != len(star.Dims) {
		return nil, fmt.Errorf("data: skew config has %d thetas for %d dimensions", len(skew.Theta), len(star.Dims))
	}
	n := star.N()
	const maxRows = 1 << 25
	if n > maxRows {
		return nil, fmt.Errorf("data: %d rows exceed the skewed generator limit (%d); use a scaled schema", n, maxRows)
	}
	// Rejection of duplicates needs headroom in the combination space.
	if m := star.MaxCombinations(); n > m*9/10 {
		return nil, fmt.Errorf("data: density %.2f too high for skewed generation (needs <= 0.9)", star.Density)
	}

	rng := rand.New(rand.NewSource(seed))
	samplers := make([]*zipfSampler, len(star.Dims))
	for d := range star.Dims {
		samplers[d] = newZipfSampler(star.Dims[d].LeafCard(), skew.Theta[d], rng)
	}

	t := &Table{
		Star:        star,
		Dims:        make([][]int32, len(star.Dims)),
		UnitsSold:   make([]int64, 0, n),
		DollarSales: make([]int64, 0, n),
		Cost:        make([]int64, 0, n),
	}
	for d := range t.Dims {
		t.Dims[d] = make([]int32, 0, n)
	}

	radix := make([]int64, len(star.Dims))
	for d := range star.Dims {
		radix[d] = int64(star.Dims[d].LeafCard())
	}
	seen := make(map[int64]struct{}, n)
	members := make([]int, len(star.Dims))
	for int64(len(seen)) < n {
		var combo int64
		for d := range star.Dims {
			members[d] = samplers[d].sample(rng)
			combo = combo*radix[d] + int64(members[d])
		}
		if _, dup := seen[combo]; dup {
			continue
		}
		seen[combo] = struct{}{}
		for d := range star.Dims {
			t.Dims[d] = append(t.Dims[d], int32(members[d]))
		}
		h := mix(uint64(combo) ^ uint64(seed))
		units := int64(1 + h%100)
		price := int64(1 + (combo % 50))
		t.UnitsSold = append(t.UnitsSold, units)
		t.DollarSales = append(t.DollarSales, units*price)
		t.Cost = append(t.Cost, units*price*3/4)
	}
	return t, nil
}
