// Package data generates deterministic synthetic fact data for a star
// schema: exactly N = density * (product of leaf cardinalities) distinct
// leaf-value combinations, selected pseudo-randomly via a Feistel
// format-preserving permutation, with derived measure values. The paper's
// simulator works on page counts; this generator feeds the real execution
// engine (internal/engine) that validates plan correctness at reduced
// scale.
package data

import (
	"fmt"

	"repro/internal/schema"
)

// Table is a column-oriented fact table: one leaf-member column per
// dimension plus the APB-1 measures UnitsSold, DollarSales and Cost.
type Table struct {
	Star *schema.Star
	// Dims[d][i] is the leaf member of dimension d in row i.
	Dims [][]int32
	// UnitsSold, DollarSales and Cost are the measure columns.
	UnitsSold   []int64
	DollarSales []int64
	Cost        []int64
}

// N returns the number of fact rows.
func (t *Table) N() int { return len(t.UnitsSold) }

// Generate builds the fact table for the schema with the given seed. Row
// combinations are an exact-density pseudo-random sample of the cross
// product of the dimension leaf domains, without duplicates.
func Generate(star *schema.Star, seed int64) (*Table, error) {
	if err := star.Validate(); err != nil {
		return nil, err
	}
	m := star.MaxCombinations()
	n := star.N()
	const maxRows = 1 << 27
	if n > maxRows {
		return nil, fmt.Errorf("data: %d rows exceed the in-memory generator limit (%d); use a scaled schema", n, maxRows)
	}

	t := &Table{
		Star:        star,
		Dims:        make([][]int32, len(star.Dims)),
		UnitsSold:   make([]int64, n),
		DollarSales: make([]int64, n),
		Cost:        make([]int64, n),
	}
	for d := range t.Dims {
		t.Dims[d] = make([]int32, n)
	}

	perm := newFeistel(uint64(m), uint64(seed))
	radix := make([]int64, len(star.Dims))
	for d := range star.Dims {
		radix[d] = int64(star.Dims[d].LeafCard())
	}
	for i := int64(0); i < n; i++ {
		combo := int64(perm.apply(uint64(i)))
		// Decode the combination index in mixed radix, last dimension
		// fastest.
		c := combo
		for d := len(radix) - 1; d >= 0; d-- {
			t.Dims[d][i] = int32(c % radix[d])
			c /= radix[d]
		}
		// Measures derive deterministically from the combination.
		h := mix(uint64(combo) ^ uint64(seed))
		units := int64(1 + h%100)
		price := int64(1 + (combo % 50))
		t.UnitsSold[i] = units
		t.DollarSales[i] = units * price
		t.Cost[i] = units * price * 3 / 4
	}
	return t, nil
}

// MustGenerate is Generate, panicking on error. For tests and examples.
func MustGenerate(star *schema.Star, seed int64) *Table {
	t, err := Generate(star, seed)
	if err != nil {
		panic(err)
	}
	return t
}

// LeafMembers returns the leaf member per dimension of row i, for use with
// frag.Spec.CoordOf.
func (t *Table) LeafMembers(i int, buf []int) []int {
	if cap(buf) < len(t.Dims) {
		buf = make([]int, len(t.Dims))
	}
	buf = buf[:len(t.Dims)]
	for d := range t.Dims {
		buf[d] = int(t.Dims[d][i])
	}
	return buf
}

// feistel is a 4-round Feistel network over [0, domain) using cycle
// walking, i.e. a deterministic bijection (format-preserving permutation).
type feistel struct {
	domain   uint64
	halfBits uint
	mask     uint64
	keys     [4]uint64
}

func newFeistel(domain, seed uint64) *feistel {
	bits := uint(1)
	for uint64(1)<<bits < domain {
		bits++
	}
	if bits%2 == 1 {
		bits++
	}
	f := &feistel{domain: domain, halfBits: bits / 2, mask: 1<<(bits/2) - 1}
	for i := range f.keys {
		f.keys[i] = mix(seed + uint64(i)*0x9e3779b97f4a7c15)
	}
	return f
}

// apply maps x in [0, domain) to a unique value in [0, domain).
func (f *feistel) apply(x uint64) uint64 {
	for {
		l := x >> f.halfBits
		r := x & f.mask
		for _, k := range f.keys {
			l, r = r, l^(mix(r^k)&f.mask)
		}
		x = l<<f.halfBits | r
		if x < f.domain {
			return x
		}
		// Cycle-walk values that fall outside the domain.
	}
}

// mix is the splitmix64 finaliser: a fast, well-distributed 64-bit hash.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
