package data

import (
	"testing"
	"testing/quick"

	"repro/internal/schema"
)

func TestGenerateExactCount(t *testing.T) {
	s := schema.Tiny()
	tab := MustGenerate(s, 1)
	if int64(tab.N()) != s.N() {
		t.Fatalf("rows = %d, want %d", tab.N(), s.N())
	}
}

func TestGenerateNoDuplicatesAndInDomain(t *testing.T) {
	s := schema.Tiny()
	tab := MustGenerate(s, 7)
	seen := make(map[[3]int32]bool, tab.N())
	for i := 0; i < tab.N(); i++ {
		var key [3]int32
		for d := range tab.Dims {
			v := tab.Dims[d][i]
			if int(v) < 0 || int(v) >= s.Dims[d].LeafCard() {
				t.Fatalf("row %d dim %d value %d out of domain", i, d, v)
			}
			key[d] = v
		}
		if seen[key] {
			t.Fatalf("duplicate combination %v", key)
		}
		seen[key] = true
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s := schema.Tiny()
	a := MustGenerate(s, 42)
	b := MustGenerate(s, 42)
	for i := 0; i < a.N(); i++ {
		for d := range a.Dims {
			if a.Dims[d][i] != b.Dims[d][i] {
				t.Fatalf("row %d differs between runs", i)
			}
		}
		if a.DollarSales[i] != b.DollarSales[i] {
			t.Fatalf("measures differ at %d", i)
		}
	}
	c := MustGenerate(s, 43)
	same := true
	for i := 0; i < a.N() && same; i++ {
		for d := range a.Dims {
			if a.Dims[d][i] != c.Dims[d][i] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical tables")
	}
}

func TestGenerateUniformish(t *testing.T) {
	// Each store's row count should be close to N/stores.
	s := schema.APB1Scaled(60)
	tab := MustGenerate(s, 3)
	cd := s.DimIndex(schema.DimCustomer)
	stores := s.Dims[cd].LeafCard()
	counts := make([]int, stores)
	for i := 0; i < tab.N(); i++ {
		counts[tab.Dims[cd][i]]++
	}
	expect := float64(tab.N()) / float64(stores)
	for m, c := range counts {
		if float64(c) < 0.7*expect || float64(c) > 1.3*expect {
			t.Errorf("store %d has %d rows, expected ~%.0f", m, c, expect)
		}
	}
}

func TestGenerateMeasuresConsistent(t *testing.T) {
	s := schema.Tiny()
	tab := MustGenerate(s, 5)
	for i := 0; i < tab.N(); i++ {
		if tab.UnitsSold[i] < 1 || tab.UnitsSold[i] > 100 {
			t.Fatalf("units[%d] = %d", i, tab.UnitsSold[i])
		}
		if tab.DollarSales[i] < tab.UnitsSold[i] {
			t.Fatalf("dollars[%d] = %d < units %d", i, tab.DollarSales[i], tab.UnitsSold[i])
		}
		if tab.Cost[i] > tab.DollarSales[i] {
			t.Fatalf("cost[%d] = %d > dollars %d", i, tab.Cost[i], tab.DollarSales[i])
		}
	}
}

func TestGenerateRejectsHugeSchemas(t *testing.T) {
	if _, err := Generate(schema.APB1(), 1); err == nil {
		t.Fatal("full-scale APB-1 generation should be refused")
	}
}

func TestGenerateRejectsInvalidSchema(t *testing.T) {
	s := schema.Tiny()
	s.Density = 0
	if _, err := Generate(s, 1); err == nil {
		t.Fatal("invalid schema accepted")
	}
}

func TestFeistelIsBijection(t *testing.T) {
	f := func(domainSeed uint32, seed int64) bool {
		domain := uint64(domainSeed)%5000 + 2
		perm := newFeistel(domain, uint64(seed))
		seen := make(map[uint64]bool, domain)
		for x := uint64(0); x < domain; x++ {
			y := perm.apply(x)
			if y >= domain || seen[y] {
				return false
			}
			seen[y] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLeafMembersBufferReuse(t *testing.T) {
	s := schema.Tiny()
	tab := MustGenerate(s, 1)
	buf := make([]int, 0)
	m0 := tab.LeafMembers(0, buf)
	if len(m0) != len(s.Dims) {
		t.Fatalf("len = %d", len(m0))
	}
	m1 := tab.LeafMembers(1, m0)
	for d := range s.Dims {
		if m1[d] != int(tab.Dims[d][1]) {
			t.Fatalf("buffer reuse wrong at dim %d", d)
		}
	}
}
