package data

import (
	"sort"
	"testing"

	"repro/internal/schema"
)

// skewTestSchema has a relaxed density so that rejection sampling has
// headroom.
func skewTestSchema() *schema.Star {
	s := schema.APB1Scaled(60)
	s.Density = 0.1
	return s
}

func TestGenerateSkewedExactCountNoDuplicates(t *testing.T) {
	s := skewTestSchema()
	cfg := UniformSkew(s)
	cfg.Theta[0] = 1.0
	tab, err := GenerateSkewed(s, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if int64(tab.N()) != s.N() {
		t.Fatalf("rows = %d, want %d", tab.N(), s.N())
	}
	seen := map[[4]int32]bool{}
	for i := 0; i < tab.N(); i++ {
		var key [4]int32
		for d := range tab.Dims {
			key[d] = tab.Dims[d][i]
		}
		if seen[key] {
			t.Fatal("duplicate combination")
		}
		seen[key] = true
	}
}

func TestGenerateSkewedProducesSkew(t *testing.T) {
	s := skewTestSchema()
	pd := s.DimIndex(schema.DimProduct)

	counts := func(theta float64) []int {
		cfg := UniformSkew(s)
		cfg.Theta[pd] = theta
		tab, err := GenerateSkewed(s, 3, cfg)
		if err != nil {
			t.Fatal(err)
		}
		c := make([]int, s.Dims[pd].LeafCard())
		for i := 0; i < tab.N(); i++ {
			c[tab.Dims[pd][i]]++
		}
		sort.Sort(sort.Reverse(sort.IntSlice(c)))
		return c
	}

	uniform := counts(0)
	skewed := counts(1.2)
	// Top-decile share must be clearly larger under skew.
	share := func(c []int) float64 {
		top, total := 0, 0
		for i, v := range c {
			if i < len(c)/10 {
				top += v
			}
			total += v
		}
		return float64(top) / float64(total)
	}
	us, ss := share(uniform), share(skewed)
	if ss < us+0.1 {
		t.Errorf("top-decile share: uniform %.2f, skewed %.2f — expected clear skew", us, ss)
	}
}

func TestGenerateSkewedFragmentImbalance(t *testing.T) {
	// The point of the future-work study: skew imbalances fragment sizes.
	s := skewTestSchema()
	pd := s.DimIndex(schema.DimProduct)
	cfg := UniformSkew(s)
	cfg.Theta[pd] = 1.2
	tab, err := GenerateSkewed(s, 9, cfg)
	if err != nil {
		t.Fatal(err)
	}
	group := s.Dims[pd].LevelIndex(schema.LvlGroup)
	leaf := s.Dims[pd].Leaf()
	sizes := make([]int, s.Dims[pd].Levels[group].Card)
	for i := 0; i < tab.N(); i++ {
		g := s.Dims[pd].Ancestor(leaf, int(tab.Dims[pd][i]), group)
		sizes[g]++
	}
	min, max := tab.N(), 0
	for _, v := range sizes {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max < 2*min {
		t.Errorf("group sizes min %d max %d — expected >= 2x imbalance under skew", min, max)
	}
}

func TestGenerateSkewedValidations(t *testing.T) {
	s := skewTestSchema()
	if _, err := GenerateSkewed(s, 1, SkewConfig{Theta: []float64{1}}); err == nil {
		t.Error("short theta accepted")
	}
	dense := schema.Tiny()
	dense.Density = 0.95
	if _, err := GenerateSkewed(dense, 1, UniformSkew(dense)); err == nil {
		t.Error("too-dense schema accepted")
	}
	bad := schema.Tiny()
	bad.Density = 0
	if _, err := GenerateSkewed(bad, 1, UniformSkew(bad)); err == nil {
		t.Error("invalid schema accepted")
	}
	if _, err := GenerateSkewed(schema.APB1(), 1, UniformSkew(schema.APB1())); err == nil {
		t.Error("full-scale schema accepted")
	}
}

func TestZipfSamplerDistribution(t *testing.T) {
	s := skewTestSchema()
	_ = s
	// Directly test the sampler: rank-1 member must dominate under high
	// theta; all members reachable under theta 0.
	rngSeed := int64(4)
	tab, err := GenerateSkewed(skewTestSchema(), rngSeed, UniformSkew(skewTestSchema()))
	if err != nil {
		t.Fatal(err)
	}
	// Uniform: all channels should appear.
	cd := tab.Star.DimIndex(schema.DimChannel)
	seen := map[int32]bool{}
	for i := 0; i < tab.N(); i++ {
		seen[tab.Dims[cd][i]] = true
	}
	if len(seen) != tab.Star.Dims[cd].LeafCard() {
		t.Errorf("uniform generation missed channel members: %d of %d", len(seen), tab.Star.Dims[cd].LeafCard())
	}
}
