// Package kernel is the shared aggregation kernel of the query backends:
// the one Aggregate every executor accumulates into, the work Stats the
// in-memory engine reports, and the grouped-roll-up machinery (Grouper,
// Grouped, Row) that turns MDHF's hierarchy-aligned fragments into
// nearly-free GROUP BY execution. The in-memory engine, its compressed
// fast path, the on-disk executor and the declustered sharded path all
// compile against these types instead of defining their own, so a result
// produced by any backend is structurally — and, after the deterministic
// Rows ordering, byte-for-byte — comparable with every other.
package kernel

// Aggregate is a star query result: COUNT plus the three APB-1 measure
// sums. It is the single aggregate type shared by every backend (the
// engine and storage packages alias it).
type Aggregate struct {
	Count       int64
	UnitsSold   int64
	DollarSales int64
	Cost        int64
}

// Add folds another aggregate in. Addition is commutative and
// associative, so partial aggregates merge to the same result in any
// order; the executors nevertheless fold in fragment allocation order so
// even a future non-commutative measure would stay deterministic.
func (a *Aggregate) Add(o Aggregate) {
	a.Count += o.Count
	a.UnitsSold += o.UnitsSold
	a.DollarSales += o.DollarSales
	a.Cost += o.Cost
}

// AddRow folds one fact row's measures in.
func (a *Aggregate) AddRow(unitsSold, dollarSales, cost int64) {
	a.Count++
	a.UnitsSold += unitsSold
	a.DollarSales += dollarSales
	a.Cost += cost
}

// Stats reports the work a query execution performed — used to assert the
// paper's confinement claims, not just result correctness. The in-memory
// engine aliases it as engine.Stats.
type Stats struct {
	// FragmentsProcessed is the number of fragments visited.
	FragmentsProcessed int
	// RowsScanned is the number of fact rows whose measures were read.
	RowsScanned int64
	// BitmapsRead is the number of bitmap(-fragment)s evaluated.
	BitmapsRead int64
	// DeltaRows is the number of appended (not yet compacted) rows
	// aggregated from delta segments.
	DeltaRows int64
}

// Add folds another execution's counters in.
func (s *Stats) Add(o Stats) {
	s.FragmentsProcessed += o.FragmentsProcessed
	s.RowsScanned += o.RowsScanned
	s.BitmapsRead += o.BitmapsRead
	s.DeltaRows += o.DeltaRows
}

// Grouped accumulates per-group aggregates keyed by a Grouper's composed
// mixed-radix group key. The map form is the merge-friendly intermediate;
// Grouper.Rows flattens it into the deterministic output order.
type Grouped struct {
	m map[uint64]Aggregate
}

// NewGrouped returns an empty group accumulator.
func NewGrouped() *Grouped { return &Grouped{m: make(map[uint64]Aggregate)} }

// Len returns the number of non-empty groups.
func (g *Grouped) Len() int { return len(g.m) }

// Add folds an aggregate into the group with the given key.
func (g *Grouped) Add(key uint64, a Aggregate) {
	cur := g.m[key]
	cur.Add(a)
	g.m[key] = cur
}

// AddRow folds one fact row's measures into the group with the given key.
func (g *Grouped) AddRow(key uint64, unitsSold, dollarSales, cost int64) {
	cur := g.m[key]
	cur.AddRow(unitsSold, dollarSales, cost)
	g.m[key] = cur
}

// ForEach calls fn for every non-empty group. Iteration order is
// unspecified (the map's); callers needing the deterministic order sort
// the keys themselves or go through Grouper.Rows.
func (g *Grouped) ForEach(fn func(key uint64, a Aggregate)) {
	for k, a := range g.m {
		fn(k, a)
	}
}

// Merge folds another accumulator in. Per-key addition commutes, so the
// merged content is independent of merge order; ordering is imposed only
// by Grouper.Rows.
func (g *Grouped) Merge(o *Grouped) {
	if o == nil {
		return
	}
	for k, a := range o.m {
		cur := g.m[k]
		cur.Add(a)
		g.m[k] = cur
	}
}

// Row is one group of a grouped query result: the member index per
// GroupBy level (in GroupBy declaration order) plus the group's
// aggregate.
type Row struct {
	Members []int
	Agg     Aggregate
}

// Result is a query result: the grand total plus, when the query has a
// GROUP BY, the per-group rows in the deterministic Grouper.Rows order
// (ascending lexicographically in the GroupBy member tuple). The grand
// total always equals the sum of the group aggregates.
type Result struct {
	Aggregate
	Groups []Row
}

// FragPartial is one fragment's contribution to a (possibly grouped)
// execution. On the fragment-aligned fast path the whole fragment belongs
// to one group, so the partial is just the fragment total plus its
// constant key — no map is built at all; the per-row fallback carries the
// fragment's own small group map instead.
type FragPartial struct {
	Agg Aggregate
	// OneGroup marks the aligned fast path: the fragment total lands
	// entirely in the group with key Key.
	OneGroup bool
	Key      uint64
	// Groups holds the per-row fallback's fragment-local group partials
	// (nil otherwise).
	Groups *Grouped
}

// MergeInto folds the partial into a running total and group accumulator
// (g may be nil for ungrouped executions).
func (p FragPartial) MergeInto(total *Aggregate, g *Grouped) {
	total.Add(p.Agg)
	if g == nil {
		return
	}
	if p.OneGroup {
		// A group exists only if at least one row landed in it: an aligned
		// fragment whose selection matched nothing contributes no group.
		if p.Agg.Count != 0 {
			g.Add(p.Key, p.Agg)
		}
		return
	}
	g.Merge(p.Groups)
}
