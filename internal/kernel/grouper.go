package kernel

import (
	"fmt"
	"sort"

	"repro/internal/frag"
	"repro/internal/schema"
)

// RowLevel is one GroupBy level that needs per-row bucketing: the group
// member of a fact row is its leaf member of dimension Dim divided by
// Div, and it contributes member*Weight to the row's composed group key.
type RowLevel struct {
	Dim    int
	Div    int64
	Weight uint64
}

// alignedLevel is one GroupBy level at or above its dimension's
// fragmentation level: within a fragment every row shares the same group
// member, computed once per fragment from the fragment id alone.
type alignedLevel struct {
	// coord member of the fragmentation attribute = (id / idDiv) % idMod
	// (the mixed-radix decomposition of the allocation-order fragment id).
	idDiv, idMod int64
	// group member = coord member / div (ancestor arithmetic in the
	// uniform hierarchy).
	div    int64
	weight uint64
}

// Grouper maps fact rows to composed group keys for one
// (fragmentation, GROUP BY) pair. Keys are mixed-radix: the first
// declared GroupBy level is the most significant digit, so ascending key
// order is lexicographic order of the member tuples — the deterministic
// output order every backend produces.
//
// Exploiting MDHF (Section 4.1's hierarchy alignment): a GroupBy level at
// or above the fragmentation level of its dimension is constant within
// every fragment, so its key digit is computed once per fragment from the
// fragment coordinates with zero per-row work. Only levels below the
// fragmentation level — or on non-fragmentation dimensions — fall back to
// per-row bucketing (PerRow).
type Grouper struct {
	radices []int64
	weights []uint64
	aligned []alignedLevel
	perRow  []RowLevel
}

// NewGrouper builds the group-key computer for a query's GroupBy under a
// fragmentation (spec may be nil — e.g. for the full-scan oracle — in
// which case every level buckets per row). It returns (nil, nil) when the
// query has no GroupBy.
func NewGrouper(star *schema.Star, spec *frag.Spec, groupBy []frag.LevelRef) (*Grouper, error) {
	if len(groupBy) == 0 {
		return nil, nil
	}
	g := &Grouper{
		radices: make([]int64, len(groupBy)),
		weights: make([]uint64, len(groupBy)),
	}
	// The range and group-space checks intentionally repeat
	// frag.Query.Validate's: callers do Validate first, but this package
	// must stay memory-safe (and overflow-free) on its own inputs.
	space := int64(1)
	for i, ref := range groupBy {
		if ref.Dim < 0 || ref.Dim >= len(star.Dims) {
			return nil, fmt.Errorf("kernel: GroupBy dimension %d out of range", ref.Dim)
		}
		d := &star.Dims[ref.Dim]
		if ref.Level < 0 || ref.Level >= d.Depth() {
			return nil, fmt.Errorf("kernel: GroupBy level %d out of range for %s", ref.Level, d.Name)
		}
		card := int64(d.Levels[ref.Level].Card)
		g.radices[i] = card
		if space > (1<<62)/card {
			return nil, fmt.Errorf("kernel: GroupBy space exceeds 2^62 groups")
		}
		space *= card
	}
	// Mixed-radix place values: last level least significant.
	w := uint64(1)
	for i := len(groupBy) - 1; i >= 0; i-- {
		g.weights[i] = w
		w *= uint64(g.radices[i])
	}
	for i, ref := range groupBy {
		d := &star.Dims[ref.Dim]
		ai := -1
		if spec != nil {
			ai = spec.AttrOfDim(ref.Dim)
		}
		if ai != -1 && ref.Level <= spec.Attrs()[ai].Level {
			fl := spec.Attrs()[ai].Level
			// idDiv = product of the radices of the attributes allocated
			// after ai (they vary faster in the allocation-order id).
			idDiv := int64(1)
			for j := ai + 1; j < spec.Dimensionality(); j++ {
				a := spec.Attrs()[j]
				idDiv *= int64(spec.Star().Dims[a.Dim].Levels[a.Level].Card)
			}
			g.aligned = append(g.aligned, alignedLevel{
				idDiv:  idDiv,
				idMod:  int64(d.Levels[fl].Card),
				div:    int64(d.FanOutBetween(ref.Level, fl)),
				weight: g.weights[i],
			})
			continue
		}
		g.perRow = append(g.perRow, RowLevel{
			Dim:    ref.Dim,
			Div:    int64(d.FanOutBetween(ref.Level, d.Leaf())),
			Weight: g.weights[i],
		})
	}
	return g, nil
}

// Aligned reports the fragment-aligned fast path: every GroupBy level is
// at or above the fragmentation level of its dimension, so the group key
// is constant per fragment and grouping adds no per-row work.
func (g *Grouper) Aligned() bool { return len(g.perRow) == 0 }

// PerRow returns the levels requiring per-row bucketing (empty on the
// aligned fast path). Backends compose a row's key as
// FragKey(id) + Σ (leaf/Div)*Weight over these levels.
func (g *Grouper) PerRow() []RowLevel { return g.perRow }

// FragKey returns the fragment-constant part of the group key for the
// fragment with the given allocation-order id — the whole key on the
// aligned fast path. It is pure integer arithmetic on the id: no
// allocation, no per-row work.
func (g *Grouper) FragKey(id int64) uint64 {
	var key uint64
	for _, al := range g.aligned {
		m := (id / al.idDiv) % al.idMod
		key += uint64(m/al.div) * al.weight
	}
	return key
}

// Rows flattens a group accumulator into the deterministic output order:
// ascending in the composed key, i.e. lexicographic in the GroupBy member
// tuple. Every backend produces byte-identical rows for the same query.
func (g *Grouper) Rows(acc *Grouped) []Row {
	if acc == nil || len(acc.m) == 0 {
		return nil
	}
	keys := make([]uint64, 0, len(acc.m))
	for k := range acc.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	rows := make([]Row, len(keys))
	for i, k := range keys {
		members := make([]int, len(g.weights))
		for l := range g.weights {
			members[l] = int((k / g.weights[l]) % uint64(g.radices[l]))
		}
		rows[i] = Row{Members: members, Agg: acc.m[k]}
	}
	return rows
}
