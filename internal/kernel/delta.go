package kernel

import "repro/internal/frag"

// Deltas bundles a pinned delta snapshot with the index that interprets
// it — what an admitted query execution carries alongside its base
// backend. The zero value (or a nil/empty set) means no deltas.
type Deltas struct {
	Ix  *frag.DeltaIndex
	Set *frag.DeltaSet
}

// Empty reports whether there is nothing to fold.
func (d Deltas) Empty() bool { return d.Ix == nil || d.Set.Rows() == 0 }

// AddDelta folds every delta segment of fragment id into the fragment's
// partial, in seal order: rows selected by the query's bitmap predicates
// (frag.DeltaIndex.Select — the same verbatim/complemented WAH
// intersection the base paths run) are aggregated into p.Agg and, on the
// per-row grouping fallback, into p.Groups with the same composed key
// arithmetic as base rows. Because per-key sums commute, folding deltas
// inside the fragment's own task keeps the cross-fragment merge
// task-ordered and the final result byte-identical to a warehouse
// rebuilt from scratch with the same rows.
//
// It returns the number of delta rows aggregated.
func AddDelta(d Deltas, id int64, q frag.Query, p *FragPartial, base uint64, perRow []RowLevel, sc *frag.DeltaScratch) (int64, error) {
	if d.Empty() {
		return 0, nil
	}
	segs := d.Set.Of(id)
	if len(segs) == 0 {
		return 0, nil
	}
	grouped := p.Groups != nil && len(perRow) > 0
	var rows int64
	for _, seg := range segs {
		res, all, err := d.Ix.Select(seg, q, sc)
		if err != nil {
			return rows, err
		}
		units, dollars, costs := seg.Units(), seg.Dollars(), seg.Costs()
		addRow := func(i int) {
			p.Agg.AddRow(units[i], dollars[i], costs[i])
			if grouped {
				key := base
				for _, rl := range perRow {
					key += uint64(int64(seg.Leaves(rl.Dim)[i])/rl.Div) * rl.Weight
				}
				p.Groups.AddRow(key, units[i], dollars[i], costs[i])
			}
			rows++
		}
		if all {
			for i := 0; i < seg.Rows(); i++ {
				addRow(i)
			}
		} else {
			res.ForEach(addRow)
		}
	}
	return rows, nil
}
