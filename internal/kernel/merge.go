package kernel

import (
	"repro/internal/data"
	"repro/internal/frag"
)

// MergedTable concatenates a base table's rows with every delta row of
// the set, fragments in ascending id order and segments in seal order —
// the deterministic compaction input. Per-fragment row order (base
// first, then segments in seal order) matches the order queries fold
// deltas in, so a backend rebuilt from the merged table serves
// byte-identical results. It is shared by the warehouse's compaction and
// the per-node compaction of the cluster layer.
func MergedTable(base *data.Table, deltas *frag.DeltaSet) *data.Table {
	n := base.N() + int(deltas.Rows())
	t := &data.Table{Star: base.Star, Dims: make([][]int32, len(base.Dims))}
	for d := range base.Dims {
		t.Dims[d] = append(make([]int32, 0, n), base.Dims[d]...)
	}
	t.UnitsSold = append(make([]int64, 0, n), base.UnitsSold...)
	t.DollarSales = append(make([]int64, 0, n), base.DollarSales...)
	t.Cost = append(make([]int64, 0, n), base.Cost...)
	deltas.ForEachSegment(func(seg *frag.DeltaSegment) {
		for d := range t.Dims {
			t.Dims[d] = append(t.Dims[d], seg.Leaves(d)...)
		}
		t.UnitsSold = append(t.UnitsSold, seg.Units()...)
		t.DollarSales = append(t.DollarSales, seg.Dollars()...)
		t.Cost = append(t.Cost, seg.Costs()...)
	})
	return t
}
