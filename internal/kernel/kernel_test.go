package kernel

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/frag"
	"repro/internal/schema"
)

// TestGrouperFragKeyMatchesCoordArithmetic checks the id-based
// mixed-radix decomposition of FragKey against the spec's own Coord and
// explicit ancestor arithmetic, for every fragment and several GroupBy
// shapes.
func TestGrouperFragKeyMatchesCoordArithmetic(t *testing.T) {
	s := schema.Tiny()
	spec := frag.MustParse(s, "time::month, product::group")
	pd := s.DimIndex(schema.DimProduct)
	td := s.DimIndex(schema.DimTime)
	cases := [][]frag.LevelRef{
		{{Dim: td, Level: s.Dims[td].LevelIndex(schema.LvlMonth)}},
		{{Dim: td, Level: s.Dims[td].LevelIndex(schema.LvlQuarter)}},
		{{Dim: pd, Level: s.Dims[pd].LevelIndex(schema.LvlGroup)}, {Dim: td, Level: s.Dims[td].LevelIndex(schema.LvlQuarter)}},
		{{Dim: td, Level: s.Dims[td].LevelIndex(schema.LvlQuarter)}, {Dim: pd, Level: s.Dims[pd].LevelIndex(schema.LvlGroup)}},
	}
	for ci, groupBy := range cases {
		g, err := NewGrouper(s, spec, groupBy)
		if err != nil {
			t.Fatal(err)
		}
		if !g.Aligned() {
			t.Fatalf("case %d: expected aligned", ci)
		}
		for id := int64(0); id < spec.NumFragments(); id++ {
			coord := spec.Coord(id)
			var want uint64
			for i, ref := range groupBy {
				ai := spec.AttrOfDim(ref.Dim)
				a := spec.Attrs()[ai]
				d := &s.Dims[ref.Dim]
				m := d.Ancestor(a.Level, coord[ai], ref.Level)
				w := uint64(1)
				for j := i + 1; j < len(groupBy); j++ {
					w *= uint64(s.Dims[groupBy[j].Dim].Levels[groupBy[j].Level].Card)
				}
				want += uint64(m) * w
			}
			if got := g.FragKey(id); got != want {
				t.Fatalf("case %d id %d: FragKey = %d, want %d", ci, id, got, want)
			}
		}
	}
}

// TestGrouperAlignment checks the aligned/per-row split: levels at or
// above the fragmentation level are aligned, finer levels and
// non-fragmentation dimensions bucket per row.
func TestGrouperAlignment(t *testing.T) {
	s := schema.Tiny()
	spec := frag.MustParse(s, "time::month, product::group")
	pd := s.DimIndex(schema.DimProduct)
	cd := s.DimIndex(schema.DimCustomer)
	code := s.Dims[pd].LevelIndex(schema.LvlCode)
	store := s.Dims[cd].LevelIndex(schema.LvlStore)

	g, err := NewGrouper(s, spec, []frag.LevelRef{{Dim: pd, Level: code}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Aligned() || len(g.PerRow()) != 1 {
		t.Fatalf("finer level should fall back per row: aligned=%v perRow=%d", g.Aligned(), len(g.PerRow()))
	}
	g, err = NewGrouper(s, spec, []frag.LevelRef{{Dim: cd, Level: store}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Aligned() {
		t.Fatal("non-fragmentation dimension should fall back per row")
	}
	// Without a spec (the oracle's view), everything buckets per row.
	g, err = NewGrouper(s, nil, []frag.LevelRef{{Dim: pd, Level: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Aligned() {
		t.Fatal("spec-free grouper should not be aligned")
	}
}

// TestGroupedMergeOrderIndependent checks that merging partial group maps
// in any order produces the same content, and that Rows imposes the
// deterministic lexicographic order.
func TestGroupedMergeOrderIndependent(t *testing.T) {
	s := schema.Tiny()
	pd := s.DimIndex(schema.DimProduct)
	td := s.DimIndex(schema.DimTime)
	g, err := NewGrouper(s, nil, []frag.LevelRef{{Dim: pd, Level: 1}, {Dim: td, Level: 0}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	parts := make([]*Grouped, 8)
	for i := range parts {
		parts[i] = NewGrouped()
		for j := 0; j < 20; j++ {
			key := uint64(rng.Intn(8))
			parts[i].AddRow(key, int64(rng.Intn(100)), int64(rng.Intn(100)), int64(rng.Intn(100)))
		}
	}
	merge := func(order []int) []Row {
		acc := NewGrouped()
		for _, i := range order {
			acc.Merge(parts[i])
		}
		return g.Rows(acc)
	}
	fwd := merge([]int{0, 1, 2, 3, 4, 5, 6, 7})
	rev := merge([]int{7, 6, 5, 4, 3, 2, 1, 0})
	if !reflect.DeepEqual(fwd, rev) {
		t.Fatal("merge order changed grouped result")
	}
	if !sort.SliceIsSorted(fwd, func(i, j int) bool {
		a, b := fwd[i].Members, fwd[j].Members
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	}) {
		t.Fatalf("rows not in lexicographic member order: %v", fwd)
	}
}

// TestFragPartialZeroGroupSuppressed checks that an aligned fragment
// whose selection matched nothing contributes no group.
func TestFragPartialZeroGroupSuppressed(t *testing.T) {
	g := NewGrouped()
	var total Aggregate
	FragPartial{OneGroup: true, Key: 3}.MergeInto(&total, g)
	if g.Len() != 0 {
		t.Fatalf("zero-count partial created %d groups", g.Len())
	}
	FragPartial{OneGroup: true, Key: 3, Agg: Aggregate{Count: 2, UnitsSold: 5}}.MergeInto(&total, g)
	if g.Len() != 1 || total.Count != 2 {
		t.Fatalf("non-empty partial not merged: groups=%d total=%+v", g.Len(), total)
	}
}

// TestNewGrouperErrors covers invalid refs and group-space overflow.
func TestNewGrouperErrors(t *testing.T) {
	s := schema.Tiny()
	if _, err := NewGrouper(s, nil, []frag.LevelRef{{Dim: 9, Level: 0}}); err == nil {
		t.Error("out-of-range dimension accepted")
	}
	if _, err := NewGrouper(s, nil, []frag.LevelRef{{Dim: 0, Level: 9}}); err == nil {
		t.Error("out-of-range level accepted")
	}
	huge := &schema.Star{
		Name: "huge",
		Dims: []schema.Dimension{
			{Name: "a", Levels: []schema.Level{{Name: "x", Card: 1 << 31}}},
			{Name: "b", Levels: []schema.Level{{Name: "y", Card: 1 << 31}}},
			{Name: "c", Levels: []schema.Level{{Name: "z", Card: 1 << 31}}},
		},
		Density: 1, TupleSize: 20, PageSize: 4096,
	}
	refs := []frag.LevelRef{{Dim: 0, Level: 0}, {Dim: 1, Level: 0}, {Dim: 2, Level: 0}}
	if _, err := NewGrouper(huge, nil, refs); err == nil {
		t.Error("2^93 group space accepted")
	}
	if g, err := NewGrouper(s, nil, nil); g != nil || err != nil {
		t.Errorf("empty GroupBy: got %v, %v", g, err)
	}
}
