package kernel

import (
	"math/bits"

	"repro/internal/bitmap"
)

// SharedScanStats records what one query saved (or contributed) by
// riding a shared multi-query scan. The per-query logical I/O counters
// are untouched by sharing — these counters describe only the physical
// effect of coalescing.
type SharedScanStats struct {
	// Batched is the number of queries in the admission batch this query
	// executed with (1 = it ran alone in its window).
	Batched int
	// FragmentsShared counts the query's relevant fragments whose scan
	// task also served at least one other query of the batch.
	FragmentsShared int
	// PhysReadsSaved counts the physical reads (bitmap I/Os and fact
	// granule I/Os) this query would have issued solo but instead
	// consumed from a batch-mate's read.
	PhysReadsSaved int64
}

// Add folds another query's shared-scan counters in (warehouse-wide
// accounting); Batched takes the max rather than summing.
func (s *SharedScanStats) Add(o SharedScanStats) {
	if o.Batched > s.Batched {
		s.Batched = o.Batched
	}
	s.FragmentsShared += o.FragmentsShared
	s.PhysReadsSaved += o.PhysReadsSaved
}

// Columns is a columnar view of one fragment's rows — the engine's
// in-memory layout, handed to EvalMany so one pass over the arrays can
// feed every slot of a shared scan.
type Columns struct {
	Dims    [][]int32
	Units   []int64
	Dollars []int64
	Costs   []int64
}

// Slot is one query's accumulator in a shared multi-query scan: the
// query's grouping shape for the fragment at hand (constant base key,
// per-row GroupBy levels) plus its running FragPartial. Rows counts the
// rows folded in — the slot's logical scan count for the fragment,
// identical to what solo execution would have reported.
type Slot struct {
	Base   uint64
	PerRow []RowLevel
	FP     FragPartial
	Rows   int64
}

// NewSlot shapes a slot for one fragment of one query, mirroring the
// solo executors' per-fragment partial setup: ungrouped queries
// aggregate into FP.Agg only; fragment-aligned grouping tags the partial
// with its constant key; the per-row fallback carries a fragment-local
// group map.
func NewSlot(gr *Grouper, id int64) Slot {
	var s Slot
	if gr == nil {
		return s
	}
	s.Base = gr.FragKey(id)
	if gr.Aligned() {
		s.FP.OneGroup, s.FP.Key = true, s.Base
	} else {
		s.PerRow = gr.PerRow()
		s.FP.Groups = NewGrouped()
	}
	return s
}

// AddCols folds row i of the columnar fragment into the slot.
func (s *Slot) AddCols(cols Columns, i int) {
	u, d, c := cols.Units[i], cols.Dollars[i], cols.Costs[i]
	s.Rows++
	s.FP.Agg.AddRow(u, d, c)
	if s.FP.Groups != nil {
		key := s.Base
		for _, rl := range s.PerRow {
			key += uint64(int64(cols.Dims[rl.Dim][i])/rl.Div) * rl.Weight
		}
		s.FP.Groups.AddRow(key, u, d, c)
	}
}

// AddColsRange folds rows [lo, hi) of the columnar fragment in.
func (s *Slot) AddColsRange(cols Columns, lo, hi int) {
	for i := lo; i < hi; i++ {
		s.AddCols(cols, i)
	}
}

// AddLeaves folds one decoded tuple in: the row's leaf members per
// dimension plus its measures (the storage executors' row shape).
func (s *Slot) AddLeaves(keys []uint16, units, dollars, cost int64) {
	s.Rows++
	s.FP.Agg.AddRow(units, dollars, cost)
	if s.FP.Groups != nil {
		key := s.Base
		for _, rl := range s.PerRow {
			key += uint64(int64(keys[rl.Dim])/rl.Div) * rl.Weight
		}
		s.FP.Groups.AddRow(key, units, dollars, cost)
	}
}

// EvalMany evaluates K slots against one in-memory fragment in a single
// pass: slot k aggregates the rows selected by masks[k] (nil = every
// one of the n rows). Each slot sees its rows in ascending order —
// exactly the solo executors' iteration order — so results are
// byte-identical to K independent scans. union is caller-owned scratch
// for the masks' OR (it may be nil only when a pass over all n rows is
// unavoidable anyway, i.e. some mask is nil or K == 1).
func EvalMany(slots []*Slot, masks []*bitmap.Bitset, n int, cols Columns, union *bitmap.Bitset) {
	if len(slots) == 1 {
		if masks[0] == nil {
			slots[0].AddColsRange(cols, 0, n)
			return
		}
		masks[0].ForEachWord(func(base int, w uint64) {
			for w != 0 {
				i := base + bits.TrailingZeros64(w)
				w &= w - 1
				slots[0].AddCols(cols, i)
			}
		})
		return
	}
	anyNil := false
	for _, m := range masks {
		if m == nil {
			anyNil = true
			break
		}
	}
	if anyNil {
		// Some slot touches every row: sweep them all once and fan each
		// row out to the slots whose mask admits it.
		for i := 0; i < n; i++ {
			for k, m := range masks {
				if m == nil || m.Get(i) {
					slots[k].AddCols(cols, i)
				}
			}
		}
		return
	}
	// Sweep only the union of the masks — one pass feeds every slot.
	union.Reinit(n)
	union.CopyFrom(masks[0])
	for _, m := range masks[1:] {
		union.Or(m)
	}
	union.ForEachWord(func(base int, w uint64) {
		for w != 0 {
			i := base + bits.TrailingZeros64(w)
			w &= w - 1
			for k, m := range masks {
				if m.Get(i) {
					slots[k].AddCols(cols, i)
				}
			}
		}
	})
}
