package bitmap

import (
	"math/rand"
	"testing"

	"repro/internal/schema"
)

// Property tests for the compressed execution kernels: every operation on
// Compressed is checked against the Bitset oracle across densities
// (all-zero, all-one, sparse, dense) and run-boundary lengths
// (n % 63 ∈ {0, 1, 62}).

// opTestLens covers the group-boundary cases: n % 63 ∈ {0, 1, 62}, plus
// sub-group and multi-word sizes.
var opTestLens = []int{1, 62, 63, 64, 125, 126, 127, 189, 630, 1000, 4096}

// opTestDensities spans all-zero through all-one.
var opTestDensities = []float64{0, 0.001, 0.01, 0.5, 0.99, 1}

func densityBitset(rng *rand.Rand, n int, density float64) *Bitset {
	b := New(n)
	switch density {
	case 0:
		return b
	case 1:
		b.SetAll()
		return b
	}
	for i := 0; i < n; i++ {
		if rng.Float64() < density {
			b.Set(i)
		}
	}
	return b
}

// runnyBitset produces long runs of ones and zeros — the regime where run
// skipping matters.
func runnyBitset(rng *rand.Rand, n int) *Bitset {
	b := New(n)
	i := 0
	val := rng.Intn(2) == 1
	for i < n {
		runLen := 1 + rng.Intn(200)
		if i+runLen > n {
			runLen = n - i
		}
		if val {
			b.SetRange(i, i+runLen)
		}
		i += runLen
		val = !val
	}
	return b
}

func TestAndAllMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range opTestLens {
		for _, k := range []int{1, 2, 3, 5} {
			for trial := 0; trial < 4; trial++ {
				plain := make([]*Bitset, k)
				ops := make([]*Compressed, k)
				for i := range plain {
					if trial%2 == 0 {
						plain[i] = densityBitset(rng, n, opTestDensities[rng.Intn(len(opTestDensities))])
					} else {
						plain[i] = runnyBitset(rng, n)
					}
					ops[i] = Compress(plain[i])
				}
				want := plain[0].Clone()
				for _, p := range plain[1:] {
					want.And(p)
				}
				got := AndAll(ops...).Decompress()
				if !got.Equal(want) {
					t.Fatalf("n=%d k=%d trial=%d: AndAll diverges from Bitset oracle", n, k, trial)
				}
			}
		}
	}
}

func TestAndAllIntoReusesScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	scratch := &Compressed{}
	for trial := 0; trial < 20; trial++ {
		n := opTestLens[rng.Intn(len(opTestLens))]
		a := densityBitset(rng, n, 0.3)
		b := runnyBitset(rng, n)
		want := a.Clone()
		want.And(b)
		got := AndAllInto(scratch, Compress(a), Compress(b))
		if got != scratch {
			t.Fatalf("AndAllInto did not return its destination")
		}
		if !got.Decompress().Equal(want) {
			t.Fatalf("trial %d: AndAllInto with reused scratch diverges", trial)
		}
	}
}

func TestAndNotMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range opTestLens {
		for _, da := range opTestDensities {
			for _, db := range opTestDensities {
				pa := densityBitset(rng, n, da)
				pb := densityBitset(rng, n, db)
				want := pa.Clone()
				want.AndNot(pb)
				got := AndNot(Compress(pa), Compress(pb)).Decompress()
				if !got.Equal(want) {
					t.Fatalf("n=%d da=%g db=%g: AndNot diverges", n, da, db)
				}
			}
		}
		a := runnyBitset(rng, n)
		b := runnyBitset(rng, n)
		want := a.Clone()
		want.AndNot(b)
		if got := AndNot(Compress(a), Compress(b)).Decompress(); !got.Equal(want) {
			t.Fatalf("n=%d: AndNot diverges on runny inputs", n)
		}
	}
}

func TestNotMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, n := range opTestLens {
		for _, d := range opTestDensities {
			p := densityBitset(rng, n, d)
			want := p.Clone()
			want.Not()
			nc := Not(Compress(p))
			if got := nc.Decompress(); !got.Equal(want) {
				t.Fatalf("n=%d d=%g: Not diverges", n, d)
			}
			if nc.OnesCount() != want.OnesCount() {
				t.Fatalf("n=%d d=%g: Not OnesCount %d != %d (padding bits leaked?)",
					n, d, nc.OnesCount(), want.OnesCount())
			}
		}
	}
}

func TestOrMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for _, n := range opTestLens {
		for _, da := range opTestDensities {
			for _, db := range opTestDensities {
				pa := densityBitset(rng, n, da)
				pb := densityBitset(rng, n, db)
				want := pa.Clone()
				want.Or(pb)
				got := Or(Compress(pa), Compress(pb)).Decompress()
				if !got.Equal(want) {
					t.Fatalf("n=%d da=%g db=%g: Or diverges", n, da, db)
				}
			}
		}
	}
}

func TestForEachAndRangesMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for _, n := range opTestLens {
		for _, d := range opTestDensities {
			for _, runny := range []bool{false, true} {
				var p *Bitset
				if runny {
					p = runnyBitset(rng, n)
				} else {
					p = densityBitset(rng, n, d)
				}
				c := Compress(p)
				var want, got []int
				p.ForEach(func(i int) { want = append(want, i) })
				c.ForEach(func(i int) { got = append(got, i) })
				if len(want) != len(got) {
					t.Fatalf("n=%d d=%g runny=%v: ForEach yields %d bits, oracle %d", n, d, runny, len(got), len(want))
				}
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("n=%d d=%g runny=%v: ForEach bit %d = %d, oracle %d", n, d, runny, i, got[i], want[i])
					}
				}
				// Ranges must be maximal, ascending, non-adjacent.
				prevHi := -1
				total := 0
				c.ForEachRange(func(lo, hi int) {
					if lo >= hi || lo <= prevHi {
						t.Fatalf("n=%d: bad range [%d,%d) after hi=%d", n, lo, hi, prevHi)
					}
					if lo > 0 && p.Get(lo-1) || hi < n && p.Get(hi) {
						t.Fatalf("n=%d: range [%d,%d) not maximal", n, lo, hi)
					}
					for i := lo; i < hi; i++ {
						if !p.Get(i) {
							t.Fatalf("n=%d: range [%d,%d) covers clear bit %d", n, lo, hi, i)
						}
					}
					prevHi = hi
					total += hi - lo
				})
				if total != p.OnesCount() {
					t.Fatalf("n=%d: ranges cover %d bits, oracle %d", n, total, p.OnesCount())
				}
			}
		}
	}
}

func TestCompressedOnes(t *testing.T) {
	for _, n := range opTestLens {
		c := CompressedOnes(n)
		if c.OnesCount() != n {
			t.Fatalf("n=%d: CompressedOnes counts %d", n, c.OnesCount())
		}
		all := New(n)
		all.SetAll()
		if !c.Decompress().Equal(all) {
			t.Fatalf("n=%d: CompressedOnes decompresses wrong", n)
		}
	}
}

func TestCompressedAny(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, n := range opTestLens {
		if Compress(New(n)).Any() {
			t.Fatalf("n=%d: empty bitmap reports Any", n)
		}
		p := New(n)
		p.Set(rng.Intn(n))
		if !Compress(p).Any() {
			t.Fatalf("n=%d: one-bit bitmap reports !Any", n)
		}
	}
}

func TestDecompressIntoReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	dst := New(0)
	for trial := 0; trial < 30; trial++ {
		n := opTestLens[rng.Intn(len(opTestLens))]
		p := runnyBitset(rng, n)
		if got := Compress(p).DecompressInto(dst); !got.Equal(p) {
			t.Fatalf("trial %d n=%d: DecompressInto diverges", trial, n)
		}
	}
}

func TestCompressedIndexSelectOperands(t *testing.T) {
	// The compressed encoded index must select exactly the rows the
	// materialised EncodedIndex selects, via a single AndAll.
	dim := schema.Tiny().Dim(schema.DimProduct)
	layout := NewLayout(dim, nil)
	values := buildRandomRows(dim, 700, 21)
	e := NewEncodedIndex(layout, values)
	c := CompressEncodedIndex(e)
	var ops []*Compressed
	for level := 0; level < len(layout.fieldBits); level++ {
		for m := 0; m < layout.dim.Levels[level].Card; m++ {
			want, wantNB := e.Select(level, m)
			ops = ops[:0]
			var nb int
			ops, nb = c.SelectOperands(ops, -1, level, m)
			if nb != wantNB {
				t.Fatalf("level=%d m=%d: %d bitmaps evaluated, want %d", level, m, nb, wantNB)
			}
			got := AndAll(ops...).Decompress()
			if !got.Equal(want) {
				t.Fatalf("level=%d m=%d: compressed selection diverges", level, m)
			}
		}
	}
}

func TestCompressedSimpleIndexMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	const card, rows = 7, 500
	vals := make([]int32, rows)
	for i := range vals {
		vals[i] = int32(rng.Intn(card))
	}
	s := NewSimpleIndex(card, vals)
	c := CompressSimpleIndex(s)
	if c.Card() != card || c.Rows() != rows {
		t.Fatalf("shape %d/%d, want %d/%d", c.Card(), c.Rows(), card, rows)
	}
	for m := 0; m < card; m++ {
		if !c.Bitmap(m).Decompress().Equal(s.Bitmap(m)) {
			t.Fatalf("member %d: compressed simple index diverges", m)
		}
	}
}

// FuzzCompressedOps cross-checks the compressed kernels against the Bitset
// oracle on fuzzer-chosen lengths and bit patterns.
func FuzzCompressedOps(f *testing.F) {
	f.Add(uint16(63), uint64(0xdeadbeef), uint64(0x12345))
	f.Add(uint16(1), uint64(1), uint64(0))
	f.Add(uint16(126), ^uint64(0), uint64(0))
	f.Add(uint16(190), uint64(0xaaaaaaaaaaaaaaaa), uint64(0x5555555555555555))
	f.Fuzz(func(t *testing.T, nRaw uint16, seedA, seedB uint64) {
		n := int(nRaw)%2048 + 1
		rngA := rand.New(rand.NewSource(int64(seedA)))
		rngB := rand.New(rand.NewSource(int64(seedB)))
		a := runnyBitset(rngA, n)
		b := densityBitset(rngB, n, float64(seedB%100)/99)
		ca, cb := Compress(a), Compress(b)
		andWant := a.Clone()
		andWant.And(b)
		if !AndAll(ca, cb).Decompress().Equal(andWant) {
			t.Fatal("AndAll diverges")
		}
		notWant := a.Clone()
		notWant.Not()
		if !Not(ca).Decompress().Equal(notWant) {
			t.Fatal("Not diverges")
		}
		anWant := a.Clone()
		anWant.AndNot(b)
		if !AndNot(ca, cb).Decompress().Equal(anWant) {
			t.Fatal("AndNot diverges")
		}
		count := 0
		ca.ForEachRange(func(lo, hi int) { count += hi - lo })
		if count != a.OnesCount() {
			t.Fatalf("ForEachRange covers %d bits, oracle %d", count, a.OnesCount())
		}
	})
}
