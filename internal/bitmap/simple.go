package bitmap

import "fmt"

// SimpleIndex is a standard bitmap (join) index on one hierarchy level of a
// dimension: one bitmap per possible member value, each with one bit per
// fact row (Section 3.2). Suitable for low-cardinality attributes (TIME,
// CHANNEL in the paper).
type SimpleIndex struct {
	card int
	rows int
	maps []*Bitset
}

// NewSimpleIndex builds a simple bitmap index over rows, where values[i] is
// the member (0..card-1) row i refers to at the indexed level.
func NewSimpleIndex(card int, values []int32) *SimpleIndex {
	idx := &SimpleIndex{card: card, rows: len(values), maps: make([]*Bitset, card)}
	for m := range idx.maps {
		idx.maps[m] = New(len(values))
	}
	for i, v := range values {
		if int(v) < 0 || int(v) >= card {
			panic(fmt.Sprintf("bitmap: value %d out of domain 0..%d", v, card-1))
		}
		idx.maps[v].Set(i)
	}
	return idx
}

// Card returns the number of bitmaps (the attribute's cardinality).
func (s *SimpleIndex) Card() int { return s.card }

// Rows returns the number of fact rows covered.
func (s *SimpleIndex) Rows() int { return s.rows }

// NumBitmaps returns the number of bitmaps materialised, which for a simple
// index equals the cardinality.
func (s *SimpleIndex) NumBitmaps() int { return s.card }

// Bitmap returns the bitmap for member m. The caller must not modify it.
func (s *SimpleIndex) Bitmap(m int) *Bitset { return s.maps[m] }

// Select returns a fresh bitset marking all rows whose value equals m.
// Exactly one bitmap is read.
func (s *SimpleIndex) Select(m int) *Bitset { return s.maps[m].Clone() }

// SelectInto is Select copying into dst, reusing dst's storage.
func (s *SimpleIndex) SelectInto(dst *Bitset, m int) { dst.CopyFrom(s.maps[m]) }

// SelectRange returns a fresh bitset marking all rows whose value lies in
// [lo, hi), OR-ing hi-lo bitmaps.
func (s *SimpleIndex) SelectRange(lo, hi int) *Bitset {
	out := New(s.rows)
	for m := lo; m < hi; m++ {
		out.Or(s.maps[m])
	}
	return out
}

// BitmapsRead returns how many bitmaps a point selection must access: one.
func (s *SimpleIndex) BitmapsRead() int { return 1 }

// Bytes returns the total storage of all bitmaps in bytes.
func (s *SimpleIndex) Bytes() int {
	t := 0
	for _, m := range s.maps {
		t += m.Bytes()
	}
	return t
}
