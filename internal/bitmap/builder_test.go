package bitmap

import (
	"math/rand"
	"testing"
)

// oracle compresses the first n bits of pattern via the batch encoder.
func oracle(pattern []bool) *Compressed {
	bs := New(len(pattern))
	for i, bit := range pattern {
		if bit {
			bs.Set(i)
		}
	}
	return Compress(bs)
}

func sameEncoding(t *testing.T, got, want *Compressed) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("length: got %d want %d", got.Len(), want.Len())
	}
	gw, ww := got.Words(), want.Words()
	if len(gw) != len(ww) {
		t.Fatalf("word count: got %d want %d (got %x want %x)", len(gw), len(ww), gw, ww)
	}
	for i := range gw {
		if gw[i] != ww[i] {
			t.Fatalf("word %d: got %#x want %#x", i, gw[i], ww[i])
		}
	}
}

func randomPattern(rng *rand.Rand, n int) []bool {
	p := make([]bool, n)
	i := 0
	for i < n {
		// Mix long uniform runs with noisy stretches so fills, literals
		// and partial groups all occur.
		runLen := 1 + rng.Intn(200)
		if runLen > n-i {
			runLen = n - i
		}
		switch rng.Intn(3) {
		case 0:
			for j := 0; j < runLen; j++ {
				p[i+j] = true
			}
		case 1:
			// leave zeros
		default:
			for j := 0; j < runLen; j++ {
				p[i+j] = rng.Intn(2) == 1
			}
		}
		i += runLen
	}
	return p
}

func TestBuilderMatchesCompress(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	lengths := []int{0, 1, 62, 63, 64, 125, 126, 127, 200, 630, 1000, 4096}
	for _, n := range lengths {
		p := randomPattern(rng, n)
		b := NewBuilder()
		for _, bit := range p {
			b.Append(bit)
		}
		sameEncoding(t, b.Finish(), oracle(p))
	}
}

func TestBuilderUniformRuns(t *testing.T) {
	for _, n := range []int{1, 63, 64, 189, 1000} {
		for _, bit := range []bool{false, true} {
			p := make([]bool, n)
			for i := range p {
				p[i] = bit
			}
			b := NewBuilder()
			b.AppendRun(bit, n)
			sameEncoding(t, b.Finish(), oracle(p))
		}
	}
}

func TestBuilderFromEverySplit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := randomPattern(rng, 400)
	want := oracle(p)
	for split := 0; split <= len(p); split++ {
		prefix := oracle(p[:split])
		b := NewBuilderFrom(prefix)
		if b.Len() != split {
			t.Fatalf("split %d: resumed length %d", split, b.Len())
		}
		for _, bit := range p[split:] {
			b.Append(bit)
		}
		got := b.Finish()
		if gw, ww := got.Words(), want.Words(); len(gw) != len(ww) {
			t.Fatalf("split %d: word count %d want %d", split, len(gw), len(ww))
		}
		sameEncoding(t, got, want)
	}
}

func TestBuilderFromLongFills(t *testing.T) {
	// A prefix ending inside a long fill must keep merging the run across
	// the resume boundary.
	n := 63 * 100
	p := make([]bool, n)
	for i := n / 2; i < n; i++ {
		p[i] = true
	}
	for _, split := range []int{1, 62, 63, 64, n / 2, n/2 + 1, n - 63, n - 1, n} {
		prefix := oracle(p[:split])
		b := NewBuilderFrom(prefix)
		for _, bit := range p[split:] {
			b.Append(bit)
		}
		sameEncoding(t, b.Finish(), oracle(p))
	}
}

func TestBuilderFinishIsSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randomPattern(rng, 500)
	b := NewBuilder()
	for i, bit := range p {
		b.Append(bit)
		if i%97 == 0 {
			sameEncoding(t, b.Finish(), oracle(p[:i+1]))
		}
	}
	sameEncoding(t, b.Finish(), oracle(p))
	// A snapshot taken earlier must be unaffected by later appends.
	mid := b.Finish()
	b.AppendRun(true, 200)
	sameEncoding(t, mid, oracle(p))
}
