package bitmap

// Word-aligned hybrid (WAH) compression for bitsets. The paper notes that
// the storage overhead of bitmap indices "may be reduced by compressing
// the bitmaps" (Section 3.2); WAH is the classic scheme that keeps
// bitwise operations cheap by aligning runs to word boundaries.
//
// Layout: bits are grouped into 63-bit groups. A literal word has MSB 0
// and carries one group in its low 63 bits. A fill word has MSB 1, the
// fill bit in bit 62, and the run length (in groups) in the low 62 bits.

const (
	groupBits = 63
	fillFlag  = uint64(1) << 63
	fillOne   = uint64(1) << 62
	maxRun    = fillOne - 1
	groupMask = (uint64(1) << groupBits) - 1
)

// Compressed is a WAH-compressed immutable bitmap.
type Compressed struct {
	n     int // length in bits
	words []uint64
}

// Len returns the number of bits.
func (c *Compressed) Len() int { return c.n }

// Bytes returns the compressed storage size in bytes.
func (c *Compressed) Bytes() int { return len(c.words) * 8 }

// Words exposes the raw encoded words for serialisation.
func (c *Compressed) Words() []uint64 { return c.words }

// FromWords reconstructs a compressed bitmap from serialised words.
func FromWords(nBits int, words []uint64) *Compressed {
	return &Compressed{n: nBits, words: words}
}

// group extracts the g-th 63-bit group of b, zero-padded at the tail.
func group(b *Bitset, g int) uint64 {
	var v uint64
	base := g * groupBits
	// Collect from the two underlying 64-bit words the group straddles.
	w0 := base / wordBits
	off := base % wordBits
	if w0 < len(b.words) {
		v = b.words[w0] >> uint(off)
		if off > 0 && w0+1 < len(b.words) {
			v |= b.words[w0+1] << uint(wordBits-off)
		}
	}
	return v & groupMask
}

// Compress encodes a bitset.
func Compress(b *Bitset) *Compressed {
	c := &Compressed{n: b.Len()}
	groups := (b.Len() + groupBits - 1) / groupBits
	// Zero-pad semantics: the final partial group is stored as-is.
	var runVal uint64
	var runLen uint64
	flush := func() {
		if runLen == 0 {
			return
		}
		w := fillFlag | runLen
		if runVal != 0 {
			w |= fillOne
		}
		c.words = append(c.words, w)
		runLen = 0
	}
	for g := 0; g < groups; g++ {
		v := group(b, g)
		if v == 0 || v == groupMask {
			bit := uint64(0)
			if v == groupMask {
				bit = 1
			}
			if runLen > 0 && ((runVal == 1) != (bit == 1) || runLen == maxRun) {
				flush()
			}
			runVal = bit
			runLen++
			continue
		}
		flush()
		c.words = append(c.words, v)
	}
	flush()
	return c
}

// Decompress reconstructs the bitset.
func (c *Compressed) Decompress() *Bitset {
	out := New(c.n)
	g := 0
	emit := func(v uint64) {
		base := g * groupBits
		w0 := base / wordBits
		off := base % wordBits
		if w0 < len(out.words) {
			out.words[w0] |= v << uint(off)
			if off > 0 && w0+1 < len(out.words) {
				out.words[w0+1] |= v >> uint(wordBits-off)
			}
		}
		g++
	}
	for _, w := range c.words {
		if w&fillFlag == 0 {
			emit(w)
			continue
		}
		v := uint64(0)
		if w&fillOne != 0 {
			v = groupMask
		}
		for i := uint64(0); i < w&maxRun; i++ {
			emit(v)
		}
	}
	out.trim()
	return out
}

// OnesCount returns the number of set bits without decompressing.
func (c *Compressed) OnesCount() int {
	count := 0
	g := 0
	groups := (c.n + groupBits - 1) / groupBits
	lastBits := c.n - (groups-1)*groupBits
	for _, w := range c.words {
		if w&fillFlag == 0 {
			count += popcount(w & groupMask)
			g++
			continue
		}
		run := int(w & maxRun)
		if w&fillOne != 0 {
			// Full groups of ones; the final group of the bitmap may be
			// partial.
			for i := 0; i < run; i++ {
				if g == groups-1 {
					count += lastBits
				} else {
					count += groupBits
				}
				g++
			}
		} else {
			g += run
		}
	}
	return count
}

func popcount(v uint64) int {
	c := 0
	for v != 0 {
		v &= v - 1
		c++
	}
	return c
}

// wahReader iterates the groups of a compressed bitmap, merging runs.
type wahReader struct {
	words []uint64
	pos   int
	// pending run
	runLeft uint64
	runVal  uint64
}

// next returns the next 63-bit group.
func (r *wahReader) next() uint64 {
	if r.runLeft > 0 {
		r.runLeft--
		return r.runVal
	}
	w := r.words[r.pos]
	r.pos++
	if w&fillFlag == 0 {
		return w & groupMask
	}
	v := uint64(0)
	if w&fillOne != 0 {
		v = groupMask
	}
	r.runLeft = w&maxRun - 1
	r.runVal = v
	return v
}

// And intersects two compressed bitmaps of equal length, producing a
// compressed result without materialising either side.
func And(a, b *Compressed) *Compressed {
	if a.n != b.n {
		panic("bitmap: compressed length mismatch")
	}
	groups := (a.n + groupBits - 1) / groupBits
	ra := wahReader{words: a.words}
	rb := wahReader{words: b.words}
	out := &Compressed{n: a.n}
	var runVal uint64
	var runLen uint64
	flush := func() {
		if runLen == 0 {
			return
		}
		w := fillFlag | runLen
		if runVal != 0 {
			w |= fillOne
		}
		out.words = append(out.words, w)
		runLen = 0
	}
	for g := 0; g < groups; g++ {
		v := ra.next() & rb.next()
		if v == 0 || v == groupMask {
			bit := uint64(0)
			if v == groupMask {
				bit = 1
			}
			if runLen > 0 && ((runVal == 1) != (bit == 1) || runLen == maxRun) {
				flush()
			}
			runVal = bit
			runLen++
			continue
		}
		flush()
		out.words = append(out.words, v)
	}
	flush()
	return out
}

// Or unions two compressed bitmaps of equal length.
func Or(a, b *Compressed) *Compressed {
	if a.n != b.n {
		panic("bitmap: compressed length mismatch")
	}
	groups := (a.n + groupBits - 1) / groupBits
	ra := wahReader{words: a.words}
	rb := wahReader{words: b.words}
	out := &Compressed{n: a.n}
	var runVal uint64
	var runLen uint64
	flush := func() {
		if runLen == 0 {
			return
		}
		w := fillFlag | runLen
		if runVal != 0 {
			w |= fillOne
		}
		out.words = append(out.words, w)
		runLen = 0
	}
	for g := 0; g < groups; g++ {
		v := ra.next() | rb.next()
		if v == 0 || v == groupMask {
			bit := uint64(0)
			if v == groupMask {
				bit = 1
			}
			if runLen > 0 && ((runVal == 1) != (bit == 1) || runLen == maxRun) {
				flush()
			}
			runVal = bit
			runLen++
			continue
		}
		flush()
		out.words = append(out.words, v)
	}
	flush()
	return out
}
