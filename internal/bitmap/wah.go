package bitmap

// Word-aligned hybrid (WAH) compression for bitsets. The paper notes that
// the storage overhead of bitmap indices "may be reduced by compressing
// the bitmaps" (Section 3.2); WAH is the classic scheme that keeps
// bitwise operations cheap by aligning runs to word boundaries.
//
// Layout: bits are grouped into 63-bit groups. A literal word has MSB 0
// and carries one group in its low 63 bits. A fill word has MSB 1, the
// fill bit in bit 62, and the run length (in groups) in the low 62 bits.
//
// Beyond the round-trip codec this file implements the compressed
// execution kernels of the star query fast path: logical operations
// (AndAll, AndNot, Not) that run directly on the encoded words with
// run skipping — a zero-fill run in any operand advances every operand
// by the whole run without decoding a single group — and streaming
// iterators (ForEach, ForEachRange) so hit positions flow out of a
// compressed result without ever materialising a Bitset.

import "math/bits"

const (
	groupBits = 63
	fillFlag  = uint64(1) << 63
	fillOne   = uint64(1) << 62
	maxRun    = fillOne - 1
	groupMask = (uint64(1) << groupBits) - 1
)

// Compressed is a WAH-compressed immutable bitmap.
type Compressed struct {
	n     int // length in bits
	words []uint64
}

// Len returns the number of bits.
func (c *Compressed) Len() int { return c.n }

// Bytes returns the compressed storage size in bytes.
func (c *Compressed) Bytes() int { return len(c.words) * 8 }

// Words exposes the raw encoded words for serialisation.
func (c *Compressed) Words() []uint64 { return c.words }

// FromWords reconstructs a compressed bitmap from serialised words.
func FromWords(nBits int, words []uint64) *Compressed {
	return &Compressed{n: nBits, words: words}
}

// ResetWords reinitialises c to an n-bit bitmap backed by k encoded words,
// reusing the existing allocation where possible, and returns the words
// slice for the caller to fill — the deserialisation counterpart of Words
// for allocation-free re-reads.
func (c *Compressed) ResetWords(n, k int) []uint64 {
	c.n = n
	if cap(c.words) < k {
		c.words = make([]uint64, k)
	} else {
		c.words = c.words[:k]
	}
	return c.words
}

// groups returns the number of 63-bit groups covering c.
func (c *Compressed) groups() int { return (c.n + groupBits - 1) / groupBits }

// group extracts the g-th 63-bit group of b, zero-padded at the tail.
func group(b *Bitset, g int) uint64 {
	var v uint64
	base := g * groupBits
	// Collect from the two underlying 64-bit words the group straddles.
	w0 := base / wordBits
	off := base % wordBits
	if w0 < len(b.words) {
		v = b.words[w0] >> uint(off)
		if off > 0 && w0+1 < len(b.words) {
			v |= b.words[w0+1] << uint(wordBits-off)
		}
	}
	return v & groupMask
}

// appender accumulates 63-bit groups into canonical WAH words, merging
// adjacent same-valued runs and converting all-zero / all-one literals
// into fills. All compressed producers funnel through it so that equal
// bitmaps have equal encodings regardless of which operation built them.
type appender struct {
	words  []uint64
	runVal uint64 // 0 or 1
	runLen uint64
}

func (a *appender) flush() {
	if a.runLen == 0 {
		return
	}
	w := fillFlag | a.runLen
	if a.runVal != 0 {
		w |= fillOne
	}
	a.words = append(a.words, w)
	a.runLen = 0
}

// run appends n groups of the given fill bit (0 or 1).
func (a *appender) run(bit, n uint64) {
	if n == 0 {
		return
	}
	if a.runLen > 0 && a.runVal != bit {
		a.flush()
	}
	a.runVal = bit
	for n > 0 {
		take := maxRun - a.runLen
		if take > n {
			take = n
		}
		a.runLen += take
		n -= take
		if a.runLen == maxRun && n > 0 {
			a.flush()
		}
	}
}

// group appends one 63-bit group, run-encoding it when uniform.
func (a *appender) group(v uint64) {
	switch v {
	case 0:
		a.run(0, 1)
	case groupMask:
		a.run(1, 1)
	default:
		a.flush()
		a.words = append(a.words, v)
	}
}

// Compress encodes a bitset.
func Compress(b *Bitset) *Compressed {
	c := &Compressed{n: b.Len()}
	groups := (b.Len() + groupBits - 1) / groupBits
	// Zero-pad semantics: the final partial group is stored as-is.
	var app appender
	for g := 0; g < groups; g++ {
		app.group(group(b, g))
	}
	app.flush()
	c.words = app.words
	return c
}

// CompressedOnes returns the compressed all-ones bitmap of n bits — the
// neutral element for AndNot chains when a selection has no positive
// operand.
func CompressedOnes(n int) *Compressed {
	return CompressedOnesInto(nil, n)
}

// CompressedOnesInto is CompressedOnes writing into out (allocated when
// nil), reusing its storage.
func CompressedOnesInto(out *Compressed, n int) *Compressed {
	if out == nil {
		out = &Compressed{}
	}
	out.n = n
	groups := (n + groupBits - 1) / groupBits
	r := n % groupBits
	app := appender{words: out.words[:0]}
	if r == 0 {
		app.run(1, uint64(groups))
	} else {
		app.run(1, uint64(groups-1))
		app.group(uint64(1)<<uint(r) - 1)
	}
	app.flush()
	out.words = app.words
	return out
}

// Decompress reconstructs the bitset.
func (c *Compressed) Decompress() *Bitset {
	return c.DecompressInto(New(c.n))
}

// DecompressInto reconstructs the bitset into dst, reusing its storage,
// and returns dst. One-fill runs are written word-wise via SetRange
// rather than group by group.
func (c *Compressed) DecompressInto(dst *Bitset) *Bitset {
	dst.Reinit(c.n)
	g := 0
	for _, w := range c.words {
		if w&fillFlag == 0 {
			base := g * groupBits
			w0 := base / wordBits
			off := base % wordBits
			if w0 < len(dst.words) {
				dst.words[w0] |= w << uint(off)
				if off > 0 && w0+1 < len(dst.words) {
					dst.words[w0+1] |= (w & groupMask) >> uint(wordBits-off)
				}
			}
			g++
			continue
		}
		run := int(w & maxRun)
		if w&fillOne != 0 {
			lo := g * groupBits
			hi := (g + run) * groupBits
			if hi > c.n {
				hi = c.n
			}
			dst.SetRange(lo, hi)
		}
		g += run
	}
	dst.trim()
	return dst
}

// OnesCount returns the number of set bits without decompressing.
func (c *Compressed) OnesCount() int {
	count := 0
	g := 0
	groups := c.groups()
	lastBits := c.n - (groups-1)*groupBits
	for _, w := range c.words {
		if w&fillFlag == 0 {
			count += bits.OnesCount64(w & groupMask)
			g++
			continue
		}
		run := int(w & maxRun)
		if w&fillOne != 0 {
			// Full groups of ones; the final group of the bitmap may be
			// partial.
			count += run * groupBits
			if g+run == groups {
				count -= groupBits - lastBits
			}
		}
		g += run
	}
	return count
}

// Any reports whether at least one bit is set, without decompressing.
func (c *Compressed) Any() bool {
	for _, w := range c.words {
		if w&fillFlag == 0 {
			if w&groupMask != 0 {
				return true
			}
		} else if w&fillOne != 0 && w&maxRun > 0 {
			return true
		}
	}
	return false
}

// ForEachRange calls fn with every maximal run [lo, hi) of consecutive set
// bits, in ascending order, streaming directly over the encoded words:
// one-fill runs yield without decoding, literals are scanned with bit
// tricks. It is the aggregation iterator of the compressed query path.
func (c *Compressed) ForEachRange(fn func(lo, hi int)) {
	g := 0
	open := -1 // start of the in-progress run of ones, or -1
	for _, w := range c.words {
		if w&fillFlag != 0 {
			run := int(w & maxRun)
			if w&fillOne != 0 {
				if open < 0 {
					open = g * groupBits
				}
			} else if open >= 0 {
				fn(open, g*groupBits)
				open = -1
			}
			g += run
			continue
		}
		base := g * groupBits
		g++
		v := w & groupMask
		if v == 0 {
			if open >= 0 {
				fn(open, base)
				open = -1
			}
			continue
		}
		off := 0
		for v != 0 {
			if tz := bits.TrailingZeros64(v); tz > 0 {
				if open >= 0 {
					fn(open, base+off)
					open = -1
				}
				v >>= uint(tz)
				off += tz
			}
			ones := bits.TrailingZeros64(^v)
			if open < 0 {
				open = base + off
			}
			v >>= uint(ones)
			off += ones
		}
		// Trailing zeros inside the group close the run.
		if off < groupBits && open >= 0 {
			fn(open, base+off)
			open = -1
		}
	}
	if open >= 0 {
		hi := c.n
		if open < hi {
			fn(open, hi)
		}
	}
}

// ForEach calls fn with the index of every set bit, in ascending order,
// without materialising a Bitset.
func (c *Compressed) ForEach(fn func(i int)) {
	c.ForEachRange(func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// cursor walks the groups of a compressed bitmap with O(1) run skipping:
// skip(n) advances n groups touching only the fill words they live in.
type cursor struct {
	words []uint64
	pos   int
	fill  bool   // current item is a fill run
	val   uint64 // literal group, or fill value (0 / groupMask)
	left  uint64 // groups remaining in the current item (1 for a literal)
}

// load ensures the cursor holds a current item.
func (cu *cursor) load() {
	for cu.left == 0 {
		w := cu.words[cu.pos]
		cu.pos++
		if w&fillFlag == 0 {
			cu.fill, cu.val, cu.left = false, w&groupMask, 1
			return
		}
		cu.fill = true
		cu.val = 0
		if w&fillOne != 0 {
			cu.val = groupMask
		}
		cu.left = w & maxRun
	}
}

// skip advances n groups.
func (cu *cursor) skip(n uint64) {
	for n > 0 {
		cu.load()
		t := cu.left
		if t > n {
			t = n
		}
		cu.left -= t
		n -= t
	}
}

// take consumes and returns one group.
func (cu *cursor) take() uint64 {
	cu.load()
	cu.left--
	return cu.val
}

// And intersects two compressed bitmaps of equal length, producing a
// compressed result without materialising either side.
func And(a, b *Compressed) *Compressed {
	return AndAll(a, b)
}

// AndAll intersects any number of compressed bitmaps of equal length in a
// single k-way pass. When any operand presents a zero-fill run the result
// is zero for the run's whole extent, so every operand skips that many
// groups without decoding them — the run-skipping core of the compressed
// execution path.
func AndAll(ops ...*Compressed) *Compressed {
	return AndAllInto(nil, ops...)
}

// AndAllInto is AndAll writing the result into out (allocated when nil),
// reusing out's storage. out must not alias any operand.
func AndAllInto(out *Compressed, ops ...*Compressed) *Compressed {
	if len(ops) == 0 {
		panic("bitmap: AndAll of no operands")
	}
	n := ops[0].n
	for _, o := range ops[1:] {
		if o.n != n {
			panic("bitmap: compressed length mismatch")
		}
	}
	if out == nil {
		out = &Compressed{}
	}
	out.n = n
	// Cursors live on the stack for realistic operand counts (every
	// surviving bit of every dimension is still well under 32), keeping
	// the per-fragment hot loop allocation-free.
	var curArr [32]cursor
	var cur []cursor
	if len(ops) <= len(curArr) {
		cur = curArr[:len(ops)]
	} else {
		cur = make([]cursor, len(ops))
	}
	for i, o := range ops {
		cur[i].words = o.words
	}
	app := appender{words: out.words[:0]}
	total := ops[0].groups()
	g := 0
	for g < total {
		rem := uint64(total - g)
		var maxZero uint64
		minOne := rem
		allOnes := true
		for i := range cur {
			cu := &cur[i]
			cu.load()
			switch {
			case cu.fill && cu.val == 0:
				allOnes = false
				if cu.left > maxZero {
					maxZero = cu.left
				}
			case cu.fill: // one-fill
				if cu.left < minOne {
					minOne = cu.left
				}
			default:
				allOnes = false
			}
		}
		if maxZero > 0 {
			// Result is zero for the longest zero run in view: skip it in
			// every operand.
			if maxZero > rem {
				maxZero = rem
			}
			app.run(0, maxZero)
			for i := range cur {
				cur[i].skip(maxZero)
			}
			g += int(maxZero)
			continue
		}
		if allOnes {
			// Every operand is inside a one-fill: emit the shortest.
			app.run(1, minOne)
			for i := range cur {
				cur[i].skip(minOne)
			}
			g += int(minOne)
			continue
		}
		// At least one literal, no zero fill: decode this one group.
		v := groupMask
		for i := range cur {
			v &= cur[i].take()
		}
		app.group(v)
		g++
	}
	app.flush()
	out.words = app.words
	return out
}

// AndNot returns a AND NOT b over compressed operands of equal length.
func AndNot(a, b *Compressed) *Compressed {
	return AndNotInto(nil, a, b)
}

// AndNotInto is AndNot writing into out (allocated when nil), reusing its
// storage. out must not alias a or b. Zero runs of a and one runs of b
// skip whole extents without decoding; one runs of a over zero runs of b
// emit fills directly.
func AndNotInto(out *Compressed, a, b *Compressed) *Compressed {
	if a.n != b.n {
		panic("bitmap: compressed length mismatch")
	}
	if out == nil {
		out = &Compressed{}
	}
	out.n = a.n
	ca := cursor{words: a.words}
	cb := cursor{words: b.words}
	app := appender{words: out.words[:0]}
	total := a.groups()
	g := 0
	for g < total {
		rem := uint64(total - g)
		ca.load()
		cb.load()
		// a&^b is zero wherever a is zero or b is one.
		var zskip uint64
		if ca.fill && ca.val == 0 && ca.left > zskip {
			zskip = ca.left
		}
		if cb.fill && cb.val == groupMask && cb.left > zskip {
			zskip = cb.left
		}
		if zskip > 0 {
			if zskip > rem {
				zskip = rem
			}
			app.run(0, zskip)
			ca.skip(zskip)
			cb.skip(zskip)
			g += int(zskip)
			continue
		}
		if ca.fill && ca.val == groupMask && cb.fill && cb.val == 0 {
			n := ca.left
			if cb.left < n {
				n = cb.left
			}
			app.run(1, n)
			ca.skip(n)
			cb.skip(n)
			g += int(n)
			continue
		}
		// The zero padding of a's final group keeps the result's padding
		// zero without masking.
		app.group(ca.take() &^ cb.take())
		g++
	}
	app.flush()
	out.words = app.words
	return out
}

// Not returns the complement of c as a compressed bitmap: fills flip
// wholesale, literals flip word-wise, and the final partial group is
// masked so padding bits stay zero.
func Not(c *Compressed) *Compressed {
	out := &Compressed{n: c.n}
	total := c.groups()
	lastMask := groupMask
	if r := c.n % groupBits; r != 0 {
		lastMask = uint64(1)<<uint(r) - 1
	}
	cu := cursor{words: c.words}
	var app appender
	g := 0
	for g < total {
		cu.load()
		if cu.fill {
			cnt := cu.left
			if rem := uint64(total - g); cnt > rem {
				cnt = rem
			}
			flip := uint64(0)
			if cu.val == 0 {
				flip = 1
			}
			if g+int(cnt) == total && lastMask != groupMask {
				// The run reaches the padded final group: emit it masked.
				app.run(flip, cnt-1)
				if cu.val == 0 {
					app.group(lastMask)
				} else {
					app.group(0)
				}
			} else {
				app.run(flip, cnt)
			}
			cu.skip(cnt)
			g += int(cnt)
			continue
		}
		v := cu.take() ^ groupMask
		if g == total-1 {
			v &= lastMask
		}
		app.group(v)
		g++
	}
	app.flush()
	out.words = app.words
	return out
}

// Or unions two compressed bitmaps of equal length. Runs are processed
// wholesale: a one-fill in either operand forces ones, twin zero-fills
// skip together.
func Or(a, b *Compressed) *Compressed {
	if a.n != b.n {
		panic("bitmap: compressed length mismatch")
	}
	out := &Compressed{n: a.n}
	ca := cursor{words: a.words}
	cb := cursor{words: b.words}
	var app appender
	total := a.groups()
	g := 0
	for g < total {
		rem := uint64(total - g)
		ca.load()
		cb.load()
		var oskip uint64
		if ca.fill && ca.val == groupMask && ca.left > oskip {
			oskip = ca.left
		}
		if cb.fill && cb.val == groupMask && cb.left > oskip {
			oskip = cb.left
		}
		if oskip > 0 {
			if oskip > rem {
				oskip = rem
			}
			app.run(1, oskip)
			ca.skip(oskip)
			cb.skip(oskip)
			g += int(oskip)
			continue
		}
		if ca.fill && ca.val == 0 && cb.fill && cb.val == 0 {
			n := ca.left
			if cb.left < n {
				n = cb.left
			}
			app.run(0, n)
			ca.skip(n)
			cb.skip(n)
			g += int(n)
			continue
		}
		app.group(ca.take() | cb.take())
		g++
	}
	app.flush()
	out.words = app.words
	return out
}
