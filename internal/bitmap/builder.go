package bitmap

// Builder accumulates bits into a WAH-compressed bitmap one append at a
// time — the incremental producer behind delta bitmap fragments. Unlike
// Compress it never materialises a Bitset, and unlike the operator
// kernels it can resume from an already-compressed fragment
// (NewBuilderFrom) without rewriting it: the encoded words are replayed
// run-wholesale through the canonical appender (O(words), not O(bits))
// and the trailing partial group is popped back into the bit buffer so
// subsequent appends keep merging runs across the old/new boundary.
//
// Because every group funnels through the same appender as Compress,
// Finish produces bit-for-bit the encoding Compress would give for the
// equivalent bitset — the equality the delta equivalence oracle relies
// on.
type Builder struct {
	app    appender
	n      int    // bits appended so far
	cur    uint64 // pending partial group, low curLen bits valid
	curLen int
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{}
}

// NewBuilderFrom returns a builder whose content equals c, ready to
// append past c's final bit. c is not modified and may keep serving
// reads.
func NewBuilderFrom(c *Compressed) *Builder {
	b := &Builder{n: c.Len()}
	full := c.n / groupBits // complete groups; a partial tail re-opens
	r := c.n % groupBits
	total := c.groups()
	cu := cursor{words: c.words}
	g := 0
	for g < total {
		cu.load()
		if !cu.fill {
			v := cu.take()
			if g < full {
				b.app.group(v)
			} else {
				b.cur, b.curLen = v, r
			}
			g++
			continue
		}
		cnt := int(cu.left)
		if g+cnt > total {
			cnt = total - g
		}
		bit := uint64(0)
		if cu.val != 0 {
			bit = 1
		}
		whole := cnt
		if g+whole > full {
			whole = full - g
		}
		if whole > 0 {
			b.app.run(bit, uint64(whole))
		}
		if g+cnt > full && r > 0 {
			// The run covers the zero-padded final partial group.
			if bit != 0 {
				b.cur = uint64(1)<<uint(r) - 1
			} else {
				b.cur = 0
			}
			b.curLen = r
		}
		cu.skip(uint64(cnt))
		g += cnt
	}
	return b
}

// Len returns the number of bits appended so far.
func (b *Builder) Len() int { return b.n }

// Append appends one bit.
func (b *Builder) Append(bit bool) {
	if bit {
		b.cur |= uint64(1) << uint(b.curLen)
	}
	b.curLen++
	b.n++
	if b.curLen == groupBits {
		b.app.group(b.cur)
		b.cur, b.curLen = 0, 0
	}
}

// AppendRun appends n copies of bit, run-encoding whole groups directly.
func (b *Builder) AppendRun(bit bool, n int) {
	for n > 0 && b.curLen > 0 {
		b.Append(bit)
		n--
	}
	if full := n / groupBits; full > 0 {
		v := uint64(0)
		if bit {
			v = 1
		}
		b.app.run(v, uint64(full))
		b.n += full * groupBits
		n -= full * groupBits
	}
	for ; n > 0; n-- {
		b.Append(bit)
	}
}

// Finish returns the compressed bitmap of everything appended so far.
// The builder stays valid: more bits may be appended and Finish called
// again, each call returning an independent snapshot.
func (b *Builder) Finish() *Compressed {
	app := appender{
		words:  append([]uint64(nil), b.app.words...),
		runVal: b.app.runVal,
		runLen: b.app.runLen,
	}
	if b.curLen > 0 {
		// Zero-pad the partial tail group, exactly as Compress stores it.
		app.group(b.cur)
	}
	app.flush()
	return &Compressed{n: b.n, words: app.words}
}
