// Package bitmap implements the bitmap index structures used for star query
// processing in the MDHF study (VLDB 2000, Section 3.2): plain bitsets,
// simple (one-bitmap-per-value) bitmap indices, and encoded bitmap join
// indices with the hierarchical encoding of Table 1.
package bitmap

import (
	"fmt"
	"math/bits"
)

const wordBits = 64

// Bitset is a fixed-length sequence of bits backed by 64-bit words.
// The zero value is an empty bitset; use New to size one.
type Bitset struct {
	n     int
	words []uint64
}

// New returns a Bitset of n bits, all zero.
func New(n int) *Bitset {
	if n < 0 {
		panic("bitmap: negative size")
	}
	return &Bitset{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// Len returns the number of bits.
func (b *Bitset) Len() int { return b.n }

// Set sets bit i to 1.
func (b *Bitset) Set(i int) {
	b.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear sets bit i to 0.
func (b *Bitset) Clear(i int) {
	b.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Get reports whether bit i is 1.
func (b *Bitset) Get(i int) bool {
	return b.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// SetAll sets every bit to 1.
func (b *Bitset) SetAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.trim()
}

// Reset sets every bit to 0.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Reinit resizes b to n bits, all zero, reusing the backing array when it
// is large enough — the growth primitive of the per-worker scratch
// bitsets, allocation-free once warm.
func (b *Bitset) Reinit(n int) {
	if n < 0 {
		panic("bitmap: negative size")
	}
	k := (n + wordBits - 1) / wordBits
	if cap(b.words) < k {
		b.words = make([]uint64, k)
	} else {
		b.words = b.words[:k]
		for i := range b.words {
			b.words[i] = 0
		}
	}
	b.n = n
}

// SetRange sets every bit in [lo, hi) to 1, word-wise.
func (b *Bitset) SetRange(lo, hi int) {
	if lo < 0 || hi > b.n || lo > hi {
		panic(fmt.Sprintf("bitmap: range [%d,%d) out of range 0..%d", lo, hi, b.n))
	}
	if lo == hi {
		return
	}
	w0, w1 := lo/wordBits, (hi-1)/wordBits
	first := ^uint64(0) << uint(lo%wordBits)
	last := ^uint64(0) >> uint(wordBits-1-(hi-1)%wordBits)
	if w0 == w1 {
		b.words[w0] |= first & last
		return
	}
	b.words[w0] |= first
	for w := w0 + 1; w < w1; w++ {
		b.words[w] = ^uint64(0)
	}
	b.words[w1] |= last
}

// trim zeroes the unused high bits of the last word so that population
// counts and comparisons stay exact.
func (b *Bitset) trim() {
	if r := b.n % wordBits; r != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << uint(r)) - 1
	}
}

// Clone returns a deep copy.
func (b *Bitset) Clone() *Bitset {
	c := &Bitset{n: b.n, words: make([]uint64, len(b.words))}
	copy(c.words, b.words)
	return c
}

// CopyFrom makes b a copy of o, reusing b's storage.
func (b *Bitset) CopyFrom(o *Bitset) {
	k := len(o.words)
	if cap(b.words) < k {
		b.words = make([]uint64, k)
	}
	b.words = b.words[:k]
	copy(b.words, o.words)
	b.n = o.n
}

func (b *Bitset) check(o *Bitset) {
	if b.n != o.n {
		panic(fmt.Sprintf("bitmap: length mismatch %d vs %d", b.n, o.n))
	}
}

// And sets b = b AND o in place.
func (b *Bitset) And(o *Bitset) {
	b.check(o)
	for i := range b.words {
		b.words[i] &= o.words[i]
	}
}

// Or sets b = b OR o in place.
func (b *Bitset) Or(o *Bitset) {
	b.check(o)
	for i := range b.words {
		b.words[i] |= o.words[i]
	}
}

// AndNot sets b = b AND NOT o in place.
func (b *Bitset) AndNot(o *Bitset) {
	b.check(o)
	for i := range b.words {
		b.words[i] &^= o.words[i]
	}
}

// AndInto sets b = x AND y, reusing b's storage — the destination-reuse
// batch kernel of the fragment hot loops.
func (b *Bitset) AndInto(x, y *Bitset) {
	x.check(y)
	k := len(x.words)
	if cap(b.words) < k {
		b.words = make([]uint64, k)
	}
	b.words = b.words[:k]
	for i := range b.words {
		b.words[i] = x.words[i] & y.words[i]
	}
	b.n = x.n
}

// Xor sets b = b XOR o in place.
func (b *Bitset) Xor(o *Bitset) {
	b.check(o)
	for i := range b.words {
		b.words[i] ^= o.words[i]
	}
}

// Not inverts every bit in place.
func (b *Bitset) Not() {
	for i := range b.words {
		b.words[i] = ^b.words[i]
	}
	b.trim()
}

// OnesCount returns the number of 1 bits.
func (b *Bitset) OnesCount() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether at least one bit is set.
func (b *Bitset) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether b and o have identical contents and length.
func (b *Bitset) Equal(o *Bitset) bool {
	if b.n != o.n {
		return false
	}
	for i := range b.words {
		if b.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// ForEach calls fn with the index of every set bit, in ascending order.
func (b *Bitset) ForEach(fn func(i int)) {
	for wi, w := range b.words {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			fn(wi*wordBits + tz)
			w &= w - 1
		}
	}
}

// OrByte ORs the 8 bits of v into positions [base, base+8). base must be
// a multiple of 8 and bits of v beyond Len must be zero — the byte-wise
// deserialisation primitive.
func (b *Bitset) OrByte(base int, v byte) {
	b.words[base/wordBits] |= uint64(v) << uint(base%wordBits)
}

// ForEachWord calls fn once per nonzero 64-bit word with the bit index of
// the word's least significant bit — one call per word instead of one
// closure invocation per set bit, for batch aggregation loops.
func (b *Bitset) ForEachWord(fn func(base int, w uint64)) {
	for wi, w := range b.words {
		if w != 0 {
			fn(wi*wordBits, w)
		}
	}
}

// NextSet returns the index of the first set bit at or after i, or -1.
func (b *Bitset) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= b.n {
		return -1
	}
	wi := i / wordBits
	w := b.words[wi] >> uint(i%wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(b.words); wi++ {
		if b.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(b.words[wi])
		}
	}
	return -1
}

// Slice returns a new Bitset containing bits [lo, hi) of b.
func (b *Bitset) Slice(lo, hi int) *Bitset {
	if lo < 0 || hi > b.n || lo > hi {
		panic(fmt.Sprintf("bitmap: slice [%d,%d) out of range 0..%d", lo, hi, b.n))
	}
	out := New(hi - lo)
	if lo == hi {
		return out
	}
	// Word-wise gather: output word i spans at most two source words.
	w0 := lo / wordBits
	off := uint(lo % wordBits)
	for i := range out.words {
		v := b.words[w0+i] >> off
		if off != 0 && w0+i+1 < len(b.words) {
			v |= b.words[w0+i+1] << (wordBits - off)
		}
		out.words[i] = v
	}
	out.trim()
	return out
}

// Bytes returns the storage size of the bitset in bytes (word-aligned).
func (b *Bitset) Bytes() int { return len(b.words) * 8 }
