package bitmap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/schema"
)

// productLayout returns the encoding layout of the APB-1 PRODUCT dimension.
func productLayout() *Layout {
	return NewLayout(schema.APB1().Dim(schema.DimProduct), nil)
}

func TestTable1ProductEncoding(t *testing.T) {
	l := productLayout()
	// Table 1: #bits for encoding = 3, 2, 3, 2, 1, 4 (total 15).
	want := []int{3, 2, 3, 2, 1, 4}
	for i, w := range want {
		if got := l.FieldBits(i); got != w {
			t.Errorf("FieldBits(%d) = %d, want %d", i, got, w)
		}
	}
	if got := l.TotalBits(); got != 15 {
		t.Errorf("TotalBits = %d, want 15", got)
	}
	// "CODEs belonging to the same GROUP ... can be precisely located with
	// access to only 10 of the 15 bitmaps."
	p := schema.APB1().Dim(schema.DimProduct)
	if got := l.PrefixBits(p.LevelIndex(schema.LvlGroup)); got != 10 {
		t.Errorf("PrefixBits(group) = %d, want 10", got)
	}
	if got := l.String(); got != "dddllfffggcoooo" {
		t.Errorf("pattern = %q, want dddllfffggcoooo", got)
	}
}

func TestCustomerEncoding(t *testing.T) {
	c := schema.APB1().Dim(schema.DimCustomer)
	// Paper, Section 3.2: the encoded CUSTOMER index needs 12 bitmaps.
	// With 144 retailers of 10 stores each: ceil(lg 144) + ceil(lg 10) = 8+4.
	l := NewLayout(c, nil)
	if got := l.TotalBits(); got != 12 {
		t.Errorf("customer bits = %d, want 12", got)
	}
	if got := l.FieldBits(0); got != 8 {
		t.Errorf("retailer field = %d bits, want 8", got)
	}
	if got := l.FieldBits(1); got != 4 {
		t.Errorf("store field = %d bits, want 4", got)
	}
	// Padding still works and widens the index.
	padded := NewLayout(c, []int{0, 1})
	if got := padded.TotalBits(); got != 13 {
		t.Errorf("padded customer bits = %d, want 13", got)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, dim := range schema.APB1().Dims {
		d := dim
		l := NewLayout(&d, nil)
		f := func(m uint) bool {
			mm := int(m % uint(d.LeafCard()))
			return l.Decode(l.Encode(mm)) == mm
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}

func TestEncodePrefixSharedByDescendants(t *testing.T) {
	p := schema.APB1().Dim(schema.DimProduct)
	l := NewLayout(p, nil)
	group := p.LevelIndex(schema.LvlGroup)
	code := p.Leaf()
	// All codes of group 123 share the group's 10-bit prefix.
	g := 123
	want := l.EncodePrefix(group, g)
	lo, hi := p.DescendantRange(group, g, code)
	for m := lo; m < hi; m++ {
		enc := l.Encode(m)
		if enc>>uint(l.TotalBits()-l.PrefixBits(group)) != want {
			t.Fatalf("code %d prefix mismatch", m)
		}
	}
}

// buildRandomRows generates n rows over the dimension's leaf domain.
func buildRandomRows(d *schema.Dimension, n int, seed int64) []int32 {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]int32, n)
	for i := range rows {
		rows[i] = int32(rng.Intn(d.LeafCard()))
	}
	return rows
}

func TestEncodedSelectMatchesScan(t *testing.T) {
	s := schema.Tiny()
	p := s.Dim(schema.DimProduct)
	rows := buildRandomRows(p, 500, 42)
	idx := NewEncodedIndex(NewLayout(p, nil), rows)

	for level := 0; level <= p.Leaf(); level++ {
		for m := 0; m < p.Levels[level].Card; m++ {
			got, nb := idx.Select(level, m)
			if nb != idx.Layout().PrefixBits(level) {
				t.Fatalf("level %d bitmaps read = %d, want %d", level, nb, idx.Layout().PrefixBits(level))
			}
			for i, v := range rows {
				want := p.Ancestor(p.Leaf(), int(v), level) == m
				if got.Get(i) != want {
					t.Fatalf("level %d member %d row %d: got %v, want %v", level, m, i, got.Get(i), want)
				}
			}
		}
	}
}

func TestEncodedSelectSuffixWithinFragment(t *testing.T) {
	// Simulate an MDHF fragment on product::group: all rows share one group;
	// selecting a code inside it must work with only the suffix bitmaps.
	s := schema.Tiny()
	p := s.Dim(schema.DimProduct)
	group := p.LevelIndex(schema.LvlGroup)
	leaf := p.Leaf()
	g := 1
	lo, hi := p.DescendantRange(group, g, leaf)
	rng := rand.New(rand.NewSource(7))
	rows := make([]int32, 300)
	for i := range rows {
		rows[i] = int32(lo + rng.Intn(hi-lo))
	}
	idx := NewEncodedIndex(NewLayout(p, nil), rows)
	for m := lo; m < hi; m++ {
		got, nb := idx.SelectSuffix(group, m)
		if nb != idx.Layout().SuffixBits(group) {
			t.Fatalf("bitmaps read = %d, want %d", nb, idx.Layout().SuffixBits(group))
		}
		for i, v := range rows {
			if got.Get(i) != (int(v) == m) {
				t.Fatalf("code %d row %d wrong", m, i)
			}
		}
	}
}

func TestSimpleIndexSelect(t *testing.T) {
	s := schema.APB1()
	tm := s.Dim(schema.DimTime)
	rows := buildRandomRows(tm, 1000, 11)
	idx := NewSimpleIndex(tm.LeafCard(), rows)
	if idx.NumBitmaps() != 24 {
		t.Fatalf("NumBitmaps = %d, want 24", idx.NumBitmaps())
	}
	for m := 0; m < 24; m++ {
		got := idx.Select(m)
		for i, v := range rows {
			if got.Get(i) != (int(v) == m) {
				t.Fatalf("month %d row %d wrong", m, i)
			}
		}
	}
	// Range select = one quarter (3 months).
	q := idx.SelectRange(3, 6)
	for i, v := range rows {
		if q.Get(i) != (v >= 3 && v < 6) {
			t.Fatalf("range row %d wrong", i)
		}
	}
	if idx.BitmapsRead() != 1 {
		t.Fatal("point select must read exactly 1 bitmap")
	}
}

func TestSimpleIndexRejectsOutOfDomain(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSimpleIndex(4, []int32{0, 1, 4})
}

func TestPaperBitmapCounts(t *testing.T) {
	// Section 3.2: encoded indices on PRODUCT (15) and CUSTOMER (12), simple
	// indices on TIME (34 = 24+8+2) and CHANNEL (15): maximum of 76 bitmaps.
	s := schema.APB1()
	prod := NewLayout(s.Dim(schema.DimProduct), nil).TotalBits()
	cust := NewLayout(s.Dim(schema.DimCustomer), nil).TotalBits()
	timeBitmaps := 0
	for _, l := range s.Dim(schema.DimTime).Levels {
		timeBitmaps += l.Card
	}
	chanBitmaps := s.Dim(schema.DimChannel).LeafCard()
	total := prod + cust + timeBitmaps + chanBitmaps
	if prod != 15 || cust != 12 || timeBitmaps != 34 || chanBitmaps != 15 || total != 76 {
		t.Fatalf("bitmap counts = %d/%d/%d/%d (total %d), want 15/12/34/15 (76)",
			prod, cust, timeBitmaps, chanBitmaps, total)
	}
}

func TestEncodedIndexIntersection(t *testing.T) {
	// Two-dimensional star query: AND of selections from two indices
	// (1MONTH1GROUP style) must equal a row-wise predicate scan.
	s := schema.Tiny()
	p := s.Dim(schema.DimProduct)
	tm := s.Dim(schema.DimTime)
	n := 400
	prodRows := buildRandomRows(p, n, 1)
	timeRows := buildRandomRows(tm, n, 2)
	pIdx := NewEncodedIndex(NewLayout(p, nil), prodRows)
	tIdx := NewSimpleIndex(tm.LeafCard(), timeRows)

	group := p.LevelIndex(schema.LvlGroup)
	g, month := 1, 2
	sel, _ := pIdx.Select(group, g)
	sel.And(tIdx.Bitmap(month))
	for i := 0; i < n; i++ {
		want := p.Ancestor(p.Leaf(), int(prodRows[i]), group) == g && int(timeRows[i]) == month
		if sel.Get(i) != want {
			t.Fatalf("row %d: got %v want %v", i, sel.Get(i), want)
		}
	}
}
