package bitmap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitsetBasics(t *testing.T) {
	b := New(130)
	if b.Len() != 130 {
		t.Fatalf("Len = %d", b.Len())
	}
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if !b.Get(0) || !b.Get(64) || !b.Get(129) || b.Get(1) {
		t.Fatal("Set/Get mismatch")
	}
	if got := b.OnesCount(); got != 3 {
		t.Fatalf("OnesCount = %d, want 3", got)
	}
	b.Clear(64)
	if b.Get(64) || b.OnesCount() != 2 {
		t.Fatal("Clear failed")
	}
}

func TestBitsetSetAllNotTrims(t *testing.T) {
	b := New(70)
	b.SetAll()
	if got := b.OnesCount(); got != 70 {
		t.Fatalf("SetAll OnesCount = %d, want 70", got)
	}
	b.Not()
	if got := b.OnesCount(); got != 0 {
		t.Fatalf("Not(all) OnesCount = %d, want 0", got)
	}
	b.Not()
	if got := b.OnesCount(); got != 70 {
		t.Fatalf("Not(none) OnesCount = %d, want 70", got)
	}
}

func TestBitsetBooleanOps(t *testing.T) {
	a := New(100)
	b := New(100)
	for i := 0; i < 100; i += 2 {
		a.Set(i)
	}
	for i := 0; i < 100; i += 3 {
		b.Set(i)
	}
	and := a.Clone()
	and.And(b)
	for i := 0; i < 100; i++ {
		if and.Get(i) != (i%2 == 0 && i%3 == 0) {
			t.Fatalf("And bit %d wrong", i)
		}
	}
	or := a.Clone()
	or.Or(b)
	for i := 0; i < 100; i++ {
		if or.Get(i) != (i%2 == 0 || i%3 == 0) {
			t.Fatalf("Or bit %d wrong", i)
		}
	}
	an := a.Clone()
	an.AndNot(b)
	for i := 0; i < 100; i++ {
		if an.Get(i) != (i%2 == 0 && i%3 != 0) {
			t.Fatalf("AndNot bit %d wrong", i)
		}
	}
	x := a.Clone()
	x.Xor(b)
	for i := 0; i < 100; i++ {
		if x.Get(i) != ((i%2 == 0) != (i%3 == 0)) {
			t.Fatalf("Xor bit %d wrong", i)
		}
	}
}

func TestBitsetForEachAndNextSet(t *testing.T) {
	b := New(200)
	want := []int{3, 64, 65, 127, 128, 199}
	for _, i := range want {
		b.Set(i)
	}
	var got []int
	b.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach got %v, want %v", got, want)
		}
	}
	if n := b.NextSet(0); n != 3 {
		t.Errorf("NextSet(0) = %d", n)
	}
	if n := b.NextSet(4); n != 64 {
		t.Errorf("NextSet(4) = %d", n)
	}
	if n := b.NextSet(129); n != 199 {
		t.Errorf("NextSet(129) = %d", n)
	}
	if n := b.NextSet(200); n != -1 {
		t.Errorf("NextSet(200) = %d", n)
	}
}

func TestBitsetSlice(t *testing.T) {
	b := New(100)
	b.Set(10)
	b.Set(20)
	b.Set(70)
	s := b.Slice(10, 71)
	if s.Len() != 61 {
		t.Fatalf("slice len = %d", s.Len())
	}
	if !s.Get(0) || !s.Get(10) || !s.Get(60) || s.Get(1) {
		t.Fatal("slice contents wrong")
	}
}

func TestBitsetEqualAndAny(t *testing.T) {
	a := New(65)
	b := New(65)
	if !a.Equal(b) || a.Any() {
		t.Fatal("fresh bitsets should be equal and empty")
	}
	a.Set(64)
	if a.Equal(b) || !a.Any() {
		t.Fatal("Equal/Any after Set wrong")
	}
	if a.Equal(New(64)) {
		t.Fatal("different lengths must not be equal")
	}
}

func TestBitsetLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(10).And(New(11))
}

// Property: De Morgan — NOT(a AND b) == NOT a OR NOT b.
func TestBitsetDeMorgan(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		size := int(n)%500 + 1
		rng := rand.New(rand.NewSource(seed))
		a, b := New(size), New(size)
		for i := 0; i < size; i++ {
			if rng.Intn(2) == 1 {
				a.Set(i)
			}
			if rng.Intn(2) == 1 {
				b.Set(i)
			}
		}
		left := a.Clone()
		left.And(b)
		left.Not()
		right := a.Clone()
		right.Not()
		nb := b.Clone()
		nb.Not()
		right.Or(nb)
		return left.Equal(right)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: OnesCount(a) + OnesCount(b) == OnesCount(a OR b) + OnesCount(a AND b).
func TestBitsetInclusionExclusion(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		size := int(n)%1000 + 1
		rng := rand.New(rand.NewSource(seed))
		a, b := New(size), New(size)
		for i := 0; i < size; i++ {
			if rng.Intn(3) == 0 {
				a.Set(i)
			}
			if rng.Intn(3) == 0 {
				b.Set(i)
			}
		}
		or := a.Clone()
		or.Or(b)
		and := a.Clone()
		and.And(b)
		return a.OnesCount()+b.OnesCount() == or.OnesCount()+and.OnesCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
