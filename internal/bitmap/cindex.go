package bitmap

// Compressed counterparts of the simple and encoded bitmap indices: the
// per-row bitmaps are stored WAH-compressed and queries execute on them
// directly (AndAll / ForEachRange) without ever inflating a Bitset —
// the in-memory side of the compressed execution fast path.

// CompressedSimpleIndex is a SimpleIndex whose member bitmaps are stored
// WAH-compressed.
type CompressedSimpleIndex struct {
	card int
	rows int
	maps []*Compressed
}

// CompressSimpleIndex compresses every member bitmap of s.
func CompressSimpleIndex(s *SimpleIndex) *CompressedSimpleIndex {
	c := &CompressedSimpleIndex{card: s.card, rows: s.rows, maps: make([]*Compressed, s.card)}
	for m, b := range s.maps {
		c.maps[m] = Compress(b)
	}
	return c
}

// Card returns the number of bitmaps (the attribute's cardinality).
func (c *CompressedSimpleIndex) Card() int { return c.card }

// Rows returns the number of fact rows covered.
func (c *CompressedSimpleIndex) Rows() int { return c.rows }

// Bitmap returns the compressed bitmap for member m. The caller must not
// modify it.
func (c *CompressedSimpleIndex) Bitmap(m int) *Compressed { return c.maps[m] }

// Bytes returns the total compressed storage in bytes.
func (c *CompressedSimpleIndex) Bytes() int {
	t := 0
	for _, m := range c.maps {
		t += m.Bytes()
	}
	return t
}

// CompressedEncodedIndex is an EncodedIndex whose bit-position bitmaps are
// stored WAH-compressed, together with their precomputed complements so
// that a selection is a single AndAll over verbatim-or-complement operands
// — no per-query Not, no materialisation.
type CompressedEncodedIndex struct {
	layout *Layout
	rows   int
	maps   []*Compressed // bit j of every row's encoding
	cmpl   []*Compressed // complement of maps[j]
}

// CompressEncodedIndex compresses every bit-position bitmap of e and its
// complement.
func CompressEncodedIndex(e *EncodedIndex) *CompressedEncodedIndex {
	c := &CompressedEncodedIndex{
		layout: e.layout,
		rows:   e.rows,
		maps:   make([]*Compressed, len(e.maps)),
		cmpl:   make([]*Compressed, len(e.maps)),
	}
	for j, b := range e.maps {
		c.maps[j] = Compress(b)
		c.cmpl[j] = Not(c.maps[j])
	}
	return c
}

// Layout returns the index's encoding layout.
func (c *CompressedEncodedIndex) Layout() *Layout { return c.layout }

// Rows returns the number of fact rows covered.
func (c *CompressedEncodedIndex) Rows() int { return c.rows }

// SelectOperands appends to dst the compressed operands whose intersection
// selects member m of the given hierarchy level using only the bit fields
// of levels in (skipLevel, level] — the compressed counterpart of
// EncodedIndex.SelectPartial, leaving the single AndAll to the caller so
// operands from several predicates intersect in one k-way pass. It returns
// the extended slice and the number of bitmaps evaluated.
func (c *CompressedEncodedIndex) SelectOperands(dst []*Compressed, skipLevel, level, m int) ([]*Compressed, int) {
	skip := 0
	if skipLevel >= 0 {
		skip = c.layout.PrefixBits(skipLevel)
	}
	nb := c.layout.PrefixBits(level) - skip
	pattern := c.layout.EncodePrefix(level, m) & (1<<uint(nb) - 1)
	for j := 0; j < nb; j++ {
		if pattern>>uint(nb-1-j)&1 == 1 {
			dst = append(dst, c.maps[skip+j])
		} else {
			dst = append(dst, c.cmpl[skip+j])
		}
	}
	return dst, nb
}

// Bytes returns the total compressed storage in bytes, complements
// included.
func (c *CompressedEncodedIndex) Bytes() int {
	t := 0
	for j := range c.maps {
		t += c.maps[j].Bytes() + c.cmpl[j].Bytes()
	}
	return t
}
