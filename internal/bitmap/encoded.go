package bitmap

import (
	"fmt"
	"math/bits"

	"repro/internal/schema"
)

// Layout describes the hierarchical encoding of one dimension in an encoded
// bitmap join index (Wu/Buchmann encoding as adapted in Section 3.2 and
// Table 1 of the paper): the dimension's leaf members are encoded as a
// concatenation of per-level bit fields, one field per hierarchy level,
// where the field of level i holds the member's child index within its
// parent. Members of the same coarser value thus share a bit-pattern prefix,
// so selections at level L only need the first PrefixBits(L) bitmaps.
type Layout struct {
	dim *schema.Dimension
	// fieldBits[i] is the width of the bit field for level i.
	fieldBits []int
	// prefix[i] is the total width of fields 0..i.
	prefix []int
}

// NewLayout derives the minimal hierarchical encoding for a dimension:
// field i is ceil(log2(fan-in of level i)) bits wide. padBits, if non-nil,
// adds extra (always-zero) bits to the corresponding level's field; the
// paper's CUSTOMER index uses one pad bit to arrive at its stated 12
// bitmaps (see DESIGN.md §5).
func NewLayout(dim *schema.Dimension, padBits []int) *Layout {
	if padBits != nil && len(padBits) != len(dim.Levels) {
		panic(fmt.Sprintf("bitmap: padBits length %d != levels %d", len(padBits), len(dim.Levels)))
	}
	l := &Layout{
		dim:       dim,
		fieldBits: make([]int, len(dim.Levels)),
		prefix:    make([]int, len(dim.Levels)),
	}
	total := 0
	for i := range dim.Levels {
		fanIn := dim.Levels[i].Card
		if i > 0 {
			fanIn = dim.FanOut(i - 1)
		}
		w := bitsFor(fanIn)
		if padBits != nil {
			w += padBits[i]
		}
		l.fieldBits[i] = w
		total += w
		l.prefix[i] = total
	}
	return l
}

// bitsFor returns ceil(log2(n)) for n >= 1, with bitsFor(1) = 0.
func bitsFor(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// TotalBits returns the number of bitmaps of the encoded index.
func (l *Layout) TotalBits() int { return l.prefix[len(l.prefix)-1] }

// FieldBits returns the bit width of the field for the given level.
func (l *Layout) FieldBits(level int) int { return l.fieldBits[level] }

// PrefixBits returns the number of leading bitmaps that must be evaluated to
// select a member at the given level (Table 1: 10 of 15 for a product
// GROUP, all 15 for a CODE).
func (l *Layout) PrefixBits(level int) int { return l.prefix[level] }

// SuffixBits returns the number of trailing bitmaps covering levels strictly
// below the given level. These are the bitmaps that survive when an MDHF
// fragmentation on that level makes the prefix bits constant per fragment
// (Section 4.2).
func (l *Layout) SuffixBits(level int) int { return l.TotalBits() - l.prefix[level] }

// Encode returns the bit pattern (in the low TotalBits bits, field of level
// 0 most significant) of leaf member m.
func (l *Layout) Encode(m int) uint64 {
	leaf := l.dim.Leaf()
	var v uint64
	for i := 0; i <= leaf; i++ {
		member := l.dim.Ancestor(leaf, m, i)
		v = v<<uint(l.fieldBits[i]) | uint64(l.dim.ChildIndex(i, member))
	}
	return v
}

// EncodePrefix returns the bit pattern of member m of the given level,
// occupying the low PrefixBits(level) bits.
func (l *Layout) EncodePrefix(level, m int) uint64 {
	var v uint64
	for i := 0; i <= level; i++ {
		member := l.dim.Ancestor(level, m, i)
		v = v<<uint(l.fieldBits[i]) | uint64(l.dim.ChildIndex(i, member))
	}
	return v
}

// Decode maps a full bit pattern back to the leaf member it encodes.
// Patterns containing out-of-range field values yield -1.
func (l *Layout) Decode(v uint64) int {
	leaf := l.dim.Leaf()
	m := 0
	shift := l.TotalBits()
	for i := 0; i <= leaf; i++ {
		shift -= l.fieldBits[i]
		digit := int(v >> uint(shift) & (1<<uint(l.fieldBits[i]) - 1))
		fanIn := l.dim.Levels[i].Card
		if i > 0 {
			fanIn = l.dim.FanOut(i - 1)
		}
		if digit >= fanIn {
			return -1
		}
		m = m*fanIn + digit
	}
	return m
}

// String renders the layout like the paper's Table 1 sample pattern, e.g.
// "dddllfffggcoooo" for the APB-1 product dimension.
func (l *Layout) String() string {
	out := make([]byte, 0, l.TotalBits())
	used := [256]bool{}
	for i, w := range l.fieldBits {
		name := l.dim.Levels[i].Name
		c := name[0]
		for k := 0; k < len(name); k++ {
			if !used[name[k]] {
				c = name[k]
				break
			}
		}
		used[c] = true
		for j := 0; j < w; j++ {
			out = append(out, c)
		}
	}
	return string(out)
}

// EncodedIndex is an encoded bitmap join index over one dimension: bitmap j
// (0 = most significant) holds bit j of every row's encoded leaf value.
type EncodedIndex struct {
	layout *Layout
	rows   int
	maps   []*Bitset
}

// NewEncodedIndex builds the index over rows, where values[i] is the leaf
// member row i refers to.
func NewEncodedIndex(layout *Layout, values []int32) *EncodedIndex {
	k := layout.TotalBits()
	idx := &EncodedIndex{layout: layout, rows: len(values), maps: make([]*Bitset, k)}
	for j := range idx.maps {
		idx.maps[j] = New(len(values))
	}
	for i, v := range values {
		enc := layout.Encode(int(v))
		for j := 0; j < k; j++ {
			if enc>>uint(k-1-j)&1 == 1 {
				idx.maps[j].Set(i)
			}
		}
	}
	return idx
}

// Layout returns the index's encoding layout.
func (e *EncodedIndex) Layout() *Layout { return e.layout }

// Rows returns the number of fact rows covered.
func (e *EncodedIndex) Rows() int { return e.rows }

// NumBitmaps returns the number of bitmaps materialised (= total bits).
func (e *EncodedIndex) NumBitmaps() int { return len(e.maps) }

// Bitmap returns bitmap j. The caller must not modify it.
func (e *EncodedIndex) Bitmap(j int) *Bitset { return e.maps[j] }

// Select returns a fresh bitset marking all rows whose dimension member
// belongs to member m of the given hierarchy level, and the number of
// bitmaps evaluated (PrefixBits(level); Section 3.2's "10 of the 15
// bitmaps" for a GROUP).
func (e *EncodedIndex) Select(level, m int) (*Bitset, int) {
	return e.SelectPartial(-1, level, m)
}

// SelectPartial matches member m of the given hierarchy level using only
// the bit fields of levels in (skipLevel, level] — the bitmaps that remain
// meaningful inside an MDHF fragment whose fragmentation attribute is at
// skipLevel and whose coarser bitmaps have been eliminated (Section 4.2).
// skipLevel -1 matches the full prefix (equivalent to Select). It returns
// the result and the number of bitmaps evaluated.
func (e *EncodedIndex) SelectPartial(skipLevel, level, m int) (*Bitset, int) {
	out := New(e.rows)
	return out, e.SelectPartialInto(out, skipLevel, level, m)
}

// SelectPartialInto is SelectPartial writing the selection into dst,
// reusing dst's storage (resized to the fragment's row count) — the
// allocation-free variant for per-worker scratch bitsets. It returns the
// number of bitmaps evaluated.
func (e *EncodedIndex) SelectPartialInto(dst *Bitset, skipLevel, level, m int) int {
	skip := 0
	if skipLevel >= 0 {
		skip = e.layout.PrefixBits(skipLevel)
	}
	nb := e.layout.PrefixBits(level) - skip
	pattern := e.layout.EncodePrefix(level, m) & (1<<uint(nb) - 1)
	e.selectBits(dst, skip, nb, pattern)
	return nb
}

// SelectSuffix matches only the suffix bit fields of the levels strictly
// below prefixLevel against the low SuffixBits(prefixLevel) bits of member
// m's full encoding. It is used inside MDHF fragments where the prefix is
// constant and its bitmaps have been eliminated (Section 4.2, query type
// Q2). It returns the result and the number of bitmaps evaluated.
func (e *EncodedIndex) SelectSuffix(prefixLevel, leafMember int) (*Bitset, int) {
	return e.SelectPartial(prefixLevel, e.layout.dim.Leaf(), leafMember)
}

// selectBits ANDs together bitmaps [first, first+n) into out, each taken
// verbatim where the corresponding pattern bit is 1 and complemented where
// it is 0.
func (e *EncodedIndex) selectBits(out *Bitset, first, n int, pattern uint64) {
	out.Reinit(e.rows)
	out.SetAll()
	for j := 0; j < n; j++ {
		b := e.maps[first+j]
		if pattern>>uint(n-1-j)&1 == 1 {
			out.And(b)
		} else {
			out.AndNot(b)
		}
	}
}

// Bytes returns the total storage of all bitmaps in bytes.
func (e *EncodedIndex) Bytes() int {
	t := 0
	for _, m := range e.maps {
		t += m.Bytes()
	}
	return t
}
