package bitmap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomBitset(n int, density float64, seed int64) *Bitset {
	rng := rand.New(rand.NewSource(seed))
	b := New(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < density {
			b.Set(i)
		}
	}
	return b
}

func TestCompressRoundTripVarious(t *testing.T) {
	cases := []struct {
		n       int
		density float64
	}{
		{0, 0}, {1, 1}, {63, 0.5}, {64, 0.5}, {126, 0}, {127, 1},
		{1000, 0.001}, {1000, 0.999}, {10_000, 0.5}, {100_000, 0.0001},
	}
	for _, c := range cases {
		b := randomBitset(c.n, c.density, int64(c.n)+1)
		got := Compress(b).Decompress()
		if !got.Equal(b) {
			t.Fatalf("n=%d density=%g: round trip mismatch", c.n, c.density)
		}
	}
}

func TestCompressRoundTripProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16, dRaw uint8) bool {
		n := int(nRaw)%5000 + 1
		density := float64(dRaw) / 255
		b := randomBitset(n, density, seed)
		c := Compress(b)
		if c.Len() != n {
			return false
		}
		if c.OnesCount() != b.OnesCount() {
			return false
		}
		return c.Decompress().Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressedAndOrMatchPlain(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw)%3000 + 1
		a := randomBitset(n, 0.05, seed)
		b := randomBitset(n, 0.5, seed+1)
		ca, cb := Compress(a), Compress(b)

		wantAnd := a.Clone()
		wantAnd.And(b)
		if !And(ca, cb).Decompress().Equal(wantAnd) {
			return false
		}
		wantOr := a.Clone()
		wantOr.Or(b)
		return Or(ca, cb).Decompress().Equal(wantOr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressionRatioOnSparseBitmaps(t *testing.T) {
	// A sparse bitmap (one product code of 14,400 -> selectivity 7e-5)
	// must compress dramatically; a dense random one must not explode.
	n := 1 << 20
	sparse := New(n)
	for i := 0; i < n; i += 14_400 {
		sparse.Set(i)
	}
	cs := Compress(sparse)
	if ratio := float64(cs.Bytes()) / float64(sparse.Bytes()); ratio > 0.01 {
		t.Errorf("sparse compression ratio = %.4f, want < 0.01", ratio)
	}

	dense := randomBitset(n, 0.5, 9)
	cd := Compress(dense)
	if ratio := float64(cd.Bytes()) / float64(dense.Bytes()); ratio > 1.05 {
		t.Errorf("dense compression ratio = %.3f, want <= ~1.02", ratio)
	}
}

func TestCompressAllOnesAllZeros(t *testing.T) {
	n := 100_000
	zeros := New(n)
	cz := Compress(zeros)
	if cz.Bytes() > 16 {
		t.Errorf("all-zero bitmap compressed to %d bytes", cz.Bytes())
	}
	if cz.OnesCount() != 0 {
		t.Errorf("all-zero OnesCount = %d", cz.OnesCount())
	}
	ones := New(n)
	ones.SetAll()
	co := Compress(ones)
	if co.Bytes() > 16 {
		t.Errorf("all-one bitmap compressed to %d bytes", co.Bytes())
	}
	if co.OnesCount() != n {
		t.Errorf("all-one OnesCount = %d, want %d", co.OnesCount(), n)
	}
	if !co.Decompress().Equal(ones) {
		t.Error("all-one round trip failed")
	}
}

func TestCompressedAndPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	And(Compress(New(10)), Compress(New(11)))
}

func TestCompressedStarJoinIntersection(t *testing.T) {
	// The 1MONTH1GROUP pattern on compressed bitmaps: month bitmap
	// (1/24 dense runs) AND group bitmap (sparse) — results must equal the
	// uncompressed path.
	n := 240_000
	month := New(n)
	for i := 0; i < n; i++ {
		if (i/200)%24 == 3 { // month 3, clustered in page-sized runs
			month.Set(i)
		}
	}
	group := randomBitset(n, 1.0/480, 5)
	want := month.Clone()
	want.And(group)
	got := And(Compress(month), Compress(group)).Decompress()
	if !got.Equal(want) {
		t.Fatal("compressed star join intersection mismatch")
	}
}
