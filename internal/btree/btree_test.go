package btree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestInsertGetSmall(t *testing.T) {
	tr := New(4)
	keys := []string{"delta", "alpha", "charlie", "bravo", "echo"}
	for i, k := range keys {
		tr.Insert(k, int64(i))
	}
	if tr.Len() != 5 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i, k := range keys {
		v, ok := tr.Get(k)
		if !ok || v != int64(i) {
			t.Fatalf("Get(%s) = %d, %v", k, v, ok)
		}
	}
	if _, ok := tr.Get("zulu"); ok {
		t.Fatal("missing key found")
	}
}

func TestInsertReplace(t *testing.T) {
	tr := New(4)
	tr.Insert("k", 1)
	tr.Insert("k", 2)
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if v, _ := tr.Get("k"); v != 2 {
		t.Fatalf("Get = %d", v)
	}
}

func TestLargeRandomInsertAndOrder(t *testing.T) {
	for _, order := range []int{3, 4, 16, 64} {
		tr := New(order)
		rng := rand.New(rand.NewSource(int64(order)))
		want := map[string]int64{}
		for i := 0; i < 5000; i++ {
			k := fmt.Sprintf("key-%06d", rng.Intn(10000))
			v := int64(i)
			want[k] = v
			tr.Insert(k, v)
		}
		if tr.Len() != len(want) {
			t.Fatalf("order %d: Len = %d, want %d", order, tr.Len(), len(want))
		}
		for k, v := range want {
			got, ok := tr.Get(k)
			if !ok || got != v {
				t.Fatalf("order %d: Get(%s) = %d,%v want %d", order, k, got, ok, v)
			}
		}
		// Full ascend yields sorted keys.
		var keys []string
		tr.Ascend(func(k string, _ int64) bool {
			keys = append(keys, k)
			return true
		})
		if !sort.StringsAreSorted(keys) {
			t.Fatalf("order %d: ascend not sorted", order)
		}
		if len(keys) != len(want) {
			t.Fatalf("order %d: ascend visited %d of %d", order, len(keys), len(want))
		}
	}
}

func TestAscendRange(t *testing.T) {
	tr := New(4)
	for i := 0; i < 100; i++ {
		tr.Insert(fmt.Sprintf("%03d", i), int64(i))
	}
	var got []int64
	tr.AscendRange("010", "020", func(_ string, v int64) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Fatalf("range = %v", got)
	}
	// Early stop.
	n := 0
	tr.AscendRange("000", "", func(string, int64) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
	// Empty range.
	got = nil
	tr.AscendRange("500", "600", func(_ string, v int64) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 0 {
		t.Fatalf("out-of-domain range = %v", got)
	}
}

func TestHeightGrowsLogarithmically(t *testing.T) {
	tr := New(16)
	for i := 0; i < 10000; i++ {
		tr.Insert(fmt.Sprintf("%08d", i), int64(i))
	}
	if h := tr.Height(); h < 3 || h > 6 {
		t.Fatalf("height = %d for 10k keys at order 16", h)
	}
}

func TestSequentialInsertAscending(t *testing.T) {
	// Worst-case monotone insertion must still keep everything reachable.
	tr := New(5)
	const n = 2000
	for i := 0; i < n; i++ {
		tr.Insert(fmt.Sprintf("%06d", i), int64(i))
	}
	for i := 0; i < n; i++ {
		if v, ok := tr.Get(fmt.Sprintf("%06d", i)); !ok || v != int64(i) {
			t.Fatalf("lost key %d", i)
		}
	}
}

// Property: the tree agrees with a map oracle under random workloads.
func TestTreeMatchesMapOracle(t *testing.T) {
	f := func(seed int64, orderRaw uint8) bool {
		order := int(orderRaw)%30 + 3
		tr := New(order)
		oracle := map[string]int64{}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 500; i++ {
			k := fmt.Sprintf("%04d", rng.Intn(300))
			v := rng.Int63()
			tr.Insert(k, v)
			oracle[k] = v
		}
		if tr.Len() != len(oracle) {
			return false
		}
		for k, v := range oracle {
			got, ok := tr.Get(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNewClampsOrder(t *testing.T) {
	tr := New(1)
	for i := 0; i < 100; i++ {
		tr.Insert(fmt.Sprintf("%d", i), int64(i))
	}
	if tr.Len() != 100 {
		t.Fatal("clamped-order tree lost keys")
	}
}
