// Package btree is an in-memory B+-tree mapping string keys to int64
// values — the dimension-table index structure the paper assumes
// (Section 5: "The dimension tables have B*-tree indices"). Values live in
// the leaves; leaves are linked for range scans.
package btree

import "sort"

// Tree is a B+-tree. The zero value is not usable; call New.
type Tree struct {
	order int // max children per inner node
	root  node
	size  int
	first *leaf
}

type node interface {
	// insert returns (newSeparator, newRight) when the node split.
	insert(key string, val int64, t *Tree) (string, node)
	get(key string) (int64, bool)
}

type inner struct {
	keys     []string
	children []node
}

type leaf struct {
	keys []string
	vals []int64
	next *leaf
}

// New returns an empty tree of the given order (max children per inner
// node, >= 3; typical 32-128).
func New(order int) *Tree {
	if order < 3 {
		order = 3
	}
	lf := &leaf{}
	return &Tree{order: order, root: lf, first: lf}
}

// Len returns the number of keys stored.
func (t *Tree) Len() int { return t.size }

// Insert adds or replaces key.
func (t *Tree) Insert(key string, val int64) {
	sep, right := t.root.insert(key, val, t)
	if right != nil {
		t.root = &inner{keys: []string{sep}, children: []node{t.root, right}}
	}
}

// Get looks up key.
func (t *Tree) Get(key string) (int64, bool) { return t.root.get(key) }

// AscendRange calls fn for every key in [lo, hi), in order, stopping early
// if fn returns false.
func (t *Tree) AscendRange(lo, hi string, fn func(key string, val int64) bool) {
	lf, i := t.findLeaf(lo)
	for lf != nil {
		for ; i < len(lf.keys); i++ {
			if hi != "" && lf.keys[i] >= hi {
				return
			}
			if !fn(lf.keys[i], lf.vals[i]) {
				return
			}
		}
		lf = lf.next
		i = 0
	}
}

// Ascend iterates all keys in order.
func (t *Tree) Ascend(fn func(key string, val int64) bool) {
	t.AscendRange("", "", fn)
}

// findLeaf returns the leaf and index of the first key >= lo.
func (t *Tree) findLeaf(lo string) (*leaf, int) {
	n := t.root
	for {
		switch v := n.(type) {
		case *inner:
			idx := sort.SearchStrings(v.keys, lo)
			if idx < len(v.keys) && v.keys[idx] == lo {
				idx++
			}
			n = v.children[idx]
		case *leaf:
			i := sort.SearchStrings(v.keys, lo)
			if i == len(v.keys) && v.next != nil {
				return v.next, 0
			}
			return v, i
		}
	}
}

func (lf *leaf) get(key string) (int64, bool) {
	i := sort.SearchStrings(lf.keys, key)
	if i < len(lf.keys) && lf.keys[i] == key {
		return lf.vals[i], true
	}
	return 0, false
}

func (lf *leaf) insert(key string, val int64, t *Tree) (string, node) {
	i := sort.SearchStrings(lf.keys, key)
	if i < len(lf.keys) && lf.keys[i] == key {
		lf.vals[i] = val
		return "", nil
	}
	lf.keys = append(lf.keys, "")
	copy(lf.keys[i+1:], lf.keys[i:])
	lf.keys[i] = key
	lf.vals = append(lf.vals, 0)
	copy(lf.vals[i+1:], lf.vals[i:])
	lf.vals[i] = val
	t.size++
	if len(lf.keys) < t.order {
		return "", nil
	}
	// Split.
	mid := len(lf.keys) / 2
	right := &leaf{
		keys: append([]string(nil), lf.keys[mid:]...),
		vals: append([]int64(nil), lf.vals[mid:]...),
		next: lf.next,
	}
	lf.keys = lf.keys[:mid]
	lf.vals = lf.vals[:mid]
	lf.next = right
	return right.keys[0], right
}

func (in *inner) get(key string) (int64, bool) {
	idx := sort.SearchStrings(in.keys, key)
	if idx < len(in.keys) && in.keys[idx] == key {
		idx++
	}
	return in.children[idx].get(key)
}

func (in *inner) insert(key string, val int64, t *Tree) (string, node) {
	idx := sort.SearchStrings(in.keys, key)
	if idx < len(in.keys) && in.keys[idx] == key {
		idx++
	}
	sep, right := in.children[idx].insert(key, val, t)
	if right == nil {
		return "", nil
	}
	in.keys = append(in.keys, "")
	copy(in.keys[idx+1:], in.keys[idx:])
	in.keys[idx] = sep
	in.children = append(in.children, nil)
	copy(in.children[idx+2:], in.children[idx+1:])
	in.children[idx+1] = right
	if len(in.children) <= t.order {
		return "", nil
	}
	// Split: middle key moves up.
	mid := len(in.keys) / 2
	upKey := in.keys[mid]
	newRight := &inner{
		keys:     append([]string(nil), in.keys[mid+1:]...),
		children: append([]node(nil), in.children[mid+1:]...),
	}
	in.keys = in.keys[:mid]
	in.children = in.children[:mid+1]
	return upKey, newRight
}

// Height returns the tree height (1 = only a leaf).
func (t *Tree) Height() int {
	h := 1
	n := t.root
	for {
		in, ok := n.(*inner)
		if !ok {
			return h
		}
		h++
		n = in.children[0]
	}
}
