package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/alloc"
	"repro/internal/exec"
	"repro/internal/frag"
	"repro/internal/kernel"
	"repro/internal/storage"
)

// CoordinatorConfig configures query planning and the client-side fault
// machinery.
type CoordinatorConfig struct {
	// Spec is the fragmentation the whole cluster shares.
	Spec *frag.Spec
	// Cluster is the node-level placement (Disks = node count); its
	// scheme decides which node owns which fragment, exactly as the
	// disk-level placement decides disks within a node.
	Cluster alloc.Placement
	// Retry bounds transport-level (ErrUnavailable) retries per
	// sub-request; zero fields take storage.DefaultRetryPolicy values.
	// The breaker fields drive the per-node circuit breaker.
	Retry storage.RetryPolicy
	// Hedge, when positive, launches a second identical sub-request if a
	// node has not answered within the duration; the first answer wins.
	// Leave zero for deterministic tests (a hedge pair may pin different
	// epochs on a node ingesting concurrently).
	Hedge time.Duration
}

// ClientStats is the coordinator's own accounting for one node — the
// client half of the picture (NodeStats is the server half).
type ClientStats struct {
	// Queries counts sub-requests planned onto the node (before breaker
	// or transport outcomes).
	Queries int64
	// Errors counts sub-requests that failed after retries/hedging.
	Errors int64
	// Retries counts transport-level re-sends (ErrUnavailable only).
	Retries int64
	// Hedges and HedgeWins count straggler hedges launched and hedges
	// whose duplicate answered first.
	Hedges    int64
	HedgeWins int64
	// FastFails counts sub-requests rejected locally by an open breaker.
	FastFails int64
	// BreakerTrips counts times the node's breaker opened.
	BreakerTrips int64
}

// ExecStats describes one scattered execution.
type ExecStats struct {
	// NodesUsed is how many nodes the query was scattered to (confined
	// queries touch a subset of the cluster).
	NodesUsed int
	// DeltaRows, Engine and IO aggregate the per-node partial stats.
	DeltaRows int64
	Engine    kernel.Stats
	IO        storage.IOStats
	// Retries and Hedges count this execution's transport re-sends and
	// straggler hedges.
	Retries int64
	Hedges  int64
	// Shared aggregates the nodes' shared-scan batching effect (Batched
	// is the largest node-side batch this execution rode in).
	Shared kernel.SharedScanStats
}

type nodeCounters struct {
	queries   atomic.Int64
	errors    atomic.Int64
	retries   atomic.Int64
	hedges    atomic.Int64
	hedgeWins atomic.Int64
	fastFails atomic.Int64
}

// Coordinator plans star queries against the cluster placement,
// scatters per-node sub-queries over the transport, and merges the
// returned partials through the shared kernel grouper. It is safe for
// concurrent use.
type Coordinator struct {
	spec     *frag.Spec
	cl       alloc.Placement
	tr       Transport
	retry    storage.RetryPolicy
	hedge    time.Duration
	breakers []*breaker
	counters []nodeCounters
}

// NewCoordinator validates the placement against the transport's node
// count and returns a coordinator.
func NewCoordinator(cfg CoordinatorConfig, tr Transport) (*Coordinator, error) {
	if cfg.Spec == nil {
		return nil, errors.New("cluster: nil fragmentation spec")
	}
	n := cfg.Cluster.Disks
	if n < 1 {
		n = 1
	}
	if tr.Nodes() != n {
		return nil, fmt.Errorf("cluster: placement has %d nodes but transport serves %d", n, tr.Nodes())
	}
	p := normalizeRetry(cfg.Retry)
	c := &Coordinator{
		spec:     cfg.Spec,
		cl:       cfg.Cluster,
		tr:       tr,
		retry:    p,
		hedge:    cfg.Hedge,
		breakers: make([]*breaker, n),
		counters: make([]nodeCounters, n),
	}
	for i := range c.breakers {
		c.breakers[i] = newBreaker(p.BreakerThreshold, p.BreakerCooldown)
	}
	return c, nil
}

func normalizeRetry(p storage.RetryPolicy) storage.RetryPolicy {
	d := storage.DefaultRetryPolicy()
	if p.MaxAttempts < 1 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = d.BaseBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = d.MaxBackoff
	}
	if p.BreakerThreshold < 1 {
		p.BreakerThreshold = d.BreakerThreshold
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = d.BreakerCooldown
	}
	return p
}

// Nodes returns the cluster's node count.
func (c *Coordinator) Nodes() int { return len(c.counters) }

// relevantNodes returns, in ascending order, the nodes owning at least
// one fragment relevant to the query. Enumeration stops early once every
// node is marked.
func (c *Coordinator) relevantNodes(q frag.Query) []int {
	n := len(c.counters)
	if n == 1 {
		return []int{0}
	}
	hit := make([]bool, n)
	left := n
	c.spec.ForEachFragment(q, func(id int64, _ []int) bool {
		k := NodeOf(c.cl, id)
		if !hit[k] {
			hit[k] = true
			left--
		}
		return left > 0
	})
	nodes := make([]int, 0, n-left)
	for k, h := range hit {
		if h {
			nodes = append(nodes, k)
		}
	}
	return nodes
}

// Execute scatters the query to its relevant nodes, gathers the
// partials in node order, and flattens groups through the shared
// grouper — so the result is byte-identical to a single node holding
// all the rows. Any node failing (after retries, or fast via its
// breaker) fails the query with a NodeError naming it.
func (c *Coordinator) Execute(ctx context.Context, q frag.Query) (kernel.Result, ExecStats, error) {
	star := c.spec.Star()
	if err := q.Validate(star); err != nil {
		return kernel.Result{}, ExecStats{}, err
	}
	gr, err := kernel.NewGrouper(star, c.spec, q.GroupBy)
	if err != nil {
		return kernel.Result{}, ExecStats{}, err
	}
	nodes := c.relevantNodes(q)
	req := Request{Preds: q.Preds, GroupBy: q.GroupBy}

	type part struct {
		resp    Response
		retries int64
		hedges  int64
	}
	type acc struct {
		agg kernel.Aggregate
		g   *kernel.Grouped
		st  ExecStats
	}
	a, err := exec.ReduceWith(ctx, len(nodes), len(nodes),
		func() struct{} { return struct{}{} },
		func(_ struct{}, i int) (part, error) {
			resp, retries, hedges, err := c.execNode(ctx, nodes[i], req)
			return part{resp, retries, hedges}, err
		},
		func(a *acc, p part) {
			a.agg.Add(p.resp.Agg)
			if p.resp.Grouped {
				if a.g == nil {
					a.g = kernel.NewGrouped()
				}
				for i, k := range p.resp.GroupKeys {
					a.g.Add(k, p.resp.GroupAggs[i])
				}
			}
			a.st.DeltaRows += p.resp.DeltaRows
			a.st.Engine.Add(p.resp.Engine)
			a.st.IO.Add(p.resp.IO)
			a.st.Retries += p.retries
			a.st.Hedges += p.hedges
			a.st.Shared.Add(p.resp.Shared)
		})
	if err != nil {
		return kernel.Result{}, ExecStats{}, err
	}
	a.st.NodesUsed = len(nodes)
	res := kernel.Result{Aggregate: a.agg}
	if gr != nil {
		res.Groups = gr.Rows(a.g)
	}
	return res, a.st, nil
}

// execNode runs one node's sub-request through breaker, hedging and the
// retry loop, and keeps the per-node client counters.
func (c *Coordinator) execNode(ctx context.Context, k int, req Request) (Response, int64, int64, error) {
	cnt := &c.counters[k]
	cnt.queries.Add(1)
	brk := c.breakers[k]
	if !brk.allow(time.Now()) {
		cnt.fastFails.Add(1)
		cnt.errors.Add(1)
		return Response{}, 0, 0, &NodeError{Node: k, Err: ErrBreakerOpen}
	}
	resp, retries, hedges, err := c.execHedged(ctx, k, req)
	if retries > 0 {
		cnt.retries.Add(retries)
	}
	if err != nil {
		cnt.errors.Add(1)
		brk.failure(time.Now())
		var ne *NodeError
		if !errors.As(err, &ne) {
			err = &NodeError{Node: k, Err: err}
		}
		return Response{}, retries, hedges, err
	}
	brk.success()
	return resp, retries, hedges, nil
}

// execHedged wraps execRetry with straggler hedging: if the first
// attempt has not answered within c.hedge, a duplicate is launched and
// the first answer wins. Reads are idempotent, so a duplicate is always
// safe; a hedge pair may observe different epochs on a node ingesting
// concurrently, which is why deterministic tests leave Hedge zero.
func (c *Coordinator) execHedged(ctx context.Context, k int, req Request) (Response, int64, int64, error) {
	if c.hedge <= 0 {
		resp, retries, err := c.execRetry(ctx, k, req)
		return resp, retries, 0, err
	}
	type attempt struct {
		idx     int
		resp    Response
		retries int64
		err     error
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan attempt, 2)
	launch := func(idx int) {
		go func() {
			resp, retries, err := c.execRetry(hctx, k, req)
			ch <- attempt{idx, resp, retries, err}
		}()
	}
	launch(0)
	timer := time.NewTimer(c.hedge)
	defer timer.Stop()
	var (
		retries     int64
		hedges      int64
		outstanding = 1
		firstErr    error
	)
	for {
		select {
		case at := <-ch:
			outstanding--
			retries += at.retries
			if at.err == nil {
				if at.idx == 1 {
					c.counters[k].hedgeWins.Add(1)
				}
				return at.resp, retries, hedges, nil
			}
			if firstErr == nil {
				firstErr = at.err
			}
			if outstanding == 0 {
				return Response{}, retries, hedges, firstErr
			}
		case <-timer.C:
			if hedges == 0 && outstanding > 0 {
				hedges++
				c.counters[k].hedges.Add(1)
				outstanding++
				launch(1)
			}
		}
	}
}

// execRetry sends the sub-request, retrying only transport-level
// ErrUnavailable failures under the retry policy (exponential backoff,
// capped). Node-side errors — a failed node, admission shedding, an
// execution error — are returned as-is: the node saw the request, so
// re-sending cannot help.
func (c *Coordinator) execRetry(ctx context.Context, k int, req Request) (Response, int64, error) {
	var retries int64
	backoff := c.retry.BaseBackoff
	for attempt := 1; ; attempt++ {
		resp, err := c.tr.Exec(ctx, k, req)
		if err == nil {
			return resp, retries, nil
		}
		if !errors.Is(err, ErrUnavailable) || attempt >= c.retry.MaxAttempts {
			return Response{}, retries, err
		}
		retries++
		select {
		case <-ctx.Done():
			return Response{}, retries, ctx.Err()
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > c.retry.MaxBackoff {
			backoff = c.retry.MaxBackoff
		}
	}
}

// Append routes each row to the node owning its fragment and fans the
// per-node batches out in parallel — the single-writer-per-fragment
// invariant: one node, and only that node, ever appends a given
// fragment's rows. Appends are not retried (a re-send could duplicate
// rows on a node that ingested the batch but lost the ack); a failed
// node's batch fails the call with a NodeError while other nodes'
// batches still land.
func (c *Coordinator) Append(ctx context.Context, rows []Row) error {
	if len(rows) == 0 {
		return nil
	}
	star := c.spec.Star()
	parts := make([][]Row, len(c.counters))
	buf := make([]int, len(star.Dims))
	for ri, r := range rows {
		if len(r.Leaves) != len(star.Dims) {
			return fmt.Errorf("cluster: append row %d: %d leaves for %d dimensions", ri, len(r.Leaves), len(star.Dims))
		}
		for d, leaf := range r.Leaves {
			if leaf < 0 || int(leaf) >= star.Dims[d].LeafCard() {
				return fmt.Errorf("cluster: append row %d: %s leaf %d out of range [0,%d)", ri, star.Dims[d].Name, leaf, star.Dims[d].LeafCard())
			}
			buf[d] = int(leaf)
		}
		id := c.spec.ID(c.spec.CoordOf(buf))
		k := NodeOf(c.cl, id)
		parts[k] = append(parts[k], r)
	}
	// Fan out on the shared exec helper. Per-node failures come back as
	// values, not task errors: exec.Map aborts remaining tasks on the
	// first task error, but every node's batch must still land even when
	// one node fails.
	errs, err := exec.Map(ctx, len(parts), len(parts), func(k int) (error, error) {
		if len(parts[k]) == 0 {
			return nil, nil
		}
		if err := c.tr.Append(ctx, k, parts[k]); err != nil {
			var ne *NodeError
			if !errors.As(err, &ne) {
				err = &NodeError{Node: k, Err: err}
			}
			return err, nil
		}
		return nil, nil
	})
	if err != nil {
		return err // ctx cancellation: nothing was gathered
	}
	return errors.Join(errs...)
}

// Compact fans compaction out to every node in parallel and joins any
// failures in node order.
func (c *Coordinator) Compact(ctx context.Context) error {
	// Per-node failures return as values so every node still compacts
	// (exec.Map would abort remaining tasks on a task error).
	errs, err := exec.Map(ctx, len(c.counters), len(c.counters), func(k int) (error, error) {
		if err := c.tr.Compact(ctx, k); err != nil {
			var ne *NodeError
			if !errors.As(err, &ne) {
				err = &NodeError{Node: k, Err: err}
			}
			return err, nil
		}
		return nil, nil
	})
	if err != nil {
		return err
	}
	return errors.Join(errs...)
}

// NodeStats fetches every node's serving snapshot over the transport.
// A node that cannot answer gets a zero snapshot with only its index
// set, and the first such error is returned alongside the slice.
func (c *Coordinator) NodeStats(ctx context.Context) ([]NodeStats, error) {
	type nodeStat struct {
		st  NodeStats
		err error
	}
	parts, err := exec.Map(ctx, len(c.counters), len(c.counters), func(k int) (nodeStat, error) {
		st, err := c.tr.Stats(ctx, k)
		if err != nil {
			return nodeStat{st: NodeStats{Index: k}, err: &NodeError{Node: k, Err: err}}, nil
		}
		return nodeStat{st: st}, nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]NodeStats, len(parts))
	errs := make([]error, len(parts))
	for k, p := range parts {
		out[k], errs[k] = p.st, p.err
	}
	return out, errors.Join(errs...)
}

// ClientStats snapshots the coordinator's per-node client counters.
func (c *Coordinator) ClientStats() []ClientStats {
	out := make([]ClientStats, len(c.counters))
	for k := range out {
		cnt := &c.counters[k]
		out[k] = ClientStats{
			Queries:      cnt.queries.Load(),
			Errors:       cnt.errors.Load(),
			Retries:      cnt.retries.Load(),
			Hedges:       cnt.hedges.Load(),
			HedgeWins:    cnt.hedgeWins.Load(),
			FastFails:    cnt.fastFails.Load(),
			BreakerTrips: c.breakers[k].tripCount(),
		}
	}
	return out
}

// Close releases the transport (not the nodes behind it).
func (c *Coordinator) Close() error { return c.tr.Close() }
