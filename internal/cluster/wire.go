package cluster

import (
	"bytes"
	"encoding/gob"
	"sort"

	"repro/internal/kernel"
)

// The wire codec: responses carry a node's kernel.FragPartial as
// parallel key/aggregate slices sorted by group key — a canonical form,
// so encoding the same partial always yields the same bytes regardless
// of map iteration order — and gob frames everything that crosses the
// HTTP transport. The Local transport exchanges the identical Response
// structs without serialising, which is what lets the equivalence tests
// isolate any divergence to this file.

// packPartial canonicalises a node partial onto the response.
func packPartial(resp *Response, p kernel.FragPartial) {
	resp.Agg = p.Agg
	if p.Groups == nil {
		return
	}
	type kv struct {
		k uint64
		a kernel.Aggregate
	}
	pairs := make([]kv, 0, p.Groups.Len())
	p.Groups.ForEach(func(k uint64, a kernel.Aggregate) {
		pairs = append(pairs, kv{k, a})
	})
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	if len(pairs) == 0 {
		return
	}
	resp.GroupKeys = make([]uint64, len(pairs))
	resp.GroupAggs = make([]kernel.Aggregate, len(pairs))
	for i, p := range pairs {
		resp.GroupKeys[i] = p.k
		resp.GroupAggs[i] = p.a
	}
}

// Partial reassembles the response's kernel.FragPartial (Groups non-nil
// exactly when the sub-query was grouped).
func (r Response) Partial() kernel.FragPartial {
	p := kernel.FragPartial{Agg: r.Agg}
	if r.Grouped {
		p.Groups = kernel.NewGrouped()
		for i, k := range r.GroupKeys {
			p.Groups.Add(k, r.GroupAggs[i])
		}
	}
	return p
}

// EncodeResponse gob-encodes a response — the framing the HTTP transport
// ships partials in.
func EncodeResponse(r Response) ([]byte, error) { return encodeGob(&r) }

// DecodeResponse decodes EncodeResponse's framing.
func DecodeResponse(data []byte) (Response, error) {
	var r Response
	err := decodeGob(data, &r)
	return r, err
}

func encodeGob(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeGob(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}
