package cluster

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/alloc"
	"repro/internal/data"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/frag"
	"repro/internal/kernel"
	"repro/internal/storage"
)

// ErrNodeClosed is returned by operations on a closed Node.
var ErrNodeClosed = errors.New("cluster: node is closed")

// NodeConfig describes one node's shard and execution backend. The
// fragmentation, index configuration and cluster placement must be
// identical on every node (and on the coordinator) — they are the
// contract that makes the nodes' fragment ranges disjoint and the
// merged partials byte-identical to a single-node execution.
type NodeConfig struct {
	// Spec is the MDHF fragmentation (required).
	Spec *frag.Spec
	// Indexes is the bitmap index configuration (required).
	Indexes frag.IndexConfig
	// Index is this node's position in the cluster placement.
	Index int
	// Cluster is the node-level placement: Disks is the node count and
	// Scheme/Staggered/Cluster the same knobs the per-disk placement has,
	// reused one level up. Disks <= 1 means a single node owning every
	// fragment.
	Cluster alloc.Placement

	// OnDisk selects the paged-file backend; Dir is its root ("" means a
	// temporary directory owned and removed by the node). The in-memory
	// engine is the default.
	OnDisk bool
	Dir    string
	// Compress stores/executes WAH-compressed bitmaps.
	Compress bool
	// Disks declusters the node's on-disk backend over its own disk set
	// with DiskScheme and Staggered (the per-disk tier of the two-tier
	// model); 0 means one plain store.
	Disks      int
	DiskScheme alloc.Scheme
	Staggered  bool
	// PrefetchFact is the fact read granule in pages (0 = default 8).
	PrefetchFact int
	// IODelay simulates per-access disk latency when IODelaySet.
	IODelay    time.Duration
	IODelaySet bool
	// Workers sizes the node's own scheduler pool (<1 = one per CPU);
	// AdmitLimit bounds concurrently admitted executions (0 = unbounded),
	// shedding excess with exec.ErrOverloaded.
	Workers    int
	AdmitLimit int
	// FaultPlan and Retry install disk-fault injection and the physical
	// read retry policy on the node's disk set.
	FaultPlan *storage.FaultPlan
	Retry     *storage.RetryPolicy
	// SharedWindow enables shared multi-query scans on this node:
	// sub-requests admitted within the window against the same serving
	// state batch into one scan over their fragment union (see the
	// warehouse's WithSharedScans). <= 0 disables sharing.
	SharedWindow time.Duration
}

// nodeBackend is one epoch's backend on a node, reference-counted
// exactly like the warehouse's: the serving snapshot holds one
// reference, every pinned execution another; a retired backend cleans
// up when the last pin drops.
type nodeBackend struct {
	engine *engine.Engine
	be     *storage.Backend
	table  *data.Table
	dir    string
	own    bool
	epoch  int64

	refs    atomic.Int64
	retired atomic.Bool
}

// nodeSnap is what one node execution pins: an epoch's backend plus the
// delta set sealed so far.
type nodeSnap struct {
	epoch  int64
	b      *nodeBackend
	deltas *frag.DeltaSet
}

// Node serves one shard of a declustered cluster: the fragments the
// cluster placement assigns to its index, executed on its own scheduler
// with bounded admission, snapshot pinning, delta ingestion and
// epoch-rolling compaction — the single-node serving machinery scoped to
// a fragment range. All methods are safe for concurrent use.
type Node struct {
	cfg    NodeConfig
	sched  *exec.Scheduler
	ix     *frag.DeltaIndex
	shared *exec.Batcher[nodeSharedKey, Request, nodeSharedOut]

	mu     sync.Mutex // guards closed, cur, bgErr
	closed bool
	cur    nodeSnap
	bgErr  error

	wg         sync.WaitGroup
	appendMu   sync.Mutex // serialises Append and the compaction swap
	compacting bool       // guarded by appendMu
	seq        uint64     // guarded by appendMu

	compactMu sync.Mutex // serialises compaction runs

	rootDir string
	ownRoot bool

	failed atomic.Bool

	queries       atomic.Int64
	appends       atomic.Int64
	appendedRows  atomic.Int64
	compactions   atomic.Int64
	compactedRows atomic.Int64
}

// NewNode builds a node serving the given shard at epoch 0. The rows
// must all belong to fragments the node owns (PartitionTable produces
// exactly that); ownership is enforced on Append, while the initial
// build trusts its caller. The caller must Close the node.
func NewNode(cfg NodeConfig, rows *data.Table) (*Node, error) {
	if cfg.Spec == nil {
		return nil, fmt.Errorf("cluster: NodeConfig.Spec is required")
	}
	if cfg.Cluster.Disks < 1 {
		cfg.Cluster.Disks = 1
	}
	if err := cfg.Cluster.Validate(); err != nil {
		return nil, err
	}
	if cfg.Index < 0 || cfg.Index >= cfg.Cluster.Disks {
		return nil, fmt.Errorf("cluster: node index %d out of range [0,%d)", cfg.Index, cfg.Cluster.Disks)
	}
	if rows == nil || rows.Star != cfg.Spec.Star() {
		return nil, fmt.Errorf("cluster: node rows missing or generated for a different schema")
	}
	ix, err := frag.NewDeltaIndex(cfg.Spec, cfg.Indexes)
	if err != nil {
		return nil, err
	}
	n := &Node{cfg: cfg, ix: ix, sched: exec.NewScheduler(cfg.Workers)}
	if cfg.AdmitLimit > 0 {
		n.sched.SetLimit(cfg.AdmitLimit)
	}
	if cfg.SharedWindow > 0 {
		n.shared = exec.NewBatcher[nodeSharedKey, Request, nodeSharedOut](cfg.SharedWindow)
	}
	b, err := n.buildBackend(rows, 0)
	if err != nil {
		n.sched.Close()
		n.removeOwnedRoot()
		return nil, err
	}
	n.cur = nodeSnap{epoch: 0, b: b}
	return n, nil
}

// Index returns the node's position in the cluster placement.
func (n *Node) Index() int { return n.cfg.Index }

// owns returns the ownership filter for this node's fragment range (nil
// on a single-node cluster: every fragment is local).
func (n *Node) owns() func(int64) bool {
	if n.cfg.Cluster.Disks <= 1 {
		return nil
	}
	cl, idx := n.cfg.Cluster, n.cfg.Index
	return func(id int64) bool { return cl.FactDisk(id) == idx }
}

// Fail kills the node: every subsequent request fails fast with a typed
// NodeError wrapping ErrNodeFailed until Revive. In-flight executions
// finish normally (their snapshot stays pinned) — the fault model is a
// node that stops accepting work, not one that corrupts it.
func (n *Node) Fail() { n.failed.Store(true) }

// Revive brings a killed node back.
func (n *Node) Revive() { n.failed.Store(false) }

// Failed reports whether the node is killed.
func (n *Node) Failed() bool { return n.failed.Load() }

// begin registers one in-flight operation.
func (n *Node) begin() (func(), error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrNodeClosed
	}
	n.wg.Add(1)
	return n.wg.Done, nil
}

// pin acquires the current snapshot for one execution.
func (n *Node) pin() nodeSnap {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cur.b.refs.Add(1)
	return n.cur
}

func (n *Node) unpin(b *nodeBackend) {
	if b.refs.Add(-1) == 0 && b.retired.Load() {
		n.cleanupBackend(b)
	}
}

func (n *Node) retire(b *nodeBackend) {
	b.retired.Store(true)
	n.unpin(b)
}

func (n *Node) cleanupBackend(b *nodeBackend) {
	var err error
	if b.be != nil {
		err = errors.Join(err, b.be.Close())
	}
	if b.own && b.dir != "" {
		err = errors.Join(err, os.RemoveAll(b.dir))
	}
	if err != nil {
		n.mu.Lock()
		n.bgErr = errors.Join(n.bgErr, err)
		n.mu.Unlock()
	}
}

// nodeErr wraps a node-side failure with the node index.
func (n *Node) nodeErr(err error) error {
	return &NodeError{Node: n.cfg.Index, Err: err}
}

// Exec runs one scattered sub-query over the fragments this node owns
// and returns the node's partial. The execution is admitted to the
// node's own scheduler (shedding with exec.ErrOverloaded past the
// admission limit) and pins the node's serving snapshot, so concurrent
// appends and compactions never change an in-flight partial.
func (n *Node) Exec(ctx context.Context, req Request) (Response, error) {
	n.queries.Add(1)
	if n.failed.Load() {
		return Response{}, n.nodeErr(ErrNodeFailed)
	}
	release, err := n.begin()
	if err != nil {
		return Response{}, n.nodeErr(err)
	}
	defer release()
	snap := n.pin()
	defer n.unpin(snap.b)
	if n.shared != nil {
		resp, handled, err := n.execShared(ctx, snap, req)
		if handled {
			return resp, err
		}
		// Batch-wide failure: fall back to solo execution below, so node-
		// side batching is only ever a performance effect.
	}
	q := req.Query()
	deltas := kernel.Deltas{Ix: n.ix, Set: snap.deltas}
	resp := Response{Epoch: snap.epoch, Grouped: len(q.GroupBy) > 0}
	if snap.b.engine != nil {
		p, st, err := snap.b.engine.ExecutePartialDeltas(ctx, n.sched, q, deltas, n.owns())
		if err != nil {
			return Response{}, n.nodeErr(err)
		}
		resp.Engine = st
		resp.DeltaRows = st.DeltaRows
		packPartial(&resp, p)
		return resp, nil
	}
	p, io, err := snap.b.be.Exec.ExecutePartialDeltas(ctx, q, deltas, n.owns())
	if err != nil {
		return Response{}, n.nodeErr(err)
	}
	resp.IO = io
	resp.DeltaRows = io.DeltaRows
	packPartial(&resp, p)
	return resp, nil
}

// nodeSharedKey partitions batch compatibility exactly like the
// warehouse's: same epoch plus same delta high-water mark means a
// byte-identical serving state.
type nodeSharedKey struct {
	epoch int64
	seq   uint64
}

// nodeSharedOut is one batched sub-request's outcome: its assembled
// response, or its per-query error.
type nodeSharedOut struct {
	resp Response
	err  error
}

// execShared routes one sub-request through the node's admission
// batcher. handled=false reports a batch-wide failure the caller should
// retry solo; per-query errors (validation) come back handled with the
// error attributed to this node.
func (n *Node) execShared(ctx context.Context, snap nodeSnap, req Request) (Response, bool, error) {
	key := nodeSharedKey{epoch: snap.epoch, seq: snap.deltas.MaxSeq()}
	out, _, err := n.shared.Do(ctx, key, req, func(items []Request) ([]nodeSharedOut, error) {
		return n.runSharedBatch(ctx, snap, items)
	})
	if err != nil {
		if ctx.Err() != nil {
			return Response{}, true, err
		}
		return Response{}, false, err
	}
	if out.err != nil {
		return Response{}, true, n.nodeErr(out.err)
	}
	return out.resp, true, nil
}

// runSharedBatch executes one sealed batch of sub-requests in a single
// shared pass over the fragments this node owns, assembling each
// member's Response exactly as solo Exec would.
func (n *Node) runSharedBatch(ctx context.Context, snap nodeSnap, items []Request) ([]nodeSharedOut, error) {
	qs := make([]frag.Query, len(items))
	for i := range items {
		qs[i] = items[i].Query()
	}
	deltas := kernel.Deltas{Ix: n.ix, Set: snap.deltas}
	outs := make([]nodeSharedOut, len(items))
	if snap.b.engine != nil {
		rs, err := snap.b.engine.ExecuteSharedDeltas(ctx, n.sched, qs, deltas, n.owns())
		if err != nil {
			return nil, err
		}
		for i, r := range rs {
			if r.Err != nil {
				outs[i].err = r.Err
				continue
			}
			resp := Response{Epoch: snap.epoch, Grouped: len(qs[i].GroupBy) > 0}
			resp.Engine = r.St
			resp.DeltaRows = r.St.DeltaRows
			resp.Shared = r.Shared
			packPartial(&resp, r.Part)
			outs[i].resp = resp
		}
		return outs, nil
	}
	rs, err := snap.b.be.Exec.ExecuteSharedDeltas(ctx, qs, deltas, n.owns())
	if err != nil {
		return nil, err
	}
	for i, r := range rs {
		if r.Err != nil {
			outs[i].err = r.Err
			continue
		}
		resp := Response{Epoch: snap.epoch, Grouped: len(qs[i].GroupBy) > 0}
		resp.IO = r.St
		resp.DeltaRows = r.St.DeltaRows
		resp.Shared = r.Shared
		packPartial(&resp, r.Part)
		outs[i].resp = resp
	}
	return outs, nil
}

// Append ingests a batch of rows into the node's delta set. Every row
// must belong to a fragment this node owns — the single-writer-per-
// fragment invariant; rows for foreign fragments are rejected before
// anything is admitted. Within each fragment the rows keep arrival
// order, small tail segments coalesce (except while a compaction has
// frozen its boundary), and the new delta set publishes atomically:
// queries admitted after Append returns see the rows, pinned ones do
// not.
func (n *Node) Append(ctx context.Context, rows []Row) error {
	if len(rows) == 0 {
		return nil
	}
	if n.failed.Load() {
		return n.nodeErr(ErrNodeFailed)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	release, err := n.begin()
	if err != nil {
		return n.nodeErr(err)
	}
	defer release()
	star := n.cfg.Spec.Star()
	buf := make([]int, len(star.Dims))
	ids := make([]int64, len(rows))
	for ri := range rows {
		r := &rows[ri]
		if len(r.Leaves) != len(star.Dims) {
			return n.nodeErr(fmt.Errorf("append row %d has %d leaves for %d dimensions", ri, len(r.Leaves), len(star.Dims)))
		}
		for d, leaf := range r.Leaves {
			if leaf < 0 || int(leaf) >= star.Dims[d].LeafCard() {
				return n.nodeErr(fmt.Errorf("append row %d: %s leaf %d out of range [0,%d)", ri, star.Dims[d].Name, leaf, star.Dims[d].LeafCard()))
			}
			buf[d] = int(leaf)
		}
		id := n.cfg.Spec.ID(n.cfg.Spec.CoordOf(buf))
		if NodeOf(n.cfg.Cluster, id) != n.cfg.Index {
			return n.nodeErr(fmt.Errorf("append row %d: fragment %d owned by node %d, not %d (single-writer-per-fragment)",
				ri, id, NodeOf(n.cfg.Cluster, id), n.cfg.Index))
		}
		ids[ri] = id
	}

	n.appendMu.Lock()
	defer n.appendMu.Unlock()

	byFrag := make(map[int64][]int)
	var order []int64
	for ri := range rows {
		if _, ok := byFrag[ids[ri]]; !ok {
			order = append(order, ids[ri])
		}
		byFrag[ids[ri]] = append(byFrag[ids[ri]], ri)
	}

	n.mu.Lock()
	set := n.cur.deltas
	n.mu.Unlock()
	for _, id := range order {
		var sb *frag.SegmentBuilder
		replace := false
		if tail := set.Tail(id); tail != nil && !n.compacting && tail.Rows() < coalesceRows {
			sb = n.ix.ExtendSegment(tail)
			replace = true
		} else {
			sb = n.ix.NewSegment(id)
		}
		for _, ri := range byFrag[id] {
			r := &rows[ri]
			sb.Add(r.Leaves, r.UnitsSold, r.DollarSales, r.Cost)
		}
		n.seq++
		seg := sb.Seal(n.seq)
		if replace {
			set = set.WithTailReplaced(seg)
		} else {
			set = set.With(seg)
		}
	}

	n.mu.Lock()
	n.cur.deltas = set
	n.mu.Unlock()
	n.appends.Add(1)
	n.appendedRows.Add(int64(len(rows)))
	return nil
}

// coalesceRows mirrors the warehouse's tail-coalescing bound.
const coalesceRows = 4096

// Compact synchronously folds the node's sealed delta segments into a
// rebuilt backend at the next epoch — the warehouse's three-phase
// epoch roll-over scoped to one shard. It is a no-op when nothing was
// appended; queries keep being admitted throughout (pinning the old
// epoch) and appends keep landing past the frozen boundary.
func (n *Node) Compact(ctx context.Context) error {
	if n.failed.Load() {
		return n.nodeErr(ErrNodeFailed)
	}
	release, err := n.begin()
	if err != nil {
		return n.nodeErr(err)
	}
	defer release()
	n.compactMu.Lock()
	defer n.compactMu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}

	// Phase 1: freeze the boundary.
	n.appendMu.Lock()
	n.mu.Lock()
	snap := n.cur
	if snap.deltas.Rows() == 0 {
		n.mu.Unlock()
		n.appendMu.Unlock()
		return nil
	}
	snap.b.refs.Add(1)
	n.mu.Unlock()
	boundary := snap.deltas.MaxSeq()
	n.compacting = true
	n.appendMu.Unlock()
	defer n.unpin(snap.b)
	clearCompacting := func() {
		n.appendMu.Lock()
		n.compacting = false
		n.appendMu.Unlock()
	}

	// Phase 2: rebuild, lock-free.
	merged := kernel.MergedTable(snap.b.table, snap.deltas)
	nb, err := n.buildBackend(merged, snap.epoch+1)
	if err != nil {
		clearCompacting()
		return n.nodeErr(err)
	}

	// Phase 3: swap.
	n.appendMu.Lock()
	n.mu.Lock()
	old := n.cur
	n.cur = nodeSnap{epoch: snap.epoch + 1, b: nb, deltas: old.deltas.After(boundary)}
	n.mu.Unlock()
	n.compacting = false
	n.appendMu.Unlock()
	n.retire(old.b)
	n.compactions.Add(1)
	n.compactedRows.Add(snap.deltas.Rows())
	return nil
}

// Stats snapshots the node's serving counters.
func (n *Node) Stats() NodeStats {
	st := NodeStats{
		Index:         n.cfg.Index,
		Appends:       n.appends.Load(),
		AppendedRows:  n.appendedRows.Load(),
		Compactions:   n.compactions.Load(),
		CompactedRows: n.compactedRows.Load(),
		Queries:       n.queries.Load(),
		Failed:        n.failed.Load(),
		Sched:         n.sched.Stats(),
	}
	n.mu.Lock()
	st.Epoch = n.cur.epoch
	st.DeltaSegments = n.cur.deltas.Segments()
	st.DeltaRows = n.cur.deltas.Rows()
	n.mu.Unlock()
	return st
}

// Close drains in-flight work, stops the scheduler, closes the backend
// files and removes the node's own temporary directory.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()
	n.wg.Wait()
	n.sched.Close()
	n.mu.Lock()
	cur := n.cur
	n.cur = nodeSnap{}
	n.mu.Unlock()
	if cur.b != nil {
		n.retire(cur.b)
	}
	var err error
	if n.ownRoot && n.rootDir != "" {
		err = errors.Join(err, os.RemoveAll(n.rootDir))
	}
	n.mu.Lock()
	err = errors.Join(err, n.bgErr)
	n.bgErr = nil
	n.mu.Unlock()
	return err
}

// buildBackend builds one epoch's backend from the node's base rows —
// the in-memory engine, or an on-disk Backend in its own epoch
// subdirectory of the node root.
func (n *Node) buildBackend(t *data.Table, epoch int64) (*nodeBackend, error) {
	b := &nodeBackend{table: t, epoch: epoch}
	b.refs.Store(1)
	if !n.cfg.OnDisk {
		var err error
		if n.cfg.Compress {
			b.engine, err = engine.BuildCompressed(t, n.cfg.Spec, n.cfg.Indexes)
		} else {
			b.engine, err = engine.Build(t, n.cfg.Spec, n.cfg.Indexes)
		}
		if err != nil {
			return nil, err
		}
		return b, nil
	}
	if n.rootDir == "" {
		dir := n.cfg.Dir
		if dir == "" {
			var err error
			dir, err = os.MkdirTemp("", fmt.Sprintf("mdhf-node%02d-*", n.cfg.Index))
			if err != nil {
				return nil, err
			}
			n.ownRoot = true
		}
		n.rootDir = dir
	}
	epochDir := filepath.Join(n.rootDir, fmt.Sprintf("epoch-%03d", epoch))
	cfg := storage.BackendConfig{
		Compress:     n.cfg.Compress,
		PrefetchFact: n.cfg.PrefetchFact,
		Sched:        n.sched,
	}
	if n.cfg.Disks > 0 {
		cfg.Placement = alloc.Placement{Disks: n.cfg.Disks, Scheme: n.cfg.DiskScheme, Staggered: n.cfg.Staggered}
	}
	be, err := storage.BuildBackend(epochDir, t, n.cfg.Spec, n.cfg.Indexes, cfg)
	if err != nil {
		os.RemoveAll(epochDir)
		return nil, err
	}
	if be.Disks != nil {
		if n.cfg.Retry != nil {
			be.Disks.SetRetryPolicy(*n.cfg.Retry)
		}
		if n.cfg.FaultPlan != nil {
			be.Disks.SetFaultPlan(n.cfg.FaultPlan)
		}
	}
	if n.cfg.IODelaySet {
		if be.Disks != nil {
			be.Disks.SetIODelay(n.cfg.IODelay)
		} else {
			be.Store.SetIODelay(n.cfg.IODelay)
			be.Bitmaps.SetIODelay(n.cfg.IODelay)
		}
	}
	b.be, b.dir, b.own = be, epochDir, true
	return b, nil
}

// removeOwnedRoot deletes the node's own temporary root after a failed
// build.
func (n *Node) removeOwnedRoot() {
	if n.ownRoot && n.rootDir != "" {
		os.RemoveAll(n.rootDir)
		n.rootDir, n.ownRoot = "", false
	}
}
