package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/alloc"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/frag"
	"repro/internal/storage"
)

// buildHTTPCluster serves each shard from a loopback httptest server and
// returns a coordinator over the real HTTP transport, plus the in-process
// nodes behind the servers (for Fail/Revive).
func buildHTTPCluster(t *testing.T, n int, scheme alloc.Scheme) (*Coordinator, []*Node) {
	t.Helper()
	_, spec, icfg, tab, _ := clusterFixture(t)
	cl := alloc.Placement{Disks: n, Scheme: scheme}
	parts := PartitionTable(spec, cl, tab)
	nodes := make([]*Node, n)
	addrs := make([]string, n)
	for k := range nodes {
		node, err := NewNode(NodeConfig{Spec: spec, Indexes: icfg, Index: k, Cluster: cl}, parts[k])
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		nodes[k] = node
		srv := httptest.NewServer(NewNodeHandler(node))
		t.Cleanup(srv.Close)
		addrs[k] = srv.URL
	}
	tr, err := NewHTTPTransport(addrs, nil)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(CoordinatorConfig{Spec: spec, Cluster: cl}, tr)
	if err != nil {
		t.Fatal(err)
	}
	return coord, nodes
}

// TestHTTPLoopbackEquivalence runs the query list through real HTTP
// servers and checks the results byte-identical to the brute-force scan
// — the wire codec leg of the equivalence matrix. Runs in short mode:
// loopback servers, no real network latency.
func TestHTTPLoopbackEquivalence(t *testing.T) {
	_, _, _, tab, qs := clusterFixture(t)
	coord, _ := buildHTTPCluster(t, 4, alloc.GapRoundRobin)
	defer coord.Close()
	for _, q := range qs {
		want, err := engine.ScanGrouped(tab, q)
		if err != nil {
			t.Fatal(err)
		}
		got, st, err := coord.Execute(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("query %+v: http cluster %+v != scan %+v", q, got, want)
		}
		if st.Retries != 0 {
			t.Errorf("query %+v: %d retries on a healthy loopback cluster", q, st.Retries)
		}
	}
}

// TestHTTPAppendAndStats exercises the ingest and stats paths over the
// wire: an append routed to its owner is visible in the next query, and
// NodeStats round-trips with the ingestion counters intact.
func TestHTTPAppendAndStats(t *testing.T) {
	star, _, _, tab, _ := clusterFixture(t)
	coord, nodes := buildHTTPCluster(t, 2, alloc.RoundRobin)
	defer coord.Close()
	ctx := context.Background()

	q, err := frag.ParseQuery(star, "")
	if err != nil {
		t.Fatal(err)
	}
	before, _, err := coord.Execute(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	leaves := tab.LeafMembers(0, make([]int, len(tab.Star.Dims)))
	row := Row{Leaves: make([]int32, len(leaves)), UnitsSold: 1, DollarSales: 2, Cost: 1}
	for d, m := range leaves {
		row.Leaves[d] = int32(m)
	}
	if err := coord.Append(ctx, []Row{row}); err != nil {
		t.Fatal(err)
	}
	after, _, err := coord.Execute(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if after.Count != before.Count+1 {
		t.Fatalf("append not visible over http: count %d -> %d", before.Count, after.Count)
	}

	sts, err := coord.NodeStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var appended int64
	for k, st := range sts {
		if st.Index != k {
			t.Errorf("node %d stats report index %d", k, st.Index)
		}
		appended += st.AppendedRows
		if want := nodes[k].Stats().AppendedRows; st.AppendedRows != want {
			t.Errorf("node %d: wire AppendedRows %d != local %d", k, st.AppendedRows, want)
		}
	}
	if appended != 1 {
		t.Fatalf("cluster-wide AppendedRows = %d, want 1", appended)
	}
	if err := coord.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	again, _, err := coord.Execute(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, after) {
		t.Fatalf("compaction over http changed the result: %+v != %+v", again, after)
	}
}

// TestHTTPErrorMapping checks that node-side typed errors survive the
// status-code round trip: a killed node comes back as ErrNodeFailed in a
// NodeError naming the right node, and admission shedding as
// exec.ErrOverloaded — neither retried.
func TestHTTPErrorMapping(t *testing.T) {
	star, _, _, _, _ := clusterFixture(t)
	coord, nodes := buildHTTPCluster(t, 2, alloc.RoundRobin)
	defer coord.Close()
	ctx := context.Background()

	nodes[1].Fail()
	q, err := frag.ParseQuery(star, "")
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = coord.Execute(ctx, q)
	if !errors.Is(err, ErrNodeFailed) {
		t.Fatalf("killed node over http: got %v, want ErrNodeFailed", err)
	}
	var ne *NodeError
	if !errors.As(err, &ne) || ne.Node != 1 {
		t.Fatalf("error does not name node 1: %v", err)
	}
	if st := coord.ClientStats()[1]; st.Retries != 0 {
		t.Fatalf("node-failed was retried %d times; node errors must not be retried", st.Retries)
	}
	nodes[1].Revive()
	if _, _, err := coord.Execute(ctx, q); err != nil {
		t.Fatalf("after revive: %v", err)
	}

	// Overload mapping, via a bare handler returning the shed header.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeError(w, fmt.Errorf("node 0: %w", exec.ErrOverloaded))
	}))
	defer srv.Close()
	tr, err := NewHTTPTransport([]string{srv.URL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = tr.Exec(ctx, 0, Request{})
	if !errors.Is(err, exec.ErrOverloaded) {
		t.Fatalf("overload status: got %v, want exec.ErrOverloaded", err)
	}
	if errors.Is(err, ErrUnavailable) {
		t.Fatal("overload must not be marked retryable")
	}
}

// TestHTTPUnavailableRetried checks the transport-level failure path: a
// connection that never reaches a node wraps ErrUnavailable, and the
// coordinator retries it (here: forever down, so MaxAttempts are spent).
func TestHTTPUnavailableRetried(t *testing.T) {
	star, spec, icfg, tab, _ := clusterFixture(t)
	cl := alloc.Placement{Disks: 1, Scheme: alloc.RoundRobin}
	node, err := NewNode(NodeConfig{Spec: spec, Indexes: icfg, Index: 0, Cluster: cl}, PartitionTable(spec, cl, tab)[0])
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	srv := httptest.NewServer(NewNodeHandler(node))
	addr := srv.URL
	srv.Close() // nothing listens: every dial fails before reaching a node
	tr, err := NewHTTPTransport([]string{addr}, nil)
	if err != nil {
		t.Fatal(err)
	}
	retry := storage.RetryPolicy{MaxAttempts: 3, BaseBackoff: 1, MaxBackoff: 1, BreakerThreshold: 100}
	coord, err := NewCoordinator(CoordinatorConfig{Spec: spec, Cluster: cl, Retry: retry}, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	q, err := frag.ParseQuery(star, "")
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = coord.Execute(context.Background(), q)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("dead server: got %v, want ErrUnavailable", err)
	}
	if st := coord.ClientStats()[0]; st.Retries != int64(retry.MaxAttempts-1) {
		t.Fatalf("Retries = %d, want %d (every attempt re-sent)", st.Retries, retry.MaxAttempts-1)
	}
}
