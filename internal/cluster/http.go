package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/exec"
)

// The HTTP transport: one Node behind NewNodeHandler (POST /exec,
// /append, /compact; GET /stats; gob bodies), N base URLs in front of
// HTTPTransport. Node-side failures travel as status codes plus an
// X-Cluster-Error header naming the typed error, so the client can
// rebuild the same error values the Local transport returns; transport-
// level failures (connection refused, body cut short) wrap
// ErrUnavailable and are the coordinator's only retryable errors.

const (
	errHeader     = "X-Cluster-Error"
	errNodeFailed = "node-failed"
	errOverloaded = "overloaded"
	contentType   = "application/x-gob"
)

// NewNodeHandler serves one node over HTTP. Mount it at the server
// root: the handler owns the /exec, /append, /compact and /stats paths.
func NewNodeHandler(n *Node) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /exec", func(w http.ResponseWriter, r *http.Request) {
		var req Request
		if err := decodeBody(r.Body, &req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := n.Exec(r.Context(), req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeGob(w, &resp)
	})
	mux.HandleFunc("POST /append", func(w http.ResponseWriter, r *http.Request) {
		var rows []Row
		if err := decodeBody(r.Body, &rows); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := n.Append(r.Context(), rows); err != nil {
			writeError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /compact", func(w http.ResponseWriter, r *http.Request) {
		if err := n.Compact(r.Context()); err != nil {
			writeError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		st := n.Stats()
		writeGob(w, &st)
	})
	return mux
}

func decodeBody(body io.Reader, v any) error {
	data, err := io.ReadAll(body)
	if err != nil {
		return err
	}
	return decodeGob(data, v)
}

// writeError maps a node-side error onto a status code and the typed
// error header. 503 = killed node, 429 = admission shed, 500 = any
// other execution error; none of them are retryable.
func writeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrNodeFailed):
		w.Header().Set(errHeader, errNodeFailed)
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, exec.ErrOverloaded):
		w.Header().Set(errHeader, errOverloaded)
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func writeGob(w http.ResponseWriter, v any) {
	data, err := encodeGob(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", contentType)
	w.Write(data)
}

// HTTPTransport talks to N node servers (NewNodeHandler each) at the
// given base URLs, node k at addrs[k]. Connection-level failures wrap
// ErrUnavailable so the coordinator's retry loop re-sends them; node-
// side errors are rebuilt from the typed error header and returned
// as-is.
type HTTPTransport struct {
	addrs  []string
	client *http.Client
}

// NewHTTPTransport returns a transport over the node base URLs
// (e.g. "http://10.0.0.7:7070"). A nil client uses a default with a
// 30s overall timeout.
func NewHTTPTransport(addrs []string, client *http.Client) (*HTTPTransport, error) {
	if len(addrs) == 0 {
		return nil, errors.New("cluster: no node addresses")
	}
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	return &HTTPTransport{addrs: addrs, client: client}, nil
}

// Nodes returns the node count.
func (t *HTTPTransport) Nodes() int { return len(t.addrs) }

// Exec runs one sub-query on node k's server.
func (t *HTTPTransport) Exec(ctx context.Context, node int, req Request) (Response, error) {
	var resp Response
	err := t.post(ctx, node, "/exec", &req, &resp)
	return resp, err
}

// Append ingests rows on node k's server.
func (t *HTTPTransport) Append(ctx context.Context, node int, rows []Row) error {
	return t.post(ctx, node, "/append", &rows, nil)
}

// Compact compacts node k's shard.
func (t *HTTPTransport) Compact(ctx context.Context, node int) error {
	return t.post(ctx, node, "/compact", nil, nil)
}

// Stats snapshots node k's counters.
func (t *HTTPTransport) Stats(ctx context.Context, node int) (NodeStats, error) {
	var st NodeStats
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.addrs[node]+"/stats", nil)
	if err != nil {
		return st, err
	}
	hr, err := t.client.Do(req)
	if err != nil {
		return st, fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		return st, t.statusErr(node, hr)
	}
	if err := decodeBody(hr.Body, &st); err != nil {
		return st, fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	return st, nil
}

// Close is a no-op: the http.Client's pooled connections are shared.
func (t *HTTPTransport) Close() error { return nil }

// post sends a gob body and decodes the gob reply into out (when
// non-nil). Errors before a status line arrives — and truncated reply
// bodies — wrap ErrUnavailable; error statuses are rebuilt into the
// node's typed error.
func (t *HTTPTransport) post(ctx context.Context, node int, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := encodeGob(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.addrs[node]+path, body)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", contentType)
	hr, err := t.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	defer hr.Body.Close()
	if hr.StatusCode < 200 || hr.StatusCode > 299 {
		return t.statusErr(node, hr)
	}
	if out == nil {
		io.Copy(io.Discard, hr.Body)
		return nil
	}
	if err := decodeBody(hr.Body, out); err != nil {
		return fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	return nil
}

// statusErr rebuilds the node-side error from the status and typed
// error header. These reached the node, so they are not retryable.
func (t *HTTPTransport) statusErr(node int, hr *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(hr.Body, 512))
	switch hr.Header.Get(errHeader) {
	case errNodeFailed:
		return &NodeError{Node: node, Err: ErrNodeFailed}
	case errOverloaded:
		return &NodeError{Node: node, Err: exec.ErrOverloaded}
	}
	return &NodeError{Node: node, Err: fmt.Errorf("http %s: %s", strconv.Itoa(hr.StatusCode), string(msg))}
}
