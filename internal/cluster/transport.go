package cluster

import (
	"context"

	"repro/internal/exec"
	"repro/internal/frag"
	"repro/internal/kernel"
	"repro/internal/storage"
)

// Request is one scattered sub-query: the star query's predicates and
// GROUP BY, shipped verbatim (both are plain index triples, so the gob
// encoding is trivial). Each node intersects the query's relevant
// fragments with the fragment range it owns; the coordinator never
// enumerates per-node fragment lists onto the wire.
type Request struct {
	Preds   []frag.Pred
	GroupBy []frag.LevelRef
}

// Query reassembles the star query.
func (r Request) Query() frag.Query {
	return frag.Query{Preds: r.Preds, GroupBy: r.GroupBy}
}

// Response is one node's partial: the grand-total contribution plus, for
// grouped queries, the per-group partial aggregates as parallel slices
// sorted by group key — a canonical (deterministic) encoding of the
// kernel's group map. Both transports exchange this one struct, so the
// coordinator's merge is transport-independent.
type Response struct {
	Agg kernel.Aggregate
	// Grouped distinguishes "grouped query, zero matching groups" from an
	// ungrouped execution (both carry empty key slices).
	Grouped   bool
	GroupKeys []uint64
	GroupAggs []kernel.Aggregate

	// Epoch and DeltaRows report the node snapshot the partial was served
	// from; Engine and IO carry the node's work/physical-I/O counters for
	// the coordinator's unified stats.
	Epoch     int64
	DeltaRows int64
	Engine    kernel.Stats
	IO        storage.IOStats
	// Shared reports the node-side shared-scan batching effect on this
	// sub-request (zero unless the node was built with a SharedWindow).
	Shared kernel.SharedScanStats
}

// NodeStats is one node's serving snapshot, fetched over the transport.
type NodeStats struct {
	// Index is the node's position in the cluster placement.
	Index int
	// Epoch is the node's current serving epoch.
	Epoch int64
	// DeltaSegments and DeltaRows describe the node's live delta set.
	DeltaSegments int
	DeltaRows     int64
	// Appends, AppendedRows, Compactions and CompactedRows count the
	// node's ingestion activity since it was built.
	Appends       int64
	AppendedRows  int64
	Compactions   int64
	CompactedRows int64
	// Queries counts Exec requests served (including failed ones).
	Queries int64
	// Failed reports a killed node (see Node.Fail).
	Failed bool
	// Sched is the node's admission scheduler accounting.
	Sched exec.SchedStats
}

// Transport carries the coordinator's sub-requests to the numbered
// nodes. Implementations must be safe for concurrent use; errors that
// mean "the request may not have reached the node" must wrap
// ErrUnavailable (they are the only errors the coordinator retries).
type Transport interface {
	// Nodes returns the node count the transport serves.
	Nodes() int
	// Exec runs one sub-query on the node and returns its partial.
	Exec(ctx context.Context, node int, req Request) (Response, error)
	// Append ingests rows (all owned by the node) into the node's deltas.
	Append(ctx context.Context, node int, rows []Row) error
	// Compact folds the node's sealed deltas into its next epoch.
	Compact(ctx context.Context, node int) error
	// Stats snapshots the node's serving counters.
	Stats(ctx context.Context, node int) (NodeStats, error)
	// Close releases the transport (not the nodes behind it).
	Close() error
}

// Local is the in-process transport: direct method calls on a []*Node,
// with no encoding and no sockets — the deterministic harness the
// equivalence matrix runs under -race, and the oracle the real transport
// is checked against (both exchange the identical Response struct, so a
// divergence isolates to the wire codec).
type Local struct {
	nodes []*Node
}

// NewLocal wraps the nodes in an in-process transport.
func NewLocal(nodes []*Node) *Local { return &Local{nodes: nodes} }

// Nodes returns the node count.
func (l *Local) Nodes() int { return len(l.nodes) }

// Exec runs the sub-query directly on the node.
func (l *Local) Exec(ctx context.Context, node int, req Request) (Response, error) {
	return l.nodes[node].Exec(ctx, req)
}

// Append ingests the rows directly on the node.
func (l *Local) Append(ctx context.Context, node int, rows []Row) error {
	return l.nodes[node].Append(ctx, rows)
}

// Compact compacts the node synchronously.
func (l *Local) Compact(ctx context.Context, node int) error {
	return l.nodes[node].Compact(ctx)
}

// Stats snapshots the node's counters.
func (l *Local) Stats(ctx context.Context, node int) (NodeStats, error) {
	return l.nodes[node].Stats(), ctx.Err()
}

// Close is a no-op: the nodes' owner closes them.
func (l *Local) Close() error { return nil }
