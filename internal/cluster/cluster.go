// Package cluster is the multi-node declustered serving layer: the same
// placement math the paper uses to decluster MDHF fragments over D disks
// (Section 4.6, Figure 2), applied one level up to shard fragments over
// N nodes. A Node wraps one node's shard — an in-memory engine or an
// on-disk storage.Backend plus its own admission scheduler, snapshot
// pinning and delta ingestion — and serves fragment-range partials; a
// Coordinator plans a query against the cluster-level alloc.Placement,
// scatters per-node sub-queries over a Transport, and merges the
// returned partials in node order. Per-key aggregate addition commutes
// and the nodes' fragment ranges are disjoint, so the merged result —
// flattened through the shared kernel.Grouper — is byte-identical to a
// single node holding the union of the rows, at any node count, either
// placement scheme, and on either transport.
//
// Two transports implement the one Transport interface: Local, an
// in-process harness over a []*Node used for deterministic -race
// equivalence testing (the same oracle discipline as storage.DiskSet),
// and HTTPTransport, a real loopback/network transport exchanging
// gob-encoded partials, with per-node retry/backoff (reusing the storage
// RetryPolicy shape), a per-node circuit breaker and hedged straggler
// requests in the Coordinator.
//
// Writes follow the single-writer-per-fragment invariant: every
// fragment id is owned by exactly one node (NodeOf), Coordinator.Append
// routes each row to its owning node, and a Node rejects rows for
// fragments it does not own — so no fragment's delta chain is ever
// written from two places and per-fragment row order stays the
// deterministic arrival order compaction and queries both rely on.
package cluster

import (
	"errors"
	"fmt"

	"repro/internal/alloc"
	"repro/internal/data"
	"repro/internal/frag"
)

// ErrNodeFailed is the terminal error of a node that was killed (see
// Node.Fail): requests fail fast without touching the backend until the
// node is revived.
var ErrNodeFailed = errors.New("cluster: node failed")

// ErrUnavailable marks a transport-level failure (connection refused,
// request not delivered): the request may never have reached the node,
// so the coordinator retries it under its RetryPolicy. Node-side errors
// are never wrapped in it and are not retried.
var ErrUnavailable = errors.New("cluster: node unavailable")

// ErrBreakerOpen is returned by the coordinator for a node whose circuit
// breaker is open: the request failed fast without a network round trip.
var ErrBreakerOpen = errors.New("cluster: node circuit breaker open")

// NodeError wraps any failure of one node's sub-request with the node
// index; unwrap with errors.As / errors.Is.
type NodeError struct {
	Node int
	Err  error
}

func (e *NodeError) Error() string {
	return fmt.Sprintf("cluster: node %d: %v", e.Node, e.Err)
}

func (e *NodeError) Unwrap() error { return e.Err }

// Row is one incoming fact row: the leaf member per dimension (schema
// dimension order) plus the three APB-1 measures. It is the cluster
// counterpart of the facade's FactRow, kept gob-friendly for the wire.
type Row struct {
	Leaves      []int32
	UnitsSold   int64
	DollarSales int64
	Cost        int64
}

// NodeOf returns the node owning fragment id under the cluster-level
// placement — the single writer (and the only server) of that
// fragment's rows.
func NodeOf(cl alloc.Placement, id int64) int {
	if cl.Disks <= 1 {
		return 0
	}
	return cl.FactDisk(id)
}

// PartitionTable splits a fact table into one shard per node, routing
// every row to the node owning its fragment. Shards share the input's
// *schema.Star (engines and stores check schema identity by pointer)
// and preserve the input's row order within each shard, so a shard
// rebuilt elsewhere serves deterministic results.
func PartitionTable(spec *frag.Spec, cl alloc.Placement, t *data.Table) []*data.Table {
	n := cl.Disks
	if n < 1 {
		n = 1
	}
	parts := make([]*data.Table, n)
	for k := range parts {
		parts[k] = &data.Table{Star: t.Star, Dims: make([][]int32, len(t.Dims))}
	}
	buf := make([]int, len(t.Star.Dims))
	for i := 0; i < t.N(); i++ {
		id := spec.ID(spec.CoordOf(t.LeafMembers(i, buf)))
		p := parts[NodeOf(cl, id)]
		for d := range t.Dims {
			p.Dims[d] = append(p.Dims[d], t.Dims[d][i])
		}
		p.UnitsSold = append(p.UnitsSold, t.UnitsSold[i])
		p.DollarSales = append(p.DollarSales, t.DollarSales[i])
		p.Cost = append(p.Cost, t.Cost[i])
	}
	return parts
}
