package cluster

import (
	"sync"
	"time"
)

// breaker is the coordinator's per-node circuit breaker: after
// `threshold` consecutive failed sub-requests the node is considered
// down and requests to it fail fast (ErrBreakerOpen) for `cooldown`,
// after which traffic is allowed through again — a success closes the
// breaker, another failure streak re-opens it. It protects tail latency
// the same way the storage layer's per-disk breaker does, one level up.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	strikes   int
	openUntil time.Time
	trips     int64
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a request may proceed (false = open, fail fast).
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return !now.Before(b.openUntil)
}

// success closes the breaker.
func (b *breaker) success() {
	b.mu.Lock()
	b.strikes = 0
	b.mu.Unlock()
}

// failure records one failed sub-request, opening the breaker on the
// threshold'th consecutive one.
func (b *breaker) failure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.strikes++
	if b.strikes >= b.threshold {
		b.openUntil = now.Add(b.cooldown)
		b.strikes = 0
		b.trips++
	}
}

// tripCount returns the number of times the breaker has opened.
func (b *breaker) tripCount() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
