package cluster

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"repro/internal/kernel"
)

func TestPackPartialCanonical(t *testing.T) {
	// Two partials with the same content built in different insertion
	// orders must encode to identical bytes (sorted parallel slices).
	build := func(keys []uint64) kernel.FragPartial {
		g := kernel.NewGrouped()
		for i, k := range keys {
			g.Add(k, kernel.Aggregate{Count: int64(i%3) + 1, UnitsSold: int64(k)})
		}
		// Re-add in the given order so both builds hold identical sums.
		return kernel.FragPartial{Agg: kernel.Aggregate{Count: 9}, Groups: g}
	}
	a := build([]uint64{7, 1, 99, 3})
	b := build([]uint64{7, 1, 99, 3})
	var ra, rb Response
	ra.Grouped, rb.Grouped = true, true
	packPartial(&ra, a)
	packPartial(&rb, b)
	ea, err := EncodeResponse(ra)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := EncodeResponse(rb)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ea, eb) {
		t.Fatal("same partial content encoded to different bytes")
	}
	for i := 1; i < len(ra.GroupKeys); i++ {
		if ra.GroupKeys[i-1] >= ra.GroupKeys[i] {
			t.Fatalf("keys not strictly ascending: %v", ra.GroupKeys)
		}
	}
}

func TestResponsePartialRoundTrip(t *testing.T) {
	g := kernel.NewGrouped()
	g.Add(3, kernel.Aggregate{Count: 2, UnitsSold: 5, DollarSales: 7, Cost: 11})
	g.Add(1, kernel.Aggregate{Count: 1, UnitsSold: 1})
	p := kernel.FragPartial{Agg: kernel.Aggregate{Count: 3, UnitsSold: 6, DollarSales: 7, Cost: 11}, Groups: g}
	resp := Response{Grouped: true, Epoch: 4, DeltaRows: 2}
	packPartial(&resp, p)
	data, err := EncodeResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeResponse(data)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Epoch != 4 || dec.DeltaRows != 2 {
		t.Fatalf("metadata lost: %+v", dec)
	}
	got := dec.Partial()
	if got.Agg != p.Agg {
		t.Fatalf("Agg %+v != %+v", got.Agg, p.Agg)
	}
	want := map[uint64]kernel.Aggregate{}
	p.Groups.ForEach(func(k uint64, a kernel.Aggregate) { want[k] = a })
	gotm := map[uint64]kernel.Aggregate{}
	got.Groups.ForEach(func(k uint64, a kernel.Aggregate) { gotm[k] = a })
	if !reflect.DeepEqual(gotm, want) {
		t.Fatalf("groups %v != %v", gotm, want)
	}
}

func TestResponsePartialUngroupedVsEmptyGroups(t *testing.T) {
	// Grouped-with-zero-matches and ungrouped both carry empty slices;
	// the Grouped flag must keep them distinguishable through the wire.
	grouped := Response{Grouped: true}
	packPartial(&grouped, kernel.FragPartial{Groups: kernel.NewGrouped()})
	ungrouped := Response{}
	packPartial(&ungrouped, kernel.FragPartial{})
	for _, tc := range []struct {
		name string
		resp Response
		want bool
	}{{"grouped-empty", grouped, true}, {"ungrouped", ungrouped, false}} {
		data, err := EncodeResponse(tc.resp)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := DecodeResponse(data)
		if err != nil {
			t.Fatal(err)
		}
		p := dec.Partial()
		if (p.Groups != nil) != tc.want {
			t.Errorf("%s: Groups non-nil = %v, want %v", tc.name, p.Groups != nil, tc.want)
		}
	}
}

// FuzzFragPartialRoundTrip fuzzes the transport codec: arbitrary group
// maps must survive encode/decode with content intact, and the encoding
// must be a fixed point (canonical form re-encodes byte-identically).
func FuzzFragPartialRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	seed := make([]byte, 0, 64)
	for i := 0; i < 8; i++ {
		seed = binary.LittleEndian.AppendUint64(seed, uint64(i)*0x9e3779b97f4a7c15)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, raw []byte) {
		g := kernel.NewGrouped()
		var total kernel.Aggregate
		want := map[uint64]kernel.Aggregate{}
		for len(raw) >= 12 {
			key := binary.LittleEndian.Uint64(raw)
			v := int64(int32(binary.LittleEndian.Uint32(raw[8:])))
			raw = raw[12:]
			a := kernel.Aggregate{Count: 1, UnitsSold: v, DollarSales: -v, Cost: v / 2}
			g.Add(key, a)
			total.Add(a)
			cur := want[key]
			cur.Add(a)
			want[key] = cur
		}
		resp := Response{Grouped: true, Epoch: 1}
		packPartial(&resp, kernel.FragPartial{Agg: total, Groups: g})
		enc, err := EncodeResponse(resp)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := DecodeResponse(enc)
		if err != nil {
			t.Fatal(err)
		}
		p := dec.Partial()
		if p.Agg != total {
			t.Fatalf("Agg %+v != %+v", p.Agg, total)
		}
		got := map[uint64]kernel.Aggregate{}
		p.Groups.ForEach(func(k uint64, a kernel.Aggregate) { got[k] = a })
		if len(got) != len(want) {
			t.Fatalf("%d groups != %d", len(got), len(want))
		}
		for k, a := range want {
			if got[k] != a {
				t.Fatalf("group %d: %+v != %+v", k, got[k], a)
			}
		}
		// Canonical fixed point: re-packing the decoded partial encodes to
		// the same bytes.
		resp2 := Response{Grouped: true, Epoch: 1}
		packPartial(&resp2, p)
		enc2, err := EncodeResponse(resp2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatal("encoding is not canonical: round trip changed the bytes")
		}
	})
}
