package cluster

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/alloc"
	"repro/internal/data"
	"repro/internal/engine"
	"repro/internal/frag"
	"repro/internal/kernel"
	"repro/internal/schema"
	"repro/internal/storage"
)

// clusterFixture builds a tiny-schema fact table, its fragmentation and
// the shared query list every cluster test runs.
func clusterFixture(t *testing.T) (*schema.Star, *frag.Spec, frag.IndexConfig, *data.Table, []frag.Query) {
	t.Helper()
	star := schema.Tiny()
	spec := frag.MustParse(star, "time::month, product::group")
	icfg := frag.APB1Indexes(star)
	tab := data.MustGenerate(star, 7)
	texts := []string{
		"time::month=1",
		"product::code=3",
		"time::month=2, product::code=1",
		"",
		"time::month=1 group by product::group",
		"group by time::month, customer::store",
	}
	qs := make([]frag.Query, len(texts))
	for i, text := range texts {
		q, err := frag.ParseQuery(star, text)
		if err != nil {
			t.Fatal(err)
		}
		qs[i] = q
	}
	return star, spec, icfg, tab, qs
}

// buildLocalCluster partitions the table over n in-memory nodes and
// returns a coordinator over the Local transport (closed by t.Cleanup).
func buildLocalCluster(t *testing.T, spec *frag.Spec, icfg frag.IndexConfig, tab *data.Table, n int, scheme alloc.Scheme) (*Coordinator, []*Node) {
	t.Helper()
	cl := alloc.Placement{Disks: n, Scheme: scheme}
	parts := PartitionTable(spec, cl, tab)
	nodes := make([]*Node, n)
	for k := range nodes {
		node, err := NewNode(NodeConfig{Spec: spec, Indexes: icfg, Index: k, Cluster: cl}, parts[k])
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		nodes[k] = node
	}
	coord, err := NewCoordinator(CoordinatorConfig{Spec: spec, Cluster: cl}, NewLocal(nodes))
	if err != nil {
		t.Fatal(err)
	}
	return coord, nodes
}

func TestPartitionTableOwnership(t *testing.T) {
	_, spec, _, tab, _ := clusterFixture(t)
	for _, scheme := range []alloc.Scheme{alloc.RoundRobin, alloc.GapRoundRobin} {
		for _, n := range []int{1, 2, 3, 4, 8} {
			cl := alloc.Placement{Disks: n, Scheme: scheme}
			parts := PartitionTable(spec, cl, tab)
			if len(parts) != n {
				t.Fatalf("n=%d: %d shards", n, len(parts))
			}
			total := 0
			buf := make([]int, len(tab.Star.Dims))
			for k, p := range parts {
				total += p.N()
				if p.Star != tab.Star {
					t.Fatalf("n=%d node %d: shard has a different schema pointer", n, k)
				}
				for i := 0; i < p.N(); i++ {
					id := spec.ID(spec.CoordOf(p.LeafMembers(i, buf)))
					if NodeOf(cl, id) != k {
						t.Fatalf("n=%d scheme=%d: row of fragment %d landed on node %d, owner is %d",
							n, scheme, id, k, NodeOf(cl, id))
					}
				}
			}
			if total != tab.N() {
				t.Fatalf("n=%d: shards hold %d rows, table has %d", n, total, tab.N())
			}
		}
	}
}

// TestCoordinatorEquivalence is the core oracle: the scattered, merged
// result equals the brute-force scan over the whole table for every
// query, node count and scheme.
func TestCoordinatorEquivalence(t *testing.T) {
	_, spec, icfg, tab, qs := clusterFixture(t)
	for _, scheme := range []alloc.Scheme{alloc.RoundRobin, alloc.GapRoundRobin} {
		for _, n := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("scheme=%d/nodes=%d", scheme, n), func(t *testing.T) {
				coord, _ := buildLocalCluster(t, spec, icfg, tab, n, scheme)
				for _, q := range qs {
					want, err := engine.ScanGrouped(tab, q)
					if err != nil {
						t.Fatal(err)
					}
					got, st, err := coord.Execute(context.Background(), q)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Errorf("query %+v: cluster %+v != scan %+v", q, got, want)
					}
					if st.NodesUsed < 1 || st.NodesUsed > n {
						t.Errorf("query %+v: NodesUsed=%d out of [1,%d]", q, st.NodesUsed, n)
					}
				}
			})
		}
	}
}

// TestNodeAppendOwnership verifies the single-writer-per-fragment
// invariant: a node rejects rows of fragments it does not own, and the
// coordinator routes every row to its owner.
func TestNodeAppendOwnership(t *testing.T) {
	_, spec, icfg, tab, qs := clusterFixture(t)
	const n = 4
	coord, nodes := buildLocalCluster(t, spec, icfg, tab, n, alloc.RoundRobin)
	ctx := context.Background()

	// Rows re-derived from the table: every row offered to the wrong node
	// must be rejected with a NodeError naming the owner.
	buf := make([]int, len(tab.Star.Dims))
	leaves := tab.LeafMembers(0, buf)
	row := Row{Leaves: make([]int32, len(leaves)), UnitsSold: 1, DollarSales: 2, Cost: 3}
	for d, m := range leaves {
		row.Leaves[d] = int32(m)
	}
	owner := NodeOf(alloc.Placement{Disks: n}, spec.ID(spec.CoordOf(leaves)))
	wrong := (owner + 1) % n
	err := nodes[wrong].Append(ctx, []Row{row})
	var ne *NodeError
	if !errors.As(err, &ne) || ne.Node != wrong {
		t.Fatalf("foreign append: got %v, want NodeError from node %d", err, wrong)
	}

	// The coordinator routes the same row correctly and the appended
	// measures show up in a full-table query on the owning node only.
	before, _, err := coord.Execute(ctx, frag.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Append(ctx, []Row{row}); err != nil {
		t.Fatal(err)
	}
	after, _, err := coord.Execute(ctx, frag.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if after.Count != before.Count+1 || after.UnitsSold != before.UnitsSold+1 {
		t.Fatalf("append not visible: before %+v after %+v", before, after)
	}
	st, err := coord.NodeStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for k, s := range st {
		wantRows := int64(0)
		if k == owner {
			wantRows = 1
		}
		if s.AppendedRows != wantRows {
			t.Errorf("node %d: AppendedRows=%d, want %d", k, s.AppendedRows, wantRows)
		}
	}
	_ = qs
}

// stubTransport scripts per-node Exec outcomes for coordinator fault
// machinery tests.
type stubTransport struct {
	n     int
	calls atomic.Int64
	exec  func(call int64, node int, req Request) (Response, error)
}

func (s *stubTransport) Nodes() int { return s.n }
func (s *stubTransport) Exec(ctx context.Context, node int, req Request) (Response, error) {
	return s.exec(s.calls.Add(1), node, req)
}
func (s *stubTransport) Append(ctx context.Context, node int, rows []Row) error { return nil }
func (s *stubTransport) Compact(ctx context.Context, node int) error            { return nil }
func (s *stubTransport) Stats(ctx context.Context, node int) (NodeStats, error) {
	return NodeStats{Index: node}, nil
}
func (s *stubTransport) Close() error { return nil }

func stubCoordinator(t *testing.T, tr *stubTransport, retry storage.RetryPolicy, hedge time.Duration) *Coordinator {
	t.Helper()
	star := schema.Tiny()
	spec := frag.MustParse(star, "time::month, product::group")
	coord, err := NewCoordinator(CoordinatorConfig{
		Spec:    spec,
		Cluster: alloc.Placement{Disks: tr.n},
		Retry:   retry,
		Hedge:   hedge,
	}, tr)
	if err != nil {
		t.Fatal(err)
	}
	return coord
}

func TestCoordinatorRetriesOnlyUnavailable(t *testing.T) {
	// Two transport-level failures then success: the coordinator retries
	// through them and reports the retry count.
	tr := &stubTransport{n: 1}
	tr.exec = func(call int64, node int, req Request) (Response, error) {
		if call <= 2 {
			return Response{}, fmt.Errorf("%w: connection refused", ErrUnavailable)
		}
		return Response{Agg: kernelAgg(5)}, nil
	}
	retry := storage.RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Microsecond, MaxBackoff: 10 * time.Microsecond}
	coord := stubCoordinator(t, tr, retry, 0)
	res, st, err := coord.Execute(context.Background(), frag.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 5 || st.Retries != 2 {
		t.Fatalf("count=%d retries=%d, want 5/2", res.Count, st.Retries)
	}

	// A node-side error is not retried: exactly one transport call.
	tr2 := &stubTransport{n: 1}
	tr2.exec = func(call int64, node int, req Request) (Response, error) {
		return Response{}, &NodeError{Node: 0, Err: ErrNodeFailed}
	}
	coord2 := stubCoordinator(t, tr2, retry, 0)
	_, _, err = coord2.Execute(context.Background(), frag.Query{})
	if !errors.Is(err, ErrNodeFailed) {
		t.Fatalf("got %v, want ErrNodeFailed", err)
	}
	if got := tr2.calls.Load(); got != 1 {
		t.Fatalf("node-side error retried: %d transport calls", got)
	}
}

func TestCoordinatorBreakerFastFail(t *testing.T) {
	tr := &stubTransport{n: 1}
	tr.exec = func(call int64, node int, req Request) (Response, error) {
		return Response{}, &NodeError{Node: 0, Err: ErrNodeFailed}
	}
	retry := storage.RetryPolicy{
		MaxAttempts: 1, BaseBackoff: time.Microsecond, MaxBackoff: time.Microsecond,
		BreakerThreshold: 3, BreakerCooldown: time.Hour,
	}
	coord := stubCoordinator(t, tr, retry, 0)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, _, err := coord.Execute(ctx, frag.Query{}); !errors.Is(err, ErrNodeFailed) {
			t.Fatalf("strike %d: %v", i, err)
		}
	}
	calls := tr.calls.Load()
	_, _, err := coord.Execute(ctx, frag.Query{})
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("after threshold: got %v, want ErrBreakerOpen", err)
	}
	var ne *NodeError
	if !errors.As(err, &ne) || ne.Node != 0 {
		t.Fatalf("breaker error not a NodeError naming node 0: %v", err)
	}
	if tr.calls.Load() != calls {
		t.Fatal("breaker-open request still reached the transport")
	}
	cs := coord.ClientStats()[0]
	if cs.FastFails != 1 || cs.BreakerTrips < 1 {
		t.Fatalf("client stats %+v: want FastFails=1, BreakerTrips>=1", cs)
	}
}

func TestCoordinatorHedgedRequests(t *testing.T) {
	// First attempt stalls; the hedge fires and wins.
	tr := &stubTransport{n: 1}
	release := make(chan struct{})
	tr.exec = func(call int64, node int, req Request) (Response, error) {
		if call == 1 {
			<-release
			return Response{Agg: kernelAgg(1)}, nil
		}
		return Response{Agg: kernelAgg(1)}, nil
	}
	coord := stubCoordinator(t, tr, storage.RetryPolicy{}, time.Millisecond)
	res, st, err := coord.Execute(context.Background(), frag.Query{})
	close(release)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 1 {
		t.Fatalf("count=%d, want 1 (first answer wins, no double count)", res.Count)
	}
	if st.Hedges != 1 {
		t.Fatalf("hedges=%d, want 1", st.Hedges)
	}
	cs := coord.ClientStats()[0]
	if cs.Hedges != 1 || cs.HedgeWins != 1 {
		t.Fatalf("client stats %+v: want Hedges=1 HedgeWins=1", cs)
	}
}

// TestNodeFailRevive exercises the node-kill model end to end on real
// nodes: fail-fast typed errors, unaffected confined queries, and full
// equivalence after revival.
func TestNodeFailRevive(t *testing.T) {
	_, spec, icfg, tab, qs := clusterFixture(t)
	const n = 4
	coord, nodes := buildLocalCluster(t, spec, icfg, tab, n, alloc.RoundRobin)
	ctx := context.Background()

	// A query on both fragmentation attributes confines to one fragment,
	// hence one node.
	confined, err := frag.ParseQuery(tab.Star, "time::month=0, product::group=0")
	if err != nil {
		t.Fatal(err)
	}
	ids := spec.FragmentIDs(confined)
	if len(ids) != 1 {
		t.Fatalf("confined query touches %d fragments, want 1", len(ids))
	}
	owner := NodeOf(alloc.Placement{Disks: n}, ids[0])
	victim := (owner + 1) % n
	nodes[victim].Fail()

	// Confined query avoids the victim and still answers correctly.
	want, err := engine.ScanGrouped(tab, confined)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := coord.Execute(ctx, confined)
	if err != nil {
		t.Fatalf("confined query with node %d down: %v", victim, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("confined query: %+v != %+v", got, want)
	}
	if st.NodesUsed != 1 {
		t.Fatalf("confined query used %d nodes", st.NodesUsed)
	}

	// A cluster-wide query fails with a typed NodeError, never a wrong
	// answer.
	_, _, err = coord.Execute(ctx, frag.Query{})
	var ne *NodeError
	if !errors.As(err, &ne) || ne.Node != victim || !errors.Is(err, ErrNodeFailed) {
		t.Fatalf("cluster-wide query: got %v, want NodeError{%d, ErrNodeFailed}", err, victim)
	}

	// Revive: full equivalence is restored for every query.
	nodes[victim].Revive()
	for _, q := range qs {
		want, err := engine.ScanGrouped(tab, q)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := coord.Execute(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("after revive, query %+v: %+v != %+v", q, got, want)
		}
	}
}

func kernelAgg(count int64) kernel.Aggregate {
	return kernel.Aggregate{Count: count}
}
