package exec

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestMapOnMatchesMapWith runs many concurrent executions on one shared
// scheduler and checks every result is identical to the serial MapWith
// gather.
func TestMapOnMatchesMapWith(t *testing.T) {
	s := NewScheduler(4)
	defer s.Close()
	ctx := context.Background()

	fn := func(q int) func(sc *int, i int) (int, error) {
		return func(sc *int, i int) (int, error) {
			*sc++ // exercise scratch reuse
			return q*1000 + i*i, nil
		}
	}
	newScratch := func() *int { return new(int) }

	const queries = 16
	var wg sync.WaitGroup
	errsCh := make(chan error, queries)
	for q := 0; q < queries; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			n := 1 + q*7%53
			want, err := MapWith(ctx, 1, n, newScratch, fn(q))
			if err != nil {
				errsCh <- err
				return
			}
			got, err := MapOn(ctx, s, n, newScratch, fn(q))
			if err != nil {
				errsCh <- err
				return
			}
			for i := range want {
				if got[i] != want[i] {
					errsCh <- fmt.Errorf("query %d task %d: got %d want %d", q, i, got[i], want[i])
					return
				}
			}
		}(q)
	}
	wg.Wait()
	close(errsCh)
	for err := range errsCh {
		t.Error(err)
	}

	st := s.Stats()
	if st.QueriesAdmitted != queries || st.QueriesDone != queries {
		t.Fatalf("accounting: admitted %d done %d, want %d", st.QueriesAdmitted, st.QueriesDone, queries)
	}
	if st.InFlight != 0 {
		t.Fatalf("in-flight %d after drain", st.InFlight)
	}
	if st.PeakInFlight < 1 || st.PeakInFlight > queries {
		t.Fatalf("peak in-flight %d out of range", st.PeakInFlight)
	}
	if st.Workers != 4 {
		t.Fatalf("workers %d, want 4", st.Workers)
	}
}

// TestMapShardedOnMatchesMapOn checks the shard-interleaved submission
// order changes nothing about the gathered results.
func TestMapShardedOnMatchesMapOn(t *testing.T) {
	s := NewScheduler(3)
	defer s.Close()
	ctx := context.Background()
	newScratch := func() struct{} { return struct{}{} }
	fn := func(_ struct{}, i int) (int, error) { return i * 3, nil }
	const n = 41
	want, err := MapOn(ctx, s, n, newScratch, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 5, 64} {
		got, err := MapShardedOn(ctx, s, n, func(i int) int { return i*13 - 7 }, shards, newScratch, fn)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shards=%d task %d: got %d want %d", shards, i, got[i], want[i])
			}
		}
	}
}

func TestMapOnErrorLowestIndex(t *testing.T) {
	s := NewScheduler(4)
	defer s.Close()
	boom := errors.New("boom")
	_, err := MapOn(context.Background(), s, 100, func() struct{} { return struct{}{} },
		func(_ struct{}, i int) (struct{}, error) {
			if i == 7 || i == 3 {
				return struct{}{}, fmt.Errorf("task %d: %w", i, boom)
			}
			return struct{}{}, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want wrapped boom", err)
	}
	// Results withheld on error is implied by the nil slice contract of
	// MapWith; ReduceOn folds nothing on error.
	acc, err2 := ReduceOn(context.Background(), s, 10, func() struct{} { return struct{}{} },
		func(_ struct{}, i int) (int, error) {
			if i == 5 {
				return 0, boom
			}
			return 1, nil
		},
		func(acc *int, p int) { *acc += p })
	if err2 == nil || acc != 0 {
		t.Fatalf("ReduceOn on error: acc=%d err=%v, want 0 and boom", acc, err2)
	}
}

func TestMapOnCancellation(t *testing.T) {
	s := NewScheduler(2)
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	_, err := MapOn(ctx, s, 1000, func() struct{} { return struct{}{} },
		func(_ struct{}, i int) (int, error) {
			once.Do(cancel) // cancel mid-execution; MapOn must report it
			return 0, nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestMapOnZeroTasks(t *testing.T) {
	s := NewScheduler(2)
	defer s.Close()
	res, err := MapOn(context.Background(), s, 0, func() struct{} { return struct{}{} },
		func(_ struct{}, i int) (int, error) { return 0, nil })
	if err != nil || res != nil {
		t.Fatalf("got %v, %v; want nil, nil", res, err)
	}
}
