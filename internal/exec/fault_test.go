package exec

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestSchedulerShedsOverLimit(t *testing.T) {
	s := NewScheduler(2)
	defer s.Close()
	s.SetLimit(1)

	// Hold one admitted execution in flight, then a second admission must
	// shed with ErrOverloaded.
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := MapOn(context.Background(), s, 1,
			func() struct{} { return struct{}{} },
			func(_ struct{}, i int) (int, error) {
				close(started)
				<-release
				return i, nil
			})
		if err != nil {
			t.Errorf("admitted execution failed: %v", err)
		}
	}()
	<-started
	_, err := MapOn(context.Background(), s, 1,
		func() struct{} { return struct{}{} },
		func(_ struct{}, i int) (int, error) { return i, nil })
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second admission returned %v, want ErrOverloaded", err)
	}
	close(release)
	wg.Wait()

	st := s.Stats()
	if st.Shed != 1 || st.AdmitLimit != 1 {
		t.Fatalf("stats = shed %d limit %d, want 1/1", st.Shed, st.AdmitLimit)
	}
	// With the limit cleared, admission is unbounded again.
	s.SetLimit(0)
	if _, err := MapOn(context.Background(), s, 1,
		func() struct{} { return struct{}{} },
		func(_ struct{}, i int) (int, error) { return i, nil }); err != nil {
		t.Fatalf("unbounded admission failed: %v", err)
	}
}

func TestSchedulerRecoversTaskPanic(t *testing.T) {
	s := NewScheduler(2)
	defer s.Close()
	_, err := MapOn(context.Background(), s, 4,
		func() struct{} { return struct{}{} },
		func(_ struct{}, i int) (int, error) {
			if i == 2 {
				panic("poisoned task")
			}
			return i, nil
		})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panicking task returned %v, want panic-derived error", err)
	}
	// The shared pool survives: later executions run normally.
	res, err := MapOn(context.Background(), s, 3,
		func() struct{} { return struct{}{} },
		func(_ struct{}, i int) (int, error) { return i * i, nil })
	if err != nil || len(res) != 3 || res[2] != 4 {
		t.Fatalf("pool dead after panic: res=%v err=%v", res, err)
	}
	if st := s.Stats(); st.InFlight != 0 {
		t.Fatalf("in-flight = %d after panic, want 0", st.InFlight)
	}
}

func TestMapWithRecoversTaskPanic(t *testing.T) {
	for _, sharded := range []bool{false, true} {
		var err error
		if sharded {
			_, err = MapShardedWith(context.Background(), 2, 6,
				func(i int) int { return i % 3 }, 3,
				func() struct{} { return struct{}{} },
				func(_ struct{}, i int) (int, error) {
					if i == 4 {
						panic("boom")
					}
					return i, nil
				})
		} else {
			_, err = MapWith(context.Background(), 2, 6,
				func() struct{} { return struct{}{} },
				func(_ struct{}, i int) (int, error) {
					if i == 4 {
						panic("boom")
					}
					return i, nil
				})
		}
		if err == nil || !strings.Contains(err.Error(), "panicked") {
			t.Fatalf("sharded=%v: panicking task returned %v, want panic-derived error", sharded, err)
		}
	}
}
