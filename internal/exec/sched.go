package exec

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrOverloaded is returned (wrapped) when an execution is refused
// admission because the scheduler's in-flight limit is reached — the
// load-shedding signal: the caller should surface the overload to its
// client rather than queue unboundedly.
var ErrOverloaded = errors.New("exec: scheduler overloaded, execution shed")

// Scheduler is the serving layer's admission scheduler: one fixed pool of
// worker goroutines that concurrent query executions share. Each admitted
// execution (one MapOn/ReduceOn call) submits its fragment tasks into the
// pool's single task channel, so M in-flight queries multiplex onto the
// same W workers — and, through the executors' disk-aware task bodies,
// onto the same DiskSet — instead of each spawning a private worker set.
// Tasks from different queries interleave at fragment granularity, which
// fills the idle disk and CPU time that a single query's straggler tail
// and setup leave behind; per-query results are still gathered in task
// index order, so every execution is bit-for-bit identical to running it
// alone (or serially via MapWith).
//
// A Scheduler is safe for concurrent use. Close stops the workers once
// every admitted execution has drained; no execution may be submitted
// after Close.
type Scheduler struct {
	workers int
	tasks   chan func(worker int)
	wg      sync.WaitGroup

	admitted atomic.Int64
	done     atomic.Int64
	inflight atomic.Int64
	peak     atomic.Int64
	tasksRun atomic.Int64
	// limit bounds InFlight (0 = unlimited); admissions beyond it are
	// shed with ErrOverloaded and counted in shed.
	limit atomic.Int64
	shed  atomic.Int64
}

// SchedStats is a snapshot of a scheduler's admission accounting.
type SchedStats struct {
	// Workers is the fixed size of the shared pool.
	Workers int
	// QueriesAdmitted counts executions ever admitted.
	QueriesAdmitted int64
	// QueriesDone counts executions that finished (or failed).
	QueriesDone int64
	// InFlight is the number of executions currently admitted.
	InFlight int64
	// PeakInFlight is the high-water mark of InFlight.
	PeakInFlight int64
	// TasksRun counts fragment tasks executed by the pool.
	TasksRun int64
	// AdmitLimit is the in-flight admission bound (0 = unlimited).
	AdmitLimit int64
	// Shed counts executions refused admission with ErrOverloaded.
	Shed int64
}

// NewScheduler starts a shared pool of `workers` goroutines (values below
// 1 mean one per available CPU).
func NewScheduler(workers int) *Scheduler {
	s := &Scheduler{workers: Workers(workers), tasks: make(chan func(int))}
	for w := 0; w < s.workers; w++ {
		s.wg.Add(1)
		go func(w int) {
			defer s.wg.Done()
			for fn := range s.tasks {
				fn(w)
				s.tasksRun.Add(1)
			}
		}(w)
	}
	return s
}

// Workers returns the fixed pool size.
func (s *Scheduler) Workers() int { return s.workers }

// Stats snapshots the admission accounting.
func (s *Scheduler) Stats() SchedStats {
	return SchedStats{
		Workers:         s.workers,
		QueriesAdmitted: s.admitted.Load(),
		QueriesDone:     s.done.Load(),
		InFlight:        s.inflight.Load(),
		PeakInFlight:    s.peak.Load(),
		TasksRun:        s.tasksRun.Load(),
		AdmitLimit:      s.limit.Load(),
		Shed:            s.shed.Load(),
	}
}

// SetLimit bounds the number of concurrently admitted executions:
// admissions beyond n are refused with ErrOverloaded instead of queued.
// Zero (the default) removes the bound. Safe to call at any time; the
// new bound applies to subsequent admissions.
func (s *Scheduler) SetLimit(n int) {
	if n < 0 {
		n = 0
	}
	s.limit.Store(int64(n))
}

// Close stops the pool's workers after the tasks of every admitted
// execution have drained. Submitting an execution after (or concurrently
// with) Close is a caller error.
func (s *Scheduler) Close() {
	close(s.tasks)
	s.wg.Wait()
}

// admit registers one execution and returns its release func, or sheds
// it with ErrOverloaded when the in-flight limit is reached.
func (s *Scheduler) admit() (func(), error) {
	for {
		in := s.inflight.Load()
		if lim := s.limit.Load(); lim > 0 && in >= lim {
			s.shed.Add(1)
			return nil, ErrOverloaded
		}
		if s.inflight.CompareAndSwap(in, in+1) {
			in++
			s.admitted.Add(1)
			for {
				p := s.peak.Load()
				if in <= p || s.peak.CompareAndSwap(p, in) {
					break
				}
			}
			return func() {
				s.inflight.Add(-1)
				s.done.Add(1)
			}, nil
		}
	}
}

// MapOn is MapWith dispatched through a shared Scheduler: the n tasks are
// submitted to the pool's task channel and run on whichever of the pool's
// workers picks them up, interleaved with the tasks of every other
// execution currently admitted. Scratch values are per pool worker and
// per call, so fn sees the same reuse guarantees as MapWith; results
// gather in task index order and error propagation (lowest failing index,
// partial results withheld) matches MapWith, making MapOn bit-for-bit
// identical to MapWith at any pool size or admission mix.
func MapOn[S, T any](ctx context.Context, s *Scheduler, n int, newScratch func() S, fn func(sc S, i int) (T, error)) ([]T, error) {
	return mapOnOrdered(ctx, s, n, nil, newScratch, fn)
}

// MapShardedOn is MapOn with placement-aware submission: tasks are
// submitted round-robin across their shards (typically the disk holding
// each task's fragment, clamped into [0, shards)), so the first tasks an
// execution gets running are spread over distinct disks instead of
// convoying on one queue. The gather order is unchanged, so results are
// identical to MapOn and MapWith.
func MapShardedOn[S, T any](ctx context.Context, s *Scheduler, n int, shardOf func(i int) int, shards int, newScratch func() S, fn func(sc S, i int) (T, error)) ([]T, error) {
	if shards <= 1 || n <= 1 {
		return mapOnOrdered(ctx, s, n, nil, newScratch, fn)
	}
	queues := make([][]int32, shards)
	for i := 0; i < n; i++ {
		k := shardOf(i)
		if k < 0 || k >= shards {
			k = ((k % shards) + shards) % shards
		}
		queues[k] = append(queues[k], int32(i))
	}
	order := make([]int32, 0, n)
	for len(order) < n {
		for k := 0; k < shards; k++ {
			if len(queues[k]) > 0 {
				order = append(order, queues[k][0])
				queues[k] = queues[k][1:]
			}
		}
	}
	return mapOnOrdered(ctx, s, n, order, newScratch, fn)
}

// mapOnOrdered submits the tasks in `order` (identity when nil) and
// gathers results by task index.
func mapOnOrdered[S, T any](ctx context.Context, s *Scheduler, n int, order []int32, newScratch func() S, fn func(sc S, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, nil
	}
	release, err := s.admit()
	if err != nil {
		return nil, err
	}
	defer release()
	var (
		results = make([]T, n)
		errs    = make([]error, n)
		// scratches[w] belongs to pool worker w: only that worker's
		// goroutine touches it, and tasks of one call on one worker run
		// sequentially, so no synchronisation is needed.
		scratches = make([]S, s.workers)
		made      = make([]bool, s.workers)
		stopped   atomic.Bool
		wg        sync.WaitGroup
	)
	done := ctx.Done()
submit:
	for k := 0; k < n; k++ {
		i := k
		if order != nil {
			i = int(order[k])
		}
		if stopped.Load() {
			break
		}
		wg.Add(1)
		task := func(w int) {
			defer wg.Done()
			if stopped.Load() {
				return
			}
			// A panicking task must poison only its own execution, never
			// the shared pool: recover it into this task's error slot.
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("exec: task %d panicked: %v", i, r)
					stopped.Store(true)
				}
			}()
			if !made[w] {
				scratches[w] = newScratch()
				made[w] = true
			}
			r, err := fn(scratches[w], i)
			if err != nil {
				errs[i] = err
				stopped.Store(true)
				return
			}
			results[i] = r
		}
		select {
		case s.tasks <- task:
		case <-done:
			wg.Done()
			stopped.Store(true)
			break submit
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// ReduceOn is MapOn followed by the deterministic task-order fold of
// Reduce, so the accumulated result is identical to ReduceWith at any
// pool size or admission mix.
func ReduceOn[S, T, A any](ctx context.Context, s *Scheduler, n int, newScratch func() S, fn func(sc S, i int) (T, error), merge func(acc *A, part T)) (A, error) {
	var acc A
	parts, err := MapOn(ctx, s, n, newScratch, fn)
	if err != nil {
		return acc, err
	}
	for _, p := range parts {
		merge(&acc, p)
	}
	return acc, nil
}

// ReduceShardedOn is ReduceOn submitted through MapShardedOn's
// round-robin-across-shards order. The fold remains strictly task-ordered.
func ReduceShardedOn[S, T, A any](ctx context.Context, s *Scheduler, n int, shardOf func(i int) int, shards int, newScratch func() S, fn func(sc S, i int) (T, error), merge func(acc *A, part T)) (A, error) {
	var acc A
	parts, err := MapShardedOn(ctx, s, n, shardOf, shards, newScratch, fn)
	if err != nil {
		return acc, err
	}
	for _, p := range parts {
		merge(&acc, p)
	}
	return acc, nil
}
