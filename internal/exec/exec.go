// Package exec is the shared fragment-parallel scatter/gather subsystem:
// a worker pool that fans independent tasks (typically one per MDHF
// fragment) out over a configurable number of goroutines — the library's
// stand-in for the paper's Shared Disk processing nodes — and gathers the
// per-task partial results back in task order, so that parallel execution
// is bit-for-bit identical to sequential execution regardless of worker
// count or scheduling.
//
// Both the in-memory query engine (internal/engine) and the on-disk
// executor (internal/storage) run on this pool; the cost advisor and the
// experiment harness reuse it for their embarrassingly parallel sweeps.
package exec

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// runTask invokes one task, converting a panic into a task-scoped error
// so a poisoned task can never kill its worker goroutine (and with it
// the whole process) — the private-pool counterpart of the shared
// scheduler's in-task recovery.
func runTask[S, T any](fn func(s S, i int) (T, error), scratch S, i int) (r T, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("exec: task %d panicked: %v", i, p)
		}
	}()
	return fn(scratch, i)
}

// Workers resolves a worker-count option: any value below 1 means "one
// worker per available CPU" (GOMAXPROCS).
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Map runs fn(i) for every i in [0, n) on `workers` goroutines (values
// below 1 mean GOMAXPROCS) and returns the results in index order. fn must
// be safe for concurrent invocation.
//
// Error propagation is deterministic: if several tasks fail, the error of
// the lowest task index is returned. Once any task has failed, or ctx is
// cancelled, workers stop picking up new tasks; tasks already in flight
// run to completion. On a non-nil error the partial results are withheld
// (a nil slice is returned) so callers cannot mistake a partial gather for
// a complete one.
func Map[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapWith(ctx, workers, n,
		func() struct{} { return struct{}{} },
		func(_ struct{}, i int) (T, error) { return fn(i) },
	)
}

// MapWith is Map with a per-worker scratch: every worker goroutine calls
// newScratch exactly once and passes the value to each task it runs, so
// buffers allocated there are reused across all of a worker's tasks
// without synchronisation — the pooling behind the allocation-free
// fragment hot loops of the query engines. fn must be safe for concurrent
// invocation with distinct scratch values.
func MapWith[S, T any](ctx context.Context, workers, n int, newScratch func() S, fn func(s S, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	errs := make([]error, n)
	var (
		next    atomic.Int64
		stopped atomic.Bool
		wg      sync.WaitGroup
	)
	done := ctx.Done()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := newScratch()
			for {
				if stopped.Load() {
					return
				}
				select {
				case <-done:
					stopped.Store(true)
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				r, err := runTask(fn, scratch, i)
				if err != nil {
					errs[i] = err
					stopped.Store(true)
					continue
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// MapShardedWith is MapWith with placement-keyed dispatch: every task i
// belongs to shard shardOf(i) (clamped into [0, shards)), typically the
// disk holding the fragment the task reads. Tasks are queued per shard;
// each worker is homed on the shards congruent to its index modulo the
// worker count and drains those queues first, so concurrent tasks spread
// across shards (disks) instead of piling onto one queue. A worker whose
// home shards are empty steals from the fullest remaining queue, keeping
// all workers busy under skewed shard loads. Results are still gathered
// in task-index order, and error propagation matches MapWith, so sharded
// execution is bit-for-bit identical to MapWith at any worker count.
func MapShardedWith[S, T any](ctx context.Context, workers, n int, shardOf func(i int) int, shards int, newScratch func() S, fn func(s S, i int) (T, error)) ([]T, error) {
	if shards <= 1 || n <= 1 {
		return MapWith(ctx, workers, n, newScratch, fn)
	}
	// Per-shard FIFO queues of task indices, consumed via atomic heads.
	queues := make([][]int32, shards)
	for i := 0; i < n; i++ {
		k := shardOf(i)
		if k < 0 || k >= shards {
			k = ((k % shards) + shards) % shards
		}
		queues[k] = append(queues[k], int32(i))
	}
	heads := make([]atomic.Int64, shards)
	pop := func(k int) (int, bool) {
		h := int(heads[k].Add(1)) - 1
		if h >= len(queues[k]) {
			return 0, false
		}
		return int(queues[k][h]), true
	}
	// remaining reports a snapshot of shard k's queue length (never
	// negative; heads overshoot when polled empty).
	remaining := func(k int) int {
		r := len(queues[k]) - int(heads[k].Load())
		if r < 0 {
			r = 0
		}
		return r
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	errs := make([]error, n)
	var (
		stopped atomic.Bool
		wg      sync.WaitGroup
	)
	done := ctx.Done()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			scratch := newScratch()
			for {
				if stopped.Load() {
					return
				}
				select {
				case <-done:
					stopped.Store(true)
					return
				default:
				}
				// Home shards first: k ≡ w (mod workers).
				i, ok := 0, false
				for k := w % shards; k < shards; k += workers {
					if i, ok = pop(k); ok {
						break
					}
				}
				if !ok {
					// Steal from the fullest queue.
					for {
						best, bestLen := -1, 0
						for k := 0; k < shards; k++ {
							if r := remaining(k); r > bestLen {
								best, bestLen = k, r
							}
						}
						if best < 0 {
							return // every queue drained
						}
						if i, ok = pop(best); ok {
							break
						}
					}
				}
				r, err := runTask(fn, scratch, i)
				if err != nil {
					errs[i] = err
					stopped.Store(true)
					continue
				}
				results[i] = r
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// Reduce is Map followed by a deterministic gather: the per-task partials
// are folded into a single accumulator strictly in task order, so
// non-commutative merges still give identical results at any worker count.
// This is also what makes grouped roll-ups deterministic: the query
// engines' merge funcs fold per-fragment group maps (internal/kernel)
// through this task-ordered gather, so the accumulated group content —
// and, after the kernel's sorted row flattening, the output bytes — are
// identical at any worker count, shard layout or admission mix.
func Reduce[T, A any](ctx context.Context, workers, n int, fn func(i int) (T, error), merge func(acc *A, part T)) (A, error) {
	var acc A
	parts, err := Map(ctx, workers, n, fn)
	if err != nil {
		return acc, err
	}
	for _, p := range parts {
		merge(&acc, p)
	}
	return acc, nil
}

// ReduceWith is Reduce with MapWith's per-worker scratch threading.
func ReduceWith[S, T, A any](ctx context.Context, workers, n int, newScratch func() S, fn func(s S, i int) (T, error), merge func(acc *A, part T)) (A, error) {
	var acc A
	parts, err := MapWith(ctx, workers, n, newScratch, fn)
	if err != nil {
		return acc, err
	}
	for _, p := range parts {
		merge(&acc, p)
	}
	return acc, nil
}

// ReduceShardedWith is ReduceWith dispatched through MapShardedWith's
// per-shard queues with work stealing. The fold remains strictly
// task-ordered, so the result is identical to ReduceWith.
func ReduceShardedWith[S, T, A any](ctx context.Context, workers, n int, shardOf func(i int) int, shards int, newScratch func() S, fn func(s S, i int) (T, error), merge func(acc *A, part T)) (A, error) {
	var acc A
	parts, err := MapShardedWith(ctx, workers, n, shardOf, shards, newScratch, fn)
	if err != nil {
		return acc, err
	}
	for _, p := range parts {
		merge(&acc, p)
	}
	return acc, nil
}
