package exec

import (
	"context"
	"errors"
	"fmt"
	"maps"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapPreservesIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		got, err := Map(context.Background(), workers, 50, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 50 {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapZeroTasks(t *testing.T) {
	got, err := Map(context.Background(), 4, 0, func(int) (int, error) {
		t.Fatal("fn called for n=0")
		return 0, nil
	})
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestMapDefaultWorkers(t *testing.T) {
	// workers < 1 must mean GOMAXPROCS, and still complete all tasks.
	var calls atomic.Int64
	_, err := Map(context.Background(), 0, 64, func(i int) (struct{}, error) {
		calls.Add(1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 64 {
		t.Fatalf("ran %d of 64 tasks", calls.Load())
	}
	if w := Workers(0); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", w, runtime.GOMAXPROCS(0))
	}
	if w := Workers(3); w != 3 {
		t.Fatalf("Workers(3) = %d", w)
	}
}

func TestMapErrorIsLowestIndex(t *testing.T) {
	// Several tasks fail; the reported error must deterministically be the
	// lowest failing index, whatever order workers hit them in.
	for trial := 0; trial < 20; trial++ {
		_, err := Map(context.Background(), 8, 40, func(i int) (int, error) {
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return 0, fmt.Errorf("task %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "task 3 failed" {
			t.Fatalf("trial %d: err = %v, want task 3's", trial, err)
		}
	}
}

func TestMapErrorStopsDispatch(t *testing.T) {
	// After the first task errors, later tasks must (eventually) stop being
	// dispatched: with 1 worker, exactly the tasks up to the failure run.
	var calls atomic.Int64
	_, err := Map(context.Background(), 1, 1000, func(i int) (int, error) {
		calls.Add(1)
		if i == 4 {
			return 0, errors.New("boom")
		}
		return 0, nil
	})
	if err == nil {
		t.Fatal("no error")
	}
	if got := calls.Load(); got != 5 {
		t.Fatalf("sequential worker ran %d tasks after failing at 5th", got)
	}
}

func TestMapContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	started := make(chan struct{})
	var once sync.Once
	_, err := Map(ctx, 2, 10_000, func(i int) (int, error) {
		calls.Add(1)
		once.Do(func() { close(started); cancel() })
		time.Sleep(100 * time.Microsecond)
		return i, nil
	})
	<-started
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls.Load() >= 10_000 {
		t.Fatal("cancellation did not stop dispatch")
	}
}

func TestReduceMergesInTaskOrder(t *testing.T) {
	// A non-commutative merge (string concatenation) must come out in task
	// order at every worker count.
	want := ""
	for i := 0; i < 30; i++ {
		want += fmt.Sprintf("[%d]", i)
	}
	for _, workers := range []int{1, 4, 16} {
		got, err := Reduce(context.Background(), workers, 30,
			func(i int) (string, error) { return fmt.Sprintf("[%d]", i), nil },
			func(acc *string, part string) { *acc += part })
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("workers=%d: merge order broken: %q", workers, got)
		}
	}
}

func TestReduceErrorWithheldResults(t *testing.T) {
	got, err := Reduce(context.Background(), 4, 10,
		func(i int) (int, error) {
			if i == 0 {
				return 0, errors.New("first fails")
			}
			return 1, nil
		},
		func(acc *int, part int) { *acc += part })
	if err == nil {
		t.Fatal("no error")
	}
	if got != 0 {
		t.Fatalf("accumulator %d leaked from failed run", got)
	}
}

// TestMapConcurrentCallers exercises the pool under many simultaneous
// queries — the -race target for the shared subsystem.
func TestMapConcurrentCallers(t *testing.T) {
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				sum, err := Reduce(context.Background(), 4, 100,
					func(i int) (int, error) { return i + c, nil },
					func(acc *int, part int) { *acc += part })
				if err != nil {
					t.Error(err)
					return
				}
				if want := 100*99/2 + 100*c; sum != want {
					t.Errorf("caller %d: sum = %d, want %d", c, sum, want)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

func TestMapWithScratchPerWorker(t *testing.T) {
	// Each worker must create exactly one scratch and thread it through
	// every task it runs.
	for _, workers := range []int{1, 2, 4} {
		var created atomic.Int64
		type scratch struct{ buf []int }
		got, err := MapWith(context.Background(), workers, 64,
			func() *scratch {
				created.Add(1)
				return &scratch{buf: make([]int, 0, 8)}
			},
			func(s *scratch, i int) (int, error) {
				// Reuse the scratch buffer; a shared scratch across workers
				// would race here (caught by -race).
				s.buf = append(s.buf[:0], i, i, i)
				return s.buf[0] + s.buf[1] + s.buf[2], nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != 3*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, 3*i)
			}
		}
		if n := created.Load(); n != int64(workers) {
			t.Fatalf("workers=%d: %d scratches created", workers, n)
		}
	}
}

func TestReduceWithMatchesReduce(t *testing.T) {
	for _, workers := range []int{1, 3, 7} {
		want, err := Reduce(context.Background(), workers, 40,
			func(i int) (int, error) { return i, nil },
			func(acc *int, p int) { *acc = *acc*31 + p })
		if err != nil {
			t.Fatal(err)
		}
		got, err := ReduceWith(context.Background(), workers, 40,
			func() struct{} { return struct{}{} },
			func(_ struct{}, i int) (int, error) { return i, nil },
			func(acc *int, p int) { *acc = *acc*31 + p })
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("workers=%d: ReduceWith %d != Reduce %d", workers, got, want)
		}
	}
}

func TestMapWithErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	_, err := MapWith(context.Background(), 4, 32,
		func() int { return 0 },
		func(int, int) (int, error) { return 0, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestMapShardedPreservesIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		for _, shards := range []int{1, 2, 5, 16} {
			got, err := MapShardedWith(context.Background(), workers, 50,
				func(i int) int { return i % shards }, shards,
				func() struct{} { return struct{}{} },
				func(_ struct{}, i int) (int, error) { return i * i, nil })
			if err != nil {
				t.Fatalf("workers=%d shards=%d: %v", workers, shards, err)
			}
			if len(got) != 50 {
				t.Fatalf("workers=%d shards=%d: %d results", workers, shards, len(got))
			}
			for i, v := range got {
				if v != i*i {
					t.Fatalf("workers=%d shards=%d: result[%d] = %d, want %d", workers, shards, i, v, i*i)
				}
			}
		}
	}
}

func TestMapShardedRunsEveryTaskOnce(t *testing.T) {
	// Extreme skew: every task in one shard — stealing must still run each
	// task exactly once with every worker able to participate.
	counts := make([]atomic.Int64, 200)
	_, err := MapShardedWith(context.Background(), 8, 200,
		func(i int) int { return 3 }, 7,
		func() struct{} { return struct{}{} },
		func(_ struct{}, i int) (struct{}, error) {
			counts[i].Add(1)
			return struct{}{}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("task %d ran %d times", i, c)
		}
	}
}

func TestMapShardedOutOfRangeShards(t *testing.T) {
	// Negative and oversized shard keys are folded into range rather than
	// panicking.
	got, err := MapShardedWith(context.Background(), 4, 20,
		func(i int) int { return i - 10 }, 4,
		func() struct{} { return struct{}{} },
		func(_ struct{}, i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("result[%d] = %d", i, v)
		}
	}
}

func TestMapShardedErrorPropagation(t *testing.T) {
	// As with Map, the lowest failing task's error surfaces and results
	// are withheld.
	wantErr := errors.New("boom")
	got, err := MapShardedWith(context.Background(), 4, 32,
		func(i int) int { return i % 4 }, 4,
		func() struct{} { return struct{}{} },
		func(_ struct{}, i int) (int, error) {
			if i == 5 || i == 20 {
				return 0, fmt.Errorf("task %d: %w", i, wantErr)
			}
			return i, nil
		})
	if got != nil {
		t.Fatal("partial results returned with error")
	}
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
}

func TestMapShardedContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := MapShardedWith(ctx, 4, 100,
		func(i int) int { return i % 4 }, 4,
		func() struct{} { return struct{}{} },
		func(_ struct{}, i int) (int, error) { return i, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestReduceShardedMatchesReduce(t *testing.T) {
	sum := func(acc *int, part int) { *acc += part }
	want, err := ReduceWith(context.Background(), 3, 100,
		func() struct{} { return struct{}{} },
		func(_ struct{}, i int) (int, error) { return i, nil }, sum)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReduceShardedWith(context.Background(), 5, 100,
		func(i int) int { return i % 6 }, 6,
		func() struct{} { return struct{}{} },
		func(_ struct{}, i int) (int, error) { return i, nil }, sum)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("sharded sum %d != %d", got, want)
	}
}

func TestMapShardedScratchPerWorker(t *testing.T) {
	// Each worker allocates exactly one scratch.
	var scratches atomic.Int64
	_, err := MapShardedWith(context.Background(), 4, 64,
		func(i int) int { return i % 8 }, 8,
		func() int64 { return scratches.Add(1) },
		func(s int64, i int) (struct{}, error) {
			time.Sleep(time.Microsecond)
			return struct{}{}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if n := scratches.Load(); n < 1 || n > 4 {
		t.Fatalf("scratch count %d outside [1,4]", n)
	}
}

// TestReduceGroupedMapDeterministic folds per-task group-map partials —
// the shape the query engines' grouped roll-ups reduce — at several
// worker counts and shard layouts and requires the accumulated map to be
// identical to the sequential fold: the task-ordered gather makes grouped
// merges deterministic regardless of scheduling.
func TestReduceGroupedMapDeterministic(t *testing.T) {
	const n = 96
	task := func(_ struct{}, i int) (map[int]int64, error) {
		// Each task contributes to a few pseudo-random groups.
		m := map[int]int64{i % 7: int64(i), (i * 13) % 5: int64(i * i)}
		return m, nil
	}
	merge := func(acc *map[int]int64, part map[int]int64) {
		if *acc == nil {
			*acc = make(map[int]int64)
		}
		for k, v := range part {
			(*acc)[k] += v
		}
	}
	newS := func() struct{} { return struct{}{} }
	want, err := ReduceWith(context.Background(), 1, n, newS, task, merge)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := ReduceWith(context.Background(), workers, n, newS, task, merge)
		if err != nil {
			t.Fatal(err)
		}
		if !maps.Equal(got, want) {
			t.Fatalf("workers=%d: grouped fold diverged: %v != %v", workers, got, want)
		}
		got, err = ReduceShardedWith(context.Background(), workers, n,
			func(i int) int { return i % 6 }, 6, newS, task, merge)
		if err != nil {
			t.Fatal(err)
		}
		if !maps.Equal(got, want) {
			t.Fatalf("sharded workers=%d: grouped fold diverged", workers)
		}
	}
}
