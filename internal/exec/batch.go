package exec

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Batcher coalesces compatible concurrent operations: the first arrival
// under a key becomes the group's leader, waits one admission window for
// batch-mates, then runs the whole group in a single call and hands each
// member its own result. Later arrivals under the same key join the open
// group and just wait. Keys partition compatibility (the warehouse keys
// groups by snapshot identity, so only queries against the same epoch
// and delta high-water mark ever share a scan).
//
// A group failure (I/O error, leader cancellation) is reported to every
// member; members fall back to solo execution, so batching can only ever
// be a performance effect. A member whose own context expires while
// waiting leaves with its context error; the batch keeps running for the
// others.
type Batcher[K comparable, I, R any] struct {
	window time.Duration

	mu     sync.Mutex
	groups map[K]*batchGroup[I, R]

	batches atomic.Int64
	items   atomic.Int64
}

type batchGroup[I, R any] struct {
	items []I
	done  chan struct{} // closed once out/err are set
	out   []R
	err   error
}

// NewBatcher builds a Batcher with the given admission window. The
// window bounds the latency a leader donates waiting for batch-mates;
// O(100µs)–O(1ms) keeps it well under one physical I/O.
func NewBatcher[K comparable, I, R any](window time.Duration) *Batcher[K, I, R] {
	if window <= 0 {
		window = 100 * time.Microsecond
	}
	return &Batcher[K, I, R]{window: window, groups: make(map[K]*batchGroup[I, R])}
}

// BatcherStats is the batcher's lifetime accounting.
type BatcherStats struct {
	// Batches counts group executions (a solo run in an empty window
	// still counts as a batch of one).
	Batches int64
	// Items counts the operations submitted across all batches.
	Items int64
}

// Stats snapshots the batcher's counters.
func (b *Batcher[K, I, R]) Stats() BatcherStats {
	return BatcherStats{Batches: b.batches.Load(), Items: b.items.Load()}
}

// Do submits one item under a compatibility key and returns its result
// plus the size of the batch it ran in. run is invoked exactly once per
// group — by the leader, with every member's item in arrival order —
// and must return one result per item. Non-leaders' run values are
// never called.
func (b *Batcher[K, I, R]) Do(ctx context.Context, key K, item I, run func(items []I) ([]R, error)) (R, int, error) {
	var zero R
	b.mu.Lock()
	g, ok := b.groups[key]
	if ok {
		idx := len(g.items)
		g.items = append(g.items, item)
		b.mu.Unlock()
		select {
		case <-g.done:
		case <-ctx.Done():
			return zero, 0, ctx.Err()
		}
		if g.err != nil {
			return zero, len(g.items), g.err
		}
		return g.out[idx], len(g.items), nil
	}
	g = &batchGroup[I, R]{items: []I{item}, done: make(chan struct{})}
	b.groups[key] = g
	b.mu.Unlock()

	// Leader: donate one window to batch-mates, then seal and run.
	timer := time.NewTimer(b.window)
	select {
	case <-timer.C:
	case <-ctx.Done():
		timer.Stop()
	}
	b.mu.Lock()
	delete(b.groups, key) // seal: later arrivals start a fresh group
	items := g.items
	b.mu.Unlock()

	if err := ctx.Err(); err != nil {
		g.err = err
		close(g.done)
		return zero, 0, err
	}
	out, err := run(items)
	if err == nil && len(out) != len(items) {
		panic("exec: Batcher run returned wrong result count")
	}
	g.out, g.err = out, err
	close(g.done)
	b.batches.Add(1)
	b.items.Add(int64(len(items)))
	if err != nil {
		return zero, len(items), err
	}
	return out[0], len(items), nil
}
