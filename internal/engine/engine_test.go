package engine

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/frag"
	"repro/internal/schema"
)

// buildTiny builds an engine over the tiny schema with the given
// fragmentation text.
func buildTiny(t testing.TB, fragText string) (*schema.Star, *data.Table, *Engine) {
	t.Helper()
	s := schema.Tiny()
	tab := data.MustGenerate(s, 11)
	spec := frag.MustParse(s, fragText)
	icfg := make(frag.IndexConfig, len(s.Dims))
	for i := range s.Dims {
		if s.Dims[i].Name == schema.DimProduct || s.Dims[i].Name == schema.DimCustomer {
			icfg[i] = frag.IndexSpec{Kind: frag.EncodedIndex}
		} else {
			icfg[i] = frag.IndexSpec{Kind: frag.SimpleIndexes}
		}
	}
	e, err := Build(tab, spec, icfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, tab, e
}

func TestExecuteMatchesScanAllQueryShapes(t *testing.T) {
	s, tab, e := buildTiny(t, "time::month, product::group")
	// Exhaustive: every (dim, level, member) single-predicate query plus a
	// sample of two- and three-predicate queries.
	for di := range s.Dims {
		for li := 0; li < s.Dims[di].Depth(); li++ {
			for m := 0; m < s.Dims[di].Levels[li].Card; m++ {
				q := frag.Query{Preds: []frag.Pred{{Dim: di, Level: li, Member: m}}}
				got, _, err := e.Execute(q, 4)
				if err != nil {
					t.Fatal(err)
				}
				want := Scan(tab, q)
				if got != want {
					t.Fatalf("query %v: got %+v, want %+v", q, got, want)
				}
			}
		}
	}
}

func TestExecuteMatchesScanRandomMultiPredicate(t *testing.T) {
	s, tab, e := buildTiny(t, "time::month, product::group")
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 300; iter++ {
		var q frag.Query
		for di := range s.Dims {
			if rng.Intn(2) == 0 {
				continue
			}
			li := rng.Intn(s.Dims[di].Depth())
			q.Preds = append(q.Preds, frag.Pred{Dim: di, Level: li, Member: rng.Intn(s.Dims[di].Levels[li].Card)})
		}
		if len(q.Preds) == 0 {
			continue
		}
		got, _, err := e.Execute(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		if want := Scan(tab, q); got != want {
			t.Fatalf("iter %d query %v: got %+v, want %+v", iter, q, got, want)
		}
	}
}

func TestExecuteAcrossFragmentations(t *testing.T) {
	// The same queries must give identical answers under different
	// fragmentations (fragmentation is a physical design choice only).
	s := schema.Tiny()
	tab := data.MustGenerate(s, 11)
	icfg := make(frag.IndexConfig, len(s.Dims))
	for i := range s.Dims {
		icfg[i] = frag.IndexSpec{Kind: frag.EncodedIndex}
	}
	specs := []string{
		"time::month, product::group",
		"product::code",
		"customer::store",
		"time::quarter, product::class, customer::retailer",
	}
	pd := s.DimIndex(schema.DimProduct)
	td := s.DimIndex(schema.DimTime)
	group := s.Dims[pd].LevelIndex(schema.LvlGroup)
	month := s.Dims[td].LevelIndex(schema.LvlMonth)
	q := frag.Query{Preds: []frag.Pred{{Dim: td, Level: month, Member: 1}, {Dim: pd, Level: group, Member: 0}}}
	want := Scan(tab, q)
	for _, text := range specs {
		e, err := Build(tab, frag.MustParse(s, text), icfg)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := e.Execute(q, 2)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%s: got %+v, want %+v", text, got, want)
		}
	}
}

func TestWorkConfinement(t *testing.T) {
	// Q1 query on both fragmentation attributes: exactly one fragment
	// visited, no bitmaps read, only that fragment's rows scanned.
	s, tab, e := buildTiny(t, "time::month, product::group")
	pd := s.DimIndex(schema.DimProduct)
	td := s.DimIndex(schema.DimTime)
	group := s.Dims[pd].LevelIndex(schema.LvlGroup)
	month := s.Dims[td].LevelIndex(schema.LvlMonth)

	q := frag.Query{Preds: []frag.Pred{{Dim: td, Level: month, Member: 2}, {Dim: pd, Level: group, Member: 1}}}
	agg, st, err := e.Execute(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.FragmentsProcessed > 1 {
		t.Errorf("fragments processed = %d, want <= 1", st.FragmentsProcessed)
	}
	if st.BitmapsRead != 0 {
		t.Errorf("bitmaps read = %d, want 0 (Q1 needs no bitmaps)", st.BitmapsRead)
	}
	if agg.Count != st.RowsScanned {
		t.Errorf("rows scanned = %d but count = %d: Q1 must only touch relevant rows", st.RowsScanned, agg.Count)
	}
	if want := Scan(tab, q); agg != want {
		t.Errorf("got %+v, want %+v", agg, want)
	}
}

func TestWorkConfinementQ2UsesSuffixBitmaps(t *testing.T) {
	// A code query within a group-fragmented table reads only the suffix
	// bitmaps (class+code bits), not the full product index.
	s, tab, e := buildTiny(t, "time::month, product::group")
	pd := s.DimIndex(schema.DimProduct)
	code := s.Dims[pd].LevelIndex(schema.LvlCode)

	q := frag.Query{Preds: []frag.Pred{{Dim: pd, Level: code, Member: 3}}}
	agg, st, err := e.Execute(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if want := Scan(tab, q); agg != want {
		t.Fatalf("got %+v, want %+v", agg, want)
	}
	// Tiny product: group(2) -> class(4) -> code(8): 1+1+1 = 3 bits total,
	// group prefix 1 bit, suffix 2 bits. Months = 4 fragments per group.
	months := s.Dim(schema.DimTime).LeafCard()
	wantBitmaps := int64(2 * months)
	if st.BitmapsRead != wantBitmaps {
		t.Errorf("bitmaps read = %d, want %d (2 suffix bits x %d fragments)", st.BitmapsRead, wantBitmaps, months)
	}
}

func TestUnsupportedQueryVisitsAllFragments(t *testing.T) {
	s, tab, e := buildTiny(t, "time::month, product::group")
	cd := s.DimIndex(schema.DimCustomer)
	store := s.Dims[cd].LevelIndex(schema.LvlStore)
	q := frag.Query{Preds: []frag.Pred{{Dim: cd, Level: store, Member: 2}}}
	agg, st, err := e.Execute(q, 4)
	if err != nil {
		t.Fatal(err)
	}
	if want := Scan(tab, q); agg != want {
		t.Fatalf("got %+v, want %+v", agg, want)
	}
	if st.FragmentsProcessed != e.NumFragments() {
		t.Errorf("fragments processed = %d, want all %d", st.FragmentsProcessed, e.NumFragments())
	}
}

func TestExecuteParallelismInvariance(t *testing.T) {
	s, _, e := buildTiny(t, "time::month, product::group")
	cd := s.DimIndex(schema.DimCustomer)
	ret := s.Dims[cd].LevelIndex(schema.LvlRetailer)
	q := frag.Query{Preds: []frag.Pred{{Dim: cd, Level: ret, Member: 1}}}
	base, _, err := e.Execute(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 7, 16} {
		got, _, err := e.Execute(q, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got != base {
			t.Fatalf("workers=%d: got %+v, want %+v", workers, got, base)
		}
	}
}

func TestExecuteValidatesQuery(t *testing.T) {
	_, _, e := buildTiny(t, "time::month, product::group")
	_, _, err := e.Execute(frag.Query{Preds: []frag.Pred{{Dim: 99, Level: 0, Member: 0}}}, 1)
	if err == nil {
		t.Fatal("invalid query accepted")
	}
}

func TestBuildValidations(t *testing.T) {
	s := schema.Tiny()
	tab := data.MustGenerate(s, 1)
	other := schema.Tiny()
	spec := frag.MustParse(other, "time::month")
	icfg := make(frag.IndexConfig, len(s.Dims))
	if _, err := Build(tab, spec, icfg); err == nil {
		t.Fatal("mismatched schema accepted")
	}
	specOK := frag.MustParse(s, "time::month")
	if _, err := Build(tab, specOK, icfg[:1]); err == nil {
		t.Fatal("short index config accepted")
	}
}

func TestLeafLevelFragmentationEliminatesAllBitmapsOfDim(t *testing.T) {
	// Fragmenting product on its leaf: no product bitmaps exist, and code
	// queries still answer correctly via pure fragment confinement.
	s, tab, e := buildTiny(t, "product::code")
	pd := s.DimIndex(schema.DimProduct)
	code := s.Dims[pd].LevelIndex(schema.LvlCode)
	q := frag.Query{Preds: []frag.Pred{{Dim: pd, Level: code, Member: 5}}}
	agg, st, err := e.Execute(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if want := Scan(tab, q); agg != want {
		t.Fatalf("got %+v, want %+v", agg, want)
	}
	if st.BitmapsRead != 0 {
		t.Errorf("bitmaps read = %d, want 0", st.BitmapsRead)
	}
	if agg.Count != st.RowsScanned {
		t.Errorf("scanned %d rows for %d hits", st.RowsScanned, agg.Count)
	}
}

func TestScaledSchemaEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("larger generation")
	}
	s := schema.APB1Scaled(60)
	tab := data.MustGenerate(s, 99)
	spec := frag.MustParse(s, "time::month, product::group")
	icfg := frag.APB1Indexes(s)
	e, err := Build(tab, spec, icfg)
	if err != nil {
		t.Fatal(err)
	}
	pd := s.DimIndex(schema.DimProduct)
	td := s.DimIndex(schema.DimTime)
	cd := s.DimIndex(schema.DimCustomer)
	queries := []frag.Query{
		{Preds: []frag.Pred{{Dim: td, Level: s.Dims[td].LevelIndex(schema.LvlMonth), Member: 5}}},
		{Preds: []frag.Pred{{Dim: cd, Level: s.Dims[cd].LevelIndex(schema.LvlStore), Member: 3}}},
		{Preds: []frag.Pred{{Dim: pd, Level: s.Dims[pd].LevelIndex(schema.LvlCode), Member: 77},
			{Dim: td, Level: s.Dims[td].LevelIndex(schema.LvlQuarter), Member: 2}}},
	}
	for _, q := range queries {
		got, _, err := e.Execute(q, 8)
		if err != nil {
			t.Fatal(err)
		}
		if want := Scan(tab, q); got != want {
			t.Errorf("query %v: got %+v, want %+v", q, got, want)
		}
	}
}

// TestExecuteDeterministicAcrossWorkers asserts that the engine returns
// byte-identical Aggregate and Stats at every worker count: partials merge
// in fragment allocation order on the shared internal/exec pool.
func TestExecuteDeterministicAcrossWorkers(t *testing.T) {
	s, _, e := buildTiny(t, "time::month, product::group")
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 50; iter++ {
		var q frag.Query
		for di := range s.Dims {
			if rng.Intn(2) == 0 {
				continue
			}
			li := rng.Intn(s.Dims[di].Depth())
			q.Preds = append(q.Preds, frag.Pred{Dim: di, Level: li, Member: rng.Intn(s.Dims[di].Levels[li].Card)})
		}
		if len(q.Preds) == 0 {
			continue
		}
		wantAgg, wantSt, err := e.Execute(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 8, 0} { // 0 = GOMAXPROCS default
			gotAgg, gotSt, err := e.Execute(q, workers)
			if err != nil {
				t.Fatal(err)
			}
			if gotAgg != wantAgg || gotSt != wantSt {
				t.Fatalf("iter %d workers=%d: got %+v/%+v, want %+v/%+v",
					iter, workers, gotAgg, gotSt, wantAgg, wantSt)
			}
		}
	}
}

// TestExecuteContextCancellation asserts cancellation surfaces from the
// pool.
func TestExecuteContextCancellation(t *testing.T) {
	s, _, e := buildTiny(t, "time::month, product::group")
	cd := s.DimIndex(schema.DimCustomer)
	q := frag.Query{Preds: []frag.Pred{{Dim: cd, Level: s.Dims[cd].LevelIndex(schema.LvlStore), Member: 1}}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := e.ExecuteContext(ctx, q, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// buildBoth builds the materialised and the compressed engine over the
// same table and fragmentation.
func buildBoth(t testing.TB, fragText string) (*schema.Star, *data.Table, *Engine, *Engine) {
	t.Helper()
	s, tab, e := buildTiny(t, fragText)
	ce, err := BuildCompressed(tab, e.spec, e.icfg)
	if err != nil {
		t.Fatal(err)
	}
	if !ce.Compressed() || e.Compressed() {
		t.Fatal("compressed flags wrong")
	}
	return s, tab, e, ce
}

// TestCompressedEngineEquivalence is the tentpole oracle: for every single
// predicate query shape (covering Q1-Q4 under the paper's standard
// fragmentation) and a sample of multi-predicate queries, the compressed
// execution path must produce results and work statistics identical to the
// materialised path and aggregates identical to the full scan, at every
// worker count.
func TestCompressedEngineEquivalence(t *testing.T) {
	for _, fragText := range []string{
		"time::month, product::group",
		"customer::store",
		"time::quarter",
	} {
		s, tab, e, ce := buildBoth(t, fragText)
		check := func(q frag.Query) {
			t.Helper()
			wantAgg, wantSt, err := e.Execute(q, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 3} {
				gotAgg, gotSt, err := ce.Execute(q, workers)
				if err != nil {
					t.Fatal(err)
				}
				if gotAgg != wantAgg || gotSt != wantSt {
					t.Fatalf("frag %q query %v workers=%d: compressed %+v/%+v != materialised %+v/%+v",
						fragText, q, workers, gotAgg, gotSt, wantAgg, wantSt)
				}
			}
			if scan := Scan(tab, q); scan != wantAgg {
				t.Fatalf("frag %q query %v: engine %+v != scan %+v", fragText, q, wantAgg, scan)
			}
		}
		spec := e.spec
		classes := make(map[frag.QueryClass]bool)
		for di := range s.Dims {
			for li := 0; li < s.Dims[di].Depth(); li++ {
				for m := 0; m < s.Dims[di].Levels[li].Card; m++ {
					q := frag.Query{Preds: []frag.Pred{{Dim: di, Level: li, Member: m}}}
					classes[spec.Classify(q)] = true
					check(q)
				}
			}
		}
		rng := rand.New(rand.NewSource(23))
		for iter := 0; iter < 60; iter++ {
			var q frag.Query
			for di := range s.Dims {
				if rng.Intn(2) == 0 {
					continue
				}
				li := rng.Intn(s.Dims[di].Depth())
				q.Preds = append(q.Preds, frag.Pred{Dim: di, Level: li, Member: rng.Intn(s.Dims[di].Levels[li].Card)})
			}
			if len(q.Preds) == 0 {
				continue
			}
			classes[spec.Classify(q)] = true
			check(q)
		}
		for _, cl := range []frag.QueryClass{frag.Q1, frag.Q2, frag.Q3, frag.Q4} {
			if !classes[cl] && fragText == "time::month, product::group" {
				t.Errorf("frag %q: query class %v never exercised", fragText, cl)
			}
		}
	}
}

func TestCompressedEngineDeterministicAcrossWorkers(t *testing.T) {
	_, _, _, ce := buildBoth(t, "time::month, product::group")
	q, err := frag.ParseQuery(ce.star, "customer::store=3")
	if err != nil {
		t.Fatal(err)
	}
	wantAgg, wantSt, err := ce.Execute(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		gotAgg, gotSt, err := ce.Execute(q, workers)
		if err != nil {
			t.Fatal(err)
		}
		if gotAgg != wantAgg || gotSt != wantSt {
			t.Fatalf("workers=%d diverged", workers)
		}
	}
}
