// Package engine is a real (non-simulated) parallel star query executor
// over MDHF-fragmented fact data: it partitions a generated fact table into
// fragments, builds per-fragment bitmap indices, and executes star queries
// fragment-wise with a pool of worker goroutines standing in for the
// Shared Disk processing nodes. It validates that the fragment-confinement
// and bitmap-elimination logic of internal/frag produces correct query
// answers, complementing the timing-oriented SIMPAD simulator.
package engine

import (
	"context"
	"fmt"
	"math/bits"

	"repro/internal/bitmap"
	"repro/internal/data"
	"repro/internal/exec"
	"repro/internal/frag"
	"repro/internal/schema"
)

// Aggregate is a star query result: COUNT plus the three APB-1 measure
// sums.
type Aggregate struct {
	Count       int64
	UnitsSold   int64
	DollarSales int64
	Cost        int64
}

func (a *Aggregate) add(o Aggregate) {
	a.Count += o.Count
	a.UnitsSold += o.UnitsSold
	a.DollarSales += o.DollarSales
	a.Cost += o.Cost
}

// Stats reports the work a query execution performed — used to assert the
// paper's confinement claims, not just result correctness.
type Stats struct {
	// FragmentsProcessed is the number of fragments visited.
	FragmentsProcessed int
	// RowsScanned is the number of fact rows whose measures were read.
	RowsScanned int64
	// BitmapsRead is the number of bitmap(-fragment)s evaluated.
	BitmapsRead int64
}

func (s *Stats) add(o Stats) {
	s.FragmentsProcessed += o.FragmentsProcessed
	s.RowsScanned += o.RowsScanned
	s.BitmapsRead += o.BitmapsRead
}

// fragment holds one fact fragment's rows (column-oriented) and its bitmap
// index fragments.
type fragment struct {
	rows        int
	dims        [][]int32
	unitsSold   []int64
	dollarSales []int64
	cost        []int64

	// encoded[d] is the encoded bitmap join index fragment for dimension d
	// (nil for simple-indexed dimensions).
	encoded []*bitmap.EncodedIndex
	// simple[d][l] is the simple bitmap index fragment on level l of
	// dimension d (nil where not materialised).
	simple [][]*bitmap.SimpleIndex

	// Compressed-mode counterparts (only one family is populated per
	// engine): queries execute directly on the WAH words.
	encodedC []*bitmap.CompressedEncodedIndex
	simpleC  [][]*bitmap.CompressedSimpleIndex
}

// Engine executes star queries over a fragmented fact table.
type Engine struct {
	star *schema.Star
	spec *frag.Spec
	icfg frag.IndexConfig

	frags map[int64]*fragment
	// layouts[d] is the encoding layout of dimension d (nil for simple).
	layouts []*bitmap.Layout
	// compressed selects the WAH execution path: per-fragment indices are
	// stored compressed and queries intersect / iterate them without
	// materialising a Bitset.
	compressed bool
}

// Compressed reports whether the engine stores its per-fragment bitmap
// indices WAH-compressed and executes on them directly.
func (e *Engine) Compressed() bool { return e.compressed }

// Build partitions the table per the fragmentation spec and constructs the
// per-fragment bitmap indices that survive bitmap elimination
// (Section 4.2): for fragmentation dimensions only levels strictly below
// the fragmentation attribute are indexed.
func Build(t *data.Table, spec *frag.Spec, icfg frag.IndexConfig) (*Engine, error) {
	return build(t, spec, icfg, false)
}

// BuildCompressed is Build storing every per-fragment bitmap
// WAH-compressed (encoded-index bit positions together with their
// precomputed complements). Queries then run on the compressed execution
// fast path: one k-way run-skipping AndAll per fragment and streaming
// aggregation over the compressed result, never inflating a Bitset.
func BuildCompressed(t *data.Table, spec *frag.Spec, icfg frag.IndexConfig) (*Engine, error) {
	return build(t, spec, icfg, true)
}

func build(t *data.Table, spec *frag.Spec, icfg frag.IndexConfig, compressed bool) (*Engine, error) {
	star := t.Star
	if spec.Star() != star {
		return nil, fmt.Errorf("engine: spec built for a different schema")
	}
	if len(icfg) != len(star.Dims) {
		return nil, fmt.Errorf("engine: index config has %d entries for %d dimensions", len(icfg), len(star.Dims))
	}
	e := &Engine{
		star:       star,
		spec:       spec,
		icfg:       icfg,
		frags:      make(map[int64]*fragment),
		layouts:    make([]*bitmap.Layout, len(star.Dims)),
		compressed: compressed,
	}
	for d := range star.Dims {
		if icfg[d].Kind == frag.EncodedIndex {
			e.layouts[d] = bitmap.NewLayout(&star.Dims[d], icfg[d].PadBits)
		}
	}

	// Pass 1: row counts per fragment.
	counts := make(map[int64]int)
	buf := make([]int, len(star.Dims))
	for i := 0; i < t.N(); i++ {
		id := spec.ID(spec.CoordOf(t.LeafMembers(i, buf)))
		counts[id]++
	}
	// Pass 2: distribute rows.
	for id, c := range counts {
		f := &fragment{dims: make([][]int32, len(star.Dims))}
		for d := range f.dims {
			f.dims[d] = make([]int32, 0, c)
		}
		f.unitsSold = make([]int64, 0, c)
		f.dollarSales = make([]int64, 0, c)
		f.cost = make([]int64, 0, c)
		e.frags[id] = f
	}
	for i := 0; i < t.N(); i++ {
		id := spec.ID(spec.CoordOf(t.LeafMembers(i, buf)))
		f := e.frags[id]
		for d := range f.dims {
			f.dims[d] = append(f.dims[d], t.Dims[d][i])
		}
		f.unitsSold = append(f.unitsSold, t.UnitsSold[i])
		f.dollarSales = append(f.dollarSales, t.DollarSales[i])
		f.cost = append(f.cost, t.Cost[i])
		f.rows++
	}
	// Pass 3: per-fragment index construction. vals is reused across all
	// fragments and levels.
	var vals []int32
	for _, f := range e.frags {
		vals = e.buildIndexes(f, vals)
	}
	return e, nil
}

// fragLevel returns the fragmentation level of dimension d, or -1.
func (e *Engine) fragLevel(d int) int {
	if ai := e.spec.AttrOfDim(d); ai != -1 {
		return e.spec.Attrs()[ai].Level
	}
	return -1
}

// buildIndexes constructs the fragment's surviving bitmap indices,
// compressing them (and dropping the uncompressed forms) in compressed
// mode. vals is a reusable level-member buffer; the grown slice is
// returned for the next fragment.
func (e *Engine) buildIndexes(f *fragment, vals []int32) []int32 {
	nd := len(e.star.Dims)
	if e.compressed {
		f.encodedC = make([]*bitmap.CompressedEncodedIndex, nd)
		f.simpleC = make([][]*bitmap.CompressedSimpleIndex, nd)
	} else {
		f.encoded = make([]*bitmap.EncodedIndex, nd)
		f.simple = make([][]*bitmap.SimpleIndex, nd)
	}
	for d := 0; d < nd; d++ {
		dim := &e.star.Dims[d]
		fl := e.fragLevel(d)
		switch e.icfg[d].Kind {
		case frag.EncodedIndex:
			// The full index is built; within a fragment only the suffix
			// bitmaps below the fragmentation level carry information and
			// only they are evaluated (SelectPartial).
			if fl != dim.Leaf() { // fully eliminated when fragmenting on the leaf
				idx := bitmap.NewEncodedIndex(e.layouts[d], f.dims[d])
				if e.compressed {
					f.encodedC[d] = bitmap.CompressEncodedIndex(idx)
				} else {
					f.encoded[d] = idx
				}
			}
		default:
			if e.compressed {
				f.simpleC[d] = make([]*bitmap.CompressedSimpleIndex, dim.Depth())
			} else {
				f.simple[d] = make([]*bitmap.SimpleIndex, dim.Depth())
			}
			for l := fl + 1; l < dim.Depth(); l++ {
				if cap(vals) < f.rows {
					vals = make([]int32, f.rows)
				}
				vals = vals[:f.rows]
				for i, leaf := range f.dims[d] {
					vals[i] = int32(dim.Ancestor(dim.Leaf(), int(leaf), l))
				}
				idx := bitmap.NewSimpleIndex(dim.Levels[l].Card, vals)
				if e.compressed {
					f.simpleC[d][l] = bitmap.CompressSimpleIndex(idx)
				} else {
					f.simple[d][l] = idx
				}
			}
		}
	}
	return vals
}

// NumFragments returns the number of non-empty fragments materialised.
func (e *Engine) NumFragments() int { return len(e.frags) }

// Execute runs the star query with the given number of parallel workers
// (processing nodes) and returns the aggregate plus work statistics.
// Values below 1 mean one worker per available CPU. Results are identical
// at any worker count: per-fragment partials merge in fragment allocation
// order on the shared internal/exec pool.
func (e *Engine) Execute(q frag.Query, workers int) (Aggregate, Stats, error) {
	return e.ExecuteContext(context.Background(), q, workers)
}

// partial is one fragment's contribution to a query result.
type partial struct {
	agg Aggregate
	st  Stats
}

// scratch is the per-worker buffer set threaded through internal/exec:
// selection bitsets for the materialised path, operand and result buffers
// for the compressed path. Every buffer is reused across all fragments a
// worker processes, so the hot loops run allocation-free once warm.
type scratch struct {
	hits *bitmap.Bitset // running AND of predicate selections
	sel  *bitmap.Bitset // current predicate's selection

	ops  []*bitmap.Compressed // operands of the fragment's single AndAll
	cres *bitmap.Compressed   // compressed intersection result
}

func newScratch() *scratch {
	return &scratch{hits: bitmap.New(0), sel: bitmap.New(0), cres: &bitmap.Compressed{}}
}

// fragmentTask returns the per-fragment task body shared by the private
// worker-pool path and the scheduler path.
func (e *Engine) fragmentTask(ids []int64, q frag.Query) func(sc *scratch, i int) (partial, error) {
	return func(sc *scratch, i int) (partial, error) {
		f, ok := e.frags[ids[i]]
		if !ok {
			return partial{}, nil // fragment has no rows at this density
		}
		var agg Aggregate
		var st Stats
		if e.compressed {
			agg, st = e.processFragmentCompressed(f, q, sc)
		} else {
			agg, st = e.processFragment(f, q, sc)
		}
		st.FragmentsProcessed = 1
		return partial{agg: agg, st: st}, nil
	}
}

func mergePartial(acc *partial, p partial) {
	acc.agg.add(p.agg)
	acc.st.add(p.st)
}

// ExecuteContext is Execute with cancellation.
func (e *Engine) ExecuteContext(ctx context.Context, q frag.Query, workers int) (Aggregate, Stats, error) {
	if err := q.Validate(e.star); err != nil {
		return Aggregate{}, Stats{}, err
	}
	ids := e.spec.FragmentIDs(q)
	res, err := exec.ReduceWith(ctx, workers, len(ids), newScratch,
		e.fragmentTask(ids, q), mergePartial)
	if err != nil {
		return Aggregate{}, Stats{}, err
	}
	return res.agg, res.st, nil
}

// ExecuteOn is ExecuteContext dispatched through a shared admission
// scheduler instead of a private per-query worker set: the query's
// fragment tasks interleave with every other execution admitted to the
// scheduler, multiplexing concurrent queries onto one fixed pool. The
// task-ordered gather makes the result bit-for-bit identical to Execute
// at any pool size or admission mix.
func (e *Engine) ExecuteOn(ctx context.Context, s *exec.Scheduler, q frag.Query) (Aggregate, Stats, error) {
	if s == nil {
		return e.ExecuteContext(ctx, q, 0)
	}
	if err := q.Validate(e.star); err != nil {
		return Aggregate{}, Stats{}, err
	}
	ids := e.spec.FragmentIDs(q)
	res, err := exec.ReduceOn(ctx, s, len(ids), newScratch,
		e.fragmentTask(ids, q), mergePartial)
	if err != nil {
		return Aggregate{}, Stats{}, err
	}
	return res.agg, res.st, nil
}

// processFragment evaluates the query inside one fragment: bitmap
// selections for the predicates that need them (Section 4.3 step 2), AND
// them, then aggregate the hit rows — or all rows when no bitmap is needed
// (query types Q1/Q3). All selections land in sc's reusable bitsets and
// aggregation runs word-wise, so the loop performs no allocation.
func (e *Engine) processFragment(f *fragment, q frag.Query, sc *scratch) (Aggregate, Stats) {
	var st Stats
	first := true
	for _, p := range q {
		if !e.spec.NeedsBitmap(p) {
			continue
		}
		dst := sc.hits
		if !first {
			dst = sc.sel
		}
		switch e.icfg[p.Dim].Kind {
		case frag.EncodedIndex:
			nb := f.encoded[p.Dim].SelectPartialInto(dst, e.fragLevel(p.Dim), p.Level, p.Member)
			st.BitmapsRead += int64(nb)
		default:
			f.simple[p.Dim][p.Level].SelectInto(dst, p.Member)
			st.BitmapsRead++
		}
		if !first {
			sc.hits.And(sc.sel)
		}
		first = false
	}

	var agg Aggregate
	if first {
		// All fragment rows are relevant (no bitmap access, IOC1-style).
		st.RowsScanned += int64(f.rows)
		for i := 0; i < f.rows; i++ {
			agg.Count++
			agg.UnitsSold += f.unitsSold[i]
			agg.DollarSales += f.dollarSales[i]
			agg.Cost += f.cost[i]
		}
		return agg, st
	}
	sc.hits.ForEachWord(func(base int, w uint64) {
		for w != 0 {
			i := base + bits.TrailingZeros64(w)
			w &= w - 1
			agg.Count++
			agg.UnitsSold += f.unitsSold[i]
			agg.DollarSales += f.dollarSales[i]
			agg.Cost += f.cost[i]
		}
	})
	st.RowsScanned += agg.Count
	return agg, st
}

// processFragmentCompressed is the compressed-execution counterpart: the
// predicates' bitmaps stay WAH-encoded, intersect in one k-way
// run-skipping AndAll, and the hit rows stream out of the compressed
// result range-wise — no Bitset is materialised at any point.
func (e *Engine) processFragmentCompressed(f *fragment, q frag.Query, sc *scratch) (Aggregate, Stats) {
	var st Stats
	ops := sc.ops[:0]
	for _, p := range q {
		if !e.spec.NeedsBitmap(p) {
			continue
		}
		switch e.icfg[p.Dim].Kind {
		case frag.EncodedIndex:
			var nb int
			ops, nb = f.encodedC[p.Dim].SelectOperands(ops, e.fragLevel(p.Dim), p.Level, p.Member)
			st.BitmapsRead += int64(nb)
		default:
			ops = append(ops, f.simpleC[p.Dim][p.Level].Bitmap(p.Member))
			st.BitmapsRead++
		}
	}
	sc.ops = ops

	var agg Aggregate
	if len(ops) == 0 {
		// All fragment rows are relevant (no bitmap access, IOC1-style).
		st.RowsScanned += int64(f.rows)
		for i := 0; i < f.rows; i++ {
			agg.Count++
			agg.UnitsSold += f.unitsSold[i]
			agg.DollarSales += f.dollarSales[i]
			agg.Cost += f.cost[i]
		}
		return agg, st
	}
	sc.cres = bitmap.AndAllInto(sc.cres, ops...)
	sc.cres.ForEachRange(func(lo, hi int) {
		agg.Count += int64(hi - lo)
		for i := lo; i < hi; i++ {
			agg.UnitsSold += f.unitsSold[i]
			agg.DollarSales += f.dollarSales[i]
			agg.Cost += f.cost[i]
		}
	})
	st.RowsScanned += agg.Count
	return agg, st
}

// Scan computes the query aggregate by a naive full scan of the table —
// the correctness oracle for Execute.
func Scan(t *data.Table, q frag.Query) Aggregate {
	var agg Aggregate
	star := t.Star
	for i := 0; i < t.N(); i++ {
		match := true
		for _, p := range q {
			d := &star.Dims[p.Dim]
			if d.Ancestor(d.Leaf(), int(t.Dims[p.Dim][i]), p.Level) != p.Member {
				match = false
				break
			}
		}
		if match {
			agg.Count++
			agg.UnitsSold += t.UnitsSold[i]
			agg.DollarSales += t.DollarSales[i]
			agg.Cost += t.Cost[i]
		}
	}
	return agg
}
