// Package engine is a real (non-simulated) parallel star query executor
// over MDHF-fragmented fact data: it partitions a generated fact table into
// fragments, builds per-fragment bitmap indices, and executes star queries
// fragment-wise with a pool of worker goroutines standing in for the
// Shared Disk processing nodes. It validates that the fragment-confinement
// and bitmap-elimination logic of internal/frag produces correct query
// answers, complementing the timing-oriented SIMPAD simulator.
package engine

import (
	"context"
	"fmt"

	"repro/internal/bitmap"
	"repro/internal/data"
	"repro/internal/exec"
	"repro/internal/frag"
	"repro/internal/schema"
)

// Aggregate is a star query result: COUNT plus the three APB-1 measure
// sums.
type Aggregate struct {
	Count       int64
	UnitsSold   int64
	DollarSales int64
	Cost        int64
}

func (a *Aggregate) add(o Aggregate) {
	a.Count += o.Count
	a.UnitsSold += o.UnitsSold
	a.DollarSales += o.DollarSales
	a.Cost += o.Cost
}

// Stats reports the work a query execution performed — used to assert the
// paper's confinement claims, not just result correctness.
type Stats struct {
	// FragmentsProcessed is the number of fragments visited.
	FragmentsProcessed int
	// RowsScanned is the number of fact rows whose measures were read.
	RowsScanned int64
	// BitmapsRead is the number of bitmap(-fragment)s evaluated.
	BitmapsRead int64
}

func (s *Stats) add(o Stats) {
	s.FragmentsProcessed += o.FragmentsProcessed
	s.RowsScanned += o.RowsScanned
	s.BitmapsRead += o.BitmapsRead
}

// fragment holds one fact fragment's rows (column-oriented) and its bitmap
// index fragments.
type fragment struct {
	rows        int
	dims        [][]int32
	unitsSold   []int64
	dollarSales []int64
	cost        []int64

	// encoded[d] is the encoded bitmap join index fragment for dimension d
	// (nil for simple-indexed dimensions).
	encoded []*bitmap.EncodedIndex
	// simple[d][l] is the simple bitmap index fragment on level l of
	// dimension d (nil where not materialised).
	simple [][]*bitmap.SimpleIndex
}

// Engine executes star queries over a fragmented fact table.
type Engine struct {
	star *schema.Star
	spec *frag.Spec
	icfg frag.IndexConfig

	frags map[int64]*fragment
	// layouts[d] is the encoding layout of dimension d (nil for simple).
	layouts []*bitmap.Layout
}

// Build partitions the table per the fragmentation spec and constructs the
// per-fragment bitmap indices that survive bitmap elimination
// (Section 4.2): for fragmentation dimensions only levels strictly below
// the fragmentation attribute are indexed.
func Build(t *data.Table, spec *frag.Spec, icfg frag.IndexConfig) (*Engine, error) {
	star := t.Star
	if spec.Star() != star {
		return nil, fmt.Errorf("engine: spec built for a different schema")
	}
	if len(icfg) != len(star.Dims) {
		return nil, fmt.Errorf("engine: index config has %d entries for %d dimensions", len(icfg), len(star.Dims))
	}
	e := &Engine{
		star:    star,
		spec:    spec,
		icfg:    icfg,
		frags:   make(map[int64]*fragment),
		layouts: make([]*bitmap.Layout, len(star.Dims)),
	}
	for d := range star.Dims {
		if icfg[d].Kind == frag.EncodedIndex {
			e.layouts[d] = bitmap.NewLayout(&star.Dims[d], icfg[d].PadBits)
		}
	}

	// Pass 1: row counts per fragment.
	counts := make(map[int64]int)
	buf := make([]int, len(star.Dims))
	for i := 0; i < t.N(); i++ {
		id := spec.ID(spec.CoordOf(t.LeafMembers(i, buf)))
		counts[id]++
	}
	// Pass 2: distribute rows.
	for id, c := range counts {
		f := &fragment{dims: make([][]int32, len(star.Dims))}
		for d := range f.dims {
			f.dims[d] = make([]int32, 0, c)
		}
		f.unitsSold = make([]int64, 0, c)
		f.dollarSales = make([]int64, 0, c)
		f.cost = make([]int64, 0, c)
		e.frags[id] = f
	}
	for i := 0; i < t.N(); i++ {
		id := spec.ID(spec.CoordOf(t.LeafMembers(i, buf)))
		f := e.frags[id]
		for d := range f.dims {
			f.dims[d] = append(f.dims[d], t.Dims[d][i])
		}
		f.unitsSold = append(f.unitsSold, t.UnitsSold[i])
		f.dollarSales = append(f.dollarSales, t.DollarSales[i])
		f.cost = append(f.cost, t.Cost[i])
		f.rows++
	}
	// Pass 3: per-fragment index construction.
	for _, f := range e.frags {
		e.buildIndexes(f)
	}
	return e, nil
}

// fragLevel returns the fragmentation level of dimension d, or -1.
func (e *Engine) fragLevel(d int) int {
	if ai := e.spec.AttrOfDim(d); ai != -1 {
		return e.spec.Attrs()[ai].Level
	}
	return -1
}

func (e *Engine) buildIndexes(f *fragment) {
	nd := len(e.star.Dims)
	f.encoded = make([]*bitmap.EncodedIndex, nd)
	f.simple = make([][]*bitmap.SimpleIndex, nd)
	for d := 0; d < nd; d++ {
		dim := &e.star.Dims[d]
		fl := e.fragLevel(d)
		switch e.icfg[d].Kind {
		case frag.EncodedIndex:
			// The full index is built; within a fragment only the suffix
			// bitmaps below the fragmentation level carry information and
			// only they are evaluated (SelectPartial).
			if fl != dim.Leaf() { // fully eliminated when fragmenting on the leaf
				f.encoded[d] = bitmap.NewEncodedIndex(e.layouts[d], f.dims[d])
			}
		default:
			f.simple[d] = make([]*bitmap.SimpleIndex, dim.Depth())
			for l := fl + 1; l < dim.Depth(); l++ {
				vals := make([]int32, f.rows)
				for i, leaf := range f.dims[d] {
					vals[i] = int32(dim.Ancestor(dim.Leaf(), int(leaf), l))
				}
				f.simple[d][l] = bitmap.NewSimpleIndex(dim.Levels[l].Card, vals)
			}
		}
	}
}

// NumFragments returns the number of non-empty fragments materialised.
func (e *Engine) NumFragments() int { return len(e.frags) }

// Execute runs the star query with the given number of parallel workers
// (processing nodes) and returns the aggregate plus work statistics.
// Values below 1 mean one worker per available CPU. Results are identical
// at any worker count: per-fragment partials merge in fragment allocation
// order on the shared internal/exec pool.
func (e *Engine) Execute(q frag.Query, workers int) (Aggregate, Stats, error) {
	return e.ExecuteContext(context.Background(), q, workers)
}

// partial is one fragment's contribution to a query result.
type partial struct {
	agg Aggregate
	st  Stats
}

// ExecuteContext is Execute with cancellation.
func (e *Engine) ExecuteContext(ctx context.Context, q frag.Query, workers int) (Aggregate, Stats, error) {
	if err := q.Validate(e.star); err != nil {
		return Aggregate{}, Stats{}, err
	}
	ids := e.spec.FragmentIDs(q)
	res, err := exec.Reduce(ctx, workers, len(ids),
		func(i int) (partial, error) {
			f, ok := e.frags[ids[i]]
			if !ok {
				return partial{}, nil // fragment has no rows at this density
			}
			agg, st := e.processFragment(f, q)
			st.FragmentsProcessed = 1
			return partial{agg: agg, st: st}, nil
		},
		func(acc *partial, p partial) {
			acc.agg.add(p.agg)
			acc.st.add(p.st)
		})
	if err != nil {
		return Aggregate{}, Stats{}, err
	}
	return res.agg, res.st, nil
}

// processFragment evaluates the query inside one fragment: bitmap
// selections for the predicates that need them (Section 4.3 step 2), AND
// them, then aggregate the hit rows — or all rows when no bitmap is needed
// (query types Q1/Q3).
func (e *Engine) processFragment(f *fragment, q frag.Query) (Aggregate, Stats) {
	var st Stats
	var hits *bitmap.Bitset
	for _, p := range q {
		if !e.spec.NeedsBitmap(p) {
			continue
		}
		var sel *bitmap.Bitset
		switch e.icfg[p.Dim].Kind {
		case frag.EncodedIndex:
			var nb int
			sel, nb = f.encoded[p.Dim].SelectPartial(e.fragLevel(p.Dim), p.Level, p.Member)
			st.BitmapsRead += int64(nb)
		default:
			sel = f.simple[p.Dim][p.Level].Select(p.Member)
			st.BitmapsRead++
		}
		if hits == nil {
			hits = sel
		} else {
			hits.And(sel)
		}
	}

	var agg Aggregate
	if hits == nil {
		// All fragment rows are relevant (no bitmap access, IOC1-style).
		st.RowsScanned += int64(f.rows)
		for i := 0; i < f.rows; i++ {
			agg.Count++
			agg.UnitsSold += f.unitsSold[i]
			agg.DollarSales += f.dollarSales[i]
			agg.Cost += f.cost[i]
		}
		return agg, st
	}
	hits.ForEach(func(i int) {
		st.RowsScanned++
		agg.Count++
		agg.UnitsSold += f.unitsSold[i]
		agg.DollarSales += f.dollarSales[i]
		agg.Cost += f.cost[i]
	})
	return agg, st
}

// Scan computes the query aggregate by a naive full scan of the table —
// the correctness oracle for Execute.
func Scan(t *data.Table, q frag.Query) Aggregate {
	var agg Aggregate
	star := t.Star
	for i := 0; i < t.N(); i++ {
		match := true
		for _, p := range q {
			d := &star.Dims[p.Dim]
			if d.Ancestor(d.Leaf(), int(t.Dims[p.Dim][i]), p.Level) != p.Member {
				match = false
				break
			}
		}
		if match {
			agg.Count++
			agg.UnitsSold += t.UnitsSold[i]
			agg.DollarSales += t.DollarSales[i]
			agg.Cost += t.Cost[i]
		}
	}
	return agg
}
