// Package engine is a real (non-simulated) parallel star query executor
// over MDHF-fragmented fact data: it partitions a generated fact table into
// fragments, builds per-fragment bitmap indices, and executes star queries
// fragment-wise with a pool of worker goroutines standing in for the
// Shared Disk processing nodes. It validates that the fragment-confinement
// and bitmap-elimination logic of internal/frag produces correct query
// answers, complementing the timing-oriented SIMPAD simulator.
//
// Aggregation — including grouped roll-ups — runs on the shared
// internal/kernel types, so the engine's results are structurally
// identical to the on-disk executor's.
package engine

import (
	"context"
	"fmt"
	"math/bits"

	"repro/internal/bitmap"
	"repro/internal/data"
	"repro/internal/exec"
	"repro/internal/frag"
	"repro/internal/kernel"
	"repro/internal/schema"
)

// Aggregate is a star query result: COUNT plus the three APB-1 measure
// sums — the shared kernel aggregate.
type Aggregate = kernel.Aggregate

// Stats reports the work a query execution performed — used to assert the
// paper's confinement claims, not just result correctness.
type Stats = kernel.Stats

// fragment holds one fact fragment's rows (column-oriented) and its bitmap
// index fragments.
type fragment struct {
	rows        int
	dims        [][]int32
	unitsSold   []int64
	dollarSales []int64
	cost        []int64

	// encoded[d] is the encoded bitmap join index fragment for dimension d
	// (nil for simple-indexed dimensions).
	encoded []*bitmap.EncodedIndex
	// simple[d][l] is the simple bitmap index fragment on level l of
	// dimension d (nil where not materialised).
	simple [][]*bitmap.SimpleIndex

	// Compressed-mode counterparts (only one family is populated per
	// engine): queries execute directly on the WAH words.
	encodedC []*bitmap.CompressedEncodedIndex
	simpleC  [][]*bitmap.CompressedSimpleIndex
}

// Engine executes star queries over a fragmented fact table.
type Engine struct {
	star *schema.Star
	spec *frag.Spec
	icfg frag.IndexConfig

	frags map[int64]*fragment
	// layouts[d] is the encoding layout of dimension d (nil for simple).
	layouts []*bitmap.Layout
	// compressed selects the WAH execution path: per-fragment indices are
	// stored compressed and queries intersect / iterate them without
	// materialising a Bitset.
	compressed bool
}

// Compressed reports whether the engine stores its per-fragment bitmap
// indices WAH-compressed and executes on them directly.
func (e *Engine) Compressed() bool { return e.compressed }

// Build partitions the table per the fragmentation spec and constructs the
// per-fragment bitmap indices that survive bitmap elimination
// (Section 4.2): for fragmentation dimensions only levels strictly below
// the fragmentation attribute are indexed.
func Build(t *data.Table, spec *frag.Spec, icfg frag.IndexConfig) (*Engine, error) {
	return build(t, spec, icfg, false)
}

// BuildCompressed is Build storing every per-fragment bitmap
// WAH-compressed (encoded-index bit positions together with their
// precomputed complements). Queries then run on the compressed execution
// fast path: one k-way run-skipping AndAll per fragment and streaming
// aggregation over the compressed result, never inflating a Bitset.
func BuildCompressed(t *data.Table, spec *frag.Spec, icfg frag.IndexConfig) (*Engine, error) {
	return build(t, spec, icfg, true)
}

func build(t *data.Table, spec *frag.Spec, icfg frag.IndexConfig, compressed bool) (*Engine, error) {
	star := t.Star
	if spec.Star() != star {
		return nil, fmt.Errorf("engine: spec built for a different schema")
	}
	if len(icfg) != len(star.Dims) {
		return nil, fmt.Errorf("engine: index config has %d entries for %d dimensions", len(icfg), len(star.Dims))
	}
	e := &Engine{
		star:       star,
		spec:       spec,
		icfg:       icfg,
		frags:      make(map[int64]*fragment),
		layouts:    make([]*bitmap.Layout, len(star.Dims)),
		compressed: compressed,
	}
	for d := range star.Dims {
		if icfg[d].Kind == frag.EncodedIndex {
			e.layouts[d] = bitmap.NewLayout(&star.Dims[d], icfg[d].PadBits)
		}
	}

	// Pass 1: row counts per fragment.
	counts := make(map[int64]int)
	buf := make([]int, len(star.Dims))
	for i := 0; i < t.N(); i++ {
		id := spec.ID(spec.CoordOf(t.LeafMembers(i, buf)))
		counts[id]++
	}
	// Pass 2: distribute rows.
	for id, c := range counts {
		f := &fragment{dims: make([][]int32, len(star.Dims))}
		for d := range f.dims {
			f.dims[d] = make([]int32, 0, c)
		}
		f.unitsSold = make([]int64, 0, c)
		f.dollarSales = make([]int64, 0, c)
		f.cost = make([]int64, 0, c)
		e.frags[id] = f
	}
	for i := 0; i < t.N(); i++ {
		id := spec.ID(spec.CoordOf(t.LeafMembers(i, buf)))
		f := e.frags[id]
		for d := range f.dims {
			f.dims[d] = append(f.dims[d], t.Dims[d][i])
		}
		f.unitsSold = append(f.unitsSold, t.UnitsSold[i])
		f.dollarSales = append(f.dollarSales, t.DollarSales[i])
		f.cost = append(f.cost, t.Cost[i])
		f.rows++
	}
	// Pass 3: per-fragment index construction. vals is reused across all
	// fragments and levels.
	var vals []int32
	for _, f := range e.frags {
		vals = e.buildIndexes(f, vals)
	}
	return e, nil
}

// fragLevel returns the fragmentation level of dimension d, or -1.
func (e *Engine) fragLevel(d int) int {
	if ai := e.spec.AttrOfDim(d); ai != -1 {
		return e.spec.Attrs()[ai].Level
	}
	return -1
}

// buildIndexes constructs the fragment's surviving bitmap indices,
// compressing them (and dropping the uncompressed forms) in compressed
// mode. vals is a reusable level-member buffer; the grown slice is
// returned for the next fragment.
func (e *Engine) buildIndexes(f *fragment, vals []int32) []int32 {
	nd := len(e.star.Dims)
	if e.compressed {
		f.encodedC = make([]*bitmap.CompressedEncodedIndex, nd)
		f.simpleC = make([][]*bitmap.CompressedSimpleIndex, nd)
	} else {
		f.encoded = make([]*bitmap.EncodedIndex, nd)
		f.simple = make([][]*bitmap.SimpleIndex, nd)
	}
	for d := 0; d < nd; d++ {
		dim := &e.star.Dims[d]
		fl := e.fragLevel(d)
		switch e.icfg[d].Kind {
		case frag.EncodedIndex:
			// The full index is built; within a fragment only the suffix
			// bitmaps below the fragmentation level carry information and
			// only they are evaluated (SelectPartial).
			if fl != dim.Leaf() { // fully eliminated when fragmenting on the leaf
				idx := bitmap.NewEncodedIndex(e.layouts[d], f.dims[d])
				if e.compressed {
					f.encodedC[d] = bitmap.CompressEncodedIndex(idx)
				} else {
					f.encoded[d] = idx
				}
			}
		default:
			if e.compressed {
				f.simpleC[d] = make([]*bitmap.CompressedSimpleIndex, dim.Depth())
			} else {
				f.simple[d] = make([]*bitmap.SimpleIndex, dim.Depth())
			}
			for l := fl + 1; l < dim.Depth(); l++ {
				if cap(vals) < f.rows {
					vals = make([]int32, f.rows)
				}
				vals = vals[:f.rows]
				for i, leaf := range f.dims[d] {
					vals[i] = int32(dim.Ancestor(dim.Leaf(), int(leaf), l))
				}
				idx := bitmap.NewSimpleIndex(dim.Levels[l].Card, vals)
				if e.compressed {
					f.simpleC[d][l] = bitmap.CompressSimpleIndex(idx)
				} else {
					f.simple[d][l] = idx
				}
			}
		}
	}
	return vals
}

// NumFragments returns the number of non-empty fragments materialised.
func (e *Engine) NumFragments() int { return len(e.frags) }

// Execute runs the star query with the given number of parallel workers
// (processing nodes) and returns the grand-total aggregate plus work
// statistics (any GroupBy on the query is ignored — use ExecuteGrouped).
// Values below 1 mean one worker per available CPU. Results are identical
// at any worker count: per-fragment partials merge in fragment allocation
// order on the shared internal/exec pool.
func (e *Engine) Execute(q frag.Query, workers int) (Aggregate, Stats, error) {
	return e.ExecuteContext(context.Background(), q, workers)
}

// partial is one fragment's contribution to a query result.
type partial struct {
	fp kernel.FragPartial
	st Stats
}

// acc is a query's running result: the task-ordered fold of the
// fragments' partials.
type acc struct {
	agg Aggregate
	g   *kernel.Grouped
	st  Stats
}

// scratch is the per-worker buffer set threaded through internal/exec:
// selection bitsets for the materialised path, operand and result buffers
// for the compressed path. Every buffer is reused across all fragments a
// worker processes, so the hot loops run allocation-free once warm.
type scratch struct {
	hits *bitmap.Bitset // running AND of predicate selections
	sel  *bitmap.Bitset // current predicate's selection

	ops  []*bitmap.Compressed // operands of the fragment's single AndAll
	cres *bitmap.Compressed   // compressed intersection result

	dsc *frag.DeltaScratch // delta segment selection buffers (lazy)
}

func newScratch() *scratch {
	return &scratch{hits: bitmap.New(0), sel: bitmap.New(0), cres: &bitmap.Compressed{}}
}

// rowKey composes a row's group key from the fragment-constant base and
// the per-row GroupBy levels, reading the row's leaf members off the
// column store.
func rowKey(base uint64, perRow []kernel.RowLevel, dims [][]int32, i int) uint64 {
	for _, rl := range perRow {
		base += uint64(int64(dims[rl.Dim][i])/rl.Div) * rl.Weight
	}
	return base
}

// fragmentTask returns the per-fragment task body shared by the private
// worker-pool path and the scheduler path. With a grouper, the
// fragment-aligned fast path tags the fragment total with its constant
// group key (zero per-row work); the fallback buckets rows into a
// fragment-local group map.
func (e *Engine) fragmentTask(ids []int64, q frag.Query, gr *kernel.Grouper, deltas kernel.Deltas) func(sc *scratch, i int) (partial, error) {
	var perRow []kernel.RowLevel
	aligned := false
	if gr != nil {
		aligned = gr.Aligned()
		perRow = gr.PerRow()
	}
	return func(sc *scratch, i int) (partial, error) {
		f, ok := e.frags[ids[i]]
		hasDelta := !deltas.Empty() && len(deltas.Set.Of(ids[i])) > 0
		if !ok && !hasDelta {
			return partial{}, nil // fragment has no rows at this density
		}
		var p partial
		var base uint64
		if gr != nil {
			base = gr.FragKey(ids[i])
			if aligned {
				p.fp.OneGroup, p.fp.Key = true, base
			} else {
				p.fp.Groups = kernel.NewGrouped()
			}
		}
		if ok {
			if e.compressed {
				e.processFragmentCompressed(f, q, sc, &p, base, perRow)
			} else {
				e.processFragment(f, q, sc, &p, base, perRow)
			}
		}
		if hasDelta {
			// Base rows first, then the fragment's delta segments in seal
			// order — all inside the fragment's own task, so the
			// cross-fragment gather stays task-ordered.
			if sc.dsc == nil {
				sc.dsc = frag.NewDeltaScratch()
			}
			n, err := kernel.AddDelta(deltas, ids[i], q, &p.fp, base, perRow, sc.dsc)
			if err != nil {
				return partial{}, err
			}
			p.st.DeltaRows += n
		}
		p.st.FragmentsProcessed = 1
		return p, nil
	}
}

// mergePartial folds one fragment's partial into the running result
// (strictly in task order under every dispatch mode).
func mergePartial(grouped bool) func(a *acc, p partial) {
	return func(a *acc, p partial) {
		if grouped && a.g == nil {
			a.g = kernel.NewGrouped()
		}
		p.fp.MergeInto(&a.agg, a.g)
		a.st.Add(p.st)
	}
}

// ExecuteContext is Execute with cancellation.
func (e *Engine) ExecuteContext(ctx context.Context, q frag.Query, workers int) (Aggregate, Stats, error) {
	q.GroupBy = nil // grouping never changes the grand total
	res, st, err := e.executeFull(ctx, q, workers, nil, kernel.Deltas{})
	return res.Aggregate, st, err
}

// ExecuteGrouped is ExecuteContext returning the full result: the grand
// total plus, when the query has a GroupBy, the per-group rows in the
// deterministic kernel order. On the fragment-aligned fast path (every
// GroupBy level at or above its dimension's fragmentation level) grouping
// performs no per-row work at all.
func (e *Engine) ExecuteGrouped(ctx context.Context, q frag.Query, workers int) (kernel.Result, Stats, error) {
	return e.executeFull(ctx, q, workers, nil, kernel.Deltas{})
}

// ExecuteOn is ExecuteContext dispatched through a shared admission
// scheduler instead of a private per-query worker set: the query's
// fragment tasks interleave with every other execution admitted to the
// scheduler, multiplexing concurrent queries onto one fixed pool. The
// task-ordered gather makes the result bit-for-bit identical to Execute
// at any pool size or admission mix.
func (e *Engine) ExecuteOn(ctx context.Context, s *exec.Scheduler, q frag.Query) (Aggregate, Stats, error) {
	q.GroupBy = nil
	res, st, err := e.executeFull(ctx, q, 0, s, kernel.Deltas{})
	return res.Aggregate, st, err
}

// ExecuteGroupedOn is ExecuteGrouped dispatched through a shared
// admission scheduler (see ExecuteOn).
func (e *Engine) ExecuteGroupedOn(ctx context.Context, s *exec.Scheduler, q frag.Query) (kernel.Result, Stats, error) {
	return e.executeFull(ctx, q, 0, s, kernel.Deltas{})
}

// ExecuteGroupedDeltas is ExecuteGroupedOn folding a pinned delta
// snapshot into every fragment's partial: each relevant fragment
// aggregates its base rows first, then its delta segments in seal
// order, so the epoch-versioned warehouse serves base+delta results
// through the same task-ordered gather — byte-identical to an engine
// rebuilt from scratch with the same rows.
func (e *Engine) ExecuteGroupedDeltas(ctx context.Context, s *exec.Scheduler, q frag.Query, deltas kernel.Deltas) (kernel.Result, Stats, error) {
	return e.executeFull(ctx, q, 0, s, deltas)
}

// ExecutePartialDeltas runs the query over only the relevant fragments
// selected by own (nil selects all) and returns the un-flattened partial
// — the fragment-range contribution one cluster node serves. The grand
// total and per-key group aggregates commute under addition, so a
// coordinator merging the partials of a fragment-disjoint node partition
// and flattening through Grouper.Rows obtains results byte-identical to
// a single-node execution over the union of the rows.
func (e *Engine) ExecutePartialDeltas(ctx context.Context, s *exec.Scheduler, q frag.Query, deltas kernel.Deltas, own func(int64) bool) (kernel.FragPartial, Stats, error) {
	a, gr, err := e.executeAcc(ctx, q, 0, s, deltas, own)
	if err != nil {
		return kernel.FragPartial{}, Stats{}, err
	}
	p := kernel.FragPartial{Agg: a.agg}
	if gr != nil {
		p.Groups = a.g
		if p.Groups == nil {
			p.Groups = kernel.NewGrouped()
		}
	}
	return p, a.st, nil
}

// executeFull runs the query on either dispatch path and assembles the
// (possibly grouped) result.
func (e *Engine) executeFull(ctx context.Context, q frag.Query, workers int, s *exec.Scheduler, deltas kernel.Deltas) (kernel.Result, Stats, error) {
	a, gr, err := e.executeAcc(ctx, q, workers, s, deltas, nil)
	if err != nil {
		return kernel.Result{}, Stats{}, err
	}
	res := kernel.Result{Aggregate: a.agg}
	if gr != nil {
		res.Groups = gr.Rows(a.g)
	}
	return res, a.st, nil
}

// executeAcc is the shared execution core: validate, derive the grouper,
// enumerate (and optionally ownership-filter) the relevant fragments and
// fold their partials in task order. It returns the raw accumulator so
// callers can either flatten it (executeFull) or ship it as a partial
// (ExecutePartialDeltas).
func (e *Engine) executeAcc(ctx context.Context, q frag.Query, workers int, s *exec.Scheduler, deltas kernel.Deltas, own func(int64) bool) (acc, *kernel.Grouper, error) {
	if err := q.Validate(e.star); err != nil {
		return acc{}, nil, err
	}
	gr, err := kernel.NewGrouper(e.star, e.spec, q.GroupBy)
	if err != nil {
		return acc{}, nil, err
	}
	ids := e.spec.FragmentIDs(q)
	if own != nil {
		kept := ids[:0]
		for _, id := range ids {
			if own(id) {
				kept = append(kept, id)
			}
		}
		ids = kept
	}
	task := e.fragmentTask(ids, q, gr, deltas)
	merge := mergePartial(gr != nil)
	var a acc
	if s != nil {
		a, err = exec.ReduceOn(ctx, s, len(ids), newScratch, task, merge)
	} else {
		a, err = exec.ReduceWith(ctx, workers, len(ids), newScratch, task, merge)
	}
	if err != nil {
		return acc{}, nil, err
	}
	return a, gr, nil
}

// processFragment evaluates the query inside one fragment: bitmap
// selections for the predicates that need them (Section 4.3 step 2), AND
// them, then aggregate the hit rows — or all rows when no bitmap is needed
// (query types Q1/Q3). All selections land in sc's reusable bitsets and
// aggregation runs word-wise; only the per-row grouping fallback (perRow
// non-empty) adds key computation and map updates to the loop.
func (e *Engine) processFragment(f *fragment, q frag.Query, sc *scratch, p *partial, base uint64, perRow []kernel.RowLevel) {
	st := &p.st
	first := true
	for _, pr := range q.Preds {
		if !e.spec.NeedsBitmap(pr) {
			continue
		}
		dst := sc.hits
		if !first {
			dst = sc.sel
		}
		switch e.icfg[pr.Dim].Kind {
		case frag.EncodedIndex:
			nb := f.encoded[pr.Dim].SelectPartialInto(dst, e.fragLevel(pr.Dim), pr.Level, pr.Member)
			st.BitmapsRead += int64(nb)
		default:
			f.simple[pr.Dim][pr.Level].SelectInto(dst, pr.Member)
			st.BitmapsRead++
		}
		if !first {
			sc.hits.And(sc.sel)
		}
		first = false
	}

	agg := &p.fp.Agg
	if first {
		// All fragment rows are relevant (no bitmap access, IOC1-style).
		st.RowsScanned += int64(f.rows)
		if len(perRow) == 0 {
			for i := 0; i < f.rows; i++ {
				agg.AddRow(f.unitsSold[i], f.dollarSales[i], f.cost[i])
			}
		} else {
			for i := 0; i < f.rows; i++ {
				agg.AddRow(f.unitsSold[i], f.dollarSales[i], f.cost[i])
				p.fp.Groups.AddRow(rowKey(base, perRow, f.dims, i), f.unitsSold[i], f.dollarSales[i], f.cost[i])
			}
		}
		return
	}
	if len(perRow) == 0 {
		sc.hits.ForEachWord(func(wordBase int, w uint64) {
			for w != 0 {
				i := wordBase + bits.TrailingZeros64(w)
				w &= w - 1
				agg.AddRow(f.unitsSold[i], f.dollarSales[i], f.cost[i])
			}
		})
	} else {
		sc.hits.ForEachWord(func(wordBase int, w uint64) {
			for w != 0 {
				i := wordBase + bits.TrailingZeros64(w)
				w &= w - 1
				agg.AddRow(f.unitsSold[i], f.dollarSales[i], f.cost[i])
				p.fp.Groups.AddRow(rowKey(base, perRow, f.dims, i), f.unitsSold[i], f.dollarSales[i], f.cost[i])
			}
		})
	}
	st.RowsScanned += agg.Count
}

// processFragmentCompressed is the compressed-execution counterpart: the
// predicates' bitmaps stay WAH-encoded, intersect in one k-way
// run-skipping AndAll, and the hit rows stream out of the compressed
// result range-wise — no Bitset is materialised at any point. Grouping
// follows the same aligned/per-row split as processFragment.
func (e *Engine) processFragmentCompressed(f *fragment, q frag.Query, sc *scratch, p *partial, base uint64, perRow []kernel.RowLevel) {
	st := &p.st
	ops := sc.ops[:0]
	for _, pr := range q.Preds {
		if !e.spec.NeedsBitmap(pr) {
			continue
		}
		switch e.icfg[pr.Dim].Kind {
		case frag.EncodedIndex:
			var nb int
			ops, nb = f.encodedC[pr.Dim].SelectOperands(ops, e.fragLevel(pr.Dim), pr.Level, pr.Member)
			st.BitmapsRead += int64(nb)
		default:
			ops = append(ops, f.simpleC[pr.Dim][pr.Level].Bitmap(pr.Member))
			st.BitmapsRead++
		}
	}
	sc.ops = ops

	agg := &p.fp.Agg
	if len(ops) == 0 {
		// All fragment rows are relevant (no bitmap access, IOC1-style).
		st.RowsScanned += int64(f.rows)
		if len(perRow) == 0 {
			for i := 0; i < f.rows; i++ {
				agg.AddRow(f.unitsSold[i], f.dollarSales[i], f.cost[i])
			}
		} else {
			for i := 0; i < f.rows; i++ {
				agg.AddRow(f.unitsSold[i], f.dollarSales[i], f.cost[i])
				p.fp.Groups.AddRow(rowKey(base, perRow, f.dims, i), f.unitsSold[i], f.dollarSales[i], f.cost[i])
			}
		}
		return
	}
	sc.cres = bitmap.AndAllInto(sc.cres, ops...)
	if len(perRow) == 0 {
		sc.cres.ForEachRange(func(lo, hi int) {
			for i := lo; i < hi; i++ {
				agg.AddRow(f.unitsSold[i], f.dollarSales[i], f.cost[i])
			}
		})
	} else {
		sc.cres.ForEachRange(func(lo, hi int) {
			for i := lo; i < hi; i++ {
				agg.AddRow(f.unitsSold[i], f.dollarSales[i], f.cost[i])
				p.fp.Groups.AddRow(rowKey(base, perRow, f.dims, i), f.unitsSold[i], f.dollarSales[i], f.cost[i])
			}
		})
	}
	st.RowsScanned += agg.Count
}

// Scan computes the query's grand total by a naive full scan of the table
// — the correctness oracle for Execute. Any GroupBy is ignored; use
// ScanGrouped for the grouped oracle.
func Scan(t *data.Table, q frag.Query) Aggregate {
	var agg Aggregate
	star := t.Star
	for i := 0; i < t.N(); i++ {
		if scanMatch(star, t, q, i) {
			agg.AddRow(t.UnitsSold[i], t.DollarSales[i], t.Cost[i])
		}
	}
	return agg
}

// ScanGrouped computes the full (grouped) query result by naive scan with
// per-row bucketing straight off the base table — the brute-force oracle
// every grouped execution path is checked against.
func ScanGrouped(t *data.Table, q frag.Query) (kernel.Result, error) {
	star := t.Star
	if err := q.Validate(star); err != nil {
		return kernel.Result{}, err
	}
	gr, err := kernel.NewGrouper(star, nil, q.GroupBy)
	if err != nil {
		return kernel.Result{}, err
	}
	var res kernel.Result
	var g *kernel.Grouped
	var perRow []kernel.RowLevel
	if gr != nil {
		g = kernel.NewGrouped()
		perRow = gr.PerRow() // spec-free: every level buckets per row
	}
	for i := 0; i < t.N(); i++ {
		if !scanMatch(star, t, q, i) {
			continue
		}
		res.AddRow(t.UnitsSold[i], t.DollarSales[i], t.Cost[i])
		if g != nil {
			g.AddRow(rowKey(0, perRow, t.Dims, i), t.UnitsSold[i], t.DollarSales[i], t.Cost[i])
		}
	}
	if gr != nil {
		res.Groups = gr.Rows(g)
	}
	return res, nil
}

func scanMatch(star *schema.Star, t *data.Table, q frag.Query, i int) bool {
	for _, p := range q.Preds {
		d := &star.Dims[p.Dim]
		if d.Ancestor(d.Leaf(), int(t.Dims[p.Dim][i]), p.Level) != p.Member {
			return false
		}
	}
	return true
}
