package engine

import (
	"context"

	"repro/internal/bitmap"
	"repro/internal/exec"
	"repro/internal/frag"
	"repro/internal/kernel"
)

// SharedResult is one query's outcome in a shared multi-query scan over
// the in-memory engine: the flattened result, the un-flattened partial
// (the cluster node surface), and the query's own logical statistics —
// byte-identical to solo execution. The in-memory engine performs no
// physical reads, so Shared records only batch membership and fragment
// co-scanning (PhysReadsSaved stays 0); the win here is the single
// column pass feeding K accumulators.
type SharedResult struct {
	Res    kernel.Result
	Part   kernel.FragPartial
	St     Stats
	Shared kernel.SharedScanStats
	Err    error
}

// engSharedSlot is one query's pre-dispatch state.
type engSharedSlot struct {
	q   frag.Query
	gr  *kernel.Grouper
	err error
}

// engSlotPart is one slot's contribution from one fragment task.
type engSlotPart struct {
	slot   int
	fp     kernel.FragPartial
	st     Stats
	shared kernel.SharedScanStats
}

type engTaskPart struct {
	parts []engSlotPart
}

type engSharedAcc struct {
	agg    []kernel.Aggregate
	g      []*kernel.Grouped
	st     []Stats
	shared []kernel.SharedScanStats
}

// sharedScratch extends the per-worker engine scratch with per-slot
// selection masks and their union for the shared row walk.
type sharedScratch struct {
	sc    *scratch
	masks []*bitmap.Bitset
	union *bitmap.Bitset
}

func newSharedScratch() *sharedScratch {
	return &sharedScratch{sc: newScratch(), union: bitmap.New(0)}
}

func (sc *sharedScratch) mask(k int) *bitmap.Bitset {
	for len(sc.masks) <= k {
		sc.masks = append(sc.masks, bitmap.New(0))
	}
	return sc.masks[k]
}

// sharedMask computes one slot's selection mask for the fragment: nil
// when the query needs no bitmap there (every row relevant), an empty
// mask when nothing matches. BitmapsRead lands on st exactly as solo
// execution counts it.
func (e *Engine) sharedMask(f *fragment, q frag.Query, mask *bitmap.Bitset, st *Stats, sc *sharedScratch) *bitmap.Bitset {
	if e.compressed {
		ops := sc.sc.ops[:0]
		for _, pr := range q.Preds {
			if !e.spec.NeedsBitmap(pr) {
				continue
			}
			switch e.icfg[pr.Dim].Kind {
			case frag.EncodedIndex:
				var nb int
				ops, nb = f.encodedC[pr.Dim].SelectOperands(ops, e.fragLevel(pr.Dim), pr.Level, pr.Member)
				st.BitmapsRead += int64(nb)
			default:
				ops = append(ops, f.simpleC[pr.Dim][pr.Level].Bitmap(pr.Member))
				st.BitmapsRead++
			}
		}
		sc.sc.ops = ops
		if len(ops) == 0 {
			return nil
		}
		sc.sc.cres = bitmap.AndAllInto(sc.sc.cres, ops...)
		return sc.sc.cres.DecompressInto(mask)
	}
	first := true
	for _, pr := range q.Preds {
		if !e.spec.NeedsBitmap(pr) {
			continue
		}
		dst := mask
		if !first {
			dst = sc.sc.sel
		}
		switch e.icfg[pr.Dim].Kind {
		case frag.EncodedIndex:
			nb := f.encoded[pr.Dim].SelectPartialInto(dst, e.fragLevel(pr.Dim), pr.Level, pr.Member)
			st.BitmapsRead += int64(nb)
		default:
			f.simple[pr.Dim][pr.Level].SelectInto(dst, pr.Member)
			st.BitmapsRead++
		}
		if !first {
			mask.And(sc.sc.sel)
		}
		first = false
	}
	if first {
		return nil
	}
	return mask
}

// ExecuteSharedDeltas executes K queries against the engine in a single
// shared pass: one task per fragment of the queries' union, each task
// computing every interested query's selection mask and then feeding
// all K accumulators from one walk over the fragment's columns
// (kernel.EvalMany). Results and logical statistics are byte-identical
// to K solo executions.
func (e *Engine) ExecuteSharedDeltas(ctx context.Context, s *exec.Scheduler, qs []frag.Query, deltas kernel.Deltas, own func(int64) bool) ([]SharedResult, error) {
	slots := make([]engSharedSlot, len(qs))
	taskOf := make(map[int64][]int32)
	var unionIDs []int64
	for si, q := range qs {
		slots[si].q = q
		if err := q.Validate(e.star); err != nil {
			slots[si].err = err
			continue
		}
		gr, err := kernel.NewGrouper(e.star, e.spec, q.GroupBy)
		if err != nil {
			slots[si].err = err
			continue
		}
		slots[si].gr = gr
		for _, id := range e.spec.FragmentIDs(q) {
			if own != nil && !own(id) {
				continue
			}
			if _, ok := taskOf[id]; !ok {
				unionIDs = append(unionIDs, id)
			}
			taskOf[id] = append(taskOf[id], int32(si))
		}
	}
	sortFragIDs(unionIDs)

	run := func(sc *sharedScratch, ti int) (engTaskPart, error) {
		id := unionIDs[ti]
		members := taskOf[id]
		out := engTaskPart{parts: make([]engSlotPart, len(members))}
		f, ok := e.frags[id]
		hasDelta := !deltas.Empty() && len(deltas.Set.Of(id)) > 0
		if !ok && !hasDelta {
			for k, si := range members {
				out.parts[k].slot = int(si)
			}
			return out, nil // fragment has no rows at this density
		}
		kslots := make([]kernel.Slot, len(members))
		evalSlots := make([]*kernel.Slot, len(members))
		for k, si := range members {
			out.parts[k].slot = int(si)
			kslots[k] = kernel.NewSlot(slots[si].gr, id)
			evalSlots[k] = &kslots[k]
		}
		if ok {
			shared := len(members) >= 2
			masks := make([]*bitmap.Bitset, len(members))
			for k, si := range members {
				masks[k] = e.sharedMask(f, slots[si].q, sc.mask(k), &out.parts[k].st, sc)
				if shared {
					out.parts[k].shared.FragmentsShared = 1
				}
			}
			cols := kernel.Columns{Dims: f.dims, Units: f.unitsSold, Dollars: f.dollarSales, Costs: f.cost}
			kernel.EvalMany(evalSlots, masks, f.rows, cols, sc.union)
		}
		for k, si := range members {
			p := &out.parts[k]
			p.st.RowsScanned += kslots[k].Rows
			if hasDelta {
				if sc.sc.dsc == nil {
					sc.sc.dsc = frag.NewDeltaScratch()
				}
				n, err := kernel.AddDelta(deltas, id, slots[si].q, &kslots[k].FP, kslots[k].Base, kslots[k].PerRow, sc.sc.dsc)
				if err != nil {
					return engTaskPart{}, err
				}
				p.st.DeltaRows += n
			}
			p.st.FragmentsProcessed = 1
			p.fp = kslots[k].FP
		}
		return out, nil
	}

	merge := func(a *engSharedAcc, p engTaskPart) {
		if a.agg == nil {
			a.agg = make([]kernel.Aggregate, len(qs))
			a.g = make([]*kernel.Grouped, len(qs))
			a.st = make([]Stats, len(qs))
			a.shared = make([]kernel.SharedScanStats, len(qs))
		}
		for _, sp := range p.parts {
			si := sp.slot
			if slots[si].gr != nil && a.g[si] == nil {
				a.g[si] = kernel.NewGrouped()
			}
			sp.fp.MergeInto(&a.agg[si], a.g[si])
			a.st[si].Add(sp.st)
			a.shared[si].FragmentsShared += sp.shared.FragmentsShared
			a.shared[si].PhysReadsSaved += sp.shared.PhysReadsSaved
		}
	}

	var a engSharedAcc
	var err error
	if s != nil {
		a, err = exec.ReduceOn(ctx, s, len(unionIDs), newSharedScratch, run, merge)
	} else {
		a, err = exec.ReduceWith(ctx, 0, len(unionIDs), newSharedScratch, run, merge)
	}
	if err != nil {
		return nil, err
	}

	out := make([]SharedResult, len(qs))
	for si := range slots {
		if slots[si].err != nil {
			out[si].Err = slots[si].err
			continue
		}
		var agg kernel.Aggregate
		var grp *kernel.Grouped
		var st Stats
		var sh kernel.SharedScanStats
		if a.agg != nil {
			agg, grp, st, sh = a.agg[si], a.g[si], a.st[si], a.shared[si]
		}
		sh.Batched = len(qs)
		out[si].St = st
		out[si].Shared = sh
		out[si].Res = kernel.Result{Aggregate: agg}
		out[si].Part = kernel.FragPartial{Agg: agg}
		if gr := slots[si].gr; gr != nil {
			out[si].Res.Groups = gr.Rows(grp)
			out[si].Part.Groups = grp
			if out[si].Part.Groups == nil {
				out[si].Part.Groups = kernel.NewGrouped()
			}
		}
	}
	return out, nil
}

// sortFragIDs sorts fragment ids ascending — each query's own solo
// dispatch order, preserved by the shared union.
func sortFragIDs(ids []int64) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
