package engine

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/data"
	"repro/internal/frag"
	"repro/internal/kernel"
	"repro/internal/schema"
)

// splitTable partitions a generated table into a base prefix and the
// remaining rows.
func splitTable(t *data.Table, n int) (*data.Table, *data.Table) {
	head := &data.Table{Star: t.Star, Dims: make([][]int32, len(t.Dims))}
	tail := &data.Table{Star: t.Star, Dims: make([][]int32, len(t.Dims))}
	for d := range t.Dims {
		head.Dims[d] = t.Dims[d][:n]
		tail.Dims[d] = t.Dims[d][n:]
	}
	head.UnitsSold, tail.UnitsSold = t.UnitsSold[:n], t.UnitsSold[n:]
	head.DollarSales, tail.DollarSales = t.DollarSales[:n], t.DollarSales[n:]
	head.Cost, tail.Cost = t.Cost[:n], t.Cost[n:]
	return head, tail
}

// deltasOf routes every row of a table into sealed delta segments.
func deltasOf(t *testing.T, spec *frag.Spec, ix *frag.DeltaIndex, tab *data.Table, batches int) *frag.DeltaSet {
	t.Helper()
	var set *frag.DeltaSet
	seq := uint64(0)
	per := (tab.N() + batches - 1) / batches
	buf := make([]int, len(tab.Dims))
	leaves := make([]int32, len(tab.Dims))
	for lo := 0; lo < tab.N(); lo += per {
		hi := lo + per
		if hi > tab.N() {
			hi = tab.N()
		}
		builders := make(map[int64]*frag.SegmentBuilder)
		for i := lo; i < hi; i++ {
			id := spec.ID(spec.CoordOf(tab.LeafMembers(i, buf)))
			sb, ok := builders[id]
			if !ok {
				sb = ix.NewSegment(id)
				builders[id] = sb
			}
			for d := range leaves {
				leaves[d] = tab.Dims[d][i]
			}
			sb.Add(leaves, tab.UnitsSold[i], tab.DollarSales[i], tab.Cost[i])
		}
		for _, sb := range builders {
			seq++
			set = set.With(sb.Seal(seq))
		}
	}
	return set
}

// TestExecuteGroupedDeltasEquivalence asserts that an engine over a base
// prefix plus delta segments for the remaining rows produces results
// byte-identical to an engine built from the full table — grouped and
// ungrouped, materialised and compressed.
func TestExecuteGroupedDeltasEquivalence(t *testing.T) {
	star := schema.Tiny()
	full := data.MustGenerate(star, 42)
	spec := frag.MustParse(star, "time::month, product::group")
	icfg := frag.APB1Indexes(star)
	base, extra := splitTable(full, full.N()*2/3)
	ix, err := frag.NewDeltaIndex(spec, icfg)
	if err != nil {
		t.Fatal(err)
	}
	set := deltasOf(t, spec, ix, extra, 3)
	queries := []string{
		"time::month=1",
		"product::code=3",
		"time::quarter=1",
		"time::month=2, product::code=5",
		"customer::store=2",
		"",
		"time::month=1 group by product::group",
		"customer::retailer=1 group by time::month, product::class",
		"group by time::quarter, customer::store",
	}
	for _, compressed := range []bool{false, true} {
		build := Build
		if compressed {
			build = BuildCompressed
		}
		eBase, err := build(base, spec, icfg)
		if err != nil {
			t.Fatal(err)
		}
		eFull, err := build(full, spec, icfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, text := range queries {
			q, err := frag.ParseQuery(star, text)
			if err != nil {
				t.Fatal(err)
			}
			want, _, err := eFull.ExecuteGrouped(context.Background(), q, 2)
			if err != nil {
				t.Fatal(err)
			}
			got, st, err := eBase.ExecuteGroupedDeltas(context.Background(), nil, q, kernel.Deltas{Ix: ix, Set: set})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("compressed=%v query %q: base+delta %+v != full %+v", compressed, text, got, want)
			}
			if q.Preds == nil && st.DeltaRows != int64(extra.N()) {
				t.Errorf("compressed=%v: DeltaRows = %d, want %d", compressed, st.DeltaRows, extra.N())
			}
		}
	}
}
