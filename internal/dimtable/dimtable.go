// Package dimtable materialises the denormalized dimension tables of a
// star schema (Figure 1) with generated member names and B+-tree indices
// per hierarchy level (Section 5: "The dimension tables have B*-tree
// indices"). It resolves attribute names to member ids, turning name-level
// selections into the integer predicates the fragmentation layer works
// with — the piece a SQL front end would sit on.
package dimtable

import (
	"fmt"
	"strings"

	"repro/internal/btree"
	"repro/internal/frag"
	"repro/internal/schema"
)

// Table is one denormalized dimension table: one row per leaf member, one
// column per hierarchy level holding the member's name at that level.
type Table struct {
	Dim *schema.Dimension
	// names[level][member] is the generated member name.
	names [][]string
	// index[level] maps name -> member id at that level.
	index []*btree.Tree
}

// MemberName returns the canonical generated name of a member:
// LEVELNAME-NNNN in upper case (e.g. "GROUP-0042").
func MemberName(level schema.Level, m int) string {
	return fmt.Sprintf("%s-%04d", strings.ToUpper(level.Name), m)
}

// Build materialises the dimension table and its per-level indices.
func Build(dim *schema.Dimension) *Table {
	t := &Table{
		Dim:   dim,
		names: make([][]string, dim.Depth()),
		index: make([]*btree.Tree, dim.Depth()),
	}
	for l := range dim.Levels {
		card := dim.Levels[l].Card
		t.names[l] = make([]string, card)
		t.index[l] = btree.New(64)
		for m := 0; m < card; m++ {
			name := MemberName(dim.Levels[l], m)
			t.names[l][m] = name
			t.index[l].Insert(name, int64(m))
		}
	}
	return t
}

// Rows returns the number of rows (leaf members).
func (t *Table) Rows() int { return t.Dim.LeafCard() }

// Name returns the name of member m at the given level.
func (t *Table) Name(level, m int) string { return t.names[level][m] }

// Row returns the full denormalized row of leaf member m: its name at
// every hierarchy level, coarsest first.
func (t *Table) Row(m int) []string {
	row := make([]string, t.Dim.Depth())
	leaf := t.Dim.Leaf()
	for l := range row {
		row[l] = t.names[l][t.Dim.Ancestor(leaf, m, l)]
	}
	return row
}

// Lookup resolves a member name at a level via the B+-tree index.
func (t *Table) Lookup(level int, name string) (int, bool) {
	v, ok := t.index[level].Get(name)
	return int(v), ok
}

// LookupPrefix returns all members at the level whose names start with the
// prefix, via a B+-tree range scan.
func (t *Table) LookupPrefix(level int, prefix string) []int {
	var out []int
	hi := prefix + "\xff"
	t.index[level].AscendRange(prefix, hi, func(_ string, v int64) bool {
		out = append(out, int(v))
		return true
	})
	return out
}

// Catalog holds the dimension tables of a star schema.
type Catalog struct {
	Star   *schema.Star
	Tables []*Table
}

// BuildCatalog materialises every dimension table of the schema.
func BuildCatalog(star *schema.Star) *Catalog {
	c := &Catalog{Star: star}
	for i := range star.Dims {
		c.Tables = append(c.Tables, Build(&star.Dims[i]))
	}
	return c
}

// Bytes estimates the catalog's storage footprint (names only) — the
// paper notes the dimension tables "only occupy 1 MB" for APB-1.
func (c *Catalog) Bytes() int {
	total := 0
	for _, t := range c.Tables {
		for _, col := range t.names {
			for _, n := range col {
				total += len(n)
			}
		}
	}
	return total
}

// levelRef resolves a "dim.level" attribute reference.
func (c *Catalog) levelRef(attr string) (frag.LevelRef, error) {
	dl := strings.SplitN(strings.TrimSpace(attr), ".", 2)
	if len(dl) != 2 {
		return frag.LevelRef{}, fmt.Errorf("dimtable: malformed attribute %q (want dim.level)", attr)
	}
	di := c.Star.DimIndex(strings.TrimSpace(dl[0]))
	if di < 0 {
		return frag.LevelRef{}, fmt.Errorf("dimtable: unknown dimension %q", dl[0])
	}
	li := c.Star.Dims[di].LevelIndex(strings.TrimSpace(dl[1]))
	if li < 0 {
		return frag.LevelRef{}, fmt.Errorf("dimtable: unknown level %q of %s", dl[1], dl[0])
	}
	return frag.LevelRef{Dim: di, Level: li}, nil
}

// ParseQuery resolves a name-level star query of the form
// "dim.level = 'NAME', ..." into integer predicates, using the B+-tree
// indices — the front-end path of query processing step 1 (Section 4.3).
// A trailing "group by dim.level, ..." clause (case-insensitive) sets the
// query's GroupBy levels.
func (c *Catalog) ParseQuery(text string) (frag.Query, error) {
	var q frag.Query
	sel, gb, hasGB := frag.SplitGroupBy(text)
	for _, part := range strings.Split(sel, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := strings.SplitN(part, "=", 2)
		if len(eq) != 2 {
			return frag.Query{}, fmt.Errorf("dimtable: malformed predicate %q", part)
		}
		ref, err := c.levelRef(eq[0])
		if err != nil {
			return frag.Query{}, err
		}
		name, err := unquote(strings.TrimSpace(eq[1]))
		if err != nil {
			return frag.Query{}, err
		}
		m, ok := c.Tables[ref.Dim].Lookup(ref.Level, name)
		if !ok {
			return frag.Query{}, fmt.Errorf("dimtable: no member %q at %s", name, strings.TrimSpace(eq[0]))
		}
		q.Preds = append(q.Preds, frag.Pred{Dim: ref.Dim, Level: ref.Level, Member: m})
	}
	if hasGB {
		if strings.TrimSpace(gb) == "" {
			return frag.Query{}, fmt.Errorf("dimtable: empty GROUP BY clause")
		}
		for _, part := range strings.Split(gb, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				return frag.Query{}, fmt.Errorf("dimtable: empty GROUP BY item")
			}
			ref, err := c.levelRef(part)
			if err != nil {
				return frag.Query{}, err
			}
			q.GroupBy = append(q.GroupBy, ref)
		}
	}
	return q, q.Validate(c.Star)
}

// unquote strips a balanced pair of single or double quotes from a
// member-name value; an unbalanced quote is an error, a bare name is
// passed through.
func unquote(v string) (string, error) {
	if len(v) >= 1 && (v[0] == '\'' || v[0] == '"') {
		if len(v) < 2 || v[len(v)-1] != v[0] {
			return "", fmt.Errorf("dimtable: unbalanced quote in %q", v)
		}
		return v[1 : len(v)-1], nil
	}
	if len(v) >= 1 && (v[len(v)-1] == '\'' || v[len(v)-1] == '"') {
		return "", fmt.Errorf("dimtable: unbalanced quote in %q", v)
	}
	return v, nil
}

// FormatQuery renders a query in the name-level notation ParseQuery
// accepts ("dim.level = 'NAME' ... group by dim.level"); FormatQuery then
// ParseQuery round-trips exactly.
func (c *Catalog) FormatQuery(q frag.Query) string {
	var b strings.Builder
	for i, p := range q.Preds {
		if i > 0 {
			b.WriteString(", ")
		}
		d := &c.Star.Dims[p.Dim]
		fmt.Fprintf(&b, "%s.%s = '%s'", d.Name, d.Levels[p.Level].Name, c.Tables[p.Dim].Name(p.Level, p.Member))
	}
	if len(q.GroupBy) > 0 {
		b.WriteString(" group by ")
		for i, ref := range q.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			d := &c.Star.Dims[ref.Dim]
			fmt.Fprintf(&b, "%s.%s", d.Name, d.Levels[ref.Level].Name)
		}
	}
	return b.String()
}
