package dimtable

import (
	"strings"
	"testing"

	"repro/internal/frag"
	"repro/internal/schema"
)

func TestBuildAndLookup(t *testing.T) {
	s := schema.APB1()
	tab := Build(s.Dim(schema.DimProduct))
	if tab.Rows() != 14_400 {
		t.Fatalf("rows = %d", tab.Rows())
	}
	group := tab.Dim.LevelIndex(schema.LvlGroup)
	name := tab.Name(group, 42)
	if name != "GROUP-0042" {
		t.Fatalf("name = %q", name)
	}
	m, ok := tab.Lookup(group, name)
	if !ok || m != 42 {
		t.Fatalf("Lookup = %d, %v", m, ok)
	}
	if _, ok := tab.Lookup(group, "GROUP-9999"); ok {
		t.Fatal("missing member found")
	}
}

func TestRowDenormalized(t *testing.T) {
	s := schema.APB1()
	tab := Build(s.Dim(schema.DimProduct))
	// Code 14399 belongs to class 959, group 479, family 119, line 23,
	// division 7.
	row := tab.Row(14399)
	want := []string{"DIVISION-0007", "LINE-0023", "FAMILY-0119", "GROUP-0479", "CLASS-0959", "CODE-14399"}
	for i := range want {
		if row[i] != want[i] {
			t.Fatalf("row = %v, want %v", row, want)
		}
	}
}

func TestLookupPrefix(t *testing.T) {
	s := schema.APB1()
	tab := Build(s.Dim(schema.DimTime))
	month := tab.Dim.LevelIndex(schema.LvlMonth)
	// All 24 months share the MONTH- prefix.
	all := tab.LookupPrefix(month, "MONTH-")
	if len(all) != 24 {
		t.Fatalf("prefix members = %d", len(all))
	}
	// Narrower prefix.
	ones := tab.LookupPrefix(month, "MONTH-001")
	if len(ones) != 10 {
		t.Fatalf("MONTH-001x members = %d, want 10", len(ones))
	}
}

func TestCatalogSizeMatchesPaperClaim(t *testing.T) {
	// Section 4: "our four dimension tables only occupy 1 MB".
	c := BuildCatalog(schema.APB1())
	mb := float64(c.Bytes()) / (1 << 20)
	if mb < 0.1 || mb > 3 {
		t.Fatalf("catalog = %.2f MB, want on the order of 1 MB", mb)
	}
}

func TestCatalogParseQuery(t *testing.T) {
	s := schema.APB1()
	c := BuildCatalog(s)
	q, err := c.ParseQuery("time.month = 'MONTH-0003', product.group = 'GROUP-0042'")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Preds) != 2 {
		t.Fatalf("preds = %d", len(q.Preds))
	}
	spec := frag.MustParse(s, "time::month, product::group")
	if got := spec.RelevantCount(q); got != 1 {
		t.Fatalf("1MONTH1GROUP by name touches %d fragments, want 1", got)
	}
	if got := spec.Classify(q); got != frag.Q1 {
		t.Fatalf("class = %v", got)
	}
}

func TestCatalogParseQueryErrors(t *testing.T) {
	c := BuildCatalog(schema.APB1())
	bad := []string{
		"nonsense",
		"time.month",
		"nope.month = 'X'",
		"time.nope = 'X'",
		"time.month = 'MONTH-9999'",
		"time.month = 'MONTH-0001', time.year = 'YEAR-0000'", // dup dimension
	}
	for _, text := range bad {
		if _, err := c.ParseQuery(text); err == nil {
			t.Errorf("ParseQuery(%q) accepted", text)
		}
	}
}

func TestMemberNameFormat(t *testing.T) {
	l := schema.Level{Name: "store", Card: 1440}
	if got := MemberName(l, 7); got != "STORE-0007" {
		t.Fatalf("MemberName = %q", got)
	}
	if !strings.HasPrefix(MemberName(l, 1439), "STORE-") {
		t.Fatal("prefix wrong")
	}
}
