package schema

// Canonical dimension and level names of the APB-1 star schema as used in
// the paper (Figure 1).
const (
	DimProduct  = "product"
	DimCustomer = "customer"
	DimChannel  = "channel"
	DimTime     = "time"

	LvlDivision = "division"
	LvlLine     = "line"
	LvlFamily   = "family"
	LvlGroup    = "group"
	LvlClass    = "class"
	LvlCode     = "code"

	LvlRetailer = "retailer"
	LvlStore    = "store"

	LvlChannel = "channel"

	LvlYear    = "year"
	LvlQuarter = "quarter"
	LvlMonth   = "month"
)

// APB1 returns the star schema of the paper's evaluation: the APB-1 sales
// analysis schema with 15 channels, 24 months and a density factor of 25 %,
// yielding 1,866,240,000 fact rows (Figure 1).
//
// The retailer cardinality is not stated in the paper; 144 (10 stores per
// retailer) reproduces both the paper's 12-bitmap encoded CUSTOMER index
// (ceil(log2 144) + ceil(log2 10) = 8 + 4) and most cells of Table 2
// (see DESIGN.md §5 and EXPERIMENTS.md).
func APB1() *Star {
	return &Star{
		Name: "APB-1",
		Dims: []Dimension{
			{
				Name: DimProduct,
				Levels: []Level{
					{LvlDivision, 8},
					{LvlLine, 24},
					{LvlFamily, 120},
					{LvlGroup, 480},
					{LvlClass, 960},
					{LvlCode, 14400},
				},
			},
			{
				Name: DimCustomer,
				Levels: []Level{
					{LvlRetailer, 144},
					{LvlStore, 1440},
				},
			},
			{
				Name:   DimChannel,
				Levels: []Level{{LvlChannel, 15}},
			},
			{
				Name: DimTime,
				Levels: []Level{
					{LvlYear, 2},
					{LvlQuarter, 8},
					{LvlMonth, 24},
				},
			},
		},
		Density:   0.25,
		TupleSize: 20,
		PageSize:  4096,
		// The paper rounds 4096/20 to "about 200 tuples per fact table page"
		// and its arithmetic (e.g. the 1-in-7 hit-page density of 1STORE)
		// relies on it, so the APB-1 config pins 200.
		TuplesPerPage: 200,
	}
}

// APB1Scaled returns an APB-1-shaped schema whose leaf cardinalities are
// reduced by the given per-dimension divisors so that real data generation
// and in-memory query execution remain tractable. The hierarchy structure
// (number of levels, level names) is preserved; each level's cardinality is
// scaled proportionally but kept >= 1 and the divisibility invariant is
// maintained by scaling fan-outs rather than totals.
//
// factor applies to the product code, customer store and time month counts;
// channel keeps its 15 members (scaling a 1-level dimension is pointless).
func APB1Scaled(factor int) *Star {
	if factor <= 1 {
		return APB1()
	}
	s := APB1()
	switch {
	case factor >= 60:
		// Minimal structure-preserving schema: fan-outs 2 everywhere.
		s.Dims[0].Levels = []Level{
			{LvlDivision, 2}, {LvlLine, 4}, {LvlFamily, 8},
			{LvlGroup, 16}, {LvlClass, 32}, {LvlCode, 480},
		}
		s.Dims[1].Levels = []Level{{LvlRetailer, 6}, {LvlStore, 24}}
		s.Dims[2].Levels = []Level{{LvlChannel, 5}}
		s.Dims[3].Levels = []Level{{LvlYear, 2}, {LvlQuarter, 4}, {LvlMonth, 12}}
	case factor >= 10:
		s.Dims[0].Levels = []Level{
			{LvlDivision, 4}, {LvlLine, 12}, {LvlFamily, 60},
			{LvlGroup, 120}, {LvlClass, 240}, {LvlCode, 1440},
		}
		s.Dims[1].Levels = []Level{{LvlRetailer, 12}, {LvlStore, 144}}
		s.Dims[2].Levels = []Level{{LvlChannel, 15}}
		s.Dims[3].Levels = []Level{{LvlYear, 2}, {LvlQuarter, 8}, {LvlMonth, 24}}
	default:
		s.Dims[0].Levels = []Level{
			{LvlDivision, 8}, {LvlLine, 24}, {LvlFamily, 120},
			{LvlGroup, 240}, {LvlClass, 480}, {LvlCode, 4800},
		}
		s.Dims[1].Levels = []Level{{LvlRetailer, 60}, {LvlStore, 480}}
		s.Dims[2].Levels = []Level{{LvlChannel, 15}}
		s.Dims[3].Levels = []Level{{LvlYear, 2}, {LvlQuarter, 8}, {LvlMonth, 24}}
	}
	s.Name = "APB-1-scaled"
	return s
}

// Tiny returns a very small star schema with the APB-1 shape, suitable for
// unit tests and property tests that enumerate exhaustively.
func Tiny() *Star {
	return &Star{
		Name: "tiny",
		Dims: []Dimension{
			{Name: DimProduct, Levels: []Level{{LvlGroup, 2}, {LvlClass, 4}, {LvlCode, 8}}},
			{Name: DimCustomer, Levels: []Level{{LvlRetailer, 2}, {LvlStore, 6}}},
			{Name: DimTime, Levels: []Level{{LvlQuarter, 2}, {LvlMonth, 4}}},
		},
		Density:       0.5,
		TupleSize:     20,
		PageSize:      4096,
		TuplesPerPage: 16,
	}
}
