package schema

import (
	"testing"
	"testing/quick"
)

func TestAPB1Cardinalities(t *testing.T) {
	s := APB1()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	want := map[string]map[string]int{
		DimProduct: {
			LvlDivision: 8, LvlLine: 24, LvlFamily: 120,
			LvlGroup: 480, LvlClass: 960, LvlCode: 14400,
		},
		DimCustomer: {LvlRetailer: 144, LvlStore: 1440},
		DimChannel:  {LvlChannel: 15},
		DimTime:     {LvlYear: 2, LvlQuarter: 8, LvlMonth: 24},
	}
	for dname, levels := range want {
		d := s.Dim(dname)
		if d == nil {
			t.Fatalf("dimension %s missing", dname)
		}
		for lname, card := range levels {
			li := d.LevelIndex(lname)
			if li < 0 {
				t.Fatalf("%s: level %s missing", dname, lname)
			}
			if got := d.Levels[li].Card; got != card {
				t.Errorf("%s.%s cardinality = %d, want %d", dname, lname, got, card)
			}
		}
	}
}

func TestAPB1FactCount(t *testing.T) {
	s := APB1()
	// 24 * 14400 * 1440 * 15 * 0.25 = 1,866,240,000 (paper, Figure 1).
	if got := s.N(); got != 1_866_240_000 {
		t.Fatalf("N = %d, want 1,866,240,000", got)
	}
	if got := s.MaxCombinations(); got != 7_464_960_000 {
		t.Fatalf("MaxCombinations = %d, want 7,464,960,000", got)
	}
}

func TestAPB1BitmapSize(t *testing.T) {
	s := APB1()
	// The paper states each bitmap occupies 223 MB (Section 4.4).
	mb := float64(s.BitmapBytes()) / (1 << 20)
	if mb < 220 || mb > 225 {
		t.Fatalf("bitmap size = %.1f MB, want ~223 MB", mb)
	}
}

func TestFanOutAPB1Product(t *testing.T) {
	p := APB1().Dim(DimProduct)
	// Table 1: elements within parent 8, 3, 5, 4, 2, 15.
	wantFan := []int{3, 5, 4, 2, 15, 1}
	for i, w := range wantFan {
		if got := p.FanOut(i); got != w {
			t.Errorf("FanOut(%d) = %d, want %d", i, got, w)
		}
	}
	if got := p.FanOutBetween(p.LevelIndex(LvlGroup), p.LevelIndex(LvlCode)); got != 30 {
		t.Errorf("codes per group = %d, want 30", got)
	}
}

func TestAncestorDescendant(t *testing.T) {
	tm := APB1().Dim(DimTime)
	month := tm.LevelIndex(LvlMonth)
	quarter := tm.LevelIndex(LvlQuarter)
	year := tm.LevelIndex(LvlYear)

	if got := tm.Ancestor(month, 7, quarter); got != 2 {
		t.Errorf("month 7 quarter = %d, want 2", got)
	}
	if got := tm.Ancestor(month, 23, year); got != 1 {
		t.Errorf("month 23 year = %d, want 1", got)
	}
	lo, hi := tm.DescendantRange(quarter, 2, month)
	if lo != 6 || hi != 9 {
		t.Errorf("quarter 2 months = [%d,%d), want [6,9)", lo, hi)
	}
	lo, hi = tm.DescendantRange(year, 0, month)
	if lo != 0 || hi != 12 {
		t.Errorf("year 0 months = [%d,%d), want [0,12)", lo, hi)
	}
}

func TestChildIndex(t *testing.T) {
	p := APB1().Dim(DimProduct)
	code := p.LevelIndex(LvlCode)
	// codes come 15 per class
	if got := p.ChildIndex(code, 14399); got != 14 {
		t.Errorf("ChildIndex(code, 14399) = %d, want 14", got)
	}
	if got := p.ChildIndex(0, 5); got != 5 {
		t.Errorf("ChildIndex(0, 5) = %d, want 5", got)
	}
}

func TestAncestorDescendantRoundTrip(t *testing.T) {
	// Property: for any member m at a fine level, m lies inside the
	// descendant range of its own ancestor, for every coarser level.
	for _, s := range []*Star{APB1(), Tiny(), APB1Scaled(10), APB1Scaled(100)} {
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		for di := range s.Dims {
			d := &s.Dims[di]
			leaf := d.Leaf()
			f := func(m uint) bool {
				mm := int(m % uint(d.LeafCard()))
				for to := 0; to <= leaf; to++ {
					a := d.Ancestor(leaf, mm, to)
					lo, hi := d.DescendantRange(to, a, leaf)
					if mm < lo || mm >= hi {
						return false
					}
					if a < 0 || a >= d.Levels[to].Card {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
				t.Errorf("%s.%s: %v", s.Name, d.Name, err)
			}
		}
	}
}

func TestValidateRejectsBadSchemas(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Star)
	}{
		{"no dims", func(s *Star) { s.Dims = nil }},
		{"zero card", func(s *Star) { s.Dims[0].Levels[0].Card = 0 }},
		{"decreasing card", func(s *Star) { s.Dims[0].Levels[1].Card = 1 }},
		{"non-divisible", func(s *Star) { s.Dims[0].Levels[5].Card = 961 }},
		{"bad density", func(s *Star) { s.Density = 0 }},
		{"density > 1", func(s *Star) { s.Density = 1.5 }},
		{"zero page", func(s *Star) { s.PageSize = 0 }},
		{"tuple > page", func(s *Star) { s.TupleSize = 8192 }},
		{"dup dim", func(s *Star) { s.Dims[1].Name = s.Dims[0].Name }},
		{"empty dim name", func(s *Star) { s.Dims[0].Name = "" }},
		{"no levels", func(s *Star) { s.Dims[0].Levels = nil }},
	}
	for _, c := range cases {
		s := APB1()
		c.mut(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid schema", c.name)
		}
	}
}

func TestDimIndexLookups(t *testing.T) {
	s := APB1()
	if i := s.DimIndex(DimChannel); i != 2 {
		t.Errorf("DimIndex(channel) = %d, want 2", i)
	}
	if i := s.DimIndex("nope"); i != -1 {
		t.Errorf("DimIndex(nope) = %d, want -1", i)
	}
	if d := s.Dim("nope"); d != nil {
		t.Error("Dim(nope) != nil")
	}
	if i := s.Dims[0].LevelIndex("nope"); i != -1 {
		t.Errorf("LevelIndex(nope) = %d, want -1", i)
	}
}

func TestFactPagesAndBytes(t *testing.T) {
	s := APB1()
	pages := s.FactPages()
	// 1,866,240,000 / 200 = 9,331,200 pages.
	if pages != 9_331_200 {
		t.Fatalf("FactPages = %d, want 9,331,200", pages)
	}
	if got := s.FactBytes(); got != pages*4096 {
		t.Fatalf("FactBytes = %d, want %d", got, pages*4096)
	}
	// Default tuples-per-page when not pinned.
	s.TuplesPerPage = 0
	if got := s.FactTuplesPerPage(); got != 204 {
		t.Fatalf("default TuplesPerPage = %d, want 204", got)
	}
}

func TestScaledSchemasValid(t *testing.T) {
	for _, f := range []int{1, 5, 10, 60, 100} {
		s := APB1Scaled(f)
		if err := s.Validate(); err != nil {
			t.Errorf("APB1Scaled(%d): %v", f, err)
		}
		if s.N() <= 0 {
			t.Errorf("APB1Scaled(%d): N = %d", f, s.N())
		}
	}
	if s := APB1Scaled(0); s.Name != "APB-1" {
		t.Errorf("APB1Scaled(0) should fall back to full schema, got %s", s.Name)
	}
}

func TestFanOutBetweenPanicsOnReversedLevels(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p := APB1().Dim(DimProduct)
	p.FanOutBetween(3, 1)
}

func TestAncestorPanicsOnFinerTarget(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p := APB1().Dim(DimProduct)
	p.Ancestor(1, 0, 3)
}
