// Package schema models relational star schemas with hierarchically
// structured dimensions, as used by the APB-1 decision support benchmark and
// by the MDHF data allocation study (Stöhr/Märtens/Rahm, VLDB 2000).
//
// A Dimension is an ordered list of hierarchy levels from the coarsest
// (e.g. product division) to the finest (e.g. product code). As in APB-1,
// hierarchies are uniform: every member of a level has the same number of
// children, so member arithmetic (ancestor, descendant range) is pure
// integer math and needs no stored dimension tables.
package schema

import (
	"errors"
	"fmt"
)

// Level is one hierarchy level of a dimension. Card is the total number of
// members at this level across the whole dimension (not per parent).
type Level struct {
	Name string
	Card int
}

// Dimension is a hierarchically structured dimension. Levels are ordered
// from the coarsest (index 0) to the finest (index len(Levels)-1, the level
// the fact table's foreign key refers to). Cardinalities must be
// non-decreasing and each level's cardinality must divide the next one's,
// yielding a uniform fan-out.
type Dimension struct {
	Name   string
	Levels []Level
}

// Validate checks the uniform-hierarchy invariants.
func (d *Dimension) Validate() error {
	if d.Name == "" {
		return errors.New("schema: dimension has empty name")
	}
	if len(d.Levels) == 0 {
		return fmt.Errorf("schema: dimension %s has no levels", d.Name)
	}
	prev := 0
	for i, l := range d.Levels {
		if l.Card <= 0 {
			return fmt.Errorf("schema: dimension %s level %s has cardinality %d", d.Name, l.Name, l.Card)
		}
		if i > 0 {
			if l.Card < prev {
				return fmt.Errorf("schema: dimension %s level %s cardinality %d below parent level %d", d.Name, l.Name, l.Card, prev)
			}
			if l.Card%prev != 0 {
				return fmt.Errorf("schema: dimension %s level %s cardinality %d not a multiple of parent cardinality %d", d.Name, l.Name, l.Card, prev)
			}
		}
		prev = l.Card
	}
	return nil
}

// Depth returns the number of hierarchy levels.
func (d *Dimension) Depth() int { return len(d.Levels) }

// Leaf returns the index of the finest level.
func (d *Dimension) Leaf() int { return len(d.Levels) - 1 }

// LeafCard returns the cardinality of the finest level, i.e. the domain of
// the fact table's foreign key for this dimension.
func (d *Dimension) LeafCard() int { return d.Levels[d.Leaf()].Card }

// LevelIndex returns the index of the named level, or -1.
func (d *Dimension) LevelIndex(name string) int {
	for i, l := range d.Levels {
		if l.Name == name {
			return i
		}
	}
	return -1
}

// FanOut returns the number of children each member of level has at
// level+1. FanOut of the leaf level is 1 by convention.
func (d *Dimension) FanOut(level int) int {
	if level >= d.Leaf() {
		return 1
	}
	return d.Levels[level+1].Card / d.Levels[level].Card
}

// FanOutBetween returns how many members of the finer level `to` belong to
// one member of the coarser level `from` (to >= from).
func (d *Dimension) FanOutBetween(from, to int) int {
	if to < from {
		panic(fmt.Sprintf("schema: FanOutBetween(%d, %d): to < from", from, to))
	}
	return d.Levels[to].Card / d.Levels[from].Card
}

// Ancestor maps member m of level `from` to its ancestor at the coarser
// level `to` (to <= from). Members are dense indices 0..Card-1 ordered so
// that children of the same parent are contiguous.
func (d *Dimension) Ancestor(from int, m int, to int) int {
	if to > from {
		panic(fmt.Sprintf("schema: Ancestor from level %d to finer level %d", from, to))
	}
	return m / d.FanOutBetween(to, from)
}

// DescendantRange returns the half-open member range [lo, hi) at the finer
// level `to` covered by member m of level `from` (to >= from).
func (d *Dimension) DescendantRange(from int, m int, to int) (lo, hi int) {
	f := d.FanOutBetween(from, to)
	return m * f, (m + 1) * f
}

// ChildIndex returns the index of member m (at level `level`) within its
// parent at level-1. For level 0 it returns m itself.
func (d *Dimension) ChildIndex(level, m int) int {
	if level == 0 {
		return m
	}
	return m % d.FanOut(level-1)
}

// Star is a star schema: one fact table with one foreign key per dimension
// (referring to the dimension's leaf level) plus measure attributes.
type Star struct {
	Name string
	Dims []Dimension

	// Density is the fraction of all possible leaf-value combinations that
	// actually occur as fact rows (APB-1's density factor, 0 < Density <= 1).
	Density float64

	// TupleSize is the fact tuple size in bytes.
	TupleSize int
	// PageSize is the database page size in bytes.
	PageSize int
	// TuplesPerPage is the number of fact tuples stored per page. If zero,
	// it defaults to PageSize/TupleSize. The paper uses the round value 200
	// (4 KB pages, 20 B tuples) and we follow it in the APB-1 config.
	TuplesPerPage int
}

// Validate checks schema invariants.
func (s *Star) Validate() error {
	if len(s.Dims) == 0 {
		return errors.New("schema: star has no dimensions")
	}
	seen := make(map[string]bool, len(s.Dims))
	for i := range s.Dims {
		if err := s.Dims[i].Validate(); err != nil {
			return err
		}
		if seen[s.Dims[i].Name] {
			return fmt.Errorf("schema: duplicate dimension %s", s.Dims[i].Name)
		}
		seen[s.Dims[i].Name] = true
	}
	if s.Density <= 0 || s.Density > 1 {
		return fmt.Errorf("schema: density %g out of (0, 1]", s.Density)
	}
	if s.TupleSize <= 0 || s.PageSize <= 0 {
		return fmt.Errorf("schema: tuple size %d / page size %d must be positive", s.TupleSize, s.PageSize)
	}
	if s.TupleSize > s.PageSize {
		return fmt.Errorf("schema: tuple size %d exceeds page size %d", s.TupleSize, s.PageSize)
	}
	return nil
}

// Dim returns the dimension with the given name, or nil.
func (s *Star) Dim(name string) *Dimension {
	for i := range s.Dims {
		if s.Dims[i].Name == name {
			return &s.Dims[i]
		}
	}
	return nil
}

// DimIndex returns the index of the named dimension, or -1.
func (s *Star) DimIndex(name string) int {
	for i := range s.Dims {
		if s.Dims[i].Name == name {
			return i
		}
	}
	return -1
}

// MaxCombinations returns the product of all leaf cardinalities, i.e. the
// maximal possible number of fact rows.
func (s *Star) MaxCombinations() int64 {
	n := int64(1)
	for i := range s.Dims {
		n *= int64(s.Dims[i].LeafCard())
	}
	return n
}

// N returns the number of fact rows implied by the density factor.
func (s *Star) N() int64 {
	return int64(float64(s.MaxCombinations()) * s.Density)
}

// FactTuplesPerPage returns the effective number of fact tuples per page.
func (s *Star) FactTuplesPerPage() int {
	if s.TuplesPerPage > 0 {
		return s.TuplesPerPage
	}
	return s.PageSize / s.TupleSize
}

// FactPages returns the total number of fact table pages.
func (s *Star) FactPages() int64 {
	tpp := int64(s.FactTuplesPerPage())
	return (s.N() + tpp - 1) / tpp
}

// BitmapBytes returns the (uncompressed) size in bytes of one full bitmap
// over the fact table: one bit per fact row.
func (s *Star) BitmapBytes() int64 {
	return (s.N() + 7) / 8
}

// BitmapPages returns the number of pages occupied by one full bitmap.
func (s *Star) BitmapPages() int64 {
	return (s.BitmapBytes() + int64(s.PageSize) - 1) / int64(s.PageSize)
}

// FactBytes returns the total fact table size in bytes (page-aligned).
func (s *Star) FactBytes() int64 {
	return s.FactPages() * int64(s.PageSize)
}
