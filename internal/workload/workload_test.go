package workload

import (
	"testing"

	"repro/internal/frag"
	"repro/internal/schema"
)

func TestAllTypesBindOnAPB1(t *testing.T) {
	s := schema.APB1()
	g := NewGenerator(s, 1)
	for _, qt := range All() {
		q, err := g.Next(qt)
		if err != nil {
			t.Fatalf("%s: %v", qt.Name, err)
		}
		if len(q.Preds) != len(qt.Attrs) {
			t.Errorf("%s: %d predicates, want %d", qt.Name, len(q.Preds), len(qt.Attrs))
		}
		if err := q.Validate(s); err != nil {
			t.Errorf("%s: %v", qt.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	qt, err := ByName("1MONTH1GROUP")
	if err != nil || qt.Name != "1MONTH1GROUP" {
		t.Fatalf("ByName: %v %v", qt, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestBindExplicitMembers(t *testing.T) {
	s := schema.APB1()
	q, err := OneMonthOneGroup.Bind(s, []int{3, 42})
	if err != nil {
		t.Fatal(err)
	}
	tm := s.DimIndex(schema.DimTime)
	pd := s.DimIndex(schema.DimProduct)
	if q.Preds[0].Dim != tm || q.Preds[0].Member != 3 {
		t.Errorf("pred 0 = %+v", q.Preds[0])
	}
	if q.Preds[1].Dim != pd || q.Preds[1].Member != 42 {
		t.Errorf("pred 1 = %+v", q.Preds[1])
	}
	if _, err := OneMonthOneGroup.Bind(s, []int{3}); err == nil {
		t.Error("short member list accepted")
	}
	if _, err := OneMonthOneGroup.Bind(s, []int{99, 42}); err == nil {
		t.Error("out-of-domain member accepted")
	}
}

func TestGeneratorDeterministicAndVarying(t *testing.T) {
	s := schema.APB1()
	a, _ := NewGenerator(s, 7).Stream(OneStore, 20)
	b, _ := NewGenerator(s, 7).Stream(OneStore, 20)
	for i := range a {
		if a[i].Preds[0].Member != b[i].Preds[0].Member {
			t.Fatal("same seed produced different streams")
		}
	}
	distinct := map[int]bool{}
	for _, q := range a {
		distinct[q.Preds[0].Member] = true
	}
	if len(distinct) < 2 {
		t.Error("stream shows no parameter variation")
	}
}

func TestBindFailsOnForeignSchema(t *testing.T) {
	tiny := schema.Tiny() // has no channel dimension
	qt := QueryType{"X", []AttrRef{{schema.DimChannel, schema.LvlChannel}}}
	if _, err := qt.Bind(tiny, []int{0}); err == nil {
		t.Fatal("bind against missing dimension accepted")
	}
	if _, err := NewGenerator(tiny, 1).Next(qt); err == nil {
		t.Fatal("generator against missing dimension accepted")
	}
	qt2 := QueryType{"Y", []AttrRef{{schema.DimProduct, schema.LvlDivision}}}
	if _, err := qt2.Bind(tiny, []int{0}); err == nil {
		t.Fatal("bind against missing level accepted")
	}
}

func TestQueryTypesMatchPaperClassification(t *testing.T) {
	// Under FMonthGroup the paper assigns: 1MONTH1GROUP -> Q1,
	// 1CODE1MONTH -> Q2, 1GROUP1QUARTER -> Q3, 1CODE1QUARTER -> Q4,
	// 1STORE -> unsupported.
	s := schema.APB1()
	spec := frag.MustParse(s, "time::month, product::group")
	g := NewGenerator(s, 3)
	cases := []struct {
		qt   QueryType
		want frag.QueryClass
	}{
		{OneMonthOneGroup, frag.Q1},
		{OneCodeOneMonth, frag.Q2},
		{OneGroupOneQuarter, frag.Q3},
		{OneCodeOneQuarter, frag.Q4},
		{OneStore, frag.Unsupported},
		{OneGroupOneStore, frag.Q1},
	}
	for _, c := range cases {
		q, err := g.Next(c.qt)
		if err != nil {
			t.Fatal(err)
		}
		if got := spec.Classify(q); got != c.want {
			t.Errorf("%s: class %v, want %v", c.qt.Name, got, c.want)
		}
	}
}
