// Package workload defines the star query types of the MDHF study
// (Sections 3.1, 6) and generates single-user query streams with randomly
// chosen selection parameters, mirroring the paper's query generator
// (Section 5: "all queries are of the same type, but specific parameters
// are chosen at random").
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/frag"
	"repro/internal/schema"
)

// AttrRef names one query attribute by dimension and level name.
type AttrRef struct {
	Dim   string
	Level string
}

// QueryType is a named star query template: an exact-match predicate per
// referenced attribute, with the member values left open.
type QueryType struct {
	Name  string
	Attrs []AttrRef
}

// Paper query types used in the experiments.
var (
	// OneStore aggregates one customer store over everything else (1STORE).
	OneStore = QueryType{"1STORE", []AttrRef{{schema.DimCustomer, schema.LvlStore}}}
	// OneMonth aggregates one month (1MONTH).
	OneMonth = QueryType{"1MONTH", []AttrRef{{schema.DimTime, schema.LvlMonth}}}
	// OneCode aggregates one product code (1CODE).
	OneCode = QueryType{"1CODE", []AttrRef{{schema.DimProduct, schema.LvlCode}}}
	// OneGroup aggregates one product group (1GROUP).
	OneGroup = QueryType{"1GROUP", []AttrRef{{schema.DimProduct, schema.LvlGroup}}}
	// OneQuarter aggregates one quarter (1QUARTER).
	OneQuarter = QueryType{"1QUARTER", []AttrRef{{schema.DimTime, schema.LvlQuarter}}}
	// OneMonthOneGroup is the paper's sample two-dimensional star join
	// (1MONTH1GROUP, Section 3.1).
	OneMonthOneGroup = QueryType{"1MONTH1GROUP", []AttrRef{
		{schema.DimTime, schema.LvlMonth}, {schema.DimProduct, schema.LvlGroup}}}
	// OneCodeOneMonth (1CODE1MONTH, Section 4.2, query type Q2).
	OneCodeOneMonth = QueryType{"1CODE1MONTH", []AttrRef{
		{schema.DimProduct, schema.LvlCode}, {schema.DimTime, schema.LvlMonth}}}
	// OneCodeOneQuarter (1CODE1QUARTER, Sections 4.2/6.3, query type Q4).
	OneCodeOneQuarter = QueryType{"1CODE1QUARTER", []AttrRef{
		{schema.DimProduct, schema.LvlCode}, {schema.DimTime, schema.LvlQuarter}}}
	// OneGroupOneQuarter (Section 4.2, query type Q3).
	OneGroupOneQuarter = QueryType{"1GROUP1QUARTER", []AttrRef{
		{schema.DimProduct, schema.LvlGroup}, {schema.DimTime, schema.LvlQuarter}}}
	// OneGroupOneStore (Section 4.2: frag attribute plus a non-frag
	// dimension needing bitmap access).
	OneGroupOneStore = QueryType{"1GROUP1STORE", []AttrRef{
		{schema.DimProduct, schema.LvlGroup}, {schema.DimCustomer, schema.LvlStore}}}
)

// All lists the predefined query types.
func All() []QueryType {
	return []QueryType{
		OneStore, OneMonth, OneCode, OneGroup, OneQuarter,
		OneMonthOneGroup, OneCodeOneMonth, OneCodeOneQuarter,
		OneGroupOneQuarter, OneGroupOneStore,
	}
}

// ByName returns the predefined query type with the given name.
func ByName(name string) (QueryType, error) {
	for _, qt := range All() {
		if qt.Name == name {
			return qt, nil
		}
	}
	return QueryType{}, fmt.Errorf("workload: unknown query type %q", name)
}

// Bind resolves the template against a schema with explicit member values
// (one per attribute, in template order).
func (qt QueryType) Bind(star *schema.Star, members []int) (frag.Query, error) {
	if len(members) != len(qt.Attrs) {
		return frag.Query{}, fmt.Errorf("workload: %s needs %d members, got %d", qt.Name, len(qt.Attrs), len(members))
	}
	var q frag.Query
	for i, a := range qt.Attrs {
		di := star.DimIndex(a.Dim)
		if di < 0 {
			return frag.Query{}, fmt.Errorf("workload: schema lacks dimension %s", a.Dim)
		}
		li := star.Dims[di].LevelIndex(a.Level)
		if li < 0 {
			return frag.Query{}, fmt.Errorf("workload: dimension %s lacks level %s", a.Dim, a.Level)
		}
		q.Preds = append(q.Preds, frag.Pred{Dim: di, Level: li, Member: members[i]})
	}
	return q, q.Validate(star)
}

// Generator produces queries of given types with pseudo-random parameters.
type Generator struct {
	star *schema.Star
	rng  *rand.Rand
}

// NewGenerator returns a deterministic generator for the schema.
func NewGenerator(star *schema.Star, seed int64) *Generator {
	return &Generator{star: star, rng: rand.New(rand.NewSource(seed))}
}

// Next returns one query of the given type with uniformly chosen members.
func (g *Generator) Next(qt QueryType) (frag.Query, error) {
	members := make([]int, len(qt.Attrs))
	for i, a := range qt.Attrs {
		di := g.star.DimIndex(a.Dim)
		if di < 0 {
			return frag.Query{}, fmt.Errorf("workload: schema lacks dimension %s", a.Dim)
		}
		li := g.star.Dims[di].LevelIndex(a.Level)
		if li < 0 {
			return frag.Query{}, fmt.Errorf("workload: dimension %s lacks level %s", a.Dim, a.Level)
		}
		members[i] = g.rng.Intn(g.star.Dims[di].Levels[li].Card)
	}
	return qt.Bind(g.star, members)
}

// Stream returns n queries of the same type — the paper's single-user
// query stream for one simulation run.
func (g *Generator) Stream(qt QueryType, n int) ([]frag.Query, error) {
	out := make([]frag.Query, 0, n)
	for i := 0; i < n; i++ {
		q, err := g.Next(qt)
		if err != nil {
			return nil, err
		}
		out = append(out, q)
	}
	return out, nil
}
