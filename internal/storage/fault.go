package storage

// Fault model: the paper spreads fragments and bitmaps over up to 100+
// disks, which multiplies the failure surface — this file gives the
// storage layer a deterministic fault model and the machinery to survive
// it. A FaultPlan injects transient read errors, latency spikes, sticky
// (permanent) disk failures and corrupt pages into a DiskSet's per-disk
// queues, seeded so every run is reproducible. Every physical read is
// wrapped in a RetryPolicy (exponential backoff with jitter, context
// aware) and verified against its CRC32C page checksums; repeated
// exhausted reads trip a per-disk circuit breaker that fails subsequent
// reads fast instead of hanging a query on a dead disk. All failures
// surface as typed *FaultError values carrying disk/file/fragment/offset
// context, never bare I/O errors.

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// castagnoli is the CRC32C table shared by every page and record
// checksum (hardware-accelerated by hash/crc32 on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// checksumsEnabled gates read-side checksum verification. It exists so
// the fault benchmark can measure the verify overhead on one warehouse;
// production code never clears it. Checksums are always computed and
// stored at build time regardless.
var checksumsEnabled atomic.Bool

func init() { checksumsEnabled.Store(true) }

// SetChecksumVerification toggles read-side CRC verification globally
// (default on). Benchmark-only: results are only protected against
// corruption while verification is on.
func SetChecksumVerification(on bool) { checksumsEnabled.Store(on) }

// pageCRC computes the stored checksum of one page.
func pageCRC(page []byte) uint32 { return crc32.Checksum(page, castagnoli) }

// FaultKind classifies a storage fault.
type FaultKind int

const (
	// FaultTransient is a transient read error: an injected or real I/O
	// error that a retry may clear.
	FaultTransient FaultKind = iota
	// FaultChecksum is a page whose CRC32C did not match — a corrupt
	// read. Retries re-read from the medium.
	FaultChecksum
	// FaultDiskFailed is a sticky (permanent) disk failure: every access
	// to the disk errors until it is revived.
	FaultDiskFailed
	// FaultBreakerOpen means the disk's circuit breaker is open after
	// repeated exhausted reads: the read failed fast without touching the
	// disk.
	FaultBreakerOpen
)

func (k FaultKind) String() string {
	switch k {
	case FaultTransient:
		return "transient"
	case FaultChecksum:
		return "checksum"
	case FaultDiskFailed:
		return "disk-failed"
	case FaultBreakerOpen:
		return "breaker-open"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// FaultError is the typed failure every storage read surfaces: which
// disk, which file, which fragment and byte offset, and what kind of
// fault — so a failure observed at the warehouse surface is diagnosable
// down to the physical access that caused it. It wraps the underlying
// error (errors.Is/As see through it).
type FaultError struct {
	// Disk is the virtual disk the access routed to (0 on a single-disk
	// store).
	Disk int
	// File names the component: "fact", "bitmaps" or "delta".
	File string
	// Frag is the fragment the read belonged to (-1 when not
	// fragment-scoped, e.g. a journal scan).
	Frag int64
	// Offset is the byte offset of the failed read within the file.
	Offset int64
	// Kind classifies the fault.
	Kind FaultKind
	// Err is the underlying cause (nil for pure injected faults).
	Err error
}

func (e *FaultError) Error() string {
	msg := fmt.Sprintf("storage: %s read failed (disk %d, fragment %d, offset %d): %s",
		e.File, e.Disk, e.Frag, e.Offset, e.Kind)
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

func (e *FaultError) Unwrap() error { return e.Err }

// FaultPlan is a deterministic, seedable per-disk fault plan. Installed
// on a DiskSet (SetFaultPlan / WithFaultPlan), it drives one independent
// PRNG per disk — seeded from Seed and the disk index — so the fault
// sequence each disk sees is reproducible at any worker count or
// admission mix. Rates are per physical read attempt; retries therefore
// see fresh draws, which is what lets a retried read clear a transient
// fault.
type FaultPlan struct {
	// Seed drives the per-disk fault PRNGs (0 means 1).
	Seed int64
	// ReadErrorRate is the probability that a physical read fails with a
	// transient error.
	ReadErrorRate float64
	// CorruptRate is the probability that a physical read silently
	// corrupts the returned pages (caught by checksum verification).
	CorruptRate float64
	// LatencySpikeRate is the probability that a physical read stalls for
	// an extra LatencySpike on top of the disk's access delay.
	LatencySpikeRate float64
	// LatencySpike is the stall added on a latency spike.
	LatencySpike time.Duration
	// FailDisks lists disks that are permanently failed from the start
	// (equivalent to calling FailDisk on each).
	FailDisks []int
}

// errInjectedRead is the underlying cause of injected transient errors.
var errInjectedRead = errors.New("injected transient read error")

// RetryPolicy wraps every physical disk read: failed attempts back off
// exponentially (with jitter, context-aware) and re-read; a read that
// exhausts its attempts strikes the disk's circuit breaker, and
// BreakerTrips consecutive strikes open the breaker — subsequent reads
// fail fast with FaultBreakerOpen instead of burning retry budget on a
// dead disk. After BreakerCooldown one probe read is let through
// (half-open); its success closes the breaker.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per read, including the
	// first (values below 1 mean the default).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; each further retry
	// doubles it, plus up to 100% jitter, capped at MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the per-retry delay.
	MaxBackoff time.Duration
	// BreakerThreshold is the number of consecutive exhausted reads that
	// opens a disk's circuit breaker (values below 1 mean the default).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects reads before
	// letting one probe through.
	BreakerCooldown time.Duration
}

// DefaultRetryPolicy returns the policy every read runs under unless
// SetRetryPolicy overrides it: 6 attempts, 100µs base backoff doubling
// to at most 5ms, breaker opening after 3 consecutive exhausted reads
// with a 250ms cooldown.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:      6,
		BaseBackoff:      100 * time.Microsecond,
		MaxBackoff:       5 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  250 * time.Millisecond,
	}
}

// normalize fills zero fields with the defaults.
func (p RetryPolicy) normalize() RetryPolicy {
	d := DefaultRetryPolicy()
	if p.MaxAttempts < 1 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = d.BaseBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = d.MaxBackoff
	}
	if p.BreakerThreshold < 1 {
		p.BreakerThreshold = d.BreakerThreshold
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = d.BreakerCooldown
	}
	return p
}

// breaker is one disk's circuit-breaker state, guarded by its own small
// mutex (never held across a physical access).
type breaker struct {
	mu       sync.Mutex
	strikes  int  // consecutive exhausted reads
	open     bool // rejecting reads
	probing  bool // one half-open probe in flight
	openedAt time.Time
}

// faultSite locates a read for error wrapping.
type faultSite struct {
	file string
	frag int64
	off  int64
}

// siteError wraps err (already a *FaultError or a bare cause) with the
// site's file/fragment/offset and the disk.
func (s faultSite) wrap(disk int, kind FaultKind, err error) *FaultError {
	var fe *FaultError
	if errors.As(err, &fe) {
		// Keep the innermost fault's kind and cause; fill in the site.
		return &FaultError{Disk: disk, File: s.file, Frag: s.frag, Offset: s.off, Kind: fe.Kind, Err: fe.Err}
	}
	return &FaultError{Disk: disk, File: s.file, Frag: s.frag, Offset: s.off, Kind: kind, Err: err}
}

// retryRead runs one logical page-run read under the retry policy:
// read performs the physical access (routed through ds's per-disk
// queue when ds is non-nil) and fills the destination buffer; corrupt
// flips bytes in that buffer when the fault plan injects corruption
// (applied inside the disk's critical section; nil disables injection
// for this read); verify checks the buffer's checksums (nil when the
// caller has none). Failed attempts back off and re-read; exhausted
// reads strike the breaker; breaker-open and context errors return
// immediately. ds may be nil (single implicit disk): no faults are
// injected and no breaker applies, but verification and retries still
// run under the default policy.
func retryRead(ctx context.Context, ds *DiskSet, disk, pages int, site faultSite, read func() error, corrupt func(), verify func() error) error {
	pol := DefaultRetryPolicy()
	if ds != nil {
		pol = ds.policy()
	}
	var lastErr error
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		if attempt > 0 {
			if ds != nil {
				ds.disks[disk].retries.Add(1)
			}
			if err := backoff(ctx, pol, attempt); err != nil {
				return err
			}
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		var err error
		if ds != nil {
			err = ds.readAccess(disk, pages, read, corrupt)
		} else {
			err = read()
		}
		if err == nil && verify != nil && checksumsEnabled.Load() {
			err = verify()
			if err != nil && ds != nil {
				ds.disks[disk].checksumFails.Add(1)
			}
		}
		if err == nil {
			if ds != nil {
				ds.breakerOK(disk)
			}
			return nil
		}
		lastErr = err
		var fe *FaultError
		if errors.As(err, &fe) && (fe.Kind == FaultBreakerOpen || fe.Kind == FaultDiskFailed) {
			// The disk is known dead (sticky failure or open breaker):
			// fail fast, no retries.
			return site.wrap(disk, fe.Kind, err)
		}
	}
	if ds != nil {
		ds.breakerStrike(disk, pol)
	}
	return site.wrap(disk, FaultTransient, lastErr)
}

// backoff sleeps the attempt's exponential backoff with full jitter,
// returning early (with ctx.Err) on cancellation.
func backoff(ctx context.Context, pol RetryPolicy, attempt int) error {
	d := pol.BaseBackoff << uint(attempt-1)
	if d > pol.MaxBackoff || d <= 0 {
		d = pol.MaxBackoff
	}
	// Full jitter: a uniform draw in (0, d]. Jitter never affects query
	// results, so the global PRNG's nondeterminism is harmless.
	d = time.Duration(rand.Int63n(int64(d))) + 1
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// SetFaultPlan installs (or, with nil, removes) the fault plan: each
// disk gets an independent PRNG seeded from plan.Seed and its index, and
// plan.FailDisks are marked sticky-failed. Call before queries run; the
// plan is read under each disk's queue mutex.
func (ds *DiskSet) SetFaultPlan(plan *FaultPlan) {
	for i := range ds.disks {
		q := &ds.disks[i]
		q.mu.Lock()
		if plan == nil {
			q.plan, q.rng = nil, nil
		} else {
			seed := plan.Seed
			if seed == 0 {
				seed = 1
			}
			q.plan = plan
			q.rng = rand.New(rand.NewSource(seed*1_000_003 + int64(i)))
		}
		q.mu.Unlock()
	}
	if plan != nil {
		for _, d := range plan.FailDisks {
			ds.FailDisk(d)
		}
	}
}

// SetRetryPolicy overrides the read retry policy (zero fields keep
// their defaults). Safe to call before queries run.
func (ds *DiskSet) SetRetryPolicy(p RetryPolicy) {
	ds.retry.Store(&p)
}

// policy returns the active retry policy, normalized.
func (ds *DiskSet) policy() RetryPolicy {
	if p := ds.retry.Load(); p != nil {
		return p.normalize()
	}
	return DefaultRetryPolicy()
}

// FailDisk marks one disk permanently failed: every subsequent access
// errors with FaultDiskFailed until ReviveDisk. The disk's breaker trips
// after the configured consecutive exhausted reads, after which reads
// fail fast without retry.
func (ds *DiskSet) FailDisk(disk int) { ds.disks[disk].failed.Store(true) }

// ReviveDisk clears a sticky disk failure and resets the disk's breaker.
func (ds *DiskSet) ReviveDisk(disk int) {
	q := &ds.disks[disk]
	q.failed.Store(false)
	q.brk.mu.Lock()
	q.brk.strikes, q.brk.open, q.brk.probing = 0, false, false
	q.brk.mu.Unlock()
}

// readAccess is one physical read access on disk `disk` under the fault
// plan: sticky failure and the circuit breaker are checked first (both
// fail without entering the queue), then the access holds the disk for
// its delay (plus any injected latency spike) and the read, then
// injected transient errors and page corruption (via the caller's
// corrupt callback, run inside the critical section so a concurrent
// reader can never absorb this read's fault) are applied. Counters
// account every physical attempt.
func (ds *DiskSet) readAccess(disk, pages int, read func() error, corrupt func()) error {
	q := &ds.disks[disk]
	if q.failed.Load() {
		return &FaultError{Disk: disk, Kind: FaultDiskFailed}
	}
	if open := ds.breakerCheck(disk); open {
		return &FaultError{Disk: disk, Kind: FaultBreakerOpen}
	}
	q.mu.Lock()
	if d := q.delay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	var spike time.Duration
	injectErr := false
	injectCorrupt := false
	if q.plan != nil {
		if p := q.plan.LatencySpikeRate; p > 0 && q.rng.Float64() < p {
			spike = q.plan.LatencySpike
		}
		if p := q.plan.ReadErrorRate; p > 0 && q.rng.Float64() < p {
			injectErr = true
		}
		if p := q.plan.CorruptRate; p > 0 && q.rng.Float64() < p {
			injectCorrupt = true
		}
	}
	if spike > 0 {
		time.Sleep(spike)
	}
	var err error
	if injectErr {
		// The disk was held for the access but returned garbage status:
		// model it as the read never filling the buffer.
		err = &FaultError{Disk: disk, Kind: FaultTransient, Err: errInjectedRead}
	} else {
		err = read()
		if err == nil && injectCorrupt && corrupt != nil {
			corrupt()
		}
	}
	q.mu.Unlock()
	q.ios.Add(1)
	q.pages.Add(int64(pages))
	if injectErr {
		q.injected.Add(1)
	}
	if err == nil && injectCorrupt && corrupt != nil {
		q.injected.Add(1)
	}
	return err
}

// corruptPages flips one byte per page — the smallest corruption a
// checksum must catch.
func corruptPages(buf []byte, pageSize int) {
	for off := 0; off < len(buf); off += pageSize {
		buf[off] ^= 0xA5
	}
}

// breakerCheck reports whether the disk's breaker currently rejects
// reads; an open breaker past its cooldown lets one probe through.
func (ds *DiskSet) breakerCheck(disk int) bool {
	b := &ds.disks[disk].brk
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return false
	}
	if !b.probing && time.Since(b.openedAt) >= ds.policy().BreakerCooldown {
		b.probing = true // half-open: let this one read probe the disk
		return false
	}
	return true
}

// breakerOK records a successful read: it closes a probing breaker and
// resets the strike count.
func (ds *DiskSet) breakerOK(disk int) {
	b := &ds.disks[disk].brk
	b.mu.Lock()
	b.strikes = 0
	if b.open {
		b.open, b.probing = false, false
	}
	b.mu.Unlock()
}

// breakerStrike records an exhausted read (every retry failed); the
// configured number of consecutive strikes opens the breaker.
func (ds *DiskSet) breakerStrike(disk int, pol RetryPolicy) {
	q := &ds.disks[disk]
	b := &q.brk
	b.mu.Lock()
	if b.probing {
		// The half-open probe failed: re-open for another cooldown.
		b.probing = false
		b.openedAt = time.Now()
		b.mu.Unlock()
		return
	}
	b.strikes++
	if !b.open && b.strikes >= pol.BreakerThreshold {
		b.open = true
		b.openedAt = time.Now()
		q.trips.Add(1)
	}
	b.mu.Unlock()
}
