package storage

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/alloc"
	"repro/internal/bitmap"
	"repro/internal/frag"
	"repro/internal/schema"
)

const bitmapFileName = "bitmaps.dat"

// BitmapDesc identifies one stored bitmap, in the fixed enumeration order
// of the surviving bitmaps (Section 4.2). It is the shared frag.BitmapRef
// enumeration, so the on-disk file and the delta segments agree on what
// is stored and in which order.
type BitmapDesc = frag.BitmapRef

// BitmapFile stores the surviving bitmap fragments of a fragmented fact
// table, partitioned congruently with the fact fragments: all bitmap
// fragments of fragment i are stored together, each padded to whole pages
// (the paper's allocation unit). With Compress enabled, fragments are
// WAH-compressed before page padding (the space reduction the paper
// mentions in Section 3.2), which typically shrinks each fragment to its
// one-page minimum.
type BitmapFile struct {
	star     *schema.Star
	spec     *frag.Spec
	icfg     frag.IndexConfig
	pageSize int
	file     *os.File
	descs    []BitmapDesc
	// loc[fragID] is the first page of the fragment's bitmap block.
	loc    map[int64]int64
	rowsOf map[int64]int32
	// fragPages[fragID][i] is the page count of the i-th bitmap fragment
	// (all equal when uncompressed).
	fragPages  map[int64][]int32
	compressed bool
	layouts    []*bitmap.Layout
	skipBits   []int // per dim: number of eliminated leading bits (encoded)
	// ioDelay is an optional simulated disk access time (ns) added to
	// every physical read on the single implicit disk (see SetIODelay).
	// Atomic: read by N fragment workers while SetIODelay may store.
	ioDelay atomic.Int64
	// disks and placement decluster bitmap reads across per-disk
	// serialized queues when non-nil (see Decluster in disk.go).
	disks     *DiskSet
	placement alloc.Placement
	// pool, when non-nil, caches bitmap payload reads under poolEpoch
	// (see AttachPool on Store; the pool is shared with the fact store).
	pool      *BufPool
	poolEpoch int64
	// sums holds one CRC32C per bitmap-file page, indexed by absolute page
	// number — computed at build and verified on every physical read. The
	// bitmap file is always rebuilt alongside its store, so the table lives
	// in memory only.
	sums []uint32
}

// AttachPool routes this file's payload reads through a shared buffer
// pool, keying its entries under the given serving epoch. Must be called
// before queries run; a nil pool detaches.
func (bf *BitmapFile) AttachPool(p *BufPool, epoch int64) {
	bf.pool, bf.poolEpoch = p, epoch
}

// SetIODelay adds a simulated disk access time to every bitmap fragment
// read — the counterpart of Store.SetIODelay for the bitmap file. Zero
// (the default) disables it. Safe to call concurrently with running
// queries. On a declustered file the delay is applied to every disk of
// the shared set.
func (bf *BitmapFile) SetIODelay(d time.Duration) {
	if bf.disks != nil {
		bf.disks.SetIODelay(d)
		return
	}
	bf.ioDelay.Store(int64(d))
}

// survivors enumerates the surviving bitmaps of a fragmentation under an
// index configuration, in a deterministic order — the shared
// frag.Survivors enumeration.
func survivors(_ *schema.Star, spec *frag.Spec, icfg frag.IndexConfig) ([]BitmapDesc, []*bitmap.Layout, []int) {
	return frag.Survivors(spec, icfg)
}

// BuildBitmaps constructs and persists the surviving bitmap fragments for
// an already-built fact store, uncompressed.
func BuildBitmaps(dirPath string, s *Store, icfg frag.IndexConfig) (*BitmapFile, error) {
	return buildBitmaps(dirPath, s, icfg, false)
}

// BuildCompressedBitmaps is BuildBitmaps with WAH compression applied to
// every bitmap fragment before page padding.
func BuildCompressedBitmaps(dirPath string, s *Store, icfg frag.IndexConfig) (*BitmapFile, error) {
	return buildBitmaps(dirPath, s, icfg, true)
}

func buildBitmaps(dirPath string, s *Store, icfg frag.IndexConfig, compress bool) (*BitmapFile, error) {
	star := s.star
	if len(icfg) != len(star.Dims) {
		return nil, fmt.Errorf("storage: index config has %d entries for %d dimensions", len(icfg), len(star.Dims))
	}
	descs, layouts, skip := survivors(star, s.spec, icfg)
	bf := &BitmapFile{
		star:       star,
		spec:       s.spec,
		icfg:       icfg,
		pageSize:   s.pageSize,
		descs:      descs,
		loc:        make(map[int64]int64, len(s.order)),
		rowsOf:     make(map[int64]int32, len(s.order)),
		fragPages:  make(map[int64][]int32, len(s.order)),
		compressed: compress,
		layouts:    layouts,
		skipBits:   skip,
	}
	f, err := os.Create(filepath.Join(dirPath, bitmapFileName))
	if err != nil {
		return nil, err
	}
	bf.file = f

	var pageOff int64
	keysPerDim := make([][]int32, len(star.Dims))
	for _, id := range s.order {
		locFact := s.dir[id]
		rows := int(locFact.Rows)
		bf.loc[id] = pageOff
		bf.rowsOf[id] = locFact.Rows
		pagesOf := make([]int32, 0, len(descs))
		// Materialise the fragment's dimension keys.
		for d := range keysPerDim {
			keysPerDim[d] = keysPerDim[d][:0]
		}
		err := s.ScanFragment(id, func(tp Tuple) {
			for d := range tp.Keys {
				keysPerDim[d] = append(keysPerDim[d], int32(tp.Keys[d]))
			}
		})
		if err != nil {
			f.Close()
			return nil, err
		}
		// Build and write each surviving bitmap fragment, page-padded.
		for _, desc := range descs {
			bs := buildBitmapFragment(star, layouts, desc, keysPerDim[desc.Dim])
			var payload []byte
			if compress {
				payload = encodeCompressed(bitmap.Compress(bs))
			} else {
				payload = make([]byte, (rows+7)/8)
				packBits(bs, payload)
			}
			pages := (len(payload) + bf.pageSize - 1) / bf.pageSize
			if pages < 1 {
				pages = 1
			}
			buf := make([]byte, pages*bf.pageSize)
			copy(buf, payload)
			for p := 0; p < pages; p++ {
				bf.sums = append(bf.sums, pageCRC(buf[p*bf.pageSize:(p+1)*bf.pageSize]))
			}
			if _, err := f.Write(buf); err != nil {
				f.Close()
				return nil, fmt.Errorf("storage: writing bitmap pages of fragment %d: %w", id, err)
			}
			pagesOf = append(pagesOf, int32(pages))
			pageOff += int64(pages)
		}
		bf.fragPages[id] = pagesOf
	}
	return bf, nil
}

// encodeCompressed serialises a WAH bitmap: uint32 bit length, uint32 word
// count, then the words, little endian.
func encodeCompressed(c *bitmap.Compressed) []byte {
	words := c.Words()
	out := make([]byte, 8+8*len(words))
	putU32(out, uint32(c.Len()))
	putU32(out[4:], uint32(len(words)))
	for i, w := range words {
		putU64(out[8+8*i:], w)
	}
	return out
}

// decodeCompressedInto deserialises a WAH bitmap into dst, reusing its
// word storage.
func decodeCompressedInto(dst *bitmap.Compressed, buf []byte) {
	n := int(getU32(buf))
	k := int(getU32(buf[4:]))
	words := dst.ResetWords(n, k)
	for i := range words {
		words[i] = getU64(buf[8+8*i:])
	}
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}
func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
func putU64(b []byte, v uint64) {
	putU32(b, uint32(v))
	putU32(b[4:], uint32(v>>32))
}
func getU64(b []byte) uint64 {
	return uint64(getU32(b)) | uint64(getU32(b[4:]))<<32
}

// buildBitmapFragment computes one bitmap over the fragment's rows.
func buildBitmapFragment(star *schema.Star, layouts []*bitmap.Layout, desc BitmapDesc, keys []int32) *bitmap.Bitset {
	dim := &star.Dims[desc.Dim]
	bs := bitmap.New(len(keys))
	if desc.Simple {
		for i, k := range keys {
			if dim.Ancestor(dim.Leaf(), int(k), desc.Level) == desc.Member {
				bs.Set(i)
			}
		}
		return bs
	}
	l := layouts[desc.Dim]
	shift := uint(l.TotalBits() - 1 - desc.Bit)
	for i, k := range keys {
		if l.Encode(int(k))>>shift&1 == 1 {
			bs.Set(i)
		}
	}
	return bs
}

// packBits serialises a bitset into buf, 8 rows per byte, LSB first.
func packBits(bs *bitmap.Bitset, buf []byte) {
	bs.ForEach(func(i int) {
		buf[i/8] |= 1 << uint(i%8)
	})
}

// unpackBitsInto deserialises n bits from buf into bs, reusing its
// storage, 8 bits per byte byte-wise rather than bit probing.
func unpackBitsInto(bs *bitmap.Bitset, buf []byte, n int) {
	bs.Reinit(n)
	nb := (n + 7) / 8
	for i := 0; i < nb; i++ {
		if b := buf[i]; b != 0 {
			bs.OrByte(i*8, b)
		}
	}
}

// NumBitmaps returns the number of surviving bitmaps stored per fragment.
func (bf *BitmapFile) NumBitmaps() int { return len(bf.descs) }

// Descs returns the stored bitmap enumeration.
func (bf *BitmapFile) Descs() []BitmapDesc { return bf.descs }

// descIndex locates a descriptor's position in the enumeration.
func (bf *BitmapFile) descIndex(want BitmapDesc) int {
	for i, d := range bf.descs {
		if d == want {
			return i
		}
	}
	return -1
}

// Compressed reports whether the file stores WAH-compressed fragments.
func (bf *BitmapFile) Compressed() bool { return bf.compressed }

// TotalPages returns the total stored bitmap pages — the quantity WAH
// compression reduces.
func (bf *BitmapFile) TotalPages() int64 {
	var t int64
	for _, pagesOf := range bf.fragPages {
		for _, p := range pagesOf {
			t += int64(p)
		}
	}
	return t
}

// readPayload reads the raw page-padded payload of bitmap di of the
// fragment, consulting the buffer pool first when one is attached. data
// is the payload to decode from; scratch is the caller's reusable buffer
// (grown when the unpooled read needed more room — store it back). When
// ent is non-nil the data is pool-resident and pinned: the caller must
// ent.Unpin() after decoding (the decode copies, so the pin is short).
// Pool hit/miss accounting folds into st when non-nil.
func (bf *BitmapFile) readPayload(ctx context.Context, buf []byte, fragID int64, di int, st *IOStats) (data, scratch []byte, pages int, ent *PoolEntry, err error) {
	base, ok := bf.loc[fragID]
	if !ok {
		return nil, buf, 0, nil, fmt.Errorf("storage: fragment %d has no bitmaps", fragID)
	}
	pagesOf := bf.fragPages[fragID]
	off := base
	for i := 0; i < di; i++ {
		off += int64(pagesOf[i])
	}
	pages = int(pagesOf[di])
	n := pages * bf.pageSize

	if bf.pool != nil {
		key := PoolKey{Epoch: bf.poolEpoch, File: PoolBitmap, Frag: fragID, Off: int32(di), Len: int32(pages)}
		if e := bf.pool.Get(key); e != nil {
			if bf.disks != nil {
				bf.disks.notePoolHit(bf.placement.BitmapDisk(fragID, di), pages)
			}
			if st != nil {
				st.PoolHits++
				st.PoolBytes += int64(n)
			}
			return e.Data(), buf, pages, e, nil
		}
		if st != nil {
			st.PoolMisses++
		}
		// Miss: read into a fresh buffer the pool can own.
		fresh := make([]byte, n)
		if err := bf.readPayloadAt(ctx, fresh, off, fragID, di, pages); err != nil {
			return nil, buf, 0, nil, err
		}
		if e := bf.pool.Add(key, fresh); e != nil {
			return e.Data(), buf, pages, e, nil
		}
		return fresh, buf, pages, nil, nil // pool rejected: serve privately
	}

	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if err := bf.readPayloadAt(ctx, buf, off, fragID, di, pages); err != nil {
		return nil, buf, 0, nil, err
	}
	return buf, buf, pages, nil, nil
}

// readPayloadAt performs the physical read of a payload into dst — one
// I/O through the disk queue (or the implicit single disk's delay),
// retried per the disk set's retry policy and verified against the
// per-page checksum table (see fault.go).
func (bf *BitmapFile) readPayloadAt(ctx context.Context, dst []byte, off int64, fragID int64, di, pages int) error {
	byteOff := off * int64(bf.pageSize)
	read := func() error {
		if bf.disks == nil {
			if d := bf.ioDelay.Load(); d > 0 {
				time.Sleep(time.Duration(d))
			}
		}
		if _, err := bf.file.ReadAt(dst, byteOff); err != nil {
			return fmt.Errorf("storage: reading bitmap %d of fragment %d at offset %d: %w", di, fragID, byteOff, err)
		}
		return nil
	}
	var verify func() error
	if bf.sums != nil {
		verify = func() error {
			for i := 0; i < pages; i++ {
				page := dst[i*bf.pageSize : (i+1)*bf.pageSize]
				want := bf.sums[off+int64(i)]
				if got := pageCRC(page); got != want {
					return &FaultError{
						File: "bitmaps", Frag: fragID, Offset: byteOff + int64(i*bf.pageSize), Kind: FaultChecksum,
						Err: fmt.Errorf("page %d crc32c %08x != stored %08x", off+int64(i), got, want),
					}
				}
			}
			return nil
		}
	}
	site := faultSite{file: "bitmaps", frag: fragID, off: byteOff}
	disk := 0
	if bf.disks != nil {
		disk = bf.placement.BitmapDisk(fragID, di)
	}
	corrupt := func() { corruptPages(dst, bf.pageSize) }
	return retryRead(ctx, bf.disks, disk, pages, site, read, corrupt, verify)
}

// ReadBitmapFragment reads (one physical I/O per page run) the bitmap
// fragment identified by desc for the given fact fragment. It returns the
// bitset and the number of pages read.
func (bf *BitmapFile) ReadBitmapFragment(fragID int64, desc BitmapDesc) (*bitmap.Bitset, int, error) {
	bs, _, pages, err := bf.readBitmapInto(context.Background(), nil, nil, fragID, desc, nil)
	return bs, pages, err
}

// readBitmapInto is ReadBitmapFragment decoding into dst (allocated when
// nil) with buf as the reusable page buffer and st receiving the pool
// accounting (nil allowed). It returns the bitset, the grown page buffer
// and the page count. Pool pins are released before returning — the
// decode copies the payload into dst.
func (bf *BitmapFile) readBitmapInto(ctx context.Context, dst *bitmap.Bitset, buf []byte, fragID int64, desc BitmapDesc, st *IOStats) (*bitmap.Bitset, []byte, int, error) {
	di := bf.descIndex(desc)
	if di < 0 {
		return nil, buf, 0, fmt.Errorf("storage: bitmap %+v not stored (eliminated by the fragmentation?)", desc)
	}
	data, buf, pages, ent, err := bf.readPayload(ctx, buf, fragID, di, st)
	if err != nil {
		return nil, buf, 0, err
	}
	if dst == nil {
		dst = bitmap.New(0)
	}
	if bf.compressed {
		var c bitmap.Compressed
		decodeCompressedInto(&c, data)
		dst = c.DecompressInto(dst)
	} else {
		unpackBitsInto(dst, data, int(bf.rowsOf[fragID]))
	}
	if ent != nil {
		ent.Unpin()
	}
	return dst, buf, pages, nil
}

// ReadCompressedFragment reads the bitmap fragment identified by desc and
// returns its on-page WAH words directly, without decompressing — the
// entry point of the compressed execution fast path. The file must have
// been built with compression.
func (bf *BitmapFile) ReadCompressedFragment(fragID int64, desc BitmapDesc) (*bitmap.Compressed, int, error) {
	c, _, pages, err := bf.readCompressedInto(context.Background(), nil, nil, fragID, desc, nil)
	return c, pages, err
}

// readCompressedInto is ReadCompressedFragment decoding into dst
// (allocated when nil) with buf as the reusable page buffer and st
// receiving the pool accounting (nil allowed). Pool pins are released
// before returning — the decode copies the words into dst.
func (bf *BitmapFile) readCompressedInto(ctx context.Context, dst *bitmap.Compressed, buf []byte, fragID int64, desc BitmapDesc, st *IOStats) (*bitmap.Compressed, []byte, int, error) {
	if !bf.compressed {
		return nil, buf, 0, fmt.Errorf("storage: bitmap file is not compressed")
	}
	di := bf.descIndex(desc)
	if di < 0 {
		return nil, buf, 0, fmt.Errorf("storage: bitmap %+v not stored (eliminated by the fragmentation?)", desc)
	}
	data, buf, pages, ent, err := bf.readPayload(ctx, buf, fragID, di, st)
	if err != nil {
		return nil, buf, 0, err
	}
	if dst == nil {
		dst = &bitmap.Compressed{}
	}
	decodeCompressedInto(dst, data)
	if ent != nil {
		ent.Unpin()
	}
	return dst, buf, pages, nil
}

// Close releases the underlying file.
func (bf *BitmapFile) Close() error { return bf.file.Close() }
