package storage

import "sync"

// Compactor is the background compaction driver: one goroutine that runs
// the supplied function whenever triggered. Triggers are level, not
// edge — any number of Trigger calls while a run is in flight coalesce
// into exactly one follow-up run, so admission paths can fire it on
// every append without ever blocking or queueing unbounded work.
type Compactor struct {
	trigger chan struct{}
	done    chan struct{}
	once    sync.Once
}

// NewCompactor starts the compaction goroutine over run. The function is
// never invoked concurrently with itself.
func NewCompactor(run func()) *Compactor {
	c := &Compactor{
		trigger: make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	go func() {
		defer close(c.done)
		for range c.trigger {
			run()
		}
	}()
	return c
}

// Trigger requests a compaction run. It never blocks: if a run is
// already pending or in flight, the request coalesces into it.
func (c *Compactor) Trigger() {
	select {
	case c.trigger <- struct{}{}:
	default:
	}
}

// Close stops the compactor after draining any pending trigger: a run
// already requested still executes before Close returns. Safe to call
// more than once.
func (c *Compactor) Close() {
	c.once.Do(func() { close(c.trigger) })
	<-c.done
}
