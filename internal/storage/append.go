package storage

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/alloc"
	"repro/internal/frag"
	"repro/internal/schema"
)

const deltaFileName = "delta.dat"

// DeltaLog persists sealed delta segments: every appended fact row is
// written as an on-disk tuple (the same uint16-keys + three-uint32
// format as the fact file) into delta.dat, page-padded per segment, so
// an append is durable in the store's own layout before it is published
// to readers. When the warehouse is declustered the write is routed
// through the segment's placement-mapped disk queue — appends contend
// with query reads for the same virtual disks, as real ingestion would.
//
// The log is an arrival-ordered journal, not a random-access store:
// queries serve delta rows from the in-memory segments, and compaction
// folds the logged rows into a fresh declustered store then Resets the
// log. Reset truncates; Stats reports what is currently logged.
type DeltaLog struct {
	star      *schema.Star
	pageSize  int
	tupleSize int

	mu        sync.Mutex
	file      *os.File
	pageOff   int64
	segs      int64
	rows      int64
	disks     *DiskSet
	placement alloc.Placement
}

// DeltaLogStats reports what the log currently holds.
type DeltaLogStats struct {
	Segments int64
	Rows     int64
	Pages    int64
}

// OpenDeltaLog creates (truncating) the delta journal in dir.
func OpenDeltaLog(dir string, star *schema.Star) (*DeltaLog, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.Create(filepath.Join(dir, deltaFileName))
	if err != nil {
		return nil, err
	}
	return &DeltaLog{
		star:      star,
		pageSize:  star.PageSize,
		tupleSize: TupleSize(star),
		file:      f,
	}, nil
}

// Attach routes subsequent segment writes through the disk set's
// serialized per-disk queues (each segment to its fragment's fact disk).
// A nil set restores direct writes.
func (l *DeltaLog) Attach(ds *DiskSet, p alloc.Placement) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.disks, l.placement = ds, p
}

// AppendSegment journals one sealed segment: its rows are encoded as
// fact tuples, padded to whole pages, and written at the log's tail.
func (l *DeltaLog) AppendSegment(seg *frag.DeltaSegment) error {
	tpp := l.pageSize / l.tupleSize
	rows := seg.Rows()
	pages := (rows + tpp - 1) / tpp
	buf := make([]byte, pages*l.pageSize)
	units, dollars, costs := seg.Units(), seg.Dollars(), seg.Costs()
	ndims := len(l.star.Dims)
	for i := 0; i < rows; i++ {
		off := (i/tpp)*l.pageSize + (i%tpp)*l.tupleSize
		for d := 0; d < ndims; d++ {
			binary.LittleEndian.PutUint16(buf[off:], uint16(seg.Leaves(d)[i]))
			off += 2
		}
		binary.LittleEndian.PutUint32(buf[off:], uint32(units[i]))
		binary.LittleEndian.PutUint32(buf[off+4:], uint32(dollars[i]))
		binary.LittleEndian.PutUint32(buf[off+8:], uint32(costs[i]))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	write := func() error {
		_, err := l.file.WriteAt(buf, l.pageOff*int64(l.pageSize))
		return err
	}
	var err error
	if l.disks != nil {
		err = l.disks.do(l.placement.FactDisk(seg.Frag()), pages, write)
	} else {
		err = write()
	}
	if err != nil {
		return err
	}
	l.pageOff += int64(pages)
	l.segs++
	l.rows += int64(rows)
	return nil
}

// Reset truncates the journal after compaction folded its rows into the
// base store, then re-journals the still-live segments (those sealed
// after the compaction boundary).
func (l *DeltaLog) Reset(live []*frag.DeltaSegment) error {
	l.mu.Lock()
	if err := l.file.Truncate(0); err != nil {
		l.mu.Unlock()
		return err
	}
	l.pageOff, l.segs, l.rows = 0, 0, 0
	l.mu.Unlock()
	for _, seg := range live {
		if err := l.AppendSegment(seg); err != nil {
			return err
		}
	}
	return nil
}

// Stats snapshots the journal's content counters.
func (l *DeltaLog) Stats() DeltaLogStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return DeltaLogStats{Segments: l.segs, Rows: l.rows, Pages: l.pageOff}
}

// Close releases the journal file.
func (l *DeltaLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.file.Close()
}
