package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/alloc"
	"repro/internal/frag"
	"repro/internal/schema"
)

const (
	deltaFileName = "delta.dat"
	// recMagic opens every journal record ("MDLG").
	recMagic = 0x4d444c47
	// recHeaderSize is the fixed record header: magic u32, rows u32,
	// seq u64, frag i64, payloadLen u32, crc u32 (CRC32C over the first 28
	// header bytes and the payload), little endian.
	recHeaderSize = 32
	// recFlagReplace, set in the rows field's top bit, marks a record that
	// supersedes its fragment's previous tail record (tail-segment
	// coalescing re-journals the whole extended segment): replay must
	// replace the tail, not append, or the extended rows double-count.
	recFlagReplace = 1 << 31
)

// DeltaLog persists sealed delta segments as a crash-recoverable
// journal: every appended fact row is written inside a checksummed,
// length-prefixed record, so an Append that returned nil survives a
// crash — OpenDeltaLog replays intact records and truncates a torn tail
// (a record cut short by the crash, detected by its length prefix or
// CRC32C). Rows are encoded in the store's own tuple format (uint16 keys
// + three uint32 measures). When the warehouse is declustered the write
// is routed through the segment's placement-mapped disk queue — appends
// contend with query reads for the same virtual disks, as real ingestion
// would.
//
// The log is an arrival-ordered journal, not a random-access store:
// queries serve delta rows from the in-memory segments, and compaction
// folds the logged rows into a fresh declustered store then Resets the
// log. Reset truncates; Stats reports what is currently logged.
type DeltaLog struct {
	star      *schema.Star
	pageSize  int
	tupleSize int

	mu        sync.Mutex
	file      *os.File
	byteOff   int64
	segs      int64
	rows      int64
	disks     *DiskSet
	placement alloc.Placement
}

// DeltaLogStats reports what the log currently holds.
type DeltaLogStats struct {
	Segments int64
	Rows     int64
	Bytes    int64
}

// DeltaRecord is one replayed journal record: the sealed segment's
// fragment, sequence number and decoded rows, in append order.
type DeltaRecord struct {
	Frag int64
	Seq  uint64
	// Replace marks a coalescing record that supersedes the fragment's
	// previous tail record (see AppendSegment).
	Replace bool
	// Leaves[d][i] is row i's leaf member on dimension d.
	Leaves  [][]int32
	Units   []int64
	Dollars []int64
	Costs   []int64
}

// Rows returns the record's row count.
func (r *DeltaRecord) Rows() int { return len(r.Units) }

// OpenDeltaLog opens (creating if needed) the delta journal in dir and
// replays it: every intact record is decoded and returned in append
// order, and a torn tail — a record cut short by a crash mid-write, or
// one whose checksum does not match — is truncated away. Records after a
// torn record are dropped too: the journal is strictly arrival-ordered,
// so nothing after the first tear can be trusted to have been acked.
func OpenDeltaLog(dir string, star *schema.Star) (*DeltaLog, []DeltaRecord, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, deltaFileName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	l := &DeltaLog{
		star:      star,
		pageSize:  star.PageSize,
		tupleSize: TupleSize(star),
		file:      f,
	}
	recs, tail, err := l.replay()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if err := f.Truncate(tail); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("storage: truncating delta journal torn tail at %d: %w", tail, err)
	}
	l.byteOff = tail
	l.segs = int64(len(recs))
	for i := range recs {
		l.rows += int64(recs[i].Rows())
	}
	return l, recs, nil
}

// replay scans the journal from the start, decoding intact records and
// returning the byte offset of the first tear (== file size when clean).
func (l *DeltaLog) replay() ([]DeltaRecord, int64, error) {
	size, err := l.file.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, 0, err
	}
	var recs []DeltaRecord
	var off int64
	hdr := make([]byte, recHeaderSize)
	var payload []byte
	for off+recHeaderSize <= size {
		if _, err := l.file.ReadAt(hdr, off); err != nil {
			return nil, 0, fmt.Errorf("storage: reading delta journal header at %d: %w", off, err)
		}
		if binary.LittleEndian.Uint32(hdr) != recMagic {
			break // tear: garbage where a record should start
		}
		rowsField := binary.LittleEndian.Uint32(hdr[4:])
		replace := rowsField&recFlagReplace != 0
		rows := int(rowsField &^ recFlagReplace)
		seq := binary.LittleEndian.Uint64(hdr[8:])
		fragID := int64(binary.LittleEndian.Uint64(hdr[16:]))
		plen := int(binary.LittleEndian.Uint32(hdr[24:]))
		want := binary.LittleEndian.Uint32(hdr[28:])
		if plen != rows*l.tupleSize || off+recHeaderSize+int64(plen) > size {
			break // tear: impossible length or payload cut short
		}
		if cap(payload) < plen {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := l.file.ReadAt(payload, off+recHeaderSize); err != nil {
			return nil, 0, fmt.Errorf("storage: reading delta journal payload at %d: %w", off, err)
		}
		crc := crc32.Update(crc32.Checksum(hdr[:recHeaderSize-4], castagnoli), castagnoli, payload)
		if crc != want {
			break // tear: payload or header corrupted mid-write
		}
		rec := l.decodeRecord(fragID, seq, rows, payload)
		rec.Replace = replace
		recs = append(recs, rec)
		off += recHeaderSize + int64(plen)
	}
	return recs, off, nil
}

// decodeRecord decodes one record's rows out of its payload.
func (l *DeltaLog) decodeRecord(fragID int64, seq uint64, rows int, payload []byte) DeltaRecord {
	ndims := len(l.star.Dims)
	rec := DeltaRecord{
		Frag:    fragID,
		Seq:     seq,
		Leaves:  make([][]int32, ndims),
		Units:   make([]int64, rows),
		Dollars: make([]int64, rows),
		Costs:   make([]int64, rows),
	}
	for d := range rec.Leaves {
		rec.Leaves[d] = make([]int32, rows)
	}
	for i := 0; i < rows; i++ {
		off := i * l.tupleSize
		for d := 0; d < ndims; d++ {
			rec.Leaves[d][i] = int32(binary.LittleEndian.Uint16(payload[off:]))
			off += 2
		}
		rec.Units[i] = int64(int32(binary.LittleEndian.Uint32(payload[off:])))
		rec.Dollars[i] = int64(int32(binary.LittleEndian.Uint32(payload[off+4:])))
		rec.Costs[i] = int64(int32(binary.LittleEndian.Uint32(payload[off+8:])))
	}
	return rec
}

// Attach routes subsequent segment writes through the disk set's
// serialized per-disk queues (each segment to its fragment's fact disk).
// A nil set restores direct writes.
func (l *DeltaLog) Attach(ds *DiskSet, p alloc.Placement) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.disks, l.placement = ds, p
}

// AppendSegment journals one sealed segment as a checksummed record at
// the log's tail. When AppendSegment returns nil the record is fully
// written: a crash at any later point leaves it recoverable by replay.
// replaceTail marks a coalescing record: the segment extends (and its
// record supersedes) the fragment's previous tail record, which replay
// then replaces instead of appending.
func (l *DeltaLog) AppendSegment(seg *frag.DeltaSegment, replaceTail bool) error {
	rows := seg.Rows()
	plen := rows * l.tupleSize
	buf := make([]byte, recHeaderSize+plen)
	units, dollars, costs := seg.Units(), seg.Dollars(), seg.Costs()
	ndims := len(l.star.Dims)
	for i := 0; i < rows; i++ {
		off := recHeaderSize + i*l.tupleSize
		for d := 0; d < ndims; d++ {
			binary.LittleEndian.PutUint16(buf[off:], uint16(seg.Leaves(d)[i]))
			off += 2
		}
		binary.LittleEndian.PutUint32(buf[off:], uint32(units[i]))
		binary.LittleEndian.PutUint32(buf[off+4:], uint32(dollars[i]))
		binary.LittleEndian.PutUint32(buf[off+8:], uint32(costs[i]))
	}
	binary.LittleEndian.PutUint32(buf, recMagic)
	rowsField := uint32(rows)
	if replaceTail {
		rowsField |= recFlagReplace
	}
	binary.LittleEndian.PutUint32(buf[4:], rowsField)
	binary.LittleEndian.PutUint64(buf[8:], seg.Seq())
	binary.LittleEndian.PutUint64(buf[16:], uint64(seg.Frag()))
	binary.LittleEndian.PutUint32(buf[24:], uint32(plen))
	crc := crc32.Checksum(buf[:recHeaderSize-4], castagnoli)
	crc = crc32.Update(crc, castagnoli, buf[recHeaderSize:])
	binary.LittleEndian.PutUint32(buf[28:], crc)

	pages := (len(buf) + l.pageSize - 1) / l.pageSize
	l.mu.Lock()
	defer l.mu.Unlock()
	write := func() error {
		if _, err := l.file.WriteAt(buf, l.byteOff); err != nil {
			return fmt.Errorf("storage: journaling segment seq %d of fragment %d at offset %d: %w",
				seg.Seq(), seg.Frag(), l.byteOff, err)
		}
		return nil
	}
	var err error
	if l.disks != nil {
		err = l.disks.do(l.placement.FactDisk(seg.Frag()), pages, write)
	} else {
		err = write()
	}
	if err != nil {
		return err
	}
	l.byteOff += int64(len(buf))
	l.segs++
	l.rows += int64(rows)
	return nil
}

// Reset truncates the journal after compaction folded its rows into the
// base store, then re-journals the still-live segments (those sealed
// after the compaction boundary).
func (l *DeltaLog) Reset(live []*frag.DeltaSegment) error {
	l.mu.Lock()
	if err := l.file.Truncate(0); err != nil {
		l.mu.Unlock()
		return fmt.Errorf("storage: truncating delta journal: %w", err)
	}
	l.byteOff, l.segs, l.rows = 0, 0, 0
	l.mu.Unlock()
	for _, seg := range live {
		if err := l.AppendSegment(seg, false); err != nil {
			return err
		}
	}
	return nil
}

// Stats snapshots the journal's content counters.
func (l *DeltaLog) Stats() DeltaLogStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return DeltaLogStats{Segments: l.segs, Rows: l.rows, Bytes: l.byteOff}
}

// Close releases the journal file.
func (l *DeltaLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.file.Close()
}
