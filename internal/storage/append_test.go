package storage

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/alloc"
	"repro/internal/frag"
	"repro/internal/schema"
)

func sealSegments(t *testing.T, star *schema.Star, rowsPerSeg ...int) (*frag.DeltaIndex, []*frag.DeltaSegment) {
	t.Helper()
	spec := frag.MustParse(star, "time::month, product::group")
	ix, err := frag.NewDeltaIndex(spec, frag.APB1Indexes(star))
	if err != nil {
		t.Fatal(err)
	}
	var segs []*frag.DeltaSegment
	leaves := make([]int32, len(star.Dims))
	for si, n := range rowsPerSeg {
		sb := ix.NewSegment(int64(si) % spec.NumFragments())
		for i := 0; i < n; i++ {
			for d := range leaves {
				leaves[d] = int32((si + i) % int(star.Dims[d].LeafCard()))
			}
			sb.Add(leaves, int64(i), int64(2*i), int64(3*i))
		}
		segs = append(segs, sb.Seal(uint64(si+1)))
	}
	return ix, segs
}

func TestDeltaLogAppendAndReset(t *testing.T) {
	star := schema.Tiny()
	dir := t.TempDir()
	l, recovered, err := OpenDeltaLog(dir, star)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 0 {
		t.Fatalf("fresh journal recovered %d records", len(recovered))
	}
	defer l.Close()
	_, segs := sealSegments(t, star, 3, 70, 1)
	var wantRows, wantBytes int64
	for _, seg := range segs {
		if err := l.AppendSegment(seg, false); err != nil {
			t.Fatal(err)
		}
		wantRows += int64(seg.Rows())
		wantBytes += int64(recHeaderSize + seg.Rows()*TupleSize(star))
	}
	st := l.Stats()
	if st.Segments != int64(len(segs)) || st.Rows != wantRows || st.Bytes != wantBytes {
		t.Fatalf("stats = %+v, want {%d %d %d}", st, len(segs), wantRows, wantBytes)
	}
	fi, err := os.Stat(filepath.Join(dir, deltaFileName))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != wantBytes {
		t.Fatalf("file size %d, want %d", fi.Size(), wantBytes)
	}

	// Reset keeps only the still-live tail.
	if err := l.Reset(segs[2:]); err != nil {
		t.Fatal(err)
	}
	st = l.Stats()
	if st.Segments != 1 || st.Rows != int64(segs[2].Rows()) {
		t.Fatalf("after reset: stats = %+v", st)
	}
}

func TestDeltaLogRoutesThroughDisks(t *testing.T) {
	star := schema.Tiny()
	l, _, err := OpenDeltaLog(t.TempDir(), star)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	pl := alloc.Placement{Disks: 3, Scheme: alloc.RoundRobin}
	ds := NewDiskSet(pl.Disks)
	l.Attach(ds, pl)
	_, segs := sealSegments(t, star, 5, 5, 5)
	for _, seg := range segs {
		if err := l.AppendSegment(seg, false); err != nil {
			t.Fatal(err)
		}
	}
	var ios int64
	for d, st := range ds.Stats() {
		ios += st.IOs
		want := int64(0)
		for _, seg := range segs {
			if pl.FactDisk(seg.Frag()) == d {
				want++
			}
		}
		if st.IOs != want {
			t.Errorf("disk %d: %d IOs, want %d", d, st.IOs, want)
		}
	}
	if ios != int64(len(segs)) {
		t.Errorf("total IOs = %d, want %d", ios, len(segs))
	}
}

func TestCompactorCoalescesAndDrains(t *testing.T) {
	var mu sync.Mutex
	runs := 0
	started := make(chan struct{})
	release := make(chan struct{})
	c := NewCompactor(func() {
		mu.Lock()
		runs++
		first := runs == 1
		mu.Unlock()
		if first {
			close(started)
			<-release
		}
	})
	c.Trigger()
	<-started
	// While the first run is in flight, any number of triggers coalesce
	// into exactly one follow-up.
	for i := 0; i < 10; i++ {
		c.Trigger()
	}
	close(release)
	c.Close()
	mu.Lock()
	defer mu.Unlock()
	if runs != 2 {
		t.Fatalf("runs = %d, want 2 (first + one coalesced follow-up)", runs)
	}
	c.Close() // idempotent
}
