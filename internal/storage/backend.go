package storage

import (
	"errors"

	"repro/internal/alloc"
	"repro/internal/data"
	"repro/internal/exec"
	"repro/internal/frag"
)

// BackendConfig selects how BuildBackend assembles an on-disk backend.
type BackendConfig struct {
	// Compress stores the bitmap fragments WAH-compressed and executes on
	// the compressed words.
	Compress bool
	// Placement declusters the store and bitmap file over a fresh DiskSet
	// when Placement.Disks > 0 (single implicit disk otherwise).
	Placement alloc.Placement
	// PrefetchFact sets the executor's fact read granule in pages
	// (values below 1 keep the executor default).
	PrefetchFact int
	// Sched attaches the executor to a shared admission scheduler.
	Sched *exec.Scheduler
	// Pool, when non-nil, routes the store's granule reads and the bitmap
	// file's payload reads through a shared buffer pool, keyed under
	// PoolEpoch — the backend's serving epoch, so a compaction's epoch
	// swap invalidates the old backend's entries for free.
	Pool      *BufPool
	PoolEpoch int64
}

// Backend bundles one complete on-disk execution backend: the paged fact
// store, its bitmap file, the executor over both, and (when declustered)
// the disk set and placement. It is the unit the epoch-versioned
// warehouse builds, serves from, and retires as a whole — compaction
// builds a fresh Backend in a fresh directory and swaps it in while the
// old one stays readable for queries that pinned it.
type Backend struct {
	Store     *Store
	Bitmaps   *BitmapFile
	Exec      *Executor
	Disks     *DiskSet
	Placement alloc.Placement
}

// BuildBackend writes the fragmented fact table and its surviving bitmap
// fragments into dir and assembles the executor over them, optionally
// declustered. On error no files stay open: every component built before
// the failure is closed before returning (the directory itself is left to
// the caller, which owns its lifecycle).
func BuildBackend(dir string, t *data.Table, spec *frag.Spec, icfg frag.IndexConfig, cfg BackendConfig) (*Backend, error) {
	store, err := Build(dir, t, spec)
	if err != nil {
		return nil, err
	}
	var bf *BitmapFile
	if cfg.Compress {
		bf, err = BuildCompressedBitmaps(dir, store, icfg)
	} else {
		bf, err = BuildBitmaps(dir, store, icfg)
	}
	if err != nil {
		store.Close()
		return nil, err
	}
	b := &Backend{Store: store, Bitmaps: bf}
	if cfg.Placement.Disks > 0 {
		ds, err := Decluster(store, bf, cfg.Placement)
		if err != nil {
			store.Close()
			bf.Close()
			return nil, err
		}
		b.Disks, b.Placement = ds, cfg.Placement
	}
	if cfg.Pool != nil {
		store.AttachPool(cfg.Pool, cfg.PoolEpoch)
		bf.AttachPool(cfg.Pool, cfg.PoolEpoch)
	}
	ex := NewExecutor(store, bf)
	if cfg.PrefetchFact > 0 {
		ex.PrefetchFact = cfg.PrefetchFact
	}
	ex.Sched = cfg.Sched
	b.Exec = ex
	return b, nil
}

// Close releases the backend's files.
func (b *Backend) Close() error {
	var err error
	if b.Store != nil {
		err = errors.Join(err, b.Store.Close())
	}
	if b.Bitmaps != nil {
		err = errors.Join(err, b.Bitmaps.Close())
	}
	return err
}
