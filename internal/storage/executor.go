package storage

import (
	"context"
	"fmt"
	"math"

	"repro/internal/bitmap"
	"repro/internal/exec"
	"repro/internal/frag"
)

// IOStats counts the physical I/O a query execution performed — the
// observable counterpart of the paper's analytical Table 3.
type IOStats struct {
	FactPages   int64
	FactIOs     int64
	BitmapPages int64
	BitmapIOs   int64
	RowsRead    int64
}

func (st *IOStats) add(o IOStats) {
	st.FactPages += o.FactPages
	st.FactIOs += o.FactIOs
	st.BitmapPages += o.BitmapPages
	st.BitmapIOs += o.BitmapIOs
	st.RowsRead += o.RowsRead
}

// Aggregate is the star query result over the stored measures.
type Aggregate struct {
	Count       int64
	UnitsSold   int64
	DollarSales int64
	Cost        int64
}

func (a *Aggregate) add(o Aggregate) {
	a.Count += o.Count
	a.UnitsSold += o.UnitsSold
	a.DollarSales += o.DollarSales
	a.Cost += o.Cost
}

// Executor runs star queries against an on-disk store following the
// processing model of Section 4.3: determine the relevant fragments, read
// the required bitmap fragments, AND them, read the fact pages containing
// hits with prefetch granules, and aggregate. Fragments are processed in
// parallel by a pool of Workers goroutines standing in for the Shared
// Disk processing nodes; per-worker partial aggregates and IOStats merge
// in fragment allocation order, so results are identical at any worker
// count.
type Executor struct {
	store   *Store
	bitmaps *BitmapFile
	// PrefetchFact is the fact read granule in pages (default 8).
	PrefetchFact int
	// Workers is the number of parallel fragment workers; values below 1
	// (the default) mean one worker per available CPU.
	Workers int
}

// NewExecutor pairs a fact store with its bitmap file.
func NewExecutor(store *Store, bitmaps *BitmapFile) *Executor {
	return &Executor{store: store, bitmaps: bitmaps, PrefetchFact: 8}
}

// partial is one fragment's contribution to a query result.
type partial struct {
	agg Aggregate
	st  IOStats
}

// Execute runs the query and returns the aggregate plus physical I/O
// statistics.
func (e *Executor) Execute(q frag.Query) (Aggregate, IOStats, error) {
	return e.ExecuteContext(context.Background(), q)
}

// ExecuteContext is Execute with cancellation: scattering the relevant
// fragments over the worker pool stops early when ctx is cancelled or any
// fragment fails.
func (e *Executor) ExecuteContext(ctx context.Context, q frag.Query) (Aggregate, IOStats, error) {
	star := e.store.star
	spec := e.store.spec
	if err := q.Validate(star); err != nil {
		return Aggregate{}, IOStats{}, err
	}
	ids := spec.FragmentIDs(q)
	res, err := exec.Reduce(ctx, e.Workers, len(ids),
		func(i int) (partial, error) {
			var p partial
			if err := e.processFragment(ids[i], q, &p.agg, &p.st); err != nil {
				return partial{}, err
			}
			return p, nil
		},
		func(acc *partial, p partial) {
			acc.agg.add(p.agg)
			acc.st.add(p.st)
		})
	if err != nil {
		return Aggregate{}, IOStats{}, err
	}
	return res.agg, res.st, nil
}

// processFragment evaluates the query within one fragment.
func (e *Executor) processFragment(id int64, q frag.Query, agg *Aggregate, st *IOStats) error {
	loc, ok := e.store.Loc(id)
	if !ok {
		return nil // no rows at this density
	}
	spec := e.store.spec

	// Step 2 (Section 4.3): bitmap access for the predicates that need it.
	var hits *bitmap.Bitset
	for _, p := range q {
		if !spec.NeedsBitmap(p) {
			continue
		}
		sel, pages, err := e.selectPred(id, p, st)
		if err != nil {
			return err
		}
		st.BitmapPages += int64(pages)
		if hits == nil {
			hits = sel
		} else {
			hits.And(sel)
		}
	}

	if hits == nil {
		// IOC1: every page of the fragment is read with full prefetch.
		return e.scanWhole(id, loc, agg, st)
	}
	return e.readHits(id, loc, hits, agg, st)
}

// selectPred evaluates one predicate via the stored bitmap fragments.
func (e *Executor) selectPred(id int64, p frag.Pred, st *IOStats) (*bitmap.Bitset, int, error) {
	star := e.store.star
	dim := &star.Dims[p.Dim]
	if e.bitmaps.icfg[p.Dim].Kind == frag.SimpleIndexes {
		bs, pages, err := e.bitmaps.ReadBitmapFragment(id, BitmapDesc{Dim: p.Dim, Level: p.Level, Member: p.Member, Simple: true})
		st.BitmapIOs++
		return bs, pages, err
	}
	// Encoded: AND the bit-position bitmaps in (skip, prefix(level)],
	// taking each verbatim or complemented per the member's pattern.
	layout := e.bitmaps.layouts[p.Dim]
	skip := e.bitmaps.skipBits[p.Dim]
	hi := layout.PrefixBits(p.Level)
	if hi <= skip {
		// The fragmentation already fixes this level: all rows match by
		// fragment confinement (should not happen when NeedsBitmap holds).
		return nil, 0, fmt.Errorf("storage: predicate on %s.%s needs no bitmaps", dim.Name, dim.Levels[p.Level].Name)
	}
	pattern := layout.EncodePrefix(p.Level, p.Member)
	var out *bitmap.Bitset
	pagesTotal := 0
	for b := skip; b < hi; b++ {
		bs, pages, err := e.bitmaps.ReadBitmapFragment(id, BitmapDesc{Dim: p.Dim, Bit: b})
		if err != nil {
			return nil, pagesTotal, err
		}
		st.BitmapIOs++
		pagesTotal += pages
		if pattern>>uint(hi-1-b)&1 == 0 {
			bs.Not()
		}
		if out == nil {
			out = bs
		} else {
			out.And(bs)
		}
	}
	return out, pagesTotal, nil
}

// scanWhole aggregates every tuple of the fragment, reading it in
// prefetch-granule runs.
func (e *Executor) scanWhole(id int64, loc FragLoc, agg *Aggregate, st *IOStats) error {
	tpp := TuplesPerPage(e.store.star)
	keys := make([]uint16, len(e.store.star.Dims))
	remaining := int(loc.Rows)
	for start := 0; start < int(loc.Pages); start += e.PrefetchFact {
		count := e.PrefetchFact
		if start+count > int(loc.Pages) {
			count = int(loc.Pages) - start
		}
		buf, err := e.store.ReadPages(id, start, count)
		if err != nil {
			return err
		}
		st.FactIOs++
		st.FactPages += int64(count)
		for p := 0; p < count; p++ {
			n := tpp
			if remaining < n {
				n = remaining
			}
			off := p * e.store.pageSize
			for i := 0; i < n; i++ {
				var tp Tuple
				tp, off = e.store.decodeTuple(buf, off, keys)
				addTuple(agg, tp)
				st.RowsRead++
			}
			remaining -= n
		}
	}
	return nil
}

// readHits reads only the prefetch granules containing hit rows.
func (e *Executor) readHits(id int64, loc FragLoc, hits *bitmap.Bitset, agg *Aggregate, st *IOStats) error {
	tpp := TuplesPerPage(e.store.star)
	keys := make([]uint16, len(e.store.star.Dims))
	g := e.PrefetchFact
	granules := int(math.Ceil(float64(loc.Pages) / float64(g)))
	for gi := 0; gi < granules; gi++ {
		rowLo := gi * g * tpp
		rowHi := rowLo + g*tpp
		if rowHi > int(loc.Rows) {
			rowHi = int(loc.Rows)
		}
		// Skip granules without hits (the prefetch-efficiency effect of
		// Section 4.5).
		first := hits.NextSet(rowLo)
		if first < 0 || first >= rowHi {
			continue
		}
		start := gi * g
		count := g
		if start+count > int(loc.Pages) {
			count = int(loc.Pages) - start
		}
		buf, err := e.store.ReadPages(id, start, count)
		if err != nil {
			return err
		}
		st.FactIOs++
		st.FactPages += int64(count)
		for r := first; r >= 0 && r < rowHi; r = hits.NextSet(r + 1) {
			pageIn := r/tpp - start
			off := pageIn*e.store.pageSize + (r%tpp)*e.store.tupleSize
			tp, _ := e.store.decodeTuple(buf, off, keys)
			addTuple(agg, tp)
			st.RowsRead++
		}
	}
	return nil
}

func addTuple(agg *Aggregate, tp Tuple) {
	agg.Count++
	agg.UnitsSold += int64(tp.UnitsSold)
	agg.DollarSales += int64(tp.DollarSales)
	agg.Cost += int64(tp.Cost)
}
