package storage

import (
	"context"
	"fmt"
	"math"

	"repro/internal/bitmap"
	"repro/internal/exec"
	"repro/internal/frag"
	"repro/internal/kernel"
)

// IOStats counts the physical I/O a query execution performed — the
// observable counterpart of the paper's analytical Table 3.
type IOStats struct {
	FactPages   int64
	FactIOs     int64
	BitmapPages int64
	BitmapIOs   int64
	RowsRead    int64
	// DeltaRows counts appended (not yet compacted) rows aggregated from
	// in-memory delta segments — rows served without any physical I/O.
	DeltaRows int64
	// PoolHits/PoolMisses/PoolBytes record how the buffer pool served the
	// logical reads above: hits cost no physical I/O (the Fact*/Bitmap*
	// counters stay logical — what the query asked for — while the DiskSet
	// counters stay physical — what actually reached a disk). PoolBytes is
	// the bytes served from the pool. All zero without a pool.
	PoolHits   int64
	PoolMisses int64
	PoolBytes  int64
}

// Add folds another execution's counters in.
func (st *IOStats) Add(o IOStats) {
	st.FactPages += o.FactPages
	st.FactIOs += o.FactIOs
	st.BitmapPages += o.BitmapPages
	st.BitmapIOs += o.BitmapIOs
	st.RowsRead += o.RowsRead
	st.DeltaRows += o.DeltaRows
	st.PoolHits += o.PoolHits
	st.PoolMisses += o.PoolMisses
	st.PoolBytes += o.PoolBytes
}

// Aggregate is the star query result over the stored measures — the
// shared kernel aggregate, so on-disk results are structurally identical
// to the in-memory engine's.
type Aggregate = kernel.Aggregate

// Executor runs star queries against an on-disk store following the
// processing model of Section 4.3: determine the relevant fragments, read
// the required bitmap fragments, AND them, read the fact pages containing
// hits with prefetch granules, and aggregate. Fragments are processed in
// parallel by a pool of Workers goroutines standing in for the Shared
// Disk processing nodes; per-worker partial aggregates and IOStats merge
// in fragment allocation order, so results are identical at any worker
// count.
type Executor struct {
	store   *Store
	bitmaps *BitmapFile
	// PrefetchFact is the fact read granule in pages (default 8).
	PrefetchFact int
	// Workers is the number of parallel fragment workers; values below 1
	// (the default) mean one worker per available CPU. Ignored when Sched
	// is set.
	Workers int
	// Sched, when non-nil, dispatches fragment tasks through a shared
	// admission scheduler instead of a private per-query worker set, so
	// concurrent Execute calls — from this executor or any other attached
	// to the same scheduler — multiplex onto one fixed pool (and one
	// DiskSet when declustered). Results stay identical to the private
	// pool at any admission mix.
	Sched *exec.Scheduler
	// AsyncPrefetch overlaps fact I/O with aggregation: the next granule
	// read is issued while the current granule is being unpacked and
	// aggregated (see prefetch.go). On by default via NewExecutor;
	// results are identical either way.
	AsyncPrefetch bool
}

// NewExecutor pairs a fact store with its bitmap file.
func NewExecutor(store *Store, bitmaps *BitmapFile) *Executor {
	return &Executor{store: store, bitmaps: bitmaps, PrefetchFact: 8, AsyncPrefetch: true}
}

// partial is one fragment's contribution to a query result.
type partial struct {
	fp kernel.FragPartial
	st IOStats
}

// acc is a query's running result: the task-ordered fold of the
// fragments' partials.
type acc struct {
	agg Aggregate
	g   *kernel.Grouped
	st  IOStats
}

// tupleAcc accumulates one fragment's decoded tuples: the grand total
// plus, on the per-row grouping fallback, the fragment-local group map.
// The tuple's dimension keys carry the leaf members, so per-row grouping
// needs no extra I/O — only the key arithmetic and map update.
type tupleAcc struct {
	agg    *kernel.Aggregate
	st     *IOStats
	g      *kernel.Grouped
	base   uint64
	perRow []kernel.RowLevel
}

func (a *tupleAcc) add(tp Tuple) {
	a.agg.AddRow(int64(tp.UnitsSold), int64(tp.DollarSales), int64(tp.Cost))
	a.st.RowsRead++
	if a.g != nil {
		key := a.base
		for _, rl := range a.perRow {
			key += uint64(int64(tp.Keys[rl.Dim])/rl.Div) * rl.Weight
		}
		a.g.AddRow(key, int64(tp.UnitsSold), int64(tp.DollarSales), int64(tp.Cost))
	}
}

// execScratch is the per-worker buffer set threaded through internal/exec.
// All slices and bitsets grow to the working-set size of the first
// fragments a worker touches and are reused for every later one, making
// the fragment hot loop allocation-free once warm.
type execScratch struct {
	keys []uint16 // decodeTuple key buffer
	page []byte   // fact prefetch-granule buffer
	bbuf []byte   // bitmap page buffer

	// Materialised path.
	hits *bitmap.Bitset // running AND of predicate selections
	sel  *bitmap.Bitset // current bitmap fragment read

	// Compressed fast path.
	cpool      []*bitmap.Compressed // operand bitmaps, reused across fragments
	pos, neg   []*bitmap.Compressed // verbatim / complemented operand views
	cres, ctmp *bitmap.Compressed   // AndAll / AndNot ping-pong results

	// Async prefetch pipeline (see prefetch.go).
	gran   []granule     // the fragment's granule read list
	gpipe  granulePipe   // in-flight pipeline state
	free   chan []byte   // empty pipeline buffers (capacity 2, unpooled)
	tok    chan struct{} // read-ahead tokens (capacity 2, pooled)
	filled chan gread    // completed granule reads

	dsc *frag.DeltaScratch // delta segment selection buffers (lazy)
}

func (e *Executor) newScratch() *execScratch {
	return &execScratch{
		keys: make([]uint16, len(e.store.star.Dims)),
		hits: bitmap.New(0),
		sel:  bitmap.New(0),
		cres: &bitmap.Compressed{},
		ctmp: &bitmap.Compressed{},
	}
}

// operand returns the i-th pooled compressed bitmap, growing the pool on
// first use.
func (sc *execScratch) operand(i int) *bitmap.Compressed {
	for len(sc.cpool) <= i {
		sc.cpool = append(sc.cpool, &bitmap.Compressed{})
	}
	return sc.cpool[i]
}

// Execute runs the query and returns the grand-total aggregate plus
// physical I/O statistics (any GroupBy on the query is ignored — use
// ExecuteGrouped).
func (e *Executor) Execute(q frag.Query) (Aggregate, IOStats, error) {
	return e.ExecuteContext(context.Background(), q)
}

// ExecuteContext is Execute with cancellation: scattering the relevant
// fragments over the worker pool stops early when ctx is cancelled or any
// fragment fails. On a declustered store the scatter is disk-aware:
// fragment tasks dispatch through per-disk queues keyed by the placement
// (with work stealing), so concurrent fragment reads spread over the
// disks instead of convoying on one queue. Results are identical at any
// worker and disk count.
func (e *Executor) ExecuteContext(ctx context.Context, q frag.Query) (Aggregate, IOStats, error) {
	q.GroupBy = nil // grouping never changes the grand total
	res, st, err := e.ExecuteGrouped(ctx, q)
	return res.Aggregate, st, err
}

// ExecuteGrouped is ExecuteContext returning the full result: the grand
// total plus, when the query has a GroupBy, the per-group rows in the
// deterministic kernel order. On the fragment-aligned fast path (every
// GroupBy level at or above its dimension's fragmentation level) the
// group key is computed once per fragment from its id, so grouping adds
// no per-row work and — because the stored tuples carry the dimension
// keys — never any extra I/O.
func (e *Executor) ExecuteGrouped(ctx context.Context, q frag.Query) (kernel.Result, IOStats, error) {
	return e.ExecuteGroupedDeltas(ctx, q, kernel.Deltas{})
}

// ExecuteGroupedDeltas is ExecuteGrouped folding a pinned delta snapshot
// into every fragment's partial: each relevant fragment aggregates its
// on-disk base rows first, then its in-memory delta segments in seal
// order, inside the fragment's own task — so the cross-fragment gather
// stays task-ordered and base+delta results are byte-identical to a
// store rebuilt from scratch with the same rows. Delta rows cost no
// physical I/O; they are reported in IOStats.DeltaRows.
func (e *Executor) ExecuteGroupedDeltas(ctx context.Context, q frag.Query, deltas kernel.Deltas) (kernel.Result, IOStats, error) {
	a, gr, err := e.executeAcc(ctx, q, deltas, nil)
	if err != nil {
		return kernel.Result{}, IOStats{}, err
	}
	res := kernel.Result{Aggregate: a.agg}
	if gr != nil {
		res.Groups = gr.Rows(a.g)
	}
	return res, a.st, nil
}

// ExecutePartialDeltas runs the query over only the relevant fragments
// selected by own (nil selects all) and returns the un-flattened partial
// — the fragment-range contribution one cluster node serves from its
// shard of the store. Partials of a fragment-disjoint node partition
// merge commutatively; the coordinator flattens the merged accumulator
// through Grouper.Rows for results byte-identical to a single store
// holding the union of the rows.
func (e *Executor) ExecutePartialDeltas(ctx context.Context, q frag.Query, deltas kernel.Deltas, own func(int64) bool) (kernel.FragPartial, IOStats, error) {
	a, gr, err := e.executeAcc(ctx, q, deltas, own)
	if err != nil {
		return kernel.FragPartial{}, IOStats{}, err
	}
	p := kernel.FragPartial{Agg: a.agg}
	if gr != nil {
		p.Groups = a.g
		if p.Groups == nil {
			p.Groups = kernel.NewGrouped()
		}
	}
	return p, a.st, nil
}

// executeAcc is the shared execution core behind ExecuteGroupedDeltas
// and ExecutePartialDeltas: validate, derive the grouper, enumerate (and
// optionally ownership-filter) the relevant fragments and fold their
// partials in task order on whichever dispatch path applies.
func (e *Executor) executeAcc(ctx context.Context, q frag.Query, deltas kernel.Deltas, own func(int64) bool) (acc, *kernel.Grouper, error) {
	star := e.store.star
	spec := e.store.spec
	if err := q.Validate(star); err != nil {
		return acc{}, nil, err
	}
	gr, err := kernel.NewGrouper(star, spec, q.GroupBy)
	if err != nil {
		return acc{}, nil, err
	}
	ids := spec.FragmentIDs(q)
	if own != nil {
		kept := ids[:0]
		for _, id := range ids {
			if own(id) {
				kept = append(kept, id)
			}
		}
		ids = kept
	}
	var perRow []kernel.RowLevel
	aligned := false
	if gr != nil {
		aligned = gr.Aligned()
		perRow = gr.PerRow()
	}
	run := func(sc *execScratch, i int) (partial, error) {
		var p partial
		var base uint64
		if gr != nil {
			base = gr.FragKey(ids[i])
			if aligned {
				p.fp.OneGroup, p.fp.Key = true, base
			} else {
				p.fp.Groups = kernel.NewGrouped()
			}
		}
		if err := e.processFragment(ctx, ids[i], q, &p, sc, base, perRow); err != nil {
			return partial{}, err
		}
		if !deltas.Empty() {
			if sc.dsc == nil {
				sc.dsc = frag.NewDeltaScratch()
			}
			n, err := kernel.AddDelta(deltas, ids[i], q, &p.fp, base, perRow, sc.dsc)
			if err != nil {
				return partial{}, err
			}
			p.st.DeltaRows += n
		}
		return p, nil
	}
	merge := func(a *acc, p partial) {
		if gr != nil && a.g == nil {
			a.g = kernel.NewGrouped()
		}
		p.fp.MergeInto(&a.agg, a.g)
		a.st.Add(p.st)
	}
	var a acc
	ds := e.store.disks
	declustered := ds != nil && ds.Disks() > 1
	switch {
	case e.Sched != nil && declustered:
		placement := e.store.placement
		a, err = exec.ReduceShardedOn(ctx, e.Sched, len(ids),
			func(i int) int { return placement.FactDisk(ids[i]) }, ds.Disks(),
			e.newScratch, run, merge)
	case e.Sched != nil:
		a, err = exec.ReduceOn(ctx, e.Sched, len(ids), e.newScratch, run, merge)
	case declustered:
		placement := e.store.placement
		a, err = exec.ReduceShardedWith(ctx, e.Workers, len(ids),
			func(i int) int { return placement.FactDisk(ids[i]) }, ds.Disks(),
			e.newScratch, run, merge)
	default:
		a, err = exec.ReduceWith(ctx, e.Workers, len(ids), e.newScratch, run, merge)
	}
	if err != nil {
		return acc{}, nil, err
	}
	return a, gr, nil
}

// processFragment evaluates the query within one fragment. On a
// compressed bitmap file it takes the compressed fast path: bitmap
// fragments are read as raw WAH words, intersected by one run-skipping
// AndAll (complemented operands folded in via AndNot), and the hit rows
// stream out of the compressed result — nothing is ever decompressed.
func (e *Executor) processFragment(ctx context.Context, id int64, q frag.Query, p *partial, sc *execScratch, base uint64, perRow []kernel.RowLevel) error {
	loc, ok := e.store.Loc(id)
	if !ok {
		return nil // no rows at this density
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	ta := &tupleAcc{agg: &p.fp.Agg, st: &p.st, base: base, perRow: perRow}
	if len(perRow) != 0 {
		ta.g = p.fp.Groups
	}
	if e.bitmaps.compressed {
		return e.processFragmentCompressed(ctx, id, loc, q, ta, sc)
	}
	spec := e.store.spec

	// Step 2 (Section 4.3): bitmap access for the predicates that need it.
	first := true
	for _, pr := range q.Preds {
		if !spec.NeedsBitmap(pr) {
			continue
		}
		pages, err := e.selectPred(ctx, id, pr, &p.st, sc, first)
		if err != nil {
			return err
		}
		p.st.BitmapPages += int64(pages)
		first = false
	}

	if first {
		// IOC1: every page of the fragment is read with full prefetch.
		return e.scanWhole(ctx, id, loc, ta, sc)
	}
	return e.readHits(ctx, id, loc, sc.hits, ta, sc)
}

// selectPred evaluates one predicate via the stored bitmap fragments,
// ANDing the selection into sc.hits (or initialising it when first). It
// returns the number of bitmap pages read.
func (e *Executor) selectPred(ctx context.Context, id int64, p frag.Pred, st *IOStats, sc *execScratch, first bool) (int, error) {
	star := e.store.star
	dim := &star.Dims[p.Dim]
	if e.bitmaps.icfg[p.Dim].Kind == frag.SimpleIndexes {
		dst := sc.hits
		if !first {
			dst = sc.sel
		}
		var pages int
		var err error
		_, sc.bbuf, pages, err = e.bitmaps.readBitmapInto(ctx, dst, sc.bbuf, id, BitmapDesc{Dim: p.Dim, Level: p.Level, Member: p.Member, Simple: true}, st)
		st.BitmapIOs++
		if err != nil {
			return pages, err
		}
		if !first {
			sc.hits.And(sc.sel)
		}
		return pages, nil
	}
	// Encoded: AND the bit-position bitmaps in (skip, prefix(level)],
	// taking each verbatim or complemented per the member's pattern.
	layout := e.bitmaps.layouts[p.Dim]
	skip := e.bitmaps.skipBits[p.Dim]
	hi := layout.PrefixBits(p.Level)
	if hi <= skip {
		// The fragmentation already fixes this level: all rows match by
		// fragment confinement (should not happen when NeedsBitmap holds).
		return 0, fmt.Errorf("storage: predicate on %s.%s needs no bitmaps", dim.Name, dim.Levels[p.Level].Name)
	}
	pattern := layout.EncodePrefix(p.Level, p.Member)
	pagesTotal := 0
	for b := skip; b < hi; b++ {
		verbatim := pattern>>uint(hi-1-b)&1 == 1
		dst := sc.sel
		if first && b == skip {
			// The first bitmap initialises the running selection directly.
			dst = sc.hits
		}
		var pages int
		var err error
		_, sc.bbuf, pages, err = e.bitmaps.readBitmapInto(ctx, dst, sc.bbuf, id, BitmapDesc{Dim: p.Dim, Bit: b}, st)
		if err != nil {
			return pagesTotal, err
		}
		st.BitmapIOs++
		pagesTotal += pages
		if dst == sc.hits {
			if !verbatim {
				sc.hits.Not()
			}
			continue
		}
		if verbatim {
			sc.hits.And(sc.sel)
		} else {
			sc.hits.AndNot(sc.sel)
		}
	}
	return pagesTotal, nil
}

// processFragmentCompressed is the compressed fast path of Section 4.3's
// step 2-4: collect each predicate's bit-position bitmaps as raw WAH
// words, split them into verbatim and complemented operands, intersect
// all verbatim ones with a single k-way AndAll, fold complements in with
// run-skipping AndNot, and drive the prefetch-granule fact reads from the
// compressed result's range iterator.
func (e *Executor) processFragmentCompressed(ctx context.Context, id int64, loc FragLoc, q frag.Query, ta *tupleAcc, sc *execScratch) error {
	star := e.store.star
	spec := e.store.spec
	st := ta.st
	pos, neg := sc.pos[:0], sc.neg[:0]
	nread := 0
	read := func(desc BitmapDesc) (*bitmap.Compressed, error) {
		c := sc.operand(nread)
		nread++
		var pages int
		var err error
		_, sc.bbuf, pages, err = e.bitmaps.readCompressedInto(ctx, c, sc.bbuf, id, desc, st)
		if err != nil {
			return nil, err
		}
		st.BitmapIOs++
		st.BitmapPages += int64(pages)
		return c, nil
	}
	anyBitmap := false
	for _, p := range q.Preds {
		if !spec.NeedsBitmap(p) {
			continue
		}
		anyBitmap = true
		if e.bitmaps.icfg[p.Dim].Kind == frag.SimpleIndexes {
			c, err := read(BitmapDesc{Dim: p.Dim, Level: p.Level, Member: p.Member, Simple: true})
			if err != nil {
				return err
			}
			pos = append(pos, c)
			continue
		}
		layout := e.bitmaps.layouts[p.Dim]
		skip := e.bitmaps.skipBits[p.Dim]
		hi := layout.PrefixBits(p.Level)
		if hi <= skip {
			dim := &star.Dims[p.Dim]
			return fmt.Errorf("storage: predicate on %s.%s needs no bitmaps", dim.Name, dim.Levels[p.Level].Name)
		}
		pattern := layout.EncodePrefix(p.Level, p.Member)
		for b := skip; b < hi; b++ {
			c, err := read(BitmapDesc{Dim: p.Dim, Bit: b})
			if err != nil {
				return err
			}
			if pattern>>uint(hi-1-b)&1 == 1 {
				pos = append(pos, c)
			} else {
				neg = append(neg, c)
			}
		}
	}
	sc.pos, sc.neg = pos, neg

	if !anyBitmap {
		// IOC1: every page of the fragment is read with full prefetch.
		return e.scanWhole(ctx, id, loc, ta, sc)
	}
	var res *bitmap.Compressed
	if len(pos) > 0 {
		res = bitmap.AndAllInto(sc.cres, pos...)
	} else {
		// Every operand is complemented (an all-zero pattern): start from
		// the all-ones bitmap and fold the complements in below.
		res = bitmap.CompressedOnesInto(sc.cres, int(loc.Rows))
	}
	sc.cres = res
	for _, n := range neg {
		res = bitmap.AndNotInto(sc.ctmp, res, n)
		sc.cres, sc.ctmp = res, sc.cres
	}
	if !res.Any() {
		return nil // empty intersection: no fact page is touched
	}
	return e.readHitsCompressed(ctx, id, loc, res, ta, sc)
}

// scanWhole aggregates every tuple of the fragment, reading it in
// prefetch-granule runs with the next granule read in flight while the
// current one aggregates.
func (e *Executor) scanWhole(ctx context.Context, id int64, loc FragLoc, ta *tupleAcc, sc *execScratch) error {
	tpp := TuplesPerPage(e.store.star)
	sc.gran = appendWholeGranules(sc.gran[:0], int(loc.Pages), e.PrefetchFact)
	remaining := int(loc.Rows)
	return e.forEachGranule(ctx, sc, ta.st, id, sc.gran, func(g granule, buf []byte) {
		for p := 0; p < int(g.count); p++ {
			n := tpp
			if remaining < n {
				n = remaining
			}
			off := p * e.store.pageSize
			for i := 0; i < n; i++ {
				var tp Tuple
				tp, off = e.store.decodeTuple(buf, off, sc.keys)
				ta.add(tp)
			}
			remaining -= n
		}
	})
}

// readHits reads only the prefetch granules containing hit rows (the
// prefetch-efficiency effect of Section 4.5), prefetching one granule
// ahead of aggregation.
func (e *Executor) readHits(ctx context.Context, id int64, loc FragLoc, hits *bitmap.Bitset, ta *tupleAcc, sc *execScratch) error {
	tpp := TuplesPerPage(e.store.star)
	g := e.PrefetchFact
	granules := int(math.Ceil(float64(loc.Pages) / float64(g)))
	sc.gran = sc.gran[:0]
	next := hits.NextSet(0)
	for gi := 0; gi < granules && next >= 0; gi++ {
		rowHi := (gi + 1) * g * tpp
		if next >= rowHi {
			continue // no hit in this granule
		}
		start := gi * g
		count := g
		if start+count > int(loc.Pages) {
			count = int(loc.Pages) - start
		}
		sc.gran = append(sc.gran, granule{start: int32(start), count: int32(count)})
		next = hits.NextSet(rowHi) // first hit beyond this granule
	}
	return e.forEachGranule(ctx, sc, ta.st, id, sc.gran, func(g granule, buf []byte) {
		rowLo := int(g.start) * tpp
		rowHi := rowLo + int(g.count)*tpp
		if rowHi > int(loc.Rows) {
			rowHi = int(loc.Rows)
		}
		for r := hits.NextSet(rowLo); r >= 0 && r < rowHi; r = hits.NextSet(r + 1) {
			pageIn := r/tpp - int(g.start)
			off := pageIn*e.store.pageSize + (r%tpp)*e.store.tupleSize
			tp, _ := e.store.decodeTuple(buf, off, sc.keys)
			ta.add(tp)
		}
	})
}

// readHitsCompressed is readHits driven by the compressed result's range
// iterator: one I/O-free pass over the WAH words lists the granules
// containing hits (granules without hits are never read, exactly as the
// materialised path skips them), the prefetch pipeline reads them ahead,
// and a second streaming pass aggregates the hit rows as the granule
// buffers arrive in order.
func (e *Executor) readHitsCompressed(ctx context.Context, id int64, loc FragLoc, hits *bitmap.Compressed, ta *tupleAcc, sc *execScratch) error {
	tpp := TuplesPerPage(e.store.star)
	g := e.PrefetchFact
	rowsPerGranule := g * tpp
	sc.gran = sc.gran[:0]
	last := -1
	hits.ForEachRange(func(lo, hi int) {
		for gi := lo / rowsPerGranule; gi <= (hi-1)/rowsPerGranule; gi++ {
			if gi == last {
				continue
			}
			last = gi
			start := gi * g
			count := g
			if start+count > int(loc.Pages) {
				count = int(loc.Pages) - start
			}
			sc.gran = append(sc.gran, granule{start: int32(start), count: int32(count)})
		}
	})
	pipe := e.startGranules(ctx, sc, ta.st, id, sc.gran)
	var buf []byte
	var readErr error
	loaded := -1 // granule index of buf
	hits.ForEachRange(func(lo, hi int) {
		if readErr != nil {
			return
		}
		for r := lo; r < hi; r++ {
			gi := r / rowsPerGranule
			if gi != loaded {
				// Hit rows arrive in increasing order and every hit
				// granule is listed, so the pipe's next granule is
				// exactly this one.
				var gr granule
				gr, buf, readErr = pipe.next()
				if readErr != nil {
					return
				}
				loaded = int(gr.start) / g
			}
			pageIn := r/tpp - loaded*g
			off := pageIn*e.store.pageSize + (r%tpp)*e.store.tupleSize
			tp, _ := e.store.decodeTuple(buf, off, sc.keys)
			ta.add(tp)
		}
	})
	if readErr != nil {
		return readErr
	}
	pipe.finish()
	return nil
}
