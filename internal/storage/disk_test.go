package storage

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/alloc"
	"repro/internal/data"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/frag"
	"repro/internal/kernel"
	"repro/internal/schema"
)

// buildCompressedStore is buildStore with a WAH-compressed bitmap file.
func buildCompressedStore(t testing.TB, fragText string) (*schema.Star, *data.Table, *Store, *BitmapFile) {
	t.Helper()
	s := schema.Tiny()
	tab := data.MustGenerate(s, 21)
	spec := frag.MustParse(s, fragText)
	dir := t.TempDir()
	store, err := Build(dir, tab, spec)
	if err != nil {
		t.Fatal(err)
	}
	icfg := make(frag.IndexConfig, len(s.Dims))
	for i := range s.Dims {
		if s.Dims[i].Name == schema.DimProduct || s.Dims[i].Name == schema.DimCustomer {
			icfg[i] = frag.IndexSpec{Kind: frag.EncodedIndex}
		} else {
			icfg[i] = frag.IndexSpec{Kind: frag.SimpleIndexes}
		}
	}
	bf, err := BuildCompressedBitmaps(dir, store, icfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		store.Close()
		bf.Close()
	})
	return s, tab, store, bf
}

// TestDeclusteredMatchesSingleDisk is the declustering determinism
// guarantee: for every query class Q1-Q4 plus an unsupported query, at
// every disk count and worker count, on both the materialised and the
// compressed bitmap path, the declustered execution returns byte-identical
// aggregates and IOStats to the plain single-disk executor.
func TestDeclusteredMatchesSingleDisk(t *testing.T) {
	for _, compressed := range []bool{false, true} {
		name := "materialized"
		build := buildStore
		if compressed {
			name, build = "compressed", buildCompressedStore
		}
		t.Run(name, func(t *testing.T) {
			s, _, store, bf := build(t, "time::month, product::group")
			queries := classQueries(t, s, store.spec)

			// Baseline: sequential, single implicit disk.
			want := map[string]partial{}
			for qname, q := range queries {
				seq := NewExecutor(store, bf)
				seq.Workers = 1
				agg, st, err := seq.Execute(q)
				if err != nil {
					t.Fatalf("%s: %v", qname, err)
				}
				want[qname] = partial{fp: kernel.FragPartial{Agg: agg}, st: st}
			}

			for _, disks := range []int{1, 2, 4, 8} {
				for _, scheme := range []alloc.Scheme{alloc.RoundRobin, alloc.GapRoundRobin} {
					p := alloc.Placement{Disks: disks, Scheme: scheme, Staggered: true}
					ds := NewDiskSet(disks)
					if err := store.Decluster(p, ds); err != nil {
						t.Fatal(err)
					}
					if err := bf.Decluster(p, ds); err != nil {
						t.Fatal(err)
					}
					for _, workers := range []int{1, 2, 4, 8} {
						ex := NewExecutor(store, bf)
						ex.Workers = workers
						for qname, q := range queries {
							agg, st, err := ex.Execute(q)
							if err != nil {
								t.Fatalf("%s d=%d w=%d: %v", qname, disks, workers, err)
							}
							if agg != want[qname].fp.Agg {
								t.Errorf("%s %v d=%d w=%d: aggregate %+v != single-disk %+v", qname, scheme, disks, workers, agg, want[qname].fp.Agg)
							}
							if st != want[qname].st {
								t.Errorf("%s %v d=%d w=%d: IOStats %+v != single-disk %+v", qname, scheme, disks, workers, st, want[qname].st)
							}
						}
					}
				}
			}
			if err := store.Decluster(alloc.Placement{}, nil); err != nil {
				t.Fatal(err)
			}
			if err := bf.Decluster(alloc.Placement{}, nil); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSyncPrefetchMatchesAsync asserts the async granule pipeline changes
// nothing observable: with AsyncPrefetch off, every query returns the
// same aggregates and IOStats.
func TestSyncPrefetchMatchesAsync(t *testing.T) {
	s, _, store, bf := buildStore(t, "time::month, product::group")
	for qname, q := range classQueries(t, s, store.spec) {
		async := NewExecutor(store, bf)
		sync := NewExecutor(store, bf)
		sync.AsyncPrefetch = false
		aAgg, aSt, err := async.Execute(q)
		if err != nil {
			t.Fatalf("%s: %v", qname, err)
		}
		sAgg, sSt, err := sync.Execute(q)
		if err != nil {
			t.Fatalf("%s: %v", qname, err)
		}
		if aAgg != sAgg || aSt != sSt {
			t.Errorf("%s: async %+v/%+v != sync %+v/%+v", qname, aAgg, aSt, sAgg, sSt)
		}
	}
}

// TestDiskSetStatsAccountAllIO asserts every physical access lands on
// exactly one disk: the per-disk counters sum to the executor's IOStats,
// and fact accesses land on the placement's fact disks.
func TestDiskSetStatsAccountAllIO(t *testing.T) {
	s, _, store, bf := buildStore(t, "time::month, product::group")
	p := alloc.Placement{Disks: 4, Scheme: alloc.RoundRobin, Staggered: true}
	ds := NewDiskSet(4)
	if err := store.Decluster(p, ds); err != nil {
		t.Fatal(err)
	}
	if err := bf.Decluster(p, ds); err != nil {
		t.Fatal(err)
	}
	cd := s.DimIndex(schema.DimCustomer)
	q := frag.Query{Preds: []frag.Pred{{Dim: cd, Level: s.Dims[cd].LevelIndex(schema.LvlStore), Member: 2}}}
	ex := NewExecutor(store, bf)
	_, st, err := ex.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	var ios, pages int64
	for _, d := range ds.Stats() {
		ios += d.IOs
		pages += d.Pages
	}
	if wantIOs := st.FactIOs + st.BitmapIOs; ios != wantIOs {
		t.Errorf("disk IOs = %d, IOStats total = %d", ios, wantIOs)
	}
	if wantPages := st.FactPages + st.BitmapPages; pages != wantPages {
		t.Errorf("disk pages = %d, IOStats total = %d", pages, wantPages)
	}
	// An unsupported query touches every fragment, hence (with 4 disks
	// and staggered bitmaps) every disk.
	for i, d := range ds.Stats() {
		if d.IOs == 0 {
			t.Errorf("disk %d idle during full-fanout query", i)
		}
	}
	ds.ResetStats()
	for i, d := range ds.Stats() {
		if d.IOs != 0 || d.Pages != 0 {
			t.Errorf("disk %d stats not reset: %+v", i, d)
		}
	}
}

// TestDeclusterValidation covers the placement/disk-set wiring errors and
// reset semantics.
func TestDeclusterValidation(t *testing.T) {
	_, _, store, bf := buildStore(t, "time::month, product::group")
	ds := NewDiskSet(4)
	bad := alloc.Placement{Disks: 8, Scheme: alloc.RoundRobin}
	if err := store.Decluster(bad, ds); err == nil {
		t.Error("store accepted placement over 8 disks on a 4-disk set")
	}
	if err := bf.Decluster(bad, ds); err == nil {
		t.Error("bitmap file accepted placement over 8 disks on a 4-disk set")
	}
	good := alloc.Placement{Disks: 4, Scheme: alloc.RoundRobin}
	if err := store.Decluster(good, ds); err != nil {
		t.Fatal(err)
	}
	if store.Declustered() != ds || store.Placement() != good {
		t.Error("store declustering not recorded")
	}
	if got := store.DiskOf(7); got != 3 {
		t.Errorf("DiskOf(7) = %d, want 3", got)
	}
	if err := store.Decluster(alloc.Placement{}, nil); err != nil {
		t.Fatal(err)
	}
	if store.Declustered() != nil || store.DiskOf(7) != 0 {
		t.Error("store declustering not reset")
	}
	if NewDiskSet(0).Disks() != 1 {
		t.Error("NewDiskSet(0) should clamp to one disk")
	}
}

// TestPerDiskDelayObservable is the point of the whole disk model: with a
// per-access delay, a query over d serialized disks finishes roughly d
// times faster than over one — the paper's speed-up-over-disks
// experiment in miniature. Bounds are kept loose (>1.5x at 4 disks) to
// stay robust on loaded CI machines.
func TestPerDiskDelayObservable(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	s, _, store, bf := buildStore(t, "time::month, product::group")
	cd := s.DimIndex(schema.DimCustomer)
	q := frag.Query{Preds: []frag.Pred{{Dim: cd, Level: s.Dims[cd].LevelIndex(schema.LvlStore), Member: 2}}}

	elapsed := func(disks int) time.Duration {
		p := alloc.Placement{Disks: disks, Scheme: alloc.RoundRobin, Staggered: true}
		ds := NewDiskSet(disks)
		if err := store.Decluster(p, ds); err != nil {
			t.Fatal(err)
		}
		if err := bf.Decluster(p, ds); err != nil {
			t.Fatal(err)
		}
		ds.SetIODelay(200 * time.Microsecond)
		ex := NewExecutor(store, bf)
		ex.Workers = 8
		start := time.Now()
		if _, _, err := ex.Execute(q); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	t1 := elapsed(1)
	t4 := elapsed(4)
	if err := store.Decluster(alloc.Placement{}, nil); err != nil {
		t.Fatal(err)
	}
	if err := bf.Decluster(alloc.Placement{}, nil); err != nil {
		t.Fatal(err)
	}
	if ratio := float64(t1) / float64(t4); ratio < 1.5 {
		t.Errorf("4 disks only %.2fx faster than 1 (t1=%v t4=%v)", ratio, t1, t4)
	}
}

// TestSetIODelayConcurrent exercises the satellite fix: SetIODelay while
// queries run must be race-free (run under -race).
func TestSetIODelayConcurrent(t *testing.T) {
	s, _, store, bf := buildStore(t, "time::month, product::group")
	cd := s.DimIndex(schema.DimCustomer)
	q := frag.Query{Preds: []frag.Pred{{Dim: cd, Level: s.Dims[cd].LevelIndex(schema.LvlStore), Member: 1}}}
	ex := NewExecutor(store, bf)
	ex.Workers = 4
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			store.SetIODelay(time.Duration(i%2) * time.Microsecond)
			bf.SetIODelay(time.Duration(i%2) * time.Microsecond)
		}
	}()
	for i := 0; i < 10; i++ {
		if _, _, err := ex.Execute(q); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	store.SetIODelay(0)
	bf.SetIODelay(0)
}

// TestDeclusteredConcurrentQueries runs concurrent queries against one
// declustered executor — the -race target for the disk queue and
// prefetch pipeline.
func TestDeclusteredConcurrentQueries(t *testing.T) {
	s, tab, store, bf := buildStore(t, "time::month, product::group")
	p := alloc.Placement{Disks: 4, Scheme: alloc.GapRoundRobin, Staggered: true}
	ds := NewDiskSet(4)
	if err := store.Decluster(p, ds); err != nil {
		t.Fatal(err)
	}
	if err := bf.Decluster(p, ds); err != nil {
		t.Fatal(err)
	}
	defer func() {
		store.Decluster(alloc.Placement{}, nil)
		bf.Decluster(alloc.Placement{}, nil)
	}()
	ex := NewExecutor(store, bf)
	ex.Workers = 4
	qs := classQueries(t, s, store.spec)
	errc := make(chan error, len(qs)*3)
	for qname, q := range qs {
		for c := 0; c < 3; c++ {
			go func(qname string, q frag.Query) {
				for rep := 0; rep < 3; rep++ {
					got, _, err := ex.Execute(q)
					if err != nil {
						errc <- fmt.Errorf("%s: %v", qname, err)
						return
					}
					want := engine.Scan(tab, q)
					if got.Count != want.Count || got.DollarSales != want.DollarSales {
						errc <- fmt.Errorf("%s: got %+v, want %+v", qname, got, want)
						return
					}
				}
				errc <- nil
			}(qname, q)
		}
	}
	for i := 0; i < len(qs)*3; i++ {
		if err := <-errc; err != nil {
			t.Error(err)
		}
	}
}

// TestDeclusterAtomic covers the pair-level Decluster: a failure must
// leave both the store and the bitmap file exactly as they were, never
// half-declustered.
func TestDeclusterAtomic(t *testing.T) {
	s, _, store, bf := buildStore(t, "time::month, product::group")

	// Establish a prior declustered state to observe rollback against.
	prev := alloc.Placement{Disks: 2, Scheme: alloc.RoundRobin, Staggered: true}
	prevDS, err := Decluster(store, bf, prev)
	if err != nil {
		t.Fatal(err)
	}
	checkUnchanged := func(when string) {
		t.Helper()
		if store.Declustered() != prevDS || bf.Declustered() != prevDS {
			t.Fatalf("%s: pair not left on prior disk set (store %p, bf %p, want %p)",
				when, store.Declustered(), bf.Declustered(), prevDS)
		}
		if store.Placement() != prev {
			t.Fatalf("%s: store placement mutated to %+v", when, store.Placement())
		}
	}

	// Invalid placements fail before any mutation.
	for _, bad := range []alloc.Placement{
		{Disks: 0},
		{Disks: -3},
		{Disks: 4, Cluster: -1},
	} {
		if _, err := Decluster(store, bf, bad); err == nil {
			t.Fatalf("Decluster(%+v) succeeded, want error", bad)
		}
		checkUnchanged(fmt.Sprintf("after %+v", bad))
	}

	// A bitmap file from a different store/fragmentation is rejected
	// before the store is touched — the partial-failure case that used to
	// leave the store declustered while the bitmap file kept its old
	// routing.
	_, _, _, foreignBF := buildStore(t, "time::quarter")
	good := alloc.Placement{Disks: 4, Scheme: alloc.GapRoundRobin, Staggered: true}
	if _, err := Decluster(store, foreignBF, good); err == nil {
		t.Fatal("Decluster with a foreign bitmap file succeeded, want error")
	}
	checkUnchanged("after foreign bitmap file")
	if foreignBF.Declustered() != nil {
		t.Fatal("foreign bitmap file was declustered")
	}

	// The happy path still switches both components to one shared set and
	// executes correctly.
	ds, err := Decluster(store, bf, good)
	if err != nil {
		t.Fatal(err)
	}
	if store.Declustered() != ds || bf.Declustered() != ds {
		t.Fatal("pair not sharing the new disk set")
	}
	ex := NewExecutor(store, bf)
	for qname, q := range classQueries(t, s, store.spec) {
		if _, _, err := ex.Execute(q); err != nil {
			t.Fatalf("%s after Decluster: %v", qname, err)
		}
	}

	// A nil bitmap file declusters only the store.
	if _, err := Decluster(store, nil, prev); err != nil {
		t.Fatal(err)
	}
}

// TestExecutorSchedulerMatchesPrivatePool checks that dispatching through
// a shared admission scheduler returns byte-identical aggregates and
// IOStats to the executor's private per-query pool, single-disk and
// declustered, including with several executions in flight at once.
func TestExecutorSchedulerMatchesPrivatePool(t *testing.T) {
	s, _, store, bf := buildStore(t, "time::month, product::group")
	queries := classQueries(t, s, store.spec)

	sched := exec.NewScheduler(4)
	defer sched.Close()

	for _, disks := range []int{1, 4} {
		p := alloc.Placement{Disks: disks, Scheme: alloc.RoundRobin, Staggered: true}
		if _, err := Decluster(store, bf, p); err != nil {
			t.Fatal(err)
		}

		want := map[string]partial{}
		serial := NewExecutor(store, bf)
		serial.Workers = 1
		for qname, q := range queries {
			agg, st, err := serial.Execute(q)
			if err != nil {
				t.Fatalf("serial %s: %v", qname, err)
			}
			want[qname] = partial{fp: kernel.FragPartial{Agg: agg}, st: st}
		}

		shared := NewExecutor(store, bf)
		shared.Sched = sched
		errc := make(chan error, len(queries)*4)
		for qname, q := range queries {
			for c := 0; c < 4; c++ {
				go func(qname string, q frag.Query) {
					agg, st, err := shared.Execute(q)
					if err != nil {
						errc <- fmt.Errorf("%s: %v", qname, err)
						return
					}
					if agg != want[qname].fp.Agg || st != want[qname].st {
						errc <- fmt.Errorf("%s on %d disks: scheduler result diverged: got %+v/%+v want %+v/%+v",
							qname, disks, agg, st, want[qname].fp.Agg, want[qname].st)
						return
					}
					errc <- nil
				}(qname, q)
			}
		}
		for i := 0; i < len(queries)*4; i++ {
			if err := <-errc; err != nil {
				t.Error(err)
			}
		}
	}
	if st := sched.Stats(); st.QueriesAdmitted == 0 || st.InFlight != 0 {
		t.Fatalf("scheduler accounting: %+v", st)
	}
}
