package storage

import (
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/engine"
	"repro/internal/frag"
	"repro/internal/schema"
)

// buildBoth builds an uncompressed and a compressed bitmap file over the
// same store.
func buildBoth(t testing.TB) (*schema.Star, *data.Table, *Store, *BitmapFile, *BitmapFile) {
	t.Helper()
	s := sparseSchema()
	tab := data.MustGenerate(s, 33)
	spec := frag.MustParse(s, "time::month, product::group")
	icfg := make(frag.IndexConfig, len(s.Dims))
	for i := range icfg {
		icfg[i] = frag.IndexSpec{Kind: frag.EncodedIndex}
	}
	dirPlain, dirComp := t.TempDir(), t.TempDir()
	storePlain, err := Build(dirPlain, tab, spec)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := BuildBitmaps(dirPlain, storePlain, icfg)
	if err != nil {
		t.Fatal(err)
	}
	// The compressed file needs its own store dir only for file paths; the
	// fact file is identical.
	storeComp, err := Build(dirComp, tab, spec)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := BuildCompressedBitmaps(dirComp, storeComp, icfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		storePlain.Close()
		plain.Close()
		storeComp.Close()
		comp.Close()
	})
	if !comp.Compressed() || plain.Compressed() {
		t.Fatal("Compressed flags wrong")
	}
	return s, tab, storeComp, plain, comp
}

func TestCompressedBitmapsRoundTrip(t *testing.T) {
	_, _, store, plain, comp := buildBoth(t)
	// Every stored bitmap fragment decodes identically in both files.
	for _, id := range store.Fragments() {
		for _, desc := range comp.Descs() {
			want, _, err := plain.ReadBitmapFragment(id, desc)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := comp.ReadBitmapFragment(id, desc)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatalf("fragment %d bitmap %+v differs when compressed", id, desc)
			}
		}
	}
}

func TestCompressedExecutorCorrectAndCheaper(t *testing.T) {
	s, tab, store, plain, comp := buildBoth(t)
	exPlain := NewExecutor(store, plain)
	exComp := NewExecutor(store, comp)
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 60; iter++ {
		var q frag.Query
		for di := range s.Dims {
			if rng.Intn(2) == 0 {
				continue
			}
			li := rng.Intn(s.Dims[di].Depth())
			q = append(q, frag.Pred{Dim: di, Level: li, Member: rng.Intn(s.Dims[di].Levels[li].Card)})
		}
		if len(q) == 0 {
			continue
		}
		a, _, err := exPlain.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := exComp.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("iter %d: plain %+v != compressed %+v", iter, a, b)
		}
		want := engine.Scan(tab, q)
		if a.Count != want.Count {
			t.Fatalf("iter %d: wrong result", iter)
		}
	}
	// Storage: compressed total pages never exceed plain.
	if comp.TotalPages() > plain.TotalPages() {
		t.Errorf("compressed bitmaps use %d pages, plain %d", comp.TotalPages(), plain.TotalPages())
	}
}
