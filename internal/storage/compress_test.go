package storage

import (
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/engine"
	"repro/internal/frag"
	"repro/internal/schema"
)

// buildBoth builds an uncompressed and a compressed bitmap file over the
// same store.
func buildBoth(t testing.TB) (*schema.Star, *data.Table, *Store, *BitmapFile, *BitmapFile) {
	t.Helper()
	s := sparseSchema()
	tab := data.MustGenerate(s, 33)
	spec := frag.MustParse(s, "time::month, product::group")
	icfg := make(frag.IndexConfig, len(s.Dims))
	for i := range icfg {
		icfg[i] = frag.IndexSpec{Kind: frag.EncodedIndex}
	}
	dirPlain, dirComp := t.TempDir(), t.TempDir()
	storePlain, err := Build(dirPlain, tab, spec)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := BuildBitmaps(dirPlain, storePlain, icfg)
	if err != nil {
		t.Fatal(err)
	}
	// The compressed file needs its own store dir only for file paths; the
	// fact file is identical.
	storeComp, err := Build(dirComp, tab, spec)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := BuildCompressedBitmaps(dirComp, storeComp, icfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		storePlain.Close()
		plain.Close()
		storeComp.Close()
		comp.Close()
	})
	if !comp.Compressed() || plain.Compressed() {
		t.Fatal("Compressed flags wrong")
	}
	return s, tab, storeComp, plain, comp
}

func TestCompressedBitmapsRoundTrip(t *testing.T) {
	_, _, store, plain, comp := buildBoth(t)
	// Every stored bitmap fragment decodes identically in both files.
	for _, id := range store.Fragments() {
		for _, desc := range comp.Descs() {
			want, _, err := plain.ReadBitmapFragment(id, desc)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := comp.ReadBitmapFragment(id, desc)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatalf("fragment %d bitmap %+v differs when compressed", id, desc)
			}
		}
	}
}

func TestCompressedExecutorCorrectAndCheaper(t *testing.T) {
	s, tab, store, plain, comp := buildBoth(t)
	exPlain := NewExecutor(store, plain)
	exComp := NewExecutor(store, comp)
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 60; iter++ {
		var q frag.Query
		for di := range s.Dims {
			if rng.Intn(2) == 0 {
				continue
			}
			li := rng.Intn(s.Dims[di].Depth())
			q.Preds = append(q.Preds, frag.Pred{Dim: di, Level: li, Member: rng.Intn(s.Dims[di].Levels[li].Card)})
		}
		if len(q.Preds) == 0 {
			continue
		}
		a, _, err := exPlain.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := exComp.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("iter %d: plain %+v != compressed %+v", iter, a, b)
		}
		want := engine.Scan(tab, q)
		if a.Count != want.Count {
			t.Fatalf("iter %d: wrong result", iter)
		}
	}
	// Storage: compressed total pages never exceed plain.
	if comp.TotalPages() > plain.TotalPages() {
		t.Errorf("compressed bitmaps use %d pages, plain %d", comp.TotalPages(), plain.TotalPages())
	}
}

func TestReadCompressedFragmentMatchesDecompressed(t *testing.T) {
	_, _, store, plain, comp := buildBoth(t)
	for _, id := range store.Fragments() {
		for _, desc := range comp.Descs() {
			want, wantPages, err := comp.ReadBitmapFragment(id, desc)
			if err != nil {
				t.Fatal(err)
			}
			c, pages, err := comp.ReadCompressedFragment(id, desc)
			if err != nil {
				t.Fatal(err)
			}
			if pages != wantPages {
				t.Fatalf("fragment %d bitmap %+v: %d pages, want %d", id, desc, pages, wantPages)
			}
			if !c.Decompress().Equal(want) {
				t.Fatalf("fragment %d bitmap %+v: raw WAH words decode differently", id, desc)
			}
			if c.OnesCount() != want.OnesCount() {
				t.Fatalf("fragment %d bitmap %+v: OnesCount %d != %d", id, desc, c.OnesCount(), want.OnesCount())
			}
		}
	}
	// The fast-path read is refused on an uncompressed file.
	if _, _, err := plain.ReadCompressedFragment(store.Fragments()[0], comp.Descs()[0]); err == nil {
		t.Fatal("ReadCompressedFragment on an uncompressed file did not fail")
	}
}

// TestCompressedFastPathIOStatsMatch asserts the compressed execution
// path performs exactly the physical fact I/O of the materialised path:
// identical granule reads, pages and rows — only the bitmap
// representation differs.
func TestCompressedFastPathIOStatsMatch(t *testing.T) {
	s, _, store, plain, comp := buildBoth(t)
	exPlain := NewExecutor(store, plain)
	exComp := NewExecutor(store, comp)
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 40; iter++ {
		var q frag.Query
		for di := range s.Dims {
			if rng.Intn(2) == 0 {
				continue
			}
			li := rng.Intn(s.Dims[di].Depth())
			q.Preds = append(q.Preds, frag.Pred{Dim: di, Level: li, Member: rng.Intn(s.Dims[di].Levels[li].Card)})
		}
		if len(q.Preds) == 0 {
			continue
		}
		aggP, stP, err := exPlain.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		aggC, stC, err := exComp.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		if aggP != aggC {
			t.Fatalf("iter %d: aggregates diverge", iter)
		}
		if stP.FactIOs != stC.FactIOs || stP.FactPages != stC.FactPages || stP.RowsRead != stC.RowsRead {
			t.Fatalf("iter %d: fact I/O diverges: plain %+v, compressed %+v", iter, stP, stC)
		}
		if stP.BitmapIOs != stC.BitmapIOs {
			t.Fatalf("iter %d: bitmap read count diverges: %d != %d", iter, stP.BitmapIOs, stC.BitmapIOs)
		}
	}
}

// TestCompressedExecutorWorkerInvariance runs the compressed fast path at
// several worker counts; with -race this also exercises the per-worker
// scratch isolation.
func TestCompressedExecutorWorkerInvariance(t *testing.T) {
	s, _, store, _, comp := buildBoth(t)
	q, err := frag.ParseQuery(s, "customer::store=2")
	if err != nil {
		t.Fatal(err)
	}
	seq := NewExecutor(store, comp)
	seq.Workers = 1
	wantAgg, wantSt, err := seq.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		ex := NewExecutor(store, comp)
		ex.Workers = workers
		gotAgg, gotSt, err := ex.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		if gotAgg != wantAgg || gotSt != wantSt {
			t.Fatalf("workers=%d: %+v/%+v != %+v/%+v", workers, gotAgg, gotSt, wantAgg, wantSt)
		}
	}
}

// TestCompressedFastPathSimpleIndexes covers the compressed execution
// path through simple (one-bitmap-per-member) indices, which buildBoth's
// all-encoded configuration misses.
func TestCompressedFastPathSimpleIndexes(t *testing.T) {
	s := sparseSchema()
	tab := data.MustGenerate(s, 41)
	spec := frag.MustParse(s, "time::month")
	icfg := make(frag.IndexConfig, len(s.Dims))
	for i := range icfg {
		icfg[i] = frag.IndexSpec{Kind: frag.SimpleIndexes}
	}
	dirPlain, dirComp := t.TempDir(), t.TempDir()
	storePlain, err := Build(dirPlain, tab, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer storePlain.Close()
	plain, err := BuildBitmaps(dirPlain, storePlain, icfg)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	storeComp, err := Build(dirComp, tab, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer storeComp.Close()
	comp, err := BuildCompressedBitmaps(dirComp, storeComp, icfg)
	if err != nil {
		t.Fatal(err)
	}
	defer comp.Close()
	exPlain := NewExecutor(storePlain, plain)
	exComp := NewExecutor(storeComp, comp)
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 40; iter++ {
		var q frag.Query
		for di := range s.Dims {
			if rng.Intn(2) == 0 {
				continue
			}
			li := rng.Intn(s.Dims[di].Depth())
			q.Preds = append(q.Preds, frag.Pred{Dim: di, Level: li, Member: rng.Intn(s.Dims[di].Levels[li].Card)})
		}
		if len(q.Preds) == 0 {
			continue
		}
		aggP, stP, err := exPlain.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		aggC, stC, err := exComp.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		if aggP != aggC {
			t.Fatalf("iter %d: aggregates diverge: %+v != %+v", iter, aggP, aggC)
		}
		if stP.RowsRead != stC.RowsRead || stP.FactPages != stC.FactPages {
			t.Fatalf("iter %d: fact I/O diverges", iter)
		}
		if want := engine.Scan(tab, q); aggP.Count != want.Count {
			t.Fatalf("iter %d: executor disagrees with scan", iter)
		}
	}
}
