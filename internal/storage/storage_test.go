package storage

import (
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/data"
	"repro/internal/engine"
	"repro/internal/frag"
	"repro/internal/schema"
)

// buildStore creates a store + bitmap file for the tiny schema in a temp
// dir.
func buildStore(t testing.TB, fragText string) (*schema.Star, *data.Table, *Store, *BitmapFile) {
	t.Helper()
	s := schema.Tiny()
	tab := data.MustGenerate(s, 21)
	spec := frag.MustParse(s, fragText)
	dir := t.TempDir()
	store, err := Build(dir, tab, spec)
	if err != nil {
		t.Fatal(err)
	}
	icfg := make(frag.IndexConfig, len(s.Dims))
	for i := range s.Dims {
		if s.Dims[i].Name == schema.DimProduct || s.Dims[i].Name == schema.DimCustomer {
			icfg[i] = frag.IndexSpec{Kind: frag.EncodedIndex}
		} else {
			icfg[i] = frag.IndexSpec{Kind: frag.SimpleIndexes}
		}
	}
	bf, err := BuildBitmaps(dir, store, icfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		store.Close()
		bf.Close()
	})
	return s, tab, store, bf
}

func TestStoreRoundTripAllRows(t *testing.T) {
	s, tab, store, _ := buildStore(t, "time::month, product::group")
	// Every generated row must be stored exactly once.
	total := 0
	sumDollars := int64(0)
	for _, id := range store.Fragments() {
		err := store.ScanFragment(id, func(tp Tuple) {
			total++
			sumDollars += int64(tp.DollarSales)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if total != tab.N() {
		t.Fatalf("stored rows = %d, want %d", total, tab.N())
	}
	var want int64
	for i := 0; i < tab.N(); i++ {
		want += tab.DollarSales[i]
	}
	if sumDollars != want {
		t.Fatalf("sum dollars = %d, want %d", sumDollars, want)
	}
	_ = s
}

func TestStoreFragmentMembership(t *testing.T) {
	s, _, store, _ := buildStore(t, "time::month, product::group")
	spec := store.spec
	// Every tuple in a fragment must map back to that fragment id.
	leaf := make([]int, len(s.Dims))
	for _, id := range store.Fragments() {
		err := store.ScanFragment(id, func(tp Tuple) {
			for d := range tp.Keys {
				leaf[d] = int(tp.Keys[d])
			}
			if got := spec.ID(spec.CoordOf(leaf)); got != id {
				t.Fatalf("tuple in fragment %d maps to %d", id, got)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestOpenReloadsDirectory(t *testing.T) {
	s := schema.Tiny()
	tab := data.MustGenerate(s, 21)
	spec := frag.MustParse(s, "time::month, product::group")
	dir := t.TempDir()
	store, err := Build(dir, tab, spec)
	if err != nil {
		t.Fatal(err)
	}
	frags := append([]int64(nil), store.Fragments()...)
	store.Close()

	re, err := Open(dir, s, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.NumFragments() != len(frags) {
		t.Fatalf("reopened fragments = %d, want %d", re.NumFragments(), len(frags))
	}
	total := 0
	for _, id := range re.Fragments() {
		if err := re.ScanFragment(id, func(Tuple) { total++ }); err != nil {
			t.Fatal(err)
		}
	}
	if total != tab.N() {
		t.Fatalf("reopened rows = %d, want %d", total, tab.N())
	}
	// Open with a wrong page size fails.
	s2 := schema.Tiny()
	s2.PageSize = 8192
	if _, err := Open(dir, s2, spec); err == nil {
		t.Fatal("page size mismatch accepted")
	}
	if _, err := Open(filepath.Join(dir, "nope"), s, spec); err == nil {
		t.Fatal("missing dir accepted")
	}
}

func TestExecutorMatchesEngineAndScan(t *testing.T) {
	s, tab, store, bf := buildStore(t, "time::month, product::group")
	ex := NewExecutor(store, bf)
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 200; iter++ {
		var q frag.Query
		for di := range s.Dims {
			if rng.Intn(2) == 0 {
				continue
			}
			li := rng.Intn(s.Dims[di].Depth())
			q.Preds = append(q.Preds, frag.Pred{Dim: di, Level: li, Member: rng.Intn(s.Dims[di].Levels[li].Card)})
		}
		if len(q.Preds) == 0 {
			continue
		}
		got, _, err := ex.Execute(q)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		want := engine.Scan(tab, q)
		if got.Count != want.Count || got.DollarSales != want.DollarSales ||
			got.UnitsSold != want.UnitsSold || got.Cost != want.Cost {
			t.Fatalf("iter %d query %v: got %+v, want %+v", iter, q, got, want)
		}
	}
}

func TestExecutorIOAccounting(t *testing.T) {
	s, _, store, bf := buildStore(t, "time::month, product::group")
	ex := NewExecutor(store, bf)
	pd := s.DimIndex(schema.DimProduct)
	td := s.DimIndex(schema.DimTime)
	cd := s.DimIndex(schema.DimCustomer)
	group := s.Dims[pd].LevelIndex(schema.LvlGroup)
	month := s.Dims[td].LevelIndex(schema.LvlMonth)
	store1 := s.Dims[cd].LevelIndex(schema.LvlStore)

	// Q1 (IOC1): no bitmap I/O; reads exactly the one fragment's pages.
	q1 := frag.Query{Preds: []frag.Pred{{Dim: td, Level: month, Member: 1}, {Dim: pd, Level: group, Member: 0}}}
	_, st, err := ex.Execute(q1)
	if err != nil {
		t.Fatal(err)
	}
	if st.BitmapPages != 0 || st.BitmapIOs != 0 {
		t.Errorf("Q1 read %d bitmap pages", st.BitmapPages)
	}
	spec := store.spec
	id := spec.ID([]int{1, 0})
	if loc, ok := store.Loc(id); ok && st.FactPages != int64(loc.Pages) {
		t.Errorf("Q1 fact pages = %d, want %d", st.FactPages, loc.Pages)
	}

	// Unsupported query (1STORE): bitmap I/O on every fragment.
	qs := frag.Query{Preds: []frag.Pred{{Dim: cd, Level: store1, Member: 2}}}
	_, st2, err := ex.Execute(qs)
	if err != nil {
		t.Fatal(err)
	}
	if st2.BitmapIOs == 0 {
		t.Error("1STORE performed no bitmap I/O")
	}
}

// sparseSchema has a high-cardinality customer store so that store
// selections hit only a few rows per multi-page fragment — the setting
// where prefetch-granule skipping is observable.
func sparseSchema() *schema.Star {
	return &schema.Star{
		Name: "sparse",
		Dims: []schema.Dimension{
			{Name: schema.DimProduct, Levels: []schema.Level{{Name: schema.LvlGroup, Card: 4}, {Name: schema.LvlCode, Card: 64}}},
			{Name: schema.DimCustomer, Levels: []schema.Level{{Name: schema.LvlRetailer, Card: 8}, {Name: schema.LvlStore, Card: 512}}},
			{Name: schema.DimTime, Levels: []schema.Level{{Name: schema.LvlQuarter, Card: 2}, {Name: schema.LvlMonth, Card: 8}}},
		},
		Density:   0.5,
		TupleSize: 18,
		PageSize:  4096,
	}
}

func TestExecutorSkipsHitFreePages(t *testing.T) {
	s := sparseSchema()
	tab := data.MustGenerate(s, 5)
	spec := frag.MustParse(s, "time::month, product::group")
	dir := t.TempDir()
	store, err := Build(dir, tab, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	icfg := make(frag.IndexConfig, len(s.Dims))
	for i := range icfg {
		icfg[i] = frag.IndexSpec{Kind: frag.EncodedIndex}
	}
	bf, err := BuildBitmaps(dir, store, icfg)
	if err != nil {
		t.Fatal(err)
	}
	defer bf.Close()

	cd := s.DimIndex(schema.DimCustomer)
	q := frag.Query{Preds: []frag.Pred{{Dim: cd, Level: s.Dims[cd].LevelIndex(schema.LvlStore), Member: 2}}}
	ex := NewExecutor(store, bf)
	ex.PrefetchFact = 1
	got, st, err := ex.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if want := engine.Scan(tab, q); got.Count != want.Count || got.DollarSales != want.DollarSales {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	var totalPages int64
	for _, fid := range store.Fragments() {
		loc, _ := store.Loc(fid)
		totalPages += int64(loc.Pages)
	}
	if st.FactPages >= totalPages/2 {
		t.Errorf("sparse 1STORE read %d of %d fact pages — expected substantial skipping", st.FactPages, totalPages)
	}
	if st.RowsRead != st.FactPages && st.RowsRead != got.Count {
		t.Logf("rows read %d, hits %d", st.RowsRead, got.Count)
	}
	if st.RowsRead != got.Count {
		t.Errorf("rows read = %d, want exactly the %d hits", st.RowsRead, got.Count)
	}
}

func TestExecutorPrefetchGranuleEffect(t *testing.T) {
	// Larger granules read at least as many pages in at most as many I/Os.
	s, _, store, bf := buildStore(t, "time::month, product::group")
	cd := s.DimIndex(schema.DimCustomer)
	store1 := s.Dims[cd].LevelIndex(schema.LvlStore)
	q := frag.Query{Preds: []frag.Pred{{Dim: cd, Level: store1, Member: 1}}}

	ex1 := NewExecutor(store, bf)
	ex1.PrefetchFact = 1
	_, st1, err := ex1.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	ex8 := NewExecutor(store, bf)
	ex8.PrefetchFact = 8
	_, st8, err := ex8.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if st8.FactIOs > st1.FactIOs {
		t.Errorf("granule 8 used more I/Os (%d) than granule 1 (%d)", st8.FactIOs, st1.FactIOs)
	}
	if st8.FactPages < st1.FactPages {
		t.Errorf("granule 8 read fewer pages (%d) than granule 1 (%d)", st8.FactPages, st1.FactPages)
	}
}

func TestBitmapEliminationOnDisk(t *testing.T) {
	// Bitmaps at or above the fragmentation level must not be stored.
	s, _, _, bf := buildStore(t, "time::month, product::group")
	td := s.DimIndex(schema.DimTime)
	month := s.Dims[td].LevelIndex(schema.LvlMonth)
	for _, d := range bf.Descs() {
		if d.Dim == td {
			t.Fatalf("time bitmap stored despite time::month fragmentation: %+v", d)
		}
	}
	// Asking for an eliminated bitmap errors.
	if _, _, err := bf.ReadBitmapFragment(0, BitmapDesc{Dim: td, Level: month, Member: 0, Simple: true}); err == nil {
		t.Fatal("eliminated bitmap readable")
	}
}

func TestTupleSizeMatchesPaper(t *testing.T) {
	// APB-1: 4 dimensions -> 4*2 + 12 = 20 bytes, the paper's tuple size;
	// 204 tuples per 4 KB page.
	s := schema.APB1()
	if got := TupleSize(s); got != 20 {
		t.Fatalf("tuple size = %d, want 20", got)
	}
	if got := TuplesPerPage(s); got != 204 {
		t.Fatalf("tuples per page = %d, want 204", got)
	}
}

func TestBuildRejectsWideDimensions(t *testing.T) {
	s := schema.Tiny()
	s.Dims[0].Levels[len(s.Dims[0].Levels)-1].Card = 1 << 17
	// Schema is now invalid for generation too; build directly with a fake
	// table sharing the star.
	tab := &data.Table{Star: s}
	spec := frag.MustParse(s, "time::month")
	if _, err := Build(t.TempDir(), tab, spec); err == nil {
		t.Fatal("oversized dimension accepted")
	}
}

// classQueries returns one query per paper query class Q1-Q4 plus an
// unsupported one, for the tiny schema under FMonthGroup.
func classQueries(t *testing.T, s *schema.Star, spec *frag.Spec) map[string]frag.Query {
	t.Helper()
	pd := s.DimIndex(schema.DimProduct)
	td := s.DimIndex(schema.DimTime)
	cd := s.DimIndex(schema.DimCustomer)
	group := s.Dims[pd].LevelIndex(schema.LvlGroup)
	code := s.Dims[pd].LevelIndex(schema.LvlCode)
	month := s.Dims[td].LevelIndex(schema.LvlMonth)
	quarter := s.Dims[td].LevelIndex(schema.LvlQuarter)
	store := s.Dims[cd].LevelIndex(schema.LvlStore)
	qs := map[string]frag.Query{
		"Q1":          {Preds: []frag.Pred{{Dim: td, Level: month, Member: 1}, {Dim: pd, Level: group, Member: 0}}},
		"Q2":          {Preds: []frag.Pred{{Dim: pd, Level: code, Member: 3}}},
		"Q3":          {Preds: []frag.Pred{{Dim: td, Level: quarter, Member: 1}}},
		"Q4":          {Preds: []frag.Pred{{Dim: pd, Level: code, Member: 5}, {Dim: td, Level: quarter, Member: 0}}},
		"unsupported": {Preds: []frag.Pred{{Dim: cd, Level: store, Member: 2}}},
	}
	for name, q := range qs {
		want := name
		if want == "unsupported" {
			if got := spec.Classify(q); got != frag.Unsupported {
				t.Fatalf("%s query classified %v", name, got)
			}
			continue
		}
		if got := spec.Classify(q).String(); got != want {
			t.Fatalf("%s query classified %s", name, got)
		}
	}
	return qs
}

// TestExecutorParallelMatchesSequential asserts the determinism guarantee:
// at every worker count the parallel executor returns results identical to
// the sequential path — same Aggregate and same IOStats — for all four
// query classes Q1-Q4 and an unsupported query.
func TestExecutorParallelMatchesSequential(t *testing.T) {
	s, tab, store, bf := buildStore(t, "time::month, product::group")
	for name, q := range classQueries(t, s, store.spec) {
		seq := NewExecutor(store, bf)
		seq.Workers = 1
		wantAgg, wantSt, err := seq.Execute(q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if oracle := engine.Scan(tab, q); wantAgg.Count != oracle.Count || wantAgg.DollarSales != oracle.DollarSales {
			t.Fatalf("%s: sequential result %+v disagrees with scan %+v", name, wantAgg, oracle)
		}
		for _, workers := range []int{2, 4, 8, 0} { // 0 = GOMAXPROCS default
			par := NewExecutor(store, bf)
			par.Workers = workers
			gotAgg, gotSt, err := par.Execute(q)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if gotAgg != wantAgg {
				t.Errorf("%s workers=%d: aggregate %+v != sequential %+v", name, workers, gotAgg, wantAgg)
			}
			if gotSt != wantSt {
				t.Errorf("%s workers=%d: IOStats %+v != sequential %+v", name, workers, gotSt, wantSt)
			}
		}
	}
}

// TestExecutorConcurrentQueries exercises one shared executor (and thus
// the shared files and the internal/exec pool) under concurrent queries —
// the -race target for the storage layer.
func TestExecutorConcurrentQueries(t *testing.T) {
	s, tab, store, bf := buildStore(t, "time::month, product::group")
	ex := NewExecutor(store, bf)
	ex.Workers = 4
	qs := classQueries(t, s, store.spec)
	var wg sync.WaitGroup
	for name, q := range qs {
		for c := 0; c < 4; c++ {
			wg.Add(1)
			go func(name string, q frag.Query) {
				defer wg.Done()
				for rep := 0; rep < 5; rep++ {
					got, _, err := ex.Execute(q)
					if err != nil {
						t.Errorf("%s: %v", name, err)
						return
					}
					want := engine.Scan(tab, q)
					if got.Count != want.Count || got.DollarSales != want.DollarSales ||
						got.UnitsSold != want.UnitsSold || got.Cost != want.Cost {
						t.Errorf("%s: got %+v, want %+v", name, got, want)
						return
					}
				}
			}(name, q)
		}
	}
	wg.Wait()
}

// TestExecutorContextCancellation asserts that a cancelled context aborts
// the scatter and surfaces the cancellation.
func TestExecutorContextCancellation(t *testing.T) {
	s, _, store, bf := buildStore(t, "time::month, product::group")
	cd := s.DimIndex(schema.DimCustomer)
	q := frag.Query{Preds: []frag.Pred{{Dim: cd, Level: s.Dims[cd].LevelIndex(schema.LvlStore), Member: 2}}}
	ex := NewExecutor(store, bf)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := ex.ExecuteContext(ctx, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
