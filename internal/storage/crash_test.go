package storage

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/schema"
)

// reopenLog closes l and reopens the journal in dir, returning the
// replayed records — the crash-recovery round trip.
func reopenLog(t *testing.T, l *DeltaLog, dir string, star *schema.Star) (*DeltaLog, []DeltaRecord) {
	t.Helper()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	re, recs, err := OpenDeltaLog(dir, star)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { re.Close() })
	return re, recs
}

func TestJournalReplayRecoversAckedSegments(t *testing.T) {
	star := schema.Tiny()
	dir := t.TempDir()
	l, _, err := OpenDeltaLog(dir, star)
	if err != nil {
		t.Fatal(err)
	}
	_, segs := sealSegments(t, star, 4, 17, 1)
	for _, seg := range segs {
		if err := l.AppendSegment(seg, false); err != nil {
			t.Fatal(err)
		}
	}
	// "Crash": no Reset, no graceful teardown beyond releasing the fd.
	_, recs := reopenLog(t, l, dir, star)
	if len(recs) != len(segs) {
		t.Fatalf("recovered %d records, want %d", len(recs), len(segs))
	}
	for i, rec := range recs {
		seg := segs[i]
		if rec.Frag != seg.Frag() || rec.Seq != seg.Seq() || rec.Rows() != seg.Rows() || rec.Replace {
			t.Fatalf("record %d = frag %d seq %d rows %d replace %v, want frag %d seq %d rows %d replace false",
				i, rec.Frag, rec.Seq, rec.Rows(), rec.Replace, seg.Frag(), seg.Seq(), seg.Rows())
		}
		for i2 := 0; i2 < seg.Rows(); i2++ {
			for d := range rec.Leaves {
				if rec.Leaves[d][i2] != seg.Leaves(d)[i2] {
					t.Fatalf("record %d row %d dim %d: leaf %d != %d", i, i2, d, rec.Leaves[d][i2], seg.Leaves(d)[i2])
				}
			}
			if rec.Units[i2] != seg.Units()[i2] || rec.Dollars[i2] != seg.Dollars()[i2] || rec.Costs[i2] != seg.Costs()[i2] {
				t.Fatalf("record %d row %d: measures differ", i, i2)
			}
		}
	}
}

func TestJournalReplayPreservesReplaceFlag(t *testing.T) {
	star := schema.Tiny()
	dir := t.TempDir()
	l, _, err := OpenDeltaLog(dir, star)
	if err != nil {
		t.Fatal(err)
	}
	_, segs := sealSegments(t, star, 3, 8)
	if err := l.AppendSegment(segs[0], false); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendSegment(segs[1], true); err != nil {
		t.Fatal(err)
	}
	_, recs := reopenLog(t, l, dir, star)
	if len(recs) != 2 || recs[0].Replace || !recs[1].Replace {
		t.Fatalf("replace flags = %v, want [false true]", []bool{recs[0].Replace, recs[1].Replace})
	}
}

func TestJournalTruncatesTornTail(t *testing.T) {
	star := schema.Tiny()
	for name, tear := range map[string]func(t *testing.T, path string){
		// A record cut short mid-write: drop the last 5 bytes.
		"short-payload": func(t *testing.T, path string) {
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, fi.Size()-5); err != nil {
				t.Fatal(err)
			}
		},
		// A bit flip inside the last record's payload.
		"corrupt-payload": func(t *testing.T, path string) {
			f, err := os.OpenFile(path, os.O_RDWR, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			fi, err := f.Stat()
			if err != nil {
				t.Fatal(err)
			}
			b := []byte{0}
			if _, err := f.ReadAt(b, fi.Size()-3); err != nil {
				t.Fatal(err)
			}
			b[0] ^= 0x40
			if _, err := f.WriteAt(b, fi.Size()-3); err != nil {
				t.Fatal(err)
			}
		},
		// Garbage appended after the last full record (a header that never
		// finished writing).
		"garbage-tail": func(t *testing.T, path string) {
			f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 1, 2, 3}); err != nil {
				t.Fatal(err)
			}
		},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			l, _, err := OpenDeltaLog(dir, star)
			if err != nil {
				t.Fatal(err)
			}
			_, segs := sealSegments(t, star, 6, 9, 2)
			var intactBytes int64
			for i, seg := range segs {
				if err := l.AppendSegment(seg, false); err != nil {
					t.Fatal(err)
				}
				if i < len(segs)-1 {
					intactBytes += int64(recHeaderSize + seg.Rows()*TupleSize(star))
				}
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, deltaFileName)
			tear(t, path)

			re, recs, err := OpenDeltaLog(dir, star)
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			// Only the intact prefix survives; for the garbage-tail case all
			// records are intact, the garbage alone is dropped.
			wantRecs := len(segs) - 1
			if name == "garbage-tail" {
				wantRecs = len(segs)
				intactBytes += int64(recHeaderSize + segs[len(segs)-1].Rows()*TupleSize(star))
			}
			if len(recs) != wantRecs {
				t.Fatalf("recovered %d records, want %d", len(recs), wantRecs)
			}
			// The tear is physically truncated away, so the next append
			// lands on a clean tail.
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if fi.Size() != intactBytes {
				t.Fatalf("journal size after recovery = %d, want %d", fi.Size(), intactBytes)
			}
			if err := re.AppendSegment(segs[len(segs)-1], false); err != nil {
				t.Fatal(err)
			}
			if err := re.Close(); err != nil {
				t.Fatal(err)
			}
			re2, recs2, err := OpenDeltaLog(dir, star)
			if err != nil {
				t.Fatal(err)
			}
			defer re2.Close()
			if len(recs2) != wantRecs+1 {
				t.Fatalf("after re-append: recovered %d records, want %d", len(recs2), wantRecs+1)
			}
		})
	}
}
