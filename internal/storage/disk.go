package storage

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/alloc"
)

// DiskSet models the D disks of the paper's Shared Disk configuration as
// D independent serialized I/O queues: every physical read of a page run
// is routed to one disk (per an alloc.Placement) and holds that disk
// exclusively for the configured access delay plus the transfer, so two
// reads on the same disk queue behind each other while reads on distinct
// disks proceed in parallel. This makes declustering measurable — with a
// nonzero per-disk delay, query response time is bounded below by the
// bottleneck disk's queue length, exactly the quantity the paper's
// allocation schemes minimise.
//
// A DiskSet is shared between a Store and its BitmapFile (see Decluster)
// so that staggered bitmap placement competes for the same D disks as the
// fact fragments, as in Figure 2.
type DiskSet struct {
	disks []diskQueue
	// retry holds the read retry policy override (nil means defaults); see
	// fault.go for the retry/breaker machinery.
	retry atomic.Pointer[RetryPolicy]
}

// diskQueue is one virtual disk: a mutex serializing its accesses, an
// atomically adjustable per-access delay, access counters, and the
// disk's fault state (plan + PRNG, sticky failure, circuit breaker).
type diskQueue struct {
	mu    sync.Mutex
	delay atomic.Int64 // simulated access time, ns
	ios   atomic.Int64
	pages atomic.Int64
	// poolHits/poolPages count reads the buffer pool absorbed — accesses
	// this disk would have served without the pool. They never touch the
	// queue: a pool hit costs no disk time by construction.
	poolHits  atomic.Int64
	poolPages atomic.Int64

	// Fault machinery (fault.go). plan/rng/corruptNext are guarded by mu;
	// the breaker has its own mutex so open-state checks never queue
	// behind a slow access.
	plan   *FaultPlan
	rng    *rand.Rand
	failed atomic.Bool
	brk    breaker

	// Resilience counters.
	retries       atomic.Int64 // re-read attempts after a failed read
	trips         atomic.Int64 // breaker open transitions
	checksumFails atomic.Int64 // pages whose CRC32C did not match
	injected      atomic.Int64 // faults injected by the plan
}

// DiskStats is one disk's access counters — the observable per-disk load
// used to measure allocation balance, plus its resilience counters.
type DiskStats struct {
	IOs   int64
	Pages int64
	// PoolHits/PoolPages count the accesses the buffer pool served in this
	// disk's stead (attributed to the disk the placement would have routed
	// them to). IOs/Pages stay purely physical.
	PoolHits  int64
	PoolPages int64
	// Retries counts re-read attempts after failed reads, BreakerTrips the
	// times this disk's circuit breaker opened, ChecksumFailures the pages
	// whose CRC32C did not match, and InjectedFaults the faults the active
	// FaultPlan injected.
	Retries          int64
	BreakerTrips     int64
	ChecksumFailures int64
	InjectedFaults   int64
}

// NewDiskSet builds a set of d idle virtual disks (d >= 1).
func NewDiskSet(d int) *DiskSet {
	if d < 1 {
		d = 1
	}
	return &DiskSet{disks: make([]diskQueue, d)}
}

// Disks returns the number of disks in the set.
func (ds *DiskSet) Disks() int { return len(ds.disks) }

// SetIODelay sets every disk's simulated access time — the seek + settle +
// controller latency of the paper's Table 4 disk model. Zero disables the
// delay (reads still serialize per disk). Safe to call concurrently with
// running queries.
func (ds *DiskSet) SetIODelay(d time.Duration) {
	for i := range ds.disks {
		ds.disks[i].delay.Store(int64(d))
	}
}

// SetDiskIODelay sets one disk's access time, for modelling heterogeneous
// devices or a degraded disk.
func (ds *DiskSet) SetDiskIODelay(disk int, d time.Duration) {
	ds.disks[disk].delay.Store(int64(d))
}

// Stats snapshots the per-disk access counters accumulated since the last
// ResetStats.
func (ds *DiskSet) Stats() []DiskStats {
	out := make([]DiskStats, len(ds.disks))
	for i := range ds.disks {
		out[i] = DiskStats{
			IOs:              ds.disks[i].ios.Load(),
			Pages:            ds.disks[i].pages.Load(),
			PoolHits:         ds.disks[i].poolHits.Load(),
			PoolPages:        ds.disks[i].poolPages.Load(),
			Retries:          ds.disks[i].retries.Load(),
			BreakerTrips:     ds.disks[i].trips.Load(),
			ChecksumFailures: ds.disks[i].checksumFails.Load(),
			InjectedFaults:   ds.disks[i].injected.Load(),
		}
	}
	return out
}

// ResetStats zeroes the per-disk access counters.
func (ds *DiskSet) ResetStats() {
	for i := range ds.disks {
		ds.disks[i].ios.Store(0)
		ds.disks[i].pages.Store(0)
		ds.disks[i].poolHits.Store(0)
		ds.disks[i].poolPages.Store(0)
		ds.disks[i].retries.Store(0)
		ds.disks[i].trips.Store(0)
		ds.disks[i].checksumFails.Store(0)
		ds.disks[i].injected.Store(0)
	}
}

// notePoolHit records a read the buffer pool absorbed on behalf of disk
// `disk` — pure accounting, the disk queue is never entered.
func (ds *DiskSet) notePoolHit(disk, pages int) {
	q := &ds.disks[disk]
	q.poolHits.Add(1)
	q.poolPages.Add(int64(pages))
}

// do performs one physical access of `pages` pages on disk `disk`: the
// disk is held exclusively for the simulated access delay and the read
// itself, serializing concurrent accesses to the same disk.
func (ds *DiskSet) do(disk, pages int, read func() error) error {
	q := &ds.disks[disk]
	q.mu.Lock()
	if d := q.delay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	err := read()
	q.mu.Unlock()
	q.ios.Add(1)
	q.pages.Add(int64(pages))
	return err
}

// validatePlacement checks that a placement is usable with this set.
func (ds *DiskSet) validatePlacement(p alloc.Placement) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if p.Disks != len(ds.disks) {
		return fmt.Errorf("storage: placement over %d disks, disk set has %d", p.Disks, len(ds.disks))
	}
	return nil
}

// Decluster shards the store's fact fragments across the disk set per the
// placement's fact scheme: every subsequent physical read of fragment id
// routes through disk p.FactDisk(id)'s serialized queue instead of the
// store's single implicit disk. Passing a nil set restores the single-disk
// behaviour. The executor detects a declustered store and switches to
// placement-keyed dispatch with work stealing.
func (s *Store) Decluster(p alloc.Placement, ds *DiskSet) error {
	if ds == nil {
		s.disks, s.placement = nil, alloc.Placement{}
		return nil
	}
	if err := ds.validatePlacement(p); err != nil {
		return err
	}
	s.disks, s.placement = ds, p
	return nil
}

// Declustered reports the store's disk set (nil when single-disk).
func (s *Store) Declustered() *DiskSet { return s.disks }

// Placement returns the active placement (zero value when single-disk).
func (s *Store) Placement() alloc.Placement { return s.placement }

// DiskOf returns the disk holding fact fragment id (0 when single-disk).
func (s *Store) DiskOf(id int64) int {
	if s.disks == nil {
		return 0
	}
	return s.placement.FactDisk(id)
}

// Decluster shards the bitmap fragments across the disk set: the i-th
// surviving bitmap of fact fragment id routes through disk
// p.BitmapDisk(id, i) — the staggered placement of Figure 2 when
// p.Staggered is set, co-located with the fact fragment otherwise. Use
// the same DiskSet as the fact store so both compete for the same disks.
// Passing a nil set restores the single-disk behaviour.
func (bf *BitmapFile) Decluster(p alloc.Placement, ds *DiskSet) error {
	if ds == nil {
		bf.disks, bf.placement = nil, alloc.Placement{}
		return nil
	}
	if err := ds.validatePlacement(p); err != nil {
		return err
	}
	bf.disks, bf.placement = ds, p
	return nil
}

// Declustered reports the bitmap file's disk set (nil when single-disk).
func (bf *BitmapFile) Declustered() *DiskSet { return bf.disks }

// Decluster shards a store and its bitmap file (which may be nil) across
// one new DiskSet per the placement, atomically: the placement and the
// store/bitmap-file pairing are validated before either component is
// modified, so a failure can never leave the pair half-declustered —
// previously a bitmap-file error after the store had already switched
// would strand fact reads on the new disks while bitmap reads stayed on
// the old ones. Should a component mutation fail anyway, the store is
// rolled back to its prior disk set and placement before returning.
func Decluster(s *Store, bf *BitmapFile, p alloc.Placement) (*DiskSet, error) {
	ds := NewDiskSet(p.Disks)
	// Validate everything up front: the placement itself, and that the
	// bitmap file belongs to the store (a foreign file would accept the
	// placement today yet desynchronise the pair's physical layout).
	if err := ds.validatePlacement(p); err != nil {
		return nil, err
	}
	if bf != nil && (bf.star != s.star || bf.spec != s.spec) {
		return nil, fmt.Errorf("storage: bitmap file belongs to a different store (schema/fragmentation mismatch)")
	}
	prevDisks, prevPlacement := s.disks, s.placement
	if err := s.Decluster(p, ds); err != nil {
		return nil, err
	}
	if bf != nil {
		if err := bf.Decluster(p, ds); err != nil {
			s.disks, s.placement = prevDisks, prevPlacement // undo
			return nil, err
		}
	}
	return ds, nil
}
