package storage

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/bitmap"
	"repro/internal/exec"
	"repro/internal/frag"
	"repro/internal/kernel"
)

// SharedResult is one query's outcome in a shared multi-query scan: the
// flattened result (the warehouse surface), the un-flattened partial
// (the cluster node surface), the query's own *logical* I/O statistics
// — byte-identical to what its solo execution would report — and the
// physical savings sharing bought it. Err carries a per-query
// validation failure; batch-wide failures (I/O errors, cancellation)
// fail the whole call instead so every caller can fall back to solo
// execution.
type SharedResult struct {
	Res    kernel.Result
	Part   kernel.FragPartial
	St     IOStats
	Shared kernel.SharedScanStats
	Err    error
}

// sharedSlot is one query's pre-dispatch state.
type sharedSlot struct {
	q   frag.Query
	gr  *kernel.Grouper
	err error
}

// slotPart is one slot's contribution from one fragment task.
type slotPart struct {
	slot   int
	fp     kernel.FragPartial
	st     IOStats
	shared kernel.SharedScanStats
}

// sharedTaskPart is one fragment task's output: the per-slot partials of
// every query that needed the fragment.
type sharedTaskPart struct {
	parts []slotPart
}

// sharedAcc folds the tasks' outputs per slot.
type sharedAcc struct {
	agg    []kernel.Aggregate
	g      []*kernel.Grouped
	st     []IOStats
	shared []kernel.SharedScanStats
}

// bmCached is one physically-read bitmap fragment cached for the
// duration of a fragment task, so batch-mates selecting the same bitmap
// reuse the pages instead of re-reading them.
type bmCached struct {
	bs    *bitmap.Bitset
	c     *bitmap.Compressed
	pages int
}

// sharedScratch extends the per-worker executor scratch with the shared
// path's per-task state: the bitmap read cache, per-slot selection
// masks, the mask union, and the granule ownership table.
type sharedScratch struct {
	sc      *execScratch
	bm      map[BitmapDesc]*bmCached
	entries []*bmCached // bmCached freelist, reused across tasks
	used    int
	masks   []*bitmap.Bitset
	union   *bitmap.Bitset
	payer   []int32 // granule index -> first-paying local slot (-1 = unread)
	ugran   []granule
}

func (e *Executor) newSharedScratch() *sharedScratch {
	return &sharedScratch{
		sc:    e.newScratch(),
		bm:    make(map[BitmapDesc]*bmCached),
		union: bitmap.New(0),
	}
}

// reset clears the per-task bitmap cache, recycling its entries.
func (sc *sharedScratch) reset() {
	for k := range sc.bm {
		delete(sc.bm, k)
	}
	sc.used = 0
}

func (sc *sharedScratch) entry() *bmCached {
	if sc.used < len(sc.entries) {
		ent := sc.entries[sc.used]
		sc.used++
		return ent
	}
	ent := &bmCached{bs: bitmap.New(0), c: &bitmap.Compressed{}}
	sc.entries = append(sc.entries, ent)
	sc.used++
	return ent
}

// mask returns the k-th per-slot selection mask, growing the pool.
func (sc *sharedScratch) mask(k int) *bitmap.Bitset {
	for len(sc.masks) <= k {
		sc.masks = append(sc.masks, bitmap.New(0))
	}
	return sc.masks[k]
}

// cachedBitmap reads one materialised bitmap fragment through the task
// cache: the first slot needing it pays the physical read (attributed
// to st), later slots get the cached bitset back. The hit flag lets the
// caller count the saved physical read.
func (sc *sharedScratch) cachedBitmap(ctx context.Context, e *Executor, id int64, desc BitmapDesc, st *IOStats) (*bmCached, bool, error) {
	if ent, ok := sc.bm[desc]; ok {
		return ent, true, nil
	}
	ent := sc.entry()
	var err error
	var pages int
	_, sc.sc.bbuf, pages, err = e.bitmaps.readBitmapInto(ctx, ent.bs, sc.sc.bbuf, id, desc, st)
	if err != nil {
		return nil, false, err
	}
	ent.pages = pages
	sc.bm[desc] = ent
	return ent, false, nil
}

// cachedCompressed is cachedBitmap for the WAH fast path.
func (sc *sharedScratch) cachedCompressed(ctx context.Context, e *Executor, id int64, desc BitmapDesc, st *IOStats) (*bmCached, bool, error) {
	if ent, ok := sc.bm[desc]; ok {
		return ent, true, nil
	}
	ent := sc.entry()
	var err error
	var pages int
	_, sc.sc.bbuf, pages, err = e.bitmaps.readCompressedInto(ctx, ent.c, sc.sc.bbuf, id, desc, st)
	if err != nil {
		return nil, false, err
	}
	ent.pages = pages
	sc.bm[desc] = ent
	return ent, false, nil
}

// sharedMask computes one slot's selection mask for the fragment via the
// task's bitmap cache. It returns nil when the query needs no bitmap in
// this fragment (every row is relevant — the solo scanWhole path); an
// empty mask means no row matches. Logical bitmap counters land on st
// exactly as solo execution counts them; physically-saved reads land on
// sh.
func (e *Executor) sharedMask(ctx context.Context, id int64, rows int, q frag.Query, mask *bitmap.Bitset, st *IOStats, sh *kernel.SharedScanStats, sc *sharedScratch) (*bitmap.Bitset, error) {
	if e.bitmaps.compressed {
		return e.sharedMaskCompressed(ctx, id, rows, q, mask, st, sh, sc)
	}
	spec := e.store.spec
	first := true
	for _, pr := range q.Preds {
		if !spec.NeedsBitmap(pr) {
			continue
		}
		if e.bitmaps.icfg[pr.Dim].Kind == frag.SimpleIndexes {
			ent, hit, err := sc.cachedBitmap(ctx, e, id, BitmapDesc{Dim: pr.Dim, Level: pr.Level, Member: pr.Member, Simple: true}, st)
			st.BitmapIOs++
			if err != nil {
				return nil, err
			}
			st.BitmapPages += int64(ent.pages)
			if hit {
				sh.PhysReadsSaved++
			}
			if first {
				mask.Reinit(ent.bs.Len())
				mask.CopyFrom(ent.bs)
			} else {
				mask.And(ent.bs)
			}
			first = false
			continue
		}
		layout := e.bitmaps.layouts[pr.Dim]
		skip := e.bitmaps.skipBits[pr.Dim]
		hi := layout.PrefixBits(pr.Level)
		if hi <= skip {
			dim := &e.store.star.Dims[pr.Dim]
			return nil, fmt.Errorf("storage: predicate on %s.%s needs no bitmaps", dim.Name, dim.Levels[pr.Level].Name)
		}
		pattern := layout.EncodePrefix(pr.Level, pr.Member)
		for b := skip; b < hi; b++ {
			ent, hit, err := sc.cachedBitmap(ctx, e, id, BitmapDesc{Dim: pr.Dim, Bit: b}, st)
			if err != nil {
				return nil, err
			}
			st.BitmapIOs++
			st.BitmapPages += int64(ent.pages)
			if hit {
				sh.PhysReadsSaved++
			}
			verbatim := pattern>>uint(hi-1-b)&1 == 1
			if first {
				mask.Reinit(ent.bs.Len())
				mask.CopyFrom(ent.bs)
				if !verbatim {
					mask.Not()
				}
				first = false
				continue
			}
			if verbatim {
				mask.And(ent.bs)
			} else {
				mask.AndNot(ent.bs)
			}
		}
	}
	if first {
		return nil, nil // no bitmap access: every fragment row is relevant
	}
	return mask, nil
}

// sharedMaskCompressed mirrors processFragmentCompressed: collect the
// predicates' WAH operands (through the task cache), one k-way AndAll
// plus AndNot folds, then decompress the intersection into the slot's
// mask so the shared row walk is uniform across paths.
func (e *Executor) sharedMaskCompressed(ctx context.Context, id int64, rows int, q frag.Query, mask *bitmap.Bitset, st *IOStats, sh *kernel.SharedScanStats, sc *sharedScratch) (*bitmap.Bitset, error) {
	spec := e.store.spec
	pos, neg := sc.sc.pos[:0], sc.sc.neg[:0]
	anyBitmap := false
	read := func(desc BitmapDesc) (*bitmap.Compressed, error) {
		ent, hit, err := sc.cachedCompressed(ctx, e, id, desc, st)
		if err != nil {
			return nil, err
		}
		st.BitmapIOs++
		st.BitmapPages += int64(ent.pages)
		if hit {
			sh.PhysReadsSaved++
		}
		return ent.c, nil
	}
	for _, pr := range q.Preds {
		if !spec.NeedsBitmap(pr) {
			continue
		}
		anyBitmap = true
		if e.bitmaps.icfg[pr.Dim].Kind == frag.SimpleIndexes {
			c, err := read(BitmapDesc{Dim: pr.Dim, Level: pr.Level, Member: pr.Member, Simple: true})
			if err != nil {
				return nil, err
			}
			pos = append(pos, c)
			continue
		}
		layout := e.bitmaps.layouts[pr.Dim]
		skip := e.bitmaps.skipBits[pr.Dim]
		hi := layout.PrefixBits(pr.Level)
		if hi <= skip {
			dim := &e.store.star.Dims[pr.Dim]
			return nil, fmt.Errorf("storage: predicate on %s.%s needs no bitmaps", dim.Name, dim.Levels[pr.Level].Name)
		}
		pattern := layout.EncodePrefix(pr.Level, pr.Member)
		for b := skip; b < hi; b++ {
			c, err := read(BitmapDesc{Dim: pr.Dim, Bit: b})
			if err != nil {
				return nil, err
			}
			if pattern>>uint(hi-1-b)&1 == 1 {
				pos = append(pos, c)
			} else {
				neg = append(neg, c)
			}
		}
	}
	sc.sc.pos, sc.sc.neg = pos, neg
	if !anyBitmap {
		return nil, nil
	}
	var res *bitmap.Compressed
	if len(pos) > 0 {
		res = bitmap.AndAllInto(sc.sc.cres, pos...)
	} else {
		res = bitmap.CompressedOnesInto(sc.sc.cres, rows)
	}
	sc.sc.cres = res
	for _, n := range neg {
		res = bitmap.AndNotInto(sc.sc.ctmp, res, n)
		sc.sc.cres, sc.sc.ctmp = res, sc.sc.cres
	}
	if !res.Any() {
		mask.Reinit(rows)
		return mask, nil // empty intersection: no fact page is touched
	}
	return res.DecompressInto(mask), nil
}

// ExecuteSharedDeltas executes K queries against one pinned snapshot in
// a single shared pass: the union of the queries' relevant fragments is
// dispatched as one task set (through the scheduler and the declustered
// sharded queues exactly like solo execution), and each fragment task
// performs one physical bitmap selection + granule read stream that
// feeds every query needing the fragment. Per-query results — including
// the logical I/O statistics — are byte-identical to K solo executions
// against the same snapshot; only the physical read counts shrink.
func (e *Executor) ExecuteSharedDeltas(ctx context.Context, qs []frag.Query, deltas kernel.Deltas, own func(int64) bool) ([]SharedResult, error) {
	star := e.store.star
	spec := e.store.spec
	slots := make([]sharedSlot, len(qs))
	taskOf := make(map[int64][]int32)
	var unionIDs []int64
	for s, q := range qs {
		slots[s].q = q
		if err := q.Validate(star); err != nil {
			slots[s].err = err
			continue
		}
		gr, err := kernel.NewGrouper(star, spec, q.GroupBy)
		if err != nil {
			slots[s].err = err
			continue
		}
		slots[s].gr = gr
		for _, id := range spec.FragmentIDs(q) {
			if own != nil && !own(id) {
				continue
			}
			if _, ok := taskOf[id]; !ok {
				unionIDs = append(unionIDs, id)
			}
			taskOf[id] = append(taskOf[id], int32(s))
		}
	}
	sortIDs(unionIDs)

	tpp := TuplesPerPage(star)
	g := e.PrefetchFact

	run := func(sc *sharedScratch, ti int) (sharedTaskPart, error) {
		sc.reset()
		id := unionIDs[ti]
		members := taskOf[id]
		out := sharedTaskPart{parts: make([]slotPart, len(members))}
		kslots := make([]kernel.Slot, len(members))
		for k, s := range members {
			out.parts[k].slot = int(s)
			kslots[k] = kernel.NewSlot(slots[s].gr, id)
		}
		loc, ok := e.store.Loc(id)
		if ok {
			if err := ctx.Err(); err != nil {
				return sharedTaskPart{}, err
			}
			shared := len(members) >= 2
			rows := int(loc.Rows)
			masks := make([]*bitmap.Bitset, len(members))
			anyNil := false
			for k, s := range members {
				p := &out.parts[k]
				m, err := e.sharedMask(ctx, id, rows, slots[s].q, sc.mask(k), &p.st, &p.shared, sc)
				if err != nil {
					return sharedTaskPart{}, err
				}
				masks[k] = m
				if m == nil {
					anyNil = true
				}
				if shared {
					p.shared.FragmentsShared = 1
				}
			}

			// Per-slot logical granule lists (exactly the solo readHits /
			// scanWhole lists) drive both the logical Fact counters and the
			// union read list; the first slot listing a granule pays its
			// physical read, later slots record the saving.
			granules := int(math.Ceil(float64(loc.Pages) / float64(g)))
			if cap(sc.payer) < granules {
				sc.payer = make([]int32, granules)
			}
			sc.payer = sc.payer[:granules]
			for i := range sc.payer {
				sc.payer[i] = -1
			}
			visit := func(k int, gi, count int) {
				p := &out.parts[k]
				p.st.FactIOs++
				p.st.FactPages += int64(count)
				if sc.payer[gi] == -1 {
					sc.payer[gi] = int32(k)
				} else {
					p.shared.PhysReadsSaved++
				}
			}
			for k := range members {
				m := masks[k]
				if m == nil {
					for gi := 0; gi < granules; gi++ {
						count := g
						if gi*g+count > int(loc.Pages) {
							count = int(loc.Pages) - gi*g
						}
						visit(k, gi, count)
					}
					continue
				}
				next := m.NextSet(0)
				for gi := 0; gi < granules && next >= 0; gi++ {
					rowHi := (gi + 1) * g * tpp
					if next >= rowHi {
						continue
					}
					count := g
					if gi*g+count > int(loc.Pages) {
						count = int(loc.Pages) - gi*g
					}
					visit(k, gi, count)
					next = m.NextSet(rowHi)
				}
			}
			sc.ugran = sc.ugran[:0]
			for gi := 0; gi < granules; gi++ {
				if sc.payer[gi] < 0 {
					continue
				}
				count := g
				if gi*g+count > int(loc.Pages) {
					count = int(loc.Pages) - gi*g
				}
				sc.ugran = append(sc.ugran, granule{start: int32(gi * g), count: int32(count)})
			}

			// Row union for the masked-only walk.
			var rowUnion *bitmap.Bitset
			if !anyNil && len(members) > 0 {
				rowUnion = masks[0]
				if len(members) > 1 {
					sc.union.Reinit(rows)
					sc.union.CopyFrom(masks[0])
					for _, m := range masks[1:] {
						sc.union.Or(m)
					}
					rowUnion = sc.union
				}
			}

			// One physical stream over the union granules feeds every slot.
			// The pipe's counters land in phys: its Fact counters are the
			// physical read set (the per-slot logical counts are already
			// accounted above) and its pool counters are credited to the
			// granule's paying slot.
			var phys IOStats
			pipe := e.startGranules(ctx, sc.sc, &phys, id, sc.ugran)
			prev := phys
			var readErr error
			for range sc.ugran {
				gr, buf, err := pipe.next()
				if err != nil {
					readErr = err
					break
				}
				payer := &out.parts[sc.payer[int(gr.start)/g]]
				payer.st.PoolHits += phys.PoolHits - prev.PoolHits
				payer.st.PoolMisses += phys.PoolMisses - prev.PoolMisses
				payer.st.PoolBytes += phys.PoolBytes - prev.PoolBytes
				prev = phys
				rowLo := int(gr.start) * tpp
				rowHi := rowLo + int(gr.count)*tpp
				if rowHi > rows {
					rowHi = rows
				}
				if anyNil {
					for r := rowLo; r < rowHi; r++ {
						pageIn := r/tpp - int(gr.start)
						off := pageIn*e.store.pageSize + (r%tpp)*e.store.tupleSize
						tp, _ := e.store.decodeTuple(buf, off, sc.sc.keys)
						for k := range kslots {
							if masks[k] == nil || masks[k].Get(r) {
								kslots[k].AddLeaves(tp.Keys, int64(tp.UnitsSold), int64(tp.DollarSales), int64(tp.Cost))
							}
						}
					}
					continue
				}
				for r := rowUnion.NextSet(rowLo); r >= 0 && r < rowHi; r = rowUnion.NextSet(r + 1) {
					pageIn := r/tpp - int(gr.start)
					off := pageIn*e.store.pageSize + (r%tpp)*e.store.tupleSize
					tp, _ := e.store.decodeTuple(buf, off, sc.sc.keys)
					for k := range kslots {
						if masks[k].Get(r) {
							kslots[k].AddLeaves(tp.Keys, int64(tp.UnitsSold), int64(tp.DollarSales), int64(tp.Cost))
						}
					}
				}
			}
			if readErr != nil {
				return sharedTaskPart{}, readErr
			}
			pipe.finish()
		}

		// Base rows first, then each slot's delta segments in seal order —
		// the same fold order as solo execution.
		for k, s := range members {
			p := &out.parts[k]
			p.st.RowsRead += kslots[k].Rows
			if !deltas.Empty() {
				if sc.sc.dsc == nil {
					sc.sc.dsc = frag.NewDeltaScratch()
				}
				n, err := kernel.AddDelta(deltas, id, slots[s].q, &kslots[k].FP, kslots[k].Base, kslots[k].PerRow, sc.sc.dsc)
				if err != nil {
					return sharedTaskPart{}, err
				}
				p.st.DeltaRows += n
			}
			p.fp = kslots[k].FP
		}
		return out, nil
	}

	merge := func(a *sharedAcc, p sharedTaskPart) {
		if a.agg == nil {
			a.agg = make([]kernel.Aggregate, len(qs))
			a.g = make([]*kernel.Grouped, len(qs))
			a.st = make([]IOStats, len(qs))
			a.shared = make([]kernel.SharedScanStats, len(qs))
		}
		for _, sp := range p.parts {
			s := sp.slot
			if slots[s].gr != nil && a.g[s] == nil {
				a.g[s] = kernel.NewGrouped()
			}
			sp.fp.MergeInto(&a.agg[s], a.g[s])
			a.st[s].Add(sp.st)
			a.shared[s].FragmentsShared += sp.shared.FragmentsShared
			a.shared[s].PhysReadsSaved += sp.shared.PhysReadsSaved
		}
	}

	var a sharedAcc
	var err error
	ds := e.store.disks
	declustered := ds != nil && ds.Disks() > 1
	switch {
	case e.Sched != nil && declustered:
		placement := e.store.placement
		a, err = exec.ReduceShardedOn(ctx, e.Sched, len(unionIDs),
			func(i int) int { return placement.FactDisk(unionIDs[i]) }, ds.Disks(),
			e.newSharedScratch, run, merge)
	case e.Sched != nil:
		a, err = exec.ReduceOn(ctx, e.Sched, len(unionIDs), e.newSharedScratch, run, merge)
	case declustered:
		placement := e.store.placement
		a, err = exec.ReduceShardedWith(ctx, e.Workers, len(unionIDs),
			func(i int) int { return placement.FactDisk(unionIDs[i]) }, ds.Disks(),
			e.newSharedScratch, run, merge)
	default:
		a, err = exec.ReduceWith(ctx, e.Workers, len(unionIDs), e.newSharedScratch, run, merge)
	}
	if err != nil {
		return nil, err
	}

	out := make([]SharedResult, len(qs))
	for s := range slots {
		if slots[s].err != nil {
			out[s].Err = slots[s].err
			continue
		}
		var agg kernel.Aggregate
		var grp *kernel.Grouped
		var st IOStats
		var sh kernel.SharedScanStats
		if a.agg != nil {
			agg, grp, st, sh = a.agg[s], a.g[s], a.st[s], a.shared[s]
		}
		sh.Batched = len(qs)
		out[s].St = st
		out[s].Shared = sh
		out[s].Res = kernel.Result{Aggregate: agg}
		out[s].Part = kernel.FragPartial{Agg: agg}
		if gr := slots[s].gr; gr != nil {
			out[s].Res.Groups = gr.Rows(grp)
			out[s].Part.Groups = grp
			if out[s].Part.Groups == nil {
				out[s].Part.Groups = kernel.NewGrouped()
			}
		}
	}
	return out, nil
}

// sortIDs sorts fragment ids ascending — the solo executors' dispatch
// order (FragmentIDs enumerates regions in ascending allocation order),
// so the shared union preserves each query's own task order.
func sortIDs(ids []int64) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
