// Package storage is the paged, on-disk representation of an
// MDHF-fragmented warehouse: fact fragments packed into fixed-size pages
// and stored consecutively in allocation order (the layout assumption of
// the paper's I/O model), plus the surviving bitmap fragments, plus a
// persisted directory so stores reopen without rebuilding. An executor
// (executor.go) runs star queries against the files with prefetch-granule
// reads, making the paper's I/O accounting physically observable.
//
// Tuple format (matching the paper's 20-byte fact tuples for APB-1):
// one uint16 foreign key per dimension followed by three int32 measures
// (UnitsSold, DollarSales, Cost), little endian.
package storage

import (
	"context"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/alloc"
	"repro/internal/data"
	"repro/internal/frag"
	"repro/internal/schema"
)

const (
	factFileName = "fact.dat"
	metaFileName = "meta.dat"
	magic        = 0x4d444846 // "MDHF"
	formatV1     = 1
	// formatV2 appends a per-page CRC32C table to the meta file; pages are
	// verified against it on every physical read (see fault.go).
	formatV2 = 2
)

// FragLoc locates one fact fragment inside the fact file.
type FragLoc struct {
	PageOff int64 // first page number
	Pages   int32 // number of pages
	Rows    int32 // number of tuples
}

// Store is an on-disk fact table fragmented per an MDHF spec.
type Store struct {
	star      *schema.Star
	spec      *frag.Spec
	pageSize  int
	tupleSize int
	file      *os.File
	dir       map[int64]FragLoc
	// order holds the non-empty fragment ids in allocation order.
	order []int64
	// ioDelay is an optional simulated disk access time (ns) added to
	// every physical read on the single implicit disk (see SetIODelay).
	// Atomic: read by N fragment workers while SetIODelay may store.
	ioDelay atomic.Int64
	// disks and placement decluster reads across per-disk serialized
	// queues when non-nil (see Decluster in disk.go).
	disks     *DiskSet
	placement alloc.Placement
	// pool, when non-nil, caches prefetch-granule reads under poolEpoch
	// (see AttachPool and ReadGranule).
	pool      *BufPool
	poolEpoch int64
	// sums holds one CRC32C per fact-file page, indexed by absolute page
	// number — computed at Build, persisted in the formatV2 meta file, and
	// verified on every physical read (nil for pre-checksum V1 stores).
	sums []uint32
}

// AttachPool routes this store's granule reads through a shared buffer
// pool, keying its entries under the given serving epoch. Must be called
// before queries run (backend assembly time); a nil pool detaches.
func (s *Store) AttachPool(p *BufPool, epoch int64) {
	s.pool, s.poolEpoch = p, epoch
}

// Pooled reports whether a buffer pool is attached.
func (s *Store) Pooled() bool { return s.pool != nil }

// SetIODelay adds a simulated disk access time to every physical read —
// the per-access latency of the paper's Table 4 disk model (seek + settle
// + controller), for measuring intra-query I/O parallelism independently
// of the page cache. Zero (the default) disables it. Safe to call
// concurrently with running queries. On a declustered store the delay is
// applied to every disk of the set.
func (s *Store) SetIODelay(d time.Duration) {
	if s.disks != nil {
		s.disks.SetIODelay(d)
		return
	}
	s.ioDelay.Store(int64(d))
}

// TupleSize returns the on-disk tuple size for a schema: 2 bytes per
// dimension key plus 12 bytes of measures.
func TupleSize(star *schema.Star) int { return 2*len(star.Dims) + 12 }

// TuplesPerPage returns how many tuples fit one page.
func TuplesPerPage(star *schema.Star) int { return star.PageSize / TupleSize(star) }

// Build partitions the table per spec and writes the fact file and
// directory into dir (created if needed). Fragments are written in
// allocation order; each fragment starts on a fresh page.
func Build(dirPath string, t *data.Table, spec *frag.Spec) (*Store, error) {
	star := t.Star
	for i := range star.Dims {
		if star.Dims[i].LeafCard() > 1<<16 {
			return nil, fmt.Errorf("storage: dimension %s cardinality %d exceeds uint16 keys", star.Dims[i].Name, star.Dims[i].LeafCard())
		}
	}
	if err := os.MkdirAll(dirPath, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		star:      star,
		spec:      spec,
		pageSize:  star.PageSize,
		tupleSize: TupleSize(star),
		dir:       make(map[int64]FragLoc),
	}

	// Partition row indices by fragment.
	byFrag := make(map[int64][]int32)
	buf := make([]int, len(star.Dims))
	for i := 0; i < t.N(); i++ {
		id := spec.ID(spec.CoordOf(t.LeafMembers(i, buf)))
		byFrag[id] = append(byFrag[id], int32(i))
	}
	for id := range byFrag {
		s.order = append(s.order, id)
	}
	sortInt64s(s.order)

	f, err := os.Create(filepath.Join(dirPath, factFileName))
	if err != nil {
		return nil, err
	}
	s.file = f

	tpp := TuplesPerPage(star)
	page := make([]byte, s.pageSize)
	var pageOff int64
	for _, id := range s.order {
		rows := byFrag[id]
		pages := (len(rows) + tpp - 1) / tpp
		s.dir[id] = FragLoc{PageOff: pageOff, Pages: int32(pages), Rows: int32(len(rows))}
		for p := 0; p < pages; p++ {
			for i := range page {
				page[i] = 0
			}
			lo := p * tpp
			hi := lo + tpp
			if hi > len(rows) {
				hi = len(rows)
			}
			off := 0
			for _, ri := range rows[lo:hi] {
				off = encodeTuple(page, off, t, int(ri))
			}
			s.sums = append(s.sums, pageCRC(page))
			if _, err := f.Write(page); err != nil {
				f.Close()
				return nil, fmt.Errorf("storage: writing fact page %d of fragment %d: %w", p, id, err)
			}
		}
		pageOff += int64(pages)
	}
	if err := s.writeMeta(dirPath); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

func encodeTuple(page []byte, off int, t *data.Table, row int) int {
	for d := range t.Dims {
		binary.LittleEndian.PutUint16(page[off:], uint16(t.Dims[d][row]))
		off += 2
	}
	binary.LittleEndian.PutUint32(page[off:], uint32(t.UnitsSold[row]))
	binary.LittleEndian.PutUint32(page[off+4:], uint32(t.DollarSales[row]))
	binary.LittleEndian.PutUint32(page[off+8:], uint32(t.Cost[row]))
	return off + 12
}

// Tuple is one decoded fact tuple.
type Tuple struct {
	Keys        []uint16
	UnitsSold   int32
	DollarSales int32
	Cost        int32
}

// decodeTuple reads the tuple at off; keys must have len(star.Dims).
func (s *Store) decodeTuple(page []byte, off int, keys []uint16) (Tuple, int) {
	var tp Tuple
	for d := range keys {
		keys[d] = binary.LittleEndian.Uint16(page[off:])
		off += 2
	}
	tp.Keys = keys
	tp.UnitsSold = int32(binary.LittleEndian.Uint32(page[off:]))
	tp.DollarSales = int32(binary.LittleEndian.Uint32(page[off+4:]))
	tp.Cost = int32(binary.LittleEndian.Uint32(page[off+8:]))
	return tp, off + 12
}

// writeMeta persists the directory: magic, version, page size, #frags,
// then (id, pageOff, pages, rows) per fragment, then (formatV2) the
// per-page CRC32C table: a page count followed by one uint32 per page.
func (s *Store) writeMeta(dirPath string) error {
	f, err := os.Create(filepath.Join(dirPath, metaFileName))
	if err != nil {
		return err
	}
	defer f.Close()
	w := func(vals ...int64) error {
		for _, v := range vals {
			if err := binary.Write(f, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		return nil
	}
	if err := w(magic, formatV2, int64(s.pageSize), int64(len(s.order))); err != nil {
		return err
	}
	for _, id := range s.order {
		loc := s.dir[id]
		if err := w(id, loc.PageOff, int64(loc.Pages), int64(loc.Rows)); err != nil {
			return err
		}
	}
	if err := w(int64(len(s.sums))); err != nil {
		return err
	}
	return binary.Write(f, binary.LittleEndian, s.sums)
}

// Open reopens a store built earlier in dirPath. star and spec must match
// the ones used at build time (only the page size is verified).
func Open(dirPath string, star *schema.Star, spec *frag.Spec) (*Store, error) {
	mf, err := os.Open(filepath.Join(dirPath, metaFileName))
	if err != nil {
		return nil, err
	}
	defer mf.Close()
	r := func() (int64, error) {
		var v int64
		err := binary.Read(mf, binary.LittleEndian, &v)
		return v, err
	}
	mg, err := r()
	if err != nil || mg != magic {
		return nil, fmt.Errorf("storage: bad meta file (magic %x)", mg)
	}
	ver, _ := r()
	if ver != formatV1 && ver != formatV2 {
		return nil, fmt.Errorf("storage: unsupported format %d", ver)
	}
	ps, _ := r()
	if int(ps) != star.PageSize {
		return nil, fmt.Errorf("storage: page size %d != schema %d", ps, star.PageSize)
	}
	n, err := r()
	if err != nil {
		return nil, err
	}
	s := &Store{
		star:      star,
		spec:      spec,
		pageSize:  star.PageSize,
		tupleSize: TupleSize(star),
		dir:       make(map[int64]FragLoc, n),
	}
	for i := int64(0); i < n; i++ {
		id, err := r()
		if err != nil {
			return nil, err
		}
		off, _ := r()
		pages, _ := r()
		rows, err := r()
		if err != nil {
			return nil, err
		}
		s.dir[id] = FragLoc{PageOff: off, Pages: int32(pages), Rows: int32(rows)}
		s.order = append(s.order, id)
	}
	if ver >= formatV2 {
		npages, err := r()
		if err != nil {
			return nil, fmt.Errorf("storage: reading checksum table length: %w", err)
		}
		s.sums = make([]uint32, npages)
		if err := binary.Read(mf, binary.LittleEndian, s.sums); err != nil {
			return nil, fmt.Errorf("storage: reading checksum table: %w", err)
		}
	}
	f, err := os.Open(filepath.Join(dirPath, factFileName))
	if err != nil {
		return nil, err
	}
	s.file = f
	return s, nil
}

// Close releases the underlying file.
func (s *Store) Close() error { return s.file.Close() }

// NumFragments returns the number of non-empty fragments stored.
func (s *Store) NumFragments() int { return len(s.order) }

// Fragments returns the stored fragment ids in allocation order.
func (s *Store) Fragments() []int64 { return s.order }

// Loc returns the location of a fragment, if stored.
func (s *Store) Loc(id int64) (FragLoc, bool) {
	loc, ok := s.dir[id]
	return loc, ok
}

// ReadPages reads `count` pages of fragment id starting at page `start`
// within the fragment (one physical I/O).
func (s *Store) ReadPages(id int64, start, count int) ([]byte, error) {
	return s.ReadPagesInto(nil, id, start, count)
}

// ReadPagesInto is ReadPages reading into buf when its capacity suffices
// (allocating otherwise) — the buffer-reuse variant for the executor's
// per-worker scratch. It returns the filled slice.
func (s *Store) ReadPagesInto(buf []byte, id int64, start, count int) ([]byte, error) {
	return s.ReadPagesCtx(context.Background(), buf, id, start, count)
}

// ReadPagesCtx is ReadPagesInto under a context: the physical read runs
// under the retry policy (backoff between attempts is context-aware and
// a cancelled ctx stops the read before it queues on the disk), every
// page is verified against its stored CRC32C, and failures surface as
// typed *FaultError values locating the disk, file, fragment and byte
// offset.
func (s *Store) ReadPagesCtx(ctx context.Context, buf []byte, id int64, start, count int) ([]byte, error) {
	loc, ok := s.dir[id]
	if !ok {
		return nil, fmt.Errorf("storage: fragment %d not stored", id)
	}
	if start < 0 || start+count > int(loc.Pages) {
		return nil, fmt.Errorf("storage: fragment %d pages [%d,%d) out of fragment's %d", id, start, start+count, loc.Pages)
	}
	n := count * s.pageSize
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	absPage := loc.PageOff + int64(start)
	byteOff := absPage * int64(s.pageSize)
	read := func() error {
		if s.disks == nil {
			if d := s.ioDelay.Load(); d > 0 {
				time.Sleep(time.Duration(d))
			}
		}
		if _, err := s.file.ReadAt(buf, byteOff); err != nil {
			return fmt.Errorf("storage: reading %d fact pages of fragment %d at offset %d: %w", count, id, byteOff, err)
		}
		return nil
	}
	var verify func() error
	if s.sums != nil {
		verify = func() error { return s.verifyPages(buf, absPage, id, byteOff) }
	}
	site := faultSite{file: "fact", frag: id, off: byteOff}
	disk := 0
	if s.disks != nil {
		disk = s.placement.FactDisk(id)
	}
	corrupt := func() { corruptPages(buf, s.pageSize) }
	if err := retryRead(ctx, s.disks, disk, count, site, read, corrupt, verify); err != nil {
		return nil, err
	}
	return buf, nil
}

// verifyPages checks each page of buf against the checksum table.
func (s *Store) verifyPages(buf []byte, absPage, id int64, byteOff int64) error {
	for i := 0; i*s.pageSize < len(buf); i++ {
		page := buf[i*s.pageSize : (i+1)*s.pageSize]
		want := s.sums[absPage+int64(i)]
		if got := pageCRC(page); got != want {
			return &FaultError{
				File: "fact", Frag: id, Offset: byteOff + int64(i*s.pageSize), Kind: FaultChecksum,
				Err: fmt.Errorf("page %d crc32c %08x != stored %08x", absPage+int64(i), got, want),
			}
		}
	}
	return nil
}

// ReadGranule is the pool-aware ReadPagesInto used by the executor's
// prefetch pipeline. With no pool attached it behaves exactly like
// ReadPagesInto (data == the grown buf, ent nil). With a pool, a hit
// returns the resident pages with zero physical I/O and a miss reads into
// a fresh buffer and offers it to the pool. When ent is non-nil the
// returned data belongs to the pool and is pinned — the caller must
// ent.Unpin() once done aggregating from it (and must not retain or reuse
// data as scratch); when ent is nil the data is the caller's private
// buffer. hit reports whether the pool served the read.
func (s *Store) ReadGranule(buf []byte, id int64, start, count int) (data []byte, ent *PoolEntry, hit bool, err error) {
	return s.ReadGranuleCtx(context.Background(), buf, id, start, count)
}

// ReadGranuleCtx is ReadGranule under a context (see ReadPagesCtx for
// the retry/verification semantics of the miss path; pool hits never
// touch the disk and need no verification).
func (s *Store) ReadGranuleCtx(ctx context.Context, buf []byte, id int64, start, count int) (data []byte, ent *PoolEntry, hit bool, err error) {
	if s.pool == nil {
		data, err = s.ReadPagesCtx(ctx, buf, id, start, count)
		return data, nil, false, err
	}
	key := PoolKey{Epoch: s.poolEpoch, File: PoolFact, Frag: id, Off: int32(start), Len: int32(count)}
	if e := s.pool.Get(key); e != nil {
		if s.disks != nil {
			s.disks.notePoolHit(s.placement.FactDisk(id), count)
		}
		return e.Data(), e, true, nil
	}
	// Miss: read into a fresh buffer the pool can take ownership of (the
	// caller's scratch would be overwritten by its next read).
	data, err = s.ReadPagesCtx(ctx, make([]byte, 0, count*s.pageSize), id, start, count)
	if err != nil {
		return nil, nil, false, err
	}
	if e := s.pool.Add(key, data); e != nil {
		return e.Data(), e, false, nil
	}
	return data, nil, false, nil // pool full of pinned entries: serve privately
}

// ScanFragment calls fn for every tuple of the fragment, reading it page
// by page into one reused buffer. keys is reused across calls.
func (s *Store) ScanFragment(id int64, fn func(Tuple)) error {
	loc, ok := s.dir[id]
	if !ok {
		return nil // empty fragment
	}
	tpp := TuplesPerPage(s.star)
	keys := make([]uint16, len(s.star.Dims))
	page := make([]byte, s.pageSize)
	remaining := int(loc.Rows)
	var err error
	for p := 0; p < int(loc.Pages); p++ {
		page, err = s.ReadPagesInto(page, id, p, 1)
		if err != nil {
			return err
		}
		n := tpp
		if remaining < n {
			n = remaining
		}
		off := 0
		for i := 0; i < n; i++ {
			var tp Tuple
			tp, off = s.decodeTuple(page, off, keys)
			fn(tp)
		}
		remaining -= n
	}
	return nil
}

func sortInt64s(a []int64) {
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}
