package storage

// Async granule prefetch: the executor's fact reads are issued one
// prefetch granule ahead of aggregation, so the disk (or the simulated
// per-disk queue) works on granule g+1 while the CPU unpacks and
// aggregates granule g — the read-ahead the paper's prefetching assumes
// within one subquery. The pipeline is a classic two-buffer exchange: a
// reader goroutine takes an empty buffer from `free`, fills it with one
// granule, and hands it over through `filled`; the consumer returns each
// buffer after aggregating it. With channel capacity 2 and two buffers,
// at most one granule is in flight ahead of the consumer and no buffer is
// ever written while it is being read.

// granule is one prefetch-granule read: fragment pages
// [start, start+count).
type granule struct {
	start, count int32
}

// gread is one completed granule read.
type gread struct {
	buf []byte
	err error
}

// granulePipe hands out the page buffers of a granule list in order,
// reading ahead on a background goroutine when async. The struct lives in
// the per-worker scratch and is reused across fragments; only the
// channels and the two pipeline buffers persist.
type granulePipe struct {
	e     *Executor
	sc    *execScratch
	st    *IOStats
	id    int64
	grans []granule
	k     int    // next granule index to hand out
	prev  []byte // buffer owned by the consumer, returned on the next call
	async bool
}

// startGranules begins reading the fragment's granules in list order.
// Async prefetch engages when enabled and there is more than one granule
// (a single granule has nothing to overlap with).
func (e *Executor) startGranules(sc *execScratch, st *IOStats, id int64, grans []granule) *granulePipe {
	p := &sc.gpipe
	*p = granulePipe{e: e, sc: sc, st: st, id: id, grans: grans,
		async: e.AsyncPrefetch && len(grans) > 1}
	if p.async {
		if sc.free == nil {
			sc.free = make(chan []byte, 2)
			sc.filled = make(chan gread, 2)
			// Two empty slots; ReadPagesInto allocates and grows the
			// actual buffers, which then circulate for good.
			sc.free <- nil
			sc.free <- nil
		}
		go p.reader()
	}
	return p
}

// reader is the prefetch goroutine: it reads every granule of the list in
// order, blocking on `free` until the consumer is at most one granule
// behind. On a read error it reports it and exits; the consumer then
// discards the channels, so the pipeline never observes a stale result.
func (p *granulePipe) reader() {
	for _, g := range p.grans {
		buf := <-p.sc.free
		buf, err := p.e.store.ReadPagesInto(buf, p.id, int(g.start), int(g.count))
		p.sc.filled <- gread{buf: buf, err: err}
		if err != nil {
			return
		}
	}
}

// next returns the next granule of the list and its filled page buffer,
// recycling the previously handed-out buffer into the pipeline. The
// buffer is valid until the following next (or finish) call.
func (p *granulePipe) next() (granule, []byte, error) {
	g := p.grans[p.k]
	p.k++
	var buf []byte
	if p.async {
		if p.prev != nil {
			p.sc.free <- p.prev
			p.prev = nil
		}
		r := <-p.sc.filled
		if r.err != nil {
			// The reader has exited; drop the channels (and any buffer
			// still inside) so the next fragment starts a fresh pipeline.
			p.sc.free, p.sc.filled = nil, nil
			return g, nil, r.err
		}
		p.prev = r.buf
		buf = r.buf
	} else {
		var err error
		p.sc.page, err = p.e.store.ReadPagesInto(p.sc.page, p.id, int(g.start), int(g.count))
		if err != nil {
			return g, nil, err
		}
		buf = p.sc.page
	}
	p.st.FactIOs++
	p.st.FactPages += int64(g.count)
	return g, buf, nil
}

// finish returns the last buffer to the pipeline once every granule has
// been consumed, restoring the two-buffers-in-free invariant for the next
// fragment.
func (p *granulePipe) finish() {
	if p.prev != nil {
		p.sc.free <- p.prev
		p.prev = nil
	}
}

// forEachGranule streams the granule list through the pipe, calling fn
// with each granule and its pages.
func (e *Executor) forEachGranule(sc *execScratch, st *IOStats, id int64, grans []granule, fn func(g granule, buf []byte)) error {
	p := e.startGranules(sc, st, id, grans)
	for range grans {
		g, buf, err := p.next()
		if err != nil {
			return err
		}
		fn(g, buf)
	}
	p.finish()
	return nil
}

// appendWholeGranules appends the granules covering every page of a
// fragment at granule size g.
func appendWholeGranules(dst []granule, pages, g int) []granule {
	for start := 0; start < pages; start += g {
		count := g
		if start+count > pages {
			count = pages - start
		}
		dst = append(dst, granule{start: int32(start), count: int32(count)})
	}
	return dst
}
