package storage

import "context"

// Async granule prefetch: the executor's fact reads are issued one
// prefetch granule ahead of aggregation, so the disk (or the simulated
// per-disk queue) works on granule g+1 while the CPU unpacks and
// aggregates granule g — the read-ahead the paper's prefetching assumes
// within one subquery. The pipeline is a classic two-buffer exchange: a
// reader goroutine takes an empty buffer from `free`, fills it with one
// granule, and hands it over through `filled`; the consumer returns each
// buffer after aggregating it. With channel capacity 2 and two buffers,
// at most one granule is in flight ahead of the consumer and no buffer is
// ever written while it is being read.
//
// With a buffer pool attached the buffers no longer circulate — a granule
// may arrive as a pinned pool entry (hit or freshly cached) or a private
// buffer (pool full) — so the backpressure switches from buffer recycling
// to read-ahead tokens: the reader takes a token from `tok` before each
// read and the consumer returns one as it advances past each granule,
// pinning each pool entry exactly for the window the aggregation reads
// from it and unpinning on advance.

// granule is one prefetch-granule read: fragment pages
// [start, start+count).
type granule struct {
	start, count int32
}

// gread is one completed granule read. ent is the pinned pool entry
// backing buf when the read went through the pool (nil for a private
// buffer); hit reports a pool hit.
type gread struct {
	buf []byte
	ent *PoolEntry
	hit bool
	err error
}

// granulePipe hands out the page buffers of a granule list in order,
// reading ahead on a background goroutine when async. The struct lives in
// the per-worker scratch and is reused across fragments; only the
// channels and the two pipeline buffers persist.
type granulePipe struct {
	e      *Executor
	ctx    context.Context
	sc     *execScratch
	st     *IOStats
	id     int64
	grans  []granule
	k      int        // next granule index to hand out
	prev   []byte     // unpooled: buffer owned by the consumer, returned on the next call
	pent   *PoolEntry // pooled: entry pinned for the granule being aggregated
	ptok   bool       // pooled: consumer owes the pipeline one token
	pooled bool
	async  bool
}

// startGranules begins reading the fragment's granules in list order.
// Async prefetch engages when enabled and there is more than one granule
// (a single granule has nothing to overlap with).
func (e *Executor) startGranules(ctx context.Context, sc *execScratch, st *IOStats, id int64, grans []granule) *granulePipe {
	p := &sc.gpipe
	*p = granulePipe{e: e, ctx: ctx, sc: sc, st: st, id: id, grans: grans,
		pooled: e.store.pool != nil,
		async:  e.AsyncPrefetch && len(grans) > 1}
	if p.async {
		if p.pooled {
			if sc.tok == nil {
				sc.tok = make(chan struct{}, 2)
				sc.filled = make(chan gread, 2)
			}
			sc.tok <- struct{}{}
			sc.tok <- struct{}{}
		} else if sc.free == nil {
			sc.free = make(chan []byte, 2)
			sc.filled = make(chan gread, 2)
			// Two empty slots; ReadPagesInto allocates and grows the
			// actual buffers, which then circulate for good.
			sc.free <- nil
			sc.free <- nil
		}
		go p.reader()
	}
	return p
}

// reader is the prefetch goroutine: it reads every granule of the list in
// order, blocking on `free` (or on a read-ahead token when pooled) until
// the consumer is at most one granule behind. On a read error it reports
// it and exits; the consumer then discards the channels, so the pipeline
// never observes a stale result.
func (p *granulePipe) reader() {
	if p.pooled {
		for _, g := range p.grans {
			<-p.sc.tok
			buf, ent, hit, err := p.e.store.ReadGranuleCtx(p.ctx, nil, p.id, int(g.start), int(g.count))
			p.sc.filled <- gread{buf: buf, ent: ent, hit: hit, err: err}
			if err != nil {
				return
			}
		}
		return
	}
	for _, g := range p.grans {
		buf := <-p.sc.free
		buf, err := p.e.store.ReadPagesCtx(p.ctx, buf, p.id, int(g.start), int(g.count))
		p.sc.filled <- gread{buf: buf, err: err}
		if err != nil {
			return
		}
	}
}

// advance releases whatever the consumer holds for the previous granule:
// the pin on its pool entry, and (async) the buffer or token owed to the
// pipeline.
func (p *granulePipe) advance() {
	if p.pent != nil {
		p.pent.Unpin()
		p.pent = nil
	}
	if !p.async {
		return
	}
	if p.pooled {
		if p.ptok {
			p.sc.tok <- struct{}{}
			p.ptok = false
		}
		return
	}
	if p.prev != nil {
		p.sc.free <- p.prev
		p.prev = nil
	}
}

// next returns the next granule of the list and its filled page buffer,
// recycling the previously handed-out buffer (or pin) into the pipeline.
// The buffer is valid until the following next (or finish) call.
func (p *granulePipe) next() (granule, []byte, error) {
	g := p.grans[p.k]
	p.k++
	p.advance()
	var buf []byte
	var hit bool
	switch {
	case p.async:
		r := <-p.sc.filled
		if r.err != nil {
			// The reader has exited; drop the channels (and any buffer or
			// token still inside) so the next fragment starts fresh.
			p.sc.free, p.sc.tok, p.sc.filled = nil, nil, nil
			return g, nil, r.err
		}
		p.pent, hit = r.ent, r.hit
		p.ptok = p.pooled
		if !p.pooled {
			p.prev = r.buf
		}
		buf = r.buf
	case p.pooled:
		var err error
		buf, p.pent, hit, err = p.e.store.ReadGranuleCtx(p.ctx, nil, p.id, int(g.start), int(g.count))
		if err != nil {
			return g, nil, err
		}
	default:
		var err error
		p.sc.page, err = p.e.store.ReadPagesCtx(p.ctx, p.sc.page, p.id, int(g.start), int(g.count))
		if err != nil {
			return g, nil, err
		}
		buf = p.sc.page
	}
	p.st.FactIOs++
	p.st.FactPages += int64(g.count)
	if p.pooled {
		if hit {
			p.st.PoolHits++
			p.st.PoolBytes += int64(len(buf))
		} else {
			p.st.PoolMisses++
		}
	}
	return g, buf, nil
}

// finish returns the last buffer (or pin and token) to the pipeline once
// every granule has been consumed, restoring the pipeline invariants for
// the next fragment.
func (p *granulePipe) finish() {
	p.advance()
	if p.pooled && p.async {
		// Drain the two resting tokens so the next fragment's pipeline
		// starts from a full complement again.
		<-p.sc.tok
		<-p.sc.tok
	}
}

// forEachGranule streams the granule list through the pipe, calling fn
// with each granule and its pages.
func (e *Executor) forEachGranule(ctx context.Context, sc *execScratch, st *IOStats, id int64, grans []granule, fn func(g granule, buf []byte)) error {
	p := e.startGranules(ctx, sc, st, id, grans)
	for range grans {
		g, buf, err := p.next()
		if err != nil {
			return err
		}
		fn(g, buf)
	}
	p.finish()
	return nil
}

// appendWholeGranules appends the granules covering every page of a
// fragment at granule size g.
func appendWholeGranules(dst []granule, pages, g int) []granule {
	for start := 0; start < pages; start += g {
		count := g
		if start+count > pages {
			count = pages - start
		}
		dst = append(dst, granule{start: int32(start), count: int32(count)})
	}
	return dst
}
