package storage

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/alloc"
	"repro/internal/data"
	"repro/internal/frag"
	"repro/internal/schema"
)

// fastRetry is a test retry policy with negligible backoff so fault
// tests run in microseconds.
func fastRetry() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:      6,
		BaseBackoff:      time.Microsecond,
		MaxBackoff:       10 * time.Microsecond,
		BreakerThreshold: 3,
		BreakerCooldown:  20 * time.Millisecond,
	}
}

// declusterStore builds the tiny store and shards it over d disks.
func declusterStore(t *testing.T, d int) (*schema.Star, *Store, *BitmapFile, *DiskSet) {
	t.Helper()
	s, _, store, bf := buildStore(t, "time::month, product::group")
	ds, err := Decluster(store, bf, alloc.Placement{Disks: d, Scheme: alloc.RoundRobin, Staggered: true})
	if err != nil {
		t.Fatal(err)
	}
	ds.SetRetryPolicy(fastRetry())
	return s, store, bf, ds
}

// readAllFragments reads every page of every fragment and returns the
// concatenated bytes.
func readAllFragments(t *testing.T, store *Store) []byte {
	t.Helper()
	var out []byte
	var buf []byte
	for _, id := range store.Fragments() {
		loc, ok := store.Loc(id)
		if !ok {
			t.Fatalf("fragment %d has no location", id)
		}
		var err error
		buf, err = store.ReadPagesInto(buf, id, 0, int(loc.Pages))
		if err != nil {
			t.Fatalf("fragment %d: %v", id, err)
		}
		out = append(out, buf...)
	}
	return out
}

func TestRetriesClearTransientFaults(t *testing.T) {
	_, store, _, ds := declusterStore(t, 4)
	baseline := readAllFragments(t, store)

	ds.SetFaultPlan(&FaultPlan{Seed: 7, ReadErrorRate: 0.3})
	faulty := readAllFragments(t, store)
	if !bytes.Equal(baseline, faulty) {
		t.Fatal("reads under a transient fault plan are not byte-identical")
	}
	var injected, retries int64
	for _, st := range ds.Stats() {
		injected += st.InjectedFaults
		retries += st.Retries
	}
	if injected == 0 || retries == 0 {
		t.Fatalf("expected injected faults and retries, got injected=%d retries=%d", injected, retries)
	}
}

func TestChecksumsCatchInjectedCorruption(t *testing.T) {
	_, store, _, ds := declusterStore(t, 4)
	baseline := readAllFragments(t, store)

	ds.SetFaultPlan(&FaultPlan{Seed: 11, CorruptRate: 0.4})
	faulty := readAllFragments(t, store)
	if !bytes.Equal(baseline, faulty) {
		t.Fatal("reads under a corrupt-page plan are not byte-identical")
	}
	var fails int64
	for _, st := range ds.Stats() {
		fails += st.ChecksumFailures
	}
	if fails == 0 {
		t.Fatal("expected checksum failures under a 40% corrupt-page plan")
	}
}

func TestChecksumCatchesOnDiskCorruption(t *testing.T) {
	s := schema.Tiny()
	tab := data.MustGenerate(s, 21)
	spec := frag.MustParse(s, "time::month, product::group")
	dir := t.TempDir()
	store, err := Build(dir, tab, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	id := store.Fragments()[0]
	if _, err := store.ReadPagesInto(nil, id, 0, 1); err != nil {
		t.Fatal(err)
	}
	// Flip one byte of the fragment's first page in the fact file.
	loc, _ := store.Loc(id)
	off := loc.PageOff * int64(s.PageSize)
	f, err := os.OpenFile(filepath.Join(dir, factFileName), os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	one := make([]byte, 1)
	if _, err := f.ReadAt(one, off); err != nil {
		t.Fatal(err)
	}
	one[0] ^= 0xFF
	if _, err := f.WriteAt(one, off); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, err = store.ReadPagesInto(nil, id, 0, 1)
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("corrupted page read returned %v, want *FaultError", err)
	}
	if fe.Kind != FaultChecksum {
		t.Fatalf("fault kind = %s, want checksum", fe.Kind)
	}
	if fe.File != "fact" || fe.Frag != id {
		t.Fatalf("fault site = %s/%d, want fact/%d", fe.File, fe.Frag, id)
	}
}

func TestFailedDiskFailsFastAndRevives(t *testing.T) {
	_, store, _, ds := declusterStore(t, 4)
	// Pick a fragment on disk 2.
	var id int64 = -1
	for _, f := range store.Fragments() {
		if store.placement.FactDisk(f) == 2 {
			id = f
			break
		}
	}
	if id < 0 {
		t.Fatal("no fragment on disk 2")
	}
	ds.FailDisk(2)
	start := time.Now()
	_, err := store.ReadPagesInto(nil, id, 0, 1)
	elapsed := time.Since(start)
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("read on failed disk returned %v, want *FaultError", err)
	}
	if fe.Kind != FaultDiskFailed || fe.Disk != 2 {
		t.Fatalf("fault = kind %s disk %d, want disk-failed on 2", fe.Kind, fe.Disk)
	}
	if elapsed > time.Second {
		t.Fatalf("failed-disk read took %v, want fail-fast", elapsed)
	}
	// Other disks keep serving.
	for _, f := range store.Fragments() {
		if store.placement.FactDisk(f) != 2 {
			if _, err := store.ReadPagesInto(nil, f, 0, 1); err != nil {
				t.Fatalf("healthy disk read failed: %v", err)
			}
			break
		}
	}
	ds.ReviveDisk(2)
	if _, err := store.ReadPagesInto(nil, id, 0, 1); err != nil {
		t.Fatalf("revived disk read failed: %v", err)
	}
}

func TestBreakerOpensAfterExhaustedReadsAndRecovers(t *testing.T) {
	_, store, _, ds := declusterStore(t, 2)
	pol := fastRetry()
	pol.MaxAttempts = 2
	pol.BreakerThreshold = 2
	pol.BreakerCooldown = 10 * time.Millisecond
	ds.SetRetryPolicy(pol)
	ds.SetFaultPlan(&FaultPlan{Seed: 5, ReadErrorRate: 1.0})

	id := store.Fragments()[0]
	disk := store.placement.FactDisk(id)
	// Two exhausted reads (every attempt fails) open the breaker.
	for i := 0; i < 2; i++ {
		if _, err := store.ReadPagesInto(nil, id, 0, 1); err == nil {
			t.Fatal("read under 100% fault rate succeeded")
		}
	}
	if trips := ds.Stats()[disk].BreakerTrips; trips != 1 {
		t.Fatalf("breaker trips = %d, want 1", trips)
	}
	// The open breaker fails the next read fast without touching the disk.
	before := ds.Stats()[disk].IOs
	_, err := store.ReadPagesInto(nil, id, 0, 1)
	var fe *FaultError
	if !errors.As(err, &fe) || fe.Kind != FaultBreakerOpen {
		t.Fatalf("read with open breaker returned %v, want breaker-open", err)
	}
	if after := ds.Stats()[disk].IOs; after != before {
		t.Fatalf("open breaker still touched the disk (%d -> %d IOs)", before, after)
	}
	// Heal the disk; after the cooldown a half-open probe closes the
	// breaker and reads succeed again.
	ds.SetFaultPlan(nil)
	time.Sleep(pol.BreakerCooldown + time.Millisecond)
	if _, err := store.ReadPagesInto(nil, id, 0, 1); err != nil {
		t.Fatalf("post-cooldown probe failed: %v", err)
	}
	if _, err := store.ReadPagesInto(nil, id, 0, 1); err != nil {
		t.Fatalf("read after breaker close failed: %v", err)
	}
}

// TestExecutorEquivalenceUnderFaults runs the Q1-Q4 class queries under a
// combined transient + corrupt + latency-spike plan and requires results
// identical to the fault-free run.
func TestExecutorEquivalenceUnderFaults(t *testing.T) {
	for _, compressed := range []bool{false, true} {
		name := "materialized"
		build := buildStore
		if compressed {
			name, build = "compressed", buildCompressedStore
		}
		t.Run(name, func(t *testing.T) {
			s, _, store, bf := build(t, "time::month, product::group")
			ds, err := Decluster(store, bf, alloc.Placement{Disks: 4, Scheme: alloc.RoundRobin, Staggered: true})
			if err != nil {
				t.Fatal(err)
			}
			ds.SetRetryPolicy(fastRetry())
			ex := NewExecutor(store, bf)
			queries := classQueries(t, s, store.spec)

			type outcome struct {
				agg Aggregate
				st  IOStats
			}
			baseline := map[string]outcome{}
			for name, q := range queries {
				agg, st, err := ex.Execute(q)
				if err != nil {
					t.Fatal(err)
				}
				baseline[name] = outcome{agg, st}
			}
			ds.SetFaultPlan(&FaultPlan{Seed: 42, ReadErrorRate: 0.05, CorruptRate: 0.05,
				LatencySpikeRate: 0.01, LatencySpike: 50 * time.Microsecond})
			for name, q := range queries {
				agg, st, err := ex.Execute(q)
				if err != nil {
					t.Fatalf("%s under faults: %v", name, err)
				}
				if agg != baseline[name].agg {
					t.Fatalf("%s: aggregate under faults differs from fault-free run", name)
				}
				if st != baseline[name].st {
					t.Fatalf("%s: IOStats under faults %+v != fault-free %+v", name, st, baseline[name].st)
				}
			}
		})
	}
}
