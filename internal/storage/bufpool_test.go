package storage

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

// poolKeysOnShard returns n distinct fact keys of the given epoch that all
// hash onto the same shard as the first candidate — deterministic eviction
// tests need a single LRU list.
func poolKeysOnShard(p *BufPool, epoch int64, n int) []PoolKey {
	var keys []PoolKey
	var shard *poolShard
	for frag := int64(0); len(keys) < n; frag++ {
		k := PoolKey{Epoch: epoch, File: PoolFact, Frag: frag}
		s := p.shardOf(k)
		if shard == nil {
			shard = s
		}
		if s == shard {
			keys = append(keys, k)
		}
	}
	return keys
}

func TestBufPoolAddGetRoundtrip(t *testing.T) {
	p := NewBufPool(1 << 16)
	key := PoolKey{Epoch: 0, File: PoolBitmap, Frag: 7, Off: 3, Len: 2}
	if e := p.Get(key); e != nil {
		t.Fatal("hit on empty pool")
	}
	data := []byte{1, 2, 3, 4}
	e := p.Add(key, data)
	if e == nil {
		t.Fatal("add refused with room to spare")
	}
	if !bytes.Equal(e.Data(), data) {
		t.Fatalf("added data %v, want %v", e.Data(), data)
	}
	e.Unpin()
	h := p.Get(key)
	if h == nil {
		t.Fatal("miss after add")
	}
	if !bytes.Equal(h.Data(), data) {
		t.Fatalf("hit data %v, want %v", h.Data(), data)
	}
	h.Unpin()
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.BytesServed != 4 || st.BytesInserted != 4 || st.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
	if hr := st.HitRate(); hr != 0.5 {
		t.Fatalf("hit rate %v, want 0.5", hr)
	}
}

func TestBufPoolAddDedupsConcurrentInsert(t *testing.T) {
	p := NewBufPool(1 << 16)
	key := PoolKey{Frag: 1}
	first := p.Add(key, []byte{1, 1})
	second := p.Add(key, []byte{2, 2}) // loser of a racing read: discarded
	if first == nil || second == nil {
		t.Fatal("dedup add refused")
	}
	if first != second {
		t.Fatal("duplicate key created a second entry")
	}
	if !bytes.Equal(second.Data(), []byte{1, 1}) {
		t.Fatalf("dedup served %v, want the first insert", second.Data())
	}
	first.Unpin()
	second.Unpin()
	if st := p.Stats(); st.Entries != 1 || st.UsedBytes != 2 {
		t.Fatalf("stats after dedup %+v", st)
	}
}

// TestBufPoolLRUEviction pins nothing and fills one shard past its budget:
// eviction must be strictly least-recently-used.
func TestBufPoolLRUEviction(t *testing.T) {
	p := NewBufPool(8 * 64) // 64 bytes per shard = two 32-byte entries
	keys := poolKeysOnShard(p, 0, 3)
	add := func(k PoolKey) {
		t.Helper()
		e := p.Add(k, make([]byte, 32))
		if e == nil {
			t.Fatalf("add %v refused", k)
		}
		e.Unpin()
	}
	add(keys[0])
	add(keys[1])
	// Touch keys[0] so keys[1] is the LRU.
	if e := p.Get(keys[0]); e == nil {
		t.Fatal("miss on resident entry")
	} else {
		e.Unpin()
	}
	add(keys[2]) // evicts keys[1]
	if e := p.Get(keys[1]); e != nil {
		t.Fatal("LRU entry survived eviction")
	}
	for _, k := range []PoolKey{keys[0], keys[2]} {
		e := p.Get(k)
		if e == nil {
			t.Fatalf("recently used entry %v evicted", k)
		}
		e.Unpin()
	}
	if st := p.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions %d, want 1", st.Evictions)
	}
}

// TestBufPoolPinnedNeverEvicted is the aggregation-safety invariant: an
// entry handed to a worker stays resident and intact until Unpin, and an
// insertion that would require evicting it is refused — the budget is
// never exceeded to make room.
func TestBufPoolPinnedNeverEvicted(t *testing.T) {
	p := NewBufPool(8 * 64)
	keys := poolKeysOnShard(p, 0, 3)
	pinned := p.Add(keys[0], bytes.Repeat([]byte{0xAB}, 64)) // fills the shard, stays pinned
	if pinned == nil {
		t.Fatal("initial add refused")
	}
	if e := p.Add(keys[1], make([]byte, 64)); e != nil {
		t.Fatal("add succeeded though making room required evicting a pinned entry")
	}
	if used, budget := p.Used(), p.Budget(); used > budget {
		t.Fatalf("used %d exceeds budget %d", used, budget)
	}
	if !bytes.Equal(pinned.Data(), bytes.Repeat([]byte{0xAB}, 64)) {
		t.Fatal("pinned data changed under rejected insertion")
	}
	if st := p.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected %d, want 1", st.Rejected)
	}
	pinned.Unpin()
	// Unpinned, the entry is evictable and the same insertion now fits.
	e := p.Add(keys[2], make([]byte, 64))
	if e == nil {
		t.Fatal("add refused after unpin")
	}
	e.Unpin()
	if e := p.Get(keys[0]); e != nil {
		t.Fatal("unpinned LRU entry survived")
	}
}

func TestBufPoolRejectsOversizedEntry(t *testing.T) {
	p := NewBufPool(8 * 16)
	if e := p.Add(PoolKey{Frag: 1}, make([]byte, 64)); e != nil {
		t.Fatal("entry larger than a shard budget accepted")
	}
	if st := p.Stats(); st.Rejected != 1 || st.UsedBytes != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestBufPoolInvalidateEpoch(t *testing.T) {
	p := NewBufPool(1 << 16)
	old := p.Add(PoolKey{Epoch: 0, Frag: 1}, make([]byte, 8))
	older := p.Add(PoolKey{Epoch: 0, Frag: 2}, make([]byte, 8))
	cur := p.Add(PoolKey{Epoch: 1, Frag: 1}, make([]byte, 8))
	older.Unpin()
	cur.Unpin()
	// old stays pinned: InvalidateEpoch must leave it alone.
	if n := p.InvalidateEpoch(0); n != 1 {
		t.Fatalf("invalidated %d epoch-0 entries, want 1 (one still pinned)", n)
	}
	if e := p.Get(PoolKey{Epoch: 0, Frag: 2}); e != nil {
		t.Fatal("invalidated entry still resident")
	}
	if e := p.Get(PoolKey{Epoch: 1, Frag: 1}); e == nil {
		t.Fatal("current epoch entry dropped")
	} else {
		e.Unpin()
	}
	if !bytes.Equal(old.Data(), make([]byte, 8)) {
		t.Fatal("pinned entry corrupted by invalidation")
	}
	old.Unpin()
	if n := p.InvalidateEpoch(0); n != 1 {
		t.Fatalf("second pass invalidated %d, want the previously pinned 1", n)
	}
}

// TestBufPoolHitRateMonotone replays one skewed trace (80% of accesses on
// 8 hot keys) against pools of doubling budget: strict LRU has the stack
// inclusion property per shard, and shard assignment is budget-independent
// with uniform entry sizes, so a larger pool can never hit less.
func TestBufPoolHitRateMonotone(t *testing.T) {
	const (
		entrySize = 256
		keySpace  = 64
		accesses  = 20000
	)
	rng := rand.New(rand.NewSource(42))
	trace := make([]int64, accesses)
	for i := range trace {
		if rng.Intn(10) < 8 {
			trace[i] = int64(rng.Intn(8)) // hot
		} else {
			trace[i] = int64(8 + rng.Intn(keySpace-8)) // cold
		}
	}
	replay := func(entries int) int64 {
		p := NewBufPool(int64(entries) * poolShards * entrySize) // entries per shard
		for _, frag := range trace {
			k := PoolKey{Frag: frag}
			if e := p.Get(k); e != nil {
				e.Unpin()
				continue
			}
			if e := p.Add(k, make([]byte, entrySize)); e != nil {
				e.Unpin()
			}
		}
		st := p.Stats()
		if st.UsedBytes > st.BudgetBytes {
			t.Fatalf("budget exceeded: %d > %d", st.UsedBytes, st.BudgetBytes)
		}
		if st.Rejected != 0 {
			t.Fatalf("uniform-size replay rejected %d inserts", st.Rejected)
		}
		return st.Hits
	}
	var prev int64 = -1
	for _, entries := range []int{1, 2, 4, 8, 16} {
		hits := replay(entries)
		if hits < prev {
			t.Fatalf("%d entries/shard hit %d times, smaller pool hit %d — not monotone", entries, hits, prev)
		}
		prev = hits
	}
	// The largest pool holds the whole key space: everything after the
	// first touch of a key must hit.
	if full := replay(keySpace); full != accesses-keySpace {
		t.Fatalf("fully resident pool hit %d, want %d", full, accesses-keySpace)
	}
}

// TestBufPoolConcurrentHammer drives Get/Add/Unpin/InvalidateEpoch from
// many goroutines (run under -race) and checks the budget invariant and
// counter consistency afterwards.
func TestBufPoolConcurrentHammer(t *testing.T) {
	p := NewBufPool(8 * 1024)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 2000; i++ {
				key := PoolKey{
					Epoch: int64(rng.Intn(2)),
					File:  uint8(rng.Intn(2)),
					Frag:  int64(rng.Intn(32)),
					Off:   int32(rng.Intn(4)),
					Len:   1,
				}
				if e := p.Get(key); e != nil {
					_ = e.Data()[0]
					e.Unpin()
					continue
				}
				n := 16 << rng.Intn(5)
				if e := p.Add(key, make([]byte, n)); e != nil {
					_ = e.Data()[0]
					e.Unpin()
				}
				if i%500 == 0 {
					p.InvalidateEpoch(int64(rng.Intn(2)))
				}
			}
		}(g)
	}
	wg.Wait()
	st := p.Stats()
	if st.UsedBytes > st.BudgetBytes {
		t.Fatalf("budget exceeded after hammer: %d > %d", st.UsedBytes, st.BudgetBytes)
	}
	if st.UsedBytes < 0 || st.Entries < 0 {
		t.Fatalf("negative occupancy: %+v", st)
	}
	if st.Hits+st.Misses != 8*2000 {
		t.Fatalf("lookups %d, want %d", st.Hits+st.Misses, 8*2000)
	}
	// Every entry should be unpinned now: a full invalidation must empty
	// the pool.
	p.InvalidateEpoch(0)
	p.InvalidateEpoch(1)
	if st := p.Stats(); st.Entries != 0 || st.UsedBytes != 0 {
		t.Fatalf("pool not empty after invalidating every epoch: %+v", st)
	}
}
