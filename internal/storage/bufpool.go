package storage

import (
	"sync"
	"sync/atomic"
)

// BufPool is the granule/page buffer pool between the executor's read
// paths and the physical files: a fixed byte budget of recently read
// units — fact prefetch granules and bitmap fragment payloads — shared by
// every query of a warehouse. Entries are keyed by
// (epoch, file, fragment, offset, length), so an epoch roll-over
// (compaction swapping in a rebuilt backend) invalidates the old epoch's
// pages for free: the new backend's reads simply key differently, and the
// retired epoch's entries age out of the LRU (or are dropped eagerly via
// InvalidateEpoch once the epoch's last pinned query finishes).
//
// The pool is sharded: each shard owns a slice of the byte budget, its
// own hash map and an exact LRU list, under its own mutex — so concurrent
// fragment workers do not serialise on one lock. Within a shard eviction
// is strict LRU over the unpinned entries; pinned entries (handed to a
// worker that is still aggregating from them) are never evicted, and an
// insertion that cannot make room without evicting a pinned entry or
// exceeding the budget is refused instead — the caller then serves the
// read from its private buffer and nothing is cached. The budget is
// therefore a hard ceiling, never exceeded.
//
// All methods are safe for concurrent use.
type BufPool struct {
	shards []poolShard

	hits      atomic.Int64
	misses    atomic.Int64
	served    atomic.Int64 // bytes served from the pool (hits)
	inserted  atomic.Int64 // bytes read and cached (successful Adds)
	evictions atomic.Int64
	rejected  atomic.Int64 // Adds refused (would exceed budget / all pinned)
}

// File kinds of a PoolKey.
const (
	// PoolFact keys a fact prefetch granule: Off is the first page within
	// the fragment, Len the page count.
	PoolFact uint8 = iota
	// PoolBitmap keys one bitmap fragment payload: Off is the descriptor
	// index within the file's enumeration, Len the page count.
	PoolBitmap
)

// PoolKey identifies one cached read unit.
type PoolKey struct {
	// Epoch is the serving epoch of the backend the unit was read from.
	Epoch int64
	// File distinguishes fact granules from bitmap payloads.
	File uint8
	// Frag is the fact fragment id.
	Frag int64
	// Off locates the unit within the fragment (see PoolFact/PoolBitmap).
	Off int32
	// Len is the unit's page count.
	Len int32
}

// PoolEntry is one resident read unit. Entries returned by Get and Add
// are pinned: the data is guaranteed valid — never evicted, never
// overwritten — until Unpin.
type PoolEntry struct {
	key  PoolKey
	data []byte

	// Guarded by the owning shard's mutex.
	pins       int32
	prev, next *PoolEntry // LRU list (front = most recent)
	resident   bool

	shard *poolShard
}

// Data returns the entry's pages. Valid until Unpin.
func (e *PoolEntry) Data() []byte { return e.data }

// Unpin releases the caller's pin, making the entry evictable again once
// every pin is released.
func (e *PoolEntry) Unpin() {
	e.shard.mu.Lock()
	e.pins--
	e.shard.mu.Unlock()
}

// poolShard is one budget slice with its own exact LRU.
type poolShard struct {
	mu     sync.Mutex
	m      map[PoolKey]*PoolEntry
	head   *PoolEntry // most recently used
	tail   *PoolEntry // least recently used
	used   int64
	budget int64
}

// PoolStats is a snapshot of the pool's warehouse-wide counters.
type PoolStats struct {
	// Hits and Misses count lookups; a hit served the read unit without
	// any physical I/O.
	Hits, Misses int64
	// BytesServed is the total bytes served from the pool (hits).
	BytesServed int64
	// BytesInserted is the total bytes read from disk and cached.
	BytesInserted int64
	// Evictions counts entries evicted to make room.
	Evictions int64
	// Rejected counts insertions refused because making room would have
	// evicted a pinned entry or exceeded the budget.
	Rejected int64
	// UsedBytes and BudgetBytes describe the current occupancy against the
	// hard byte ceiling.
	UsedBytes   int64
	BudgetBytes int64
	// Entries is the number of resident read units.
	Entries int
}

// HitRate returns Hits/(Hits+Misses), 0 when nothing was looked up.
func (st PoolStats) HitRate() float64 {
	if n := st.Hits + st.Misses; n > 0 {
		return float64(st.Hits) / float64(n)
	}
	return 0
}

// poolShards is the fixed shard count. Small enough that tiny test
// budgets still give each shard useful room, large enough to spread the
// worker fan-out.
const poolShards = 8

// NewBufPool builds a pool with the given byte budget (values below one
// page are clamped to one shard-page each so the pool stays usable).
func NewBufPool(budget int64) *BufPool {
	if budget < poolShards {
		budget = poolShards
	}
	p := &BufPool{shards: make([]poolShard, poolShards)}
	per := budget / poolShards
	rem := budget - per*poolShards
	for i := range p.shards {
		p.shards[i].m = make(map[PoolKey]*PoolEntry)
		p.shards[i].budget = per
		if int64(i) < rem {
			p.shards[i].budget++
		}
	}
	return p
}

// Budget returns the pool's total byte budget.
func (p *BufPool) Budget() int64 {
	var b int64
	for i := range p.shards {
		b += p.shards[i].budget
	}
	return b
}

// Used returns the bytes currently resident.
func (p *BufPool) Used() int64 {
	var u int64
	for i := range p.shards {
		p.shards[i].mu.Lock()
		u += p.shards[i].used
		p.shards[i].mu.Unlock()
	}
	return u
}

// Stats snapshots the pool counters.
func (p *BufPool) Stats() PoolStats {
	st := PoolStats{
		Hits:          p.hits.Load(),
		Misses:        p.misses.Load(),
		BytesServed:   p.served.Load(),
		BytesInserted: p.inserted.Load(),
		Evictions:     p.evictions.Load(),
		Rejected:      p.rejected.Load(),
	}
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		st.UsedBytes += s.used
		st.BudgetBytes += s.budget
		st.Entries += len(s.m)
		s.mu.Unlock()
	}
	return st
}

// shardOf hashes a key onto its shard.
func (p *BufPool) shardOf(key PoolKey) *poolShard {
	h := uint64(key.Frag)*0x9e3779b97f4a7c15 ^
		uint64(uint32(key.Off))*0xff51afd7ed558ccd ^
		uint64(key.Epoch)<<17 ^ uint64(key.File)<<8 ^ uint64(uint32(key.Len))
	h ^= h >> 33
	return &p.shards[h%uint64(len(p.shards))]
}

// Get looks the key up, returning a pinned entry on a hit and nil on a
// miss. The caller must Unpin the entry when done reading its data.
func (p *BufPool) Get(key PoolKey) *PoolEntry {
	s := p.shardOf(key)
	s.mu.Lock()
	e := s.m[key]
	if e == nil {
		s.mu.Unlock()
		p.misses.Add(1)
		return nil
	}
	e.pins++
	s.moveToFront(e)
	s.mu.Unlock()
	p.hits.Add(1)
	p.served.Add(int64(len(e.data)))
	return e
}

// Add inserts a freshly read unit, taking ownership of data, and returns
// the entry pinned. If the key is already resident (a concurrent reader
// inserted it first), the existing entry is pinned and returned and data
// is discarded. If room cannot be made without evicting a pinned entry or
// exceeding the byte budget, Add returns nil and caches nothing — the
// caller keeps serving from data, which stays private. The caller must
// Unpin a non-nil result when done.
func (p *BufPool) Add(key PoolKey, data []byte) *PoolEntry {
	s := p.shardOf(key)
	n := int64(len(data))
	s.mu.Lock()
	if e := s.m[key]; e != nil {
		e.pins++
		s.moveToFront(e)
		s.mu.Unlock()
		return e
	}
	if n > s.budget {
		s.mu.Unlock()
		p.rejected.Add(1)
		return nil
	}
	// Evict strictly least-recently-used unpinned entries until it fits.
	evicted := 0
	for s.used+n > s.budget {
		victim := s.tail
		for victim != nil && victim.pins > 0 {
			victim = victim.prev
		}
		if victim == nil {
			// Every resident entry is pinned mid-aggregation: refuse rather
			// than exceed the budget (undoing partial evictions is pointless
			// — they were the coldest entries either way).
			s.mu.Unlock()
			p.rejected.Add(1)
			p.evictions.Add(int64(evicted))
			return nil
		}
		s.remove(victim)
		evicted++
	}
	e := &PoolEntry{key: key, data: data, pins: 1, shard: s}
	s.m[key] = e
	s.pushFront(e)
	e.resident = true
	s.used += n
	s.mu.Unlock()
	p.inserted.Add(n)
	p.evictions.Add(int64(evicted))
	return e
}

// InvalidateEpoch drops every unpinned entry of the epoch, returning the
// number dropped. Called when a retired epoch's last pinned query
// finishes; any entry still pinned (there should be none by then) is
// left to age out of the LRU.
func (p *BufPool) InvalidateEpoch(epoch int64) int {
	dropped := 0
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		for key, e := range s.m {
			if key.Epoch == epoch && e.pins == 0 {
				s.remove(e)
				dropped++
			}
		}
		s.mu.Unlock()
	}
	p.evictions.Add(int64(dropped))
	return dropped
}

// remove unlinks an entry from the shard (mutex held).
func (s *poolShard) remove(e *PoolEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
	e.resident = false
	delete(s.m, e.key)
	s.used -= int64(len(e.data))
}

// pushFront links an entry at the MRU end (mutex held).
func (s *poolShard) pushFront(e *PoolEntry) {
	e.prev, e.next = nil, s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

// moveToFront marks an entry most recently used (mutex held).
func (s *poolShard) moveToFront(e *PoolEntry) {
	if s.head == e {
		return
	}
	// Unlink (without the map/used bookkeeping of remove).
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
}
