package cost

import "repro/internal/frag"

// SharedCost predicts the physical-read reduction a query gets from
// shared multi-query scans: when K overlapping queries batch, every
// fragment relevant to more than one of them is read once instead of
// once per query. The model treats batch-mates as draws from the query
// mix and fragment overlap as the intersection of confinement regions —
// the same per-attribute member rectangles the Section 4.5 cost model
// confines I/O with.
type SharedCost struct {
	// Concurrency is the batch size K the estimate assumes (typically the
	// serving peak in-flight count, at least 2).
	Concurrency int
	// OverlapFraction is the mix-weighted expected fraction of this
	// query's relevant fragments also relevant to one random batch-mate:
	// E[|A∩B|]/|A| over mix-weighted B.
	OverlapFraction float64
	// ExpectedPhysFraction is the expected fraction of the query's solo
	// physical reads it still pays in a K-batch. A fragment escapes
	// sharing only when none of the K-1 batch-mates wants it —
	// probability (1-OverlapFraction)^(K-1) under independence — and a
	// fragment wanted by all K is still paid once, flooring the fraction
	// at 1/K.
	ExpectedPhysFraction float64
	// SharingFactor is the predicted physical-read reduction factor
	// 1/ExpectedPhysFraction, clamped to [1, K].
	SharingFactor float64
}

// EstimateShared predicts the shared-scan effect for one query batched
// at concurrency k against the given mix (weights need not be
// normalised). k below 2 is treated as 2 — sharing needs a batch-mate.
func EstimateShared(spec *frag.Spec, q frag.Query, mix []WeightedQuery, k int) SharedCost {
	if k < 2 {
		k = 2
	}
	sc := SharedCost{Concurrency: k, ExpectedPhysFraction: 1, SharingFactor: 1}
	a := spec.Relevant(q)
	size := float64(a.Count())
	if size <= 0 {
		return sc
	}
	var wsum, ov float64
	for _, wq := range mix {
		if wq.Weight <= 0 {
			continue
		}
		b := spec.Relevant(wq.Query)
		inter := int64(1)
		for i := range a.Lo {
			lo, hi := a.Lo[i], a.Hi[i]
			if b.Lo[i] > lo {
				lo = b.Lo[i]
			}
			if b.Hi[i] < hi {
				hi = b.Hi[i]
			}
			if hi <= lo {
				inter = 0
				break
			}
			inter *= int64(hi - lo)
		}
		wsum += wq.Weight
		ov += wq.Weight * float64(inter) / size
	}
	if wsum <= 0 {
		return sc
	}
	sc.OverlapFraction = ov / wsum
	frac := 1.0
	for i := 1; i < k; i++ {
		frac *= 1 - sc.OverlapFraction
	}
	if floor := 1 / float64(k); frac < floor {
		frac = floor
	}
	sc.ExpectedPhysFraction = frac
	sc.SharingFactor = 1 / frac
	if sc.SharingFactor > float64(k) {
		sc.SharingFactor = float64(k)
	}
	if sc.SharingFactor < 1 {
		sc.SharingFactor = 1
	}
	return sc
}
