package cost

import (
	"math"

	"repro/internal/frag"
)

// DeltaState summarises a warehouse's appended-but-not-yet-compacted
// data: how many fragments hold delta segments, how many segments exist,
// and the total delta row count. The serving layer snapshots it from the
// pinned delta set at Explain time.
type DeltaState struct {
	// Fragments is the number of distinct fragments holding deltas.
	Fragments int
	// Segments is the total number of sealed delta segments.
	Segments int
	// Rows is the total number of delta rows.
	Rows int64
}

// DeltaCost is the estimated extra work a query pays for reading the
// delta segments on top of its base-fragment cost: delta rows live in
// sealed in-memory segments, so the overhead is per-row aggregation work
// (and the segment bitmap intersections), not page I/O. Bytes reports
// the tuple-equivalent volume scanned, for comparison against the base
// QueryCost.TotalBytes.
type DeltaCost struct {
	// Segments is the expected number of delta segments visited.
	Segments int64
	// Rows is the expected number of delta rows aggregated.
	Rows int64
	// Bytes is the tuple-equivalent volume of those rows (rows times the
	// on-disk tuple size), the delta analogue of QueryCost.TotalBytes.
	Bytes int64
}

// EstimateDelta estimates the delta-read overhead of query q: fragment
// confinement applies to delta segments exactly as to base fragments
// (segments are fragment-aligned), so only the relevant fraction of the
// delta state is visited. Under the model's uniformity assumption the
// segments and rows spread evenly over the fragments that hold them.
func EstimateDelta(spec *frag.Spec, q frag.Query, d DeltaState) DeltaCost {
	if d.Rows == 0 || d.Segments == 0 {
		return DeltaCost{}
	}
	total := float64(spec.NumFragments())
	relevant := float64(spec.RelevantCount(q))
	fraction := 1.0
	if total > 0 && relevant < total {
		fraction = relevant / total
	}
	out := DeltaCost{
		Segments: int64(math.Ceil(float64(d.Segments) * fraction)),
		Rows:     int64(math.Ceil(float64(d.Rows) * fraction)),
	}
	star := spec.Star()
	tupleSize := int64(2*len(star.Dims) + 12)
	out.Bytes = out.Rows * tupleSize
	return out
}
