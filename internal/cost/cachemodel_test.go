package cost

import (
	"math"
	"testing"
)

func TestEstimateCacheBounds(t *testing.T) {
	c := QueryCost{FactIOs: 10, BitmapIOs: 2, TotalBytes: 1 << 20}

	if got := EstimateCache(c, 0); got.HitRate != 0 || got.AbsorbedIOs != 0 || got.AbsorbedBytes != 0 {
		t.Fatalf("no pool predicted absorption: %+v", got)
	}
	if got := EstimateCache(QueryCost{}, 1<<20); got.HitRate != 0 {
		t.Fatalf("zero working set predicted hit rate %v", got.HitRate)
	}

	// Pool covering the whole working set: everything absorbed.
	full := EstimateCache(c, 1<<21)
	if full.HitRate != 1 {
		t.Fatalf("oversized pool hit rate %v, want 1", full.HitRate)
	}
	if full.AbsorbedIOs != c.TotalIOs() || full.AbsorbedBytes != c.TotalBytes {
		t.Fatalf("oversized pool absorption %+v, want all of %d IOs / %d bytes", full, c.TotalIOs(), c.TotalBytes)
	}

	// Half the working set resident: half the physical reads absorbed.
	half := EstimateCache(c, 1<<19)
	if half.HitRate != 0.5 {
		t.Fatalf("half pool hit rate %v, want 0.5", half.HitRate)
	}
	if half.AbsorbedIOs != int64(math.Round(0.5*float64(c.TotalIOs()))) {
		t.Fatalf("half pool absorbed %d IOs", half.AbsorbedIOs)
	}
	if half.WorkingSetBytes != c.TotalBytes || half.PoolBytes != 1<<19 {
		t.Fatalf("echoed inputs wrong: %+v", half)
	}
}

// TestEstimateCacheMonotone mirrors the pool's measured property: the
// predicted hit rate never decreases with budget and never exceeds one.
func TestEstimateCacheMonotone(t *testing.T) {
	c := QueryCost{FactIOs: 100, BitmapIOs: 20, TotalBytes: 3 << 20}
	prev := -1.0
	for b := int64(1 << 16); b <= 1<<23; b *= 2 {
		got := EstimateCache(c, b)
		if got.HitRate < prev {
			t.Fatalf("budget %d hit rate %v below smaller budget's %v", b, got.HitRate, prev)
		}
		if got.HitRate < 0 || got.HitRate > 1 {
			t.Fatalf("budget %d hit rate %v out of [0,1]", b, got.HitRate)
		}
		prev = got.HitRate
	}
}
