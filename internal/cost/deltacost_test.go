package cost

import (
	"testing"

	"repro/internal/frag"
	"repro/internal/schema"
)

func TestEstimateDelta(t *testing.T) {
	star := schema.Tiny()
	spec := frag.MustParse(star, "time::month, product::group")
	tupleSize := int64(2*len(star.Dims) + 12)

	// Empty state costs nothing regardless of the query.
	all := mustQuery(t, star, "")
	if got := EstimateDelta(spec, all, DeltaState{}); got != (DeltaCost{}) {
		t.Fatalf("empty state: %+v", got)
	}

	// An unconfined query visits every delta row.
	st := DeltaState{Fragments: int(spec.NumFragments()), Segments: 16, Rows: 1000}
	got := EstimateDelta(spec, all, st)
	if got.Segments != 16 || got.Rows != 1000 || got.Bytes != 1000*tupleSize {
		t.Fatalf("unconfined: %+v", got)
	}

	// A query confined to one month (of 4) and one group (of 2) visits
	// 1/8 of the fragments, hence 1/8 of the (uniformly spread) deltas.
	q := mustQuery(t, star, "time::month=1, product::group=0")
	got = EstimateDelta(spec, q, st)
	if got.Segments != 2 || got.Rows != 125 || got.Bytes != 125*tupleSize {
		t.Fatalf("confined: %+v", got)
	}
}

func mustQuery(t *testing.T, star *schema.Star, text string) frag.Query {
	t.Helper()
	q, err := frag.ParseQuery(star, text)
	if err != nil {
		t.Fatal(err)
	}
	return q
}
