package cost

import (
	"sort"

	"repro/internal/frag"
	"repro/internal/schema"
)

// Ranked is one fragmentation candidate with its estimated total work.
type Ranked struct {
	Spec *frag.Spec
	// Work is the weighted total I/O bytes over the query mix.
	Work float64
	// Bitmaps is the number of bitmaps that must be materialised.
	Bitmaps int
	// Fragments is the number of fact fragments.
	Fragments int64
	// BitmapFragPages is the (fractional) bitmap fragment size in pages.
	BitmapFragPages float64
	// PerQuery holds the per-mix-entry costs, aligned with the mix.
	PerQuery []QueryCost
}

// Advise implements the data allocation guidelines of Section 4.7:
//
//  1. exclude all fragmentations breaking a threshold (minimal bitmap
//     fragment size, maximal fragment count, maximal bitmap count,
//     and at least one fragment per disk);
//  2. analyze the I/O load of the remaining candidates over the query mix;
//  3. rank by minimal total I/O work.
//
// It returns all admissible candidates, best first.
func Advise(star *schema.Star, cfg frag.IndexConfig, mix []WeightedQuery, th frag.Thresholds, p Params) []Ranked {
	var out []Ranked
	for _, spec := range frag.Enumerate(star) {
		if !th.Admissible(spec, cfg) {
			continue
		}
		r := Ranked{
			Spec:            spec,
			Bitmaps:         spec.SurvivingBitmaps(cfg),
			Fragments:       spec.NumFragments(),
			BitmapFragPages: spec.BitmapFragmentPages(),
		}
		for _, wq := range mix {
			c := Estimate(spec, cfg, wq.Query, p)
			r.PerQuery = append(r.PerQuery, c)
			r.Work += wq.Weight * float64(c.TotalBytes)
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Work != out[j].Work {
			return out[i].Work < out[j].Work
		}
		// Tie-break: fewer fragments are cheaper to administer.
		return out[i].Fragments < out[j].Fragments
	})
	return out
}
