package cost

import (
	"context"
	"sort"

	"repro/internal/exec"
	"repro/internal/frag"
	"repro/internal/schema"
)

// Ranked is one fragmentation candidate with its estimated total work.
type Ranked struct {
	Spec *frag.Spec
	// Work is the weighted total I/O bytes over the query mix.
	Work float64
	// Bitmaps is the number of bitmaps that must be materialised.
	Bitmaps int
	// Fragments is the number of fact fragments.
	Fragments int64
	// BitmapFragPages is the (fractional) bitmap fragment size in pages.
	BitmapFragPages float64
	// PerQuery holds the per-mix-entry costs, aligned with the mix.
	PerQuery []QueryCost
}

// Advise implements the data allocation guidelines of Section 4.7:
//
//  1. exclude all fragmentations breaking a threshold (minimal bitmap
//     fragment size, maximal fragment count, maximal bitmap count,
//     and at least one fragment per disk);
//  2. analyze the I/O load of the remaining candidates over the query mix;
//  3. rank by minimal total I/O work.
//
// It returns all admissible candidates, best first. The candidate
// analysis runs on one worker per available CPU; see AdviseParallel for
// an explicit worker count.
func Advise(star *schema.Star, cfg frag.IndexConfig, mix []WeightedQuery, th frag.Thresholds, p Params) []Ranked {
	return AdviseParallel(star, cfg, mix, th, p, 0)
}

// AdviseParallel is Advise with the per-candidate I/O analysis fanned out
// over `workers` goroutines (values below 1 mean one per CPU) on the
// shared internal/exec pool. Candidates are gathered in enumeration order
// before ranking, so the result is identical at any worker count.
func AdviseParallel(star *schema.Star, cfg frag.IndexConfig, mix []WeightedQuery, th frag.Thresholds, p Params, workers int) []Ranked {
	specs := frag.Enumerate(star)
	ranked, err := exec.Map(context.Background(), workers, len(specs), func(i int) (*Ranked, error) {
		spec := specs[i]
		if !th.Admissible(spec, cfg) {
			return nil, nil
		}
		r := &Ranked{
			Spec:            spec,
			Bitmaps:         spec.SurvivingBitmaps(cfg),
			Fragments:       spec.NumFragments(),
			BitmapFragPages: spec.BitmapFragmentPages(),
		}
		for _, wq := range mix {
			c := Estimate(spec, cfg, wq.Query, p)
			r.PerQuery = append(r.PerQuery, c)
			r.Work += wq.Weight * float64(c.TotalBytes)
		}
		return r, nil
	})
	if err != nil { // tasks never fail; only a cancelled context could
		return nil
	}
	var out []Ranked
	for _, r := range ranked {
		if r != nil {
			out = append(out, *r)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Work != out[j].Work {
			return out[i].Work < out[j].Work
		}
		// Tie-break: fewer fragments are cheaper to administer.
		return out[i].Fragments < out[j].Fragments
	})
	return out
}
