// Package cost implements the analytical I/O cost model of the MDHF study
// (Section 4.5 and the companion technical report [33], which is
// unavailable; the formulas are reconstructed from the paper's stated
// behaviour and calibrated against Tables 2, 3 and 6 — see EXPERIMENTS.md
// for residual deviations).
//
// The model assumes, as the paper does, a uniform distribution of query
// hits within each relevant fragment and page, and fragments stored
// consecutively on disk.
package cost

import (
	"math"

	"repro/internal/frag"
	"repro/internal/schema"
)

// Params holds the I/O parameters of the cost model.
type Params struct {
	// FactPrefetch is the prefetch granule on fact fragments, in pages
	// (paper: 8).
	FactPrefetch int
	// BitmapPrefetch is the prefetch granule on bitmap fragments, in pages
	// (paper: 5).
	BitmapPrefetch int
}

// DefaultParams returns the paper's prefetch settings (Table 4).
func DefaultParams() Params {
	return Params{FactPrefetch: 8, BitmapPrefetch: 5}
}

// QueryCost is the estimated I/O work of one star query under a given
// fragmentation.
type QueryCost struct {
	// Class is the I/O overhead class (Section 4.5).
	Class frag.IOClass
	// Fragments is the number of fact fragments to process.
	Fragments int64
	// HitRows is the expected number of matching fact rows.
	HitRows float64
	// BitmapsPerFragment is the number of bitmap fragments read per fact
	// fragment (0 for IOC1).
	BitmapsPerFragment int

	// Groups is the expected number of non-empty groups of a grouped
	// query (1 without GROUP BY), under the uniformity assumption and
	// capped by the expected hit rows.
	Groups int64
	// GroupAligned reports the fragment-aligned grouping fast path: every
	// GROUP BY level at or above the fragmentation level of its
	// dimension, so the group key is constant per fragment and grouping
	// adds no per-row work. Grouping never adds I/O in either case — the
	// stored tuples already carry the dimension keys the fallback buckets
	// by — so the I/O counts below are grouping-independent.
	GroupAligned bool

	// FactPagesPerFragment is the expected number of fact pages read per
	// relevant fragment (prefetch-granule aligned).
	FactPagesPerFragment float64
	// FactPages is the total number of fact pages read.
	FactPages int64
	// FactIOs is the total number of fact I/O operations (each reading up
	// to FactPrefetch consecutive pages).
	FactIOs int64

	// BitmapPages is the total number of bitmap pages read.
	BitmapPages int64
	// BitmapIOs is the total number of bitmap I/O operations.
	BitmapIOs int64

	// TotalBytes is the total I/O volume.
	TotalBytes int64
}

// TotalMB returns the total I/O volume in binary megabytes.
func (c QueryCost) TotalMB() float64 { return float64(c.TotalBytes) / (1 << 20) }

// TotalIOs returns the total number of I/O operations.
func (c QueryCost) TotalIOs() int64 { return c.FactIOs + c.BitmapIOs }

// BitmapFragPagesStored returns the page count a bitmap fragment occupies
// on disk: the ceiling of its fractional size, at least one page.
func BitmapFragPagesStored(spec *frag.Spec) int64 {
	p := int64(math.Ceil(spec.BitmapFragmentPages()))
	if p < 1 {
		p = 1
	}
	return p
}

// Estimate computes the I/O cost of query q under fragmentation spec with
// index configuration cfg.
func Estimate(spec *frag.Spec, cfg frag.IndexConfig, q frag.Query, p Params) QueryCost {
	star := spec.Star()
	out := QueryCost{
		Class:              spec.IOClassOf(q),
		Fragments:          spec.RelevantCount(q),
		HitRows:            q.Hits(star),
		BitmapsPerFragment: spec.BitmapsReadForQuery(cfg, q),
		Groups:             estimateGroups(star, q),
		GroupAligned:       spec.GroupAligned(q),
	}

	tpp := float64(star.FactTuplesPerPage())
	fragPages := math.Ceil(spec.FragmentRows() / tpp)
	g := float64(p.FactPrefetch)
	granules := math.Ceil(fragPages / g)

	if out.BitmapsPerFragment == 0 {
		// IOC1: clustered hits, whole fragments are relevant — every page of
		// every relevant fragment is read with full prefetch efficiency.
		out.FactPagesPerFragment = fragPages
		out.FactPages = out.Fragments * int64(fragPages)
		out.FactIOs = out.Fragments * int64(granules)
	} else {
		// IOC2: hits are spread; a prefetch granule is read iff it contains
		// at least one hit. With per-tuple hit probability s, a granule of
		// g*tpp tuples is hit with probability 1-(1-s)^(g*tpp).
		s := spec.FragmentSelectivity(q)
		pGranule := 1 - math.Pow(1-s, g*tpp)
		touched := granules * pGranule
		if hits := s * spec.FragmentRows(); touched < 1 && hits > 0 {
			touched = 1 // at least one granule per fragment with any hit
		}
		pages := touched * g
		if pages > fragPages {
			pages = fragPages
		}
		out.FactPagesPerFragment = pages
		out.FactPages = int64(math.Round(float64(out.Fragments) * pages))
		out.FactIOs = int64(math.Ceil(float64(out.Fragments) * touched))

		// Bitmap I/O: each required bitmap fragment is read in full. A
		// fragment of ceil(BF) pages costs ceil(ceil(BF)/prefetch) I/Os.
		bfPages := BitmapFragPagesStored(spec)
		bIOs := (bfPages + int64(p.BitmapPrefetch) - 1) / int64(p.BitmapPrefetch)
		out.BitmapPages = out.Fragments * int64(out.BitmapsPerFragment) * bfPages
		out.BitmapIOs = out.Fragments * int64(out.BitmapsPerFragment) * bIOs
	}

	out.TotalBytes = (out.FactPages + out.BitmapPages) * int64(star.PageSize)
	return out
}

// estimateGroups returns the expected number of non-empty groups under
// uniformity. Within one dimension only the finest GROUP BY level counts
// — coarser levels are functionally determined by it (each month lies in
// exactly one quarter), so they multiply the key space but not the
// number of non-empty groups. Per dimension: a predicate at a
// finer-or-equal level than that finest GroupBy level pins one group
// member, a coarser predicate leaves its fan-out many descendants, no
// predicate leaves the full level domain. The product across dimensions
// is capped by the expected hit rows (a group needs at least one row).
func estimateGroups(star *schema.Star, q frag.Query) int64 {
	finest := make(map[int]int, len(q.GroupBy)) // dim -> finest GroupBy level
	for _, ref := range q.GroupBy {
		if l, ok := finest[ref.Dim]; !ok || ref.Level > l {
			finest[ref.Dim] = ref.Level
		}
	}
	groups := int64(1)
	for dim, level := range finest {
		d := &star.Dims[dim]
		members := int64(d.Levels[level].Card)
		if p, ok := q.PredOnDim(dim); ok {
			if p.Level >= level {
				members = 1 // the predicate's ancestor is the only group
			} else {
				members = int64(d.FanOutBetween(p.Level, level))
			}
		}
		groups *= members
	}
	if hits := int64(math.Ceil(q.Hits(star))); groups > hits {
		groups = hits
	}
	if groups < 1 {
		groups = 1
	}
	return groups
}

// TotalWork estimates the weighted total I/O bytes of a query mix under a
// fragmentation — the ranking criterion of the guidelines in Section 4.7.
func TotalWork(spec *frag.Spec, cfg frag.IndexConfig, mix []WeightedQuery, p Params) float64 {
	var total float64
	for _, wq := range mix {
		c := Estimate(spec, cfg, wq.Query, p)
		total += wq.Weight * float64(c.TotalBytes)
	}
	return total
}

// WeightedQuery is one entry of a query mix.
type WeightedQuery struct {
	Name   string
	Query  frag.Query
	Weight float64
}
