package cost

import (
	"testing"
	"time"

	"repro/internal/alloc"
	"repro/internal/frag"
	"repro/internal/schema"
	"repro/internal/workload"
)

func diskModelFixture(t *testing.T) (*schema.Star, *frag.Spec, frag.IndexConfig, frag.Query, frag.Query) {
	t.Helper()
	s := schema.APB1()
	spec := frag.MustParse(s, "time::month, product::group")
	icfg := frag.APB1Indexes(s)
	pd := s.DimIndex(schema.DimProduct)
	cd := s.DimIndex(schema.DimCustomer)
	qCode := frag.Query{Preds: []frag.Pred{{Dim: pd, Level: s.Dims[pd].LevelIndex(schema.LvlCode), Member: 77}}}
	qStore := frag.Query{Preds: []frag.Pred{{Dim: cd, Level: s.Dims[cd].LevelIndex(schema.LvlStore), Member: 7}}}
	return s, spec, icfg, qCode, qStore
}

func TestEstimateResponseScalesWithDisks(t *testing.T) {
	_, spec, icfg, _, qStore := diskModelFixture(t)
	p := DefaultParams()
	var prev time.Duration
	for i, d := range []int{1, 2, 4, 8, 16} {
		dp := DiskParams{
			Placement:  alloc.Placement{Disks: d, Scheme: alloc.RoundRobin, Staggered: true},
			AccessTime: 12 * time.Millisecond,
		}
		r := EstimateResponse(spec, icfg, qStore, p, dp)
		if r.Response <= 0 {
			t.Fatalf("d=%d: non-positive response %v", d, r.Response)
		}
		// 1STORE touches every fragment: response must strictly improve
		// with more disks, close to linearly for small d.
		if i > 0 && r.Response >= prev {
			t.Errorf("d=%d: response %v did not improve on %v", d, r.Response, prev)
		}
		if want := d; r.DisksUsed != want {
			t.Errorf("d=%d: DisksUsed = %d, want %d", d, r.DisksUsed, want)
		}
		prev = r.Response
	}
	// Near-linear at 8 disks for the full-fanout query.
	one := EstimateResponse(spec, icfg, qStore, p, DiskParams{Placement: alloc.Placement{Disks: 1}, AccessTime: 12 * time.Millisecond})
	eight := EstimateResponse(spec, icfg, qStore, p, DiskParams{Placement: alloc.Placement{Disks: 8, Staggered: true}, AccessTime: 12 * time.Millisecond})
	if speedup := float64(one.Response) / float64(eight.Response); speedup < 6 {
		t.Errorf("8-disk modelled speedup %.2f, want near-linear (>= 6)", speedup)
	}
}

func TestEstimateResponseGcdClustering(t *testing.T) {
	// The Section 4.6 example, quantified: 1CODE's stride-480 access over
	// 100 round-robin disks convoys on 5 disks; 101 (prime) disks or the
	// gap scheme restore parallelism, so both must model substantially
	// faster — and the clustered case must show the imbalance.
	_, spec, icfg, qCode, _ := diskModelFixture(t)
	p := DefaultParams()
	access := 12 * time.Millisecond
	rr100 := EstimateResponse(spec, icfg, qCode, p, DiskParams{
		Placement: alloc.Placement{Disks: 100, Scheme: alloc.RoundRobin, Staggered: true}, AccessTime: access})
	prime := EstimateResponse(spec, icfg, qCode, p, DiskParams{
		Placement: alloc.Placement{Disks: 101, Scheme: alloc.RoundRobin, Staggered: true}, AccessTime: access})
	gap := EstimateResponse(spec, icfg, qCode, p, DiskParams{
		Placement: alloc.Placement{Disks: 100, Scheme: alloc.GapRoundRobin, Staggered: true}, AccessTime: access})
	if float64(rr100.Response) < 2*float64(prime.Response) {
		t.Errorf("gcd-clustered 100-disk response %v not >> prime 101-disk %v", rr100.Response, prime.Response)
	}
	if float64(rr100.Response) < 2*float64(gap.Response) {
		t.Errorf("gcd-clustered 100-disk response %v not >> gap-scheme %v", rr100.Response, gap.Response)
	}
	if rr100.Imbalance <= prime.Imbalance {
		t.Errorf("clustered imbalance %.2f not above prime-disk imbalance %.2f", rr100.Imbalance, prime.Imbalance)
	}
}

func TestEstimateResponseWorkerBound(t *testing.T) {
	// With fewer workers than disks, the worker-limited critical path
	// dominates: 16 disks at 4 workers cannot beat total/4.
	_, spec, icfg, _, qStore := diskModelFixture(t)
	p := DefaultParams()
	dp := DiskParams{
		Placement:  alloc.Placement{Disks: 16, Scheme: alloc.RoundRobin, Staggered: true},
		AccessTime: 12 * time.Millisecond,
		Workers:    4,
	}
	r := EstimateResponse(spec, icfg, qStore, p, dp)
	total := 0.0
	for _, l := range r.DiskIOs {
		total += l
	}
	if want := total / 4; r.EffectiveIOs < want-1e-9 {
		t.Errorf("EffectiveIOs %.1f below worker-limited bound %.1f", r.EffectiveIOs, want)
	}
}

func TestAdviseDisksRanking(t *testing.T) {
	s, spec, icfg, _, _ := diskModelFixture(t)
	gen := workload.NewGenerator(s, 1)
	var mix []WeightedQuery
	for _, qt := range []workload.QueryType{workload.OneStore, workload.OneCodeOneQuarter} {
		q, err := gen.Next(qt)
		if err != nil {
			t.Fatal(err)
		}
		mix = append(mix, WeightedQuery{Name: qt.Name, Query: q, Weight: 0.5})
	}
	dp := DiskParams{Placement: alloc.Placement{Staggered: true}, AccessTime: 12 * time.Millisecond}
	ranked := AdviseDisks(spec, icfg, mix, DefaultParams(), dp, []int{1, 2, 4, 8, 16})
	if len(ranked) != 10 { // 5 disk counts x 2 schemes
		t.Fatalf("got %d candidates, want 10", len(ranked))
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Response < ranked[i-1].Response {
			t.Fatalf("ranking not sorted: %v before %v", ranked[i-1].Response, ranked[i].Response)
		}
	}
	best, worst := ranked[0], ranked[len(ranked)-1]
	if best.Placement.Disks <= 1 {
		t.Errorf("best candidate uses %d disks; more disks should win", best.Placement.Disks)
	}
	if worst.Placement.Disks != 1 {
		t.Errorf("worst candidate uses %d disks, want the single disk", worst.Placement.Disks)
	}
	if best.Speedup <= worst.Speedup {
		t.Errorf("best speedup %.2f not above worst %.2f", best.Speedup, worst.Speedup)
	}
	// The single-disk candidate is its own baseline.
	for _, r := range ranked {
		if r.Placement.Disks == 1 && (r.Speedup < 0.99 || r.Speedup > 1.01) {
			t.Errorf("single-disk speedup = %.3f, want 1", r.Speedup)
		}
	}
}

func TestEstimateResponseZeroValuePlacement(t *testing.T) {
	// A zero-value DiskParams.Placement must clamp to one disk, not
	// divide by zero inside FactDisk.
	_, spec, icfg, _, qStore := diskModelFixture(t)
	r := EstimateResponse(spec, icfg, qStore, DefaultParams(), DiskParams{AccessTime: 12 * time.Millisecond})
	if len(r.DiskIOs) != 1 || r.DisksUsed != 1 {
		t.Fatalf("zero-value placement: %d disks, %d used, want 1/1", len(r.DiskIOs), r.DisksUsed)
	}
	if r.Response <= 0 {
		t.Fatalf("zero-value placement response %v", r.Response)
	}
}

func TestEstimateResponseEmptyQueryAndMix(t *testing.T) {
	_, spec, icfg, _, _ := diskModelFixture(t)
	// A query with no relevant fragments yields a zero estimate rather
	// than dividing by zero. Member beyond any data still has fragments,
	// so use an empty fragmentation interaction instead: zero-weight mix.
	resp, imb := weightedResponseImbalance(spec, icfg, nil, DefaultParams(), DiskParams{Placement: alloc.Placement{Disks: 4}})
	if resp != 0 || imb != 0 {
		t.Errorf("empty mix: response %v imbalance %v", resp, imb)
	}
}

func TestEstimateResponseTwoTierNodes(t *testing.T) {
	// The cluster response model: with a NodePlacement, I/Os route to
	// node-major (node, disk-within-node) queues and the bottleneck is a
	// node's own deepest disk — never a pool the disks of different
	// nodes could share.
	_, spec, icfg, _, qStore := diskModelFixture(t)
	p := DefaultParams()
	at := 12 * time.Millisecond
	const nodes, d = 4, 2
	dp := DiskParams{
		Placement:     alloc.Placement{Disks: d, Scheme: alloc.RoundRobin, Staggered: true},
		NodePlacement: alloc.Placement{Disks: nodes, Scheme: alloc.RoundRobin},
		AccessTime:    at,
	}
	r := EstimateResponse(spec, icfg, qStore, p, dp)
	if r.Nodes != nodes {
		t.Fatalf("Nodes = %d, want %d", r.Nodes, nodes)
	}
	if len(r.DiskIOs) != nodes*d {
		t.Fatalf("%d queues, want %d (node-major)", len(r.DiskIOs), nodes*d)
	}
	if len(r.NodeIOs) != nodes || r.NodesUsed != nodes {
		t.Fatalf("NodeIOs/%d NodesUsed=%d, want %d nodes all used for the full-fanout query",
			len(r.NodeIOs), r.NodesUsed, nodes)
	}
	// NodeIOs is the per-node sum of that node's disk queues, and the
	// bottleneck node owns the globally deepest queue.
	var total float64
	maxQ, argmax := 0.0, 0
	for i, l := range r.DiskIOs {
		total += l
		if l > maxQ {
			maxQ, argmax = l, i
		}
	}
	var nodeTotal float64
	for n := 0; n < nodes; n++ {
		var sum float64
		for k := 0; k < d; k++ {
			sum += r.DiskIOs[n*d+k]
		}
		if diff := sum - r.NodeIOs[n]; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("node %d: NodeIOs %.3f != disk sum %.3f", n, r.NodeIOs[n], sum)
		}
		nodeTotal += r.NodeIOs[n]
	}
	if diff := nodeTotal - total; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("NodeIOs total %.3f != DiskIOs total %.3f", nodeTotal, total)
	}
	if r.BottleneckIOs != maxQ || r.BottleneckNode != argmax/d {
		t.Errorf("bottleneck %v@node %d, want %v@node %d", r.BottleneckIOs, r.BottleneckNode, maxQ, argmax/d)
	}

	// Never better than pooling: the same nodes*d queues on one node is
	// a lower bound (a global pool can only balance better).
	pooled := EstimateResponse(spec, icfg, qStore, p, DiskParams{
		Placement:  alloc.Placement{Disks: nodes * d, Scheme: alloc.RoundRobin, Staggered: true},
		AccessTime: at,
	})
	if r.Response < pooled.Response {
		t.Errorf("two-tier response %v beats pooled %v", r.Response, pooled.Response)
	}

	// Zero NodePlacement stays single-tier: identical to the legacy model.
	single := EstimateResponse(spec, icfg, qStore, p, DiskParams{
		Placement:  dp.Placement,
		AccessTime: at,
	})
	if single.Nodes != 1 || len(single.NodeIOs) != 1 || len(single.DiskIOs) != d {
		t.Fatalf("zero NodePlacement: Nodes=%d queues=%d, want legacy single-tier", single.Nodes, len(single.DiskIOs))
	}
}

func TestEstimateResponseTwoTierWorkerBound(t *testing.T) {
	// The worker bound applies per node: each node's pool drains only its
	// own shard, so the critical path is max(bottleneck disk, slowest
	// node's total / that node's workers) — not the cluster total over a
	// pooled worker count.
	_, spec, icfg, _, qStore := diskModelFixture(t)
	p := DefaultParams()
	dp := DiskParams{
		Placement:     alloc.Placement{Disks: 2, Scheme: alloc.RoundRobin, Staggered: true},
		NodePlacement: alloc.Placement{Disks: 4, Scheme: alloc.RoundRobin},
		AccessTime:    12 * time.Millisecond,
		Workers:       1,
	}
	r := EstimateResponse(spec, icfg, qStore, p, dp)
	maxNode := 0.0
	for _, l := range r.NodeIOs {
		if l > maxNode {
			maxNode = l
		}
	}
	want := r.BottleneckIOs
	if maxNode > want {
		want = maxNode
	}
	if diff := r.EffectiveIOs - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("EffectiveIOs = %.3f, want max(bottleneck %.3f, slowest node %.3f / 1 worker)",
			r.EffectiveIOs, r.BottleneckIOs, maxNode)
	}
	var total float64
	for _, l := range r.DiskIOs {
		total += l
	}
	if r.EffectiveIOs >= total {
		t.Errorf("per-node worker bound %.3f reached the pooled cluster total %.3f", r.EffectiveIOs, total)
	}
}
