package cost

import "math"

// CacheCost predicts how a byte-budgeted buffer pool serves one query —
// the analytical counterpart of the pool's measured hit/miss counters.
// The model follows directly from confinement: a query's working set is
// exactly the pages its relevant fragments make it read (QueryCost's
// fact + bitmap volume), so under an LRU pool shared by repetitions of
// the query the steady-state hit rate is the resident fraction of that
// working set — min(1, budget/workingSet). Hot confined queries (the
// current quarter, one store group) have small stable working sets and
// go resident; unconfined scans blow the budget and keep missing.
type CacheCost struct {
	// WorkingSetBytes is the query's per-execution read volume — the
	// bytes competing for pool residency.
	WorkingSetBytes int64
	// PoolBytes is the configured pool budget (0 = no pool).
	PoolBytes int64
	// HitRate is the expected steady-state pool hit rate for repeated
	// executions: the resident fraction of the working set.
	HitRate float64
	// AbsorbedIOs and AbsorbedBytes are the expected physical reads the
	// pool absorbs per warm execution — HitRate times the query's logical
	// I/O counts.
	AbsorbedIOs   int64
	AbsorbedBytes int64
}

// EstimateCache predicts the buffer pool's steady-state effect on a
// query whose I/O estimate is c, under a pool of poolBytes. A zero
// budget (no pool) predicts zero absorption.
func EstimateCache(c QueryCost, poolBytes int64) CacheCost {
	out := CacheCost{WorkingSetBytes: c.TotalBytes, PoolBytes: poolBytes}
	if poolBytes <= 0 || c.TotalBytes <= 0 {
		return out
	}
	hr := float64(poolBytes) / float64(c.TotalBytes)
	if hr > 1 {
		hr = 1
	}
	out.HitRate = hr
	out.AbsorbedIOs = int64(math.Round(hr * float64(c.TotalIOs())))
	out.AbsorbedBytes = int64(math.Round(hr * float64(c.TotalBytes)))
	return out
}
