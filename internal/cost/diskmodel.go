package cost

import (
	"time"

	"repro/internal/alloc"
	"repro/internal/frag"
)

// Per-disk queue model (Section 4.6 made quantitative): the analytical
// cost model of cost.go yields the I/O operation counts of a query; this
// file distributes those operations over the disks of an alloc.Placement
// and estimates response time from the bottleneck queue — the measured
// behaviour of storage.DiskSet, where every disk serializes its accesses.

// DiskParams configures the per-disk queue response model.
type DiskParams struct {
	// Placement maps fact and bitmap fragments to disks.
	Placement alloc.Placement
	// AccessTime is the per-access latency of one disk (seek + settle +
	// controller), the Table 4 disk model.
	AccessTime time.Duration
	// TransferPerPage is the per-page transfer time added to each access.
	TransferPerPage time.Duration
	// Workers bounds the number of concurrent fragment subqueries issuing
	// I/O (0 = unbounded, i.e. only the disks limit parallelism). With a
	// NodePlacement the bound applies per node: each node drives its own
	// worker pool, so the worker-limited critical path is the slowest
	// node's share over its own Workers, not the cluster total pooled.
	Workers int
	// NodePlacement, when it has more than one disk, shards the fragments
	// over that many *nodes* one level above Placement: fragment id is
	// served by node NodePlacement.FactDisk(id), whose own Placement.Disks
	// disks hold the node's shard. The response model then becomes
	// two-tier — I/Os route to (node, disk-within-node) queues, and the
	// bottleneck is the deepest per-node disk queue (max over nodes of the
	// node's own bottleneck disk), never a fictitious global pool that
	// disks of different nodes could share. Zero means a single node.
	NodePlacement alloc.Placement
	// Degraded maps disk index → expected-attempts multiplier for a disk
	// serving reads through retries (see RetryFactor): its routed I/Os are
	// inflated by the factor, so a flaky disk deepens its queue and can
	// become (or worsen) the bottleneck. Disks absent from the map are
	// healthy (factor 1).
	Degraded map[int]float64
}

// RetryFactor converts a per-read fault probability p into the expected
// number of attempts per successful read under retry-until-success,
// 1/(1-p) — the load multiplier a degraded disk imposes on its queue.
// Probabilities at or above 1 are clamped just below it.
func RetryFactor(p float64) float64 {
	if p <= 0 {
		return 1
	}
	if p > 0.99 {
		p = 0.99
	}
	return 1 / (1 - p)
}

// ResponseEstimate is the modelled response of one query under a
// placement with serialized per-disk queues.
type ResponseEstimate struct {
	// Cost is the underlying single-disk I/O estimate.
	Cost QueryCost
	// DiskIOs is the number of I/O operations routed to each disk.
	DiskIOs []float64
	// BottleneckIOs is the largest per-disk queue — the I/O completion
	// bound on response time.
	BottleneckIOs float64
	// EffectiveIOs is the modelled critical-path I/O count:
	// max(BottleneckIOs, TotalIOs/Workers).
	EffectiveIOs float64
	// Response is EffectiveIOs worth of access plus the critical path's
	// share of page transfer.
	Response time.Duration
	// DisksUsed is the number of disks receiving any I/O.
	DisksUsed int
	// Imbalance is BottleneckIOs divided by the mean nonzero-disk load
	// (1.0 = perfectly balanced over the used disks).
	Imbalance float64
	// Nodes is the modelled node count (1 without a NodePlacement); with
	// more than one node, DiskIOs holds Nodes×Placement.Disks queues laid
	// out node-major (queue n*Disks+k is disk k of node n).
	Nodes int
	// NodesUsed is the number of nodes receiving any I/O.
	NodesUsed int
	// NodeIOs is the total I/O routed to each node (summed over the
	// node's disks); BottleneckNode is the node owning the bottleneck
	// disk queue.
	NodeIOs        []float64
	BottleneckNode int
}

// EstimateResponse models the response time of query q under the
// fragmentation, index configuration and disk placement: every relevant
// fragment contributes its (uniform) share of fact I/Os to its disk and
// its bitmap reads to the staggered (or co-located) bitmap disks, and the
// response is the bottleneck disk's serialized service time, bounded
// below by the worker-limited critical path.
func EstimateResponse(spec *frag.Spec, cfg frag.IndexConfig, q frag.Query, p Params, dp DiskParams) ResponseEstimate {
	c := Estimate(spec, cfg, q, p)
	pl := dp.Placement
	if pl.Disks < 1 {
		pl.Disks = 1
	}
	d := pl.Disks
	nodes := 1
	np := dp.NodePlacement
	if np.Disks > 1 {
		nodes = np.Disks
	}
	out := ResponseEstimate{
		Cost:    c,
		DiskIOs: make([]float64, nodes*d),
		Nodes:   nodes,
		NodeIOs: make([]float64, nodes),
	}
	if c.Fragments == 0 {
		return out
	}

	// Route each relevant fragment's I/O to its disks. The model assumes
	// (as cost.go does) uniform work per relevant fragment. With more
	// than one node, the fragment first routes to its owning node (the
	// same placement math one level up) and then to a disk within that
	// node: queue indices are node-major, so disks of different nodes
	// never share a queue.
	factPerFrag := float64(c.FactIOs) / float64(c.Fragments)
	bmIOsPerBitmap := 0.0
	if c.BitmapsPerFragment > 0 {
		bmIOsPerBitmap = float64(c.BitmapIOs) / float64(c.Fragments) / float64(c.BitmapsPerFragment)
	}
	spec.ForEachFragment(q, func(id int64, _ []int) bool {
		base := 0
		if nodes > 1 {
			base = np.FactDisk(id) * d
		}
		out.DiskIOs[base+pl.FactDisk(id)] += factPerFrag
		for k := 0; k < c.BitmapsPerFragment; k++ {
			out.DiskIOs[base+pl.BitmapDisk(id, k)] += bmIOsPerBitmap
		}
		return true
	})

	// Degraded maps global queue indices (node*Disks+disk when two-tier).
	for k, f := range dp.Degraded {
		if k >= 0 && k < len(out.DiskIOs) && f > 1 {
			out.DiskIOs[k] *= f
		}
	}

	var used int
	var sum float64
	for i, l := range out.DiskIOs {
		out.NodeIOs[i/d] += l
		if l > 0 {
			used++
			sum += l
		}
		if l > out.BottleneckIOs {
			out.BottleneckIOs = l
			out.BottleneckNode = i / d
		}
	}
	out.DisksUsed = used
	for _, l := range out.NodeIOs {
		if l > 0 {
			out.NodesUsed++
		}
	}
	if used > 0 {
		out.Imbalance = out.BottleneckIOs / (sum / float64(used))
	}

	// The completion bound is the deepest per-node disk queue; the
	// worker bound applies per node (each node's pool only drains its own
	// shard), so it is the slowest node's total over that node's workers.
	out.EffectiveIOs = out.BottleneckIOs
	if dp.Workers > 0 {
		maxNode := 0.0
		for _, l := range out.NodeIOs {
			if l > maxNode {
				maxNode = l
			}
		}
		if lower := maxNode / float64(dp.Workers); lower > out.EffectiveIOs {
			out.EffectiveIOs = lower
		}
	}
	totalIOs := float64(c.TotalIOs())
	totalPages := float64(c.FactPages + c.BitmapPages)
	pagesPerIO := 1.0
	if totalIOs > 0 {
		pagesPerIO = totalPages / totalIOs
	}
	perIO := float64(dp.AccessTime) + pagesPerIO*float64(dp.TransferPerPage)
	out.Response = time.Duration(out.EffectiveIOs * perIO)
	return out
}

// DiskRanked is one disk-configuration candidate of AdviseDisks.
type DiskRanked struct {
	Placement alloc.Placement
	// Response is the weighted mean response over the query mix.
	Response time.Duration
	// Speedup is relative to the same mix on one disk.
	Speedup float64
	// Imbalance is the weighted mean load imbalance.
	Imbalance float64
}

// AdviseDisks extends the Section 4.7 guidelines to the physical layer:
// it models the query mix on every combination of the candidate disk
// counts with the round-robin and gap placement schemes (staggered bitmap
// placement, as Figure 2 recommends), and ranks the configurations by
// modelled response time — ties broken toward fewer disks, then the
// simpler scheme. The paper's prime-disk counter-measure emerges
// naturally: a disk count with a large gcd against the query's fragment
// stride gets a clustered, slow placement and ranks below a coprime one.
func AdviseDisks(spec *frag.Spec, cfg frag.IndexConfig, mix []WeightedQuery, p Params, dp DiskParams, diskCounts []int) []DiskRanked {
	base := weightedResponse(spec, cfg, mix, p, DiskParams{
		Placement:       alloc.Placement{Disks: 1, Scheme: alloc.RoundRobin, Staggered: dp.Placement.Staggered},
		AccessTime:      dp.AccessTime,
		TransferPerPage: dp.TransferPerPage,
		Workers:         dp.Workers,
	})
	var out []DiskRanked
	for _, d := range diskCounts {
		if d < 1 {
			continue
		}
		for _, scheme := range []alloc.Scheme{alloc.RoundRobin, alloc.GapRoundRobin} {
			cand := dp
			cand.Placement = alloc.Placement{Disks: d, Scheme: scheme, Staggered: dp.Placement.Staggered, Cluster: dp.Placement.Cluster}
			resp, imb := weightedResponseImbalance(spec, cfg, mix, p, cand)
			r := DiskRanked{Placement: cand.Placement, Response: resp, Imbalance: imb}
			if resp > 0 {
				r.Speedup = float64(base) / float64(resp)
			}
			out = append(out, r)
		}
	}
	sortDiskRanked(out)
	return out
}

func weightedResponse(spec *frag.Spec, cfg frag.IndexConfig, mix []WeightedQuery, p Params, dp DiskParams) time.Duration {
	resp, _ := weightedResponseImbalance(spec, cfg, mix, p, dp)
	return resp
}

func weightedResponseImbalance(spec *frag.Spec, cfg frag.IndexConfig, mix []WeightedQuery, p Params, dp DiskParams) (time.Duration, float64) {
	var resp, imb, wsum float64
	for _, wq := range mix {
		e := EstimateResponse(spec, cfg, wq.Query, p, dp)
		resp += wq.Weight * float64(e.Response)
		imb += wq.Weight * e.Imbalance
		wsum += wq.Weight
	}
	if wsum > 0 {
		imb /= wsum
	}
	return time.Duration(resp), imb
}

func sortDiskRanked(out []DiskRanked) {
	// Insertion sort: candidate lists are tiny and the order must be
	// deterministic (response, then fewer disks, then simpler scheme).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && diskRankedLess(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
}

func diskRankedLess(a, b DiskRanked) bool {
	if a.Response != b.Response {
		return a.Response < b.Response
	}
	if a.Placement.Disks != b.Placement.Disks {
		return a.Placement.Disks < b.Placement.Disks
	}
	return a.Placement.Scheme < b.Placement.Scheme
}
