package cost

import (
	"math"
	"testing"

	"repro/internal/frag"
	"repro/internal/schema"
)

func storeQuery(s *schema.Star) frag.Query {
	c := s.DimIndex(schema.DimCustomer)
	store := s.Dim(schema.DimCustomer).LevelIndex(schema.LvlStore)
	return frag.Query{Preds: []frag.Pred{{Dim: c, Level: store, Member: 5}}}
}

// TestTable3Fopt reproduces the Fopt column of Table 3: 1STORE under
// {customer::store} processes exactly 1 fragment with no bitmap access and
// ~25 MB of perfectly clustered fact I/O.
func TestTable3Fopt(t *testing.T) {
	s := schema.APB1()
	cfg := frag.APB1Indexes(s)
	fopt := frag.MustParse(s, "customer::store")
	c := Estimate(fopt, cfg, storeQuery(s), DefaultParams())

	if c.Class != frag.IOC1Opt {
		t.Errorf("class = %v, want IOC1-opt", c.Class)
	}
	if c.Fragments != 1 {
		t.Errorf("fragments = %d, want 1", c.Fragments)
	}
	if c.BitmapPages != 0 || c.BitmapIOs != 0 {
		t.Errorf("bitmap I/O = %d pages / %d ops, want none", c.BitmapPages, c.BitmapIOs)
	}
	// Paper: 795 fact I/O "pages", total 25 MB. One fragment holds
	// 1,296,000 rows = 6480 pages = 25.3 MB; the paper's 795 is consistent
	// with prefetch-granule operations (6480/8 = 810 at 200 tuples/page).
	if c.FactPages != 6480 {
		t.Errorf("fact pages = %d, want 6480", c.FactPages)
	}
	if c.FactIOs != 810 {
		t.Errorf("fact I/Os = %d, want 810", c.FactIOs)
	}
	if mb := c.TotalMB(); mb < 24 || mb > 26 {
		t.Errorf("total = %.1f MB, want ~25 MB", mb)
	}
}

// TestTable3Fnosupp reproduces the Fnosupp column of Table 3: 1STORE under
// FMonthGroup touches all 11,520 fragments, reads 12 bitmap fragments each
// (691,200 bitmap pages — exact match with the paper) and several million
// fact pages.
func TestTable3Fnosupp(t *testing.T) {
	s := schema.APB1()
	cfg := frag.APB1Indexes(s)
	fns := frag.MustParse(s, "time::month, product::group")
	c := Estimate(fns, cfg, storeQuery(s), DefaultParams())

	if c.Class != frag.IOC2NoSupp {
		t.Errorf("class = %v, want IOC2-nosupp", c.Class)
	}
	if c.Fragments != 11_520 {
		t.Errorf("fragments = %d, want 11520", c.Fragments)
	}
	if c.BitmapsPerFragment != 12 {
		t.Errorf("bitmaps per fragment = %d, want 12", c.BitmapsPerFragment)
	}
	// Paper: 691,200 bitmap pages (11,520 fragments x 12 bitmaps x 5 pages).
	if c.BitmapPages != 691_200 {
		t.Errorf("bitmap pages = %d, want 691,200", c.BitmapPages)
	}
	// Paper: 5,189,760 fact pages. Our granule-hit model yields ~6.3M
	// (within 25%); the exact [33] formula is unavailable.
	if c.FactPages < 4_000_000 || c.FactPages > 8_000_000 {
		t.Errorf("fact pages = %d, want ~5-6 million", c.FactPages)
	}
	// Paper: total 31,075 MB. Same order of magnitude required.
	if mb := c.TotalMB(); mb < 15_000 || mb > 40_000 {
		t.Errorf("total = %.0f MB, want tens of GB", mb)
	}
}

// TestTable3OrdersOfMagnitude asserts the paper's headline claim: a
// suitable fragmentation improves 1STORE I/O by roughly three orders of
// magnitude.
func TestTable3OrdersOfMagnitude(t *testing.T) {
	s := schema.APB1()
	cfg := frag.APB1Indexes(s)
	q := storeQuery(s)
	opt := Estimate(frag.MustParse(s, "customer::store"), cfg, q, DefaultParams())
	bad := Estimate(frag.MustParse(s, "time::month, product::group"), cfg, q, DefaultParams())
	ratio := float64(bad.TotalBytes) / float64(opt.TotalBytes)
	if ratio < 500 || ratio > 5000 {
		t.Errorf("Fnosupp/Fopt I/O ratio = %.0f, want ~1000x (paper: 31075/25 = 1243)", ratio)
	}
}

// TestFigure6FragmentationShape checks the Section 6.3 shapes analytically.
func TestFigure6FragmentationShape(t *testing.T) {
	s := schema.APB1()
	cfg := frag.APB1Indexes(s)
	p := s.DimIndex(schema.DimProduct)
	tm := s.DimIndex(schema.DimTime)
	code := s.Dim(schema.DimProduct).LevelIndex(schema.LvlCode)
	quarter := s.Dim(schema.DimTime).LevelIndex(schema.LvlQuarter)
	q14 := frag.Query{Preds: []frag.Pred{{Dim: p, Level: code, Member: 3}, {Dim: tm, Level: quarter, Member: 1}}}

	group := frag.MustParse(s, "time::month, product::group")
	class := frag.MustParse(s, "time::month, product::class")
	codeF := frag.MustParse(s, "time::month, product::code")

	cg := Estimate(group, cfg, q14, DefaultParams())
	cc := Estimate(class, cfg, q14, DefaultParams())
	cd := Estimate(codeF, cfg, q14, DefaultParams())

	// 1CODE1QUARTER: 3 fragments under all three fragmentations.
	for _, c := range []QueryCost{cg, cc, cd} {
		if c.Fragments != 3 {
			t.Fatalf("1CODE1QUARTER fragments = %d, want 3", c.Fragments)
		}
	}
	// Fragment halving group->class halves the fact I/O; code is best and
	// needs no bitmaps (IOC1).
	if !(cd.TotalBytes < cc.TotalBytes && cc.TotalBytes < cg.TotalBytes) {
		t.Errorf("1CODE1QUARTER bytes: code %d < class %d < group %d violated",
			cd.TotalBytes, cc.TotalBytes, cg.TotalBytes)
	}
	if cd.Class != frag.IOC2 && cd.Class != frag.IOC1 {
		t.Errorf("code fragmentation class = %v", cd.Class)
	}
	if cd.BitmapsPerFragment != 0 {
		t.Errorf("FMonthCode should need no bitmaps for 1CODE1QUARTER, got %d", cd.BitmapsPerFragment)
	}

	// 1STORE inverts: FMonthCode reads >4 million bitmap pages (Section 6.3).
	qs := storeQuery(s)
	sd := Estimate(codeF, cfg, qs, DefaultParams())
	if sd.BitmapPages < 4_000_000 {
		t.Errorf("1STORE under FMonthCode bitmap pages = %d, want >4M", sd.BitmapPages)
	}
	sg := Estimate(group, cfg, qs, DefaultParams())
	if sd.TotalBytes <= sg.TotalBytes {
		t.Errorf("1STORE: FMonthCode (%d B) should be worse than FMonthGroup (%d B)",
			sd.TotalBytes, sg.TotalBytes)
	}
}

func TestIOC1SubsetScaling(t *testing.T) {
	// Q1 with a missing fragmentation dimension scales fragments by the
	// missing attribute's cardinality, and I/O likewise.
	s := schema.APB1()
	cfg := frag.APB1Indexes(s)
	spec := frag.MustParse(s, "time::month, product::group")
	p := s.DimIndex(schema.DimProduct)
	tm := s.DimIndex(schema.DimTime)
	group := s.Dim(schema.DimProduct).LevelIndex(schema.LvlGroup)
	month := s.Dim(schema.DimTime).LevelIndex(schema.LvlMonth)

	both := Estimate(spec, cfg, frag.Query{Preds: []frag.Pred{{Dim: tm, Level: month, Member: 0}, {Dim: p, Level: group, Member: 0}}}, DefaultParams())
	groupOnly := Estimate(spec, cfg, frag.Query{Preds: []frag.Pred{{Dim: p, Level: group, Member: 0}}}, DefaultParams())
	if both.Fragments != 1 || groupOnly.Fragments != 24 {
		t.Fatalf("fragments = %d / %d, want 1 / 24", both.Fragments, groupOnly.Fragments)
	}
	if groupOnly.FactPages != 24*both.FactPages {
		t.Errorf("fact pages = %d, want 24x%d", groupOnly.FactPages, both.FactPages)
	}
}

func TestEstimateHitRows(t *testing.T) {
	s := schema.APB1()
	cfg := frag.APB1Indexes(s)
	spec := frag.MustParse(s, "time::month, product::group")
	c := Estimate(spec, cfg, storeQuery(s), DefaultParams())
	if math.Abs(c.HitRows-1_296_000) > 1 {
		t.Errorf("hit rows = %g, want 1,296,000", c.HitRows)
	}
}

func TestBitmapFragPagesStored(t *testing.T) {
	s := schema.APB1()
	cases := []struct {
		text string
		want int64
	}{
		{"time::month, product::group", 5}, // 4.9 -> 5 (Table 6)
		{"time::month, product::class", 3}, // 2.5 -> 3
		{"time::month, product::code", 1},  // 0.16 -> 1
	}
	for _, tc := range cases {
		spec := frag.MustParse(s, tc.text)
		if got := BitmapFragPagesStored(spec); got != tc.want {
			t.Errorf("%s: stored bitmap fragment = %d pages, want %d", tc.text, got, tc.want)
		}
	}
}

func TestAdviseRanksSupportiveFragmentationFirst(t *testing.T) {
	s := schema.APB1()
	cfg := frag.APB1Indexes(s)
	// Workload dominated by 1STORE: the advisor must put customer::store
	// fragmentations at the top.
	mix := []WeightedQuery{{Name: "1STORE", Query: storeQuery(s), Weight: 1}}
	th := frag.Thresholds{MinBitmapFragPages: 1, MaxFragments: 60_000}
	ranked := Advise(s, cfg, mix, th, DefaultParams())
	if len(ranked) == 0 {
		t.Fatal("no candidates")
	}
	best := ranked[0]
	cdim := s.DimIndex(schema.DimCustomer)
	if best.Spec.AttrOfDim(cdim) == -1 {
		t.Errorf("best fragmentation %s does not include the customer dimension", best.Spec)
	}
	// Every candidate obeys the thresholds.
	for _, r := range ranked {
		if r.BitmapFragPages < 1 {
			t.Errorf("%s admitted with bitmap fragment %.2f pages", r.Spec, r.BitmapFragPages)
		}
		if r.Fragments > 60_000 {
			t.Errorf("%s admitted with %d fragments", r.Spec, r.Fragments)
		}
	}
	// Ranking is monotone in Work.
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Work < ranked[i-1].Work {
			t.Fatalf("ranking not sorted at %d", i)
		}
	}
}

func TestAdviseMixedWorkload(t *testing.T) {
	s := schema.APB1()
	cfg := frag.APB1Indexes(s)
	p := s.DimIndex(schema.DimProduct)
	tm := s.DimIndex(schema.DimTime)
	group := s.Dim(schema.DimProduct).LevelIndex(schema.LvlGroup)
	month := s.Dim(schema.DimTime).LevelIndex(schema.LvlMonth)
	mix := []WeightedQuery{
		{Name: "1MONTH1GROUP", Query: frag.Query{Preds: []frag.Pred{{Dim: tm, Level: month, Member: 0}, {Dim: p, Level: group, Member: 0}}}, Weight: 0.5},
		{Name: "1STORE", Query: storeQuery(s), Weight: 0.5},
	}
	th := frag.Thresholds{MinBitmapFragPages: 1, MaxFragments: 60_000, MinFragments: 100}
	ranked := Advise(s, cfg, mix, th, DefaultParams())
	if len(ranked) == 0 {
		t.Fatal("no candidates")
	}
	if got := len(ranked[0].PerQuery); got != 2 {
		t.Fatalf("PerQuery entries = %d, want 2", got)
	}
	// TotalWork agrees with the advisor's Work field.
	w := TotalWork(ranked[0].Spec, cfg, mix, DefaultParams())
	if math.Abs(w-ranked[0].Work) > 1 {
		t.Errorf("TotalWork = %g, Work = %g", w, ranked[0].Work)
	}
}

// TestEstimateGroups covers the grouped-query estimate: hierarchy
// correlation within one dimension (grouping by quarter AND month yields
// only Card(month) non-empty groups), predicate pinning, the hit-rows
// cap, and the aligned-path flag.
func TestEstimateGroups(t *testing.T) {
	s := schema.Tiny()
	spec := frag.MustParse(s, "time::month, product::group")
	cfg := frag.APB1Indexes(s)
	p := DefaultParams()
	td := s.DimIndex(schema.DimTime)
	pd := s.DimIndex(schema.DimProduct)
	cd := s.DimIndex(schema.DimCustomer)
	month := s.Dims[td].LevelIndex(schema.LvlMonth)
	quarter := s.Dims[td].LevelIndex(schema.LvlQuarter)
	code := s.Dims[pd].LevelIndex(schema.LvlCode)
	store := s.Dims[cd].LevelIndex(schema.LvlStore)

	q := frag.Query{GroupBy: []frag.LevelRef{{Dim: td, Level: quarter}, {Dim: td, Level: month}}}
	if c := Estimate(spec, cfg, q, p); c.Groups != 4 || !c.GroupAligned {
		t.Fatalf("quarter+month: Groups=%d aligned=%v, want 4 aligned", c.Groups, c.GroupAligned)
	}
	// A finer predicate pins one group member of a coarser GroupBy level.
	q = frag.Query{
		Preds:   []frag.Pred{{Dim: td, Level: month, Member: 1}},
		GroupBy: []frag.LevelRef{{Dim: td, Level: quarter}},
	}
	if c := Estimate(spec, cfg, q, p); c.Groups != 1 || !c.GroupAligned {
		t.Fatalf("month pred, quarter group: Groups=%d aligned=%v, want 1 aligned", c.Groups, c.GroupAligned)
	}
	// A coarser predicate leaves its fan-out many descendants; a finer
	// GroupBy level is not aligned.
	q = frag.Query{
		Preds:   []frag.Pred{{Dim: pd, Level: 0, Member: 1}},
		GroupBy: []frag.LevelRef{{Dim: pd, Level: code}},
	}
	if c := Estimate(spec, cfg, q, p); c.Groups != 4 || c.GroupAligned {
		t.Fatalf("group pred, code group: Groups=%d aligned=%v, want 4 fallback", c.Groups, c.GroupAligned)
	}
	// Non-fragmentation dimension: full domain, not aligned.
	q = frag.Query{GroupBy: []frag.LevelRef{{Dim: cd, Level: store}}}
	if c := Estimate(spec, cfg, q, p); c.Groups != 6 || c.GroupAligned {
		t.Fatalf("store group: Groups=%d aligned=%v, want 6 fallback", c.Groups, c.GroupAligned)
	}
	// Ungrouped queries report one group.
	q = frag.Query{Preds: []frag.Pred{{Dim: td, Level: month, Member: 0}}}
	if c := Estimate(spec, cfg, q, p); c.Groups != 1 {
		t.Fatalf("ungrouped: Groups=%d, want 1", c.Groups)
	}
}
