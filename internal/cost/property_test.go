package cost

import (
	"math/rand"
	"testing"

	"repro/internal/frag"
	"repro/internal/schema"
)

// randomSpecAndQuery draws a random fragmentation and a random query on
// the APB-1 schema.
func randomSpecAndQuery(rng *rand.Rand, s *schema.Star, specs []*frag.Spec) (*frag.Spec, frag.Query) {
	spec := specs[rng.Intn(len(specs))]
	var q frag.Query
	for di := range s.Dims {
		if rng.Intn(2) == 0 {
			continue
		}
		li := rng.Intn(s.Dims[di].Depth())
		q.Preds = append(q.Preds, frag.Pred{Dim: di, Level: li, Member: rng.Intn(s.Dims[di].Levels[li].Card)})
	}
	if len(q.Preds) == 0 {
		di := rng.Intn(len(s.Dims))
		li := rng.Intn(s.Dims[di].Depth())
		q = frag.Query{Preds: []frag.Pred{{Dim: di, Level: li, Member: rng.Intn(s.Dims[di].Levels[li].Card)}}}
	}
	return spec, q
}

// TestCostModelInvariants checks structural invariants of the estimator
// over random (fragmentation, query) pairs:
//
//  1. IOC1 queries never pay bitmap I/O; IOC2 queries with bitmaps do.
//  2. Fact pages read never exceed the fragments' total pages.
//  3. Fact I/O operations never exceed fact pages (a granule reads >= 1).
//  4. The relevant-fragment count divides the fragmentation's total count
//     as the product of per-attribute range widths.
//  5. TotalBytes is consistent with the page counts.
func TestCostModelInvariants(t *testing.T) {
	s := schema.APB1()
	cfg := frag.APB1Indexes(s)
	specs := frag.Enumerate(s)
	params := DefaultParams()
	rng := rand.New(rand.NewSource(12))

	for iter := 0; iter < 3000; iter++ {
		spec, q := randomSpecAndQuery(rng, s, specs)
		c := Estimate(spec, cfg, q, params)

		if c.BitmapsPerFragment == 0 && (c.BitmapPages != 0 || c.BitmapIOs != 0) {
			t.Fatalf("iter %d: no bitmaps needed but bitmap I/O charged (%s, %v)", iter, spec, q)
		}
		if c.BitmapsPerFragment > 0 && c.BitmapPages == 0 {
			t.Fatalf("iter %d: bitmaps needed but no bitmap pages (%s, %v)", iter, spec, q)
		}
		if (c.Class == frag.IOC1 || c.Class == frag.IOC1Opt) && c.BitmapsPerFragment != 0 {
			t.Fatalf("iter %d: IOC1 with bitmap access (%s, %v)", iter, spec, q)
		}

		fragPages := int64(spec.FragmentPages() + 1)
		if c.FactPages > c.Fragments*fragPages {
			t.Fatalf("iter %d: fact pages %d exceed fragment capacity %d (%s, %v)",
				iter, c.FactPages, c.Fragments*fragPages, spec, q)
		}
		if c.FactIOs > c.FactPages {
			t.Fatalf("iter %d: more fact I/Os (%d) than pages (%d)", iter, c.FactIOs, c.FactPages)
		}
		if c.Fragments < 1 || c.Fragments > spec.NumFragments() {
			t.Fatalf("iter %d: fragments %d outside [1, %d]", iter, c.Fragments, spec.NumFragments())
		}
		if want := (c.FactPages + c.BitmapPages) * int64(s.PageSize); c.TotalBytes != want {
			t.Fatalf("iter %d: TotalBytes %d != %d", iter, c.TotalBytes, want)
		}
	}
}

// TestCostMonotoneInConfinement: adding a predicate on a fragmentation
// dimension never increases the number of relevant fragments.
func TestCostMonotoneInConfinement(t *testing.T) {
	s := schema.APB1()
	specs := frag.Enumerate(s)
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 2000; iter++ {
		spec := specs[rng.Intn(len(specs))]
		_, base := randomSpecAndQuery(rng, s, []*frag.Spec{spec})
		// Pick a dimension not in the query.
		free := -1
		for di := range s.Dims {
			if _, ok := base.PredOnDim(di); !ok {
				free = di
				break
			}
		}
		if free == -1 {
			continue
		}
		li := rng.Intn(s.Dims[free].Depth())
		extended := frag.Query{Preds: append(append([]frag.Pred{}, base.Preds...), frag.Pred{
			Dim: free, Level: li, Member: rng.Intn(s.Dims[free].Levels[li].Card),
		})}
		if spec.RelevantCount(extended) > spec.RelevantCount(base) {
			t.Fatalf("iter %d: adding a predicate increased fragments (%s: %v -> %v)",
				iter, spec, base, extended)
		}
	}
}

// TestRelevantCountFormula: for exact-match queries on all fragmentation
// attributes, exactly one fragment is relevant; removing one attribute
// multiplies by its cardinality (Section 4.2, Q1).
func TestRelevantCountFormula(t *testing.T) {
	s := schema.APB1()
	rng := rand.New(rand.NewSource(5))
	for _, spec := range frag.Enumerate(s) {
		attrs := spec.Attrs()
		var full frag.Query
		for _, a := range attrs {
			full.Preds = append(full.Preds, frag.Pred{Dim: a.Dim, Level: a.Level,
				Member: rng.Intn(s.Dims[a.Dim].Levels[a.Level].Card)})
		}
		if got := spec.RelevantCount(full); got != 1 {
			t.Fatalf("%s: full Q1 query touches %d fragments", spec, got)
		}
		if len(full.Preds) > 1 {
			dropped := frag.Query{Preds: full.Preds[1:]}
			card := int64(s.Dims[attrs[0].Dim].Levels[attrs[0].Level].Card)
			if got := spec.RelevantCount(dropped); got != card {
				t.Fatalf("%s: dropping one attribute gives %d fragments, want %d", spec, got, card)
			}
		}
	}
}

// TestSurvivingBitmapsBounds: surviving bitmaps never exceed the maximum
// and leaf-level fragmentation on a dimension removes its whole index.
func TestSurvivingBitmapsBounds(t *testing.T) {
	s := schema.APB1()
	cfg := frag.APB1Indexes(s)
	max := frag.MaxBitmaps(s, cfg)
	for _, spec := range frag.Enumerate(s) {
		sb := spec.SurvivingBitmaps(cfg)
		if sb < 0 || sb > max {
			t.Fatalf("%s: surviving %d outside [0, %d]", spec, sb, max)
		}
		// More fragmentation dimensions never increase surviving bitmaps
		// relative to any of its single-attribute projections.
		for _, a := range spec.Attrs() {
			sub := frag.MustNew(s, []frag.Attr{a})
			if sb > sub.SurvivingBitmaps(cfg) {
				t.Fatalf("%s survives %d > projection %s's %d", spec, sb, sub, sub.SurvivingBitmaps(cfg))
			}
		}
	}
}
