package alloc

import (
	"testing"

	"repro/internal/frag"
	"repro/internal/schema"
)

func TestSection46GcdClustering(t *testing.T) {
	// Section 4.6: FMonthGroup allocated month-major on 100 disks; 1CODE
	// accesses every 480th fragment; gcd(480, 100) = 20 → only 5 disks,
	// "reducing possible parallelism by a factor of 4.8".
	if got := Gcd(480, 100); got != 20 {
		t.Fatalf("gcd = %d", got)
	}
	if got := StrideDisks(480, 100); got != 5 {
		t.Fatalf("StrideDisks(480, 100) = %d, want 5", got)
	}
	// "If we allocate the other way round, ... 1MONTH queries are
	// restricted to 25 disks (gcd = 4)": stride 24 over 100 disks.
	if got := StrideDisks(24, 100); got != 25 {
		t.Fatalf("StrideDisks(24, 100) = %d, want 25", got)
	}

	s := schema.APB1()
	spec := frag.MustParse(s, "time::month, product::group")
	p := s.DimIndex(schema.DimProduct)
	code := s.Dim(schema.DimProduct).LevelIndex(schema.LvlCode)
	q := frag.Query{Preds: []frag.Pred{{Dim: p, Level: code, Member: 77}}}

	rr := Placement{Disks: 100, Scheme: RoundRobin, Staggered: true}
	if got := DisksUsed(spec, q, rr); got != 5 {
		t.Errorf("1CODE on 100 round-robin disks uses %d disks, want 5", got)
	}

	// Counter-measure 1: a prime number of disks restores parallelism.
	prime := Placement{Disks: 101, Scheme: RoundRobin}
	if got := DisksUsed(spec, q, prime); got != 24 {
		t.Errorf("1CODE on 101 disks uses %d disks, want 24 (one per fragment)", got)
	}

	// Counter-measure 2: the gap scheme on 100 disks.
	gap := Placement{Disks: 100, Scheme: GapRoundRobin}
	if got := DisksUsed(spec, q, gap); got <= 5 {
		t.Errorf("1CODE with gap scheme uses %d disks, want > 5", got)
	}
}

func TestFullDeclusteringForUnsupportedQuery(t *testing.T) {
	// 1STORE touches all fragments → all disks, under any scheme.
	s := schema.APB1()
	spec := frag.MustParse(s, "time::month, product::group")
	c := s.DimIndex(schema.DimCustomer)
	store := s.Dim(schema.DimCustomer).LevelIndex(schema.LvlStore)
	q := frag.Query{Preds: []frag.Pred{{Dim: c, Level: store, Member: 0}}}
	for _, sch := range []Scheme{RoundRobin, GapRoundRobin} {
		p := Placement{Disks: 100, Scheme: sch}
		if got := DisksUsed(spec, q, p); got != 100 {
			t.Errorf("%v: disks used = %d, want 100", sch, got)
		}
	}
}

func TestStaggeredBitmapPlacement(t *testing.T) {
	p := Placement{Disks: 100, Scheme: RoundRobin, Staggered: true}
	// Fact fragment 7 on disk 7; its 12 bitmap fragments on disks 8..19.
	if got := p.FactDisk(7); got != 7 {
		t.Fatalf("FactDisk(7) = %d", got)
	}
	for k := 0; k < 12; k++ {
		if got, want := p.BitmapDisk(7, k), 8+k; got != want {
			t.Errorf("BitmapDisk(7, %d) = %d, want %d", k, got, want)
		}
	}
	// Wrap-around.
	if got := p.BitmapDisk(99, 3); got != 3 {
		t.Errorf("BitmapDisk(99, 3) = %d, want 3", got)
	}
	// Distinct disks within one subquery → parallel bitmap I/O possible.
	seen := map[int]bool{}
	for k := 0; k < 12; k++ {
		d := p.BitmapDisk(42, k)
		if seen[d] {
			t.Fatalf("bitmap fragments share disk %d", d)
		}
		seen[d] = true
	}
}

func TestCoLocatedBitmapPlacement(t *testing.T) {
	p := Placement{Disks: 100, Scheme: RoundRobin, Staggered: false}
	for k := 0; k < 12; k++ {
		if got := p.BitmapDisk(42, k); got != 42 {
			t.Errorf("co-located BitmapDisk(42, %d) = %d, want 42", k, got)
		}
	}
}

func TestGapSchemeCoversAllDisks(t *testing.T) {
	// The gap scheme must still spread consecutive fragments over all disks.
	p := Placement{Disks: 10, Scheme: GapRoundRobin}
	seen := map[int]bool{}
	for id := int64(0); id < 10; id++ {
		seen[p.FactDisk(id)] = true
	}
	if len(seen) != 10 {
		t.Fatalf("first round covers %d disks, want 10", len(seen))
	}
}

func TestPrimeHelpers(t *testing.T) {
	primes := []int{2, 3, 5, 7, 97, 101}
	for _, p := range primes {
		if !IsPrime(p) {
			t.Errorf("IsPrime(%d) = false", p)
		}
	}
	for _, np := range []int{0, 1, 4, 9, 100, 14400} {
		if IsPrime(np) {
			t.Errorf("IsPrime(%d) = true", np)
		}
	}
	if got := NextPrime(100); got != 101 {
		t.Errorf("NextPrime(100) = %d", got)
	}
	if got := NextPrime(-5); got != 2 {
		t.Errorf("NextPrime(-5) = %d", got)
	}
	if got := NextPrime(7); got != 7 {
		t.Errorf("NextPrime(7) = %d", got)
	}
}

func TestSchemeString(t *testing.T) {
	if RoundRobin.String() != "round-robin" || GapRoundRobin.String() != "gap-round-robin" {
		t.Error("Scheme.String wrong")
	}
	if Scheme(9).String() == "" {
		t.Error("unknown scheme string empty")
	}
}

func TestGcdProperties(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 5, 5}, {5, 0, 5}, {1, 1, 1}, {12, 18, 6}, {17, 13, 1},
	}
	for _, c := range cases {
		if got := Gcd(c.a, c.b); got != c.want {
			t.Errorf("Gcd(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// TestStrideDisksCoprimeProperty is the counter-measure property behind
// the paper's prime-disk recommendation: accessing every stride-th
// fragment under round robin reaches all d disks exactly when stride and
// d are coprime — in particular for any stride against a prime d that
// does not divide it.
func TestStrideDisksCoprimeProperty(t *testing.T) {
	for d := int64(1); d <= 128; d++ {
		for stride := int64(1); stride <= 256; stride++ {
			got := StrideDisks(stride, d)
			if Gcd(stride, d) == 1 && got != d {
				t.Fatalf("coprime stride %d over %d disks reaches %d disks", stride, d, got)
			}
			if got != d/Gcd(stride, d) {
				t.Fatalf("StrideDisks(%d,%d) = %d", stride, d, got)
			}
		}
	}
	// NextPrime(d) restores full declustering for every stride it does
	// not divide (a prime is coprime with everything else).
	for _, d := range []int{4, 8, 16, 100} {
		p := int64(NextPrime(d))
		for stride := int64(1); stride <= 512; stride++ {
			if stride%p == 0 {
				continue
			}
			if got := StrideDisks(stride, p); got != p {
				t.Fatalf("stride %d over prime %d disks reaches %d", stride, p, got)
			}
		}
	}
}

// bruteDisksUsed recomputes DisksUsed by materialising the full relevant
// fragment list and counting distinct disks without any early exit.
func bruteDisksUsed(spec *frag.Spec, q frag.Query, p Placement) int {
	used := map[int]bool{}
	spec.ForEachFragment(q, func(id int64, _ []int) bool {
		used[p.FactDisk(id)] = true
		return true
	})
	return len(used)
}

// TestDisksUsedMatchesBruteForce cross-checks DisksUsed (which stops
// early once every disk is hit) against the brute-force count over the
// paper's query classes, both placement schemes, clustering granules and
// a range of disk counts including primes.
func TestDisksUsedMatchesBruteForce(t *testing.T) {
	s := schema.APB1()
	spec := frag.MustParse(s, "time::month, product::group")
	pd := s.DimIndex(schema.DimProduct)
	td := s.DimIndex(schema.DimTime)
	cd := s.DimIndex(schema.DimCustomer)
	queries := map[string]frag.Query{
		"1CODE":    {Preds: []frag.Pred{{Dim: pd, Level: s.Dims[pd].LevelIndex(schema.LvlCode), Member: 77}}},
		"1MONTH":   {Preds: []frag.Pred{{Dim: td, Level: s.Dims[td].LevelIndex(schema.LvlMonth), Member: 3}}},
		"1GROUP":   {Preds: []frag.Pred{{Dim: pd, Level: s.Dims[pd].LevelIndex(schema.LvlGroup), Member: 2}}},
		"1STORE":   {Preds: []frag.Pred{{Dim: cd, Level: s.Dims[cd].LevelIndex(schema.LvlStore), Member: 9}}},
		"1QUARTER": {Preds: []frag.Pred{{Dim: td, Level: s.Dims[td].LevelIndex(schema.LvlQuarter), Member: 1}}},
	}
	for name, q := range queries {
		for _, disks := range []int{1, 2, 3, 5, 7, 16, 97, 100, 101} {
			for _, scheme := range []Scheme{RoundRobin, GapRoundRobin} {
				for _, cluster := range []int{0, 1, 4} {
					p := Placement{Disks: disks, Scheme: scheme, Cluster: cluster}
					got := DisksUsed(spec, q, p)
					want := bruteDisksUsed(spec, q, p)
					if got != want {
						t.Errorf("%s d=%d %v cluster=%d: DisksUsed = %d, brute force = %d", name, disks, scheme, cluster, got, want)
					}
					if got > disks {
						t.Errorf("%s d=%d %v: DisksUsed %d exceeds disk count", name, disks, scheme, got)
					}
				}
			}
		}
	}
}

// TestRoundRobinCoversCoprimeFragmentCounts is the placement-level form
// of the coprime property: n consecutive fragments land on min(n, d)
// distinct disks, and a stride-s subset on d/gcd(s,d) disks, for both
// schemes on consecutive fragments.
func TestRoundRobinCoversCoprimeFragmentCounts(t *testing.T) {
	for _, d := range []int{2, 3, 5, 8, 13, 16, 101} {
		for _, scheme := range []Scheme{RoundRobin, GapRoundRobin} {
			p := Placement{Disks: d, Scheme: scheme}
			for _, n := range []int{1, d - 1, d, d + 1, 3 * d} {
				if n < 1 {
					continue
				}
				seen := map[int]bool{}
				for id := int64(0); id < int64(n); id++ {
					disk := p.FactDisk(id)
					if disk < 0 || disk >= d {
						t.Fatalf("d=%d %v: FactDisk(%d) = %d out of range", d, scheme, id, disk)
					}
					seen[disk] = true
				}
				want := n
				if want > d {
					want = d
				}
				if len(seen) != want {
					t.Errorf("d=%d %v: %d consecutive fragments cover %d disks, want %d", d, scheme, n, len(seen), want)
				}
			}
		}
	}
	// Strided access under plain round robin: exactly d/gcd(s,d) disks.
	for _, d := range []int{6, 10, 12, 100} {
		p := Placement{Disks: d, Scheme: RoundRobin}
		for _, stride := range []int64{2, 3, 4, 5, 24, 480} {
			seen := map[int]bool{}
			for k := int64(0); k < int64(4*d); k++ {
				seen[p.FactDisk(k*stride)] = true
			}
			if want := int(StrideDisks(stride, int64(d))); len(seen) != want {
				t.Errorf("d=%d stride=%d: %d disks, want %d", d, stride, len(seen), want)
			}
		}
	}
}

func TestPlacementValidate(t *testing.T) {
	if err := (Placement{Disks: 4}).Validate(); err != nil {
		t.Errorf("valid placement rejected: %v", err)
	}
	if err := (Placement{Disks: 0}).Validate(); err == nil {
		t.Error("zero-disk placement accepted")
	}
	if err := (Placement{Disks: 2, Cluster: -1}).Validate(); err == nil {
		t.Error("negative cluster accepted")
	}
}
