package alloc

import (
	"testing"

	"repro/internal/frag"
	"repro/internal/schema"
)

func TestSection46GcdClustering(t *testing.T) {
	// Section 4.6: FMonthGroup allocated month-major on 100 disks; 1CODE
	// accesses every 480th fragment; gcd(480, 100) = 20 → only 5 disks,
	// "reducing possible parallelism by a factor of 4.8".
	if got := Gcd(480, 100); got != 20 {
		t.Fatalf("gcd = %d", got)
	}
	if got := StrideDisks(480, 100); got != 5 {
		t.Fatalf("StrideDisks(480, 100) = %d, want 5", got)
	}
	// "If we allocate the other way round, ... 1MONTH queries are
	// restricted to 25 disks (gcd = 4)": stride 24 over 100 disks.
	if got := StrideDisks(24, 100); got != 25 {
		t.Fatalf("StrideDisks(24, 100) = %d, want 25", got)
	}

	s := schema.APB1()
	spec := frag.MustParse(s, "time::month, product::group")
	p := s.DimIndex(schema.DimProduct)
	code := s.Dim(schema.DimProduct).LevelIndex(schema.LvlCode)
	q := frag.Query{{Dim: p, Level: code, Member: 77}}

	rr := Placement{Disks: 100, Scheme: RoundRobin, Staggered: true}
	if got := DisksUsed(spec, q, rr); got != 5 {
		t.Errorf("1CODE on 100 round-robin disks uses %d disks, want 5", got)
	}

	// Counter-measure 1: a prime number of disks restores parallelism.
	prime := Placement{Disks: 101, Scheme: RoundRobin}
	if got := DisksUsed(spec, q, prime); got != 24 {
		t.Errorf("1CODE on 101 disks uses %d disks, want 24 (one per fragment)", got)
	}

	// Counter-measure 2: the gap scheme on 100 disks.
	gap := Placement{Disks: 100, Scheme: GapRoundRobin}
	if got := DisksUsed(spec, q, gap); got <= 5 {
		t.Errorf("1CODE with gap scheme uses %d disks, want > 5", got)
	}
}

func TestFullDeclusteringForUnsupportedQuery(t *testing.T) {
	// 1STORE touches all fragments → all disks, under any scheme.
	s := schema.APB1()
	spec := frag.MustParse(s, "time::month, product::group")
	c := s.DimIndex(schema.DimCustomer)
	store := s.Dim(schema.DimCustomer).LevelIndex(schema.LvlStore)
	q := frag.Query{{Dim: c, Level: store, Member: 0}}
	for _, sch := range []Scheme{RoundRobin, GapRoundRobin} {
		p := Placement{Disks: 100, Scheme: sch}
		if got := DisksUsed(spec, q, p); got != 100 {
			t.Errorf("%v: disks used = %d, want 100", sch, got)
		}
	}
}

func TestStaggeredBitmapPlacement(t *testing.T) {
	p := Placement{Disks: 100, Scheme: RoundRobin, Staggered: true}
	// Fact fragment 7 on disk 7; its 12 bitmap fragments on disks 8..19.
	if got := p.FactDisk(7); got != 7 {
		t.Fatalf("FactDisk(7) = %d", got)
	}
	for k := 0; k < 12; k++ {
		if got, want := p.BitmapDisk(7, k), 8+k; got != want {
			t.Errorf("BitmapDisk(7, %d) = %d, want %d", k, got, want)
		}
	}
	// Wrap-around.
	if got := p.BitmapDisk(99, 3); got != 3 {
		t.Errorf("BitmapDisk(99, 3) = %d, want 3", got)
	}
	// Distinct disks within one subquery → parallel bitmap I/O possible.
	seen := map[int]bool{}
	for k := 0; k < 12; k++ {
		d := p.BitmapDisk(42, k)
		if seen[d] {
			t.Fatalf("bitmap fragments share disk %d", d)
		}
		seen[d] = true
	}
}

func TestCoLocatedBitmapPlacement(t *testing.T) {
	p := Placement{Disks: 100, Scheme: RoundRobin, Staggered: false}
	for k := 0; k < 12; k++ {
		if got := p.BitmapDisk(42, k); got != 42 {
			t.Errorf("co-located BitmapDisk(42, %d) = %d, want 42", k, got)
		}
	}
}

func TestGapSchemeCoversAllDisks(t *testing.T) {
	// The gap scheme must still spread consecutive fragments over all disks.
	p := Placement{Disks: 10, Scheme: GapRoundRobin}
	seen := map[int]bool{}
	for id := int64(0); id < 10; id++ {
		seen[p.FactDisk(id)] = true
	}
	if len(seen) != 10 {
		t.Fatalf("first round covers %d disks, want 10", len(seen))
	}
}

func TestPrimeHelpers(t *testing.T) {
	primes := []int{2, 3, 5, 7, 97, 101}
	for _, p := range primes {
		if !IsPrime(p) {
			t.Errorf("IsPrime(%d) = false", p)
		}
	}
	for _, np := range []int{0, 1, 4, 9, 100, 14400} {
		if IsPrime(np) {
			t.Errorf("IsPrime(%d) = true", np)
		}
	}
	if got := NextPrime(100); got != 101 {
		t.Errorf("NextPrime(100) = %d", got)
	}
	if got := NextPrime(-5); got != 2 {
		t.Errorf("NextPrime(-5) = %d", got)
	}
	if got := NextPrime(7); got != 7 {
		t.Errorf("NextPrime(7) = %d", got)
	}
}

func TestSchemeString(t *testing.T) {
	if RoundRobin.String() != "round-robin" || GapRoundRobin.String() != "gap-round-robin" {
		t.Error("Scheme.String wrong")
	}
	if Scheme(9).String() == "" {
		t.Error("unknown scheme string empty")
	}
}

func TestGcdProperties(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 5, 5}, {5, 0, 5}, {1, 1, 1}, {12, 18, 6}, {17, 13, 1},
	}
	for _, c := range cases {
		if got := Gcd(c.a, c.b); got != c.want {
			t.Errorf("Gcd(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
