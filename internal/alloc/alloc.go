// Package alloc implements the physical disk allocation of MDHF fragments
// (Section 4.6): round-robin placement of fact fragments in allocation
// order, the "staggered" placement of bitmap fragments onto consecutive
// disks (Figure 2), gcd-clustering analysis, and the prime / gap
// counter-measures the paper proposes.
package alloc

import (
	"fmt"

	"repro/internal/frag"
)

// Scheme selects the fact fragment placement function.
type Scheme int

const (
	// RoundRobin places fragment i on disk i mod d (Figure 2).
	RoundRobin Scheme = iota
	// GapRoundRobin shifts the start disk by one after every full round:
	// fragment i goes to disk (i + i/d) mod d. This breaks the gcd
	// clustering of plain round robin (Section 4.6's "modified allocation
	// scheme introducing certain gaps").
	GapRoundRobin
)

func (s Scheme) String() string {
	switch s {
	case RoundRobin:
		return "round-robin"
	case GapRoundRobin:
		return "gap-round-robin"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// Placement maps fact and bitmap fragments to disks.
type Placement struct {
	// Disks is the number of disks d.
	Disks int
	// Scheme is the fact fragment placement scheme.
	Scheme Scheme
	// Staggered controls bitmap fragment placement: if true, the k bitmap
	// fragments belonging to fact fragment i are placed on the consecutive
	// disks following i's disk (enabling parallel bitmap I/O within a
	// subquery); if false, they are co-located with the fact fragment.
	Staggered bool
	// Cluster groups this many consecutive fragments into one allocation
	// granule sharing a disk (Section 6.3's clustering; 0/1 = none).
	Cluster int
}

// Validate checks the placement is well-formed: at least one disk and a
// non-negative clustering granule.
func (p Placement) Validate() error {
	if p.Disks < 1 {
		return fmt.Errorf("alloc: placement needs >= 1 disk (got %d)", p.Disks)
	}
	if p.Cluster < 0 {
		return fmt.Errorf("alloc: negative clustering granule %d", p.Cluster)
	}
	return nil
}

// FactDisk returns the disk of fact fragment id.
func (p Placement) FactDisk(id int64) int {
	if p.Cluster > 1 {
		id /= int64(p.Cluster)
	}
	d := int64(p.Disks)
	switch p.Scheme {
	case GapRoundRobin:
		return int((id + id/d) % d)
	default:
		return int(id % d)
	}
}

// BitmapDisk returns the disk of the bitmap-th bitmap fragment associated
// with fact fragment id (Figure 2: disks j+1, j+2, ..., j+k modulo d).
func (p Placement) BitmapDisk(id int64, bitmap int) int {
	if !p.Staggered {
		return p.FactDisk(id)
	}
	return (p.FactDisk(id) + 1 + bitmap) % p.Disks
}

// DisksUsed returns the number of distinct disks holding the fact fragments
// relevant to query q under fragmentation spec — the effective I/O
// parallelism of the fact table scan (Section 4.6).
func DisksUsed(spec *frag.Spec, q frag.Query, p Placement) int {
	used := make(map[int]struct{}, p.Disks)
	spec.ForEachFragment(q, func(id int64, _ []int) bool {
		used[p.FactDisk(id)] = struct{}{}
		return len(used) < p.Disks // stop early once all disks are hit
	})
	return len(used)
}

// Gcd returns the greatest common divisor of a and b.
func Gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a < 0 {
		return -a
	}
	return a
}

// StrideDisks returns the number of distinct disks reached by accessing
// every stride-th fragment under plain round robin over d disks:
// d / gcd(stride, d). This is the analytical form of the Section 4.6
// example (stride 480, d = 100, gcd 20 → only 5 disks).
func StrideDisks(stride, d int64) int64 {
	return d / Gcd(stride, d)
}

// IsPrime reports whether n is prime; the paper recommends a prime number
// of disks to avoid gcd clustering.
func IsPrime(n int) bool {
	if n < 2 {
		return false
	}
	for i := 2; i*i <= n; i++ {
		if n%i == 0 {
			return false
		}
	}
	return true
}

// NextPrime returns the smallest prime >= n.
func NextPrime(n int) int {
	if n < 2 {
		return 2
	}
	for !IsPrime(n) {
		n++
	}
	return n
}
