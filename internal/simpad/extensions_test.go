package simpad

// Tests for the extensions beyond the paper's published experiments:
// Shared Nothing architecture (footnote 3), fragment clustering granules
// (Section 6.3's proposed fix), and multi-user streams (future work).

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/frag"
	"repro/internal/schema"
)

func TestClusteredPlanQuantities(t *testing.T) {
	s, icfg := apb1Env(t)
	cfg := DefaultConfig()
	spec := frag.MustParse(s, "time::month, product::code")
	plan := NewPlan(spec, icfg, storeQuery(s), cfg)

	if plan.Tasks() != 345_600 {
		t.Fatalf("tasks = %d", plan.Tasks())
	}
	cl := plan.Clustered(32)
	if cl.Tasks() != 345_600/32 {
		t.Fatalf("clustered tasks = %d, want %d", cl.Tasks(), 345_600/32)
	}
	for i := 0; i < cl.Tasks(); i++ {
		if cl.TaskCount(i) != 32 {
			t.Fatalf("task %d count = %d", i, cl.TaskCount(i))
		}
	}
	// Clustered bitmap read: 32 x 0.16 pages = 5.27 -> 6 pages in 2 ops,
	// instead of 32 separate 1-page reads.
	ops := cl.bitmapOps(cfg.PrefetchBitmap, 32)
	pages := 0
	for _, p := range ops {
		pages += p
	}
	if pages > 8 || len(ops) > 2 {
		t.Errorf("clustered bitmap ops = %v (%d pages), want ~6 pages in <=2 ops", ops, pages)
	}
	soloPages := cl.bitmapOps(cfg.PrefetchBitmap, 1)
	if soloPages[0] != 1 {
		t.Errorf("unclustered op = %v, want 1 page", soloPages)
	}
	// Clustered(1) is the identity.
	if plan.Clustered(1) != plan {
		t.Error("Clustered(1) should return the same plan")
	}
}

// TestClusteringFixesFineFragmentation reproduces the Section 6.3 claim:
// clustering fragments restores acceptable 1STORE performance under
// FMonthCode, whose 0.16-page bitmap fragments are otherwise catastrophic.
func TestClusteringFixesFineFragmentation(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale simulation")
	}
	s, icfg := apb1Env(t)
	spec := frag.MustParse(s, "time::month, product::code")
	cfg := DefaultConfig()

	run := func(cluster int) float64 {
		placement := alloc.Placement{Disks: cfg.Disks, Scheme: alloc.RoundRobin, Staggered: true, Cluster: cluster}
		sys, err := NewSystem(cfg, icfg, placement, 1)
		if err != nil {
			t.Fatal(err)
		}
		plan := NewPlan(spec, icfg, storeQuery(s), cfg).Clustered(cluster)
		return sys.Run([]*Plan{plan})[0].ResponseTime
	}
	plain := run(1)
	clustered := run(30) // one cluster = one product group's codes
	if clustered >= plain {
		t.Errorf("clustering did not help: %0.1fs vs %0.1fs", clustered, plain)
	}
	if clustered > 0.7*plain {
		t.Errorf("clustering gain too small: %0.1fs vs %0.1fs", clustered, plain)
	}
}

func TestSharedNothingCorrectOwnership(t *testing.T) {
	s, icfg := apb1Env(t)
	cfg := DefaultConfig()
	cfg.Architecture = SharedNothing
	cfg.Disks, cfg.Nodes = 20, 4
	placement := alloc.Placement{Disks: 20, Scheme: alloc.RoundRobin, Staggered: true}
	sys, err := NewSystem(cfg, icfg, placement, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Ownership: disk j belongs to node j*p/d; 5 disks per node.
	for fragID := int64(0); fragID < 40; fragID++ {
		owner := sys.ownerOf(fragID)
		lo, hi := sys.nodeDiskRange(owner)
		fd := placement.FactDisk(fragID)
		if fd < lo || fd >= hi {
			t.Fatalf("fragment %d: fact disk %d outside owner %d's range [%d,%d)", fragID, fd, owner, lo, hi)
		}
		// Bitmap fragments stay within the owner's disks (footnote 3).
		for b := 0; b < 12; b++ {
			bd := sys.bitmapDisk(fragID, b)
			if bd < lo || bd >= hi {
				t.Fatalf("fragment %d bitmap %d: disk %d outside [%d,%d)", fragID, b, bd, lo, hi)
			}
		}
	}
	// Queries still complete.
	spec := frag.MustParse(s, "time::month, product::group")
	plan := NewPlan(spec, icfg, monthQuery(s), cfg)
	rs := sys.Run([]*Plan{plan})
	if rs[0].ResponseTime <= 0 {
		t.Fatal("shared-nothing query did not complete")
	}
}

// TestSharedNothingLoadImbalance demonstrates the architectural
// constraint behind the paper's Shared Disk preference (Section 1): when a
// query's fragments cluster on few disks (the 1CODE gcd pathology of
// Section 4.6), Shared Nothing confines the processing to the owning
// nodes, while Shared Disk spreads the subqueries over all nodes.
func TestSharedNothingLoadImbalance(t *testing.T) {
	s, icfg := apb1Env(t)
	spec := frag.MustParse(s, "time::month, product::group")
	// 1CODE: every 480th fragment; with d=100, gcd 20 -> fragments on 5
	// disks, owned by at most 5 of 20 SN nodes.
	p := s.DimIndex(schema.DimProduct)
	code := s.Dim(schema.DimProduct).LevelIndex(schema.LvlCode)
	q := frag.Query{Preds: []frag.Pred{{Dim: p, Level: code, Member: 0}}}

	run := func(arch Architecture) (Result, int) {
		cfg := DefaultConfig()
		cfg.Architecture = arch
		placement := alloc.Placement{Disks: cfg.Disks, Scheme: alloc.RoundRobin, Staggered: true}
		sys, err := NewSystem(cfg, icfg, placement, 1)
		if err != nil {
			t.Fatal(err)
		}
		plan := NewPlan(spec, icfg, q, cfg)
		res := sys.Run([]*Plan{plan})[0]
		// Count nodes that executed substantial CPU work (more than the
		// few message-handling services of the coordinator path).
		busy := 0
		for _, nd := range sys.nodes {
			if nd.cpu.Served() > 10 {
				busy++
			}
		}
		return res, busy
	}
	sd, sdBusy := run(SharedDisk)
	sn, snBusy := run(SharedNothing)
	if sd.ResponseTime <= 0 || sn.ResponseTime <= 0 {
		t.Fatal("queries did not complete")
	}
	if snBusy > 6 {
		t.Errorf("shared nothing used %d nodes, want <= 6 (5 owners + coordinator)", snBusy)
	}
	if sdBusy < 15 {
		t.Errorf("shared disk used %d nodes, want >= 15 (dynamic assignment)", sdBusy)
	}
	// Both are bound by the same 5 disks here, so times stay comparable.
	ratio := sn.ResponseTime / sd.ResponseTime
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("SN/SD response ratio = %.2f, want within 2x", ratio)
	}
}

func TestRunStreamsMultiUser(t *testing.T) {
	s, icfg := apb1Env(t)
	spec := frag.MustParse(s, "time::month, product::group")
	cfg := DefaultConfig()
	placement := alloc.Placement{Disks: cfg.Disks, Scheme: alloc.RoundRobin, Staggered: true}

	mk := func(n int) []*Plan {
		plans := make([]*Plan, n)
		for i := range plans {
			plans[i] = NewPlan(spec, icfg, monthQuery(s), cfg)
		}
		return plans
	}

	// One stream = single-user baseline.
	sys1, _ := NewSystem(cfg, icfg, placement, 3)
	single := sys1.RunStreams([][]*Plan{mk(2)})
	if len(single) != 1 || len(single[0]) != 2 {
		t.Fatalf("stream results shape: %v", single)
	}
	base := single[0][0].ResponseTime

	// Four concurrent streams: per-query response times degrade.
	sys4, _ := NewSystem(cfg, icfg, placement, 3)
	multi := sys4.RunStreams([][]*Plan{mk(2), mk(2), mk(2), mk(2)})
	var worst float64
	for _, stream := range multi {
		for _, r := range stream {
			if r.ResponseTime <= 0 {
				t.Fatal("query did not complete")
			}
			if r.ResponseTime > worst {
				worst = r.ResponseTime
			}
		}
	}
	if worst < base {
		t.Errorf("multi-user worst response %.2fs below single-user %.2fs", worst, base)
	}
}

func TestArchitectureString(t *testing.T) {
	if SharedDisk.String() != "shared-disk" || SharedNothing.String() != "shared-nothing" {
		t.Error("Architecture.String wrong")
	}
}
