package simpad

import (
	"math"

	"repro/internal/alloc"
	"repro/internal/cost"
	"repro/internal/frag"
)

// Plan is the physical execution plan of one star query: the relevant
// fragments in allocation order (the coordinator's task list, Section 5)
// plus the per-fragment I/O and CPU quantities derived from the analytical
// cost model.
type Plan struct {
	Spec  *frag.Spec
	Query frag.Query

	// FragIDs is the task list: relevant fragment ids in allocation order.
	FragIDs []int64

	// BitmapsPerFrag is the number of bitmap fragments each subquery reads.
	BitmapsPerFrag int
	// BitmapFragPages is the stored size of one bitmap fragment in pages.
	BitmapFragPages int

	// FragPages is the total size of one fact fragment in pages.
	FragPages int
	// FactOpsPerFrag is the number of fact I/O operations per fragment.
	FactOpsPerFrag int
	// FactPagesPerFrag is the number of fact pages read per fragment.
	FactPagesPerFrag int

	// HitsPerFrag is the expected number of matching rows per fragment.
	HitsPerFrag float64
	// RowsPerPage is the fact tuple density per page.
	RowsPerPage int

	// ClusterSize is the number of consecutive fragments processed by one
	// subquery (Section 6.3's clustering granule; 1 = no clustering).
	ClusterSize int
	// TaskCounts[i] is the number of relevant fragments in task i's
	// cluster (nil when ClusterSize == 1, meaning one each).
	TaskCounts []int
	// BitmapFragPagesF is the exact (fractional) bitmap fragment size,
	// used for clustered bitmap reads.
	BitmapFragPagesF float64

	// Cost is the underlying analytical estimate.
	Cost cost.QueryCost
}

// Tasks returns the number of subqueries on the task list.
func (p *Plan) Tasks() int { return len(p.FragIDs) }

// TaskCount returns the number of relevant fragments of task i.
func (p *Plan) TaskCount(i int) int {
	if p.TaskCounts == nil {
		return 1
	}
	return p.TaskCounts[i]
}

// Clustered derives a plan whose subqueries each process a granule of c
// consecutive fragments — the fix Section 6.3 proposes for fragmentations
// whose bitmap fragments fall below a page: clustering makes the c bitmap
// fragments of a granule contiguous on disk, restoring sequential I/O.
// The caller must use a matching alloc.Placement.Cluster so that clustered
// fragments share a disk.
func (p *Plan) Clustered(c int) *Plan {
	if c <= 1 {
		return p
	}
	np := *p
	np.ClusterSize = c
	np.FragIDs = nil
	np.TaskCounts = nil
	var curCluster int64 = -1
	for _, id := range p.FragIDs {
		cl := id / int64(c)
		if cl != curCluster {
			curCluster = cl
			np.FragIDs = append(np.FragIDs, id)
			np.TaskCounts = append(np.TaskCounts, 1)
		} else {
			np.TaskCounts[len(np.TaskCounts)-1]++
		}
	}
	return &np
}

// NewPlan derives the execution plan for query q under fragmentation spec
// and index configuration icfg, using the prefetch parameters of scfg.
func NewPlan(spec *frag.Spec, icfg frag.IndexConfig, q frag.Query, scfg Config) *Plan {
	params := cost.Params{FactPrefetch: scfg.PrefetchFact, BitmapPrefetch: scfg.PrefetchBitmap}
	c := cost.Estimate(spec, icfg, q, params)

	p := &Plan{
		Spec:           spec,
		Query:          q,
		FragIDs:        spec.FragmentIDs(q),
		BitmapsPerFrag: c.BitmapsPerFragment,
		FragPages:      int(math.Ceil(spec.FragmentPages())),
		RowsPerPage:    spec.Star().FactTuplesPerPage(),
		ClusterSize:    1,
		Cost:           c,
	}
	if c.BitmapsPerFragment > 0 {
		p.BitmapFragPages = int(cost.BitmapFragPagesStored(spec))
		p.BitmapFragPagesF = spec.BitmapFragmentPages()
	}
	p.FactPagesPerFrag = int(math.Round(c.FactPagesPerFragment))
	if p.FactPagesPerFrag < 1 {
		p.FactPagesPerFrag = 1
	}
	if p.FactPagesPerFrag > p.FragPages {
		p.FactPagesPerFrag = p.FragPages
	}
	ops := int(math.Round(float64(c.FactIOs) / float64(c.Fragments)))
	if ops < 1 {
		ops = 1
	}
	p.FactOpsPerFrag = ops
	p.HitsPerFrag = c.HitRows / float64(c.Fragments)
	return p
}

// bitmapOps splits the bitmap read of one task (count clustered fragments
// of one bitmap) into prefetch-granule I/O operations and returns the page
// count of each. Clustered bitmap fragments are contiguous, so count
// fractional fragments coalesce before page rounding — the whole point of
// Section 6.3's clustering granules.
func (p *Plan) bitmapOps(prefetch, count int) []int {
	pages := p.BitmapFragPages
	if count > 1 {
		pages = int(math.Ceil(p.BitmapFragPagesF * float64(count)))
	}
	var ops []int
	for left := pages; left > 0; left -= prefetch {
		n := prefetch
		if n > left {
			n = left
		}
		ops = append(ops, n)
	}
	return ops
}

// factOpPages returns the page count of fact I/O operation j (0-based) of
// a fragment, distributing FactPagesPerFrag over FactOpsPerFrag.
func (p *Plan) factOpPages(j int) int {
	base := p.FactPagesPerFrag / p.FactOpsPerFrag
	if j < p.FactPagesPerFrag%p.FactOpsPerFrag {
		return base + 1
	}
	if base < 1 {
		return 1
	}
	return base
}

// factOpOffset returns the page offset within the fragment where fact I/O
// operation j starts. Touched granules are spread uniformly over the
// fragment, matching the paper's uniform hit assumption.
func (p *Plan) factOpOffset(j int) int {
	if p.FactOpsPerFrag <= 1 {
		return 0
	}
	span := p.FragPages - p.factOpPages(p.FactOpsPerFrag-1)
	if span < 0 {
		span = 0
	}
	return j * span / (p.FactOpsPerFrag - 1)
}

// layout maps fragments and bitmap fragments to positions on their disks so
// that the disk model can compute seeks. The disk address space is split
// into a fact zone and a bitmap zone proportional to their stored sizes.
type layout struct {
	placement alloc.Placement
	// fragsPerDisk is the (approximate) number of fact fragments per disk.
	fragsPerDisk float64
	// fragPages is the size of a fact fragment in pages.
	fragPages float64
	// factFrac is the fraction of each disk holding fact data.
	factFrac float64
	// bitmapSlots is the number of bitmap fragments per disk.
	bitmapSlots float64
	// survivors is the number of stored bitmaps.
	survivors int
	// occupied is the fraction of each disk's address space the data zone
	// covers; positions scale by it so that less data per disk means
	// shorter seeks.
	occupied float64
}

func newLayout(spec *frag.Spec, icfg frag.IndexConfig, placement alloc.Placement, capacityPages int) *layout {
	n := float64(spec.NumFragments())
	d := float64(placement.Disks)
	survivors := spec.SurvivingBitmaps(icfg)
	fragPages := math.Ceil(spec.FragmentPages())
	bfPages := float64(cost.BitmapFragPagesStored(spec))
	factPages := n * fragPages
	bitmapPages := n * float64(survivors) * bfPages
	frac := 1.0
	if factPages+bitmapPages > 0 {
		frac = factPages / (factPages + bitmapPages)
	}
	occupied := 1.0
	if capacityPages > 0 {
		occupied = (factPages + bitmapPages) / d / float64(capacityPages)
		if occupied > 1 {
			occupied = 1
		}
	}
	return &layout{
		placement:    placement,
		fragsPerDisk: math.Max(1, n/d),
		fragPages:    fragPages,
		factFrac:     frac,
		bitmapSlots:  math.Max(1, n*float64(survivors)/d),
		survivors:    survivors,
		occupied:     occupied,
	}
}

// factPos returns the disk position (0..1) of the given page of a fact
// fragment.
func (l *layout) factPos(fragID int64, pageOffset int) float64 {
	idxOnDisk := float64(fragID / int64(l.placement.Disks))
	within := 0.0
	if l.fragPages > 0 {
		within = float64(pageOffset) / l.fragPages
	}
	pos := (idxOnDisk + within) / l.fragsPerDisk * l.factFrac
	return clamp01(pos * l.occupied)
}

// bitmapPos returns the disk position of a bitmap fragment (the b-th bitmap
// of fact fragment fragID).
func (l *layout) bitmapPos(fragID int64, b int) float64 {
	idxOnDisk := float64(fragID/int64(l.placement.Disks))*float64(maxInt(l.survivors, 1)) + float64(b)
	pos := l.factFrac + idxOnDisk/l.bitmapSlots*(1-l.factFrac)
	return clamp01(pos * l.occupied)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x >= 1 {
		return 1 - 1e-9
	}
	return x
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
