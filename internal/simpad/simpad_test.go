package simpad

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/frag"
	"repro/internal/schema"
)

func apb1Env(t testing.TB) (*schema.Star, frag.IndexConfig) {
	s := schema.APB1()
	return s, frag.APB1Indexes(s)
}

func storeQuery(s *schema.Star) frag.Query {
	c := s.DimIndex(schema.DimCustomer)
	store := s.Dim(schema.DimCustomer).LevelIndex(schema.LvlStore)
	return frag.Query{Preds: []frag.Pred{{Dim: c, Level: store, Member: 7}}}
}

func monthQuery(s *schema.Star) frag.Query {
	tm := s.DimIndex(schema.DimTime)
	month := s.Dim(schema.DimTime).LevelIndex(schema.LvlMonth)
	return frag.Query{Preds: []frag.Pred{{Dim: tm, Level: month, Member: 3}}}
}

func run1(t testing.TB, cfg Config, spec *frag.Spec, icfg frag.IndexConfig, q frag.Query) Result {
	t.Helper()
	placement := alloc.Placement{Disks: cfg.Disks, Scheme: alloc.RoundRobin, Staggered: true}
	sys, err := NewSystem(cfg, icfg, placement, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan := NewPlan(spec, icfg, q, cfg)
	rs := sys.Run([]*Plan{plan})
	return rs[0]
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Disks = 0 },
		func(c *Config) { c.Nodes = 0 },
		func(c *Config) { c.MIPS = 0 },
		func(c *Config) { c.TasksPerNode = 0 },
		func(c *Config) { c.PrefetchFact = 0 },
		func(c *Config) { c.PageSize = 0 },
		func(c *Config) { c.NetMbps = 0 },
	}
	for i, mut := range bad {
		c := DefaultConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestNewSystemRejectsMismatchedPlacement(t *testing.T) {
	cfg := DefaultConfig()
	_, err := NewSystem(cfg, nil, alloc.Placement{Disks: 5}, 1)
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestPlanQuantitiesFMonthGroup1Store(t *testing.T) {
	s, icfg := apb1Env(t)
	cfg := DefaultConfig()
	spec := frag.MustParse(s, "time::month, product::group")
	plan := NewPlan(spec, icfg, storeQuery(s), cfg)

	if got := len(plan.FragIDs); got != 11_520 {
		t.Fatalf("task list = %d, want 11520", got)
	}
	if plan.BitmapsPerFrag != 12 {
		t.Errorf("bitmaps per fragment = %d, want 12", plan.BitmapsPerFrag)
	}
	if plan.BitmapFragPages != 5 {
		t.Errorf("bitmap fragment pages = %d, want 5", plan.BitmapFragPages)
	}
	if plan.FragPages != 810 {
		t.Errorf("fragment pages = %d, want 810", plan.FragPages)
	}
	if plan.HitsPerFrag < 112 || plan.HitsPerFrag > 113 {
		t.Errorf("hits per fragment = %g, want 112.5", plan.HitsPerFrag)
	}
	// Bitmap fragment of 5 pages reads in one op of 5 pages.
	ops := plan.bitmapOps(cfg.PrefetchBitmap, 1)
	if len(ops) != 1 || ops[0] != 5 {
		t.Errorf("bitmap ops = %v, want [5]", ops)
	}
	// Fact op pages sum to FactPagesPerFrag.
	sum := 0
	for j := 0; j < plan.FactOpsPerFrag; j++ {
		sum += plan.factOpPages(j)
	}
	if sum != plan.FactPagesPerFrag {
		t.Errorf("sum of op pages = %d, want %d", sum, plan.FactPagesPerFrag)
	}
	// Offsets are monotone and within the fragment.
	prev := -1
	for j := 0; j < plan.FactOpsPerFrag; j++ {
		off := plan.factOpOffset(j)
		if off < 0 || off >= plan.FragPages {
			t.Fatalf("op %d offset %d out of range", j, off)
		}
		if off < prev {
			t.Fatalf("offsets not monotone at op %d", j)
		}
		prev = off
	}
}

func TestPlanIOC1MonthQuery(t *testing.T) {
	s, icfg := apb1Env(t)
	cfg := DefaultConfig()
	spec := frag.MustParse(s, "time::month, product::group")
	plan := NewPlan(spec, icfg, monthQuery(s), cfg)
	if got := len(plan.FragIDs); got != 480 {
		t.Fatalf("task list = %d, want 480", got)
	}
	if plan.BitmapsPerFrag != 0 {
		t.Errorf("bitmaps per fragment = %d, want 0 (IOC1)", plan.BitmapsPerFrag)
	}
	// Whole fragment read: 810 pages in 102 ops.
	if plan.FactPagesPerFrag != 810 {
		t.Errorf("fact pages per fragment = %d, want 810", plan.FactPagesPerFrag)
	}
	if plan.FactOpsPerFrag != 102 {
		t.Errorf("fact ops per fragment = %d, want 102", plan.FactOpsPerFrag)
	}
	// All rows are hits.
	if plan.HitsPerFrag != 162_000 {
		t.Errorf("hits per fragment = %g, want 162000", plan.HitsPerFrag)
	}
}

// TestMonthQueryCPUBound reproduces the core of Figure 4: 1MONTH response
// time is determined by the number of processors, roughly 330s of total CPU
// work divided by p.
func TestMonthQueryCPUBound(t *testing.T) {
	s, icfg := apb1Env(t)
	spec := frag.MustParse(s, "time::month, product::group")

	cfg := DefaultConfig()
	cfg.Disks = 100
	cfg.Nodes = 10
	cfg.TasksPerNode = 4
	r := run1(t, cfg, spec, icfg, monthQuery(s))

	// Total CPU: 480 fragments x 810 pages x (3000 + 200*200) instr
	// ≈ 16.7 G instr / 50 MIPS ≈ 335 s; /10 nodes ≈ 33.5 s.
	if r.ResponseTime < 25 || r.ResponseTime > 50 {
		t.Errorf("1MONTH on 10 nodes: %.1fs, want ~33s", r.ResponseTime)
	}

	// Doubling processors halves response time (near-linear speed-up).
	cfg2 := cfg
	cfg2.Nodes = 20
	r2 := run1(t, cfg2, spec, icfg, monthQuery(s))
	speedup := r.ResponseTime / r2.ResponseTime
	if speedup < 1.6 || speedup > 2.4 {
		t.Errorf("speed-up 10->20 nodes = %.2f, want ~2", speedup)
	}
}

// TestMonthQueryDiskIndependent: 1MONTH is CPU-bound; changing the disk
// count must not change response times much (Figure 4: "response times
// depend on the number of processors rather than disks").
func TestMonthQueryDiskIndependent(t *testing.T) {
	s, icfg := apb1Env(t)
	spec := frag.MustParse(s, "time::month, product::group")
	cfg := DefaultConfig()
	cfg.Nodes = 5
	cfg.TasksPerNode = 4

	cfg.Disks = 20
	r20 := run1(t, cfg, spec, icfg, monthQuery(s))
	cfg.Disks = 100
	r100 := run1(t, cfg, spec, icfg, monthQuery(s))
	ratio := r20.ResponseTime / r100.ResponseTime
	if ratio < 0.9 || ratio > 1.5 {
		t.Errorf("1MONTH d=20 vs d=100 ratio = %.2f, want ~1", ratio)
	}
}

// TestStoreQueryDiskBound reproduces the core of Figure 3: 1STORE depends
// on the number of disks; more disks → proportionally faster.
func TestStoreQueryDiskBound(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale simulation")
	}
	s, icfg := apb1Env(t)
	spec := frag.MustParse(s, "time::month, product::group")

	cfg := DefaultConfig()
	cfg.Disks = 20
	cfg.Nodes = 4
	cfg.TasksPerNode = 5 // t = d/p
	r20 := run1(t, cfg, spec, icfg, storeQuery(s))

	cfg2 := DefaultConfig()
	cfg2.Disks = 100
	cfg2.Nodes = 20
	cfg2.TasksPerNode = 5
	r100 := run1(t, cfg2, spec, icfg, storeQuery(s))

	// Figure 3: ~600s at d=20 down to ~120s at d=100, speed-up ≈ 5
	// (slightly superlinear). Allow a generous band.
	speedup := r20.ResponseTime / r100.ResponseTime
	if speedup < 3.5 || speedup > 8 {
		t.Errorf("1STORE speed-up d 20->100 = %.2f, want ~5", speedup)
	}
	if r100.ResponseTime < 60 || r100.ResponseTime > 250 {
		t.Errorf("1STORE at d=100: %.0fs, want order of 120s", r100.ResponseTime)
	}
	// Same p, more disks should not hurt; also both queries must do the
	// same number of subqueries.
	if r20.Subqueries != 11_520 || r100.Subqueries != 11_520 {
		t.Errorf("subqueries = %d / %d, want 11520", r20.Subqueries, r100.Subqueries)
	}
}

// TestParallelBitmapIOHelps reproduces Figure 5's claim: parallel bitmap
// I/O improves 1STORE response times (up to ~13%), most at low t.
func TestParallelBitmapIOHelps(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale simulation")
	}
	s, icfg := apb1Env(t)
	spec := frag.MustParse(s, "time::month, product::group")

	cfg := DefaultConfig()
	cfg.TasksPerNode = 2
	cfg.ParallelBitmapIO = true
	par := run1(t, cfg, spec, icfg, storeQuery(s))

	cfg.ParallelBitmapIO = false
	seq := run1(t, cfg, spec, icfg, storeQuery(s))

	if par.ResponseTime >= seq.ResponseTime {
		t.Errorf("parallel bitmap I/O (%.1fs) not faster than sequential (%.1fs)",
			par.ResponseTime, seq.ResponseTime)
	}
	improvement := 1 - par.ResponseTime/seq.ResponseTime
	if improvement > 0.35 {
		t.Errorf("improvement = %.0f%%, implausibly large", improvement*100)
	}
}

// TestSubqueriesScaleWithT reproduces the left side of Figure 5: raising t
// from 1 towards 5 (i.e. 100 subqueries on 100 disks) speeds up 1STORE
// roughly linearly.
func TestSubqueriesScaleWithT(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale simulation")
	}
	s, icfg := apb1Env(t)
	spec := frag.MustParse(s, "time::month, product::group")

	times := map[int]float64{}
	for _, tasks := range []int{1, 5} {
		cfg := DefaultConfig()
		cfg.TasksPerNode = tasks
		r := run1(t, cfg, spec, icfg, storeQuery(s))
		times[tasks] = r.ResponseTime
	}
	speedup := times[1] / times[5]
	if speedup < 2.5 || speedup > 7 {
		t.Errorf("t=1 -> t=5 speed-up = %.2f, want ~4-5", speedup)
	}
}

func TestRunSequentialQueries(t *testing.T) {
	s, icfg := apb1Env(t)
	spec := frag.MustParse(s, "time::month, product::group")
	cfg := DefaultConfig()
	placement := alloc.Placement{Disks: cfg.Disks, Scheme: alloc.RoundRobin, Staggered: true}
	sys, err := NewSystem(cfg, icfg, placement, 42)
	if err != nil {
		t.Fatal(err)
	}
	p := s.DimIndex(schema.DimProduct)
	tm := s.DimIndex(schema.DimTime)
	group := s.Dim(schema.DimProduct).LevelIndex(schema.LvlGroup)
	month := s.Dim(schema.DimTime).LevelIndex(schema.LvlMonth)
	q := frag.Query{Preds: []frag.Pred{{Dim: tm, Level: month, Member: 0}, {Dim: p, Level: group, Member: 0}}}

	plans := []*Plan{
		NewPlan(spec, icfg, q, cfg),
		NewPlan(spec, icfg, q, cfg),
	}
	rs := sys.Run(plans)
	if len(rs) != 2 {
		t.Fatalf("results = %d", len(rs))
	}
	for i, r := range rs {
		if r.ResponseTime <= 0 {
			t.Errorf("query %d response time = %g", i, r.ResponseTime)
		}
		if r.Subqueries != 1 {
			t.Errorf("query %d subqueries = %d, want 1", i, r.Subqueries)
		}
	}
	// The second identical query benefits from the buffer.
	if rs[1].ResponseTime > rs[0].ResponseTime {
		t.Errorf("second run slower: %g vs %g", rs[1].ResponseTime, rs[0].ResponseTime)
	}
	if rs[1].DiskPages >= rs[0].DiskPages && rs[0].DiskPages > 0 {
		t.Errorf("second run read %d pages, first %d — expected buffer hits", rs[1].DiskPages, rs[0].DiskPages)
	}
}

func TestRunConcurrentMultiUser(t *testing.T) {
	s, icfg := apb1Env(t)
	spec := frag.MustParse(s, "time::month, product::group")
	cfg := DefaultConfig()
	placement := alloc.Placement{Disks: cfg.Disks, Scheme: alloc.RoundRobin, Staggered: true}
	sysSeq, _ := NewSystem(cfg, icfg, placement, 7)
	sysCon, _ := NewSystem(cfg, icfg, placement, 7)

	mk := func() []*Plan {
		var plans []*Plan
		for i := 0; i < 3; i++ {
			plans = append(plans, NewPlan(spec, icfg, monthQuery(s), cfg))
		}
		return plans
	}
	seq := sysSeq.Run(mk())
	con := sysCon.RunConcurrent(mk())
	// Concurrent queries contend: each individual response time is at least
	// the unloaded one (compare against the first sequential query, which
	// ran on a cold system).
	for i, r := range con {
		if r.ResponseTime < seq[0].ResponseTime*0.5 {
			t.Errorf("concurrent query %d faster than unloaded system: %g vs %g",
				i, r.ResponseTime, seq[0].ResponseTime)
		}
	}
}

func TestDeadlockGuardSingleNodeT1(t *testing.T) {
	s, icfg := apb1Env(t)
	spec := frag.MustParse(s, "time::month, product::group")
	cfg := DefaultConfig()
	cfg.Nodes = 1
	cfg.Disks = 4
	cfg.TasksPerNode = 1
	placement := alloc.Placement{Disks: 4, Scheme: alloc.RoundRobin, Staggered: true}
	sys, err := NewSystem(cfg, icfg, placement, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := s.DimIndex(schema.DimProduct)
	tm := s.DimIndex(schema.DimTime)
	group := s.Dim(schema.DimProduct).LevelIndex(schema.LvlGroup)
	month := s.Dim(schema.DimTime).LevelIndex(schema.LvlMonth)
	q := frag.Query{Preds: []frag.Pred{{Dim: tm, Level: month, Member: 0}, {Dim: p, Level: group, Member: 0}}}
	rs := sys.Run([]*Plan{NewPlan(spec, icfg, q, cfg)})
	if rs[0].ResponseTime <= 0 {
		t.Fatal("query did not complete (scheduler deadlock)")
	}
}

func TestDiskSeekModel(t *testing.T) {
	cfg := DefaultConfig()
	d := disk{cfg: &cfg}
	if got := d.seekSeconds(0); got != 0 {
		t.Errorf("zero-distance seek = %g", got)
	}
	// Full-stroke seek is the maximum: avg/E[sqrt dist] * 1.
	full := d.seekSeconds(1)
	if full <= cfg.AvgSeekMs/1000 {
		t.Errorf("full-stroke seek %g not above average %g", full, cfg.AvgSeekMs/1000)
	}
	// Monotone in distance.
	prev := 0.0
	for _, dist := range []float64{0.01, 0.1, 0.3, 0.7, 1} {
		v := d.seekSeconds(dist)
		if v <= prev {
			t.Errorf("seek not monotone at %g", dist)
		}
		prev = v
	}
	// Average over uniform random pairs ≈ AvgSeekMs.
	sum := 0.0
	n := 0
	for i := 0; i < 200; i++ {
		for j := 0; j < 200; j++ {
			sum += d.seekSeconds(abs(float64(i)/200 - float64(j)/200))
			n++
		}
	}
	avg := sum / float64(n) * 1000
	if avg < 9 || avg > 11 {
		t.Errorf("mean seek = %.2fms, want ~10ms", avg)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestLRUBuffer(t *testing.T) {
	b := newLRUBuffer(10)
	k1 := bufferKey{frag: 1}
	k2 := bufferKey{frag: 2}
	k3 := bufferKey{frag: 3}
	if b.lookup(k1) {
		t.Fatal("empty buffer hit")
	}
	b.insert(k1, 5)
	b.insert(k2, 5)
	if !b.lookup(k1) || !b.lookup(k2) {
		t.Fatal("inserted entries missing")
	}
	// k3 evicts the LRU entry. k1 was touched after k2's insert, so k2 is
	// evicted first... but k2 was looked up last, making k1 LRU.
	b.insert(k3, 5)
	if b.lookup(k1) {
		t.Error("k1 should have been evicted")
	}
	if !b.lookup(k2) || !b.lookup(k3) {
		t.Error("k2/k3 should be cached")
	}
	// Oversized granule is not cached.
	b.insert(bufferKey{frag: 4}, 11)
	if b.lookup(bufferKey{frag: 4}) {
		t.Error("oversized granule cached")
	}
	if hr := b.hitRate(); hr <= 0 || hr >= 1 {
		t.Errorf("hit rate = %g", hr)
	}
}
