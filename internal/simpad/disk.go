package simpad

import (
	"math"

	"repro/internal/des"
)

// seekShapeMean is the expectation of sqrt(|u-v|) for independent uniform
// u, v on [0,1): 8/15. The seek curve is calibrated with it so that the
// average seek over random positions equals Config.AvgSeekMs.
const seekShapeMean = 8.0 / 15.0

// disk models one disk drive as a FCFS server whose service time depends on
// the head position: a square-root seek curve (fast for short distances,
// as in real drives), plus settle/controller delay per access and a
// per-page transfer delay. Requests at the current position pay no seek.
type disk struct {
	res *des.Resource
	cfg *Config
	// head is the current head position in [0, 1).
	head float64
	// stats
	ops       int64
	pages     int64
	seekTime  float64
	totalTime float64
}

func newDisk(sim *des.Sim, name string, cfg *Config) *disk {
	return &disk{res: des.NewResource(sim, name, 1), cfg: cfg}
}

// seekSeconds returns the head movement time for a given distance in
// [0, 1]. Calibrated so that the mean over random pairs is AvgSeekMs.
func (d *disk) seekSeconds(dist float64) float64 {
	if dist <= 0 {
		return 0
	}
	return d.cfg.AvgSeekMs / 1000 / seekShapeMean * math.Sqrt(dist)
}

// read requests a transfer of pages at the given position (fraction of the
// disk's address space); done runs when the transfer completes.
func (d *disk) read(pos float64, pages int, done func()) {
	d.res.UseFunc(func() des.Time {
		dist := math.Abs(pos - d.head)
		seek := d.seekSeconds(dist)
		// After a sequential transfer the head sits at the end of the read
		// region; approximate the region's extent as negligible relative to
		// the whole disk and park the head at pos.
		d.head = pos
		t := seek + d.cfg.SettleMs/1000 + float64(pages)*d.cfg.TransferMsPerPage/1000
		d.ops++
		d.pages += int64(pages)
		d.seekTime += seek
		d.totalTime += t
		return des.Time(t)
	}, done)
}

// utilization returns the disk's busy fraction.
func (d *disk) utilization() float64 { return d.res.Utilization() }
