// Package simpad simulates a Shared Disk parallel database system executing
// star queries over an MDHF-fragmented fact table — a Go reimplementation
// of the paper's SIMPAD simulator (Section 5) on top of the internal/des
// event kernel instead of CSIM.
//
// Processors and disks are explicit servers; the disk model computes seek
// times from track positions; CPU overhead is charged for all major query
// processing steps and communication with the instruction counts of
// Table 4; the network is contention-free with delays proportional to
// message sizes; an LRU buffer manager with prefetching fronts the disks.
package simpad

import (
	"errors"
	"fmt"
)

// Architecture selects the PDBS architecture.
type Architecture int

const (
	// SharedDisk: every node reaches every disk; subqueries are assigned
	// dynamically (the paper's focus).
	SharedDisk Architecture = iota
	// SharedNothing: disks are partitioned among nodes; a subquery must
	// run on the node owning its fragment's disk, and bitmap fragments are
	// restricted to the owner's disks (footnote 3 of the paper).
	SharedNothing
)

func (a Architecture) String() string {
	if a == SharedNothing {
		return "shared-nothing"
	}
	return "shared-disk"
}

// Config holds all simulation parameters. DefaultConfig reproduces Table 4.
type Config struct {
	// Hardware.
	Disks        int // number of disks d
	Nodes        int // number of processing nodes p
	MIPS         float64
	Architecture Architecture

	// Scheduling.
	TasksPerNode     int  // t, max concurrent subqueries per node
	ParallelBitmapIO bool // read a subquery's bitmap fragments concurrently
	// MaxConcurrentSubqueries caps the total degree of intra-query
	// parallelism across all nodes (0 = no cap beyond Nodes*TasksPerNode).
	// Used for the degree-of-parallelism sweeps of Figure 6.
	MaxConcurrentSubqueries int

	// Disk characteristics.
	AvgSeekMs         float64 // average seek time over a full disk
	SettleMs          float64 // settle time + controller delay per access
	TransferMsPerPage float64 // controller delay per page
	// DiskCapacityPages is the capacity of one disk in pages. Data occupies
	// a contiguous zone at the start of each disk, so spreading the same
	// database over more disks shortens seek distances — the source of the
	// slightly superlinear disk speed-up the paper observes (Section 6.1).
	DiskCapacityPages int

	// Instruction counts (Table 4).
	InstrInitQuery         int
	InstrTerminateQuery    int
	InstrInitSubquery      int
	InstrTerminateSubquery int
	InstrReadPage          int
	InstrProcessBitmapPage int
	InstrExtractRow        int
	InstrAggregateRow      int
	InstrMsgBase           int // plus one instruction per byte

	// Network.
	NetMbps       float64
	SmallMsgBytes int
	LargeMsgBytes int

	// Buffer manager.
	PageSize          int
	BufferFactPages   int
	BufferBitmapPages int
	PrefetchFact      int // pages per fact I/O
	PrefetchBitmap    int // pages per bitmap I/O
}

// DefaultConfig returns the paper's parameter settings (Table 4): 100
// disks, 20 nodes of 50 MIPS, 4 KB pages, prefetch 8/5, buffers 1000/5000
// pages, 100 Mbit/s network.
func DefaultConfig() Config {
	return Config{
		Disks:             100,
		Nodes:             20,
		MIPS:              50,
		TasksPerNode:      5,
		ParallelBitmapIO:  true,
		AvgSeekMs:         10,
		SettleMs:          3,
		TransferMsPerPage: 1,
		DiskCapacityPages: 600_000, // ~2.4 GB — full APB-1 fills 20 disks

		InstrInitQuery:         50_000,
		InstrTerminateQuery:    10_000,
		InstrInitSubquery:      10_000,
		InstrTerminateSubquery: 10_000,
		InstrReadPage:          3_000,
		InstrProcessBitmapPage: 1_500,
		InstrExtractRow:        100,
		InstrAggregateRow:      100,
		InstrMsgBase:           1_000,

		NetMbps:       100,
		SmallMsgBytes: 128,
		LargeMsgBytes: 4096,

		PageSize:          4096,
		BufferFactPages:   1000,
		BufferBitmapPages: 5000,
		PrefetchFact:      8,
		PrefetchBitmap:    5,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Disks <= 0:
		return errors.New("simpad: need at least one disk")
	case c.Nodes <= 0:
		return errors.New("simpad: need at least one node")
	case c.MIPS <= 0:
		return errors.New("simpad: MIPS must be positive")
	case c.TasksPerNode <= 0:
		return errors.New("simpad: TasksPerNode must be positive")
	case c.PrefetchFact <= 0 || c.PrefetchBitmap <= 0:
		return errors.New("simpad: prefetch sizes must be positive")
	case c.PageSize <= 0:
		return errors.New("simpad: page size must be positive")
	case c.DiskCapacityPages < 0:
		return errors.New("simpad: disk capacity must be non-negative")
	case c.NetMbps <= 0:
		return errors.New("simpad: network speed must be positive")
	}
	return nil
}

// cpuSeconds converts an instruction count to seconds on one node.
func (c Config) cpuSeconds(instr float64) float64 {
	return instr / (c.MIPS * 1e6)
}

// netSeconds returns the transmission delay for a message of the given
// size on the contention-free network.
func (c Config) netSeconds(bytes int) float64 {
	return float64(bytes) * 8 / (c.NetMbps * 1e6)
}

// msgInstr returns the CPU instructions charged on each side of a message.
func (c Config) msgInstr(bytes int) float64 {
	return float64(c.InstrMsgBase + bytes)
}

func (c Config) String() string {
	return fmt.Sprintf("d=%d p=%d t=%d parBitmapIO=%v", c.Disks, c.Nodes, c.TasksPerNode, c.ParallelBitmapIO)
}
