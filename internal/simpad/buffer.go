package simpad

import "container/list"

// bufferKey identifies one prefetch granule in the buffer pool.
type bufferKey struct {
	bitmap  bool
	frag    int64
	index   int // bitmap number or fact granule index
	granule int // granule within a bitmap fragment
}

// lruBuffer is a page-granular LRU buffer pool tracked at prefetch-granule
// granularity (a granule is cached or not as a whole, matching the
// simulator's I/O unit). Capacity is counted in pages.
type lruBuffer struct {
	capPages int
	used     int
	order    *list.List // front = most recent; values are *bufferEntry
	entries  map[bufferKey]*list.Element

	hits, misses int64
}

type bufferEntry struct {
	key   bufferKey
	pages int
}

func newLRUBuffer(capPages int) *lruBuffer {
	return &lruBuffer{
		capPages: capPages,
		order:    list.New(),
		entries:  make(map[bufferKey]*list.Element),
	}
}

// lookup reports whether the granule is cached, updating recency and stats.
func (b *lruBuffer) lookup(k bufferKey) bool {
	if el, ok := b.entries[k]; ok {
		b.order.MoveToFront(el)
		b.hits++
		return true
	}
	b.misses++
	return false
}

// insert caches a granule of the given page count, evicting LRU granules
// as needed. Granules larger than the pool are not cached.
func (b *lruBuffer) insert(k bufferKey, pages int) {
	if pages > b.capPages {
		return
	}
	if el, ok := b.entries[k]; ok {
		b.order.MoveToFront(el)
		return
	}
	for b.used+pages > b.capPages {
		back := b.order.Back()
		if back == nil {
			break
		}
		e := back.Value.(*bufferEntry)
		b.order.Remove(back)
		delete(b.entries, e.key)
		b.used -= e.pages
	}
	b.entries[k] = b.order.PushFront(&bufferEntry{key: k, pages: pages})
	b.used += pages
}

// hitRate returns the fraction of lookups served from the buffer.
func (b *lruBuffer) hitRate() float64 {
	total := b.hits + b.misses
	if total == 0 {
		return 0
	}
	return float64(b.hits) / float64(total)
}
