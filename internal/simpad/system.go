package simpad

import (
	"fmt"
	"math/rand"

	"repro/internal/alloc"
	"repro/internal/des"
	"repro/internal/frag"
)

// System is one simulated Shared Disk PDBS instance: p processing nodes and
// d disks shared by all nodes, a contention-free network, and LRU buffer
// pools for fact and bitmap pages.
type System struct {
	cfg       Config
	icfg      frag.IndexConfig
	placement alloc.Placement

	sim   *des.Sim
	disks []*disk
	nodes []*node
	// Buffer pools. The paper keeps separate buffers for tables and
	// indices; we model one shared pool per kind (Shared Disk nodes reach
	// all disks, and single-user runs make per-node pools indistinguishable).
	factBuf   *lruBuffer
	bitmapBuf *lruBuffer

	rng *rand.Rand
}

// node is one processing node: a single CPU server plus its scheduling
// state.
type node struct {
	cpu    *des.Resource
	active int // currently assigned subqueries (plus 1 if coordinating)
}

// NewSystem builds a simulated PDBS for the given configuration, index
// configuration and placement. Seed drives query parameter randomisation
// (coordinator choice); service times themselves are deterministic.
func NewSystem(cfg Config, icfg frag.IndexConfig, placement alloc.Placement, seed int64) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if placement.Disks != cfg.Disks {
		return nil, fmt.Errorf("simpad: placement has %d disks, config %d", placement.Disks, cfg.Disks)
	}
	s := &System{
		cfg:       cfg,
		icfg:      icfg,
		placement: placement,
		sim:       des.NewSim(),
		factBuf:   newLRUBuffer(cfg.BufferFactPages),
		bitmapBuf: newLRUBuffer(cfg.BufferBitmapPages),
		rng:       rand.New(rand.NewSource(seed)),
	}
	for i := 0; i < cfg.Disks; i++ {
		s.disks = append(s.disks, newDisk(s.sim, fmt.Sprintf("disk%d", i), &s.cfg))
	}
	for i := 0; i < cfg.Nodes; i++ {
		s.nodes = append(s.nodes, &node{cpu: des.NewResource(s.sim, fmt.Sprintf("node%d", i), 1)})
	}
	return s, nil
}

// Result summarises one simulated query execution.
type Result struct {
	// ResponseTime is the query's response time in seconds.
	ResponseTime float64
	// Subqueries is the number of subqueries executed.
	Subqueries int
	// DiskOps and DiskPages are totals across all disks for this query.
	DiskOps, DiskPages int64
	// MeanDiskUtil is the mean disk utilisation over the query's lifetime.
	MeanDiskUtil float64
	// BufferHitRate is the combined buffer hit rate.
	BufferHitRate float64
	// Events is the number of simulation events executed.
	Events int64
}

// Run executes the plans sequentially (single-user mode, Section 5) and
// returns one Result per plan.
func (s *System) Run(plans []*Plan) []Result {
	results := make([]Result, len(plans))
	var issue func(i int)
	issue = func(i int) {
		if i == len(plans) {
			return
		}
		s.runQuery(plans[i], func(r Result) {
			results[i] = r
			issue(i + 1)
		})
	}
	issue(0)
	s.sim.Run()
	return results
}

// RunConcurrent executes all plans starting at time zero (multi-user mode;
// an extension over the paper's single-user experiments).
func (s *System) RunConcurrent(plans []*Plan) []Result {
	results := make([]Result, len(plans))
	for i, p := range plans {
		i, p := i, p
		s.runQuery(p, func(r Result) { results[i] = r })
	}
	s.sim.Run()
	return results
}

// RunStreams models a closed multi-user workload: each stream issues its
// queries sequentially, all streams run concurrently (the multi-user mode
// the paper defers to future work). It returns one result list per stream.
func (s *System) RunStreams(streams [][]*Plan) [][]Result {
	results := make([][]Result, len(streams))
	for i := range streams {
		results[i] = make([]Result, len(streams[i]))
	}
	var issue func(stream, i int)
	issue = func(stream, i int) {
		if i == len(streams[stream]) {
			return
		}
		s.runQuery(streams[stream][i], func(r Result) {
			results[stream][i] = r
			issue(stream, i+1)
		})
	}
	for i := range streams {
		issue(i, 0)
	}
	s.sim.Run()
	return results
}

// ownerOf returns the node owning a fragment's disk (Shared Nothing).
func (s *System) ownerOf(fragID int64) int {
	return s.placement.FactDisk(fragID) * s.cfg.Nodes / s.cfg.Disks
}

// nodeDiskRange returns the half-open disk range owned by a node under
// Shared Nothing.
func (s *System) nodeDiskRange(node int) (lo, hi int) {
	lo = node * s.cfg.Disks / s.cfg.Nodes
	hi = (node + 1) * s.cfg.Disks / s.cfg.Nodes
	if hi <= lo {
		hi = lo + 1
	}
	return lo, hi
}

// bitmapDisk places a bitmap fragment's disk honouring the architecture:
// under Shared Nothing the bitmap fragments must live on the owning
// node's disks (footnote 3), shrinking the staggering range.
func (s *System) bitmapDisk(fragID int64, b int) int {
	if s.cfg.Architecture == SharedDisk {
		return s.placement.BitmapDisk(fragID, b)
	}
	factDisk := s.placement.FactDisk(fragID)
	if !s.placement.Staggered {
		return factDisk
	}
	lo, hi := s.nodeDiskRange(s.ownerOf(fragID))
	span := hi - lo
	return lo + (factDisk-lo+1+b)%span
}

// queryRun carries the scheduling state of one in-flight query.
type queryRun struct {
	sys    *System
	plan   *Plan
	layout *layout
	coord  int
	// next is the next task-list index to dispatch (Shared Disk).
	next int
	// perNode holds per-owner task queues (Shared Nothing only).
	perNode   [][]int
	completed int
	inflight  int
	start     des.Time
	opsBase   int64
	pagesBase int64
	done      func(Result)
}

// runQuery simulates one star query: a randomly selected coordinator plans
// the query, dispatches subqueries round-robin with at most t per node
// (coordination itself occupying one task slot), gathers partial
// aggregates, and terminates (Section 5).
func (s *System) runQuery(plan *Plan, done func(Result)) {
	qr := &queryRun{
		sys:    s,
		plan:   plan,
		layout: newLayout(plan.Spec, s.icfg, s.placement, s.cfg.DiskCapacityPages),
		coord:  s.rng.Intn(s.cfg.Nodes),
		start:  s.sim.Now(),
		done:   done,
	}
	for _, d := range s.disks {
		qr.opsBase += d.ops
		qr.pagesBase += d.pages
	}
	if s.cfg.Architecture == SharedNothing {
		qr.perNode = make([][]int, s.cfg.Nodes)
		for ti, fragID := range plan.FragIDs {
			owner := s.ownerOf(fragID)
			qr.perNode[owner] = append(qr.perNode[owner], ti)
		}
	}
	coordNode := s.nodes[qr.coord]
	coordNode.active++ // coordination counts as one task (Section 5)
	coordNode.cpu.Use(des.Time(s.cfg.cpuSeconds(float64(s.cfg.InstrInitQuery))), func() {
		qr.dispatch()
	})
}

// dispatch assigns tasks from the task list to nodes until every node is
// at capacity or the list is exhausted. Under Shared Disk, assignment is
// round-robin starting after the coordinator; under Shared Nothing, each
// task can only run on the node owning its fragment's disk. The
// coordinator's own capacity is effectively t-1 because coordination
// occupies one of its task slots.
func (qr *queryRun) dispatch() {
	if qr.sys.cfg.Architecture == SharedNothing {
		qr.dispatchSharedNothing()
		return
	}
	n := len(qr.sys.nodes)
	cap := qr.sys.cfg.TasksPerNode
	for qr.next < len(qr.plan.FragIDs) {
		if lim := qr.sys.cfg.MaxConcurrentSubqueries; lim > 0 && qr.inflight >= lim {
			return
		}
		start := (qr.coord + 1 + qr.next) % n
		assigned := false
		for k := 0; k < n; k++ {
			cand := (start + k) % n
			if qr.sys.nodes[cand].active < cap {
				qr.assign(cand, qr.next)
				qr.next++
				assigned = true
				break
			}
		}
		if !assigned {
			// Deadlock guard for degenerate configs (one node, t=1): if no
			// subquery is in flight, let the coordinator exceed its slot.
			if qr.inflight == 0 {
				qr.assign(qr.coord, qr.next)
				qr.next++
				continue
			}
			return
		}
	}
}

// dispatchSharedNothing drains each node's own task queue up to capacity.
func (qr *queryRun) dispatchSharedNothing() {
	cap := qr.sys.cfg.TasksPerNode
	for nodeIdx := range qr.sys.nodes {
		q := qr.perNode[nodeIdx]
		for len(q) > 0 && qr.sys.nodes[nodeIdx].active < cap {
			if lim := qr.sys.cfg.MaxConcurrentSubqueries; lim > 0 && qr.inflight >= lim {
				qr.perNode[nodeIdx] = q
				return
			}
			ti := q[0]
			q = q[1:]
			qr.assign(nodeIdx, ti)
		}
		qr.perNode[nodeIdx] = q
	}
	// Deadlock guard: a node whose whole capacity is the coordination slot.
	if qr.inflight == 0 {
		for nodeIdx := range qr.sys.nodes {
			if q := qr.perNode[nodeIdx]; len(q) > 0 {
				qr.perNode[nodeIdx] = q[1:]
				qr.assign(nodeIdx, q[0])
				return
			}
		}
	}
}

// assign sends a task-assignment message to the node and starts the
// subquery there.
func (qr *queryRun) assign(nodeIdx int, taskIdx int) {
	s := qr.sys
	nd := s.nodes[nodeIdx]
	nd.active++
	qr.inflight++
	instr := s.cfg.msgInstr(s.cfg.SmallMsgBytes)
	coordCPU := s.nodes[qr.coord].cpu
	// Sender-side message handling on the coordinator, network transfer,
	// receiver-side handling, then the subquery itself.
	coordCPU.Use(des.Time(s.cfg.cpuSeconds(instr)), func() {
		s.sim.Schedule(des.Time(s.cfg.netSeconds(s.cfg.SmallMsgBytes)), func() {
			nd.cpu.Use(des.Time(s.cfg.cpuSeconds(instr)), func() {
				qr.subquery(nodeIdx, taskIdx)
			})
		})
	})
}

// subquery executes one subquery (Section 4.3, step 4): read and process
// the task's bitmap fragments, then iterate prefetch-granule fact reads
// with per-page and per-hit CPU processing, and report back. A task covers
// TaskCount(taskIdx) clustered fragments.
func (qr *queryRun) subquery(nodeIdx int, taskIdx int) {
	s := qr.sys
	nd := s.nodes[nodeIdx]
	plan := qr.plan

	initT := des.Time(s.cfg.cpuSeconds(float64(s.cfg.InstrInitSubquery)))
	nd.cpu.Use(initT, func() {
		if plan.BitmapsPerFrag > 0 {
			qr.readBitmaps(nodeIdx, taskIdx, func() {
				qr.factPhase(nodeIdx, taskIdx)
			})
		} else {
			qr.factPhase(nodeIdx, taskIdx)
		}
	})
}

// readBitmaps reads the task's bitmap fragments — concurrently when
// ParallelBitmapIO is set (the staggered allocation places them on distinct
// disks), else one after another — and charges bitmap page processing CPU.
func (qr *queryRun) readBitmaps(nodeIdx int, taskIdx int, done func()) {
	s := qr.sys
	nd := s.nodes[nodeIdx]
	plan := qr.plan
	fragID := plan.FragIDs[taskIdx]
	count := plan.TaskCount(taskIdx)
	k := plan.BitmapsPerFrag
	ops := plan.bitmapOps(s.cfg.PrefetchBitmap, count)
	pagesTotal := 0
	for _, p := range ops {
		pagesTotal += p
	}
	procPerPage := s.cfg.cpuSeconds(float64(s.cfg.InstrProcessBitmapPage))

	remaining := k
	finishOne := func() {
		remaining--
		if remaining == 0 {
			done()
		}
	}

	// readFrag reads bitmap b's fragment(s) for this task (all its
	// prefetch ops in sequence), then charges CPU for its pages.
	readFrag := func(b int, after func()) {
		dk := s.disks[s.bitmapDisk(fragID, b)]
		pos := qr.layout.bitmapPos(fragID, b)
		var step func(op int)
		step = func(op int) {
			if op == len(ops) {
				cpu := des.Time(procPerPage * float64(pagesTotal))
				nd.cpu.Use(cpu, after)
				return
			}
			key := bufferKey{bitmap: true, frag: fragID, index: b, granule: op}
			if s.bitmapBuf.lookup(key) {
				step(op + 1)
				return
			}
			dk.read(pos, ops[op], func() {
				s.bitmapBuf.insert(key, ops[op])
				step(op + 1)
			})
		}
		step(0)
	}

	if s.cfg.ParallelBitmapIO {
		for b := 0; b < k; b++ {
			readFrag(b, finishOne)
		}
		return
	}
	var seq func(b int)
	seq = func(b int) {
		if b == k {
			done()
			return
		}
		readFrag(b, func() { seq(b + 1) })
	}
	seq(0)
}

// factPhase iterates steps 4a/4b of Section 4.3 over the task's fact I/O
// operations: read a granule, extract and aggregate its hits, proceed.
func (qr *queryRun) factPhase(nodeIdx int, taskIdx int) {
	s := qr.sys
	nd := s.nodes[nodeIdx]
	plan := qr.plan
	fragID := plan.FragIDs[taskIdx]
	count := plan.TaskCount(taskIdx)
	dk := s.disks[s.placement.FactDisk(fragID)]

	totalOps := plan.FactOpsPerFrag * count
	hitsPerOp := plan.HitsPerFrag * float64(count) / float64(totalOps)
	rowInstr := float64(s.cfg.InstrExtractRow + s.cfg.InstrAggregateRow)

	var step func(op int)
	step = func(op int) {
		if op == totalOps {
			qr.finishSubquery(nodeIdx)
			return
		}
		pages := plan.factOpPages(op % plan.FactOpsPerFrag)
		process := func() {
			cpu := float64(pages)*float64(s.cfg.InstrReadPage) + hitsPerOp*rowInstr
			nd.cpu.Use(des.Time(s.cfg.cpuSeconds(cpu)), func() { step(op + 1) })
		}
		key := bufferKey{frag: fragID, index: op}
		if s.factBuf.lookup(key) {
			process()
			return
		}
		pos := qr.layout.factPos(fragID, plan.factOpOffset(op%plan.FactOpsPerFrag))
		dk.read(pos, pages, func() {
			s.factBuf.insert(key, pages)
			process()
		})
	}
	step(0)
}

// finishSubquery terminates the subquery and sends the partial aggregate to
// the coordinator, which then either assigns more work or completes the
// query.
func (qr *queryRun) finishSubquery(nodeIdx int) {
	s := qr.sys
	nd := s.nodes[nodeIdx]
	termT := des.Time(s.cfg.cpuSeconds(float64(s.cfg.InstrTerminateSubquery)))
	instr := s.cfg.msgInstr(s.cfg.SmallMsgBytes)
	nd.cpu.Use(termT, func() {
		nd.cpu.Use(des.Time(s.cfg.cpuSeconds(instr)), func() {
			s.sim.Schedule(des.Time(s.cfg.netSeconds(s.cfg.SmallMsgBytes)), func() {
				s.nodes[qr.coord].cpu.Use(des.Time(s.cfg.cpuSeconds(instr)), func() {
					nd.active--
					qr.inflight--
					qr.completed++
					if qr.completed == qr.plan.Tasks() {
						qr.finishQuery()
						return
					}
					qr.dispatch()
				})
			})
		})
	})
}

// finishQuery gathers the overall aggregate and reports the result.
func (qr *queryRun) finishQuery() {
	s := qr.sys
	coordNode := s.nodes[qr.coord]
	coordNode.cpu.Use(des.Time(s.cfg.cpuSeconds(float64(s.cfg.InstrTerminateQuery))), func() {
		coordNode.active--
		var ops, pages int64
		var util float64
		for _, d := range s.disks {
			ops += d.ops
			pages += d.pages
			util += d.utilization()
		}
		qr.done(Result{
			ResponseTime:  float64(s.sim.Now() - qr.start),
			Subqueries:    qr.plan.Tasks(),
			DiskOps:       ops - qr.opsBase,
			DiskPages:     pages - qr.pagesBase,
			MeanDiskUtil:  util / float64(len(s.disks)),
			BufferHitRate: combinedHitRate(s.factBuf, s.bitmapBuf),
			Events:        s.sim.EventsRun(),
		})
	})
}

func combinedHitRate(bufs ...*lruBuffer) float64 {
	var h, m int64
	for _, b := range bufs {
		h += b.hits
		m += b.misses
	}
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// MeanResponseTime averages the response times of results.
func MeanResponseTime(rs []Result) float64 {
	if len(rs) == 0 {
		return 0
	}
	var t float64
	for _, r := range rs {
		t += r.ResponseTime
	}
	return t / float64(len(rs))
}
