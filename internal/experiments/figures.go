package experiments

import (
	"context"
	"fmt"

	"repro/internal/alloc"
	"repro/internal/exec"
	"repro/internal/frag"
	"repro/internal/schema"
	"repro/internal/simpad"
	"repro/internal/workload"
)

// Point is one simulated data point of a figure.
type Point struct {
	X float64
	// ResponseTime is the average response time in seconds.
	ResponseTime float64
	// Speedup is relative to the curve's baseline point (first X).
	Speedup float64
}

// Series is one curve of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Figure is one reproduced figure: a set of response time curves (the
// speed-up view is derived per curve).
type Figure struct {
	Name   string
	XLabel string
	Series []Series
}

// Options controls figure regeneration.
type Options struct {
	// Queries is the number of queries averaged per data point (the paper
	// averages a single-user query stream). Default 1: with deterministic
	// service times, repeats only smooth parameter randomisation.
	Queries int
	// Seed drives query parameter randomisation.
	Seed int64
	// Workers is the number of parallel simulation workers regenerating a
	// figure's data points (each point is an independent deterministic
	// simulation, so the figure is identical at any worker count). Values
	// below 1 mean sequential, the memory-conservative default; 0 passed
	// through from a CLI -workers flag therefore also means sequential,
	// and exec.Workers semantics apply only to explicit counts.
	Workers int
}

func (o Options) queries() int {
	if o.Queries <= 0 {
		return 1
	}
	return o.Queries
}

func (o Options) workers() int {
	if o.Workers < 1 {
		return 1
	}
	return o.Workers
}

// pointJob is one simulated data point of a figure: a full system
// configuration plus the series and x-position its result lands in.
type pointJob struct {
	series int
	x      float64
	cfg    simpad.Config
	spec   *frag.Spec
	qt     workload.QueryType
}

// simulate runs the jobs on opt.Workers parallel simulation workers via
// the shared internal/exec pool and appends the resulting points to their
// series in job order, then annotates speed-ups. Each job builds its own
// simulator, so parallel regeneration is deterministic.
func simulate(fig *Figure, jobs []pointJob, icfg frag.IndexConfig, opt Options) {
	pts, err := exec.Map(context.Background(), opt.workers(), len(jobs), func(i int) (Point, error) {
		j := jobs[i]
		return Point{X: j.x, ResponseTime: runPoint(j.cfg, j.spec, icfg, j.qt, opt)}, nil
	})
	if err != nil { // jobs never fail; only a cancelled context could
		panic(err)
	}
	for i, p := range pts {
		s := &fig.Series[jobs[i].series]
		s.Points = append(s.Points, p)
	}
	for i := range fig.Series {
		annotateSpeedup(&fig.Series[i])
	}
}

// runPoint simulates a stream of queries of one type and returns the mean
// response time.
func runPoint(cfg simpad.Config, spec *frag.Spec, icfg frag.IndexConfig, qt workload.QueryType, opt Options) float64 {
	star := spec.Star()
	placement := alloc.Placement{Disks: cfg.Disks, Scheme: alloc.RoundRobin, Staggered: true}
	sys, err := simpad.NewSystem(cfg, icfg, placement, opt.Seed)
	if err != nil {
		panic(err)
	}
	gen := workload.NewGenerator(star, opt.Seed)
	var plans []*simpad.Plan
	for i := 0; i < opt.queries(); i++ {
		q, err := gen.Next(qt)
		if err != nil {
			panic(err)
		}
		plans = append(plans, simpad.NewPlan(spec, icfg, q, cfg))
	}
	return simpad.MeanResponseTime(sys.Run(plans))
}

// Figure3 reproduces the speed-up experiment for the disk-bound 1STORE
// query (Section 6.1): FMonthGroup, t = d/p, disks 20..100, processors
// p = d/20 .. d/2. One curve per p/d ratio.
func Figure3(opt Options) Figure {
	star := schema.APB1()
	icfg := frag.APB1Indexes(star)
	spec := frag.MustParse(star, "time::month, product::group")

	fig := Figure{Name: "Figure 3: 1STORE response time (disk-bound)", XLabel: "disks d"}
	ratios := []int{2, 4, 5, 10, 20} // p = d / ratio
	var jobs []pointJob
	for si, ratio := range ratios {
		fig.Series = append(fig.Series, Series{Label: fmt.Sprintf("p = d/%d", ratio)})
		for _, d := range []int{20, 60, 100} {
			p := d / ratio
			if p < 1 {
				p = 1
			}
			cfg := simpad.DefaultConfig()
			cfg.Disks = d
			cfg.Nodes = p
			cfg.TasksPerNode = d / p
			jobs = append(jobs, pointJob{series: si, x: float64(d), cfg: cfg, spec: spec, qt: workload.OneStore})
		}
	}
	simulate(&fig, jobs, icfg, opt)
	return fig
}

// Figure4 reproduces the speed-up experiment for the CPU-bound 1MONTH
// query (Section 6.1): t = 4, one curve per disk count, plus the t = 5 fix
// at d = 100 (the batching discretisation at p = 50).
func Figure4(opt Options) Figure {
	star := schema.APB1()
	icfg := frag.APB1Indexes(star)
	spec := frag.MustParse(star, "time::month, product::group")

	fig := Figure{Name: "Figure 4: 1MONTH response time (CPU-bound)", XLabel: "processors p"}
	// Table 5's hardware configurations.
	curves := []struct {
		label string
		d     int
		ps    []int
		t     int
	}{
		{"d = 20 (t=4)", 20, []int{1, 2, 4, 5, 10}, 4},
		{"d = 60 (t=4)", 60, []int{3, 6, 12, 15, 30}, 4},
		{"d = 100 (t=4)", 100, []int{5, 10, 20, 25, 50}, 4},
		{"d = 100 (t=5)", 100, []int{5, 10, 20, 25, 50}, 5},
	}
	var jobs []pointJob
	for si, c := range curves {
		fig.Series = append(fig.Series, Series{Label: c.label})
		for _, p := range c.ps {
			cfg := simpad.DefaultConfig()
			cfg.Disks = c.d
			cfg.Nodes = p
			cfg.TasksPerNode = c.t
			jobs = append(jobs, pointJob{series: si, x: float64(p), cfg: cfg, spec: spec, qt: workload.OneMonth})
		}
	}
	simulate(&fig, jobs, icfg, opt)
	return fig
}

// Figure5 reproduces the parallel-bitmap-I/O experiment (Section 6.2):
// 1STORE on 100 disks / 20 nodes, subqueries per node t = 1..13, with and
// without parallel bitmap I/O within a subquery.
func Figure5(opt Options) Figure {
	star := schema.APB1()
	icfg := frag.APB1Indexes(star)
	spec := frag.MustParse(star, "time::month, product::group")

	fig := Figure{Name: "Figure 5: parallel bitmap I/O (1STORE)", XLabel: "subqueries per node t"}
	var jobs []pointJob
	for si, parallel := range []bool{false, true} {
		label := "non-parallel I/O"
		if parallel {
			label = "parallel I/O"
		}
		fig.Series = append(fig.Series, Series{Label: label})
		for t := 1; t <= 13; t += 2 {
			cfg := simpad.DefaultConfig()
			cfg.TasksPerNode = t
			cfg.ParallelBitmapIO = parallel
			jobs = append(jobs, pointJob{series: si, x: float64(t), cfg: cfg, spec: spec, qt: workload.OneStore})
		}
	}
	simulate(&fig, jobs, icfg, opt)
	return fig
}

// figure6Fragmentations are the three fragmentations of Section 6.3,
// differing only in the product hierarchy level (Table 6).
var figure6Fragmentations = []struct{ label, text string }{
	{"product group fragmentation", "time::month, product::group"},
	{"product class fragmentation", "time::month, product::class"},
	{"product code fragmentation", "time::month, product::code"},
}

// Figure6Store reproduces the 1STORE panel of Figure 6: response time vs
// the total degree of parallelism (20..160 subqueries over 20 nodes) for
// the three fragmentations.
func Figure6Store(opt Options) Figure {
	star := schema.APB1()
	icfg := frag.APB1Indexes(star)
	fig := Figure{Name: "Figure 6: 1STORE by fragmentation", XLabel: "degree of parallelism"}
	var jobs []pointJob
	for si, f := range figure6Fragmentations {
		spec := frag.MustParse(star, f.text)
		fig.Series = append(fig.Series, Series{Label: f.label})
		for _, dop := range []int{20, 40, 80, 160} {
			cfg := simpad.DefaultConfig()
			cfg.TasksPerNode = (dop + cfg.Nodes - 1) / cfg.Nodes
			cfg.MaxConcurrentSubqueries = dop
			jobs = append(jobs, pointJob{series: si, x: float64(dop), cfg: cfg, spec: spec, qt: workload.OneStore})
		}
	}
	simulate(&fig, jobs, icfg, opt)
	return fig
}

// Figure6CodeQuarter reproduces the 1CODE1QUARTER panel of Figure 6:
// response time vs degree of parallelism 1..5 (the query touches only 3
// fragments) for the three fragmentations.
func Figure6CodeQuarter(opt Options) Figure {
	star := schema.APB1()
	icfg := frag.APB1Indexes(star)
	fig := Figure{Name: "Figure 6: 1CODE1QUARTER by fragmentation", XLabel: "degree of parallelism"}
	var jobs []pointJob
	for si, f := range figure6Fragmentations {
		spec := frag.MustParse(star, f.text)
		fig.Series = append(fig.Series, Series{Label: f.label})
		for dop := 1; dop <= 5; dop++ {
			cfg := simpad.DefaultConfig()
			cfg.MaxConcurrentSubqueries = dop
			jobs = append(jobs, pointJob{series: si, x: float64(dop), cfg: cfg, spec: spec, qt: workload.OneCodeOneQuarter})
		}
	}
	simulate(&fig, jobs, icfg, opt)
	return fig
}

// annotateSpeedup fills Speedup relative to the first point of the series.
func annotateSpeedup(s *Series) {
	if len(s.Points) == 0 {
		return
	}
	base := s.Points[0].ResponseTime
	for i := range s.Points {
		if s.Points[i].ResponseTime > 0 {
			s.Points[i].Speedup = base / s.Points[i].ResponseTime
		}
	}
}
