// Package experiments regenerates every table and figure of the paper's
// evaluation (Tables 1-6, Figures 3-6) from the library's modules, with the
// paper's published values attached for comparison. It is the shared
// backend of the cmd tools, the examples and the root benchmarks; see
// EXPERIMENTS.md for paper-vs-measured records.
package experiments

import (
	"repro/internal/bitmap"
	"repro/internal/cost"
	"repro/internal/frag"
	"repro/internal/schema"
	"repro/internal/workload"
)

// Table1Row is one hierarchy level of the PRODUCT dimension in the encoded
// bitmap join index (Table 1).
type Table1Row struct {
	Level         string
	TotalElements int
	WithinParent  int
	Bits          int
	PaperBits     int
}

// Table1 reproduces Table 1: the hierarchical encoding of the APB-1
// PRODUCT dimension (3+2+3+2+1+4 = 15 bits, pattern dddllfffggcoooo).
func Table1() (rows []Table1Row, pattern string) {
	s := schema.APB1()
	p := s.Dim(schema.DimProduct)
	layout := bitmap.NewLayout(p, nil)
	paperBits := []int{3, 2, 3, 2, 1, 4}
	for i, l := range p.Levels {
		within := l.Card
		if i > 0 {
			within = p.FanOut(i - 1)
		}
		rows = append(rows, Table1Row{
			Level:         l.Name,
			TotalElements: l.Card,
			WithinParent:  within,
			Bits:          layout.FieldBits(i),
			PaperBits:     paperBits[i],
		})
	}
	return rows, layout.String()
}

// Table2Cell is one cell of Table 2: the number of fragmentation options of
// a given dimensionality whose bitmap fragments have at least MinPages
// pages (MinPages 0 = "any").
type Table2Cell struct {
	Dims     int
	MinPages int
	Count    int
	Paper    int
}

// paperTable2 holds the published Table 2 ([dims-1][minPages index]).
var paperTable2 = map[int][4]int{
	1: {12, 12, 12, 11},
	2: {47, 37, 31, 27},
	3: {72, 22, 13, 9},
	4: {36, 1, 0, 0},
}

// Table2 reproduces Table 2 on the APB-1 schema. Deviations from the
// published counts stem from the paper's unstated retailer cardinality and
// its internally inconsistent rounding (see EXPERIMENTS.md T2).
func Table2() []Table2Cell {
	s := schema.APB1()
	specs := frag.Enumerate(s)
	minPages := []int{0, 1, 4, 8}
	var out []Table2Cell
	for dims := 1; dims <= 4; dims++ {
		for mi, mp := range minPages {
			cell := Table2Cell{Dims: dims, MinPages: mp, Paper: paperTable2[dims][mi]}
			for _, sp := range specs {
				if sp.Dimensionality() != dims {
					continue
				}
				if mp == 0 || sp.BitmapFragmentPages() >= float64(mp) {
					cell.Count++
				}
			}
			out = append(out, cell)
		}
	}
	return out
}

// Table3Col is one column of Table 3: the I/O characteristics of the
// 1STORE query under one fragmentation.
type Table3Col struct {
	Label          string
	Fragmentation  string
	Cost           cost.QueryCost
	PaperFragments int64
	PaperFactIO    int64
	PaperBitmapIO  int64
	PaperTotalMB   float64
}

// Table3 reproduces Table 3: 1STORE under Fopt = {customer::store} versus
// Fnosupp = FMonthGroup.
func Table3() [2]Table3Col {
	s := schema.APB1()
	cfg := frag.APB1Indexes(s)
	g := workload.NewGenerator(s, 1)
	q, err := g.Next(workload.OneStore)
	if err != nil {
		panic(err)
	}
	params := cost.DefaultParams()

	fopt := frag.MustParse(s, "customer::store")
	fns := frag.MustParse(s, "time::month, product::group")
	return [2]Table3Col{
		{
			Label:          "Fopt",
			Fragmentation:  fopt.String(),
			Cost:           cost.Estimate(fopt, cfg, q, params),
			PaperFragments: 1,
			PaperFactIO:    795,
			PaperBitmapIO:  0,
			PaperTotalMB:   25,
		},
		{
			Label:          "Fnosupp",
			Fragmentation:  fns.String(),
			Cost:           cost.Estimate(fns, cfg, q, params),
			PaperFragments: 11_520,
			PaperFactIO:    5_189_760,
			PaperBitmapIO:  691_200,
			PaperTotalMB:   31_075,
		},
	}
}

// Table6Row is one fragmentation of the experiment in Section 6.3.
type Table6Row struct {
	Fragmentation        string
	Fragments            int64
	BitmapFragPages      float64
	BitmapFragStored     int64
	PaperFragments       int64
	PaperBitmapFragPages float64
}

// Table6 reproduces Table 6: fragmentation parameters for experiment 3.
func Table6() []Table6Row {
	s := schema.APB1()
	rows := []struct {
		text       string
		pFragments int64
		pPages     float64
	}{
		{"time::month, product::group", 11_520, 4.9},
		{"time::month, product::class", 23_040, 2.5},
		{"time::month, product::code", 345_600, 0.16},
	}
	var out []Table6Row
	for _, r := range rows {
		sp := frag.MustParse(s, r.text)
		out = append(out, Table6Row{
			Fragmentation:        sp.String(),
			Fragments:            sp.NumFragments(),
			BitmapFragPages:      sp.BitmapFragmentPages(),
			BitmapFragStored:     cost.BitmapFragPagesStored(sp),
			PaperFragments:       r.pFragments,
			PaperBitmapFragPages: r.pPages,
		})
	}
	return out
}

// BitmapInventory summarises the Section 3.2 / 4.2 bitmap counts: the
// maximum of 76 bitmaps and the 32 surviving under FMonthGroup.
type BitmapInventory struct {
	MaxBitmaps                int // paper: 76
	SurvivingUnderFMonthGroup int // paper: 32
}

// Bitmaps reproduces the bitmap count analysis.
func Bitmaps() BitmapInventory {
	s := schema.APB1()
	cfg := frag.APB1Indexes(s)
	spec := frag.MustParse(s, "time::month, product::group")
	return BitmapInventory{
		MaxBitmaps:                frag.MaxBitmaps(s, cfg),
		SurvivingUnderFMonthGroup: spec.SurvivingBitmaps(cfg),
	}
}
