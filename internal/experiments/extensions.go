package experiments

import (
	"repro/internal/alloc"
	"repro/internal/frag"
	"repro/internal/schema"
	"repro/internal/simpad"
	"repro/internal/workload"
)

// MultiUser runs the multi-user extension (the paper's future work): m
// concurrent single-user streams of the given query type, returning the
// mean per-query response time for each m in streams.
func MultiUser(qt workload.QueryType, streams []int, queriesPerStream int, seed int64) Series {
	star := schema.APB1()
	icfg := frag.APB1Indexes(star)
	spec := frag.MustParse(star, "time::month, product::group")
	cfg := simpad.DefaultConfig()
	placement := alloc.Placement{Disks: cfg.Disks, Scheme: alloc.RoundRobin, Staggered: true}

	s := Series{Label: "multi-user " + qt.Name}
	for _, m := range streams {
		sys, err := simpad.NewSystem(cfg, icfg, placement, seed)
		if err != nil {
			panic(err)
		}
		gen := workload.NewGenerator(star, seed)
		all := make([][]*simpad.Plan, m)
		for i := range all {
			for j := 0; j < queriesPerStream; j++ {
				q, err := gen.Next(qt)
				if err != nil {
					panic(err)
				}
				all[i] = append(all[i], simpad.NewPlan(spec, icfg, q, cfg))
			}
		}
		results := sys.RunStreams(all)
		var sum float64
		var n int
		for _, stream := range results {
			for _, r := range stream {
				sum += r.ResponseTime
				n++
			}
		}
		s.Points = append(s.Points, Point{X: float64(m), ResponseTime: sum / float64(n)})
	}
	annotateSpeedup(&s)
	return s
}

// Clustering runs the Section 6.3 clustering-granule fix: 1STORE under the
// too-fine FMonthCode fragmentation, for several cluster sizes. Returns
// one point per cluster size.
func Clustering(clusterSizes []int, seed int64) Series {
	star := schema.APB1()
	icfg := frag.APB1Indexes(star)
	spec := frag.MustParse(star, "time::month, product::code")
	cfg := simpad.DefaultConfig()

	s := Series{Label: "1STORE under FMonthCode, clustered"}
	gen := workload.NewGenerator(star, seed)
	q, err := gen.Next(workload.OneStore)
	if err != nil {
		panic(err)
	}
	for _, c := range clusterSizes {
		placement := alloc.Placement{Disks: cfg.Disks, Scheme: alloc.RoundRobin, Staggered: true, Cluster: c}
		sys, err := simpad.NewSystem(cfg, icfg, placement, seed)
		if err != nil {
			panic(err)
		}
		plan := simpad.NewPlan(spec, icfg, q, cfg).Clustered(c)
		r := sys.Run([]*simpad.Plan{plan})[0]
		s.Points = append(s.Points, Point{X: float64(c), ResponseTime: r.ResponseTime})
	}
	annotateSpeedup(&s)
	return s
}

// ArchComparison compares Shared Disk against Shared Nothing (footnote 3)
// for a query type, returning the two response times.
func ArchComparison(qt workload.QueryType, seed int64) (sharedDisk, sharedNothing float64) {
	star := schema.APB1()
	icfg := frag.APB1Indexes(star)
	spec := frag.MustParse(star, "time::month, product::group")

	run := func(arch simpad.Architecture) float64 {
		cfg := simpad.DefaultConfig()
		cfg.Architecture = arch
		placement := alloc.Placement{Disks: cfg.Disks, Scheme: alloc.RoundRobin, Staggered: true}
		sys, err := simpad.NewSystem(cfg, icfg, placement, seed)
		if err != nil {
			panic(err)
		}
		gen := workload.NewGenerator(star, seed)
		q, err := gen.Next(qt)
		if err != nil {
			panic(err)
		}
		plan := simpad.NewPlan(spec, icfg, q, cfg)
		return sys.Run([]*simpad.Plan{plan})[0].ResponseTime
	}
	return run(simpad.SharedDisk), run(simpad.SharedNothing)
}
