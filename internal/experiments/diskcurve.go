package experiments

import (
	"fmt"
	"os"
	"time"

	"repro/internal/alloc"
	"repro/internal/cost"
	"repro/internal/data"
	"repro/internal/frag"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/workload"
)

// DiskCurveOptions configures the measured disk-scaling experiment — the
// executable counterpart of the paper's speedup-vs-disks curves
// (Figure 3), run against the real on-disk executor with per-disk
// serialized I/O queues instead of the SIMPAD simulator.
type DiskCurveOptions struct {
	// Scale is the APB1Scaled reduction factor of the generated warehouse
	// (default 60, the benchmark scale).
	Scale int
	// Disks are the declustering widths measured (default 1/2/4/8/16).
	Disks []int
	// Workers is the executor's fragment worker count (default 16, at
	// least the widest disk count so the disks are the bottleneck).
	Workers int
	// Delay is the simulated per-disk access time (default 500µs), the
	// disk-model regime where declustering is the bottleneck.
	Delay time.Duration
	// Queries is the number of repetitions averaged per point (default 3).
	Queries int
	// Seed drives data generation and query parameters.
	Seed int64
	// Scheme is the fact placement scheme (default round-robin).
	Scheme alloc.Scheme
}

func (o *DiskCurveOptions) defaults() {
	if o.Scale <= 0 {
		o.Scale = 60
	}
	if len(o.Disks) == 0 {
		o.Disks = []int{1, 2, 4, 8, 16}
	}
	if o.Workers <= 0 {
		o.Workers = 16
	}
	if o.Delay == 0 {
		o.Delay = 500 * time.Microsecond
	}
	if o.Queries <= 0 {
		o.Queries = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// DiskScalingCurve builds a reduced-scale APB-1 warehouse on disk, runs
// 1STORE (the paper's disk-bound query: every fragment relevant, bitmap
// I/O on each) declustered over each disk count, and returns one measured
// and one modelled response-time series. The measured points come from
// wall-clock executions against storage.DiskSet's serialized queues; the
// modelled points from cost.EstimateResponse's bottleneck-queue model.
// Results of every disk count are verified identical to the single-disk
// execution before timing.
func DiskScalingCurve(o DiskCurveOptions) (Figure, error) {
	o.defaults()
	fig := Figure{Name: "Disk scaling: 1STORE response time (measured executor vs queue model)", XLabel: "disks d"}

	star := schema.APB1Scaled(o.Scale)
	tab, err := data.Generate(star, o.Seed)
	if err != nil {
		return fig, err
	}
	spec := frag.MustParse(star, "time::month, product::group")
	icfg := frag.APB1Indexes(star)
	dir, err := os.MkdirTemp("", "mdhf-diskcurve-*")
	if err != nil {
		return fig, err
	}
	defer os.RemoveAll(dir)
	store, err := storage.Build(dir, tab, spec)
	if err != nil {
		return fig, err
	}
	defer store.Close()
	bf, err := storage.BuildBitmaps(dir, store, icfg)
	if err != nil {
		return fig, err
	}
	defer bf.Close()

	gen := workload.NewGenerator(star, o.Seed)
	q, err := gen.Next(workload.OneStore)
	if err != nil {
		return fig, err
	}

	measured := Series{Label: fmt.Sprintf("measured (delay %v, %d workers)", o.Delay, o.Workers)}
	modelled := Series{Label: "queue model"}
	var baseAgg storage.Aggregate
	var baseSt storage.IOStats
	for i, d := range o.Disks {
		placement := alloc.Placement{Disks: d, Scheme: o.Scheme, Staggered: true}
		ds := storage.NewDiskSet(d)
		if err := store.Decluster(placement, ds); err != nil {
			return fig, err
		}
		if err := bf.Decluster(placement, ds); err != nil {
			return fig, err
		}
		ex := storage.NewExecutor(store, bf)
		ex.Workers = o.Workers

		// Correctness first, without delay: declustered == single-disk.
		agg, st, err := ex.Execute(q)
		if err != nil {
			return fig, err
		}
		if i == 0 {
			baseAgg, baseSt = agg, st
		} else if agg != baseAgg || st != baseSt {
			return fig, fmt.Errorf("experiments: %d-disk result diverged from %d-disk baseline", d, o.Disks[0])
		}

		ds.SetIODelay(o.Delay)
		var total time.Duration
		for r := 0; r < o.Queries; r++ {
			startT := time.Now()
			if _, _, err := ex.Execute(q); err != nil {
				return fig, err
			}
			total += time.Since(startT)
		}
		measured.Points = append(measured.Points, Point{
			X:            float64(d),
			ResponseTime: (total / time.Duration(o.Queries)).Seconds(),
		})

		est := cost.EstimateResponse(spec, icfg, q, cost.DefaultParams(), cost.DiskParams{
			Placement:  placement,
			AccessTime: o.Delay,
			Workers:    o.Workers,
		})
		modelled.Points = append(modelled.Points, Point{X: float64(d), ResponseTime: est.Response.Seconds()})
	}
	if err := store.Decluster(alloc.Placement{}, nil); err != nil {
		return fig, err
	}
	if err := bf.Decluster(alloc.Placement{}, nil); err != nil {
		return fig, err
	}
	annotateSpeedup(&measured)
	annotateSpeedup(&modelled)
	fig.Series = append(fig.Series, measured, modelled)
	return fig, nil
}
