package experiments

import (
	"reflect"
	"testing"
)

func TestTable1MatchesPaper(t *testing.T) {
	rows, pattern := Table1()
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	total := 0
	for _, r := range rows {
		if r.Bits != r.PaperBits {
			t.Errorf("level %s: %d bits, paper %d", r.Level, r.Bits, r.PaperBits)
		}
		total += r.Bits
	}
	if total != 15 {
		t.Errorf("total bits = %d, want 15", total)
	}
	if pattern != "dddllfffggcoooo" {
		t.Errorf("pattern = %q", pattern)
	}
	// Table 1's element counts.
	wantTotals := []int{8, 24, 120, 480, 960, 14400}
	wantWithin := []int{8, 3, 5, 4, 2, 15}
	for i, r := range rows {
		if r.TotalElements != wantTotals[i] || r.WithinParent != wantWithin[i] {
			t.Errorf("level %s: totals %d/%d, want %d/%d",
				r.Level, r.TotalElements, r.WithinParent, wantTotals[i], wantWithin[i])
		}
	}
}

func TestTable2CloseToPaper(t *testing.T) {
	cells := Table2()
	if len(cells) != 16 {
		t.Fatalf("cells = %d", len(cells))
	}
	exact, near := 0, 0
	for _, c := range cells {
		diff := c.Count - c.Paper
		if diff < 0 {
			diff = -diff
		}
		switch {
		case diff == 0:
			exact++
		case diff <= 3:
			near++
		default:
			t.Errorf("dims=%d min=%d: count %d vs paper %d (off by %d)",
				c.Dims, c.MinPages, c.Count, c.Paper, diff)
		}
	}
	// At least 11 of 16 cells must match exactly (see EXPERIMENTS.md T2
	// for the analysis of the remaining cells, which hinge on the paper's
	// unstated retailer cardinality and rounding convention).
	if exact < 11 {
		t.Errorf("only %d cells exact, want >= 11 (near: %d)", exact, near)
	}
	// The "any" column is fully determined by the schema shape: all exact.
	for _, c := range cells {
		if c.MinPages == 0 && c.Count != c.Paper {
			t.Errorf("'any' column dims=%d: %d vs %d", c.Dims, c.Count, c.Paper)
		}
	}
}

func TestTable3ShapesHold(t *testing.T) {
	cols := Table3()
	opt, nosupp := cols[0], cols[1]
	if opt.Cost.Fragments != opt.PaperFragments {
		t.Errorf("Fopt fragments = %d, paper %d", opt.Cost.Fragments, opt.PaperFragments)
	}
	if nosupp.Cost.Fragments != nosupp.PaperFragments {
		t.Errorf("Fnosupp fragments = %d, paper %d", nosupp.Cost.Fragments, nosupp.PaperFragments)
	}
	// Exact reproduction of the bitmap I/O volume.
	if nosupp.Cost.BitmapPages != nosupp.PaperBitmapIO {
		t.Errorf("Fnosupp bitmap pages = %d, paper %d", nosupp.Cost.BitmapPages, nosupp.PaperBitmapIO)
	}
	// Orders-of-magnitude gap.
	ratio := nosupp.Cost.TotalMB() / opt.Cost.TotalMB()
	if ratio < 500 {
		t.Errorf("total I/O ratio = %.0f, want >= 500", ratio)
	}
	// Within 2x of the paper's absolute totals.
	if m := opt.Cost.TotalMB(); m < opt.PaperTotalMB/2 || m > opt.PaperTotalMB*2 {
		t.Errorf("Fopt total = %.1f MB, paper %.0f", m, opt.PaperTotalMB)
	}
	if m := nosupp.Cost.TotalMB(); m < nosupp.PaperTotalMB/2 || m > nosupp.PaperTotalMB*2 {
		t.Errorf("Fnosupp total = %.1f MB, paper %.0f", m, nosupp.PaperTotalMB)
	}
}

func TestTable6MatchesPaper(t *testing.T) {
	rows := Table6()
	for _, r := range rows {
		if r.Fragments != r.PaperFragments {
			t.Errorf("%s: fragments %d, paper %d", r.Fragmentation, r.Fragments, r.PaperFragments)
		}
		rel := r.BitmapFragPages / r.PaperBitmapFragPages
		if rel < 0.9 || rel > 1.1 {
			t.Errorf("%s: bitmap fragment %.2f pages, paper %.2f", r.Fragmentation, r.BitmapFragPages, r.PaperBitmapFragPages)
		}
	}
}

func TestBitmapInventory(t *testing.T) {
	inv := Bitmaps()
	if inv.MaxBitmaps != 76 {
		t.Errorf("max bitmaps = %d, want 76", inv.MaxBitmaps)
	}
	if inv.SurvivingUnderFMonthGroup != 32 {
		t.Errorf("surviving = %d, want 32", inv.SurvivingUnderFMonthGroup)
	}
}

func TestFigure4ShapesHold(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	fig := Figure4(Options{Seed: 1})
	if len(fig.Series) != 4 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	// Response times decrease with p on every curve.
	for _, s := range fig.Series {
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].ResponseTime >= s.Points[i-1].ResponseTime {
				t.Errorf("%s: response time not decreasing at p=%g", s.Label, s.Points[i].X)
			}
		}
	}
	// The three t=4 curves coincide (CPU-bound: independent of d) at the
	// shared processor counts. Compare d=20 p=10 vs d=60 p=... they share
	// no p. Instead check d=60 and d=100 at p=5..: only d=100 has p=5.
	// Check that at p=10 (d=20) and p=10 (d=100) times are close.
	var p10 []float64
	for _, s := range fig.Series[:3] {
		for _, pt := range s.Points {
			if pt.X == 10 {
				p10 = append(p10, pt.ResponseTime)
			}
		}
	}
	if len(p10) >= 2 {
		ratio := p10[0] / p10[1]
		if ratio < 0.8 || ratio > 1.25 {
			t.Errorf("1MONTH at p=10 differs across d: %v", p10)
		}
	}
	// The t=5 fix at d=100, p=50 beats t=4 (the paper's batching point).
	var t4, t5 float64
	for _, s := range fig.Series {
		for _, pt := range s.Points {
			if pt.X == 50 {
				if s.Label == "d = 100 (t=4)" {
					t4 = pt.ResponseTime
				}
				if s.Label == "d = 100 (t=5)" {
					t5 = pt.ResponseTime
				}
			}
		}
	}
	if t4 == 0 || t5 == 0 || t5 >= t4 {
		t.Errorf("t=5 (%.2fs) should beat t=4 (%.2fs) at p=50", t5, t4)
	}
	// Near-linear speed-up: d=20 curve spans p=1..10.
	for _, s := range fig.Series[:1] {
		last := s.Points[len(s.Points)-1]
		if last.Speedup < 0.75*last.X || last.Speedup > 1.3*last.X {
			t.Errorf("%s: speed-up %.1f at p=%g, want near-linear", s.Label, last.Speedup, last.X)
		}
	}
}

func TestFigure3ShapesHold(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale simulation")
	}
	// Restrict to two ratios for test time; the bench runs all.
	fig := Figure3(Options{Seed: 1})
	if len(fig.Series) != 5 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) != 3 {
			t.Fatalf("%s: %d points", s.Label, len(s.Points))
		}
		// Response time determined by d: decreasing in d.
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].ResponseTime >= s.Points[i-1].ResponseTime {
				t.Errorf("%s: not decreasing at d=%g", s.Label, s.Points[i].X)
			}
		}
		// Speed-up at d=100 vs d=20 near-linear (5) or slightly above.
		last := s.Points[len(s.Points)-1]
		if last.Speedup < 4 || last.Speedup > 7.5 {
			t.Errorf("%s: speed-up %.2f at d=100, want ~5-6", s.Label, last.Speedup)
		}
	}
	// Curves for different p coincide (disk-bound): compare d=100 points.
	min, max := 1e18, 0.0
	for _, s := range fig.Series {
		rt := s.Points[2].ResponseTime
		if rt < min {
			min = rt
		}
		if rt > max {
			max = rt
		}
	}
	if max/min > 1.3 {
		t.Errorf("d=100 response times vary %.2fx across p; 1STORE should be disk-bound", max/min)
	}
}

func TestFigureParallelWorkersDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale simulation")
	}
	// Each data point is an independent deterministic simulation, so a
	// figure regenerated on 4 workers must be identical to the sequential
	// one — series, points, response times, speed-ups.
	seq := Figure6CodeQuarter(Options{Seed: 1})
	par := Figure6CodeQuarter(Options{Seed: 1, Workers: 4})
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel figure differs:\nseq %+v\npar %+v", seq, par)
	}
}
